package mcmpart_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mcmpart"
)

// pretrainedPlanner builds a dev8 planner pre-trained on a small corpus
// slice — the shared fixture of the transfer tests (seconds, not minutes).
func pretrainedPlanner(t *testing.T) (*mcmpart.Planner, []*mcmpart.Graph) {
	t.Helper()
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	corpus := mcmpart.CorpusGraphs(1)
	if _, err := pl.Pretrain(context.Background(), corpus[:10], mcmpart.PretrainOptions{
		TotalSamples:     400,
		Checkpoints:      5,
		ValidationGraphs: 2,
	}); err != nil {
		t.Fatal(err)
	}
	return pl, corpus
}

// TestTransferZeroShotBeatsScratch pins the acceptance criterion — and the
// paper's headline claim (Sec. 5.2/5.3) — deterministically: after
// pre-training on a corpus slice, zero-shot deployment on a held-out graph
// reaches the 1.05x improvement threshold in measurably fewer samples than
// training RL from scratch under the same budget. On this fixture scratch
// RL does not reach the threshold at all, so the margin is structural, not
// a lucky seed.
func TestTransferZeroShotBeatsScratch(t *testing.T) {
	pl, corpus := pretrainedPlanner(t)
	held := corpus[84] // mlp-84: never seen during pre-training
	if !strings.HasPrefix(held.Name(), "mlp") {
		t.Fatalf("held-out graph is %s, fixture expects an MLP", held.Name())
	}
	const budget, threshold = 80, 1.05

	plan := func(m mcmpart.Method) *mcmpart.Result {
		res, err := pl.Plan(context.Background(), held, mcmpart.PlanOptions{
			Method: m, SampleBudget: budget, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		return res
	}
	scratch := plan(mcmpart.MethodRL)
	zeroShot := plan(mcmpart.MethodZeroShot)

	zsSamples, zsReached := zeroShot.SamplesToImprovement(threshold)
	if !zsReached {
		t.Fatalf("zero-shot never reached %.2fx (best %.3fx)", threshold, zeroShot.Improvement)
	}
	scratchSamples, scratchReached := scratch.SamplesToImprovement(threshold)
	if scratchReached && scratchSamples <= zsSamples {
		t.Fatalf("transfer gave no sample advantage: scratch %d <= zero-shot %d samples to %.2fx",
			scratchSamples, zsSamples, threshold)
	}
	if zsSamples > 10 {
		t.Fatalf("zero-shot took %d samples to %.2fx; the pre-trained policy should land almost immediately (<= 10)",
			zsSamples, threshold)
	}
	// Determinism: the same plan twice is bit-identical.
	again := plan(mcmpart.MethodZeroShot)
	if !reflect.DeepEqual(zeroShot.History, again.History) {
		t.Fatal("zero-shot plan is not deterministic for a fixed seed")
	}
}

// TestPartitionGraphShimMatchesPlanner pins that the deprecated one-shot
// wrapper is exactly a Planner.Plan: same partition, bit-identical
// throughput, same sample count and history, for every original method.
func TestPartitionGraphShimMatchesPlanner(t *testing.T) {
	g := smallGraph(t)
	pkg := mcmpart.Dev4()
	for _, m := range []mcmpart.Method{mcmpart.MethodGreedy, mcmpart.MethodRandom, mcmpart.MethodSA, mcmpart.MethodRL} {
		old, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{Method: m, SampleBudget: 30, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		pl, err := mcmpart.NewPlanner(pkg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{Method: m, SampleBudget: 30, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !reflect.DeepEqual(old.Partition, res.Partition) {
			t.Fatalf("%s: shim partition differs from planner partition", m)
		}
		if math.Float64bits(old.Throughput) != math.Float64bits(res.Throughput) {
			t.Fatalf("%s: shim throughput %v != planner %v", m, old.Throughput, res.Throughput)
		}
		if old.Samples != res.Samples || !reflect.DeepEqual(old.History, res.History) {
			t.Fatalf("%s: shim trajectory differs from planner trajectory", m)
		}
	}
}

// TestPolicyArtifactRoundTrip checks pretrain -> save -> load into a fresh
// planner -> zero-shot produces exactly the plan the original planner
// produces.
func TestPolicyArtifactRoundTrip(t *testing.T) {
	pl, corpus := pretrainedPlanner(t)
	held := corpus[84]
	path := filepath.Join(t.TempDir(), "dev8.policy.json")
	if err := pl.SavePolicy(path); err != nil {
		t.Fatal(err)
	}

	fresh, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.HasPolicy() {
		t.Fatal("fresh planner should have no policy")
	}
	if err := fresh.LoadPolicy(path); err != nil {
		t.Fatal(err)
	}
	if !fresh.HasPolicy() {
		t.Fatal("loaded planner should report a policy")
	}
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot, SampleBudget: 40, Seed: 3}
	want, err := pl.Plan(context.Background(), held, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Plan(context.Background(), held, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Partition, got.Partition) || !reflect.DeepEqual(want.History, got.History) {
		t.Fatal("plan through the loaded artifact differs from the original planner's plan")
	}
}

// TestPolicyArtifactRejectsWrongPackage pins the fingerprint gate: a policy
// pre-trained for one package must not load into a planner for another.
func TestPolicyArtifactRejectsWrongPackage(t *testing.T) {
	pl, _ := pretrainedPlanner(t) // dev8
	path := filepath.Join(t.TempDir(), "dev8.policy.json")
	if err := pl.SavePolicy(path); err != nil {
		t.Fatal(err)
	}
	for _, pkg := range []*mcmpart.Package{mcmpart.Dev4(), mcmpart.Edge36(), mcmpart.Mesh16(), mcmpart.Dev8Bi()} {
		other, err := mcmpart.NewPlanner(pkg)
		if err != nil {
			t.Fatal(err)
		}
		err = other.LoadPolicy(path)
		if err == nil {
			t.Fatalf("%s: loading a dev8 policy should fail", pkg.Name)
		}
		if !strings.Contains(err.Error(), "dev8") || !strings.Contains(err.Error(), pkg.Name) {
			t.Fatalf("%s: error should name both packages: %v", pkg.Name, err)
		}
		if other.HasPolicy() {
			t.Fatalf("%s: rejected load must not install a policy", pkg.Name)
		}
	}
	// Same preset name but different hardware parameters: still rejected
	// (the fingerprint covers the full descriptor, not the name).
	tweaked := mcmpart.Dev8()
	tweaked.SRAMBytes *= 2
	other, err := mcmpart.NewPlanner(tweaked)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadPolicy(path); err == nil {
		t.Fatal("loading into a same-name, different-SRAM package should fail")
	}
}

// TestPolicyArtifactRejectsCorrupt covers the untrusted-file hardening:
// unreadable, non-JSON, and truncated artifacts all fail with descriptive
// errors, never panics or silent zero-weight policies.
func TestPolicyArtifactRejectsCorrupt(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := pl.LoadPolicy(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing artifact should fail")
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := pl.LoadPolicy(garbage); err == nil {
		t.Fatal("non-JSON artifact should fail")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := pl.LoadPolicy(empty); err == nil {
		t.Fatal("empty artifact should fail (version gate)")
	}
	if pl.HasPolicy() {
		t.Fatal("no failed load may install a policy")
	}
}

// TestPlanMethodsRequirePolicy pins the error contract of the pre-trained
// methods on a policy-less planner.
func TestPlanMethodsRequirePolicy(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev4())
	if err != nil {
		t.Fatal(err)
	}
	g := smallGraph(t)
	for _, m := range []mcmpart.Method{mcmpart.MethodZeroShot, mcmpart.MethodFineTune} {
		_, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{Method: m, SampleBudget: 10})
		if err == nil || !strings.Contains(err.Error(), "Pretrain") {
			t.Fatalf("%s without a policy: want a pre-train hint, got %v", m, err)
		}
	}
}

// TestPlanProgressStream checks the observability contract: one event per
// sample, samples strictly increasing from 1, best-so-far monotone, and the
// final event agreeing with the returned result.
func TestPlanProgressStream(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev4())
	if err != nil {
		t.Fatal(err)
	}
	g := smallGraph(t)
	var events []mcmpart.ProgressEvent
	res, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{
		Method:       mcmpart.MethodRandom,
		SampleBudget: 25,
		Seed:         2,
		Progress:     func(ev mcmpart.ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Samples {
		t.Fatalf("%d progress events for %d samples", len(events), res.Samples)
	}
	for i, ev := range events {
		if ev.Samples != i+1 {
			t.Fatalf("event %d reports sample %d", i, ev.Samples)
		}
		if i > 0 && ev.BestImprovement < events[i-1].BestImprovement {
			t.Fatal("best-so-far regressed in the progress stream")
		}
	}
	last := events[len(events)-1]
	if last.BestImprovement != res.Improvement {
		t.Fatalf("final progress %.6f != result improvement %.6f", last.BestImprovement, res.Improvement)
	}
	if len(res.History) != res.Samples || res.History[len(res.History)-1] != res.Improvement {
		t.Fatal("Result.History must end at the final improvement")
	}
}

// TestPlannerAssess checks the unified rich-verdict surface over both
// evaluation environments.
func TestPlannerAssess(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev4())
	if err != nil {
		t.Fatal(err)
	}
	g := smallGraph(t)
	res, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{Method: mcmpart.MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	model := pl.Assess(g, res.Partition, mcmpart.PlanOptions{})
	if !model.Valid || model.Throughput <= 0 || model.FailReason != "" {
		t.Fatalf("cost-model verdict on greedy: %+v", model)
	}
	if model.Utilization != 0 {
		t.Fatal("the analytical model has no memory model; utilization must be 0")
	}
	sim := pl.Assess(g, res.Partition, mcmpart.PlanOptions{UseSimulator: true})
	if !sim.Valid || sim.Throughput <= 0 {
		t.Fatalf("simulator verdict on greedy: %+v", sim)
	}
	if sim.Utilization <= 0 || sim.Utilization > 1 {
		t.Fatalf("simulator utilization %v out of (0, 1]", sim.Utilization)
	}
	// An unroutable partition (backwards transfer on the uni-directional
	// ring) must fail with a reason in both environments.
	bad := res.Partition.Clone()
	bad[0] = 3
	for name, v := range map[string]mcmpart.Verdict{
		"model": pl.Assess(g, bad, mcmpart.PlanOptions{}),
		"sim":   pl.Assess(g, bad, mcmpart.PlanOptions{UseSimulator: true}),
	} {
		if v.Valid || v.FailReason == "" || v.Throughput != 0 {
			t.Fatalf("%s: backwards transfer verdict: %+v", name, v)
		}
	}
}
