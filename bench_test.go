// Benchmarks regenerating every table and figure of the paper's evaluation
// at quick scale, plus ablations of the design choices DESIGN.md calls out.
// Run them with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each benchmark reports its headline numbers as custom metrics and prints
// the formatted result with -v. The full-scale variants run through
// cmd/mcmexp -scale full.
package mcmpart_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/experiments"
	"mcmpart/internal/mcm"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// fig5Once shares the pre-training run (the slowest stage) across the
// benchmarks that need its checkpoint.
var (
	fig5Mu  sync.Mutex
	fig5Res *experiments.Fig5Result
	fig5Err error
)

func sharedFig5(b *testing.B) *experiments.Fig5Result {
	b.Helper()
	fig5Mu.Lock()
	defer fig5Mu.Unlock()
	if fig5Res == nil && fig5Err == nil {
		fig5Res, fig5Err = experiments.Figure5(context.Background(), experiments.Fig5Config{Scale: experiments.ScaleQuick, Seed: 1})
	}
	if fig5Err != nil {
		b.Fatal(fig5Err)
	}
	return fig5Res
}

// BenchmarkTable1Capabilities regenerates Table 1's capability matrix with
// measured evidence (validity rates, solver latency).
func BenchmarkTable1Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(1, 200)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RawValidPct, "raw-valid-%")
		b.ReportMetric(res.SolverValidPct, "solver-valid-%")
		fmt.Println(res.Format())
	}
}

// BenchmarkFigure5TestSetCurves regenerates Figure 5: geomean improvement
// curves over the held-out test graphs on the analytical cost model.
func BenchmarkFigure5TestSetCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedFig5(b)
		b.ReportMetric(res.Final[experiments.MethodRL], "RL-final-x")
		b.ReportMetric(res.Final[experiments.MethodRandom], "Random-final-x")
		fmt.Println(res.Format())
	}
}

// BenchmarkTable2SampleEfficiency regenerates Table 2: samples needed per
// geomean-improvement threshold.
func BenchmarkTable2SampleEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedFig5(b)
		t2 := experiments.Table2(res)
		fmt.Println(t2.Format("Table 2: samples to reach geomean improvement (test set, cost model)"))
	}
}

// BenchmarkFigure6BERTCurves regenerates Figure 6: BERT improvement curves
// over the greedy heuristic on the hardware simulator.
func BenchmarkFigure6BERTCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f5 := sharedFig5(b)
		res, err := experiments.Figure6(context.Background(), experiments.Fig6Config{
			Scale:      experiments.ScaleQuick,
			Seed:       1,
			Pretrained: f5.Pretrained,
			PolicyCfg:  f5.PolicyCfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Final[experiments.MethodRL], "RL-final-x")
		b.ReportMetric(res.RLvsRandomPct, "RL-vs-Random-%")
		fmt.Println(res.Format())
		t3 := experiments.Table3(res)
		fmt.Println(t3.Format("Table 3: samples to reach BERT improvement (hardware simulator)"))
		fmt.Println(experiments.SearchTimeSummary(res, t3))
	}
}

// BenchmarkTable3BERTSampleEfficiency regenerates Table 3 standalone (with
// a fresh, smaller Figure 6 run so it can be benchmarked independently).
func BenchmarkTable3BERTSampleEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f5 := sharedFig5(b)
		res, err := experiments.Figure6(context.Background(), experiments.Fig6Config{
			Scale:        experiments.ScaleQuick,
			Seed:         2,
			SampleBudget: 120,
			Pretrained:   f5.Pretrained,
			PolicyCfg:    f5.PolicyCfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		t3 := experiments.Table3(res)
		fmt.Println(t3.Format("Table 3 (seed 2, 120-sample budget)"))
	}
}

// BenchmarkFigure7Calibration regenerates Figure 7: the analytical model vs
// the hardware simulator on random valid BERT partitions.
func BenchmarkFigure7Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(experiments.Fig7Config{Scale: experiments.ScaleQuick, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PearsonR, "pearson-R")
		b.ReportMetric(res.InvalidPct, "hw-invalid-%")
		fmt.Println(res.Format())
	}
}

// --- Ablation benches (DESIGN.md Sec. 5) ---

// ablationEnv builds a mid-size environment on the cost model.
func ablationEnv(b *testing.B, useSample bool) *rl.Env {
	b.Helper()
	pkg := mcm.Dev8()
	g := workload.MLP(workload.MLPConfig{Name: "ab", Layers: 10, Input: 512, Hidden: 2048, Output: 256, Batch: 32})
	pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	if err != nil {
		b.Fatal(err)
	}
	model := costmodel.New(pkg)
	baseTh, _ := model.Evaluate(g, search.Greedy(g, pkg.Chips, pkg.SRAMBytes))
	env := rl.NewEnv(rl.NewGraphContext(g), pr, model, baseTh)
	env.UseSampleMode = useSample
	env.PartFactory = func() (cpsolver.Partitioner, error) {
		return cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	}
	return env
}

// BenchmarkAblationSolverMode compares FIX vs SAMPLE mode under the same RL
// budget (the paper found FIX superior).
func BenchmarkAblationSolverMode(b *testing.B) {
	for _, mode := range []struct {
		name      string
		useSample bool
	}{{"FIX", false}, {"SAMPLE", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(5))
				env := ablationEnv(b, mode.useSample)
				policy := rl.NewPolicy(rl.QuickConfig(env.Part.Chips()), rng)
				trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
				trainer.TrainUntil(context.Background(), []*rl.Env{env}, 64)
				b.ReportMetric(env.BestImprovement(), "best-x")
			}
		})
	}
}

// BenchmarkAblationNoSolver reproduces the paper's "RL without constraint
// solver" finding: raw policy samples almost never satisfy the constraints,
// so the reward space is empty.
func BenchmarkAblationNoSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(6))
		env := ablationEnv(b, false)
		env.NoSolver = true
		policy := rl.NewPolicy(rl.QuickConfig(env.Part.Chips()), rng)
		trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
		trainer.TrainUntil(context.Background(), []*rl.Env{env}, 64)
		b.ReportMetric(float64(env.ValidSamples), "valid-samples")
		b.ReportMetric(env.BestImprovement(), "best-x")
	}
}

// BenchmarkAblationGNNSize compares GraphSAGE depths/widths under a fixed
// budget.
func BenchmarkAblationGNNSize(b *testing.B) {
	for _, cfg := range []struct {
		name          string
		hidden, depth int
	}{{"2x32", 32, 2}, {"4x64", 64, 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(7))
				env := ablationEnv(b, false)
				policy := rl.NewPolicy(rl.Config{
					Chips: env.Part.Chips(), Hidden: cfg.hidden, SAGELayers: cfg.depth, Iterations: 2,
				}, rng)
				trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
				trainer.TrainUntil(context.Background(), []*rl.Env{env}, 48)
				b.ReportMetric(env.BestImprovement(), "best-x")
			}
		})
	}
}

// BenchmarkAblationIterationT compares refinement depths T of Eq. 7.
func BenchmarkAblationIterationT(b *testing.B) {
	for _, T := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "T1", 2: "T2", 4: "T4"}[T], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(8))
				env := ablationEnv(b, false)
				cfg := rl.QuickConfig(env.Part.Chips())
				cfg.Iterations = T
				policy := rl.NewPolicy(cfg, rng)
				trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
				trainer.TrainUntil(context.Background(), []*rl.Env{env}, 48)
				b.ReportMetric(env.BestImprovement(), "best-x")
			}
		})
	}
}

// BenchmarkAblationSolverOrder compares the CP solver's node traversal
// orders on a mid-size graph (the paper defaults to a fresh random order).
func BenchmarkAblationSolverOrder(b *testing.B) {
	g := workload.ResidualCNN(workload.CNNConfig{
		Name: "ab-order", InputSize: 32, Channels: 32, Stages: 2, BlocksPerStage: 2, Classes: 10,
	})
	s, err := cpsolver.New(g, 4, cpsolver.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < b.N; i++ {
			if _, err := s.Sample(cpsolver.RandomOrder(rng, g.NumNodes()), nil, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("topo", func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < b.N; i++ {
			if _, err := s.Sample(s.RandomTopoOrder(rng), nil, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSolverSampleBERT measures the large-graph sampling path used by
// every BERT experiment.
func BenchmarkSolverSampleBERT(b *testing.B) {
	g := workload.BERT()
	pr, err := cpsolver.NewAuto(g, 36, cpsolver.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.SampleMode(nil, rng); err != nil {
			b.Fatal(err)
		}
	}
}
