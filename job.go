package mcmpart

import (
	"context"
	"sync"
)

// JobState is the lifecycle phase of an asynchronous plan job.
type JobState string

// Job lifecycle. Queued and Running are transient; Done, Failed, and
// Cancelled are terminal.
const (
	// JobQueued: admitted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is planning.
	JobRunning JobState = "running"
	// JobDone: the plan completed; Result is available.
	JobDone JobState = "done"
	// JobFailed: the plan errored; Err is available.
	JobFailed JobState = "failed"
	// JobCancelled: Cancel (or service shutdown) stopped the plan. If any
	// valid partition had been found by then, Result carries it
	// (best-so-far), mirroring Planner.Plan's cancellation contract.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobStatus is a point-in-time snapshot of a job: its state plus the
// running plan's progress (samples consumed, best-so-far improvement) —
// the polling surface of the per-job Progress stream.
type JobStatus struct {
	// ID identifies the job within its Service.
	ID string `json:"id"`
	// State is the lifecycle phase at snapshot time.
	State JobState `json:"state"`
	// Cached reports that the result was served from the plan cache
	// without consuming a worker.
	Cached bool `json:"cached"`
	// Coalesced reports that the request shared another request's
	// in-flight computation (single-flight) instead of planning itself.
	Coalesced bool `json:"coalesced,omitempty"`
	// Samples and BestImprovement mirror the plan's Progress stream:
	// evaluations consumed so far and the best-so-far improvement over the
	// greedy baseline.
	Samples         int     `json:"samples"`
	BestImprovement float64 `json:"best_improvement,omitempty"`
	// Error is the failure message of a failed (or cancelled) job.
	Error string `json:"error,omitempty"`
	// RequestID echoes the caller-supplied request ID (WithRequestID, or
	// the X-Request-ID header over HTTP) so job progress correlates with
	// the request logs. Empty when the caller supplied none.
	RequestID string `json:"request_id,omitempty"`
}

// requestIDKey carries a request ID through a context.
type requestIDKey struct{}

// WithRequestID returns a context carrying a caller-chosen request ID.
// Submit stamps it into the job it admits, so status payloads and
// structured logs share one correlation handle.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID from ctx ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Job is one asynchronous plan submitted to a Service. A Job is handed out
// by Service.Submit and remains valid after completion (the Service retains
// a bounded history of terminal jobs for status queries). The retained
// result is isolated like a cache entry: it goes in and comes out through
// cloneResult, so no two callers (and no caller plus the retained copy)
// ever alias the same Result.
//
//mcmlint:deepcopy cloneResult
type Job struct {
	id string
	// requestID is the caller's correlation ID (immutable after Submit).
	requestID string
	// ctx is the job's execution context: derived from the service
	// lifecycle, cancelled by Cancel.
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     JobState // guarded by mu
	cached    bool     // guarded by mu
	coalesced bool     // guarded by mu
	samples   int      // guarded by mu
	best      float64  // guarded by mu
	result    *Result  // guarded by mu
	err       error    // guarded by mu
}

func newJob(id string, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{id: id, ctx: ctx, cancel: cancel, done: make(chan struct{}), state: JobQueued}
}

// ID returns the job's Service-unique identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status returns a snapshot of the job's state and progress.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:              j.id,
		State:           j.state,
		Cached:          j.cached,
		Coalesced:       j.coalesced,
		Samples:         j.samples,
		BestImprovement: j.best,
		RequestID:       j.requestID,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Result returns the job's result and error once terminal ((nil, nil)
// before then). A cancelled job may carry both: the best-so-far result and
// the cancellation error.
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil
	}
	return cloneResult(j.result), j.err
}

// Wait blocks until the job is terminal or ctx is done. When ctx wins, Wait
// returns ctx.Err() and the job keeps running — pair Wait with Cancel for
// give-up-and-stop semantics (Service.Plan does exactly that).
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel asks the job to stop. A queued job finishes cancelled without
// planning; a running job stops at the next sample boundary and keeps its
// best-so-far result. Cancel returns immediately; observe completion via
// Wait or Done. Cancelling a terminal job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// markCoalesced flags the job as riding another request's in-flight plan.
func (j *Job) markCoalesced() {
	j.mu.Lock()
	j.coalesced = true
	j.mu.Unlock()
}

// markRunning flips a queued job to running; it reports false if the job
// already finished (e.g. cancelled while queued).
func (j *Job) markRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	return true
}

// recordProgress is the per-job progress sink the Service wires into the
// plan's ProgressFunc.
func (j *Job) recordProgress(ev ProgressEvent) {
	j.mu.Lock()
	j.samples = ev.Samples
	j.best = ev.BestImprovement
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once, reporting whether
// this call made the transition.
func (j *Job) finish(state JobState, res *Result, err error, cached bool) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.result = cloneResult(res)
	j.err = err
	j.cached = cached
	if res != nil {
		j.samples = res.Samples
		j.best = res.Improvement
	}
	j.mu.Unlock()
	// Release the job's child context so a long-lived service does not
	// accumulate one cancel registration per request ever served.
	j.cancel()
	close(j.done)
	return true
}
