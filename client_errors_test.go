package mcmpart_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"mcmpart"
)

// TestClientErrorMappingTable pins the bidirectional error contract of the
// HTTP API: every status code the daemon emits round-trips through Client
// back to the matching service sentinel (or to a bare APIError for plain
// bad requests), including the malformed-error-body fallback.
func TestClientErrorMappingTable(t *testing.T) {
	cases := []struct {
		name     string
		status   int
		body     string
		sentinel error  // errors.Is(err, sentinel) must hold (nil: none may match)
		message  string // expected APIError.Message
	}{
		{
			name:     "400 bad request is ErrInvalidRequest",
			status:   http.StatusBadRequest,
			body:     `{"error":"mcmpart: invalid request: SampleBudget -4 is negative; use 0 for the default (200)"}`,
			sentinel: mcmpart.ErrInvalidRequest,
			message:  "mcmpart: invalid request: SampleBudget -4 is negative; use 0 for the default (200)",
		},
		{
			name:     "409 conflict is ErrPolicyRequired",
			status:   http.StatusConflict,
			body:     `{"error":"mcmpart: a pre-trained policy is required: method \"zeroshot\" needs Pretrain, LoadPolicy, or an artifact for this package in the policy directory"}`,
			sentinel: mcmpart.ErrPolicyRequired,
			message:  `mcmpart: a pre-trained policy is required: method "zeroshot" needs Pretrain, LoadPolicy, or an artifact for this package in the policy directory`,
		},
		{
			name:     "429 too many requests is ErrBusy",
			status:   http.StatusTooManyRequests,
			body:     `{"error":"mcmpart: service queue is full"}`,
			sentinel: mcmpart.ErrBusy,
			message:  "mcmpart: service queue is full",
		},
		{
			name:     "503 unavailable is ErrServiceClosed",
			status:   http.StatusServiceUnavailable,
			body:     `{"error":"mcmpart: service is closed"}`,
			sentinel: mcmpart.ErrServiceClosed,
			message:  "mcmpart: service is closed",
		},
		{
			name:    "malformed error body keeps the raw text",
			status:  http.StatusBadGateway,
			body:    "upstream exploded\n",
			message: "upstream exploded",
		},
		{
			name:     "empty error field falls back to raw body",
			status:   http.StatusBadRequest,
			body:     `{"error":""}`,
			sentinel: mcmpart.ErrInvalidRequest, // 400 maps by status, whatever the body
			message:  `{"error":""}`,
		},
	}
	sentinels := []error{mcmpart.ErrBusy, mcmpart.ErrServiceClosed, mcmpart.ErrPolicyRequired, mcmpart.ErrInvalidRequest}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				_, _ = w.Write([]byte(tc.body))
			}))
			defer srv.Close()
			cl := mcmpart.NewClient(srv.URL, srv.Client())
			_, err := cl.Plan(context.Background(), smallGraph(t), mcmpart.PlanOptions{})
			if err == nil {
				t.Fatal("expected an error")
			}
			var ae *mcmpart.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("error %T is not an *APIError: %v", err, err)
			}
			if ae.StatusCode != tc.status {
				t.Fatalf("StatusCode = %d, want %d", ae.StatusCode, tc.status)
			}
			if ae.Message != tc.message {
				t.Fatalf("Message = %q, want %q", ae.Message, tc.message)
			}
			for _, s := range sentinels {
				if match := errors.Is(err, s); match != (s == tc.sentinel) {
					t.Errorf("errors.Is(err, %v) = %t, want %t", s, match, s == tc.sentinel)
				}
			}
		})
	}
}

// TestClientSentinelsRoundTripRealDaemon checks the mapping against a real
// Service behind a real handler (not a stub): a zero-shot plan without a
// policy must come back as ErrPolicyRequired, a full queue as ErrBusy, and
// a closed service as ErrServiceClosed.
func TestClientSentinelsRoundTripRealDaemon(t *testing.T) {
	svc, err := mcmpart.NewService(mcmpart.Dev4(), mcmpart.ServiceOptions{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mcmpart.NewHTTPHandler(svc))
	defer srv.Close()
	defer svc.Close()
	cl := mcmpart.NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	g := smallGraph(t)

	if _, err := cl.Plan(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot}); !errors.Is(err, mcmpart.ErrPolicyRequired) {
		t.Fatalf("zero-shot without policy: err = %v, want ErrPolicyRequired", err)
	}

	// Saturate the single worker and the depth-1 queue with long jobs, then
	// the next submission must shed load as ErrBusy. Distinct seeds keep
	// the jobs out of each other's cache entries.
	long := func(seed int64) mcmpart.PlanOptions {
		return mcmpart.PlanOptions{Method: mcmpart.MethodSA, SampleBudget: 500000, Seed: seed}
	}
	j1, err := cl.SubmitJob(ctx, g, long(101))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := cl.SubmitJob(ctx, g, long(102))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.SubmitJob(ctx, g, long(103))
	if !errors.Is(err, mcmpart.ErrBusy) {
		t.Fatalf("third job on a full queue: err = %v, want ErrBusy", err)
	}
	for _, id := range []string{j1.ID, j2.ID} {
		if _, err := cl.CancelJob(ctx, id); err != nil {
			t.Fatal(err)
		}
	}

	svc.Close()
	if _, err := cl.Plan(ctx, g, mcmpart.PlanOptions{}); !errors.Is(err, mcmpart.ErrServiceClosed) {
		t.Fatalf("plan after Close: err = %v, want ErrServiceClosed", err)
	}
}

// TestInvalidRequestSentinel pins the ErrInvalidRequest contract end to
// end: every request-validation failure carries the sentinel in-process
// (Planner and Service alike), and over the wire it becomes a 400 that
// Client maps back to the same sentinel — so callers branch on
// errors.Is(err, ErrInvalidRequest) identically on both sides.
func TestInvalidRequestSentinel(t *testing.T) {
	ctx := context.Background()
	g := smallGraph(t)

	if _, err := mcmpart.NewPlanner(nil); !errors.Is(err, mcmpart.ErrInvalidRequest) {
		t.Fatalf("nil package: err = %v, want ErrInvalidRequest", err)
	}
	pl, err := mcmpart.NewPlanner(mcmpart.Dev4())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(ctx, nil, mcmpart.PlanOptions{}); !errors.Is(err, mcmpart.ErrInvalidRequest) {
		t.Fatalf("nil graph: err = %v, want ErrInvalidRequest", err)
	}
	if _, err := pl.Plan(ctx, g, mcmpart.PlanOptions{SampleBudget: -4}); !errors.Is(err, mcmpart.ErrInvalidRequest) {
		t.Fatalf("negative budget: err = %v, want ErrInvalidRequest", err)
	}
	if _, err := pl.Plan(ctx, g, mcmpart.PlanOptions{Method: "telepathy"}); !errors.Is(err, mcmpart.ErrInvalidRequest) {
		t.Fatalf("unknown method: err = %v, want ErrInvalidRequest", err)
	}
	if _, err := pl.Pretrain(ctx, nil, mcmpart.PretrainOptions{TotalSamples: -1}); !errors.Is(err, mcmpart.ErrInvalidRequest) {
		t.Fatalf("negative pretrain budget: err = %v, want ErrInvalidRequest", err)
	}

	svc, err := mcmpart.NewService(mcmpart.Dev4(), mcmpart.ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Submit(ctx, mcmpart.PlanRequest{}); !errors.Is(err, mcmpart.ErrInvalidRequest) {
		t.Fatalf("Submit nil graph: err = %v, want ErrInvalidRequest", err)
	}

	srv := httptest.NewServer(mcmpart.NewHTTPHandler(svc))
	defer srv.Close()
	cl := mcmpart.NewClient(srv.URL, srv.Client())
	_, err = cl.Plan(ctx, g, mcmpart.PlanOptions{SampleBudget: -4})
	if !errors.Is(err, mcmpart.ErrInvalidRequest) {
		t.Fatalf("over HTTP: err = %v, want ErrInvalidRequest", err)
	}
	var ae *mcmpart.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("over HTTP: err = %v, want *APIError with status 400", err)
	}

	// The ErrNoPlan sentinel's text is the historical message prefix: the
	// budget-exhausted path appends " within %d samples" to it, keeping
	// the wire-visible string exactly what pre-sentinel clients logged.
	if got := mcmpart.ErrNoPlan.Error(); got != "mcmpart: no valid partition found" {
		t.Fatalf("ErrNoPlan text drifted: %q", got)
	}
}
