package mcmpart

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// backcompatGolden pins one (preset, graph) pair's outputs to the exact
// values the pre-topology code produced (captured at the commit before the
// Topology/heterogeneity refactor). Float64s are compared as raw bits:
// "bit-identical" is the contract, not "close".
type backcompatGolden struct {
	pkgName, graphName string
	greedyHash         uint64 // FNV-64a over the greedy partition
	greedyLatBits      uint64 // costmodel.Latency(greedy)
	simValid           bool   // hwsim Evaluate(greedy).Valid (Seed 7)
	simIntervalBits    uint64 // hwsim Evaluate(greedy).Interval
	simLinkSumBits     uint64 // sum of Evaluate(greedy).LinkBusy
	sampleHash         uint64 // SampleMode partition, rng seed 42
	sampleLatBits      uint64 // costmodel.Latency(sample)
	sampleSimValid     bool
	sampleIntervalBits uint64
}

// backcompatGoldens were captured by running greedy, the analytical model,
// the hardware simulator, and one seeded solver sample on every preset at
// the last pre-refactor commit. They pin that dev4/dev8/edge36 on the
// default uni-directional ring stay byte-for-byte reproducible through the
// costmodel, hwsim, and solver layers.
var backcompatGoldens = []backcompatGolden{
	{"dev4", "train0", 9049743757526993318, 0x3fa2b763ddb6b132, false, 0, 0, 2281948648204045220, 0x3f968c837f0a37a7, false, 0},
	{"dev8", "train0", 9515695107100437284, 0x3f7670c189e93302, false, 0, 0, 7608162308044683684, 0x3f83fb32a62538ed, false, 0},
	{"edge36", "train0", 15406877705714322980, 0x3f851ea005fb93a6, true, 0x3f88f4c0bc001848, 0x3ef9ab4cca5e079e, 5003528642126932465, 0x3f641303f64c75b9, true, 0x3f675fc76bf53eef},
	{"dev4", "test0", 10833498989129922055, 0x3facbd44a791d2b1, false, 0, 0, 13966914501390211173, 0x3f994e9269694ceb, false, 0},
	{"dev8", "test0", 16568854066880853060, 0x3f75147c04e70db3, false, 0, 0, 4065708830383170147, 0x3f88ee628f462c31, false, 0},
	{"edge36", "test0", 17657011021920490084, 0x3f8f2d44dd9f2d47, true, 0x3f9273aa7a9d1420, 0x3ef346eadc3d9447, 12191970112149665337, 0x3f6459d504e127d1, true, 0x3f67746513d8a0be},
	{"edge36", "bert", 14882221997265238923, 0x3f6ad5b14ac8371f, true, 0x3f71537450489b1a, 0x3f556fdc6478024f, 9512465940219290639, 0x3f6ab029d4071c8d, true, 0x3f704a53fe63e1f4},
}

func hashPartition(p partition.Partition) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range p {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(c) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestBackCompatRingPresetsBitIdentical is the refactor's back-compat gate:
// every pre-existing preset on the default uni-directional ring must produce
// bit-identical greedy partitions, cost-model latencies, simulator results,
// and solver samples.
func TestBackCompatRingPresetsBitIdentical(t *testing.T) {
	ds := workload.Corpus(1)
	graphs := map[string]*graph.Graph{
		"train0": ds.Train[0],
		"test0":  ds.Test[0],
		"bert":   workload.BERT(),
	}
	for _, gold := range backcompatGoldens {
		pkg, err := mcm.Preset(gold.pkgName)
		if err != nil {
			t.Fatal(err)
		}
		g := graphs[gold.graphName]
		name := gold.pkgName + "/" + gold.graphName

		greedy := search.GreedyPackage(g, pkg)
		if h := hashPartition(greedy); h != gold.greedyHash {
			t.Errorf("%s: greedy partition hash %d, want %d", name, h, gold.greedyHash)
		}
		if bits := math.Float64bits(costmodel.New(pkg).Latency(g, greedy)); bits != gold.greedyLatBits {
			t.Errorf("%s: greedy latency bits %016x, want %016x", name, bits, gold.greedyLatBits)
		}
		sim := hwsim.New(pkg, hwsim.Options{Seed: 7})
		res := sim.Evaluate(g, greedy)
		if res.Valid != gold.simValid {
			t.Errorf("%s: simulator validity %t, want %t (%s)", name, res.Valid, gold.simValid, res.FailReason)
		}
		if bits := math.Float64bits(res.Interval); bits != gold.simIntervalBits {
			t.Errorf("%s: simulator interval bits %016x, want %016x", name, bits, gold.simIntervalBits)
		}
		var linkSum float64
		for _, l := range res.LinkBusy {
			linkSum += l
		}
		if bits := math.Float64bits(linkSum); bits != gold.simLinkSumBits {
			t.Errorf("%s: link-busy sum bits %016x, want %016x", name, bits, gold.simLinkSumBits)
		}

		pr, err := cpsolver.NewAutoPkg(g, pkg, cpsolver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := pr.SampleMode(nil, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("%s: sample: %v", name, err)
		}
		if h := hashPartition(sp); h != gold.sampleHash {
			t.Errorf("%s: solver sample hash %d, want %d", name, h, gold.sampleHash)
		}
		if bits := math.Float64bits(costmodel.New(pkg).Latency(g, sp)); bits != gold.sampleLatBits {
			t.Errorf("%s: sample latency bits %016x, want %016x", name, bits, gold.sampleLatBits)
		}
		spres := sim.Evaluate(g, sp)
		if spres.Valid != gold.sampleSimValid {
			t.Errorf("%s: sample sim validity %t, want %t", name, spres.Valid, gold.sampleSimValid)
		}
		if bits := math.Float64bits(spres.Interval); bits != gold.sampleIntervalBits {
			t.Errorf("%s: sample sim interval bits %016x, want %016x", name, bits, gold.sampleIntervalBits)
		}
	}
}

// TestNewPresetsEndToEnd pins that the heterogeneous and non-ring presets
// work through the full PartitionGraph pipeline (the library form of
// `mcmpart -mcm het4` / `-mcm mesh16`), simulator evaluation included.
func TestNewPresetsEndToEnd(t *testing.T) {
	ds := workload.Corpus(1)
	var fits *graph.Graph
	for _, g := range ds.Train {
		if g.Name() == "chaincnn-10" {
			fits = g
		}
	}
	if fits == nil {
		t.Fatal("corpus graph chaincnn-10 missing")
	}
	cases := []struct {
		pkg *mcm.Package
		g   *graph.Graph
	}{
		{mcm.Het4(), fits},
		{mcm.Mesh16(), fits},
		{mcm.Dev8Bi(), fits},
	}
	for _, c := range cases {
		res, err := PartitionGraph(c.g, c.pkg, Options{
			Method:       MethodRandom,
			SampleBudget: 25,
			Seed:         3,
			UseSimulator: true,
		})
		if err != nil {
			t.Errorf("%s: %v", c.pkg.Name, err)
			continue
		}
		if res.Improvement <= 0 {
			t.Errorf("%s: no improvement found", c.pkg.Name)
		}
		if err := Validate(c.g, c.pkg, res.Partition); err != nil {
			t.Errorf("%s: emitted invalid partition: %v", c.pkg.Name, err)
		}
		if hw := Evaluate(c.g, c.pkg, res.Partition); !hw.Valid {
			t.Errorf("%s: best partition fails on hardware: %s", c.pkg.Name, hw.FailReason)
		}
	}
}
