package mcmpart

import "testing"

// TestOptionsWireRoundTrip pins that optionsToWire and
// PlanOptionsWire.Options are inverses over every serializable field.
// SeedFromAnalytic used to be dropped on the client→wire leg, silently
// disabling analytic seeding for every remote caller; the exhaustive
// field check keeps the next PlanOptions addition from repeating that.
func TestOptionsWireRoundTrip(t *testing.T) {
	opts := PlanOptions{
		Method:           MethodFineTune,
		SampleBudget:     321,
		Seed:             77,
		UseSimulator:     true,
		SeedFromAnalytic: true,
	}
	// Progress is the one documented non-serializable field (and it makes
	// PlanOptions non-comparable); everything else must survive.
	got := optionsToWire(opts).Options()
	if got.Method != opts.Method || got.SampleBudget != opts.SampleBudget ||
		got.Seed != opts.Seed || got.UseSimulator != opts.UseSimulator ||
		got.SeedFromAnalytic != opts.SeedFromAnalytic {
		t.Fatalf("options did not round-trip: got %+v, want %+v", got, opts)
	}
}
