package mcmpart_test

import (
	"testing"

	"mcmpart"
	"mcmpart/internal/randgraph"
)

// FuzzPlan fuzzes the planning surface end to end: a generated graph (the
// family, size, and structure seed all drawn by the fuzzer) is planned on a
// dev package with a fuzzed method, budget, seed, and environment. The
// contract under test is the conformance harness's plan oracle: every call
// either returns a typed error or a partition that passes ValidateOn with
// consistent Result fields — never a panic, never a silently-invalid plan.
func FuzzPlan(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(24), uint8(0), uint8(4), false)
	f.Add(int64(2), uint8(1), uint16(40), uint8(1), uint8(6), true)
	f.Add(int64(3), uint8(2), uint16(56), uint8(2), uint8(3), false)
	f.Add(int64(4), uint8(3), uint16(32), uint8(1), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed int64, famIdx uint8, nodes uint16, methodIdx uint8, budget uint8, useSim bool) {
		fams := randgraph.Families()
		g := randgraph.Generate(randgraph.Config{
			Family: fams[int(famIdx)%len(fams)],
			Nodes:  8 + int(nodes%56), // keep each execution fast
			Seed:   seed,
		})
		methods := []mcmpart.Method{mcmpart.MethodGreedy, mcmpart.MethodRandom, mcmpart.MethodSA}
		pkg := mcmpart.Dev4()
		opts := mcmpart.Options{
			Method:       methods[int(methodIdx)%len(methods)],
			SampleBudget: 1 + int(budget%6),
			Seed:         int64(uint64(seed) >> 1), // PlanOptions seeds are non-negative
			UseSimulator: useSim,
		}
		res, err := mcmpart.PartitionGraph(g, pkg, opts)
		if err != nil {
			if res != nil {
				t.Fatalf("error %v came with a non-nil result", err)
			}
			return // typed error: conforming (e.g. the graph does not fit)
		}
		if res == nil {
			t.Fatal("nil result without error")
		}
		if verr := mcmpart.Validate(g, pkg, res.Partition); verr != nil {
			t.Fatalf("plan returned an invalid partition: %v", verr)
		}
		if !(res.Throughput > 0) {
			t.Fatalf("plan returned throughput %v", res.Throughput)
		}
		if res.Samples < 1 {
			t.Fatalf("plan returned samples %d", res.Samples)
		}
		if n := len(res.History); n > 0 && res.History[n-1] != res.Improvement {
			t.Fatalf("history tail %v != improvement %v", res.History[n-1], res.Improvement)
		}
	})
}
