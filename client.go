package mcmpart

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a thin Go client for the mcmpartd HTTP API (see NewHTTPHandler
// for the routes and wire types). A Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://localhost:7433"). httpClient may be nil for http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// BaseURL returns the daemon base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// APIError is the client-side form of a daemon error response. Use
// errors.As to read the status code, or errors.Is against the service
// sentinels — the daemon's status-code mapping is inverted here, so
// errors.Is(err, ErrBusy) works the same whether the Service was called
// in-process or through a daemon.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mcmpartd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Is maps the daemon's HTTP status codes back to the service's sentinel
// errors: 429 → ErrBusy, 503 → ErrServiceClosed, 409 → ErrPolicyRequired.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBusy:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrServiceClosed:
		return e.StatusCode == http.StatusServiceUnavailable
	case ErrPolicyRequired:
		return e.StatusCode == http.StatusConflict
	}
	return false
}

// do issues one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("mcmpart: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return &APIError{StatusCode: resp.StatusCode, Message: er.Error}
		}
		// Malformed (non-JSON) error body: keep the raw text so proxies'
		// plain-text errors stay diagnosable.
		return &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("mcmpart: decoding response: %w", err)
	}
	return nil
}

// Plan runs a synchronous, cache-aware plan on the daemon.
func (c *Client) Plan(ctx context.Context, g *Graph, opts PlanOptions) (*PlanResponse, error) {
	var resp PlanResponse
	err := c.do(ctx, http.MethodPost, "/v1/plan", PlanRequestWire{
		Graph:   g,
		Options: optionsToWire(opts),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitJob submits an asynchronous plan and returns its initial status.
func (c *Client) SubmitJob(ctx context.Context, g *Graph, opts PlanOptions) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", PlanRequestWire{
		Graph:   g,
		Options: optionsToWire(opts),
	}, &st)
	return st, err
}

// JobStatus fetches the current status (and result, once terminal) of a job.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobResponse, error) {
	var resp JobResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CancelJob cancels a job; the daemon keeps its best-so-far result.
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// WaitJob polls a job until it is terminal (or ctx is done), returning the
// final response. poll <= 0 defaults to 250ms.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobResponse, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		resp, err := c.JobStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if resp.State.Terminal() {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Policies lists the daemon's installed and registry policies.
func (c *Client) Policies(ctx context.Context) (*PoliciesResponse, error) {
	var resp PoliciesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/policies", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's operational snapshot.
func (c *Client) Stats(ctx context.Context) (*ServiceStats, error) {
	var st ServiceStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

func optionsToWire(opts PlanOptions) PlanOptionsWire {
	return PlanOptionsWire{
		Method:       opts.Method,
		SampleBudget: opts.SampleBudget,
		Seed:         opts.Seed,
		UseSimulator: opts.UseSimulator,
	}
}
