package mcmpart

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mcmpart/internal/parallel"
)

// ClientOptions configure a Client's resilience behavior. The zero value
// (and NewClient) keeps the historical semantics: no retries, every
// failure surfaced immediately — retrying is opt-in because it multiplies
// load exactly when the daemon says it is overloaded.
type ClientOptions struct {
	// MaxRetries is how many times a failed request is retried beyond the
	// first attempt (0 disables retrying). Only idempotent-safe failures
	// are retried: transport errors, corrupt response bodies, 429 (queue
	// full), and 503 (draining or restarting) — every plan-API request is
	// idempotent because plans are a pure function of the request (DESIGN.md
	// §8), so re-sending can change cost, never the answer. Other HTTP
	// errors (400, 404, 409) and context cancellation are never retried.
	MaxRetries int
	// BaseBackoff is the first retry's backoff; each further retry doubles
	// it, capped at MaxBackoff (0 = 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = 2s). A server-provided
	// Retry-After overrides the computed backoff when longer.
	MaxBackoff time.Duration
	// Seed drives the deterministic backoff jitter (0 = 1). Two clients
	// with different seeds desynchronize their retry storms; the same seed
	// reproduces the exact retry schedule — the property the chaos tests
	// pin.
	Seed int64
	// PollErrorBudget is how many consecutive failed polls WaitJob
	// tolerates before giving up (0 = 3; negative = fail on the first,
	// the pre-retry behavior). The budget resets on every successful
	// poll, so a long wait survives any number of isolated blips but not
	// a dead daemon.
	PollErrorBudget int
	// OnRetry, when set, observes every retry the client is about to wait
	// out: the zero-based attempt number, the jittered delay it will
	// sleep, and the error that caused the retry. Chaos tests use it to
	// count retries deterministically; it runs on the requesting
	// goroutine and must not block.
	OnRetry func(attempt int, delay time.Duration, cause error)
}

// normalized resolves defaults.
func (o ClientOptions) normalized() ClientOptions {
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	switch {
	case o.PollErrorBudget < 0:
		o.PollErrorBudget = 1
	case o.PollErrorBudget == 0:
		o.PollErrorBudget = 3
	}
	return o
}

// Client is a thin Go client for the mcmpartd HTTP API (see NewHTTPHandler
// for the routes and wire types). A Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	opts ClientOptions
	// now is the clock Retry-After HTTP-dates are resolved against;
	// injectable so tests can pin it.
	now func() time.Time
	// retrySeq numbers retry sleeps across the client's lifetime, so the
	// jitter stream never repeats within one client but is reproducible
	// across runs with the same seed and call sequence.
	retrySeq atomic.Int64
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://localhost:7433"). httpClient may be nil for http.DefaultClient.
// Retrying is off; see NewClientWithOptions.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return NewClientWithOptions(baseURL, httpClient, ClientOptions{})
}

// NewClientWithOptions returns a client with explicit resilience options.
func NewClientWithOptions(baseURL string, httpClient *http.Client, opts ClientOptions) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient, opts: opts.normalized(), now: time.Now}
}

// BaseURL returns the daemon base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// APIError is the client-side form of a daemon error response. Use
// errors.As to read the status code, or errors.Is against the service
// sentinels — the daemon's status-code mapping is inverted here, so
// errors.Is(err, ErrBusy) works the same whether the Service was called
// in-process or through a daemon.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the parsed Retry-After header (0 when absent). The
	// daemon sends it on 429 and 503; the client's retry loop honors it
	// when it exceeds the computed backoff.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mcmpartd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Is maps the daemon's HTTP status codes back to the service's sentinel
// errors: 429 → ErrBusy, 503 → ErrServiceClosed, 409 → ErrPolicyRequired,
// 400 → ErrInvalidRequest.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBusy:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrServiceClosed:
		return e.StatusCode == http.StatusServiceUnavailable
	case ErrPolicyRequired:
		return e.StatusCode == http.StatusConflict
	case ErrInvalidRequest:
		return e.StatusCode == http.StatusBadRequest
	}
	return false
}

// retryable classifies an error as idempotent-safe to retry: transport
// and corrupt-body failures (the request may not even have arrived — and
// if it did, re-planning the same key yields the identical plan), plus the
// two explicitly transient daemon codes. Context cancellation belongs to
// the caller and is never retried.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusTooManyRequests ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	// Anything that is not a daemon-shaped response: connection refused,
	// reset mid-body, truncated or corrupt JSON.
	return true
}

// do issues a request, retrying per the client's options, and decodes the
// JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("mcmpart: encoding request: %w", err)
		}
		payload = data
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(ctx, method, path, payload, out)
		if err == nil || attempt >= c.opts.MaxRetries || !retryable(err) {
			return err
		}
		if serr := c.sleepBackoff(ctx, attempt, err); serr != nil {
			return serr
		}
	}
}

// backoffFor computes the pre-jitter exponential backoff for one retry:
// BaseBackoff doubled attempt times, saturating at MaxBackoff. The
// saturation test is shift-free on the growing side — BaseBackoff <<
// attempt wraps int64 at high attempt counts, and the wrap can land on a
// small *positive* value that slips a post-shift "d <= 0 || d > max"
// clamp — so instead compare against MaxBackoff >> attempt, which only
// shrinks and can never overflow.
func (c *Client) backoffFor(attempt int) time.Duration {
	base, max := c.opts.BaseBackoff, c.opts.MaxBackoff
	if attempt >= 63 || base > max>>attempt {
		return max
	}
	return base << attempt
}

// sleepBackoff waits out one retry: exponential backoff with deterministic
// seeded jitter, overridden by a longer server Retry-After, cut short by
// ctx.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, cause error) error {
	d := c.backoffFor(attempt)
	// Jitter into [d/2, d): enough spread to break retry synchronization
	// across clients, fully reproducible for a given seed and sequence.
	z := uint64(parallel.Seed(c.opts.Seed, int(c.retrySeq.Add(1))))
	frac := float64(z>>11) / float64(uint64(1)<<53)
	d = d/2 + time.Duration(float64(d/2)*frac)
	var apiErr *APIError
	if errors.As(cause, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	if c.opts.OnRetry != nil {
		c.opts.OnRetry(attempt, d, cause)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// doOnce issues exactly one request.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"), c.now)}
		var er ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
		} else {
			// Malformed (non-JSON) error body: keep the raw text so proxies'
			// plain-text errors stay diagnosable.
			apiErr.Message = strings.TrimSpace(string(data))
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("mcmpart: decoding response: %w", err)
	}
	return nil
}

// parseRetryAfter reads both RFC 9110 forms of Retry-After: delay-seconds
// (what the daemon sends) and HTTP-date (what a proxy in front of it may
// rewrite the header to), the latter resolved against now. Garbage — and
// dates already in the past — parse as 0.
func parseRetryAfter(v string, now func() time.Time) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now()); d > 0 {
			return d
		}
	}
	return 0
}

// Plan runs a synchronous, cache-aware plan on the daemon.
func (c *Client) Plan(ctx context.Context, g *Graph, opts PlanOptions) (*PlanResponse, error) {
	var resp PlanResponse
	err := c.do(ctx, http.MethodPost, "/v1/plan", PlanRequestWire{
		Graph:   g,
		Options: optionsToWire(opts),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitJob submits an asynchronous plan and returns its initial status.
func (c *Client) SubmitJob(ctx context.Context, g *Graph, opts PlanOptions) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", PlanRequestWire{
		Graph:   g,
		Options: optionsToWire(opts),
	}, &st)
	return st, err
}

// JobStatus fetches the current status (and result, once terminal) of a job.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobResponse, error) {
	var resp JobResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// CancelJob cancels a job; the daemon keeps its best-so-far result.
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// WaitJob polls a job until it is terminal (or ctx is done), returning the
// final response. poll <= 0 defaults to 250ms. Isolated transient poll
// failures (a dropped connection, a proxy blip) do not abort the wait:
// WaitJob tolerates up to ClientOptions.PollErrorBudget consecutive
// transient failures, resetting the budget on every successful poll.
// Non-transient errors — an unknown job, a cancelled ctx — fail
// immediately.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobResponse, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	consecutive := 0
	for {
		resp, err := c.JobStatus(ctx, id)
		switch {
		case err == nil:
			consecutive = 0
			if resp.State.Terminal() {
				return resp, nil
			}
		case !retryable(err):
			return nil, err
		default:
			consecutive++
			if consecutive >= c.opts.PollErrorBudget {
				return nil, fmt.Errorf("mcmpart: %d consecutive failed polls for job %s: %w", consecutive, id, err)
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Policies lists the daemon's installed and registry policies.
func (c *Client) Policies(ctx context.Context) (*PoliciesResponse, error) {
	var resp PoliciesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/policies", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's operational snapshot.
func (c *Client) Stats(ctx context.Context) (*ServiceStats, error) {
	var st ServiceStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

func optionsToWire(opts PlanOptions) PlanOptionsWire {
	return PlanOptionsWire{
		Method:           opts.Method,
		SampleBudget:     opts.SampleBudget,
		Seed:             opts.Seed,
		UseSimulator:     opts.UseSimulator,
		SeedFromAnalytic: opts.SeedFromAnalytic,
	}
}
