package mcmpart_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mcmpart"
)

// TestPlanCancelReturnsBestSoFar pins the cancellation contract for every
// cancellable method: cancelling mid-budget stops promptly, the plan
// returns the best partition found so far, and the error is exactly
// ctx.Err().
func TestPlanCancelReturnsBestSoFar(t *testing.T) {
	pl, corpus := pretrainedPlanner(t)
	g := corpus[84]
	const budget = 100000 // far more than the cancelled run may consume
	for _, m := range []mcmpart.Method{
		mcmpart.MethodRandom, mcmpart.MethodSA, mcmpart.MethodRL,
		mcmpart.MethodZeroShot, mcmpart.MethodFineTune,
	} {
		t.Run(string(m), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const cancelAt = 20
			var seen int
			res, err := pl.Plan(ctx, g, mcmpart.PlanOptions{
				Method:       m,
				SampleBudget: budget,
				Seed:         7,
				Progress: func(ev mcmpart.ProgressEvent) {
					seen = ev.Samples
					if ev.Samples == cancelAt {
						cancel()
					}
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if res == nil {
				t.Fatal("cancelled plan must return the best-so-far result")
			}
			// Promptness: the search may only finish work already in
			// flight when the cancel lands (one PPO iteration at most for
			// the training methods), never a meaningful slice of the
			// remaining budget.
			if res.Samples > cancelAt+64 {
				t.Fatalf("consumed %d samples after cancel at %d", res.Samples, cancelAt)
			}
			if res.Samples != seen {
				t.Fatalf("result reports %d samples, progress saw %d", res.Samples, seen)
			}
			if res.Partition == nil || res.Improvement <= 0 {
				t.Fatalf("best-so-far result is empty: %+v", res)
			}
			if err := mcmpart.Validate(g, pl.Package(), res.Partition); err != nil {
				t.Fatalf("best-so-far partition invalid: %v", err)
			}
		})
	}
}

// TestPlanOnExpiredContext checks the degenerate case: a context that is
// already done yields no samples and no result.
func TestPlanOnExpiredContext(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev4())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := pl.Plan(ctx, smallGraph(t), mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 50})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("no samples ran, result should be nil, got %+v", res)
	}
}

// TestPlanDeadline checks deadline expiry surfaces as DeadlineExceeded with
// the best-so-far partition.
func TestPlanDeadline(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	g := mcmpart.CorpusGraphs(1)[84]
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := pl.Plan(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 10_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if res == nil || res.Partition == nil {
		t.Fatal("deadline-bounded plan must return best-so-far")
	}
}

// TestPretrainCancelInstallsBestSoFar pins Pretrain's cancellation
// contract: training stops at the next iteration boundary, the most recent
// checkpoint is installed as the planner's policy, and zero-shot planning
// works afterwards.
func TestPretrainCancelInstallsBestSoFar(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	corpus := mcmpart.CorpusGraphs(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	report, err := pl.Pretrain(ctx, corpus[:10], mcmpart.PretrainOptions{
		TotalSamples:     1_000_000, // would run for hours uncancelled
		Checkpoints:      5,
		ValidationGraphs: 2,
		Progress: func(ev mcmpart.ProgressEvent) {
			if ev.Samples == 50 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if report == nil || report.Checkpoints == 0 {
		t.Fatalf("cancelled pre-training must report its checkpoints, got %+v", report)
	}
	if report.Scores != nil {
		t.Fatal("validation was cancelled; scores must be nil")
	}
	if !pl.HasPolicy() {
		t.Fatal("cancelled pre-training must still install the best-so-far policy")
	}
	res, err := pl.Plan(context.Background(), corpus[84], mcmpart.PlanOptions{
		Method: mcmpart.MethodZeroShot, SampleBudget: 10,
	})
	if err != nil {
		t.Fatalf("zero-shot after cancelled pre-training: %v", err)
	}
	if res.Improvement <= 0 {
		t.Fatal("zero-shot after cancelled pre-training found nothing")
	}
}

// TestCancelLeaksNoGoroutines runs a cancelled plan and a cancelled
// pre-training and checks the goroutine count settles back to the
// baseline: cancellation must not strand rollout workers.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	pl, corpus := pretrainedPlanner(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := pl.Plan(ctx, corpus[84], mcmpart.PlanOptions{
			Method:       mcmpart.MethodFineTune,
			SampleBudget: 100000,
			Seed:         int64(i + 1),
			Progress: func(ev mcmpart.ProgressEvent) {
				if ev.Samples >= 10 {
					cancel()
				}
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: want context.Canceled, got %v", i, err)
		}
	}
	// Give worker goroutines a moment to drain, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before || time.Now().After(deadline) {
			if n > before+2 {
				t.Fatalf("goroutines grew from %d to %d after cancelled plans", before, n)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
