// Solver demo: the constraint machinery of Sec. 4.2 on Figure 2's running
// example. Shows how the solver's domains shrink under propagation, how
// SAMPLE and FIX mode work, and why the invalid partitions of Figures 2c-2e
// are rejected.
//
//	go run ./examples/solverdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/partition"
)

func main() {
	// Figure 2a: node 0 fans out to 1 and 2; 1 feeds 3; 2 and 3 feed 4.
	g := graph.New("figure2a")
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{Name: fmt.Sprintf("node%d", i), Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 1 << 10})
	}
	g.MustAddEdge(0, 1, 1<<10)
	g.MustAddEdge(0, 2, 1<<10)
	g.MustAddEdge(1, 3, 1<<10)
	g.MustAddEdge(2, 4, 1<<10)
	g.MustAddEdge(3, 4, 1<<10)

	const chips = 4
	fmt.Println("Figure 2's invalid partitions, rejected by the checker:")
	for _, tc := range []struct {
		name string
		p    partition.Partition
	}{
		{"2c acyclic dataflow", partition.Partition{0, 1, 0, 1, 0}},
		{"2d skipping chips", partition.Partition{0, 0, 0, 2, 2}},
		{"2e triangle dependency", partition.Partition{0, 1, 0, 1, 2}},
	} {
		err := tc.p.Validate(g, chips)
		fmt.Printf("  %-24s %v -> %v\n", tc.name, tc.p, err)
	}

	s, err := cpsolver.New(g, chips, cpsolver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconstraint propagation after assigning node 1 to chip 2:")
	if _, err := s.Assign(1, 2); err != nil {
		log.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Printf("  domain(node%d) = %v\n", v, s.Domain(v))
	}

	rng := rand.New(rand.NewSource(1))
	fmt.Println("\nSAMPLE mode (Algorithm 1) with a uniform distribution:")
	for i := 0; i < 3; i++ {
		p, err := s.Sample(cpsolver.RandomOrder(rng, g.NumNodes()), nil, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sample %d: %v\n", i, p)
	}

	fmt.Println("\nFIX mode (Algorithm 2) repairing Figure 2e's invalid hint:")
	p, err := s.Fix(cpsolver.RandomOrder(rng, g.NumNodes()), []int{0, 1, 0, 1, 2}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  repaired: %v (valid: %v)\n", p, p.Validate(g, chips) == nil)
	st := s.StatsSnapshot()
	fmt.Printf("\nsolver work: %d decisions, %d backtracks, %d propagations\n",
		st.Decisions, st.Backtracks, st.Propagations)
}
