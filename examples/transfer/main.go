// Transfer learning: pre-train the RL policy on a set of small models with
// the analytical cost model as reward, then deploy it zero-shot and with
// fine-tuning on an unseen graph — the paper's Figure 4 workflow end to end.
//
//	go run ./examples/transfer
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/pretrain"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

func main() {
	pkg := mcm.Dev8()
	model := costmodel.New(pkg)
	factory := func(g *graph.Graph) (*rl.Env, error) {
		pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
		if err != nil {
			return nil, err
		}
		eval := func(p partition.Partition) (float64, bool) { return model.Evaluate(g, p) }
		baseTh, _ := eval(search.GreedyPackage(g, pkg))
		return rl.NewEnv(rl.NewGraphContext(g), pr, eval, baseTh), nil
	}

	// Pre-train on a handful of corpus graphs.
	ds := workload.Corpus(1)
	cfg := pretrain.QuickConfig(pkg.Chips)
	cfg.TotalSamples = 400
	cfg.Checkpoints = 5
	fmt.Println("pre-training on", len(ds.Train[:8]), "graphs against the analytical cost model...")
	res, err := pretrain.Run(ds.Train[:8], ds.Validation[:2], factory, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoints: %d, validation scores: %.3f (best #%d)\n\n",
		len(res.Checkpoints), res.Scores, res.BestIndex)

	// Deploy on an unseen test graph three ways (an MLP: the family with
	// the widest gap between the greedy baseline and a balanced pipeline).
	unseen := ds.Test[0]
	for _, g := range ds.Test {
		if strings.HasPrefix(g.Name(), "mlp") {
			unseen = g
			break
		}
	}
	fmt.Printf("deploying on unseen graph %v\n", unseen)
	budget := 60
	rng := rand.New(rand.NewSource(2))

	fresh, _ := factory(unseen)
	search.Random(fresh, budget, rng)
	fmt.Printf("  random search:   %.3fx after %d samples\n", fresh.BestImprovement(), fresh.Samples)

	zs, _ := factory(unseen)
	policy := rl.NewPolicy(cfg.Policy, rng)
	if err := policy.Restore(res.Best()); err != nil {
		log.Fatal(err)
	}
	rl.ZeroShot(policy, zs, budget, rng)
	fmt.Printf("  RL zero-shot:    %.3fx after %d samples\n", zs.BestImprovement(), zs.Samples)

	ft, _ := factory(unseen)
	policy2 := rl.NewPolicy(cfg.Policy, rng)
	if err := policy2.Restore(res.Best()); err != nil {
		log.Fatal(err)
	}
	rl.FineTune(policy2, ft, cfg.PPO, budget, rng)
	fmt.Printf("  RL fine-tuning:  %.3fx after %d samples\n", ft.BestImprovement(), ft.Samples)
}
