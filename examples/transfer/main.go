// Transfer learning: pre-train the RL policy on a set of small models with
// the analytical cost model as reward, then deploy it zero-shot and with
// fine-tuning on an unseen graph — the paper's Figure 4 workflow end to
// end, entirely through the public Planner API.
//
//	go run ./examples/transfer
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mcmpart"
)

func main() {
	ctx := context.Background()
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		log.Fatal(err)
	}

	// Pre-train on a handful of corpus graphs (the last two are held out
	// as the validation set the checkpoint selector scores against).
	corpus := mcmpart.CorpusGraphs(1)
	fmt.Println("pre-training on 8 graphs against the analytical cost model...")
	report, err := pl.Pretrain(ctx, corpus[:10], mcmpart.PretrainOptions{
		TotalSamples:     400,
		Checkpoints:      5,
		ValidationGraphs: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoints: %d, validation scores: %.3f (best #%d)\n\n",
		report.Checkpoints, report.Scores, report.BestIndex)

	// Deploy on an unseen graph three ways (an MLP from the held-out tail
	// of the corpus: the family with the widest gap between the greedy
	// baseline and a balanced pipeline).
	unseen := corpus[len(corpus)-1]
	for _, g := range corpus[80:] {
		if strings.HasPrefix(g.Name(), "mlp") {
			unseen = g
			break
		}
	}
	fmt.Printf("deploying on unseen graph %v\n", unseen)
	const threshold = 1.05
	for _, m := range []mcmpart.Method{mcmpart.MethodRL, mcmpart.MethodZeroShot, mcmpart.MethodFineTune} {
		res, err := pl.Plan(ctx, unseen, mcmpart.PlanOptions{
			Method:       m,
			SampleBudget: 80,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		reach := "not reached"
		if n, ok := res.SamplesToImprovement(threshold); ok {
			reach = fmt.Sprintf("%d samples to %.2fx", n, threshold)
		}
		fmt.Printf("  %-9s best %.3fx after %d samples (%s)\n", m, res.Improvement, res.Samples, reach)
	}
}
