// Example serving demonstrates the concurrent planning service end to end,
// in one process: build a Service with a policy registry, expose it over
// HTTP exactly as cmd/mcmpartd does, and drive it with the thin Go client —
// a cold plan, a cached repeat (bit-identical), an async job with progress
// polling, and the operational stats.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"mcmpart"
)

func main() {
	ctx := context.Background()

	// Pre-train once and drop the artifact into a registry directory —
	// normally done offline, by another process, possibly another machine.
	dir, err := os.MkdirTemp("", "mcmpart-registry-*")
	check(err)
	defer os.RemoveAll(dir)
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	check(err)
	corpus := mcmpart.CorpusGraphs(1)
	fmt.Println("pre-training a dev8 policy (small budget for the demo)…")
	_, err = pl.Pretrain(ctx, corpus[:6], mcmpart.PretrainOptions{
		TotalSamples: 120, Checkpoints: 3, ValidationGraphs: 1, ValidationSamples: 4,
	})
	check(err)
	check(pl.SavePolicy(filepath.Join(dir, "dev8.policy.json")))

	// The serving side: one Service per package, shared by every caller.
	// The newest registry policy for dev8 is installed automatically.
	svc, err := mcmpart.NewService(mcmpart.Dev8(), mcmpart.ServiceOptions{
		Workers:   2,
		PolicyDir: dir,
	})
	check(err)
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	server := &http.Server{Handler: mcmpart.NewHTTPHandler(svc)}
	//mcmlint:ignore goleak Serve returns when the deferred server.Close runs; the example exits right after
	go server.Serve(ln)
	defer server.Close()
	cl := mcmpart.NewClient("http://"+ln.Addr().String(), nil)
	check(cl.Health(ctx))
	fmt.Println("daemon up on", ln.Addr())

	// A held-out graph the policy never saw, planned zero-shot over HTTP.
	held := corpus[84]
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot, SampleBudget: 10, Seed: 7}
	start := time.Now()
	first, err := cl.Plan(ctx, held, opts)
	check(err)
	fmt.Printf("cold plan of %s: %.2fx over greedy in %d samples (%.1f ms, cached=%v)\n",
		held.Name(), first.Result.Improvement, first.Result.Samples,
		ms(start), first.Cached)

	start = time.Now()
	second, err := cl.Plan(ctx, held, opts)
	check(err)
	fmt.Printf("same request again: cached=%v, identical=%v (%.2f ms)\n",
		second.Cached,
		first.Result.Throughput == second.Result.Throughput, ms(start))

	// The async job API: submit, poll progress, fetch the result.
	st, err := cl.SubmitJob(ctx, corpus[85], mcmpart.PlanOptions{
		Method: mcmpart.MethodFineTune, SampleBudget: 24, Seed: 7,
	})
	check(err)
	fmt.Printf("submitted %s (%s)\n", st.ID, st.State)
	final, err := cl.WaitJob(ctx, st.ID, 25*time.Millisecond)
	check(err)
	fmt.Printf("%s finished: state=%s improvement=%.2fx samples=%d\n",
		final.ID, final.State, final.Result.Improvement, final.Samples)

	stats, err := cl.Stats(ctx)
	check(err)
	fmt.Printf("stats: %d misses / %d hits, %d jobs done, policy installed=%v\n",
		stats.CacheMisses, stats.CacheHits, stats.JobsDone, stats.PolicyInstalled)
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
