// BERT partitioning: the paper's Sec. 5.3 scenario in miniature. Search for
// a 36-way partition of the 2138-node BERT graph on the hardware simulator,
// comparing the greedy compiler heuristic, random search, and simulated
// annealing under the same evaluation budget.
//
//	go run ./examples/bertpartition
package main

import (
	"fmt"
	"log"

	"mcmpart"
)

func main() {
	g := mcmpart.BERT()
	pkg := mcmpart.Edge36()
	fmt.Printf("workload: %v (%d MiB of weights)\n", g, g.TotalParamBytes()>>20)
	fmt.Printf("package:  %v\n\n", pkg)

	budget := 120
	for _, method := range []mcmpart.Method{mcmpart.MethodGreedy, mcmpart.MethodRandom, mcmpart.MethodSA} {
		res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{
			Method:       method,
			SampleBudget: budget,
			Seed:         7,
			UseSimulator: true, // search against the real memory constraint
		})
		if err != nil {
			log.Fatalf("%s: %v", method, err)
		}
		fmt.Printf("%-8s throughput %8.1f inf/s  improvement %.2fx  (%d samples)\n",
			method, res.Throughput, res.Improvement, res.Samples)
	}

	fmt.Println("\nthe headline result of the paper is that a pre-trained RL policy")
	fmt.Println("reaches the same quality in ~20 samples; run cmd/mcmexp -exp fig6")
	fmt.Println("to reproduce that comparison end to end.")
}
