// Quickstart: build a small CNN, partition it onto a 4-chip MCM package
// with the constrained-RL partitioner, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcmpart"
	"mcmpart/internal/workload"
)

func main() {
	// A residual CNN: the skip connections are what make naive
	// partitioning invalid on MCM hardware (an edge may not straddle two
	// chip boundaries).
	g := workload.ResidualCNN(workload.CNNConfig{
		Name:           "quickstart-resnet",
		InputSize:      32,
		Channels:       32,
		Stages:         3,
		BlocksPerStage: 2,
		Classes:        10,
	})
	pkg := mcmpart.Dev4()
	fmt.Printf("graph: %v\npackage: %v\n\n", g, pkg)

	res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{
		Method:       mcmpart.MethodRL,
		SampleBudget: 120,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best partition after %d samples: %v\n", res.Samples, res.Partition)
	fmt.Printf("throughput: %.0f inferences/s (%.2fx over the greedy heuristic)\n\n",
		res.Throughput, res.Improvement)

	// Check it against the hardware simulator, including the dynamic
	// memory constraint the solver cannot see.
	hw := mcmpart.Evaluate(g, pkg, res.Partition)
	fmt.Printf("hardware check: valid=%v interval=%.3gs\n", hw.Valid, hw.Interval)
	for c, busy := range hw.ChipBusy {
		fmt.Printf("  chip %d: busy %.3gs, peak memory %d KiB\n", c, busy, hw.PeakMem[c]>>10)
	}
}
