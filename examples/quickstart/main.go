// Quickstart: the Planner session API end to end — pre-train a policy on a
// small corpus, save it as a versioned artifact, load it into a fresh
// planner, and deploy it zero-shot on an unseen residual CNN, watching
// progress stream as the plan runs.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mcmpart"
	"mcmpart/internal/workload"
)

func main() {
	ctx := context.Background()
	pkg := mcmpart.Dev4()

	// 1. Pre-train once on a slice of the synthetic corpus (Sec. 4.3's
	// pipeline: PPO against the analytical cost model, validation worker
	// picks the transferable checkpoint).
	pl, err := mcmpart.NewPlanner(pkg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pre-training on 6 corpus graphs...")
	report, err := pl.Pretrain(ctx, mcmpart.CorpusGraphs(1)[:6], mcmpart.PretrainOptions{
		TotalSamples: 300,
		Checkpoints:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-trained: %d checkpoints, best #%d (validation scores %.3f)\n\n",
		report.Checkpoints, report.BestIndex, report.Scores)

	// 2. Save the policy as a versioned artifact. The file embeds a
	// fingerprint of the package, so loading it into a planner for a
	// different package fails loudly instead of silently mis-planning.
	dir, err := os.MkdirTemp("", "mcmpart-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	artifact := filepath.Join(dir, "dev4.policy.json")
	if err := pl.SavePolicy(artifact); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved policy artifact to %s\n", artifact)

	// 3. A later session (a fresh planner) loads the artifact…
	pl2, err := mcmpart.NewPlanner(pkg)
	if err != nil {
		log.Fatal(err)
	}
	if err := pl2.LoadPolicy(artifact); err != nil {
		log.Fatal(err)
	}
	// …while a planner for a different package refuses it.
	wrong, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading dev4 policy into a dev8 planner: %v\n\n", wrong.LoadPolicy(artifact))

	// 4. Plan an unseen graph zero-shot: no weight updates, just the
	// pre-trained policy driving the constraint solver. A residual CNN's
	// skip connections are what make naive partitioning invalid on MCM
	// hardware (an edge may not straddle two chip boundaries).
	g := workload.ResidualCNN(workload.CNNConfig{
		Name:           "quickstart-resnet",
		InputSize:      32,
		Channels:       32,
		Stages:         3,
		BlocksPerStage: 2,
		Classes:        10,
	})
	fmt.Printf("planning %v zero-shot\n", g)
	res, err := pl2.Plan(ctx, g, mcmpart.PlanOptions{
		Method:       mcmpart.MethodZeroShot,
		SampleBudget: 60,
		Progress: func(ev mcmpart.ProgressEvent) {
			if ev.Samples%20 == 0 {
				fmt.Printf("  %3d samples, best %.3fx\n", ev.Samples, ev.BestImprovement)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best partition after %d samples: %.2fx over the greedy heuristic\n\n",
		res.Samples, res.Improvement)

	// 5. Check it against the hardware simulator, including the dynamic
	// memory constraint the solver cannot see.
	hw := mcmpart.Evaluate(g, pkg, res.Partition)
	fmt.Printf("hardware check: valid=%v interval=%.3gs\n", hw.Valid, hw.Interval)
	for c, busy := range hw.ChipBusy {
		fmt.Printf("  chip %d: busy %.3gs, peak memory %d KiB\n", c, busy, hw.PeakMem[c]>>10)
	}
}
