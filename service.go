package mcmpart

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"

	"mcmpart/internal/faultinject"
	"mcmpart/internal/parallel"
	"mcmpart/internal/plancache"
	"mcmpart/internal/rl"
)

// Service errors.
var (
	// ErrServiceClosed is returned by Submit, Plan, and PlanBatch after
	// Close, and while the service is draining (BeginDrain/Drain). Over
	// HTTP it maps to 503 with a Retry-After header — a load balancer's
	// signal to route elsewhere and retry.
	ErrServiceClosed = errors.New("mcmpart: service is closed")
	// ErrBusy is returned by Submit when the job queue is at capacity —
	// the admission-control signal; callers shed load or retry later.
	ErrBusy = errors.New("mcmpart: service queue is full")
	// ErrPolicyRequired is returned by Planner.Plan and Service.Submit when
	// a deployed-policy method (MethodZeroShot, MethodFineTune) is requested
	// but no pre-trained policy is installed or available in the registry.
	// Over HTTP it maps to 409 Conflict, and Client maps 409 back to it.
	ErrPolicyRequired = errors.New("mcmpart: a pre-trained policy is required")
	// ErrPlanPanic wraps a panic recovered from a planning worker: the job
	// fails with a typed error and the service keeps serving — one
	// poisoned request must not take the node down.
	ErrPlanPanic = errors.New("mcmpart: plan panicked")
	// ErrInvalidRequest wraps every request-validation failure — a nil
	// graph, a negative budget or seed, an unknown method. Over HTTP it
	// maps to 400 Bad Request, and Client maps 400 back to it, so
	// errors.Is(err, ErrInvalidRequest) distinguishes "fix the request"
	// from transient service states in-process and across the wire alike.
	ErrInvalidRequest = errors.New("mcmpart: invalid request")
	// ErrNoPlan is returned by Plan when the search exhausts its sample
	// budget without finding any valid partition, and by the baseline
	// stage when even the greedy layout does not fit the package.
	ErrNoPlan = errors.New("mcmpart: no valid partition found")
)

// ServiceOptions configure NewService. The zero value is a working
// configuration: process-default workers, a 4x queue, a 256-entry cache,
// no disk tier, and no policy directory.
type ServiceOptions struct {
	// Workers is the number of plans that may run concurrently
	// (0 = process default, see internal worker-pool default; negative is
	// an error).
	Workers int
	// QueueDepth bounds how many admitted jobs may wait for a worker
	// (0 = 4x Workers; negative is an error). When the queue is full,
	// Submit returns ErrBusy.
	QueueDepth int
	// CacheEntries bounds the in-memory plan cache (0 = 256 entries;
	// negative disables caching).
	CacheEntries int
	// CacheDir, when set, opens a crash-safe persistent plan-cache tier
	// under the in-memory LRU (created if missing). Completed plans are
	// written through (temp file + fsync + atomic rename, versioned and
	// checksummed), and in-memory misses consult the directory lazily, so
	// plans survive restarts with O(1) startup cost. Corrupt, truncated,
	// or stale-version entries are quarantined and logged, never served.
	CacheDir string
	// DisableCoalescing turns off single-flight request coalescing:
	// concurrent requests that normalize to the same cache key each run
	// their own plan instead of sharing one in-flight computation. The
	// results are identical either way (plans are a pure function of the
	// key); this exists for benchmarking the coalescing win and for
	// debugging, not for production.
	DisableCoalescing bool
	// PolicyDir, when set, opens a directory-backed policy registry
	// (created if missing). At startup — and lazily at plan time whenever
	// no policy is installed — the service installs the newest registry
	// policy matching its package, enabling MethodZeroShot and
	// MethodFineTune without an explicit Pretrain.
	PolicyDir string
	// MaxRetainedJobs bounds how many terminal jobs the service keeps
	// addressable by ID for status queries (0 = 1024; negative is an
	// error). Oldest terminal jobs are evicted first; live jobs are never
	// evicted.
	MaxRetainedJobs int
}

// ServiceStats is a point-in-time operational snapshot of a Service.
type ServiceStats struct {
	Package            string `json:"package"`
	PackageFingerprint string `json:"package_fingerprint"`
	Workers            int    `json:"workers"`
	QueueDepth         int    `json:"queue_depth"`

	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheEntries  int    `json:"cache_entries"`
	CacheCapacity int    `json:"cache_capacity"`

	// PlansExecuted counts actual planner invocations; PlansCoalesced
	// counts requests that shared another request's in-flight computation
	// instead of planning. Under single-flight, N concurrent identical
	// cold requests add 1 to the former and N-1 to the latter.
	PlansExecuted  uint64 `json:"plans_executed"`
	PlansCoalesced uint64 `json:"plans_coalesced"`

	// Disk tier (all zero without ServiceOptions.CacheDir). Hits are
	// in-memory misses served from disk; Quarantined counts entries set
	// aside after failing verification — corruption detected, never served.
	DiskCacheHits        uint64 `json:"disk_cache_hits"`
	DiskCacheWrites      uint64 `json:"disk_cache_writes"`
	DiskCacheWriteErrors uint64 `json:"disk_cache_write_errors"`
	DiskCacheQuarantined uint64 `json:"disk_cache_quarantined"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsQueued    int    `json:"jobs_queued"`
	JobsRunning   int    `json:"jobs_running"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`

	// Draining reports that admission is stopped (BeginDrain/Drain/Close)
	// while previously admitted work finishes.
	Draining bool `json:"draining"`

	PolicyInstalled   bool   `json:"policy_installed"`
	PolicyFingerprint string `json:"policy_fingerprint,omitempty"`
	RegistryPolicies  int    `json:"registry_policies"`
}

// PolicyInfo describes one policy visible to the service: the installed
// one and/or a registry artifact.
type PolicyInfo struct {
	// Path is the artifact file ("" for a policy installed via Pretrain
	// that was never saved).
	Path string `json:"path,omitempty"`
	// PackageName names the package the policy was pre-trained for.
	PackageName string `json:"package_name"`
	// PackageFingerprint is the fingerprint the artifact is bound to.
	PackageFingerprint string `json:"package_fingerprint"`
	// Seq is the registry sequence number (0 outside the registry naming
	// scheme). Higher is newer among one package's policies.
	Seq int `json:"seq"`
	// Installed marks the policy currently driving MethodZeroShot and
	// MethodFineTune plans.
	Installed bool `json:"installed"`
}

// PlanRequest is one unit of work for Submit and PlanBatch.
type PlanRequest struct {
	// Graph is the computation graph to partition.
	Graph *Graph
	// Options configure the plan exactly as in Planner.Plan. The Progress
	// callback, when set, streams from the worker goroutine running the
	// job; Job.Status additionally exposes the latest progress snapshot to
	// pollers. Coalesced requests receive the leader's progress stream.
	Options PlanOptions
}

// Service is a long-lived, concurrency-safe planning front end over a
// Planner — the process-wide object a daemon (cmd/mcmpartd) or an embedding
// application shares across all callers. It adds what a multi-tenant
// deployment needs beyond a bare Planner:
//
//   - a bounded LRU plan cache keyed by canonical graph fingerprint ×
//     package fingerprint × policy fingerprint × normalized options, so
//     repeated requests for the same model return instantly and
//     bit-identically — optionally backed by a crash-safe disk tier
//     (ServiceOptions.CacheDir) that survives restarts;
//   - single-flight coalescing: concurrent requests for the same cache key
//     share one in-flight computation (the leader plans; followers wait
//     under their own contexts and receive deep copies of its result);
//   - a policy registry (directory-backed) with automatic selection of the
//     newest matching policy at plan time;
//   - an async job API — Submit/Job.Wait/Status/Cancel and PlanBatch —
//     backed by a bounded worker pool with fail-fast admission (ErrBusy);
//   - a drain protocol (BeginDrain/Drain) for graceful shutdown behind a
//     load balancer, and panic containment: a panicking plan fails its job
//     with ErrPlanPanic instead of crashing the process.
//
// All methods are safe for concurrent use. Close shuts the service down.
type Service struct {
	planner  *Planner
	pkgFP    string
	cache    *planCache
	disk     *plancache.Store
	registry *rl.Registry
	pool     *parallel.Pool
	coalesce bool

	// root is the lifecycle context every job runs under; Close (and a
	// Drain deadline) cancels it.
	root     context.Context
	shutdown context.CancelFunc

	// jobsWG tracks every registered job from admission to its terminal
	// transition — what Drain waits on.
	jobsWG sync.WaitGroup
	// finalOnce guards the release of workers and the disk-tier flush,
	// shared by Close and Drain.
	finalOnce sync.Once

	// installedMu guards the provenance of the installed policy: the
	// registry path it came from ("" when installed via Pretrain or
	// LoadPolicy) and its fingerprint at install time.
	installedMu   sync.Mutex
	installedPath string // guarded by installedMu
	installedFP   string // guarded by installedMu

	mu             sync.Mutex
	closed         bool               // guarded by mu
	draining       bool               // guarded by mu
	seq            int                // guarded by mu
	jobs           map[string]*Job    // guarded by mu
	jobOrder       []string           // guarded by mu; insertion order, for terminal-job eviction
	maxRetained    int                // guarded by mu
	inflight       map[string]*flight // guarded by mu
	jobsSubmitted  uint64             // guarded by mu
	jobsDone       uint64             // guarded by mu
	jobsFailed     uint64             // guarded by mu
	jobsCancelled  uint64             // guarded by mu
	jobsQueued     int                // guarded by mu
	jobsRunning    int                // guarded by mu
	plansExecuted  uint64             // guarded by mu
	plansCoalesced uint64             // guarded by mu
	diskHits       uint64             // guarded by mu
}

// flight is one in-flight plan computation for one cache key: a leader job
// that actually plans, plus followers coalesced onto it. All fields except
// key/graph/graphFP are guarded by Service.mu.
type flight struct {
	key     string
	graph   *Graph
	graphFP string

	leader     *Job              // guarded by Service.mu
	leaderOpts PlanOptions       // guarded by Service.mu
	followers  []*flightFollower // guarded by Service.mu
	// done closes when the flight resolves (result, error, or abandoned
	// after the last waiter cancelled) — the signal follower watchers and
	// promotion exit on.
	done chan struct{}
}

// flightFollower is one coalesced request waiting on a flight.
type flightFollower struct {
	job      *Job
	progress ProgressFunc
	// promoted marks a follower that took over as leader after the
	// previous leader cancelled; detached marks one that cancelled while
	// waiting. Either way it is no longer in the followers slice.
	promoted bool // guarded by Service.mu
	detached bool // guarded by Service.mu
}

// NewService builds a service for one package. If opts.PolicyDir holds a
// policy pre-trained for the package, the newest one is installed
// immediately; otherwise the service starts policy-less (the from-scratch
// methods work, and a policy can still arrive via Pretrain, LoadPolicy, or
// a later registry drop picked up at plan time or by ReloadPolicies).
func NewService(pkg *Package, opts ServiceOptions) (*Service, error) {
	planner, err := NewPlanner(pkg)
	if err != nil {
		return nil, err
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("%w: Workers %d is negative; use 0 for the process default", ErrInvalidRequest, opts.Workers)
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("%w: QueueDepth %d is negative; use 0 for the default (4x workers)", ErrInvalidRequest, opts.QueueDepth)
	}
	if opts.MaxRetainedJobs < 0 {
		return nil, fmt.Errorf("%w: MaxRetainedJobs %d is negative; use 0 for the default (1024)", ErrInvalidRequest, opts.MaxRetainedJobs)
	}
	cacheEntries := opts.CacheEntries
	if cacheEntries == 0 {
		cacheEntries = 256
	}
	maxRetained := opts.MaxRetainedJobs
	if maxRetained == 0 {
		maxRetained = 1024
	}
	root, shutdown := context.WithCancel(context.Background())
	s := &Service{
		planner:     planner,
		pkgFP:       rl.PackageFingerprint(pkg),
		cache:       newPlanCache(cacheEntries),
		pool:        parallel.NewPool(opts.Workers, opts.QueueDepth),
		coalesce:    !opts.DisableCoalescing,
		root:        root,
		shutdown:    shutdown,
		jobs:        make(map[string]*Job),
		inflight:    make(map[string]*flight),
		maxRetained: maxRetained,
	}
	if opts.CacheDir != "" {
		disk, err := plancache.Open(opts.CacheDir, log.Printf)
		if err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
		s.disk = disk
	}
	if opts.PolicyDir != "" {
		reg, err := rl.OpenRegistry(opts.PolicyDir)
		if err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
		s.registry = reg
		if err := s.installLatestFromRegistry(); err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
	}
	return s, nil
}

// Planner returns the underlying planner, e.g. to Pretrain through the
// service or to Assess a partition. The planner is concurrency-safe; a
// policy installed on it is picked up by subsequent plans (and, because
// the cache keys on the policy fingerprint, never by stale cache entries).
func (s *Service) Planner() *Planner { return s.planner }

// Package returns the package the service plans for.
func (s *Service) Package() *Package { return s.planner.Package() }

// installLatestFromRegistry installs the newest registry policy matching
// the package, if any. A registry with no matching policy is not an error.
func (s *Service) installLatestFromRegistry() error {
	policy, entry, found, err := s.registry.LoadLatest(s.planner.Package())
	if err != nil {
		return fmt.Errorf("mcmpart: loading policy %s from registry: %w", entry.Path, err)
	}
	if found {
		s.planner.installPolicy(policy)
		s.installedMu.Lock()
		s.installedPath = entry.Path
		s.installedFP = s.planner.PolicyFingerprint()
		s.installedMu.Unlock()
	}
	return nil
}

// ReloadPolicies rescans the policy directory and installs the newest
// policy for the package (a no-op without a PolicyDir). Use it after
// dropping a new artifact into the directory of a running service.
func (s *Service) ReloadPolicies() error {
	if s.registry == nil {
		return nil
	}
	if err := s.registry.Rescan(); err != nil {
		return err
	}
	return s.installLatestFromRegistry()
}

// SavePolicyToRegistry writes the planner's installed policy into the
// policy directory as the next version for this package.
func (s *Service) SavePolicyToRegistry() error {
	if s.registry == nil {
		return fmt.Errorf("%w: service has no policy directory", ErrInvalidRequest)
	}
	policy, _ := s.planner.snapshotPolicy()
	if policy == nil {
		return fmt.Errorf("%w: nothing to save; run Pretrain or LoadPolicy first", ErrPolicyRequired)
	}
	_, err := s.registry.Save(policy, s.planner.Package())
	return err
}

// Policies lists the installed policy and every registry artifact matching
// the service's package, oldest first, installed one marked. The installed
// mark uses the provenance recorded at install time (no artifact is read
// from disk here), and is dropped if the planner's policy changed since —
// e.g. a Pretrain through Planner() — in which case a synthetic
// path-less entry represents the installed policy instead.
func (s *Service) Policies() []PolicyInfo {
	installedFP := s.planner.PolicyFingerprint()
	s.installedMu.Lock()
	installedPath := s.installedPath
	if installedFP == "" || installedFP != s.installedFP {
		installedPath = "" // policy replaced outside the registry
	}
	s.installedMu.Unlock()
	var out []PolicyInfo
	seenInstalled := false
	if s.registry != nil {
		for _, e := range s.registry.ForPackage(s.planner.Package()) {
			info := PolicyInfo{
				Path:               e.Path,
				PackageName:        e.PackageName,
				PackageFingerprint: e.PackageFingerprint,
				Seq:                e.Seq,
			}
			if installedPath != "" && e.Path == installedPath {
				info.Installed = true
				seenInstalled = true
			}
			out = append(out, info)
		}
	}
	if installedFP != "" && !seenInstalled {
		out = append(out, PolicyInfo{
			PackageName:        s.planner.Package().Name,
			PackageFingerprint: s.pkgFP,
			Installed:          true,
		})
	}
	return out
}

// Stats returns a point-in-time operational snapshot.
func (s *Service) Stats() ServiceStats {
	hits, misses, size, capacity := s.cache.snapshot()
	st := ServiceStats{
		Package:            s.planner.Package().Name,
		PackageFingerprint: s.pkgFP,
		Workers:            s.pool.Workers(),
		QueueDepth:         s.pool.QueueCap(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEntries:       size,
		CacheCapacity:      capacity,
		PolicyInstalled:    s.planner.HasPolicy(),
		PolicyFingerprint:  s.planner.PolicyFingerprint(),
	}
	if s.registry != nil {
		st.RegistryPolicies = len(s.registry.ForPackage(s.planner.Package()))
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		st.DiskCacheWrites = ds.Writes
		st.DiskCacheWriteErrors = ds.WriteErrors
		st.DiskCacheQuarantined = ds.Quarantined
	}
	s.mu.Lock()
	st.JobsSubmitted = s.jobsSubmitted
	st.JobsDone = s.jobsDone
	st.JobsFailed = s.jobsFailed
	st.JobsCancelled = s.jobsCancelled
	st.JobsQueued = s.jobsQueued
	st.JobsRunning = s.jobsRunning
	st.PlansExecuted = s.plansExecuted
	st.PlansCoalesced = s.plansCoalesced
	st.DiskCacheHits = s.diskHits
	st.Draining = s.draining || s.closed
	s.mu.Unlock()
	return st
}

// Job returns a submitted job by ID. Terminal jobs stay addressable until
// evicted by the retention bound.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ensurePolicy makes the deployed-policy methods servable: if no policy is
// installed but a registry is configured, the newest matching policy is
// installed now — the "automatic policy selection at plan time".
func (s *Service) ensurePolicy(method Method) error {
	if method != MethodZeroShot && method != MethodFineTune {
		return nil
	}
	if s.planner.HasPolicy() {
		return nil
	}
	if s.registry != nil {
		if err := s.registry.Rescan(); err != nil {
			return err
		}
		if err := s.installLatestFromRegistry(); err != nil {
			return err
		}
		if s.planner.HasPolicy() {
			return nil
		}
	}
	return fmt.Errorf("%w: method %q needs Pretrain, LoadPolicy, or an artifact for this package in the policy directory", ErrPolicyRequired, method)
}

// Submit validates and admits one plan request, returning the Job tracking
// it. Submission is fail-fast: a malformed request, a missing policy, or a
// full queue (ErrBusy) is reported now, not from inside the job. ctx covers
// admission only — the job itself runs under the service's lifecycle and
// stops via Job.Cancel or Close.
//
// If the plan cache (memory or disk tier) already holds the result, Submit
// returns an already-terminal job carrying a copy of it (Status().Cached ==
// true) without consuming a worker. If another request for the same cache
// key is already in flight, the new job coalesces onto it
// (Status().Coalesced == true): it waits for the leader's plan and receives
// a deep copy of its result, without invoking the planner. Cancelling a
// coalesced job detaches it without disturbing the leader; cancelling the
// leader promotes a waiting follower to re-plan, so followers never lose
// their result to someone else's cancellation.
func (s *Service) Submit(ctx context.Context, req PlanRequest) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Graph == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrInvalidRequest)
	}
	if err := req.Graph.Validate(); err != nil {
		return nil, err
	}
	opts, err := req.Options.normalized()
	if err != nil {
		return nil, err
	}
	if err := s.ensurePolicy(opts.Method); err != nil {
		return nil, err
	}

	graphFP := req.Graph.Fingerprint()
	key := planCacheKey(graphFP, s.pkgFP, s.planner.PolicyFingerprint(), opts)
	if res, ok := s.cache.get(key); ok {
		return s.cachedJob(res)
	}
	// In-memory miss: consult the disk tier (outside s.mu — it does IO).
	// A verified entry is promoted into the memory cache on the way out.
	if s.disk != nil {
		if res, ok := s.diskGet(key); ok {
			s.cache.put(key, res)
			return s.cachedJob(res)
		}
	}

	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	// Single-flight: coalesce onto an in-flight computation for this key.
	if s.coalesce {
		if fl, ok := s.inflight[key]; ok {
			job := s.registerJobLocked()
			job.markCoalesced()
			f := &flightFollower{job: job, progress: opts.Progress}
			fl.followers = append(fl.followers, f)
			s.plansCoalesced++
			s.mu.Unlock()
			go s.watchFollower(fl, f)
			return job, nil
		}
	}
	job := s.registerJobLocked()
	fl := &flight{
		key:        key,
		graph:      req.Graph,
		graphFP:    graphFP,
		leader:     job,
		leaderOpts: opts,
		done:       make(chan struct{}),
	}
	if s.coalesce {
		s.inflight[key] = fl
	}
	s.jobsQueued++
	if err := s.pool.TrySubmit(func() { s.runFlight(fl) }); err != nil {
		// Roll the admission back entirely: the caller gets the error, not
		// a registered failed job. (Still under s.mu, so no follower can
		// have attached to the aborted flight.)
		if s.coalesce {
			delete(s.inflight, key)
		}
		s.jobsQueued--
		s.jobsSubmitted--
		delete(s.jobs, job.id)
		for i := len(s.jobOrder) - 1; i >= 0; i-- {
			if s.jobOrder[i] == job.id {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		job.cancel() // release the job's child context
		s.jobsWG.Done()
		switch {
		case errors.Is(err, parallel.ErrPoolFull):
			return nil, ErrBusy
		case errors.Is(err, parallel.ErrPoolClosed):
			return nil, ErrServiceClosed
		default:
			return nil, err
		}
	}
	s.mu.Unlock()
	return job, nil
}

// cachedJob registers an already-terminal job carrying a cache hit.
func (s *Service) cachedJob(res *Result) (*Job, error) {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	job := s.registerJobLocked()
	s.mu.Unlock()
	s.finishJob(job, JobDone, res, nil, true)
	return job, nil
}

// diskGet reads and decodes one disk-tier entry; an envelope-valid entry
// whose payload does not decode is quarantined like any other corruption.
func (s *Service) diskGet(key string) (*Result, bool) {
	payload, ok := s.disk.Get(key)
	if !ok {
		return nil, false
	}
	var w ResultWire
	if err := json.Unmarshal(payload, &w); err != nil {
		s.disk.Quarantine(key, fmt.Errorf("undecodable payload: %w", err))
		return nil, false
	}
	s.mu.Lock()
	s.diskHits++
	s.mu.Unlock()
	return w.Result(), true
}

// registerJobLocked allocates, registers, and retention-evicts under s.mu.
// Every registered job holds one jobsWG count until its terminal
// transition (finishJob) or an admission rollback.
func (s *Service) registerJobLocked() *Job {
	s.seq++
	s.jobsSubmitted++
	s.jobsWG.Add(1)
	jobCtx, cancel := context.WithCancel(s.root)
	job := newJob(fmt.Sprintf("job-%06d", s.seq), jobCtx, cancel)
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	// Evict oldest terminal jobs beyond the retention bound (and drop ids
	// whose job was already removed, e.g. by an admission rollback).
	if len(s.jobs) > s.maxRetained {
		kept := s.jobOrder[:0]
		for _, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			if len(s.jobs) > s.maxRetained && j.Status().State.Terminal() {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.jobOrder = kept
	}
	return job
}

// watchFollower detaches a coalesced job whose own context is cancelled
// before the flight resolves: the follower finishes cancelled, the flight
// (and its leader) is untouched. Exits when the flight resolves.
func (s *Service) watchFollower(fl *flight, f *flightFollower) {
	select {
	case <-f.job.ctx.Done():
		s.mu.Lock()
		detached := false
		if !f.promoted && !f.detached {
			f.detached = true
			for i, other := range fl.followers {
				if other == f {
					fl.followers = append(fl.followers[:i], fl.followers[i+1:]...)
					break
				}
			}
			detached = true
		}
		s.mu.Unlock()
		if detached {
			s.finishJob(f.job, JobCancelled, nil, f.job.ctx.Err(), false)
		}
	case <-fl.done:
		// Resolved (or abandoned): the resolver finished this job.
	}
}

// runFlight executes one flight on a pool worker. The loop is the leader
// hand-off protocol: if the current leader's plan is cancelled, it keeps
// its best-so-far result and a waiting follower is promoted to re-plan in
// this same worker slot — a follower never loses its result because some
// other caller gave up. A successful plan resolves the whole flight; a
// plan error is deterministic for the key (plans are a pure function of
// it), so it resolves the flight too.
func (s *Service) runFlight(fl *flight) {
	s.mu.Lock()
	s.jobsQueued--
	s.mu.Unlock()
	for {
		s.mu.Lock()
		job, opts := fl.leader, fl.leaderOpts
		s.mu.Unlock()

		// The key was built from the policy fingerprint observed at
		// admission. If the installed policy changed between then and now,
		// re-key so the stored entry describes the policy that actually
		// planned; if it changes again *during* the plan, skip the store
		// (fpBefore/fpAfter bracket Plan's own policy snapshot, so
		// equality proves the key).
		fpBefore := s.planner.PolicyFingerprint()
		res, err := s.planOnce(fl, job, opts)
		fpAfter := s.planner.PolicyFingerprint()

		switch {
		case err == nil:
			if fpBefore == fpAfter {
				key := planCacheKey(fl.graphFP, s.pkgFP, fpBefore, opts)
				s.cache.put(key, res)
				if s.disk != nil {
					if payload, merr := json.Marshal(resultToWire(res)); merr == nil {
						_ = s.disk.Put(key, payload) // logged + counted by the store
					}
				}
			}
			s.resolveFlight(fl, res, nil)
			return
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// Best-so-far semantics: a cancelled plan may still carry a
			// result — it belongs to the cancelled leader only.
			s.finishJob(job, JobCancelled, res, err, false)
			if !s.promoteNext(fl) {
				return // no waiters left; flight closed by promoteNext
			}
		default:
			s.resolveFlight(fl, nil, err)
			return
		}
	}
}

// planOnce runs one plan attempt for the flight's current leader,
// containing panics (ErrPlanPanic) and injected evaluator faults. Progress
// events fan out to the leader and every currently attached follower.
func (s *Service) planOnce(fl *flight, job *Job, opts PlanOptions) (res *Result, err error) {
	if job.ctx.Err() != nil || !job.markRunning() {
		return nil, context.Canceled
	}
	s.mu.Lock()
	s.jobsRunning++
	s.plansExecuted++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.jobsRunning--
		s.mu.Unlock()
	}()

	userProgress := opts.Progress
	opts.Progress = func(ev ProgressEvent) {
		job.recordProgress(ev)
		if userProgress != nil {
			userProgress(ev)
		}
		s.mu.Lock()
		followers := append([]*flightFollower(nil), fl.followers...)
		s.mu.Unlock()
		for _, f := range followers {
			f.job.recordProgress(ev)
			if f.progress != nil {
				f.progress(ev)
			}
		}
	}

	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrPlanPanic, r)
		}
	}()
	if ferr := faultinject.Check(faultinject.PointPlanEvaluate); ferr != nil {
		return nil, fmt.Errorf("mcmpart: injected evaluator fault: %w", ferr)
	}
	return s.planner.Plan(job.ctx, fl.graph, opts)
}

// promoteNext hands the flight to the first still-waiting follower after
// the leader cancelled, reporting whether there is a new leader to run. If
// no followers remain, the flight is closed (removed from the in-flight
// table so a later identical request plans fresh).
func (s *Service) promoteNext(fl *flight) bool {
	s.mu.Lock()
	if len(fl.followers) == 0 {
		if cur, ok := s.inflight[fl.key]; ok && cur == fl {
			delete(s.inflight, fl.key)
		}
		close(fl.done)
		s.mu.Unlock()
		return false
	}
	next := fl.followers[0]
	fl.followers = fl.followers[1:]
	next.promoted = true
	fl.leader = next.job
	fl.leaderOpts.Progress = next.progress
	s.mu.Unlock()
	return true
}

// resolveFlight finishes the flight's leader and every attached follower
// with the plan's outcome. Job.finish clones the result on retention (and
// Job.Result on the way out), so no caller can corrupt another's result.
func (s *Service) resolveFlight(fl *flight, res *Result, err error) {
	s.mu.Lock()
	if cur, ok := s.inflight[fl.key]; ok && cur == fl {
		delete(s.inflight, fl.key)
	}
	leader := fl.leader
	followers := fl.followers
	fl.followers = nil
	close(fl.done)
	s.mu.Unlock()

	if err == nil {
		s.finishJob(leader, JobDone, res, nil, false)
		for _, f := range followers {
			s.finishJob(f.job, JobDone, res, nil, false)
		}
		return
	}
	s.finishJob(leader, JobFailed, nil, err, false)
	for _, f := range followers {
		s.finishJob(f.job, JobFailed, nil, err, false)
	}
}

// finishJob finalizes a job, updates the terminal counters, and releases
// its drain count. Safe to call twice (only the transition that wins
// counts).
func (s *Service) finishJob(job *Job, state JobState, res *Result, err error, cached bool) {
	if !job.finish(state, res, err, cached) {
		return
	}
	s.mu.Lock()
	switch state {
	case JobDone:
		s.jobsDone++
	case JobFailed:
		s.jobsFailed++
	case JobCancelled:
		s.jobsCancelled++
	}
	s.mu.Unlock()
	s.jobsWG.Done()
}

// Plan is the synchronous, cache-aware entry point: Submit + Wait. When ctx
// is cancelled or expires mid-plan, the job is cancelled and Plan returns
// its best-so-far result together with ctx's error — the same contract as
// Planner.Plan.
func (s *Service) Plan(ctx context.Context, g *Graph, opts PlanOptions) (*Result, error) {
	job, err := s.Submit(ctx, PlanRequest{Graph: g, Options: opts})
	if err != nil {
		return nil, err
	}
	select {
	case <-job.Done():
		return job.Result()
	case <-ctx.Done():
		job.Cancel()
		<-job.Done()
		res, _ := job.Result()
		return res, ctx.Err()
	}
}

// PlanBatch submits every request and waits for all of them. The results
// slice is index-aligned with reqs; entries whose plan failed are nil. The
// returned error is the lowest-index failure (admission or plan), so the
// error a caller sees is deterministic. Cancelling ctx cancels the
// still-running jobs (their best-so-far results are kept).
func (s *Service) PlanBatch(ctx context.Context, reqs []PlanRequest) ([]*Result, error) {
	jobs := make([]*Job, len(reqs))
	errs := make([]error, len(reqs))
	for i, req := range reqs {
		jobs[i], errs[i] = s.Submit(ctx, req)
	}
	results := make([]*Result, len(reqs))
	for i, job := range jobs {
		if job == nil {
			continue
		}
		select {
		case <-job.Done():
		case <-ctx.Done():
			job.Cancel()
			<-job.Done()
		}
		results[i], errs[i] = job.Result()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// BeginDrain stops admission — Submit, Plan, and PlanBatch return
// ErrServiceClosed (503 + Retry-After over HTTP) — without disturbing
// queued or running jobs. It is the first step of graceful shutdown; pair
// with Drain, or poll Stats until JobsQueued and JobsRunning reach zero.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain gracefully shuts the service down: admission stops immediately,
// then previously admitted jobs run to completion. If ctx expires first,
// the remaining jobs are cancelled (keeping their best-so-far results,
// like Close) and ctx's error is returned. Either way the workers are
// released and the disk cache tier is flushed before Drain returns. Drain
// and Close are both idempotent and safe to combine.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	drained := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.shutdown()
		<-drained
	}
	s.finalize()
	return err
}

// Close stops admission, cancels every queued and running job (their
// best-so-far results are kept, mirroring plan cancellation), waits for the
// workers to drain, flushes the disk cache tier, and returns. Close is
// idempotent. For graceful shutdown — let in-flight work finish first —
// use Drain.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.shutdown()
	s.finalize()
	return nil
}

// finalize releases the workers and flushes the disk tier exactly once,
// after which the service is fully closed.
func (s *Service) finalize() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.pool.Close()
	s.finalOnce.Do(func() {
		if s.disk != nil {
			_ = s.disk.Flush()
		}
	})
}
