package mcmpart

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"mcmpart/internal/faultinject"
	"mcmpart/internal/parallel"
	"mcmpart/internal/plancache"
	"mcmpart/internal/rl"
	"mcmpart/internal/telemetry"
)

// Service errors.
var (
	// ErrServiceClosed is returned by Submit, Plan, and PlanBatch after
	// Close, and while the service is draining (BeginDrain/Drain). Over
	// HTTP it maps to 503 with a Retry-After header — a load balancer's
	// signal to route elsewhere and retry.
	ErrServiceClosed = errors.New("mcmpart: service is closed")
	// ErrBusy is returned by Submit when the job queue is at capacity —
	// the admission-control signal; callers shed load or retry later.
	ErrBusy = errors.New("mcmpart: service queue is full")
	// ErrPolicyRequired is returned by Planner.Plan and Service.Submit when
	// a deployed-policy method (MethodZeroShot, MethodFineTune) is requested
	// but no pre-trained policy is installed or available in the registry.
	// Over HTTP it maps to 409 Conflict, and Client maps 409 back to it.
	ErrPolicyRequired = errors.New("mcmpart: a pre-trained policy is required")
	// ErrPlanPanic wraps a panic recovered from a planning worker: the job
	// fails with a typed error and the service keeps serving — one
	// poisoned request must not take the node down.
	ErrPlanPanic = errors.New("mcmpart: plan panicked")
	// ErrInvalidRequest wraps every request-validation failure — a nil
	// graph, a negative budget or seed, an unknown method. Over HTTP it
	// maps to 400 Bad Request, and Client maps 400 back to it, so
	// errors.Is(err, ErrInvalidRequest) distinguishes "fix the request"
	// from transient service states in-process and across the wire alike.
	ErrInvalidRequest = errors.New("mcmpart: invalid request")
	// ErrNoPlan is returned by Plan when the search exhausts its sample
	// budget without finding any valid partition, and by the baseline
	// stage when even the greedy layout does not fit the package.
	ErrNoPlan = errors.New("mcmpart: no valid partition found")
)

// ServiceOptions configure NewService. The zero value is a working
// configuration: process-default workers, a 4x queue, a 256-entry cache,
// no disk tier, and no policy directory.
type ServiceOptions struct {
	// Workers is the number of plans that may run concurrently
	// (0 = process default, see internal worker-pool default; negative is
	// an error).
	Workers int
	// QueueDepth bounds how many admitted jobs may wait for a worker
	// (0 = 4x Workers; negative is an error). When the queue is full,
	// Submit returns ErrBusy.
	QueueDepth int
	// CacheEntries bounds the in-memory plan cache (0 = 256 entries;
	// negative disables caching).
	CacheEntries int
	// CacheDir, when set, opens a crash-safe persistent plan-cache tier
	// under the in-memory LRU (created if missing). Completed plans are
	// written through (temp file + fsync + atomic rename, versioned and
	// checksummed), and in-memory misses consult the directory lazily, so
	// plans survive restarts with O(1) startup cost. Corrupt, truncated,
	// or stale-version entries are quarantined and logged, never served.
	CacheDir string
	// DisableCoalescing turns off single-flight request coalescing:
	// concurrent requests that normalize to the same cache key each run
	// their own plan instead of sharing one in-flight computation. The
	// results are identical either way (plans are a pure function of the
	// key); this exists for benchmarking the coalescing win and for
	// debugging, not for production.
	DisableCoalescing bool
	// PolicyDir, when set, opens a directory-backed policy registry
	// (created if missing). At startup — and lazily at plan time whenever
	// no policy is installed — the service installs the newest registry
	// policy matching its package, enabling MethodZeroShot and
	// MethodFineTune without an explicit Pretrain.
	PolicyDir string
	// MaxRetainedJobs bounds how many terminal jobs the service keeps
	// addressable by ID for status queries (0 = 1024; negative is an
	// error). Oldest terminal jobs are evicted first; live jobs are never
	// evicted.
	MaxRetainedJobs int
}

// ServiceStats is a point-in-time operational snapshot of a Service. Every
// counter and gauge here is a read of the same telemetry registry the
// GET /metrics exposition serves (Service.Metrics), so the JSON and
// Prometheus views cannot disagree. DESIGN.md §14 documents the metric
// names as a stable contract.
type ServiceStats struct {
	Package            string `json:"package"`
	PackageFingerprint string `json:"package_fingerprint"`
	Workers            int    `json:"workers"`
	// QueueDepth is the number of admitted jobs waiting for a worker right
	// now — the live pressure signal. QueueCapacity is the configured
	// bound admission sheds at (historically QueueDepth reported the
	// capacity; the live depth is what a dashboard needs).
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	// CacheHits/CacheMisses partition *admitted* jobs by their in-memory
	// cache outcome: every job counts on exactly one side, a rejected
	// submission (shed, draining) on neither — so CacheHits+CacheMisses
	// equals JobsSubmitted once the service is quiescent. Coalesced
	// requests and disk-tier hits are memory misses.
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheEntries  int    `json:"cache_entries"`
	CacheCapacity int    `json:"cache_capacity"`

	// PlansExecuted counts actual planner invocations; PlansCoalesced
	// counts requests that shared another request's in-flight computation
	// instead of planning. Under single-flight, N concurrent identical
	// cold requests add 1 to the former and N-1 to the latter.
	PlansExecuted  uint64 `json:"plans_executed"`
	PlansCoalesced uint64 `json:"plans_coalesced"`

	// Disk tier (all zero without ServiceOptions.CacheDir). Hits are
	// in-memory misses served from disk; Quarantined counts entries set
	// aside after failing verification — corruption detected, never served.
	DiskCacheHits        uint64 `json:"disk_cache_hits"`
	DiskCacheWrites      uint64 `json:"disk_cache_writes"`
	DiskCacheWriteErrors uint64 `json:"disk_cache_write_errors"`
	DiskCacheQuarantined uint64 `json:"disk_cache_quarantined"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsQueued    int    `json:"jobs_queued"`
	JobsRunning   int    `json:"jobs_running"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	// JobsShed counts submissions rejected with ErrBusy because the queue
	// was full — load the service refused, which JobsSubmitted never saw.
	JobsShed uint64 `json:"jobs_shed"`

	// Draining reports that admission is stopped (BeginDrain/Drain/Close)
	// while previously admitted work finishes.
	Draining bool `json:"draining"`

	PolicyInstalled   bool   `json:"policy_installed"`
	PolicyFingerprint string `json:"policy_fingerprint,omitempty"`
	RegistryPolicies  int    `json:"registry_policies"`
}

// PolicyInfo describes one policy visible to the service: the installed
// one and/or a registry artifact.
type PolicyInfo struct {
	// Path is the artifact file ("" for a policy installed via Pretrain
	// that was never saved).
	Path string `json:"path,omitempty"`
	// PackageName names the package the policy was pre-trained for.
	PackageName string `json:"package_name"`
	// PackageFingerprint is the fingerprint the artifact is bound to.
	PackageFingerprint string `json:"package_fingerprint"`
	// Seq is the registry sequence number (0 outside the registry naming
	// scheme). Higher is newer among one package's policies.
	Seq int `json:"seq"`
	// Installed marks the policy currently driving MethodZeroShot and
	// MethodFineTune plans.
	Installed bool `json:"installed"`
}

// PlanRequest is one unit of work for Submit and PlanBatch.
type PlanRequest struct {
	// Graph is the computation graph to partition.
	Graph *Graph
	// Options configure the plan exactly as in Planner.Plan. The Progress
	// callback, when set, streams from the worker goroutine running the
	// job; Job.Status additionally exposes the latest progress snapshot to
	// pollers. Coalesced requests receive the leader's progress stream.
	Options PlanOptions
}

// Service is a long-lived, concurrency-safe planning front end over a
// Planner — the process-wide object a daemon (cmd/mcmpartd) or an embedding
// application shares across all callers. It adds what a multi-tenant
// deployment needs beyond a bare Planner:
//
//   - a bounded LRU plan cache keyed by canonical graph fingerprint ×
//     package fingerprint × policy fingerprint × normalized options, so
//     repeated requests for the same model return instantly and
//     bit-identically — optionally backed by a crash-safe disk tier
//     (ServiceOptions.CacheDir) that survives restarts;
//   - single-flight coalescing: concurrent requests for the same cache key
//     share one in-flight computation (the leader plans; followers wait
//     under their own contexts and receive deep copies of its result);
//   - a policy registry (directory-backed) with automatic selection of the
//     newest matching policy at plan time;
//   - an async job API — Submit/Job.Wait/Status/Cancel and PlanBatch —
//     backed by a bounded worker pool with fail-fast admission (ErrBusy);
//   - a drain protocol (BeginDrain/Drain) for graceful shutdown behind a
//     load balancer, and panic containment: a panicking plan fails its job
//     with ErrPlanPanic instead of crashing the process.
//
// All methods are safe for concurrent use. Close shuts the service down.
type Service struct {
	planner  *Planner
	pkgFP    string
	cache    *planCache
	disk     *plancache.Store
	registry *rl.Registry
	pool     *parallel.Pool
	coalesce bool

	// root is the lifecycle context every job runs under; Close (and a
	// Drain deadline) cancels it.
	root     context.Context
	shutdown context.CancelFunc

	// jobsWG tracks every registered job from admission to its terminal
	// transition — what Drain waits on.
	jobsWG sync.WaitGroup
	// finalOnce guards the release of workers and the disk-tier flush,
	// shared by Close and Drain.
	finalOnce sync.Once

	// installedMu guards the provenance of the installed policy: the
	// registry path it came from ("" when installed via Pretrain or
	// LoadPolicy) and its fingerprint at install time.
	installedMu   sync.Mutex
	installedPath string // guarded by installedMu
	installedFP   string // guarded by installedMu

	// m holds every operational counter, gauge, and histogram, registered
	// on one telemetry registry; Stats() and GET /metrics read the same
	// instruments. now is the injectable clock behind the latency
	// histograms (a function value, so deterministic-lint stays happy and
	// tests can pin it).
	m   *serviceMetrics
	now func() time.Time

	mu          sync.Mutex
	closed      bool               // guarded by mu
	draining    bool               // guarded by mu
	seq         int                // guarded by mu
	jobs        map[string]*Job    // guarded by mu
	jobOrder    []string           // guarded by mu; insertion order, for terminal-job eviction
	maxRetained int                // guarded by mu
	inflight    map[string]*flight // guarded by mu
}

// serviceMetrics bundles the Service's instruments. Counters are never
// decremented (Prometheus monotonicity); live quantities are gauges or
// GaugeFuncs over the underlying structures. The admission contract that
// makes Stats() coherent: every admitted job increments exactly one
// memory-tier counter (hit or miss) *before* jobsSubmitted, a rejected
// submission (shed, draining) increments neither, and Stats() reads
// jobsSubmitted *before* the cache counters — so CacheHits+CacheMisses >=
// JobsSubmitted holds in every snapshot and equality holds at quiescence.
type serviceMetrics struct {
	reg *telemetry.Registry

	jobsSubmitted  *telemetry.Counter
	jobsShed       *telemetry.Counter
	jobsDone       *telemetry.Counter
	jobsFailed     *telemetry.Counter
	jobsCancelled  *telemetry.Counter
	jobsQueued     *telemetry.Gauge
	jobsRunning    *telemetry.Gauge
	plansExecuted  *telemetry.Counter
	plansCoalesced *telemetry.Counter
	memHits        *telemetry.Counter
	memMisses      *telemetry.Counter
	diskHits       *telemetry.Counter
	planCold       *telemetry.Histogram
	planWarm       *telemetry.Histogram
}

func newServiceMetrics() *serviceMetrics {
	reg := telemetry.NewRegistry()
	return &serviceMetrics{
		reg:            reg,
		jobsSubmitted:  reg.Counter("mcmpart_jobs_submitted_total", "Jobs admitted by Submit: served from cache, coalesced, or queued."),
		jobsShed:       reg.Counter("mcmpart_jobs_shed_total", "Submissions rejected with ErrBusy because the queue was full."),
		jobsDone:       reg.Counter("mcmpart_jobs_total", "Jobs finished, by terminal state.", telemetry.Label{Name: "state", Value: "done"}),
		jobsFailed:     reg.Counter("mcmpart_jobs_total", "Jobs finished, by terminal state.", telemetry.Label{Name: "state", Value: "failed"}),
		jobsCancelled:  reg.Counter("mcmpart_jobs_total", "Jobs finished, by terminal state.", telemetry.Label{Name: "state", Value: "cancelled"}),
		jobsQueued:     reg.Gauge("mcmpart_jobs_queued", "Admitted jobs waiting for a worker."),
		jobsRunning:    reg.Gauge("mcmpart_jobs_running", "Jobs a worker is currently planning."),
		plansExecuted:  reg.Counter("mcmpart_plans_executed_total", "Actual planner invocations (cache misses that ran)."),
		plansCoalesced: reg.Counter("mcmpart_plans_coalesced_total", "Requests that shared another request's in-flight plan."),
		memHits:        reg.Counter("mcmpart_cache_hits_total", "Plan-cache hits, by tier.", telemetry.Label{Name: "tier", Value: "memory"}),
		memMisses:      reg.Counter("mcmpart_cache_misses_total", "Plan-cache misses, by tier.", telemetry.Label{Name: "tier", Value: "memory"}),
		diskHits:       reg.Counter("mcmpart_cache_hits_total", "Plan-cache hits, by tier.", telemetry.Label{Name: "tier", Value: "disk"}),
		planCold:       reg.Histogram("mcmpart_plan_seconds", "Plan service latency: cold runs the planner, warm serves from cache.", telemetry.DefBuckets, telemetry.Label{Name: "path", Value: "cold"}),
		planWarm:       reg.Histogram("mcmpart_plan_seconds", "Plan service latency: cold runs the planner, warm serves from cache.", telemetry.DefBuckets, telemetry.Label{Name: "path", Value: "warm"}),
	}
}

// flight is one in-flight plan computation for one cache key: a leader job
// that actually plans, plus followers coalesced onto it. All fields except
// key/graph/graphFP are guarded by Service.mu.
type flight struct {
	key     string
	graph   *Graph
	graphFP string

	leader     *Job              // guarded by Service.mu
	leaderOpts PlanOptions       // guarded by Service.mu
	followers  []*flightFollower // guarded by Service.mu
	// done closes when the flight resolves (result, error, or abandoned
	// after the last waiter cancelled) — the signal follower watchers and
	// promotion exit on.
	done chan struct{}
}

// flightFollower is one coalesced request waiting on a flight.
type flightFollower struct {
	job      *Job
	progress ProgressFunc
	// promoted marks a follower that took over as leader after the
	// previous leader cancelled; detached marks one that cancelled while
	// waiting. Either way it is no longer in the followers slice.
	promoted bool // guarded by Service.mu
	detached bool // guarded by Service.mu
}

// NewService builds a service for one package. If opts.PolicyDir holds a
// policy pre-trained for the package, the newest one is installed
// immediately; otherwise the service starts policy-less (the from-scratch
// methods work, and a policy can still arrive via Pretrain, LoadPolicy, or
// a later registry drop picked up at plan time or by ReloadPolicies).
func NewService(pkg *Package, opts ServiceOptions) (*Service, error) {
	planner, err := NewPlanner(pkg)
	if err != nil {
		return nil, err
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("%w: Workers %d is negative; use 0 for the process default", ErrInvalidRequest, opts.Workers)
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("%w: QueueDepth %d is negative; use 0 for the default (4x workers)", ErrInvalidRequest, opts.QueueDepth)
	}
	if opts.MaxRetainedJobs < 0 {
		return nil, fmt.Errorf("%w: MaxRetainedJobs %d is negative; use 0 for the default (1024)", ErrInvalidRequest, opts.MaxRetainedJobs)
	}
	cacheEntries := opts.CacheEntries
	if cacheEntries == 0 {
		cacheEntries = 256
	}
	maxRetained := opts.MaxRetainedJobs
	if maxRetained == 0 {
		maxRetained = 1024
	}
	root, shutdown := context.WithCancel(context.Background())
	m := newServiceMetrics()
	s := &Service{
		planner:     planner,
		pkgFP:       rl.PackageFingerprint(pkg),
		cache:       newPlanCache(cacheEntries),
		pool:        parallel.NewPool(opts.Workers, opts.QueueDepth),
		coalesce:    !opts.DisableCoalescing,
		m:           m,
		now:         time.Now,
		root:        root,
		shutdown:    shutdown,
		jobs:        make(map[string]*Job),
		inflight:    make(map[string]*flight),
		maxRetained: maxRetained,
	}
	// Live quantities are read straight from the owning structures at
	// scrape time — there is no second copy to fall out of sync.
	m.reg.GaugeFunc("mcmpart_queue_depth", "Tasks waiting in the worker-pool queue right now.",
		func() float64 { return float64(s.pool.QueueLen()) })
	m.reg.GaugeFunc("mcmpart_queue_capacity", "Configured worker-pool queue bound; admission sheds beyond it.",
		func() float64 { return float64(s.pool.QueueCap()) })
	m.reg.GaugeFunc("mcmpart_workers", "Configured worker count.",
		func() float64 { return float64(s.pool.Workers()) })
	m.reg.GaugeFunc("mcmpart_workers_busy", "Workers executing a task right now.",
		func() float64 { return float64(s.pool.Busy()) })
	m.reg.GaugeFunc("mcmpart_cache_entries", "Plans currently held by the in-memory cache.",
		func() float64 { size, _ := s.cache.snapshot(); return float64(size) })
	m.reg.GaugeFunc("mcmpart_cache_capacity", "In-memory plan-cache entry bound (0 = caching disabled).",
		func() float64 { _, capacity := s.cache.snapshot(); return float64(capacity) })
	m.reg.GaugeFunc("mcmpart_draining", "1 while admission is stopped (BeginDrain/Drain/Close), else 0.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining || s.closed {
				return 1
			}
			return 0
		})
	if opts.CacheDir != "" {
		disk, err := plancache.Open(opts.CacheDir, log.Printf)
		if err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
		// Register the store's write-side counters and latency histograms
		// on the service registry. The disk *hit* counter stays service-
		// owned (m.diskHits): a hit means "served", which additionally
		// requires the payload to decode — the store's own read counters
		// include envelope-valid entries quarantined at that later step.
		disk.SetMetrics(plancache.Metrics{
			Writes:       m.reg.Counter("mcmpart_disk_writes_total", "Plans durably written to the disk tier."),
			WriteErrors:  m.reg.Counter("mcmpart_disk_write_errors_total", "Disk-tier writes that failed (logged; no partial entry remains)."),
			Quarantined:  m.reg.Counter("mcmpart_disk_quarantined_total", "Disk-tier entries set aside after failing verification."),
			ReadSeconds:  m.reg.Histogram("mcmpart_disk_read_seconds", "Disk-tier Get latency, hit or miss.", telemetry.DefBuckets),
			WriteSeconds: m.reg.Histogram("mcmpart_disk_write_seconds", "Disk-tier Put latency, success or failure.", telemetry.DefBuckets),
		})
		s.disk = disk
	}
	if opts.PolicyDir != "" {
		reg, err := rl.OpenRegistry(opts.PolicyDir)
		if err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
		s.registry = reg
		if err := s.installLatestFromRegistry(); err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
	}
	return s, nil
}

// Planner returns the underlying planner, e.g. to Pretrain through the
// service or to Assess a partition. The planner is concurrency-safe; a
// policy installed on it is picked up by subsequent plans (and, because
// the cache keys on the policy fingerprint, never by stale cache entries).
func (s *Service) Planner() *Planner { return s.planner }

// Package returns the package the service plans for.
func (s *Service) Package() *Package { return s.planner.Package() }

// installLatestFromRegistry installs the newest registry policy matching
// the package, if any. A registry with no matching policy is not an error.
func (s *Service) installLatestFromRegistry() error {
	policy, entry, found, err := s.registry.LoadLatest(s.planner.Package())
	if err != nil {
		return fmt.Errorf("mcmpart: loading policy %s from registry: %w", entry.Path, err)
	}
	if found {
		s.planner.installPolicy(policy)
		s.installedMu.Lock()
		s.installedPath = entry.Path
		s.installedFP = s.planner.PolicyFingerprint()
		s.installedMu.Unlock()
	}
	return nil
}

// ReloadPolicies rescans the policy directory and installs the newest
// policy for the package (a no-op without a PolicyDir). Use it after
// dropping a new artifact into the directory of a running service.
func (s *Service) ReloadPolicies() error {
	if s.registry == nil {
		return nil
	}
	if err := s.registry.Rescan(); err != nil {
		return err
	}
	return s.installLatestFromRegistry()
}

// SavePolicyToRegistry writes the planner's installed policy into the
// policy directory as the next version for this package.
func (s *Service) SavePolicyToRegistry() error {
	if s.registry == nil {
		return fmt.Errorf("%w: service has no policy directory", ErrInvalidRequest)
	}
	policy, _ := s.planner.snapshotPolicy()
	if policy == nil {
		return fmt.Errorf("%w: nothing to save; run Pretrain or LoadPolicy first", ErrPolicyRequired)
	}
	_, err := s.registry.Save(policy, s.planner.Package())
	return err
}

// Policies lists the installed policy and every registry artifact matching
// the service's package, oldest first, installed one marked. The installed
// mark uses the provenance recorded at install time (no artifact is read
// from disk here), and is dropped if the planner's policy changed since —
// e.g. a Pretrain through Planner() — in which case a synthetic
// path-less entry represents the installed policy instead.
func (s *Service) Policies() []PolicyInfo {
	installedFP := s.planner.PolicyFingerprint()
	s.installedMu.Lock()
	installedPath := s.installedPath
	if installedFP == "" || installedFP != s.installedFP {
		installedPath = "" // policy replaced outside the registry
	}
	s.installedMu.Unlock()
	var out []PolicyInfo
	seenInstalled := false
	if s.registry != nil {
		for _, e := range s.registry.ForPackage(s.planner.Package()) {
			info := PolicyInfo{
				Path:               e.Path,
				PackageName:        e.PackageName,
				PackageFingerprint: e.PackageFingerprint,
				Seq:                e.Seq,
			}
			if installedPath != "" && e.Path == installedPath {
				info.Installed = true
				seenInstalled = true
			}
			out = append(out, info)
		}
	}
	if installedFP != "" && !seenInstalled {
		out = append(out, PolicyInfo{
			PackageName:        s.planner.Package().Name,
			PackageFingerprint: s.pkgFP,
			Installed:          true,
		})
	}
	return out
}

// Stats returns a point-in-time operational snapshot, read from the same
// telemetry instruments GET /metrics serves.
//
// Snapshot coherence: the job counters are read *before* the cache
// counters, and every admission increments its cache-tier counter before
// jobsSubmitted (see serviceMetrics), so CacheHits+CacheMisses >=
// JobsSubmitted holds in every snapshot — even mid-burst — and the two
// sides are equal once the service is quiescent.
func (s *Service) Stats() ServiceStats {
	st := ServiceStats{
		Package:            s.planner.Package().Name,
		PackageFingerprint: s.pkgFP,
		Workers:            s.pool.Workers(),
		QueueDepth:         s.pool.QueueLen(),
		QueueCapacity:      s.pool.QueueCap(),
		PolicyInstalled:    s.planner.HasPolicy(),
		PolicyFingerprint:  s.planner.PolicyFingerprint(),
	}
	st.JobsSubmitted = s.m.jobsSubmitted.Value()
	st.JobsDone = s.m.jobsDone.Value()
	st.JobsFailed = s.m.jobsFailed.Value()
	st.JobsCancelled = s.m.jobsCancelled.Value()
	st.JobsShed = s.m.jobsShed.Value()
	st.JobsQueued = int(s.m.jobsQueued.Value())
	st.JobsRunning = int(s.m.jobsRunning.Value())
	st.PlansExecuted = s.m.plansExecuted.Value()
	st.PlansCoalesced = s.m.plansCoalesced.Value()
	st.DiskCacheHits = s.m.diskHits.Value()
	st.CacheHits = s.m.memHits.Value()
	st.CacheMisses = s.m.memMisses.Value()
	st.CacheEntries, st.CacheCapacity = s.cache.snapshot()
	if s.registry != nil {
		st.RegistryPolicies = len(s.registry.ForPackage(s.planner.Package()))
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		st.DiskCacheWrites = ds.Writes
		st.DiskCacheWriteErrors = ds.WriteErrors
		st.DiskCacheQuarantined = ds.Quarantined
	}
	s.mu.Lock()
	st.Draining = s.draining || s.closed
	s.mu.Unlock()
	return st
}

// Metrics returns the service's telemetry registry — the instruments
// behind Stats(), ready to serve as a Prometheus text exposition via
// telemetry.Handler (cmd/mcmpartd mounts it at GET /metrics).
func (s *Service) Metrics() *telemetry.Registry { return s.m.reg }

// Job returns a submitted job by ID. Terminal jobs stay addressable until
// evicted by the retention bound.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ensurePolicy makes the deployed-policy methods servable: if no policy is
// installed but a registry is configured, the newest matching policy is
// installed now — the "automatic policy selection at plan time".
func (s *Service) ensurePolicy(method Method) error {
	if method != MethodZeroShot && method != MethodFineTune {
		return nil
	}
	if s.planner.HasPolicy() {
		return nil
	}
	if s.registry != nil {
		if err := s.registry.Rescan(); err != nil {
			return err
		}
		if err := s.installLatestFromRegistry(); err != nil {
			return err
		}
		if s.planner.HasPolicy() {
			return nil
		}
	}
	return fmt.Errorf("%w: method %q needs Pretrain, LoadPolicy, or an artifact for this package in the policy directory", ErrPolicyRequired, method)
}

// Submit validates and admits one plan request, returning the Job tracking
// it. Submission is fail-fast: a malformed request, a missing policy, or a
// full queue (ErrBusy) is reported now, not from inside the job. ctx covers
// admission only — the job itself runs under the service's lifecycle and
// stops via Job.Cancel or Close.
//
// If the plan cache (memory or disk tier) already holds the result, Submit
// returns an already-terminal job carrying a copy of it (Status().Cached ==
// true) without consuming a worker. If another request for the same cache
// key is already in flight, the new job coalesces onto it
// (Status().Coalesced == true): it waits for the leader's plan and receives
// a deep copy of its result, without invoking the planner. Cancelling a
// coalesced job detaches it without disturbing the leader; cancelling the
// leader promotes a waiting follower to re-plan, so followers never lose
// their result to someone else's cancellation.
func (s *Service) Submit(ctx context.Context, req PlanRequest) (*Job, error) {
	start := s.now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Graph == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrInvalidRequest)
	}
	if err := req.Graph.Validate(); err != nil {
		return nil, err
	}
	opts, err := req.Options.normalized()
	if err != nil {
		return nil, err
	}
	if err := s.ensurePolicy(opts.Method); err != nil {
		return nil, err
	}
	rid := RequestIDFrom(ctx)

	graphFP := req.Graph.Fingerprint()
	key := planCacheKey(graphFP, s.pkgFP, s.planner.PolicyFingerprint(), opts)
	if res, ok := s.cache.get(key); ok {
		return s.cachedJob(res, rid, start, s.m.memHits)
	}
	// In-memory miss: consult the disk tier (outside s.mu — it does IO).
	// A verified entry is promoted into the memory cache on the way out.
	// A disk hit is a memory miss: the tier counters partition admissions.
	if s.disk != nil {
		if res, ok := s.diskGet(key); ok {
			s.cache.put(key, res)
			return s.cachedJob(res, rid, start, s.m.memMisses, s.m.diskHits)
		}
	}

	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	// Single-flight: coalesce onto an in-flight computation for this key.
	if s.coalesce {
		if fl, ok := s.inflight[key]; ok {
			job := s.registerJobLocked(rid)
			job.markCoalesced()
			f := &flightFollower{job: job, progress: opts.Progress}
			fl.followers = append(fl.followers, f)
			s.m.memMisses.Inc() // tier outcome first, then jobsSubmitted
			s.m.plansCoalesced.Inc()
			s.m.jobsSubmitted.Inc()
			s.mu.Unlock()
			go s.watchFollower(fl, f)
			return job, nil
		}
	}
	job := s.registerJobLocked(rid)
	fl := &flight{
		key:        key,
		graph:      req.Graph,
		graphFP:    graphFP,
		leader:     job,
		leaderOpts: opts,
		done:       make(chan struct{}),
	}
	if s.coalesce {
		s.inflight[key] = fl
	}
	// The queued gauge rises before TrySubmit: a worker may pick the task
	// up (and decrement) the instant it lands in the channel.
	s.m.jobsQueued.Inc()
	if err := s.pool.TrySubmit(func() { s.runFlight(fl) }); err != nil {
		// Roll the admission back entirely: the caller gets the error, not
		// a registered failed job. (Still under s.mu, so no follower can
		// have attached to the aborted flight.) jobsSubmitted was never
		// incremented for this job — it counts only successful admissions,
		// so there is no decrement to make and the counter stays monotone;
		// the refusal is counted on jobsShed instead.
		if s.coalesce {
			delete(s.inflight, key)
		}
		s.m.jobsQueued.Dec()
		delete(s.jobs, job.id)
		for i := len(s.jobOrder) - 1; i >= 0; i-- {
			if s.jobOrder[i] == job.id {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		job.cancel() // release the job's child context
		s.jobsWG.Done()
		switch {
		case errors.Is(err, parallel.ErrPoolFull):
			s.m.jobsShed.Inc()
			return nil, ErrBusy
		case errors.Is(err, parallel.ErrPoolClosed):
			return nil, ErrServiceClosed
		default:
			return nil, err
		}
	}
	s.m.memMisses.Inc() // tier outcome first, then jobsSubmitted
	s.m.jobsSubmitted.Inc()
	s.mu.Unlock()
	return job, nil
}

// cachedJob registers an already-terminal job carrying a cache hit. start
// is when Submit began — the warm-path latency observation. tiers are the
// cache-tier counters this admission lands on (memory hit, or memory miss
// + disk hit); they are incremented only once admission is certain, so a
// draining rejection counts on no tier.
func (s *Service) cachedJob(res *Result, rid string, start time.Time, tiers ...*telemetry.Counter) (*Job, error) {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	job := s.registerJobLocked(rid)
	for _, tier := range tiers {
		tier.Inc() // tier outcome first, then jobsSubmitted
	}
	s.m.jobsSubmitted.Inc()
	s.mu.Unlock()
	s.finishJob(job, JobDone, res, nil, true)
	s.m.planWarm.Observe(s.now().Sub(start).Seconds())
	return job, nil
}

// diskGet reads and decodes one disk-tier entry; an envelope-valid entry
// whose payload does not decode is quarantined like any other corruption.
// The disk-hit counter is NOT incremented here — the caller counts it at
// admission, so a request rejected after a successful read stays off the
// books.
func (s *Service) diskGet(key string) (*Result, bool) {
	payload, ok := s.disk.Get(key)
	if !ok {
		return nil, false
	}
	var w ResultWire
	if err := json.Unmarshal(payload, &w); err != nil {
		s.disk.Quarantine(key, fmt.Errorf("undecodable payload: %w", err))
		return nil, false
	}
	return w.Result(), true
}

// registerJobLocked allocates, registers, and retention-evicts under s.mu.
// Every registered job holds one jobsWG count until its terminal
// transition (finishJob) or an admission rollback. The submitted counter
// is NOT incremented here — callers increment it only once admission is
// certain, so it never needs a rollback decrement.
func (s *Service) registerJobLocked(requestID string) *Job {
	s.seq++
	s.jobsWG.Add(1)
	jobCtx, cancel := context.WithCancel(s.root)
	job := newJob(fmt.Sprintf("job-%06d", s.seq), jobCtx, cancel)
	job.requestID = requestID
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	// Evict oldest terminal jobs beyond the retention bound (and drop ids
	// whose job was already removed, e.g. by an admission rollback).
	if len(s.jobs) > s.maxRetained {
		kept := s.jobOrder[:0]
		for _, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			if len(s.jobs) > s.maxRetained && j.Status().State.Terminal() {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.jobOrder = kept
	}
	return job
}

// watchFollower detaches a coalesced job whose own context is cancelled
// before the flight resolves: the follower finishes cancelled, the flight
// (and its leader) is untouched. Exits when the flight resolves.
func (s *Service) watchFollower(fl *flight, f *flightFollower) {
	select {
	case <-f.job.ctx.Done():
		s.mu.Lock()
		detached := false
		if !f.promoted && !f.detached {
			f.detached = true
			for i, other := range fl.followers {
				if other == f {
					fl.followers = append(fl.followers[:i], fl.followers[i+1:]...)
					break
				}
			}
			detached = true
		}
		s.mu.Unlock()
		if detached {
			s.finishJob(f.job, JobCancelled, nil, f.job.ctx.Err(), false)
		}
	case <-fl.done:
		// Resolved (or abandoned): the resolver finished this job.
	}
}

// runFlight executes one flight on a pool worker. The loop is the leader
// hand-off protocol: if the current leader's plan is cancelled, it keeps
// its best-so-far result and a waiting follower is promoted to re-plan in
// this same worker slot — a follower never loses its result because some
// other caller gave up. A successful plan resolves the whole flight; a
// plan error is deterministic for the key (plans are a pure function of
// it), so it resolves the flight too.
func (s *Service) runFlight(fl *flight) {
	s.m.jobsQueued.Dec()
	for {
		s.mu.Lock()
		job, opts := fl.leader, fl.leaderOpts
		s.mu.Unlock()

		// The key was built from the policy fingerprint observed at
		// admission. If the installed policy changed between then and now,
		// re-key so the stored entry describes the policy that actually
		// planned; if it changes again *during* the plan, skip the store
		// (fpBefore/fpAfter bracket Plan's own policy snapshot, so
		// equality proves the key).
		fpBefore := s.planner.PolicyFingerprint()
		res, err := s.planOnce(fl, job, opts)
		fpAfter := s.planner.PolicyFingerprint()

		switch {
		case err == nil:
			if fpBefore == fpAfter {
				key := planCacheKey(fl.graphFP, s.pkgFP, fpBefore, opts)
				s.cache.put(key, res)
				if s.disk != nil {
					if payload, merr := json.Marshal(resultToWire(res)); merr == nil {
						_ = s.disk.Put(key, payload) // logged + counted by the store
					}
				}
			}
			s.resolveFlight(fl, res, nil)
			return
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// Best-so-far semantics: a cancelled plan may still carry a
			// result — it belongs to the cancelled leader only.
			s.finishJob(job, JobCancelled, res, err, false)
			if !s.promoteNext(fl) {
				return // no waiters left; flight closed by promoteNext
			}
		default:
			s.resolveFlight(fl, nil, err)
			return
		}
	}
}

// planOnce runs one plan attempt for the flight's current leader,
// containing panics (ErrPlanPanic) and injected evaluator faults. Progress
// events fan out to the leader and every currently attached follower.
func (s *Service) planOnce(fl *flight, job *Job, opts PlanOptions) (res *Result, err error) {
	if job.ctx.Err() != nil || !job.markRunning() {
		return nil, context.Canceled
	}
	s.m.jobsRunning.Inc()
	s.m.plansExecuted.Inc()
	start := s.now()
	defer func() {
		s.m.planCold.Observe(s.now().Sub(start).Seconds())
		s.m.jobsRunning.Dec()
	}()

	userProgress := opts.Progress
	opts.Progress = func(ev ProgressEvent) {
		job.recordProgress(ev)
		if userProgress != nil {
			userProgress(ev)
		}
		s.mu.Lock()
		followers := append([]*flightFollower(nil), fl.followers...)
		s.mu.Unlock()
		for _, f := range followers {
			f.job.recordProgress(ev)
			if f.progress != nil {
				f.progress(ev)
			}
		}
	}

	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", ErrPlanPanic, r)
		}
	}()
	if ferr := faultinject.Check(faultinject.PointPlanEvaluate); ferr != nil {
		return nil, fmt.Errorf("mcmpart: injected evaluator fault: %w", ferr)
	}
	return s.planner.Plan(job.ctx, fl.graph, opts)
}

// promoteNext hands the flight to the first still-waiting follower after
// the leader cancelled, reporting whether there is a new leader to run. If
// no followers remain, the flight is closed (removed from the in-flight
// table so a later identical request plans fresh).
func (s *Service) promoteNext(fl *flight) bool {
	s.mu.Lock()
	if len(fl.followers) == 0 {
		if cur, ok := s.inflight[fl.key]; ok && cur == fl {
			delete(s.inflight, fl.key)
		}
		close(fl.done)
		s.mu.Unlock()
		return false
	}
	next := fl.followers[0]
	fl.followers = fl.followers[1:]
	next.promoted = true
	fl.leader = next.job
	fl.leaderOpts.Progress = next.progress
	s.mu.Unlock()
	return true
}

// resolveFlight finishes the flight's leader and every attached follower
// with the plan's outcome. Job.finish clones the result on retention (and
// Job.Result on the way out), so no caller can corrupt another's result.
func (s *Service) resolveFlight(fl *flight, res *Result, err error) {
	s.mu.Lock()
	if cur, ok := s.inflight[fl.key]; ok && cur == fl {
		delete(s.inflight, fl.key)
	}
	leader := fl.leader
	followers := fl.followers
	fl.followers = nil
	close(fl.done)
	s.mu.Unlock()

	if err == nil {
		s.finishJob(leader, JobDone, res, nil, false)
		for _, f := range followers {
			s.finishJob(f.job, JobDone, res, nil, false)
		}
		return
	}
	s.finishJob(leader, JobFailed, nil, err, false)
	for _, f := range followers {
		s.finishJob(f.job, JobFailed, nil, err, false)
	}
}

// finishJob finalizes a job, updates the terminal counters, and releases
// its drain count. Safe to call twice (only the transition that wins
// counts).
func (s *Service) finishJob(job *Job, state JobState, res *Result, err error, cached bool) {
	if !job.finish(state, res, err, cached) {
		return
	}
	switch state {
	case JobDone:
		s.m.jobsDone.Inc()
	case JobFailed:
		s.m.jobsFailed.Inc()
	case JobCancelled:
		s.m.jobsCancelled.Inc()
	}
	s.jobsWG.Done()
}

// Plan is the synchronous, cache-aware entry point: Submit + Wait. When ctx
// is cancelled or expires mid-plan, the job is cancelled and Plan returns
// its best-so-far result together with ctx's error — the same contract as
// Planner.Plan.
func (s *Service) Plan(ctx context.Context, g *Graph, opts PlanOptions) (*Result, error) {
	job, err := s.Submit(ctx, PlanRequest{Graph: g, Options: opts})
	if err != nil {
		return nil, err
	}
	select {
	case <-job.Done():
		return job.Result()
	case <-ctx.Done():
		job.Cancel()
		<-job.Done()
		res, _ := job.Result()
		return res, ctx.Err()
	}
}

// PlanBatch submits every request and waits for all of them. The results
// slice is index-aligned with reqs; entries whose plan failed are nil. The
// returned error is the lowest-index failure (admission or plan), so the
// error a caller sees is deterministic. Cancelling ctx cancels every
// outstanding job immediately — running ones keep their best-so-far
// results, queued ones finish cancelled without consuming a worker.
func (s *Service) PlanBatch(ctx context.Context, reqs []PlanRequest) ([]*Result, error) {
	jobs := make([]*Job, len(reqs))
	errs := make([]error, len(reqs))
	for i, req := range reqs {
		jobs[i], errs[i] = s.Submit(ctx, req)
	}
	// Fan the batch cancellation out to every job as soon as ctx is done.
	// Waiting for the sequential loop below to reach each index would let
	// queued jobs later in the batch run to completion on workers the
	// caller has already given up on.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, job := range jobs {
				if job != nil {
					job.Cancel()
				}
			}
		case <-watchDone:
		}
	}()
	results := make([]*Result, len(reqs))
	for i, job := range jobs {
		if job == nil {
			continue
		}
		select {
		case <-job.Done():
		case <-ctx.Done():
			job.Cancel()
			<-job.Done()
		}
		results[i], errs[i] = job.Result()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// BeginDrain stops admission — Submit, Plan, and PlanBatch return
// ErrServiceClosed (503 + Retry-After over HTTP) — without disturbing
// queued or running jobs. It is the first step of graceful shutdown; pair
// with Drain, or poll Stats until JobsQueued and JobsRunning reach zero.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain gracefully shuts the service down: admission stops immediately,
// then previously admitted jobs run to completion. If ctx expires first,
// the remaining jobs are cancelled (keeping their best-so-far results,
// like Close) and ctx's error is returned. Either way the workers are
// released and the disk cache tier is flushed before Drain returns. Drain
// and Close are both idempotent and safe to combine.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	drained := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.shutdown()
		<-drained
	}
	s.finalize()
	return err
}

// Close stops admission, cancels every queued and running job (their
// best-so-far results are kept, mirroring plan cancellation), waits for the
// workers to drain, flushes the disk cache tier, and returns. Close is
// idempotent. For graceful shutdown — let in-flight work finish first —
// use Drain.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.shutdown()
	s.finalize()
	return nil
}

// finalize releases the workers and flushes the disk tier exactly once,
// after which the service is fully closed.
func (s *Service) finalize() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.pool.Close()
	s.finalOnce.Do(func() {
		if s.disk != nil {
			_ = s.disk.Flush()
		}
	})
}
