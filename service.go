package mcmpart

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mcmpart/internal/parallel"
	"mcmpart/internal/rl"
)

// Service errors.
var (
	// ErrServiceClosed is returned by Submit, Plan, and PlanBatch after
	// Close.
	ErrServiceClosed = errors.New("mcmpart: service is closed")
	// ErrBusy is returned by Submit when the job queue is at capacity —
	// the admission-control signal; callers shed load or retry later.
	ErrBusy = errors.New("mcmpart: service queue is full")
	// ErrPolicyRequired is returned by Planner.Plan and Service.Submit when
	// a deployed-policy method (MethodZeroShot, MethodFineTune) is requested
	// but no pre-trained policy is installed or available in the registry.
	// Over HTTP it maps to 409 Conflict, and Client maps 409 back to it.
	ErrPolicyRequired = errors.New("mcmpart: a pre-trained policy is required")
)

// ServiceOptions configure NewService. The zero value is a working
// configuration: process-default workers, a 4x queue, a 256-entry cache,
// and no policy directory.
type ServiceOptions struct {
	// Workers is the number of plans that may run concurrently
	// (0 = process default, see internal worker-pool default; negative is
	// an error).
	Workers int
	// QueueDepth bounds how many admitted jobs may wait for a worker
	// (0 = 4x Workers; negative is an error). When the queue is full,
	// Submit returns ErrBusy.
	QueueDepth int
	// CacheEntries bounds the plan cache (0 = 256 entries; negative
	// disables caching).
	CacheEntries int
	// PolicyDir, when set, opens a directory-backed policy registry
	// (created if missing). At startup — and lazily at plan time whenever
	// no policy is installed — the service installs the newest registry
	// policy matching its package, enabling MethodZeroShot and
	// MethodFineTune without an explicit Pretrain.
	PolicyDir string
	// MaxRetainedJobs bounds how many terminal jobs the service keeps
	// addressable by ID for status queries (0 = 1024; negative is an
	// error). Oldest terminal jobs are evicted first; live jobs are never
	// evicted.
	MaxRetainedJobs int
}

// ServiceStats is a point-in-time operational snapshot of a Service.
type ServiceStats struct {
	Package            string `json:"package"`
	PackageFingerprint string `json:"package_fingerprint"`
	Workers            int    `json:"workers"`
	QueueDepth         int    `json:"queue_depth"`

	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheEntries  int    `json:"cache_entries"`
	CacheCapacity int    `json:"cache_capacity"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsQueued    int    `json:"jobs_queued"`
	JobsRunning   int    `json:"jobs_running"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`

	PolicyInstalled   bool   `json:"policy_installed"`
	PolicyFingerprint string `json:"policy_fingerprint,omitempty"`
	RegistryPolicies  int    `json:"registry_policies"`
}

// PolicyInfo describes one policy visible to the service: the installed
// one and/or a registry artifact.
type PolicyInfo struct {
	// Path is the artifact file ("" for a policy installed via Pretrain
	// that was never saved).
	Path string `json:"path,omitempty"`
	// PackageName names the package the policy was pre-trained for.
	PackageName string `json:"package_name"`
	// PackageFingerprint is the fingerprint the artifact is bound to.
	PackageFingerprint string `json:"package_fingerprint"`
	// Seq is the registry sequence number (0 outside the registry naming
	// scheme). Higher is newer among one package's policies.
	Seq int `json:"seq"`
	// Installed marks the policy currently driving MethodZeroShot and
	// MethodFineTune plans.
	Installed bool `json:"installed"`
}

// PlanRequest is one unit of work for Submit and PlanBatch.
type PlanRequest struct {
	// Graph is the computation graph to partition.
	Graph *Graph
	// Options configure the plan exactly as in Planner.Plan. The Progress
	// callback, when set, streams from the worker goroutine running the
	// job; Job.Status additionally exposes the latest progress snapshot to
	// pollers.
	Options PlanOptions
}

// Service is a long-lived, concurrency-safe planning front end over a
// Planner — the process-wide object a daemon (cmd/mcmpartd) or an embedding
// application shares across all callers. It adds what a multi-tenant
// deployment needs beyond a bare Planner:
//
//   - a bounded LRU plan cache keyed by canonical graph fingerprint ×
//     package fingerprint × policy fingerprint × normalized options, so
//     repeated requests for the same model return instantly and
//     bit-identically;
//   - a policy registry (directory-backed) with automatic selection of the
//     newest matching policy at plan time;
//   - an async job API — Submit/Job.Wait/Status/Cancel and PlanBatch —
//     backed by a bounded worker pool with fail-fast admission (ErrBusy).
//
// All methods are safe for concurrent use. Close shuts the service down.
type Service struct {
	planner  *Planner
	pkgFP    string
	cache    *planCache
	registry *rl.Registry
	pool     *parallel.Pool

	// root is the lifecycle context every job runs under; Close cancels it.
	root     context.Context
	shutdown context.CancelFunc

	// installedMu guards the provenance of the installed policy: the
	// registry path it came from ("" when installed via Pretrain or
	// LoadPolicy) and its fingerprint at install time.
	installedMu   sync.Mutex
	installedPath string
	installedFP   string

	mu            sync.Mutex
	closed        bool
	seq           int
	jobs          map[string]*Job
	jobOrder      []string // insertion order, for terminal-job eviction
	maxRetained   int
	jobsSubmitted uint64
	jobsDone      uint64
	jobsFailed    uint64
	jobsCancelled uint64
	jobsQueued    int
	jobsRunning   int
}

// NewService builds a service for one package. If opts.PolicyDir holds a
// policy pre-trained for the package, the newest one is installed
// immediately; otherwise the service starts policy-less (the from-scratch
// methods work, and a policy can still arrive via Pretrain, LoadPolicy, or
// a later registry drop picked up at plan time or by ReloadPolicies).
func NewService(pkg *Package, opts ServiceOptions) (*Service, error) {
	planner, err := NewPlanner(pkg)
	if err != nil {
		return nil, err
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("mcmpart: Workers %d is negative; use 0 for the process default", opts.Workers)
	}
	if opts.QueueDepth < 0 {
		return nil, fmt.Errorf("mcmpart: QueueDepth %d is negative; use 0 for the default (4x workers)", opts.QueueDepth)
	}
	if opts.MaxRetainedJobs < 0 {
		return nil, fmt.Errorf("mcmpart: MaxRetainedJobs %d is negative; use 0 for the default (1024)", opts.MaxRetainedJobs)
	}
	cacheEntries := opts.CacheEntries
	if cacheEntries == 0 {
		cacheEntries = 256
	}
	maxRetained := opts.MaxRetainedJobs
	if maxRetained == 0 {
		maxRetained = 1024
	}
	root, shutdown := context.WithCancel(context.Background())
	s := &Service{
		planner:     planner,
		pkgFP:       rl.PackageFingerprint(pkg),
		cache:       newPlanCache(cacheEntries),
		pool:        parallel.NewPool(opts.Workers, opts.QueueDepth),
		root:        root,
		shutdown:    shutdown,
		jobs:        make(map[string]*Job),
		maxRetained: maxRetained,
	}
	if opts.PolicyDir != "" {
		reg, err := rl.OpenRegistry(opts.PolicyDir)
		if err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
		s.registry = reg
		if err := s.installLatestFromRegistry(); err != nil {
			s.pool.Close()
			shutdown()
			return nil, err
		}
	}
	return s, nil
}

// Planner returns the underlying planner, e.g. to Pretrain through the
// service or to Assess a partition. The planner is concurrency-safe; a
// policy installed on it is picked up by subsequent plans (and, because
// the cache keys on the policy fingerprint, never by stale cache entries).
func (s *Service) Planner() *Planner { return s.planner }

// Package returns the package the service plans for.
func (s *Service) Package() *Package { return s.planner.Package() }

// installLatestFromRegistry installs the newest registry policy matching
// the package, if any. A registry with no matching policy is not an error.
func (s *Service) installLatestFromRegistry() error {
	policy, entry, found, err := s.registry.LoadLatest(s.planner.Package())
	if err != nil {
		return fmt.Errorf("mcmpart: loading policy %s from registry: %w", entry.Path, err)
	}
	if found {
		s.planner.installPolicy(policy)
		s.installedMu.Lock()
		s.installedPath = entry.Path
		s.installedFP = s.planner.PolicyFingerprint()
		s.installedMu.Unlock()
	}
	return nil
}

// ReloadPolicies rescans the policy directory and installs the newest
// policy for the package (a no-op without a PolicyDir). Use it after
// dropping a new artifact into the directory of a running service.
func (s *Service) ReloadPolicies() error {
	if s.registry == nil {
		return nil
	}
	if err := s.registry.Rescan(); err != nil {
		return err
	}
	return s.installLatestFromRegistry()
}

// SavePolicyToRegistry writes the planner's installed policy into the
// policy directory as the next version for this package.
func (s *Service) SavePolicyToRegistry() error {
	if s.registry == nil {
		return fmt.Errorf("mcmpart: service has no policy directory")
	}
	policy, _ := s.planner.snapshotPolicy()
	if policy == nil {
		return fmt.Errorf("mcmpart: planner has no policy to save; run Pretrain or LoadPolicy first")
	}
	_, err := s.registry.Save(policy, s.planner.Package())
	return err
}

// Policies lists the installed policy and every registry artifact matching
// the service's package, oldest first, installed one marked. The installed
// mark uses the provenance recorded at install time (no artifact is read
// from disk here), and is dropped if the planner's policy changed since —
// e.g. a Pretrain through Planner() — in which case a synthetic
// path-less entry represents the installed policy instead.
func (s *Service) Policies() []PolicyInfo {
	installedFP := s.planner.PolicyFingerprint()
	s.installedMu.Lock()
	installedPath := s.installedPath
	if installedFP == "" || installedFP != s.installedFP {
		installedPath = "" // policy replaced outside the registry
	}
	s.installedMu.Unlock()
	var out []PolicyInfo
	seenInstalled := false
	if s.registry != nil {
		for _, e := range s.registry.ForPackage(s.planner.Package()) {
			info := PolicyInfo{
				Path:               e.Path,
				PackageName:        e.PackageName,
				PackageFingerprint: e.PackageFingerprint,
				Seq:                e.Seq,
			}
			if installedPath != "" && e.Path == installedPath {
				info.Installed = true
				seenInstalled = true
			}
			out = append(out, info)
		}
	}
	if installedFP != "" && !seenInstalled {
		out = append(out, PolicyInfo{
			PackageName:        s.planner.Package().Name,
			PackageFingerprint: s.pkgFP,
			Installed:          true,
		})
	}
	return out
}

// Stats returns a point-in-time operational snapshot.
func (s *Service) Stats() ServiceStats {
	hits, misses, size, capacity := s.cache.snapshot()
	st := ServiceStats{
		Package:            s.planner.Package().Name,
		PackageFingerprint: s.pkgFP,
		Workers:            s.pool.Workers(),
		QueueDepth:         s.pool.QueueCap(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEntries:       size,
		CacheCapacity:      capacity,
		PolicyInstalled:    s.planner.HasPolicy(),
		PolicyFingerprint:  s.planner.PolicyFingerprint(),
	}
	if s.registry != nil {
		st.RegistryPolicies = len(s.registry.ForPackage(s.planner.Package()))
	}
	s.mu.Lock()
	st.JobsSubmitted = s.jobsSubmitted
	st.JobsDone = s.jobsDone
	st.JobsFailed = s.jobsFailed
	st.JobsCancelled = s.jobsCancelled
	st.JobsQueued = s.jobsQueued
	st.JobsRunning = s.jobsRunning
	s.mu.Unlock()
	return st
}

// Job returns a submitted job by ID. Terminal jobs stay addressable until
// evicted by the retention bound.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ensurePolicy makes the deployed-policy methods servable: if no policy is
// installed but a registry is configured, the newest matching policy is
// installed now — the "automatic policy selection at plan time".
func (s *Service) ensurePolicy(method Method) error {
	if method != MethodZeroShot && method != MethodFineTune {
		return nil
	}
	if s.planner.HasPolicy() {
		return nil
	}
	if s.registry != nil {
		if err := s.registry.Rescan(); err != nil {
			return err
		}
		if err := s.installLatestFromRegistry(); err != nil {
			return err
		}
		if s.planner.HasPolicy() {
			return nil
		}
	}
	return fmt.Errorf("%w: method %q needs Pretrain, LoadPolicy, or an artifact for this package in the policy directory", ErrPolicyRequired, method)
}

// Submit validates and admits one plan request, returning the Job tracking
// it. Submission is fail-fast: a malformed request, a missing policy, or a
// full queue (ErrBusy) is reported now, not from inside the job. ctx covers
// admission only — the job itself runs under the service's lifecycle and
// stops via Job.Cancel or Close.
//
// If the plan cache already holds the result, Submit returns an
// already-terminal job carrying a copy of it (Status().Cached == true)
// without consuming a worker.
func (s *Service) Submit(ctx context.Context, req PlanRequest) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Graph == nil {
		return nil, fmt.Errorf("mcmpart: nil graph")
	}
	if err := req.Graph.Validate(); err != nil {
		return nil, err
	}
	opts, err := req.Options.normalized()
	if err != nil {
		return nil, err
	}
	if err := s.ensurePolicy(opts.Method); err != nil {
		return nil, err
	}

	graphFP := req.Graph.Fingerprint()
	key := planCacheKey(graphFP, s.pkgFP, s.planner.PolicyFingerprint(), opts)
	if res, ok := s.cache.get(key); ok {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrServiceClosed
		}
		job := s.registerJobLocked()
		s.mu.Unlock()
		s.finishJob(job, JobDone, res, nil, true)
		return job, nil
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	job := s.registerJobLocked()
	s.jobsQueued++
	s.mu.Unlock()

	run := func() { s.runJob(job, req.Graph, graphFP, opts) }
	if err := s.pool.TrySubmit(run); err != nil {
		job.cancel() // release the job's child context
		s.mu.Lock()
		s.jobsQueued--
		s.jobsSubmitted--
		delete(s.jobs, job.id)
		for i := len(s.jobOrder) - 1; i >= 0; i-- {
			if s.jobOrder[i] == job.id {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		switch {
		case errors.Is(err, parallel.ErrPoolFull):
			return nil, ErrBusy
		case errors.Is(err, parallel.ErrPoolClosed):
			return nil, ErrServiceClosed
		default:
			return nil, err
		}
	}
	return job, nil
}

// registerJobLocked allocates, registers, and retention-evicts under s.mu.
func (s *Service) registerJobLocked() *Job {
	s.seq++
	s.jobsSubmitted++
	jobCtx, cancel := context.WithCancel(s.root)
	job := newJob(fmt.Sprintf("job-%06d", s.seq), jobCtx, cancel)
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	// Evict oldest terminal jobs beyond the retention bound (and drop ids
	// whose job was already removed, e.g. by an admission rollback).
	if len(s.jobs) > s.maxRetained {
		kept := s.jobOrder[:0]
		for _, id := range s.jobOrder {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			if len(s.jobs) > s.maxRetained && j.Status().State.Terminal() {
				delete(s.jobs, id)
				continue
			}
			kept = append(kept, id)
		}
		s.jobOrder = kept
	}
	return job
}

// runJob executes one admitted job on a pool worker. graphFP is the
// canonical graph fingerprint computed at admission (the graph is not
// mutated while the job runs, per the Submit contract).
func (s *Service) runJob(job *Job, g *Graph, graphFP string, opts PlanOptions) {
	s.mu.Lock()
	s.jobsQueued--
	s.mu.Unlock()
	if job.ctx.Err() != nil || !job.markRunning() {
		s.finishJob(job, JobCancelled, nil, job.ctx.Err(), false)
		return
	}
	s.mu.Lock()
	s.jobsRunning++
	s.mu.Unlock()

	userProgress := opts.Progress
	opts.Progress = func(ev ProgressEvent) {
		job.recordProgress(ev)
		if userProgress != nil {
			userProgress(ev)
		}
	}

	// The key was built from the policy fingerprint observed at admission.
	// If the installed policy changed between then and now, re-key so the
	// stored entry describes the policy that actually planned; if it
	// changes again *during* the plan, skip the store (fpBefore/fpAfter
	// bracket Plan's own policy snapshot, so equality proves the key).
	fpBefore := s.planner.PolicyFingerprint()
	res, err := s.planner.Plan(job.ctx, g, opts)
	fpAfter := s.planner.PolicyFingerprint()

	s.mu.Lock()
	s.jobsRunning--
	s.mu.Unlock()

	switch {
	case err == nil:
		if fpBefore == fpAfter {
			s.cache.put(planCacheKey(graphFP, s.pkgFP, fpBefore, opts), res)
		}
		s.finishJob(job, JobDone, res, nil, false)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Best-so-far semantics: a cancelled plan may still carry a result.
		s.finishJob(job, JobCancelled, res, err, false)
	default:
		s.finishJob(job, JobFailed, nil, err, false)
	}
}

// finishJob finalizes a job and updates the terminal counters.
func (s *Service) finishJob(job *Job, state JobState, res *Result, err error, cached bool) {
	if !job.finish(state, res, err, cached) {
		return
	}
	s.mu.Lock()
	switch state {
	case JobDone:
		s.jobsDone++
	case JobFailed:
		s.jobsFailed++
	case JobCancelled:
		s.jobsCancelled++
	}
	s.mu.Unlock()
}

// Plan is the synchronous, cache-aware entry point: Submit + Wait. When ctx
// is cancelled or expires mid-plan, the job is cancelled and Plan returns
// its best-so-far result together with ctx's error — the same contract as
// Planner.Plan.
func (s *Service) Plan(ctx context.Context, g *Graph, opts PlanOptions) (*Result, error) {
	job, err := s.Submit(ctx, PlanRequest{Graph: g, Options: opts})
	if err != nil {
		return nil, err
	}
	select {
	case <-job.Done():
		return job.Result()
	case <-ctx.Done():
		job.Cancel()
		<-job.Done()
		res, _ := job.Result()
		return res, ctx.Err()
	}
}

// PlanBatch submits every request and waits for all of them. The results
// slice is index-aligned with reqs; entries whose plan failed are nil. The
// returned error is the lowest-index failure (admission or plan), so the
// error a caller sees is deterministic. Cancelling ctx cancels the
// still-running jobs (their best-so-far results are kept).
func (s *Service) PlanBatch(ctx context.Context, reqs []PlanRequest) ([]*Result, error) {
	jobs := make([]*Job, len(reqs))
	errs := make([]error, len(reqs))
	for i, req := range reqs {
		jobs[i], errs[i] = s.Submit(ctx, req)
	}
	results := make([]*Result, len(reqs))
	for i, job := range jobs {
		if job == nil {
			continue
		}
		select {
		case <-job.Done():
		case <-ctx.Done():
			job.Cancel()
			<-job.Done()
		}
		results[i], errs[i] = job.Result()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Close stops admission, cancels every queued and running job (their
// best-so-far results are kept, mirroring plan cancellation), waits for the
// workers to drain, and returns. Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.pool.Close()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.shutdown()
	s.pool.Close()
	return nil
}
