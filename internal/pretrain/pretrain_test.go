package pretrain

import (
	"context"
	"math/rand"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

func tinyFactory(t *testing.T, pkg *mcm.Package) EnvFactory {
	t.Helper()
	model := costmodel.New(pkg)
	return func(g *graph.Graph) (*rl.Env, error) {
		pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
		if err != nil {
			return nil, err
		}
		baseTh, _ := model.Evaluate(g, search.Greedy(g, pkg.Chips, pkg.SRAMBytes))
		return rl.NewEnv(rl.NewGraphContext(g), pr, model, baseTh), nil
	}
}

func tinyGraphs(n int) []*graph.Graph {
	gs := make([]*graph.Graph, n)
	for i := range gs {
		gs[i] = workload.MLP(workload.MLPConfig{
			Name: "m", Layers: 4 + i, Input: 128, Hidden: 256, Output: 32, Batch: 8,
		})
	}
	return gs
}

func TestRunEmitsCheckpointsAndPicksBest(t *testing.T) {
	pkg := mcm.Dev4()
	cfg := QuickConfig(pkg.Chips)
	cfg.Policy = rl.Config{Chips: pkg.Chips, Hidden: 8, SAGELayers: 1, Iterations: 1}
	cfg.PPO.Rollouts = 4
	cfg.PPO.Epochs = 1
	cfg.TotalSamples = 40
	cfg.Checkpoints = 4
	cfg.ValidationSamples = 3
	res, err := Run(context.Background(), tinyGraphs(3), tinyGraphs(1), tinyFactory(t, pkg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) == 0 || len(res.Checkpoints) > cfg.Checkpoints+1 {
		t.Fatalf("checkpoints = %d", len(res.Checkpoints))
	}
	if len(res.Scores) != len(res.Checkpoints) {
		t.Fatalf("scores/checkpoints mismatch: %d vs %d", len(res.Scores), len(res.Checkpoints))
	}
	if res.BestIndex < 0 || res.BestIndex >= len(res.Checkpoints) {
		t.Fatalf("bad best index %d", res.BestIndex)
	}
	for i, s := range res.Scores {
		if s > res.Scores[res.BestIndex] {
			t.Fatalf("checkpoint %d (%.3f) beats selected %d (%.3f)", i, s, res.BestIndex, res.Scores[res.BestIndex])
		}
	}
	if len(res.TrainStats) == 0 {
		t.Fatal("no training iterations recorded")
	}
	// The selected checkpoint restores into a fresh policy and runs.
	rng := rand.New(rand.NewSource(9))
	p := rl.NewPolicy(cfg.Policy, rng)
	if err := p.Restore(res.Best()); err != nil {
		t.Fatal(err)
	}
	env, err := tinyFactory(t, pkg)(tinyGraphs(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := rl.ZeroShot(context.Background(), p, env, 4, rng); err != nil {
		t.Fatal(err)
	}
	if env.Samples < 4 {
		t.Fatal("zero-shot deployment did not consume its budget")
	}
}

func TestRunRejectsEmptySets(t *testing.T) {
	pkg := mcm.Dev4()
	cfg := QuickConfig(pkg.Chips)
	if _, err := Run(context.Background(), nil, tinyGraphs(1), tinyFactory(t, pkg), cfg); err == nil {
		t.Fatal("empty training set should fail")
	}
	if _, err := Run(context.Background(), tinyGraphs(1), nil, tinyFactory(t, pkg), cfg); err == nil {
		t.Fatal("empty validation set should fail")
	}
}
