// Package pretrain implements the paper's pre-training pipeline (Sec. 4.3,
// Figure 4): a training worker iterates PPO over the training-set graphs
// against the analytical cost model, periodically emitting checkpoints of
// the policy weights; a validation worker replays every checkpoint on the
// validation-set graphs and picks the one with the best average reward. The
// chosen checkpoint is what deployment warm-starts from, either zero-shot
// or with fine-tuning (internal/rl.ZeroShot / rl.FineTune).
package pretrain

import (
	"context"
	"fmt"
	"math/rand"

	"mcmpart/internal/graph"
	"mcmpart/internal/nn"
	"mcmpart/internal/parallel"
	"mcmpart/internal/rl"
)

// EnvFactory builds a fresh evaluation environment for a graph; the
// pipeline uses it for both training and validation graphs. Implementations
// wire the graph to a Partitioner and an evaluator (the analytical cost
// model during pre-training) and set the heuristic baseline.
type EnvFactory func(g *graph.Graph) (*rl.Env, error)

// Config drives the pipeline.
type Config struct {
	// Policy is the network shape (must match the deployment package's
	// chip count).
	Policy rl.Config
	// PPO is the training configuration.
	PPO rl.PPOConfig
	// TotalSamples is the pre-training evaluation budget summed over all
	// training graphs (paper: 20000).
	TotalSamples int
	// Checkpoints is how many evenly spaced checkpoints to emit
	// (paper: 200).
	Checkpoints int
	// ValidationSamples is the per-graph zero-shot budget the validation
	// worker spends scoring each checkpoint.
	ValidationSamples int
	// Seed derives all randomness.
	Seed int64
	// Workers bounds the validation worker's checkpoint fan-out (0 =
	// process default). Each checkpoint scores with its own policy clone,
	// fresh environments, and a seed derived from its index, so scores are
	// identical at any worker count.
	Workers int
	// Progress, when set, is invoked after every absorbed training sample
	// with the cumulative sample count across all training graphs and the
	// absorbing graph's best-so-far improvement. It runs on the goroutine
	// driving training (never concurrently); validation scoring does not
	// report progress.
	Progress func(samples int, bestImprovement float64)
}

// QuickConfig returns a laptop-scale pipeline configuration for a given
// chip count; see DESIGN.md for the knobs used by each experiment.
func QuickConfig(chips int) Config {
	return Config{
		Policy:            rl.QuickConfig(chips),
		PPO:               rl.QuickPPOConfig(),
		TotalSamples:      2000,
		Checkpoints:       10,
		ValidationSamples: 8,
		Seed:              1,
	}
}

// Result is the pipeline output.
type Result struct {
	// Checkpoints are the emitted snapshots, oldest first.
	Checkpoints []nn.Snapshot
	// Scores are the validation rewards per checkpoint.
	Scores []float64
	// BestIndex points at the checkpoint the validation worker selected.
	BestIndex int
	// TrainStats records per-iteration training statistics.
	TrainStats []rl.IterationStats
}

// Best returns the selected checkpoint.
func (r *Result) Best() nn.Snapshot { return r.Checkpoints[r.BestIndex] }

// Run executes the two-worker pipeline sequentially (training first, then
// validation — determinism matters more than wall-clock overlap here).
//
// Cancelling or timing out ctx stops the pipeline at the next iteration
// boundary and returns the best-so-far result together with ctx.Err(): the
// checkpoints emitted so far plus a final snapshot of the current policy,
// with BestIndex pointing at that most recent snapshot (validation scoring
// is skipped — Scores stays nil — because the scoring budget itself was
// cancelled). An uncancelled run is bit-identical to the pre-context
// behavior.
func Run(ctx context.Context, train, validation []*graph.Graph, factory EnvFactory, cfg Config) (*Result, error) {
	if len(train) == 0 || len(validation) == 0 {
		return nil, fmt.Errorf("pretrain: need training and validation graphs (%d/%d)", len(train), len(validation))
	}
	if cfg.Checkpoints < 1 {
		cfg.Checkpoints = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	policy := rl.NewPolicy(cfg.Policy, rng)
	trainer := rl.NewTrainer(policy, cfg.PPO, rng)

	envs := make([]*rl.Env, len(train))
	for i, g := range train {
		env, err := factory(g)
		if err != nil {
			return nil, fmt.Errorf("pretrain: training env for %s: %w", g.Name(), err)
		}
		envs[i] = env
	}
	if cfg.Progress != nil {
		// One shared counter across the training environments; absorption
		// is serial (deterministic episode order), so no locking needed.
		var total int
		for _, env := range envs {
			env.OnSample = func(_ int, best float64) {
				total++
				cfg.Progress(total, best)
			}
		}
	}

	res := &Result{}
	totalSamples := func() int {
		s := 0
		for _, e := range envs {
			s += e.Samples
		}
		return s
	}
	interval := cfg.TotalSamples / cfg.Checkpoints
	if interval < 1 {
		interval = 1
	}
	nextCheckpoint := interval
	for totalSamples() < cfg.TotalSamples {
		if err := ctx.Err(); err != nil {
			// Best-so-far: close the checkpoint stream with the current
			// weights and hand deployment the most recent snapshot.
			res.Checkpoints = append(res.Checkpoints, policy.Snapshot())
			res.BestIndex = len(res.Checkpoints) - 1
			return res, err
		}
		res.TrainStats = append(res.TrainStats, trainer.Iterate(envs))
		//mcmlint:ignore ctxloop checkpoint drain takes no samples and is bounded by cfg.Checkpoints; the training loop above checks ctx
		for totalSamples() >= nextCheckpoint && len(res.Checkpoints) < cfg.Checkpoints {
			res.Checkpoints = append(res.Checkpoints, policy.Snapshot())
			nextCheckpoint += interval
		}
	}
	if len(res.Checkpoints) == 0 || totalSamples() > nextCheckpoint-interval {
		res.Checkpoints = append(res.Checkpoints, policy.Snapshot())
	}

	// Validation worker: zero-shot score per checkpoint, averaged over the
	// validation graphs. Checkpoints score independently — each gets its
	// own scorer policy, fresh environments, and an RNG derived from
	// (Seed+1, checkpoint index) — so they fan out across the worker pool
	// with scores identical at any worker count.
	scores, err := parallel.MapErr(parallel.Resolve(cfg.Workers, len(res.Checkpoints)),
		len(res.Checkpoints), func(ci int) (float64, error) {
			vrng := parallel.Rng(cfg.Seed+1, ci)
			scorer := rl.NewPolicy(cfg.Policy, vrng)
			if err := scorer.Restore(res.Checkpoints[ci]); err != nil {
				return 0, fmt.Errorf("pretrain: checkpoint %d: %w", ci, err)
			}
			var score float64
			for _, g := range validation {
				env, err := factory(g)
				if err != nil {
					return 0, fmt.Errorf("pretrain: validation env for %s: %w", g.Name(), err)
				}
				if err := rl.ZeroShot(ctx, scorer, env, cfg.ValidationSamples, vrng); err != nil {
					return 0, err
				}
				score += env.BestImprovement()
			}
			return score / float64(len(validation)), nil
		})
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled mid-validation: the checkpoints are intact, only
			// their scores are not; fall back to the most recent snapshot.
			res.BestIndex = len(res.Checkpoints) - 1
			return res, ctx.Err()
		}
		return nil, err
	}
	res.Scores = scores
	best := -1.0
	for ci, score := range scores {
		if score > best {
			best = score
			res.BestIndex = ci
		}
	}
	return res, nil
}
