package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	Disable()
	if f := Fire(PointPlanEvaluate); f != nil {
		t.Fatalf("no active set must fire nothing, got %+v", f)
	}
	if err := Check(PointDiskWrite); err != nil {
		t.Fatal(err)
	}
}

func TestEveryNthDeterministic(t *testing.T) {
	errBoom := errors.New("boom")
	s := NewSet(1, Rule{Point: PointDiskWrite, Fault: Fault{Err: errBoom}, Every: 3})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, s.Fire(PointDiskWrite) != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
	hits, fired := s.Counts(PointDiskWrite)
	if hits != 9 || fired != 3 {
		t.Fatalf("counts = (%d, %d), want (9, 3)", hits, fired)
	}
}

func TestProbabilisticScheduleIsSeedStable(t *testing.T) {
	run := func(seed int64) []bool {
		s := NewSet(seed, Rule{Point: PointPlanEvaluate, Fault: Fault{Err: errors.New("x")}, Prob: 0.3})
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Fire(PointPlanEvaluate) != nil
		}
		return out
	}
	a, b := run(7), run(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times — schedule degenerate", fired, len(a))
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCheckPanics(t *testing.T) {
	s := NewSet(1, Rule{Point: PointPlanEvaluate, Fault: Fault{Err: errors.New("dead"), Panic: true}, Every: 1})
	Enable(s)
	defer Disable()
	defer func() {
		if recover() == nil {
			t.Fatal("Check must panic when the fault says so")
		}
	}()
	_ = Check(PointPlanEvaluate)
}

func TestConcurrentFireIsRaceFree(t *testing.T) {
	s := NewSet(3, Rule{Point: PointDiskRead, Fault: Fault{Err: errors.New("x")}, Prob: 0.5})
	Enable(s)
	defer Disable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = Fire(PointDiskRead)
			}
		}()
	}
	wg.Wait()
	if hits, _ := s.Counts(PointDiskRead); hits != 800 {
		t.Fatalf("hits = %d, want 800", hits)
	}
}

func TestMiddlewareTruncates(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"ok": true}`))
	})
	srv := httptest.NewServer(Middleware(inner))
	defer srv.Close()

	// No active set: clean pass-through.
	Disable()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != `{"ok": true}` {
		t.Fatalf("clean response corrupted: %q, %v", body, err)
	}

	// Truncating fault: the client must observe a failure, not a short
	// body silently accepted.
	Enable(NewSet(1, Rule{
		Point: PointHTTPResponse,
		Fault: Fault{Truncate: true, Delay: 5 * time.Millisecond},
		Every: 1,
	}))
	defer Disable()
	resp, err = http.Get(srv.URL)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("truncated response must surface a client-side error")
	}
}
