package faultinject

import (
	"net/http"
	"time"
)

// Middleware wraps an HTTP handler with the PointHTTPResponse failure
// point. When the point fires with Truncate, the response is started (200,
// a partial body) and then aborted mid-flight, so the client observes a
// transport-level failure — the injected form of a connection cut by a
// crashing peer or a dropped link. A Delay without Truncate serves the real
// response slowly. With no active fault set the wrapper adds one atomic
// load per request.
func Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := Fire(PointHTTPResponse)
		if f == nil {
			next.ServeHTTP(w, r)
			return
		}
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Truncate {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{"result": {"partition": [0, 1,`))
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			// net/http recognizes ErrAbortHandler: the connection is torn
			// down without a graceful close, so the client's body read fails.
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}
