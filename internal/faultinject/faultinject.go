// Package faultinject provides injectable failure points for chaos testing
// the serving stack. A failure point is a named site in production code —
// the evaluator call inside a Service worker, a disk-cache read or write,
// the HTTP response path — that consults the active fault set before doing
// its real work. In production no set is active and the consultation is a
// single atomic pointer load returning nil; in tests a deterministic seeded
// schedule decides, per hit, whether the site fails and how (typed error,
// panic, delay, truncated HTTP response).
//
// Determinism: each point keeps a hit counter, and whether hit i fires is a
// pure function of (schedule seed, point, i) via the same splitmix64
// derivation the parallel engine uses. Under concurrency the assignment of
// hit indices to requests follows arrival order, so individual requests are
// not reproducible — but the aggregate schedule (which fraction fails, the
// exact firing pattern over the hit sequence) is, which is what the chaos
// suite's assertions need.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injectable failure site.
type Point string

// The failure points wired into the serving stack.
const (
	// PointPlanEvaluate fires inside a Service worker just before the
	// planner runs — an evaluator error or panic.
	PointPlanEvaluate Point = "plan.evaluate"
	// PointDiskWrite fires in the persistent plan cache's write path.
	PointDiskWrite Point = "plancache.write"
	// PointDiskRead fires in the persistent plan cache's read path.
	PointDiskRead Point = "plancache.read"
	// PointHTTPResponse fires in the HTTP middleware before the response is
	// written — a slow and/or truncated response.
	PointHTTPResponse Point = "http.response"
)

// Fault describes what happens when a point fires.
type Fault struct {
	// Err is returned from the failure point (wrapped by the site).
	Err error
	// Panic makes the site panic with Err instead of returning it.
	Panic bool
	// Delay is slept before the fault takes effect (and before a clean
	// response, when neither Err nor Truncate is set — pure slowness).
	Delay time.Duration
	// Truncate makes the HTTP middleware cut the response short after a
	// partial body, so the client sees a transport-level failure.
	Truncate bool
}

// Rule schedules one fault at one point.
type Rule struct {
	Point Point
	Fault Fault
	// Prob fires the fault on each hit with this probability, decided by
	// the seeded per-hit stream (0 disables probabilistic firing).
	Prob float64
	// Every fires the fault on every Nth hit (1-based: Every=3 fires hits
	// 3, 6, 9, …). 0 disables periodic firing.
	Every int
}

// Set is an immutable fault schedule plus mutable per-point hit counters.
type Set struct {
	seed  int64
	rules map[Point][]Rule

	mu    sync.Mutex
	hits  map[Point]*uint64
	fired map[Point]*uint64
}

// NewSet builds a schedule from seed and rules.
func NewSet(seed int64, rules ...Rule) *Set {
	s := &Set{
		seed:  seed,
		rules: make(map[Point][]Rule),
		hits:  make(map[Point]*uint64),
		fired: make(map[Point]*uint64),
	}
	for _, r := range rules {
		s.rules[r.Point] = append(s.rules[r.Point], r)
		if s.hits[r.Point] == nil {
			s.hits[r.Point] = new(uint64)
			s.fired[r.Point] = new(uint64)
		}
	}
	return s
}

// splitmix64 is the finalizer the parallel engine derives per-item seeds
// with; here it derives the per-hit firing stream.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// pointHash folds a point name into the stream seed.
func pointHash(p Point) uint64 {
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// fire decides whether hit i at point p fires under rule r.
func (s *Set) fire(r Rule, hit uint64) bool {
	if r.Every > 0 && hit%uint64(r.Every) == 0 {
		return true
	}
	if r.Prob > 0 {
		z := splitmix64(uint64(s.seed) + 0x9e3779b97f4a7c15*(pointHash(r.Point)^hit))
		u := float64(z>>11) / float64(1<<53)
		return u < r.Prob
	}
	return false
}

// Fire records one hit at p and returns the fault to apply, or nil. The
// first matching rule wins.
func (s *Set) Fire(p Point) *Fault {
	rules := s.rules[p]
	if len(rules) == 0 {
		return nil
	}
	s.mu.Lock()
	*s.hits[p]++
	hit := *s.hits[p]
	s.mu.Unlock()
	for _, r := range rules {
		if s.fire(r, hit) {
			s.mu.Lock()
			*s.fired[p]++
			s.mu.Unlock()
			f := r.Fault
			return &f
		}
	}
	return nil
}

// Counts reports (hits, fired) for a point — the chaos suite's evidence
// that faults actually flowed.
func (s *Set) Counts(p Point) (hits, fired uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hits[p] == nil {
		return 0, 0
	}
	return *s.hits[p], *s.fired[p]
}

// active is the process-wide fault set; nil in production.
var active atomic.Pointer[Set]

// Enable installs s as the process-wide fault set.
func Enable(s *Set) { active.Store(s) }

// Disable removes the active fault set.
func Disable() { active.Store(nil) }

// Fire consults the active set; nil (one atomic load) when none is active.
func Fire(p Point) *Fault {
	s := active.Load()
	if s == nil {
		return nil
	}
	return s.Fire(p)
}

// Check is the error-returning form production sites use: it fires p,
// applies Delay, panics if the fault says so, and returns the fault error
// (nil when the point does not fire or the fault carries no error).
func Check(p Point) error {
	f := Fire(p)
	if f == nil {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic {
		panic(fmt.Sprintf("faultinject: %s: %v", p, f.Err))
	}
	return f.Err
}
