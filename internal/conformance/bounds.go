package conformance

import (
	"errors"
	"fmt"

	"mcmpart/internal/analyze"
	"mcmpart/internal/costmodel"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

// boundTol is the relative tolerance the bound oracles allow for summation-
// order floating-point differences between the analysis's prefix sums and
// the evaluators' per-chip accumulations. It is far below any real
// unsoundness (a broken bound is off by factors, not 1e-9).
const boundTol = 1e-9

// HardwareCostParams are the cost semantics of the hardware simulator —
// its per-op efficiency table and dispatch overhead — in the form
// analyze.LowerBoundWith consumes. Injecting them here keeps internal/analyze
// free of any hwsim dependency (the fast path never simulates) while still
// letting the sweep prove its bounds against the simulator.
func HardwareCostParams() analyze.CostParams {
	return analyze.CostParams{EffFor: hwsim.OpEff, OpOverhead: hwsim.DefaultOpOverhead}
}

// CheckBoundSoundness is the bound-soundness oracle: a claimed lower bound
// must actually be below every cost the contract covers.
//
// For each sampled partition:
//
//   - static.Compute <= the analytical model's latency whenever that latency
//     is finite (the Compute term claims soundness for every partition the
//     model prices).
//   - static.Total <= the analytical latency additionally for partitions
//     whose per-chip weights fit their chips (the Transfer term's family).
//   - hw.Total <= the noise-free simulator interval for every partition the
//     simulator accepts.
//
// The bounds are explicit inputs, so tests can feed deliberately inflated
// values and watch the oracle fail.
func CheckBoundSoundness(scenario string, g *graph.Graph, pkg *mcm.Package,
	parts []partition.Partition, static, hw analyze.Bounds,
	model *costmodel.Model, sim *hwsim.Simulator) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Oracle: "bound", Scenario: scenario, Detail: fmt.Sprintf(format, args...)})
	}
	for i, p := range parts {
		if lat := model.Latency(g, p); lat > 0 && !isInf(lat) {
			if static.Compute > lat*(1+boundTol) {
				add("partition %d: Compute bound %g > analytical latency %g", i, static.Compute, lat)
			}
			if weightsFit(g, pkg, p) && static.Total > lat*(1+boundTol) {
				add("partition %d: Total bound %g > analytical latency %g of a weight-fitting partition",
					i, static.Total, lat)
			}
		}
		if r := sim.Evaluate(g, p); r.Valid {
			if hw.Total > r.Interval*(1+boundTol) {
				add("partition %d: hardware bound %g > simulated interval %g", i, hw.Total, r.Interval)
			}
		}
	}
	return out
}

// CheckAnalyticPlan is the analytic-plan oracle: the fast path either
// reports infeasibility (conforming — the sweep's graphs do not all fit
// every package) or returns a plan that is ValidateOn-clean, whose reported
// latency is exactly the analytical model's, and that never undercuts its
// own lower bound.
func CheckAnalyticPlan(scenario string, g *graph.Graph, pkg *mcm.Package,
	a *analyze.Analysis, model *costmodel.Model) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Oracle: "bound", Scenario: scenario, Detail: fmt.Sprintf(format, args...)})
	}
	p, info, err := a.Plan(analyze.Options{})
	if errors.Is(err, analyze.ErrInfeasible) {
		return nil
	}
	if err != nil {
		add("analytic plan failed with an untyped error: %v", err)
		return out
	}
	if verr := p.ValidateOn(g, pkg); verr != nil {
		add("analytic plan fails ValidateOn: %v", verr)
	}
	lat := model.Latency(g, p)
	if diff := info.Latency - lat; diff > boundTol*lat || diff < -boundTol*lat {
		add("analytic plan reports latency %g but the model prices it %g", info.Latency, lat)
	}
	if info.LB.Total > lat*(1+boundTol) {
		add("analytic plan latency %g undercuts its own lower bound %g", lat, info.LB.Total)
	}
	return out
}

// weightsFit reports whether every chip's summed weights fit its SRAM — the
// partition family the Transfer bound term covers.
func weightsFit(g *graph.Graph, pkg *mcm.Package, p partition.Partition) bool {
	loads := make([]int64, pkg.Chips)
	for _, nd := range g.Nodes() {
		c := p[nd.ID]
		if c < 0 || c >= pkg.Chips {
			return false
		}
		loads[c] += nd.ParamBytes
	}
	for c, w := range loads {
		if w > pkg.ChipSRAM(c) {
			return false
		}
	}
	return true
}

func isInf(f float64) bool { return f > 1e300 }
