package conformance

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"mcmpart"
	"mcmpart/internal/analyze"
	"mcmpart/internal/costmodel"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/parallel"
	"mcmpart/internal/randgraph"
)

// SweepConfig parameterizes a conformance sweep: which packages, how many
// generated graphs, which planning methods, and the seed everything derives
// from. Identical configs produce byte-identical reports.
type SweepConfig struct {
	// Seed derives the graph stream, the partition samples, and every plan
	// (default 1).
	Seed int64
	// Presets are package preset names (default: all six).
	Presets []string
	// GraphsPerPreset is how many randgraph.Sample graphs each package sees
	// (default 28 — with the six presets and four methods that is 672
	// plan cases).
	GraphsPerPreset int
	// Methods are the planning methods swept per graph (default greedy,
	// random, sa, analytic — the methods that need no pre-trained policy).
	Methods []mcmpart.Method
	// SampleBudget bounds each plan's search (default 16; greedy ignores it).
	SampleBudget int
	// PartitionsPerGraph is how many sampled partitions feed the legality
	// oracle per graph (default 6).
	PartitionsPerGraph int
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Presets) == 0 {
		c.Presets = []string{"dev4", "dev8", "dev8bi", "het4", "mesh16", "edge36"}
	}
	if c.GraphsPerPreset == 0 {
		c.GraphsPerPreset = 28
	}
	if len(c.Methods) == 0 {
		c.Methods = []mcmpart.Method{mcmpart.MethodGreedy, mcmpart.MethodRandom, mcmpart.MethodSA, mcmpart.MethodAnalytic}
	}
	if c.SampleBudget == 0 {
		c.SampleBudget = 16
	}
	if c.PartitionsPerGraph == 0 {
		c.PartitionsPerGraph = 6
	}
	return c
}

// PresetReport aggregates one package's sweep outcome.
type PresetReport struct {
	Preset string `json:"preset"`
	// PlanCases is graphs x methods; PlanErrors counts the cases that
	// returned a typed error (e.g. the workload does not fit the package),
	// which is conforming behavior — only oracle violations are failures.
	PlanCases  int `json:"plan_cases"`
	PlanErrors int `json:"plan_errors"`
	CacheHits  int `json:"cache_hits"`
	// Checks is the total number of oracle checks run for the preset.
	Checks     int         `json:"checks"`
	Violations []Violation `json:"violations,omitempty"`
}

// Report is the outcome of one sweep. Same config ⇒ byte-identical Format.
type Report struct {
	Config  SweepConfig    `json:"config"`
	Presets []PresetReport `json:"presets"`
}

// PlanCases returns the total number of graph x package x method cases.
func (r *Report) PlanCases() int {
	n := 0
	for _, p := range r.Presets {
		n += p.PlanCases
	}
	return n
}

// TotalChecks returns the total number of oracle checks run.
func (r *Report) TotalChecks() int {
	n := 0
	for _, p := range r.Presets {
		n += p.Checks
	}
	return n
}

// Violations returns every violation across presets, deterministically
// ordered.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, p := range r.Presets {
		out = append(out, p.Violations...)
	}
	SortViolations(out)
	return out
}

// Sweep runs the full conformance battery: for every preset package, the
// transfer-pricing oracle once, then per generated graph the legality
// oracle over sampled partitions, and per method a cold plan (validity
// oracle) replayed through the Service cache (identity oracle).
//
// The graph stream is shared across presets — randgraph.Sample(cfg.Seed, i)
// — so a violation names a graph every preset saw and reproduces from
// (seed, index) alone. ctx cancellation aborts between cases.
func Sweep(ctx context.Context, cfg SweepConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	report := &Report{Config: cfg, Presets: make([]PresetReport, 0, len(cfg.Presets))}
	graphs := make([]*mcmpart.Graph, cfg.GraphsPerPreset)
	for i := range graphs {
		graphs[i] = randgraph.Sample(cfg.Seed, i)
	}
	for pi, preset := range cfg.Presets {
		pkg, err := mcmpart.PackagePreset(preset)
		if err != nil {
			return nil, err
		}
		pr := PresetReport{Preset: preset}
		// Oracle 2: topology pricing, once per package.
		pr.Checks++
		pr.Violations = append(pr.Violations, CheckTransferMonotonicity("pkg="+preset, pkg)...)

		model := costmodel.New(pkg)
		sim := hwsim.New(pkg, hwsim.Options{Seed: cfg.Seed})
		svc, err := mcmpart.NewService(pkg, mcmpart.ServiceOptions{
			Workers:      1,
			CacheEntries: 2 * cfg.GraphsPerPreset * len(cfg.Methods),
		})
		if err != nil {
			return nil, err
		}

		for gi, g := range graphs {
			if err := ctx.Err(); err != nil {
				svc.Close()
				return report, err
			}
			scenario := fmt.Sprintf("pkg=%s graph=%d/%s seed=%d", preset, gi, g.Name(), cfg.Seed)
			// Oracle 1: legality agreement over sampled partitions. The
			// partition stream derives from (seed, preset index, graph
			// index) so every case is independently reproducible.
			rng := parallel.Rng(parallel.Seed(cfg.Seed, pi), gi)
			parts := SamplePartitions(g, pkg.Chips, rng, cfg.PartitionsPerGraph)
			for _, p := range parts {
				pr.Checks++
				pr.Violations = append(pr.Violations, CheckLegalityAgreement(scenario, g, pkg, p, model, sim)...)
			}
			// Oracles 5+6: bound soundness over the same partition samples,
			// and the analytic fast path's plan certificate.
			if an, aerr := analyze.New(g, pkg); aerr == nil {
				static := an.LowerBound()
				hw := an.LowerBoundWith(HardwareCostParams())
				pr.Checks++
				pr.Violations = append(pr.Violations, CheckBoundSoundness(scenario, g, pkg, parts, static, hw, model, sim)...)
				pr.Checks++
				pr.Violations = append(pr.Violations, CheckAnalyticPlan(scenario, g, pkg, an, model)...)
			}
			// Oracles 3+4 per method: cold plan validity, cached replay
			// identity.
			for _, method := range cfg.Methods {
				caseName := fmt.Sprintf("%s method=%s", scenario, method)
				opts := mcmpart.PlanOptions{Method: method, SampleBudget: cfg.SampleBudget, Seed: cfg.Seed}
				pr.PlanCases++
				cold, coldCached, err := planOnce(ctx, svc, g, opts)
				if err != nil {
					if ctx.Err() != nil {
						svc.Close()
						return report, ctx.Err()
					}
					// A typed error is conforming (e.g. "does not fit").
					pr.PlanErrors++
					continue
				}
				pr.Checks++
				if coldCached {
					pr.Violations = append(pr.Violations, Violation{
						Oracle: "cache", Scenario: caseName,
						Detail: "first plan of a case reported as a cache hit",
					})
				}
				pr.Violations = append(pr.Violations, CheckPlanResult(caseName, g, pkg, cold)...)
				warm, warmCached, err := planOnce(ctx, svc, g, opts)
				pr.Checks++
				switch {
				case err != nil:
					pr.Violations = append(pr.Violations, Violation{
						Oracle: "cache", Scenario: caseName,
						Detail: "cached replay errored: " + err.Error(),
					})
				case !warmCached:
					pr.Violations = append(pr.Violations, Violation{
						Oracle: "cache", Scenario: caseName,
						Detail: "second identical plan was not served from the cache",
					})
				default:
					pr.CacheHits++
					if diff := DiffResults(cold, warm); diff != "" {
						pr.Violations = append(pr.Violations, Violation{
							Oracle: "cache", Scenario: caseName,
							Detail: "cache hit differs from cold plan: " + diff,
						})
					}
				}
			}
		}
		svc.Close()
		SortViolations(pr.Violations)
		report.Presets = append(report.Presets, pr)
	}
	return report, nil
}

// planOnce submits one plan and reports (result, served-from-cache, error).
func planOnce(ctx context.Context, svc *mcmpart.Service, g *mcmpart.Graph, opts mcmpart.PlanOptions) (*mcmpart.Result, bool, error) {
	job, err := svc.Submit(ctx, mcmpart.PlanRequest{Graph: g, Options: opts})
	if err != nil {
		return nil, false, err
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		job.Cancel()
		<-job.Done()
	}
	res, err := job.Result()
	if err != nil {
		return nil, false, err
	}
	return res, job.Status().Cached, nil
}

// CheckPlanResult checks the plan-validity oracle on one successful plan:
// the partition passes ValidateOn, and the Result's fields are internally
// consistent (positive throughput, history consistent with the reported
// improvement, samples counted).
func CheckPlanResult(scenario string, g *mcmpart.Graph, pkg *mcmpart.Package, res *mcmpart.Result) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Oracle: "plan", Scenario: scenario, Detail: fmt.Sprintf(format, args...)})
	}
	if res == nil {
		add("nil result without error")
		return out
	}
	if err := res.Partition.ValidateOn(g, pkg); err != nil {
		add("returned partition fails ValidateOn: %v", err)
	}
	if !(res.Throughput > 0) || math.IsInf(res.Throughput, 0) || math.IsNaN(res.Throughput) {
		add("throughput %v", res.Throughput)
	}
	if !(res.Improvement > 0) {
		add("improvement %v", res.Improvement)
	}
	if res.Samples < 1 {
		add("samples %d", res.Samples)
	}
	if n := len(res.History); n > 0 && res.History[n-1] != res.Improvement {
		add("history tail %v does not match improvement %v", res.History[n-1], res.Improvement)
	}
	return out
}

// DiffResults compares two results bit-for-bit and describes the first
// difference ("" when identical). Floats are compared by their bit
// patterns, the cache-identity contract.
func DiffResults(a, b *mcmpart.Result) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return "one result is nil"
	}
	if len(a.Partition) != len(b.Partition) {
		return fmt.Sprintf("partition lengths %d vs %d", len(a.Partition), len(b.Partition))
	}
	for i := range a.Partition {
		if a.Partition[i] != b.Partition[i] {
			return fmt.Sprintf("partition[%d] %d vs %d", i, a.Partition[i], b.Partition[i])
		}
	}
	if math.Float64bits(a.Throughput) != math.Float64bits(b.Throughput) {
		return fmt.Sprintf("throughput bits %v vs %v", a.Throughput, b.Throughput)
	}
	if math.Float64bits(a.Improvement) != math.Float64bits(b.Improvement) {
		return fmt.Sprintf("improvement bits %v vs %v", a.Improvement, b.Improvement)
	}
	if a.Samples != b.Samples {
		return fmt.Sprintf("samples %d vs %d", a.Samples, b.Samples)
	}
	if len(a.History) != len(b.History) {
		return fmt.Sprintf("history lengths %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if math.Float64bits(a.History[i]) != math.Float64bits(b.History[i]) {
			return fmt.Sprintf("history[%d] bits %v vs %v", i, a.History[i], b.History[i])
		}
	}
	if len(a.FailCounts) != len(b.FailCounts) {
		return fmt.Sprintf("fail-count sizes %d vs %d", len(a.FailCounts), len(b.FailCounts))
	}
	keys := make([]string, 0, len(a.FailCounts))
	for k := range a.FailCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a.FailCounts[k] != b.FailCounts[k] {
			return fmt.Sprintf("fail-count[%q] %d vs %d", k, a.FailCounts[k], b.FailCounts[k])
		}
	}
	return ""
}

// Format renders the report as a deterministic table plus the violation
// list; it is the byte-stable artifact `mcmexp -exp conformance` emits.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Conformance sweep: seed %d, %d packages x %d graphs x %d methods = %d plan cases (budget %d)\n\n",
		r.Config.Seed, len(r.Config.Presets), r.Config.GraphsPerPreset, len(r.Config.Methods),
		r.PlanCases(), r.Config.SampleBudget)
	fmt.Fprintf(&b, "%-8s %6s %7s %7s %7s %11s\n", "package", "cases", "errors", "hits", "checks", "violations")
	for _, p := range r.Presets {
		fmt.Fprintf(&b, "%-8s %6d %7d %7d %7d %11d\n",
			p.Preset, p.PlanCases, p.PlanErrors, p.CacheHits, p.Checks, len(p.Violations))
	}
	vs := r.Violations()
	fmt.Fprintf(&b, "\nTOTAL: %d plan cases, %d oracle checks, %d violations\n", r.PlanCases(), r.TotalChecks(), len(vs))
	for _, v := range vs {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}
