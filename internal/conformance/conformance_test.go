package conformance

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"mcmpart"
	"mcmpart/internal/costmodel"
	"mcmpart/internal/eval"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/randgraph"
)

func TestFailClass(t *testing.T) {
	cases := map[string]string{
		"":                                     "none",
		"unroutable transfer on ring topology": "routability",
		"illegal transfer: no ring route from chip 1 to chip 0 (edge 0 -> 1)": "routability",
		"out of memory on chip":           "memory",
		"partition: chip ID out of range": "structure",
		"empty graph":                     "other",
	}
	for reason, want := range cases {
		if got := FailClass(reason); got != want {
			t.Errorf("FailClass(%q) = %q, want %q", reason, got, want)
		}
	}
}

func TestSamplePartitionsDeterministicAndInRange(t *testing.T) {
	g := randgraph.Sample(1, 0)
	a := SamplePartitions(g, 4, rand.New(rand.NewSource(7)), 9)
	b := SamplePartitions(g, 4, rand.New(rand.NewSource(7)), 9)
	if len(a) != 9 {
		t.Fatalf("got %d partitions", len(a))
	}
	for i := range a {
		if len(a[i]) != g.NumNodes() {
			t.Fatalf("partition %d has %d entries for %d nodes", i, len(a[i]), g.NumNodes())
		}
		for v := range a[i] {
			if a[i][v] != b[i][v] {
				t.Fatal("same rng seed produced different partitions")
			}
			if a[i][v] < 0 || a[i][v] >= 4 {
				t.Fatalf("partition %d places node %d on chip %d", i, v, a[i][v])
			}
		}
	}
}

// TestLegalityAgreementCleanOnRealEnvironments runs the oracle on the real
// model/simulator pair across all presets and a batch of generated graphs;
// PR 2's contract says there must be no violations.
func TestLegalityAgreementCleanOnRealEnvironments(t *testing.T) {
	for _, preset := range []string{"dev4", "dev8bi", "het4", "mesh16"} {
		pkg, err := mcmpart.PackagePreset(preset)
		if err != nil {
			t.Fatal(err)
		}
		model := costmodel.New(pkg)
		sim := hwsim.New(pkg, hwsim.Options{Seed: 1})
		for gi := 0; gi < 6; gi++ {
			g := randgraph.Sample(3, gi)
			rng := rand.New(rand.NewSource(int64(gi)))
			for _, p := range SamplePartitions(g, pkg.Chips, rng, 6) {
				if vs := CheckLegalityAgreement("t", g, pkg, p, model, sim); len(vs) != 0 {
					t.Errorf("%s graph %d: %v", preset, gi, vs)
				}
			}
		}
	}
}

// TestBrokenLegalityOracleFails feeds the legality oracle a deliberately
// broken environment — a "model" that prices every partition as legal — and
// checks the oracle reports the disagreement. This is the harness's own
// regression: if a broken check slipped through silently, every sweep would
// be vacuously green.
func TestBrokenLegalityOracleFails(t *testing.T) {
	pkg := mcm.Dev4()
	sim := hwsim.New(pkg, hwsim.Options{Seed: 1})
	lyingModel := eval.Func(func(g *graph.Graph, p partition.Partition) eval.Verdict {
		return eval.Verdict{Throughput: 1, Valid: true} // never rejects anything
	})
	g := randgraph.Sample(1, 0)
	// A reversed partition is unroutable on the uni-directional ring: the
	// real simulator rejects it, the lying model does not.
	p := make(partition.Partition, g.NumNodes())
	order, _ := g.TopoOrder()
	for pos, v := range order {
		p[v] = 3 - 4*pos/len(order)
	}
	vs := CheckLegalityAgreement("broken", g, pkg, p, lyingModel, sim)
	if len(vs) == 0 {
		t.Fatal("oracle accepted a model that prices unroutable transfers as legal")
	}
	if vs[0].Oracle != "legality" {
		t.Fatalf("violation oracle = %q", vs[0].Oracle)
	}
	// Symmetric breakage: a simulator that never rejects.
	lyingSim := eval.Func(func(g *graph.Graph, p partition.Partition) eval.Verdict {
		return eval.Verdict{Throughput: 1, Valid: true}
	})
	if vs := CheckLegalityAgreement("broken", g, pkg, p, costmodel.New(pkg), lyingSim); len(vs) == 0 {
		t.Fatal("oracle accepted a simulator that prices unroutable transfers as legal")
	}
}

// TestBrokenPricingFailsMonotonicity demonstrates the pricing oracle
// catches a package whose per-hop term is negative (transfer time shrinking
// as routes lengthen).
func TestBrokenPricingFailsMonotonicity(t *testing.T) {
	for _, preset := range []string{"dev4", "dev8", "dev8bi", "het4", "mesh16", "edge36"} {
		pkg, err := mcmpart.PackagePreset(preset)
		if err != nil {
			t.Fatal(err)
		}
		if vs := CheckTransferMonotonicity("t", pkg); len(vs) != 0 {
			t.Errorf("%s: unexpected violations: %v", preset, vs)
		}
	}
	broken := mcm.Dev4()
	broken.LinkLatency = -1 // negative per-hop latency: pricing goes negative
	if vs := CheckTransferMonotonicity("broken", broken); len(vs) == 0 {
		t.Fatal("oracle accepted negative transfer pricing")
	}
}

// TestBrokenPlanFailsValidity demonstrates the plan oracle rejects a
// corrupted result: a partition with a backwards edge and a throughput of
// zero must both be flagged.
func TestBrokenPlanFailsValidity(t *testing.T) {
	pkg := mcmpart.Dev4()
	g := randgraph.Sample(1, 0)
	res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{Method: mcmpart.MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckPlanResult("ok", g, pkg, res); len(vs) != 0 {
		t.Fatalf("clean greedy plan flagged: %v", vs)
	}
	corrupt := *res
	corrupt.Partition = res.Partition.Clone()
	for i := range corrupt.Partition {
		corrupt.Partition[i] = pkg.Chips - 1 - corrupt.Partition[i] // reverse chips
	}
	corrupt.Throughput = 0
	vs := CheckPlanResult("corrupt", g, pkg, &corrupt)
	if len(vs) < 2 {
		t.Fatalf("corrupted plan produced %d violations, want ValidateOn + throughput: %v", len(vs), vs)
	}
}

// TestDiffResultsDetectsSingleBitFlips pins the cache-identity comparator's
// bit-exactness.
func TestDiffResultsDetectsSingleBitFlips(t *testing.T) {
	base := &mcmpart.Result{
		Partition:   mcmpart.Partition{0, 1, 2},
		Throughput:  123.456,
		Improvement: 1.5,
		Samples:     10,
		History:     []float64{1, 1.2, 1.5},
		FailCounts:  map[string]int{"out of memory on chip": 3},
	}
	clone := func() *mcmpart.Result {
		c := *base
		c.Partition = base.Partition.Clone()
		c.History = append([]float64(nil), base.History...)
		c.FailCounts = map[string]int{"out of memory on chip": 3}
		return &c
	}
	if d := DiffResults(base, clone()); d != "" {
		t.Fatalf("identical results differ: %s", d)
	}
	mutations := map[string]func(*mcmpart.Result){
		"partition":  func(r *mcmpart.Result) { r.Partition[2] = 1 },
		"throughput": func(r *mcmpart.Result) { r.Throughput += 1e-13 },
		"history":    func(r *mcmpart.Result) { r.History[1] *= 1.0000000000000002 },
		"samples":    func(r *mcmpart.Result) { r.Samples++ },
		"failcounts": func(r *mcmpart.Result) { r.FailCounts["out of memory on chip"]++ },
	}
	for name, mutate := range mutations {
		c := clone()
		mutate(c)
		if DiffResults(base, c) == "" {
			t.Errorf("%s mutation not detected", name)
		}
	}
}

// TestSweepSmallCleanAndByteIdentical runs a reduced sweep twice and pins
// the two core acceptance properties: zero violations on the real stack,
// and byte-identical reports for the same seed.
func TestSweepSmallCleanAndByteIdentical(t *testing.T) {
	cfg := SweepConfig{
		Seed:            5,
		Presets:         []string{"dev4", "dev8bi"},
		GraphsPerPreset: 3,
		Methods:         []mcmpart.Method{mcmpart.MethodGreedy, mcmpart.MethodRandom},
		SampleBudget:    8,
	}
	r1, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vs := r1.Violations(); len(vs) != 0 {
		t.Fatalf("violations on the real stack:\n%v", vs)
	}
	if r1.PlanCases() != 2*3*2 {
		t.Fatalf("plan cases = %d, want 12", r1.PlanCases())
	}
	r2, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Format() != r2.Format() {
		t.Fatalf("same seed produced different reports:\n--- a\n%s\n--- b\n%s", r1.Format(), r2.Format())
	}
	if !strings.Contains(r1.Format(), "TOTAL: 12 plan cases") {
		t.Fatalf("unexpected report:\n%s", r1.Format())
	}
	// Different seed ⇒ the report must actually depend on the seed.
	cfg.Seed = 6
	r3, err := Sweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Format() == r1.Format() {
		t.Fatal("reports for different seeds are identical; the sweep ignores its seed")
	}
}

// TestSweepCancellation checks ctx cancellation aborts between cases with
// the context's error.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, SweepConfig{Presets: []string{"dev4"}, GraphsPerPreset: 2})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
