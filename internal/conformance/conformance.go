// Package conformance is the cross-environment differential-testing harness:
// it runs generated scenarios (internal/randgraph) through the whole stack —
// cost model, hardware simulator, topology arithmetic, Planner, Service —
// and checks the invariants the layers promise each other. The oracle list
// is a contract (DESIGN.md §9); every future change to an evaluation
// environment, a topology, or a planning method has to keep it green.
//
// The oracles:
//
//  1. Legality agreement — for any partition, the analytical cost model and
//     the hardware simulator agree on whether its transfers are routable,
//     and when both reject, their FailReasons fall in the same class. The
//     simulator may additionally reject for memory (the paper's Sec. 5.4
//     blind spot); it may never disagree on routability.
//  2. Transfer-pricing monotonicity — route pricing over the package
//     topology is sane: hop counts match route lengths, link indices are in
//     range, and transfer time is monotone in both payload and hop count.
//  3. Plan validity — every Planner method either returns a partition that
//     passes partition.ValidateOn with internally consistent Result fields,
//     or a typed error; never a silently-invalid plan.
//  4. Cache identity — a Service cache hit is bit-identical to the cold
//     plan it replays (float64s compared by bits, not tolerance).
//  5. Bound soundness — the static analysis's cost lower bounds
//     (internal/analyze) stay below the analytical latency of every sampled
//     partition in their contract's family, and below the noise-free
//     simulated interval of every partition the simulator accepts.
//  6. Analytic plan certificate — the analytic fast path's plan is
//     ValidateOn-clean, priced exactly as the cost model prices it, and
//     never undercuts its own lower bound.
//
// Every check is a standalone function over explicit inputs, so a test can
// feed a deliberately broken environment and watch the oracle fail — the
// harness's own regression story.
//
//mcmlint:deterministic
package conformance

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"mcmpart/internal/eval"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

// Violation is one broken invariant: which oracle, on which scenario, and
// what was observed. Scenario strings carry the generating seed so any
// violation is reproducible in isolation.
type Violation struct {
	// Oracle names the broken check ("legality", "monotonicity", "plan",
	// "cache", "bound").
	Oracle string `json:"oracle"`
	// Scenario identifies the case: package, graph (with its seed), method.
	Scenario string `json:"scenario"`
	// Detail describes the observed disagreement.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.Oracle, v.Scenario, v.Detail)
}

// SortViolations orders violations deterministically (scenario, oracle,
// detail) so reports are byte-stable per seed.
func SortViolations(vs []Violation) {
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].Scenario != vs[b].Scenario {
			return vs[a].Scenario < vs[b].Scenario
		}
		if vs[a].Oracle != vs[b].Oracle {
			return vs[a].Oracle < vs[b].Oracle
		}
		return vs[a].Detail < vs[b].Detail
	})
}

// FailClass buckets an evaluator FailReason into the classes the
// environments must agree on:
//
//	"routability" — the partition needs a transfer the topology cannot route
//	"memory"      — a chip's working set exceeds its SRAM (simulator only)
//	"structure"   — the partition/graph pair is malformed (bad chip IDs, …)
//	"none"        — the partition passed ("" reason)
//	"other"       — anything else
func FailClass(reason string) string {
	switch {
	case reason == "":
		return "none"
	case strings.Contains(reason, "unroutable") ||
		strings.Contains(reason, "illegal transfer") ||
		strings.Contains(reason, "no route"):
		return "routability"
	case strings.Contains(reason, "out of memory"):
		return "memory"
	case strings.Contains(reason, "chip") || strings.Contains(reason, "partition"):
		return "structure"
	default:
		return "other"
	}
}

// CheckLegalityAgreement runs one partition through both evaluation
// environments and checks the shared-legality contract: the model invalid
// ⇔ the simulator invalid for a routability-class reason. model is expected
// to be the analytical cost model and sim the hardware simulator, but the
// check only assumes the documented contract, so tests can substitute
// broken environments.
func CheckLegalityAgreement(scenario string, g *graph.Graph, pkg *mcm.Package,
	p partition.Partition, model, sim eval.Evaluator) []Violation {
	mv := model.Assess(g, p)
	sv := sim.Assess(g, p)
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Oracle: "legality", Scenario: scenario, Detail: fmt.Sprintf(format, args...)})
	}
	switch {
	case !mv.Valid:
		// The model only rejects unroutable transfers; the simulator must
		// reject the same partition for the same class of reason.
		if FailClass(mv.FailReason) != "routability" {
			add("model rejected for class %q (%s); the analytical model may only reject routability",
				FailClass(mv.FailReason), mv.FailReason)
		}
		if sv.Valid {
			add("model invalid (%s) but simulator valid", mv.FailReason)
		} else if FailClass(sv.FailReason) != FailClass(mv.FailReason) {
			add("FailReason class mismatch: model %q (%s) vs simulator %q (%s)",
				FailClass(mv.FailReason), mv.FailReason, FailClass(sv.FailReason), sv.FailReason)
		}
	case !sv.Valid:
		// Model valid, simulator invalid: only the dynamic constraints the
		// model cannot see (memory, empty/structure edge cases) may explain
		// it — a routability rejection here means the environments diverge.
		if FailClass(sv.FailReason) == "routability" {
			add("simulator rejected routability (%s) on a partition the model prices as legal", sv.FailReason)
		}
	default:
		// Both valid: throughputs must be positive and finite.
		if !(mv.Throughput > 0) || math.IsInf(mv.Throughput, 0) || math.IsNaN(mv.Throughput) {
			add("model reports valid but throughput %v", mv.Throughput)
		}
		if !(sv.Throughput > 0) || math.IsInf(sv.Throughput, 0) || math.IsNaN(sv.Throughput) {
			add("simulator reports valid but throughput %v", sv.Throughput)
		}
	}
	// A statically clean partition (ValidateOn passes) must never be
	// rejected for routability by either environment.
	if err := p.ValidateOn(g, pkg); err == nil {
		if !mv.Valid {
			add("ValidateOn-clean partition rejected by the model: %s", mv.FailReason)
		}
		if !sv.Valid && FailClass(sv.FailReason) == "routability" {
			add("ValidateOn-clean partition rejected for routability by the simulator: %s", sv.FailReason)
		}
	}
	return out
}

// CheckTransferMonotonicity checks the topology's route arithmetic and
// pricing on every (src, dst) chip pair: hop counts match route lengths,
// link indices are in range, self-transfers are free, and HopTransferTime
// is monotone in payload bytes and in hop count.
func CheckTransferMonotonicity(scenario string, pkg *mcm.Package) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Oracle: "monotonicity", Scenario: scenario, Detail: fmt.Sprintf(format, args...)})
	}
	topo, err := pkg.Topo()
	if err != nil {
		add("package topology cannot be built: %v", err)
		return out
	}
	nl := topo.NumLinks()
	maxHops := 0
	for src := 0; src < pkg.Chips; src++ {
		if h, ok := topo.Hops(src, src); !ok || h != 0 {
			add("Hops(%d,%d) = (%d,%v), want (0,true)", src, src, h, ok)
		}
		for dst := 0; dst < pkg.Chips; dst++ {
			hops, ok := topo.Hops(src, dst)
			route, rok := topo.AppendRoute(nil, src, dst)
			if ok != rok {
				add("Hops and AppendRoute disagree on routability of %d->%d", src, dst)
				continue
			}
			if !ok {
				continue
			}
			if len(route) != hops {
				add("route %d->%d has %d links for %d hops", src, dst, len(route), hops)
			}
			for _, l := range route {
				if l < 0 || l >= nl {
					add("route %d->%d uses link %d outside [0,%d)", src, dst, l, nl)
				}
			}
			if hops > maxHops {
				maxHops = hops
			}
		}
	}
	// Pricing: monotone in bytes at fixed hops, monotone in hops at fixed
	// bytes, and free at zero hops or zero bytes.
	bytes := []int64{0, 1, 1 << 10, 1 << 17, 1 << 24}
	for h := 0; h <= maxHops; h++ {
		prev := -1.0
		for _, b := range bytes {
			t := pkg.HopTransferTime(h, b)
			if h == 0 || b == 0 {
				if t != 0 {
					add("HopTransferTime(%d,%d) = %v, want 0", h, b, t)
				}
				continue
			}
			if t < prev {
				add("HopTransferTime(%d,·) not monotone in bytes: %v after %v", h, t, prev)
			}
			if t <= 0 || math.IsInf(t, 0) || math.IsNaN(t) {
				add("HopTransferTime(%d,%d) = %v", h, b, t)
			}
			prev = t
		}
	}
	for _, b := range bytes[2:] {
		prev := 0.0
		for h := 1; h <= maxHops; h++ {
			t := pkg.HopTransferTime(h, b)
			if t < prev {
				add("HopTransferTime(·,%d) not monotone in hops: %v after %v", b, t, prev)
			}
			prev = t
		}
	}
	return out
}

// SamplePartitions draws a deterministic mix of test partitions for the
// legality oracle: monotone chunkings of the topological order (statically
// legal on every topology), uniformly random assignments (frequently
// unroutable on the uni-directional ring), and reversed chunkings
// (deliberately backwards). rng must be seeded by the caller; the mix is a
// pure function of its stream.
func SamplePartitions(g *graph.Graph, chips int, rng *rand.Rand, n int) []partition.Partition {
	order, err := g.TopoOrder()
	if err != nil {
		return nil
	}
	parts := make([]partition.Partition, 0, n)
	for i := 0; i < n; i++ {
		p := make(partition.Partition, g.NumNodes())
		switch i % 3 {
		case 0: // monotone chunking over the topo order
			k := 1 + rng.Intn(chips)
			for pos, v := range order {
				p[v] = pos * k / len(order)
			}
		case 1: // uniform random assignment
			for v := range p {
				p[v] = rng.Intn(chips)
			}
		default: // reversed chunking: backwards on the uni-directional ring
			k := 1 + rng.Intn(chips)
			for pos, v := range order {
				p[v] = (k - 1) - pos*k/len(order)
			}
		}
		parts = append(parts, p)
	}
	return parts
}
