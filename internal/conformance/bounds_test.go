package conformance

import (
	"math/rand"
	"testing"

	"mcmpart/internal/analyze"
	"mcmpart/internal/costmodel"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/randgraph"
)

// TestBoundSoundnessCleanOnRealStack runs the bound oracles on the real
// analysis/model/simulator triple across presets and generated graphs; the
// soundness contract says there must be no violations.
func TestBoundSoundnessCleanOnRealStack(t *testing.T) {
	for _, preset := range []string{"dev4", "dev8", "dev8bi", "het4", "mesh16"} {
		pkg, err := mcm.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		model := costmodel.New(pkg)
		sim := hwsim.New(pkg, hwsim.Options{Seed: 1})
		for gi := 0; gi < 8; gi++ {
			g := randgraph.Sample(13, gi)
			a, err := analyze.New(g, pkg)
			if err != nil {
				t.Fatal(err)
			}
			static := a.LowerBound()
			hw := a.LowerBoundWith(HardwareCostParams())
			rng := rand.New(rand.NewSource(int64(gi)))
			parts := SamplePartitions(g, pkg.Chips, rng, 9)
			if vs := CheckBoundSoundness("t", g, pkg, parts, static, hw, model, sim); len(vs) != 0 {
				t.Errorf("%s graph %d: %v", preset, gi, vs)
			}
			if vs := CheckAnalyticPlan("t", g, pkg, a, model); len(vs) != 0 {
				t.Errorf("%s graph %d: %v", preset, gi, vs)
			}
		}
	}
}

// TestBrokenBoundFailsSoundness feeds the oracle deliberately inflated
// bounds — 10x the real ones — and checks it reports the unsoundness. If a
// future bound change over-tightens past the true optimum, this is the shape
// of failure the sweep will surface.
func TestBrokenBoundFailsSoundness(t *testing.T) {
	pkg := mcm.Dev8()
	model := costmodel.New(pkg)
	sim := hwsim.New(pkg, hwsim.Options{Seed: 1})
	broke := 0
	for gi := 0; gi < 6; gi++ {
		g := randgraph.Sample(13, gi)
		a, err := analyze.New(g, pkg)
		if err != nil {
			t.Fatal(err)
		}
		static := a.LowerBound()
		static.Compute *= 10
		static.Transfer *= 10
		static.Total *= 10
		hw := a.LowerBoundWith(HardwareCostParams())
		hw.Compute *= 10
		hw.Transfer *= 10
		hw.Total *= 10
		parts := SamplePartitions(g, pkg.Chips, rand.New(rand.NewSource(int64(gi))), 9)
		vs := CheckBoundSoundness("broken", g, pkg, parts, static, hw, model, sim)
		if len(vs) > 0 {
			broke++
			if vs[0].Oracle != "bound" {
				t.Fatalf("violation oracle = %q, want bound", vs[0].Oracle)
			}
		}
	}
	if broke == 0 {
		t.Fatal("oracle accepted 10x-inflated lower bounds on every graph; it cannot catch an unsound bound")
	}
}
