// Package stats provides the summary statistics the experiment harness
// reports: geometric means of per-graph improvements (Figure 5), Pearson
// correlation for the cost-model calibration (Figure 7), and
// sample-threshold extraction for Tables 2 and 3.
//
//mcmlint:deterministic
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sq float64
	for _, x := range xs {
		d := x - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)))
}

// Geomean returns the geometric mean. Non-positive entries clamp to a tiny
// positive value so a single failed graph cannot zero the whole aggregate.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples (0 when degenerate).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// FirstReached returns the 1-based sample count at which the best-so-far
// history first reaches the threshold, or -1 if it never does (reported as
// "N.A." in the paper's tables).
func FirstReached(history []float64, threshold float64) int {
	for i, v := range history {
		if v >= threshold {
			return i + 1
		}
	}
	return -1
}

// GeomeanCurves merges per-graph best-so-far histories into one geomean
// curve of the given length: entry s is the geometric mean over graphs of
// the best improvement after s+1 samples (histories shorter than the curve
// contribute their final value).
func GeomeanCurves(histories [][]float64, length int) []float64 {
	curve := make([]float64, length)
	vals := make([]float64, len(histories))
	for s := 0; s < length; s++ {
		for gi, h := range histories {
			switch {
			case len(h) == 0:
				vals[gi] = 1e-12
			case s < len(h):
				vals[gi] = h[s]
			default:
				vals[gi] = h[len(h)-1]
			}
		}
		curve[s] = Geomean(vals)
	}
	return curve
}
