package stats

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Std(xs); got != 2 {
		t.Fatalf("Std = %v, want 2", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty slices should give 0")
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Geomean = %v, want 2", got)
	}
	if got := Geomean([]float64{10, 10, 10}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Geomean = %v, want 10", got)
	}
	// Non-positive entries clamp rather than zeroing everything.
	if got := Geomean([]float64{0, 4}); got <= 0 {
		t.Fatalf("Geomean with zero entry = %v", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("degenerate correlation = %v", got)
	}
	if got := Pearson(x, []float64{1}); got != 0 {
		t.Fatalf("length mismatch should give 0, got %v", got)
	}
	// Noisy positive correlation lands strictly between 0 and 1.
	ynoisy := []float64{2.1, 3.7, 6.5, 7.4, 10.9}
	r := Pearson(x, ynoisy)
	if r <= 0.9 || r >= 1 {
		t.Fatalf("noisy correlation = %v, want in (0.9, 1)", r)
	}
}

func TestFirstReached(t *testing.T) {
	h := []float64{1.0, 1.2, 1.5, 1.5, 1.9}
	if got := FirstReached(h, 1.5); got != 3 {
		t.Fatalf("FirstReached = %d, want 3", got)
	}
	if got := FirstReached(h, 2.0); got != -1 {
		t.Fatalf("unreached threshold should give -1, got %d", got)
	}
	if got := FirstReached(h, 0.5); got != 1 {
		t.Fatalf("immediately reached should give 1, got %d", got)
	}
}

func TestGeomeanCurves(t *testing.T) {
	histories := [][]float64{
		{1, 2, 4},
		{4, 4}, // shorter: final value extends
	}
	curve := GeomeanCurves(histories, 3)
	if math.Abs(curve[0]-2) > 1e-12 {
		t.Fatalf("curve[0] = %v, want 2", curve[0])
	}
	if math.Abs(curve[1]-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("curve[1] = %v, want sqrt(8)", curve[1])
	}
	if math.Abs(curve[2]-4) > 1e-12 {
		t.Fatalf("curve[2] = %v, want 4", curve[2])
	}
	empty := GeomeanCurves([][]float64{{}}, 2)
	if empty[0] <= 0 {
		t.Fatal("empty history should clamp, not zero")
	}
}
