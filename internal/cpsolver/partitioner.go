package cpsolver

import (
	"fmt"
	"math/rand"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

// Partitioner turns policy outputs into valid partitions. It is the
// interface between the RL/search layers and the constraint machinery:
// SampleMode corresponds to the paper's Algorithm 1 (draw assignments from a
// probability matrix) and FixMode to Algorithm 2 (keep a concrete candidate
// wherever valid and repair the rest).
type Partitioner interface {
	// SampleMode draws a valid partition biased by the N x C probability
	// matrix (nil for uniform).
	SampleMode(probs [][]float64, rng *rand.Rand) (partition.Partition, error)
	// FixMode repairs the candidate partition y into a valid one,
	// preserving y wherever the constraints allow.
	FixMode(y []int, rng *rand.Rand) (partition.Partition, error)
	// NumNodes and Chips describe the instance.
	NumNodes() int
	Chips() int
}

// SampleMode implements Partitioner using Algorithm 1 with a fresh random
// node order per call, the paper's default.
func (s *Solver) SampleMode(probs [][]float64, rng *rand.Rand) (partition.Partition, error) {
	return s.Sample(RandomOrder(rng, s.NumNodes()), probs, rng)
}

// FixMode implements Partitioner using Algorithm 2 with a fresh random node
// order per call.
func (s *Solver) FixMode(y []int, rng *rand.Rand) (partition.Partition, error) {
	return s.Fix(RandomOrder(rng, s.NumNodes()), y, rng)
}

// SampleMode implements Partitioner by exact DP sampling over the
// contiguous family.
func (sg *Segmenter) SampleMode(probs [][]float64, rng *rand.Rand) (partition.Partition, error) {
	return sg.Sample(probs, rng)
}

// FixMode implements Partitioner by projecting the candidate onto the
// contiguous family.
func (sg *Segmenter) FixMode(y []int, rng *rand.Rand) (partition.Partition, error) {
	return sg.Fit(y, rng)
}

// NumNodes returns the number of nodes in the instance.
func (sg *Segmenter) NumNodes() int { return len(sg.order) }

// AutoThreshold is the node count above which NewAuto prefers the segment
// sampler: with dozens of chips and dense skip/residual structure,
// backtracking search without clause learning stops being tractable beyond
// tens of nodes, while the contiguous family covers essentially all valid
// partitions of chain-dominated ML graphs.
const AutoThreshold = 64

// AutoChips is the chip count above which NewAuto prefers the segment
// sampler even for small graphs: conflict density grows with the action
// space, and packages beyond ~8 chips push backtracking search past its
// budget on skip-heavy graphs.
const AutoChips = 8

// NewAuto picks the right Partitioner for the instance: the CP solver
// (Algorithms 1 and 2) for small graphs on small packages — where it
// explores the complete valid space, including non-contiguous layouts — and
// the segment sampler everywhere else. If the segmenter cannot be built it
// falls back to the CP solver. Options.ChipCapacityBytes applies to either
// backend (domain pruning plus accumulation in the CP solver, rejection
// sampling in the segmenter).
func NewAuto(g *graph.Graph, chips int, opts Options) (Partitioner, error) {
	if caps := opts.ChipCapacityBytes; len(caps) != 0 && len(caps) != chips {
		return nil, fmt.Errorf("cpsolver: %d chip capacities for %d chips", len(caps), chips)
	}
	if g.NumNodes() <= AutoThreshold && chips <= AutoChips {
		return New(g, chips, opts)
	}
	if sg, err := NewSegmenter(g, chips); err == nil {
		sg.chipCap = opts.ChipCapacityBytes
		return sg, nil
	}
	return New(g, chips, opts)
}

// NewAutoPkg builds the automatic Partitioner for a concrete package. For
// heterogeneous packages it turns each chip's SRAM size into a static
// per-chip weight-capacity bound (a necessary condition of the dynamic
// memory constraint, so little dies are never handed layers that cannot
// fit); homogeneous packages get exactly NewAuto's unconstrained behavior,
// keeping the default path bit-identical to the pre-heterogeneity solver.
func NewAutoPkg(g *graph.Graph, pkg *mcm.Package, opts Options) (Partitioner, error) {
	if pkg.Heterogeneous() && len(opts.ChipCapacityBytes) == 0 {
		caps := make([]int64, pkg.Chips)
		for c := range caps {
			caps[c] = pkg.ChipSRAM(c)
		}
		opts.ChipCapacityBytes = caps
	}
	return NewAuto(g, pkg.Chips, opts)
}

var (
	_ Partitioner = (*Solver)(nil)
	_ Partitioner = (*Segmenter)(nil)
)
