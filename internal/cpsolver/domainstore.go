package cpsolver

// DomainStore is a standalone trail-backed array of chip domains — the
// solver's trailDomain machinery factored into a reusable piece. The full
// Solver couples domains to its adjacency counters and no-skip sweep, which
// is exactly right for sample-by-sample solving but O(|V|) per propagation
// drain; the analytic fast path (internal/analyze) instead runs whole-array
// tightening sweeps and only needs the trail part: speculate under a mark,
// detect wipeout, and undo in O(changes).
//
// A DomainStore is not safe for concurrent use.
type DomainStore struct {
	doms  []Domain
	trail []domTrailEntry
}

type domTrailEntry struct {
	v   int32
	old Domain
}

// NewDomainStore returns a store of n domains, each initialized to chips
// 0..chips-1.
func NewDomainStore(n, chips int) *DomainStore {
	ds := &DomainStore{doms: make([]Domain, n)}
	full := fullDomain(chips)
	for i := range ds.doms {
		ds.doms[i] = full
	}
	return ds
}

// Len returns the number of domains.
func (ds *DomainStore) Len() int { return len(ds.doms) }

// Domain returns the current domain of variable v.
func (ds *DomainStore) Domain(v int) Domain { return ds.doms[v] }

// Mark returns a trail position to undo back to.
func (ds *DomainStore) Mark() int { return len(ds.trail) }

// UndoTo restores every domain changed since the mark, newest first.
func (ds *DomainStore) UndoTo(mark int) {
	for i := len(ds.trail) - 1; i >= mark; i-- {
		e := ds.trail[i]
		ds.doms[e.v] = e.old
	}
	ds.trail = ds.trail[:mark]
}

// Restrict intersects variable v's domain with allowed, recording the old
// value on the trail when it changes. It reports whether the domain changed
// and whether it is now empty (a wipeout the caller should undo from).
func (ds *DomainStore) Restrict(v int, allowed Domain) (changed, empty bool) {
	old := ds.doms[v]
	nd := old & allowed
	if nd == old {
		return false, nd == 0
	}
	ds.trail = append(ds.trail, domTrailEntry{v: int32(v), old: old})
	ds.doms[v] = nd
	return true, nd == 0
}
