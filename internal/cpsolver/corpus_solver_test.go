package cpsolver

import (
	"math/rand"
	"testing"

	"mcmpart/internal/workload"
)

// TestAutoHandlesWholeCorpus is the experiment-readiness gate: every graph
// in the pre-training corpus must yield valid partitions on the 36-chip
// package, repeatedly and quickly, in both SAMPLE and FIX mode.
func TestAutoHandlesWholeCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range workload.CorpusGraphs(1) {
		pr, err := NewAuto(g, 36, Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		for rep := 0; rep < 3; rep++ {
			p, err := pr.SampleMode(nil, rng)
			if err != nil {
				t.Fatalf("%s rep %d (%T): %v", g.Name(), rep, pr, err)
			}
			if err := p.Validate(g, 36); err != nil {
				t.Fatalf("%s rep %d: %v", g.Name(), rep, err)
			}
		}
		hint := make([]int, g.NumNodes())
		for i := range hint {
			hint[i] = rng.Intn(36)
		}
		if _, err := pr.FixMode(hint, rng); err != nil {
			t.Fatalf("%s fix (%T): %v", g.Name(), pr, err)
		}
	}
}
