package cpsolver

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mcmpart/internal/partition"
)

// RandomOrder returns a uniformly random node traversal order. The paper
// defaults to a fresh random order per solve "to explore a larger decision
// space rather than prioritizing a fixed set of nodes that significantly
// prunes the domain of other nodes".
func RandomOrder(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

// TopoOrder returns the graph's deterministic topological order, the
// alternative traversal used by the solver-order ablation.
func (s *Solver) TopoOrder() []int {
	order, err := s.g.TopoOrder()
	if err != nil {
		panic("cpsolver: graph became cyclic: " + err.Error()) // validated at New
	}
	return order
}

// RandomTopoOrder returns a random topological order (Kahn's algorithm with
// uniformly random choice among ready nodes). For production-scale graphs
// this is the recommended traversal: conflicts surface at the newest
// decision, where chronological backtracking can repair them locally.
// CP-SAT's clause learning makes arbitrary random orders tractable at that
// scale; a from-scratch chronological solver needs the locality instead
// (see DESIGN.md).
func (s *Solver) RandomTopoOrder(rng *rand.Rand) []int {
	g := s.g
	n := g.NumNodes()
	indeg := make([]int, n)
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(v)
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		v := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, s := range g.Successors(v) {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// sampleValue draws a chip for node u from the policy row p (nil means
// uniform) restricted to u's current domain and, unless disabled, multiplied
// by a completion-weighted prior.
//
// The prior weights chip c by the number of monotone completions a
// chain-shaped relaxation of the instance would still admit: a node at
// topological position pos with R = N-1-pos nodes after it and K = C-1-c
// chips still to reach gets weight C(R, K). Greedy sequential sampling
// without the prior drifts: early nodes grab high chips (or, under tight
// propagation, boundaries all crowd into the graph's prefix), so the
// resulting "uniform" samples are far from uniform over the solution space.
// The binomial prior is exactly the completion count for chains and a good
// surrogate for chain-dominated ML graphs, so sampling stays diverse and
// balanced — which both the Random-search baseline's quality and the
// solver's conflict rate depend on.
func (s *Solver) sampleValue(rng *rand.Rand, p []float64, u int) int {
	d := s.doms[u]
	var weights [64]float64
	var mass float64
	if !s.opts.UnweightedSampling {
		mass = s.weightedMass(&weights, p, u, d)
	}
	if mass == 0 {
		// Prior disabled or fully starved: fall back to the raw policy.
		for rest := d; rest != 0; rest &= rest - 1 {
			c := rest.Min()
			w := 1.0
			if p != nil {
				w = p[c]
			}
			weights[c] = w
			mass += w
		}
	}
	if mass <= 0 {
		// Zero-mass policy row: uniform over the domain.
		k := rng.Intn(d.Count())
		for rest := d; ; rest &= rest - 1 {
			if k == 0 {
				return rest.Min()
			}
			k--
		}
	}
	x := rng.Float64() * mass
	last := -1
	for rest := d; rest != 0; rest &= rest - 1 {
		c := rest.Min()
		last = c
		x -= weights[c]
		if x <= 0 {
			return c
		}
	}
	return last
}

// weightedMass fills weights[c] = p(c) * C(B, c) * C(A, C-1-c) for every
// chip in the domain (log-space binomials, normalized by the max exponent)
// and returns the total mass. B and A are the boundary slots before and
// after the node's position: C(B, c) counts the ways the partition can have
// climbed to chip c by now and C(A, C-1-c) the ways it can still reach the
// last chip, so the product is the completion count of a contiguous layout
// through (position, chip) — peaking at the balanced diagonal.
func (s *Solver) weightedMass(weights *[64]float64, p []float64, u int, d Domain) float64 {
	after := float64(s.capFrom[s.topoPos[u]])
	before := float64(s.capFrom[0]) - after
	lgA, _ := math.Lgamma(after + 1)
	lgB, _ := math.Lgamma(before + 1)
	var lw [64]float64
	maxLw := math.Inf(-1)
	for rest := d; rest != 0; rest &= rest - 1 {
		c := rest.Min()
		k := float64(s.chips - 1 - c)
		if k > after || float64(c) > before {
			lw[c] = math.Inf(-1) // not enough boundary slots on one side
			continue
		}
		lg1, _ := math.Lgamma(float64(c) + 1)
		lg2, _ := math.Lgamma(before - float64(c) + 1)
		lg3, _ := math.Lgamma(k + 1)
		lg4, _ := math.Lgamma(after - k + 1)
		lw[c] = lgB - lg1 - lg2 + lgA - lg3 - lg4
		if lw[c] > maxLw {
			maxLw = lw[c]
		}
	}
	if math.IsInf(maxLw, -1) {
		return 0
	}
	var mass float64
	for rest := d; rest != 0; rest &= rest - 1 {
		c := rest.Min()
		w := math.Exp(lw[c] - maxLw)
		if p != nil {
			w *= p[c]
		}
		weights[c] = w
		mass += w
	}
	return mass
}

// Sample implements Algorithm 1 (SAMPLE mode): visit nodes in the given
// order and, for each, draw a chip from the policy distribution restricted
// to the node's current valid domain; the solver propagates after every
// assignment and backtracks when needed. probs may be nil (uniform — this is
// exactly the paper's Random search baseline) or an N x C matrix of
// per-node chip probabilities. The solver is Reset on entry.
func (s *Solver) Sample(order []int, probs [][]float64, rng *rand.Rand) (partition.Partition, error) {
	if err := s.checkOrder(order); err != nil {
		return nil, err
	}
	if probs != nil && len(probs) != s.NumNodes() {
		return nil, fmt.Errorf("cpsolver: probs has %d rows for %d nodes", len(probs), s.NumNodes())
	}
	s.stats = Stats{}
	return s.withRestarts(order, rng, func(ord []int) (partition.Partition, error) {
		n := s.NumNodes()
		i := 0
		for i < n {
			u := ord[i]
			var row []float64
			if probs != nil {
				row = probs[u]
			}
			c := s.sampleValue(rng, row, u)
			var err error
			i, err = s.Assign(u, c)
			if err != nil {
				return nil, err
			}
		}
		return s.finish()
	})
}

// withRestarts runs one solve attempt under a per-attempt backtrack limit,
// restarting with a reshuffled copy of the order (and a doubled limit) when
// the attempt thrashes. Chronological backtracking occasionally digs
// exponential pits; randomized restarts are the standard CP remedy and keep
// the solver's tail latency bounded. The total budget across attempts is
// Options.MaxBacktracks.
func (s *Solver) withRestarts(order []int, rng *rand.Rand, attempt func([]int) (partition.Partition, error)) (partition.Partition, error) {
	total := 0
	limit := s.opts.RestartBacktracks
	ord := order
	for {
		s.resetKeepStats()
		if rem := s.opts.MaxBacktracks - total; limit > rem {
			limit = rem
		}
		s.btLimit = limit
		p, err := attempt(ord)
		if !errors.Is(err, ErrBacktrackBudget) {
			return p, err
		}
		total += s.backtracks
		if total >= s.opts.MaxBacktracks {
			return nil, fmt.Errorf("%w (total %d backtracks)", ErrBacktrackBudget, total)
		}
		// Re-randomize the traversal, preserving its character: a
		// topological order restarts as a fresh random topological order,
		// anything else as a plain reshuffle.
		if s.isTopological(ord) {
			ord = s.RandomTopoOrder(rng)
		} else {
			if &ord[0] == &order[0] {
				ord = append([]int(nil), order...)
			}
			rng.Shuffle(len(ord), func(i, j int) { ord[i], ord[j] = ord[j], ord[i] })
		}
		limit *= 2
	}
}

// isTopological reports whether the order visits every edge's producer
// before its consumer.
func (s *Solver) isTopological(order []int) bool {
	pos := s.posOf
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range s.g.Edges() {
		if pos[e.From] >= pos[e.To] {
			return false
		}
	}
	return true
}

// Fix implements Algorithm 2 (FIX mode): a first pass pins every node whose
// hinted assignment y[u] is still in its domain (skipping the others), and a
// second pass assigns the remaining nodes random values from their domains
// until a full valid partition emerges. Backtracking may rewind into the
// first pass; the loop index follows the solver's decision count exactly as
// in the paper's pseudocode. The solver is Reset on entry.
func (s *Solver) Fix(order []int, y []int, rng *rand.Rand) (partition.Partition, error) {
	if err := s.checkOrder(order); err != nil {
		return nil, err
	}
	n := s.NumNodes()
	if len(y) != n {
		return nil, fmt.Errorf("cpsolver: hint has %d entries for %d nodes", len(y), n)
	}
	s.stats = Stats{}
	return s.withRestarts(order, rng, func(ord []int) (partition.Partition, error) {
		i := 0
		for i < 2*n {
			u := ord[i%n]
			d := s.doms[u]
			var err error
			if i < n {
				if d.Has(y[u]) {
					i, err = s.Assign(u, y[u])
				} else {
					i = s.Skip(u)
				}
			} else {
				c := s.sampleValue(rng, nil, u)
				i, err = s.Assign(u, c)
			}
			if err != nil {
				return nil, err
			}
		}
		return s.finish()
	})
}

// checkOrder validates a node traversal order: it must be a permutation of
// 0..N-1.
func (s *Solver) checkOrder(order []int) error {
	n := s.NumNodes()
	if len(order) != n {
		return fmt.Errorf("cpsolver: order has %d entries for %d nodes", len(order), n)
	}
	seen := s.orderSeen
	for i := range seen {
		seen[i] = false
	}
	for _, u := range order {
		if u < 0 || u >= n || seen[u] {
			return fmt.Errorf("cpsolver: order is not a permutation (node %d)", u)
		}
		seen[u] = true
	}
	return nil
}

// finish extracts the full assignment and re-validates it against the
// partition checker as a defense-in-depth audit; a failure here is a solver
// bug, reported as an error rather than a panic so callers can log context.
func (s *Solver) finish() (partition.Partition, error) {
	sol, ok := s.Solution()
	if !ok {
		return nil, fmt.Errorf("cpsolver: internal error: nodes left unbound after full traversal")
	}
	p := partition.Partition(sol)
	if err := p.Validate(s.g, s.chips); err != nil {
		return nil, fmt.Errorf("cpsolver: internal error: emitted invalid partition: %w", err)
	}
	return p, nil
}
