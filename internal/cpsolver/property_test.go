package cpsolver

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcmpart/internal/graph"
	"mcmpart/internal/partition"
	"mcmpart/internal/workload"
)

// randomLayeredDAG builds a DAG with both chain and skip structure, the
// shape that stresses all three static constraints at once.
func randomLayeredDAG(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New("prop")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{
			Op:          graph.OpKind(rng.Intn(graph.NumOpKinds)),
			FLOPs:       float64(rng.Intn(1000)) * 1e6,
			ParamBytes:  int64(rng.Intn(1 << 18)),
			OutputBytes: int64(1 + rng.Intn(1<<16)),
		})
		if i > 0 {
			g.MustAddEdge(i-1, i, int64(1+rng.Intn(1<<12)))
		}
		if i > 3 && rng.Intn(4) == 0 {
			back := 2 + rng.Intn(3)
			if !g.HasEdge(i-back, i) {
				g.MustAddEdge(i-back, i, int64(1+rng.Intn(1<<12)))
			}
		}
	}
	return g
}

// TestSegmenterAlwaysEmitsValidPartitions: any graph, any chip count, any
// policy matrix — the segment sampler's output satisfies every static
// constraint.
func TestSegmenterAlwaysEmitsValidPartitions(t *testing.T) {
	f := func(seed int64, szRaw, chipRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(szRaw%120)
		chips := 2 + int(chipRaw%30)
		g := randomLayeredDAG(rng, n)
		sg, err := NewSegmenter(g, chips)
		if err != nil {
			return false
		}
		// Uniform and random-policy sampling must both validate.
		p, err := sg.Sample(nil, rng)
		if err != nil || p.Validate(g, chips) != nil {
			return false
		}
		probs := make([][]float64, n)
		for i := range probs {
			probs[i] = make([]float64, chips)
			var sum float64
			for j := range probs[i] {
				probs[i][j] = rng.Float64() + 1e-6
				sum += probs[i][j]
			}
			for j := range probs[i] {
				probs[i][j] /= sum
			}
		}
		p2, err := sg.Sample(probs, rng)
		if err != nil || p2.Validate(g, chips) != nil {
			return false
		}
		// FIX-style projection of arbitrary hints must validate too.
		hint := make([]int, n)
		for i := range hint {
			hint[i] = rng.Intn(chips)
		}
		p3, err := sg.Fit(hint, rng)
		return err == nil && p3.Validate(g, chips) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSegmenterUsesLayoutChipsExactly: every emitted layout uses exactly the
// LayoutChips prefix — never fewer (wasted parallelism) nor more (invalid).
func TestSegmenterUsesLayoutChipsExactly(t *testing.T) {
	f := func(seed int64, szRaw, chipRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(szRaw%80)
		chips := 2 + int(chipRaw%20)
		g := randomLayeredDAG(rng, n)
		sg, err := NewSegmenter(g, chips)
		if err != nil {
			return false
		}
		p, err := sg.Sample(nil, rng)
		if err != nil {
			return false
		}
		return p.NumChipsUsed() == sg.LayoutChips()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSolverDomainsNeverWidenUnderDecisions: domains are monotonically
// narrowed by decisions until Reset.
func TestSolverDomainsNeverWidenUnderDecisions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		chips := 2 + rng.Intn(4)
		g := randomLayeredDAG(rng, n)
		s, err := New(g, chips, Options{})
		if err != nil {
			return false
		}
		before := make([]Domain, n)
		for v := 0; v < n; v++ {
			before[v] = s.Domain(v)
		}
		// Make a few decisions (ignoring conflicts/backtracks: after a
		// successful Assign the current domains must all be subsets of
		// the root domains).
		for k := 0; k < 3; k++ {
			u := rng.Intn(n)
			d := s.Domain(u)
			if d.Empty() {
				return false
			}
			vals := d.Values()
			if _, err := s.Assign(u, vals[rng.Intn(len(vals))]); err != nil {
				break
			}
			for v := 0; v < n; v++ {
				if s.Domain(v)&^before[v] != 0 {
					return false // domain gained a value
				}
			}
		}
		s.Reset()
		for v := 0; v < n; v++ {
			if s.Domain(v) != before[v] {
				return false // Reset must restore the root exactly
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionerContractOnCorpus: the Auto partitioner must satisfy the
// Partitioner contract (valid outputs in both modes) on real workload
// generators, not just synthetic DAGs.
func TestPartitionerContractOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	graphs := workload.CorpusGraphs(5)
	for _, chips := range []int{4, 36} {
		for gi := 0; gi < len(graphs); gi += 9 {
			g := graphs[gi]
			pr, err := NewAuto(g, chips, Options{})
			if err != nil {
				t.Fatalf("%s/%d: %v", g.Name(), chips, err)
			}
			p, err := pr.SampleMode(nil, rng)
			if err != nil {
				t.Fatalf("%s/%d sample: %v", g.Name(), chips, err)
			}
			if err := partition.Partition(p).Validate(g, chips); err != nil {
				t.Fatalf("%s/%d: %v", g.Name(), chips, err)
			}
			hint := make([]int, g.NumNodes())
			for i := range hint {
				hint[i] = rng.Intn(chips)
			}
			p2, err := pr.FixMode(hint, rng)
			if err != nil {
				t.Fatalf("%s/%d fix: %v", g.Name(), chips, err)
			}
			if err := partition.Partition(p2).Validate(g, chips); err != nil {
				t.Fatalf("%s/%d fix: %v", g.Name(), chips, err)
			}
		}
	}
}
