package cpsolver

import (
	"math/bits"
	"strconv"
	"strings"
)

// Domain is the set of chips a node may still be assigned to, represented as
// a bitset (bit c set means chip c is allowed). Chip counts are bounded by
// mcm.MaxChips = 64, so a single word suffices and all domain operations are
// a handful of instructions — the solver's propagation loop lives on this.
type Domain uint64

// fullDomain returns the domain containing chips 0..chips-1.
func fullDomain(chips int) Domain {
	if chips >= 64 {
		return ^Domain(0)
	}
	return Domain(1)<<uint(chips) - 1
}

// Has reports whether chip c is in the domain.
func (d Domain) Has(c int) bool { return c >= 0 && c < 64 && d&(1<<uint(c)) != 0 }

// Count returns the number of chips in the domain.
func (d Domain) Count() int { return bits.OnesCount64(uint64(d)) }

// Empty reports whether no chips remain.
func (d Domain) Empty() bool { return d == 0 }

// Singleton reports whether exactly one chip remains.
func (d Domain) Singleton() bool { return d != 0 && d&(d-1) == 0 }

// Min returns the smallest chip in the domain; it panics on an empty domain.
func (d Domain) Min() int {
	if d == 0 {
		panic("cpsolver: Min of empty domain")
	}
	return bits.TrailingZeros64(uint64(d))
}

// Max returns the largest chip in the domain; it panics on an empty domain.
func (d Domain) Max() int {
	if d == 0 {
		panic("cpsolver: Max of empty domain")
	}
	return 63 - bits.LeadingZeros64(uint64(d))
}

// Values returns the chips in the domain in increasing order. It allocates;
// hot paths iterate with ForEach instead.
func (d Domain) Values() []int {
	vals := make([]int, 0, d.Count())
	for rest := d; rest != 0; rest &= rest - 1 {
		vals = append(vals, bits.TrailingZeros64(uint64(rest)))
	}
	return vals
}

// ForEach calls fn for each chip in the domain in increasing order, stopping
// early when fn returns false. It is the zero-allocation iteration form the
// solver's sampling and propagation loops use (see the AllocsPerRun
// regression test).
func (d Domain) ForEach(fn func(c int) bool) {
	for rest := d; rest != 0; rest &= rest - 1 {
		if !fn(bits.TrailingZeros64(uint64(rest))) {
			return
		}
	}
}

// String renders the domain as "{0,1,5}".
func (d Domain) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for rest := d; rest != 0; rest &= rest - 1 {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(bits.TrailingZeros64(uint64(rest))))
	}
	b.WriteByte('}')
	return b.String()
}

// maskGE returns the domain of all chips >= c.
func maskGE(c int) Domain {
	if c <= 0 {
		return ^Domain(0)
	}
	if c >= 64 {
		return 0
	}
	return ^(Domain(1)<<uint(c) - 1)
}

// maskLE returns the domain of all chips <= c.
func maskLE(c int) Domain {
	if c < 0 {
		return 0
	}
	if c >= 63 {
		return ^Domain(0)
	}
	return Domain(1)<<uint(c+1) - 1
}

// single returns the domain containing exactly chip c.
func single(c int) Domain { return Domain(1) << uint(c) }

// Exported constructors for the mask helpers above. The solver's own hot
// loops keep using the unexported forms; these exist so internal/analyze can
// express its domain arithmetic in the same bitset vocabulary.

// FullDomain returns the domain containing chips 0..chips-1.
func FullDomain(chips int) Domain { return fullDomain(chips) }

// MaskGE returns the domain of all chips >= c.
func MaskGE(c int) Domain { return maskGE(c) }

// MaskLE returns the domain of all chips <= c.
func MaskLE(c int) Domain { return maskLE(c) }

// Single returns the domain containing exactly chip c.
func Single(c int) Domain { return single(c) }
