package cpsolver

import (
	"errors"
	"math/rand"
	"testing"

	"mcmpart/internal/graph"
	"mcmpart/internal/partition"
)

func chain(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
		if i > 0 {
			g.MustAddEdge(i-1, i, 4)
		}
	}
	return g
}

func skipConn(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("skip")
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
	}
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 4)
	g.MustAddEdge(0, 2, 4)
	return g
}

func TestNewRejectsBadInputs(t *testing.T) {
	g := chain(t, 3)
	if _, err := New(g, 0, Options{}); err == nil {
		t.Fatal("chips=0 should fail")
	}
	if _, err := New(g, 65, Options{}); err == nil {
		t.Fatal("chips=65 should fail")
	}
	bad := graph.New("cyclic")
	a := bad.AddNode(graph.Node{})
	b := bad.AddNode(graph.Node{})
	bad.MustAddEdge(a, b, 1)
	bad.MustAddEdge(b, a, 1)
	if _, err := New(bad, 4, Options{}); err == nil {
		t.Fatal("cyclic graph should fail")
	}
}

func TestPrecedencePropagation(t *testing.T) {
	s, err := New(chain(t, 6), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Assigning a middle node to chip 2 bounds its neighbors: earlier
	// nodes can no longer sit above chip 2, later nodes not below it.
	if _, err := s.Assign(2, 2); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 2; v++ {
		if d := s.Domain(v); d.Max() > 2 {
			t.Fatalf("dom(%d) = %v, should be <= 2", v, d)
		}
	}
	for v := 3; v < 6; v++ {
		if d := s.Domain(v); d.Min() < 2 {
			t.Fatalf("dom(%d) = %v, should be >= 2", v, d)
		}
	}
}

func TestAssignValueNotInDomain(t *testing.T) {
	s, err := New(chain(t, 4), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Placing the sink on chip 0 forces the whole chain onto chip 0.
	if _, err := s.Assign(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assign(0, 1); !errors.Is(err, ErrValueNotInDomain) {
		t.Fatalf("Assign(0,1) error = %v, want ErrValueNotInDomain", err)
	}
}

func TestNoSkipBacktrack(t *testing.T) {
	// On a 2-chip package, pinning the head of a chain to chip 1 forces
	// every node onto chip 1, leaving chip 0 unused: the solver must
	// detect the violation and backtrack, pruning chip 1 from the head.
	s, err := New(chain(t, 3), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	i, err := s.Assign(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Fatalf("decision index = %d, want 0 (backtracked)", i)
	}
	if st := s.StatsSnapshot(); st.Backtracks == 0 {
		t.Fatal("expected at least one backtrack")
	}
	if d := s.Domain(0); !d.Singleton() || d.Min() != 0 {
		t.Fatalf("dom(0) = %v, want {0}", d)
	}
}

func TestTriangleBacktrack(t *testing.T) {
	s, err := New(skipConn(t), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	// Node 2 on chip 2 would create direct 0->2 alongside 0->1->2.
	i, err := s.Assign(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 {
		t.Fatalf("decision index = %d, want 2 (chip 2 excluded, retried)", i)
	}
	sol, ok := s.Solution()
	if ok {
		// If propagation fully bound node 2 it must be on chip 1.
		if sol[2] != 1 {
			t.Fatalf("solution = %v, node 2 must land on chip 1", sol)
		}
	} else if d := s.Domain(2); d.Has(2) {
		t.Fatalf("dom(2) = %v, chip 2 should be pruned", d)
	}
}

func TestRestrictPinsAndSurvivesReset(t *testing.T) {
	s, err := New(chain(t, 4), 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restrict(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if d := s.Domain(0); !d.Singleton() || d.Min() != 0 {
		t.Fatalf("dom(0) = %v after Reset, want {0}", d)
	}
	if err := s.Restrict(0, []int{99}); err == nil {
		t.Fatal("out-of-range Restrict should fail")
	}
}

func TestRestrictInfeasible(t *testing.T) {
	s, err := New(chain(t, 2), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restrict(0, []int{1}); err != nil {
		// Pinning the head to chip 1 forces the tail to chip 1 and
		// leaves chip 0 unused: infeasible right away.
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("error = %v, want ErrInfeasible", err)
		}
		return
	}
	// Some propagation orders only detect it on the follow-up restrict.
	if err := s.Restrict(1, []int{1}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestSampleUniformProducesValidPartitions(t *testing.T) {
	g := skipConn(t)
	s, err := New(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p, err := s.Sample(RandomOrder(rng, g.NumNodes()), nil, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Validate(g, 3); err != nil {
			t.Fatalf("trial %d: invalid partition %v: %v", trial, p, err)
		}
	}
}

func TestSampleFollowsPolicyBias(t *testing.T) {
	g := chain(t, 4)
	s, err := New(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Probability mass pushes the first two nodes to chip 0 and the rest
	// to chip 1; the sampled partitions should mostly match.
	probs := [][]float64{{0.99, 0.01}, {0.99, 0.01}, {0.01, 0.99}, {0.01, 0.99}}
	rng := rand.New(rand.NewSource(2))
	match := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		p, err := s.Sample(RandomOrder(rng, 4), probs, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p[0] == 0 && p[1] == 0 && p[2] == 1 && p[3] == 1 {
			match++
		}
	}
	if match < trials/2 {
		t.Fatalf("policy-matching partitions: %d/%d, want a majority", match, trials)
	}
}

func TestFixKeepsValidHint(t *testing.T) {
	g := chain(t, 6)
	s, err := New(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hint := []int{0, 0, 1, 1, 2, 2}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p, err := s.Fix(RandomOrder(rng, 6), hint, rng)
		if err != nil {
			t.Fatal(err)
		}
		for v := range hint {
			if p[v] != hint[v] {
				t.Fatalf("trial %d: Fix changed a valid hint: got %v want %v", trial, p, hint)
			}
		}
	}
}

func TestFixRepairsInvalidHint(t *testing.T) {
	g := skipConn(t)
	s, err := New(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The hint violates the triangle constraint (each node its own chip).
	hint := []int{0, 1, 2}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		p, err := s.Fix(RandomOrder(rng, 3), hint, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g, 3); err != nil {
			t.Fatalf("trial %d: Fix emitted invalid %v: %v", trial, p, err)
		}
	}
}

func TestSampleInputValidation(t *testing.T) {
	g := chain(t, 3)
	s, err := New(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := s.Sample([]int{0, 1}, nil, rng); err == nil {
		t.Fatal("short order should fail")
	}
	if _, err := s.Sample([]int{0, 0, 1}, nil, rng); err == nil {
		t.Fatal("non-permutation order should fail")
	}
	if _, err := s.Sample([]int{0, 1, 2}, [][]float64{{1, 0}}, rng); err == nil {
		t.Fatal("short probs should fail")
	}
	if _, err := s.Fix([]int{0, 1, 2}, []int{0}, rng); err == nil {
		t.Fatal("short hint should fail")
	}
}

func TestResetRestoresDomains(t *testing.T) {
	g := chain(t, 4)
	s, err := New(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Assign(0, 2); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	full := fullDomain(4)
	for v := 0; v < 4; v++ {
		if s.Domain(v) != full {
			t.Fatalf("dom(%d) = %v after Reset, want %v", v, s.Domain(v), full)
		}
	}
	if s.NumDecisions() != 0 {
		t.Fatalf("decisions = %d after Reset", s.NumDecisions())
	}
}

func TestSolutionIncomplete(t *testing.T) {
	s, err := New(chain(t, 3), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Solution(); ok {
		t.Fatal("Solution should report incomplete before any decisions")
	}
}

// TestSamplePropertyRandomDAGs is the core solver property: any graph, any
// order, any seed — the emitted partition satisfies all static constraints
// (finish() already audits this; the test also re-validates independently).
func TestSamplePropertyRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(20)
		chips := 2 + rng.Intn(5)
		g := graph.New("rand")
		for i := 0; i < n; i++ {
			g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
		}
		for v := 1; v < n; v++ {
			u := rng.Intn(v)
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 4)
			}
			if rng.Intn(3) == 0 {
				u2 := rng.Intn(v)
				if !g.HasEdge(u2, v) {
					g.MustAddEdge(u2, v, 4)
				}
			}
		}
		s, err := New(g, chips, Options{})
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		for rep := 0; rep < 3; rep++ {
			p, err := s.Sample(RandomOrder(rng, n), nil, rng)
			if err != nil {
				t.Fatalf("trial %d rep %d: %v", trial, rep, err)
			}
			if err := p.Validate(g, chips); err != nil {
				t.Fatalf("trial %d rep %d: %v", trial, rep, err)
			}
		}
		// FIX mode with a random (likely invalid) hint must repair too.
		hint := make([]int, n)
		for i := range hint {
			hint[i] = rng.Intn(chips)
		}
		p, err := s.Fix(RandomOrder(rng, n), hint, rng)
		if err != nil {
			t.Fatalf("trial %d fix: %v", trial, err)
		}
		if err := p.Validate(g, chips); err != nil {
			t.Fatalf("trial %d fix: %v", trial, err)
		}
	}
}

func TestDomainOps(t *testing.T) {
	d := single(3) | single(5) | single(7)
	if d.Count() != 3 || d.Min() != 3 || d.Max() != 7 {
		t.Fatalf("domain stats wrong: %v", d)
	}
	if !d.Has(5) || d.Has(4) {
		t.Fatalf("Has wrong: %v", d)
	}
	if got := d.Values(); len(got) != 3 || got[0] != 3 || got[2] != 7 {
		t.Fatalf("Values = %v", got)
	}
	if s := d.String(); s != "{3,5,7}" {
		t.Fatalf("String = %q", s)
	}
	if fullDomain(64) != ^Domain(0) {
		t.Fatal("fullDomain(64) should be all ones")
	}
	if maskGE(0) != ^Domain(0) || maskGE(64) != 0 {
		t.Fatal("maskGE boundary cases")
	}
	if maskLE(-1) != 0 || maskLE(63) != ^Domain(0) {
		t.Fatal("maskLE boundary cases")
	}
	var empty Domain
	if !empty.Empty() || empty.Singleton() {
		t.Fatal("empty domain predicates")
	}
}

func TestDomainMinMaxPanicOnEmpty(t *testing.T) {
	for _, f := range []func(){
		func() { Domain(0).Min() },
		func() { Domain(0).Max() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on empty domain")
				}
			}()
			f()
		}()
	}
}

func TestTopoOrderMode(t *testing.T) {
	g := skipConn(t)
	s, err := New(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	order := s.TopoOrder()
	rng := rand.New(rand.NewSource(6))
	p, err := s.Sample(order, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g, 2); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	g := chain(t, 5)
	s, err := New(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if _, err := s.Sample(RandomOrder(rng, 5), nil, rng); err != nil {
		t.Fatal(err)
	}
	if s.StatsSnapshot().Decisions == 0 {
		t.Fatal("expected decisions to be counted")
	}
	s.Reset()
	if s.StatsSnapshot() != (Stats{}) {
		t.Fatal("Reset should clear stats")
	}
}

var benchSink partition.Partition

func benchmarkSample(b *testing.B, n, chips int) {
	g := graph.New("bench")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
		if i > 0 {
			g.MustAddEdge(i-1, i, 4)
		}
		if i > 4 && i%7 == 0 {
			g.MustAddEdge(i-4, i, 4)
		}
	}
	s, err := New(g, chips, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.Sample(RandomOrder(rng, n), nil, rng)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = p
	}
}

func BenchmarkSampleChain200x8(b *testing.B)   { benchmarkSample(b, 200, 8) }
func BenchmarkSampleChain2000x36(b *testing.B) { benchmarkSample(b, 2000, 36) }
