package cpsolver

import "math/bits"

// enqueue schedules node v for (re-)propagation.
func (s *Solver) enqueue(v int32) {
	if !s.inQ[v] {
		s.inQ[v] = true
		s.queue = append(s.queue, v)
	}
}

// propagate runs the propagation loop to a fixpoint. It returns true on
// conflict (some constraint is unsatisfiable under the current domains).
//
// Three propagators run interleaved:
//
//   - precedence bounds (acyclic dataflow, Eq. 2): for every edge (u,v),
//     dom(v) keeps only chips >= min(dom(u)) and dom(u) only chips
//     <= max(dom(v));
//   - binding (triangle dependency, Eq. 4): when a node's domain becomes a
//     singleton the chip-level quotient graph is updated and audited so no
//     direct inter-chip dependency coexists with an indirect one;
//   - prefix coverage (no skipping chips, Eq. 3): every chip below the
//     proven lower bound of the final maximum chip must remain coverable,
//     and there must be enough unbound nodes to cover the missing ones.
func (s *Solver) propagate() bool {
	g := s.g
	for {
		for len(s.queue) > 0 {
			v := s.queue[len(s.queue)-1]
			s.queue = s.queue[:len(s.queue)-1]
			s.inQ[v] = false

			d := s.doms[v]
			if d.Empty() {
				return true
			}
			if d.Singleton() && !s.bound[v] {
				if s.bindNode(v) {
					return true
				}
			}
			min, max := d.Min(), d.Max()
			// Push bounds through out-edges: successors must be >= min.
			for _, ei := range g.OutEdges(int(v)) {
				w := int32(g.Edge(int(ei)).To)
				if nd := s.doms[w] & maskGE(min); nd != s.doms[w] {
					s.stats.Propagations++
					s.setDomain(w, nd)
					if nd.Empty() {
						return true
					}
					s.enqueue(w)
				}
			}
			// Push bounds through in-edges: predecessors must be <= max.
			for _, ei := range g.InEdges(int(v)) {
				w := int32(g.Edge(int(ei)).From)
				if nd := s.doms[w] & maskLE(max); nd != s.doms[w] {
					s.stats.Propagations++
					s.setDomain(w, nd)
					if nd.Empty() {
						return true
					}
					s.enqueue(w)
				}
			}
		}
		// Queue drained: run the global no-skip audit, which may enqueue
		// more work (forced bindings) or detect a conflict.
		conflict, more := s.checkNoSkip()
		if conflict {
			return true
		}
		if !more {
			return false
		}
	}
}

// bindNode marks v as bound and merges its incident edges into the
// chip-level quotient graph. It returns true on a triangle or chip-capacity
// conflict.
func (s *Solver) bindNode(v int32) bool {
	c := s.doms[v].Min()
	s.trail = append(s.trail, trailEntry{kind: trailBound, a: v, b: int32(c)})
	s.bound[v] = true
	// Static per-chip memory bound, accumulation part: the weights bound
	// onto a chip may not exceed its capacity. The trail entry above
	// already carries the chip, so undoTo rolls the sum back.
	if s.capacity != nil {
		s.paramUsed[c] += s.nodeParams[v]
		if s.paramUsed[c] > s.capacity[c] {
			return true
		}
	}
	g := s.g
	for _, ei := range g.OutEdges(int(v)) {
		w := g.Edge(int(ei)).To
		if s.bound[w] {
			if s.addChipEdge(c, s.doms[w].Min()) {
				return true
			}
		}
	}
	for _, ei := range g.InEdges(int(v)) {
		w := g.Edge(int(ei)).From
		if s.bound[w] {
			if s.addChipEdge(s.doms[w].Min(), c) {
				return true
			}
		}
	}
	return false
}

// addChipEdge records a dependency between two chips of the quotient graph,
// auditing the triangle constraint when the pair is new. It returns true on
// conflict.
func (s *Solver) addChipEdge(a, b int) bool {
	if a == b {
		return false
	}
	// Precedence propagation guarantees a < b by the time both ends are
	// bound; the audit relies on that order.
	s.trail = append(s.trail, trailEntry{kind: trailAdj, a: int32(a), b: int32(b)})
	s.adjCount[a][b]++
	if s.adjCount[a][b] > 1 {
		return false // pair already audited
	}
	s.chipAdj[a] |= single(b)
	s.adjStack = append(s.adjStack, adjEvent{
		pair:  chipPair{int8(a), int8(b)},
		level: int32(len(s.decisions) - 1),
	})
	return s.triangleConflict()
}

// triangleConflict audits the whole chip quotient graph: for every direct
// edge (a,b) the longest a->b path must be exactly one hop (Eq. 4). The
// graph has at most C <= 64 vertices and all edges go from lower to higher
// IDs, so a O(C^2) sweep per source suffices.
func (s *Solver) triangleConflict() bool {
	s.stats.TriangleChecks++
	c := s.chips
	// reach[b] (as bitsets per source) is expensive to keep incrementally;
	// with C <= 64 a fresh longest-path sweep is ~C^2 word ops.
	var dist [64]int8
	for a := 0; a < c; a++ {
		row := s.chipAdj[a]
		if row == 0 {
			continue
		}
		for b := a + 1; b < c; b++ {
			dist[b] = 0
		}
		hi := row.Max()
		for m := a + 1; m <= hi; m++ {
			dm := dist[m]
			if row.Has(m) && dm < 1 {
				dm = 1
				dist[m] = 1
			}
			if dm == 0 {
				continue
			}
			if dm > 1 && row.Has(m) {
				// Direct a->m coexists with a longer path: record the
				// involved chip pairs for conflict-directed backjumping.
				s.recordTriangleConflict(a, m, &dist)
				return true
			}
			next := s.chipAdj[m]
			if next == 0 {
				continue
			}
			if nm := next.Max(); nm > hi {
				hi = nm
			}
			for rest := next; rest != 0; rest &= rest - 1 {
				b := bits.TrailingZeros64(uint64(rest))
				if d := dm + 1; d > dist[b] {
					dist[b] = d
				}
			}
		}
	}
	return false
}

// recordTriangleConflict fills s.conflictPairs with the direct pair (a,m)
// and the pairs of one longest a->m path reconstructed from the audit's
// dist array.
func (s *Solver) recordTriangleConflict(a, m int, dist *[64]int8) {
	s.conflictPairs = append(s.conflictPairs[:0], chipPair{int8(a), int8(m)})
	cur := m
	d := dist[m]
	for d > 1 {
		for j := cur - 1; j > a; j-- {
			if dist[j] == d-1 && s.chipAdj[j].Has(cur) {
				s.conflictPairs = append(s.conflictPairs, chipPair{int8(j), int8(cur)})
				cur = j
				break
			}
		}
		d--
	}
	s.conflictPairs = append(s.conflictPairs, chipPair{int8(a), int8(cur)})
}

// checkNoSkip audits Eq. 3. Let maxLow = max over nodes of min(dom): the
// final maximum used chip is provably >= maxLow, so every chip d <= maxLow
// must eventually host a node. The audit fails when some such chip has been
// pruned from every domain, or when fewer unbound nodes remain than chips
// that still need a first occupant. When exactly one node can cover a
// missing chip, that node is forced onto it (a Hall-style implied
// assignment) and propagation resumes; the bool results are (conflict,
// moreWork).
func (s *Solver) checkNoSkip() (bool, bool) {
	var union, boundUsed Domain
	var minHist, maxHist [65]int
	maxLow := 0
	unbound := 0
	for v, d := range s.doms {
		union |= d
		mn, mx := d.Min(), d.Max()
		minHist[mn]++
		maxHist[mx]++
		if mn > maxLow {
			maxLow = mn
		}
		if s.bound[v] {
			boundUsed |= d
		} else {
			unbound++
		}
	}
	need := maskLE(maxLow) & fullDomain(s.chips)
	if missing := need &^ union; missing != 0 {
		return true, false // some required chip is uncoverable
	}
	uncovered := need &^ boundUsed
	if uncovered.Count() > unbound {
		return true, false // not enough nodes left to cover required chips
	}
	// Hall-interval audit: every chip in 0..maxLow needs a distinct node,
	// so for any chip interval [a,b] with b <= maxLow at least b-a+1 nodes
	// must have a domain intersecting it. With interval relaxations of the
	// domains, #intersecting = N - #(max < a) - #(min > b), computable
	// from two prefix sums; the full audit is O(C^2). This is what spots
	// regional deficiencies (e.g. two nodes bound to chips 10 and 13 with
	// a single node left between them for chips 11 and 12) the moment a
	// decision creates them instead of thousands of backtracks later.
	n := len(s.doms)
	var maxBelow [66]int // maxBelow[a] = #vars with max < a
	for a := 1; a <= 65; a++ {
		maxBelow[a] = maxBelow[a-1] + maxHist[a-1]
	}
	minAbove := 0 // #vars with min > b, computed by descending b
	for b := maxLow; b >= 0; b-- {
		if b < 64 {
			minAbove += minHist[b+1]
		}
		avail := n - minAbove
		for a := b; a >= 0; a-- {
			// avail now counts vars with min <= b and max >= a.
			if avail-maxBelow[a] < b-a+1 {
				return true, false
			}
		}
	}
	if uncovered == 0 {
		return false, false
	}
	// Hall-style forcing: a required chip coverable by exactly one node
	// pins that node. One pass over the domains accumulates, per uncovered
	// chip, how many nodes can still host it and which node saw it last.
	var count [64]int32
	var cand [64]int32
	for v, d := range s.doms {
		for rest := d & uncovered; rest != 0; rest &= rest - 1 {
			chip := bits.TrailingZeros64(uint64(rest))
			count[chip]++
			cand[chip] = int32(v)
		}
	}
	forced := false
	for rest := uncovered; rest != 0; rest &= rest - 1 {
		chip := bits.TrailingZeros64(uint64(rest))
		if count[chip] == 1 && !s.doms[cand[chip]].Singleton() {
			s.stats.Propagations++
			s.setDomain(cand[chip], single(chip))
			s.enqueue(cand[chip])
			forced = true
		}
	}
	return false, forced
}
