package cpsolver

import (
	"math/rand"
	"testing"

	"mcmpart/internal/graph"
	"mcmpart/internal/partition"
	"mcmpart/internal/workload"
)

func TestSegmenterChainUniform(t *testing.T) {
	g := chain(t, 10)
	sg, err := NewSegmenter(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 600; i++ {
		p, err := sg.Sample(nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g, 3); err != nil {
			t.Fatalf("invalid partition %v: %v", p, err)
		}
		if p.NumChipsUsed() != 3 {
			t.Fatalf("segmenter should use all chips, got %v", p)
		}
		counts[p.String()]++
	}
	// A 10-node chain on 3 chips has C(9,2) = 36 layouts; uniform
	// sampling should hit a large fraction of them.
	if len(counts) < 25 {
		t.Fatalf("only %d distinct layouts sampled, want >= 25 of 36", len(counts))
	}
}

func TestSegmenterRespectsPolicy(t *testing.T) {
	g := chain(t, 6)
	sg, err := NewSegmenter(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Push the boundary between nodes 2 and 3.
	probs := [][]float64{
		{0.999, 0.001}, {0.999, 0.001}, {0.999, 0.001},
		{0.001, 0.999}, {0.001, 0.999}, {0.001, 0.999},
	}
	rng := rand.New(rand.NewSource(2))
	match := 0
	for i := 0; i < 100; i++ {
		p, err := sg.Sample(probs, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p[2] == 0 && p[3] == 1 {
			match++
		}
	}
	if match < 90 {
		t.Fatalf("policy followed only %d/100 times", match)
	}
}

func TestSegmenterFitKeepsValidHint(t *testing.T) {
	g := chain(t, 8)
	sg, err := NewSegmenter(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	hint := []int{0, 0, 1, 1, 2, 2, 3, 3}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		p, err := sg.Fit(hint, rng)
		if err != nil {
			t.Fatal(err)
		}
		for v := range hint {
			if p[v] != hint[v] {
				t.Fatalf("Fit changed valid hint: %v -> %v", hint, p)
			}
		}
	}
}

func TestSegmenterFitRepairsInvalidHint(t *testing.T) {
	g := skipConn(t)
	// skipConn allows at most 1 boundary (the 0->2 edge spans everything
	// except the final gap), so 2 chips works but the invalid hint
	// {0,1,2} must be repaired.
	sg, err := NewSegmenter(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	p, err := sg.Fit([]int{0, 1, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g, 2); err != nil {
		t.Fatalf("Fit emitted invalid %v: %v", p, err)
	}
}

func TestSegmenterPrefixWhenCapacityShort(t *testing.T) {
	// A 3-node graph with an edge spanning everything admits at most one
	// boundary; on a 3-chip package, layouts fall back to a 2-chip prefix.
	g := skipConn(t)
	sg, err := NewSegmenter(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Chips() != 3 || sg.LayoutChips() != 2 {
		t.Fatalf("Chips=%d LayoutChips=%d, want 3/2", sg.Chips(), sg.LayoutChips())
	}
	p, err := sg.Sample(nil, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g, 3); err != nil {
		t.Fatal(err)
	}
	if p.NumChipsUsed() != 2 {
		t.Fatalf("layout should use the 2-chip prefix, got %v", p)
	}
}

func TestSegmenterSingleChip(t *testing.T) {
	g := chain(t, 4)
	sg, err := NewSegmenter(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sg.Sample(nil, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p {
		if c != 0 {
			t.Fatalf("single chip layout wrong: %v", p)
		}
	}
}

func TestSegmenterBERTScale(t *testing.T) {
	if testing.Short() {
		t.Skip("BERT graph construction in short mode")
	}
	g := workload.BERT()
	sg, err := NewSegmenter(g, 36)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		p, err := sg.Sample(nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(g, 36); err != nil {
			t.Fatal(err)
		}
		if p.NumChipsUsed() != 36 {
			t.Fatalf("sample uses %d chips, want 36", p.NumChipsUsed())
		}
		seen[p.String()] = true
	}
	if len(seen) < 5 {
		t.Fatalf("BERT samples not diverse: %d distinct of 5", len(seen))
	}
}

func TestNewAutoSelectsBySize(t *testing.T) {
	small := chain(t, 10)
	p1, err := NewAuto(small, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p1.(*Solver); !ok {
		t.Fatalf("small graph should get the CP solver, got %T", p1)
	}
	big := graph.New("big")
	for i := 0; i < AutoThreshold+10; i++ {
		big.AddNode(graph.Node{FLOPs: 1, OutputBytes: 1})
		if i > 0 {
			big.MustAddEdge(i-1, i, 1)
		}
	}
	p2, err := NewAuto(big, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.(*Segmenter); !ok {
		t.Fatalf("large graph should get the segmenter, got %T", p2)
	}
	// Both implement the Partitioner contract.
	rng := rand.New(rand.NewSource(7))
	for _, pr := range []Partitioner{p1, p2} {
		p, err := pr.SampleMode(nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := partition.Partition(p).Validate(map[bool]*graph.Graph{true: small, false: big}[pr == p1], pr.Chips()); err != nil {
			t.Fatal(err)
		}
		y := make([]int, pr.NumNodes())
		if _, err := pr.FixMode(y, rng); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkSegmenterSampleBERT(b *testing.B) {
	g := workload.BERT()
	sg, err := NewSegmenter(g, 36)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := sg.Sample(nil, rng)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = p
	}
}
