// Package cpsolver implements the constraint solver the RL partitioner leans
// on (Sec. 4.2). The paper uses CP-SAT; this is a from-scratch CP solver
// providing the same interface the paper's Algorithms 1 and 2 rely on:
//
//   - get_domain(u): the set of chips node u may still be assigned to,
//   - set_domain(u, {c}): assign a chip, run constraint propagation, and
//     backtrack to an earlier decision when the assignment is infeasible.
//
// The solver enforces the three static constraints of the problem
// formulation: acyclic dataflow (bounds propagation over precedence edges),
// no skipping chips (prefix coverage reasoning), and the chip triangle
// dependency (incremental longest-path checking over the chip-level quotient
// graph). Assignments are undone through a trail, so the solver backtracks
// chronologically exactly as the paper describes: set_domain returns the new
// decision index, which decreases when the solver had to undo decisions.
//
//mcmlint:deterministic
//mcmlint:hotpath
package cpsolver

import (
	"errors"
	"fmt"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
)

// Errors returned by the solver.
var (
	// ErrInfeasible means the constraints admit no solution (the solver
	// backtracked past the first decision).
	ErrInfeasible = errors.New("cpsolver: infeasible")
	// ErrBacktrackBudget means the solver exceeded its backtrack budget;
	// callers usually retry with a different node order.
	ErrBacktrackBudget = errors.New("cpsolver: backtrack budget exhausted")
	// ErrValueNotInDomain is returned by Assign when the requested chip
	// has already been pruned from the node's domain.
	ErrValueNotInDomain = errors.New("cpsolver: value not in domain")
)

// Stats counts solver work; it is reset by Reset.
type Stats struct {
	// Decisions is the number of Assign/Skip decisions applied.
	Decisions int
	// Backtracks is the number of decisions undone after conflicts.
	Backtracks int
	// Propagations is the number of domain changes made by propagation.
	Propagations int
	// TriangleChecks is the number of full chip-graph triangle audits.
	TriangleChecks int
}

// trail entry kinds.
const (
	trailDomain = iota // restore doms[a] to old
	trailAdj           // decrement adjCount[a][b]
	trailBound         // clear bound[a]
)

type trailEntry struct {
	kind int
	a, b int32
	old  Domain
}

// chipPair is an ordered chip dependency (a < b).
type chipPair struct{ a, b int8 }

// adjEvent records which decision level first inserted a chip pair into the
// quotient graph.
type adjEvent struct {
	pair  chipPair
	level int32
}

// decision is one solver decision: either a value choice for a node or a
// skip (FIX mode phase 1 passes over nodes whose hinted value is invalid).
type decision struct {
	node      int
	value     int
	skip      bool
	trailMark int
}

// Options configure a Solver.
type Options struct {
	// MaxBacktracks bounds the total number of undone decisions per
	// Sample/Fix solve (across restarts) before the solver gives up with
	// ErrBacktrackBudget. Zero means the default of 200000.
	MaxBacktracks int
	// RestartBacktracks is the per-attempt backtrack limit before the
	// solve restarts with a reshuffled node order (the standard CP escape
	// from exponential pits of chronological backtracking; CP-SAT does
	// the same). It doubles after every restart. Zero means the default
	// of 200 + 20 per node.
	RestartBacktracks int
	// UnweightedSampling disables the completion-weighted value prior
	// during Sample/Fix (see Solver.sampleValue). Used by ablations.
	UnweightedSampling bool
	// ChipCapacityBytes, when non-empty (length = chip count), adds a
	// per-chip memory bound to the static constraints: the total weight
	// footprint placed on chip c may not exceed ChipCapacityBytes[c]. It
	// is a necessary condition for the dynamic SRAM constraint —
	// heterogeneous packages use it so little dies are not handed layers
	// that can never fit (see NewAutoPkg). Activations are still only
	// checked dynamically by the simulator.
	ChipCapacityBytes []int64
}

// DefaultMaxBacktracks is the total per-solve backtrack budget.
const DefaultMaxBacktracks = 200000

// Solver is a CP solver over one graph/package pair. It is stateful: callers
// make decisions with Assign/Skip and can rewind everything with Reset. The
// high-level Sample and Fix entry points implement the paper's Algorithms 1
// and 2 on top of that interface. A Solver is not safe for concurrent use.
type Solver struct {
	g     *graph.Graph
	chips int
	opts  Options

	doms  []Domain
	bound []bool

	trail     []trailEntry
	decisions []decision
	rootMark  int // trail length after root propagation

	// Chip-level quotient graph over bound nodes, for the triangle
	// constraint: adjCount[a][b] counts graph edges between bound nodes
	// on chips a != b; chipAdj caches the non-zero structure as bitrows.
	adjCount [][]int32
	chipAdj  []Domain
	// adjStack records, for every chip pair currently in the quotient
	// graph, the decision level that inserted it; conflict-directed
	// backjumping uses it to find the culprit of a triangle conflict.
	adjStack []adjEvent
	// conflictPairs holds the chip pairs involved in the most recent
	// triangle conflict (the direct pair plus one longest path), or is
	// empty when the last conflict was not a triangle violation.
	conflictPairs []chipPair

	// topoPos[v] is v's index in the deterministic topological order; the
	// completion-weighted value prior uses it as the node's pipeline
	// position.
	topoPos []int32
	// capFrom[p] is the maximum number of chip boundaries a contiguous
	// (topo-ordered) partition can still place at or after position p:
	// two boundaries may not fall inside one edge's span (the triangle
	// constraint forbids an edge crossing two cuts), so capacity follows
	// from a greedy sweep over edge spans. The value prior uses it to
	// know how urgently the assignment must climb toward the last chip.
	capFrom []int32

	// Per-chip static memory bound (nil when Options.ChipCapacityBytes is
	// unset): nodeParams caches each node's weight footprint and paramUsed
	// the total bound onto each chip, maintained through the trail.
	capacity   []int64
	nodeParams []int64
	paramUsed  []int64

	// Scratch queue for propagation.
	queue []int32
	inQ   []bool
	// Per-solve scratch reused across Sample/Fix calls so the hot loop
	// settles to zero allocations after warm-up.
	orderSeen []bool
	posOf     []int

	stats      Stats
	backtracks int // against btLimit, reset per attempt
	btLimit    int // current per-attempt backtrack limit
}

// New builds a solver for partitioning g onto a package with the given
// number of chips and runs root propagation. It returns an error if the
// graph is invalid, the chip count is out of range, or the instance is
// infeasible at the root.
func New(g *graph.Graph, chips int, opts Options) (*Solver, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if chips <= 0 || chips > mcm.MaxChips {
		return nil, fmt.Errorf("cpsolver: chip count %d out of range 1..%d", chips, mcm.MaxChips)
	}
	if opts.MaxBacktracks <= 0 {
		opts.MaxBacktracks = DefaultMaxBacktracks
	}
	if opts.RestartBacktracks <= 0 {
		opts.RestartBacktracks = 200 + 20*g.NumNodes()
	}
	n := g.NumNodes()
	s := &Solver{
		g:         g,
		chips:     chips,
		opts:      opts,
		doms:      make([]Domain, n),
		bound:     make([]bool, n),
		chipAdj:   make([]Domain, chips),
		inQ:       make([]bool, n),
		orderSeen: make([]bool, n),
		posOf:     make([]int, n),
	}
	s.adjCount = make([][]int32, chips)
	for i := range s.adjCount {
		s.adjCount[i] = make([]int32, chips)
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	s.topoPos = make([]int32, n)
	for i, v := range topo {
		s.topoPos[v] = int32(i)
	}
	s.capFrom = boundaryCapacity(g, s.topoPos)
	if caps := opts.ChipCapacityBytes; len(caps) != 0 {
		if len(caps) != chips {
			return nil, fmt.Errorf("cpsolver: %d chip capacities for %d chips", len(caps), chips)
		}
		s.capacity = caps
		s.paramUsed = make([]int64, chips)
		s.nodeParams = make([]int64, n)
		for v := 0; v < n; v++ {
			s.nodeParams[v] = g.Node(v).ParamBytes
		}
	}
	full := fullDomain(chips)
	for i := range s.doms {
		d := full
		// Static per-chip memory bound, node-level part: a node whose
		// weights alone exceed a chip's capacity can never sit there.
		if s.capacity != nil {
			for c := 0; c < chips; c++ {
				if s.nodeParams[i] > s.capacity[c] {
					d &^= single(c)
				}
			}
			if d.Empty() {
				return nil, ErrInfeasible
			}
		}
		s.doms[i] = d
	}
	// Root propagation: detects trivially infeasible instances and binds
	// anything forced from the start (e.g. single-chip packages).
	for v := 0; v < n; v++ {
		s.enqueue(int32(v))
	}
	if conflict := s.propagate(); conflict {
		return nil, ErrInfeasible
	}
	s.rootMark = len(s.trail)
	s.btLimit = opts.MaxBacktracks
	return s, nil
}

// NumNodes returns the number of decision variables (graph nodes).
func (s *Solver) NumNodes() int { return s.g.NumNodes() }

// Chips returns the number of chips C.
func (s *Solver) Chips() int { return s.chips }

// Stats returns cumulative work counters since the last Reset.
func (s *Solver) StatsSnapshot() Stats { return s.stats }

// Domain returns node u's current domain (the paper's get_domain).
func (s *Solver) Domain(u int) Domain { return s.doms[u] }

// NumDecisions returns the current decision index i of Algorithms 1 and 2:
// the number of decisions currently on the stack.
func (s *Solver) NumDecisions() int { return len(s.decisions) }

// DecisionNode returns the node the i-th decision is about. It panics if i
// is out of range.
func (s *Solver) DecisionNode(i int) int { return s.decisions[i].node }

// Reset rewinds the solver to the root state (no decisions) and clears the
// backtrack budget and statistics. Domains return to their
// post-root-propagation values.
func (s *Solver) Reset() {
	s.resetKeepStats()
	s.stats = Stats{}
	s.btLimit = s.opts.MaxBacktracks
}

// resetKeepStats rewinds decisions without touching the work counters; the
// restart loops in Sample and Fix use it so statistics span all attempts.
func (s *Solver) resetKeepStats() {
	s.undoTo(s.rootMark)
	s.decisions = s.decisions[:0]
	s.backtracks = 0
}

// Restrict permanently limits node u to the given chips, as a root-level
// constraint that survives Reset (compilers use this to pin I/O ops to
// specific chips). It must be called while no decisions are outstanding.
// It returns ErrInfeasible if the restriction admits no solution, in which
// case the solver is left unusable.
func (s *Solver) Restrict(u int, allowed []int) error {
	if len(s.decisions) != 0 {
		return fmt.Errorf("cpsolver: Restrict with %d outstanding decisions", len(s.decisions))
	}
	var nd Domain
	for _, c := range allowed {
		if c < 0 || c >= s.chips {
			return fmt.Errorf("cpsolver: Restrict chip %d out of range 0..%d", c, s.chips-1)
		}
		nd |= single(c)
	}
	nd &= s.doms[u]
	if nd.Empty() {
		return ErrInfeasible
	}
	if nd != s.doms[u] {
		s.setDomain(int32(u), nd)
		s.enqueue(int32(u))
		if s.propagate() {
			return ErrInfeasible
		}
	}
	s.rootMark = len(s.trail)
	return nil
}

// Assign implements the paper's set_domain(u, {c}): it records a decision
// assigning node u to chip c, propagates, and on conflict backtracks to an
// earlier decision. It returns the new decision index (which may be lower
// than before), ErrValueNotInDomain if c was already pruned, ErrInfeasible
// if the instance has no solution under the current root, or
// ErrBacktrackBudget.
func (s *Solver) Assign(u, c int) (int, error) {
	if !s.doms[u].Has(c) {
		return len(s.decisions), ErrValueNotInDomain
	}
	s.decisions = append(s.decisions, decision{node: u, value: c, trailMark: len(s.trail)})
	s.stats.Decisions++
	s.setDomain(int32(u), single(c))
	s.enqueue(int32(u))
	if !s.propagate() {
		return len(s.decisions), nil
	}
	return s.recover()
}

// Skip records a pass-over decision for node u that leaves its domain
// unchanged (FIX mode uses this when the hinted value is invalid). It
// returns the new decision index.
func (s *Solver) Skip(u int) int {
	s.decisions = append(s.decisions, decision{node: u, skip: true, trailMark: len(s.trail)})
	s.stats.Decisions++
	return len(s.decisions)
}

// recover handles a conflict: choose a culprit decision, undo everything
// above it, exclude its value in the parent context, re-propagate, and
// repeat while conflicts persist.
//
// For most conflicts the culprit is the most recent value decision
// (chronological backtracking). Triangle conflicts get conflict-directed
// backjumping instead: the violation names a direct chip dependency and an
// indirect path, and the decision that inserted the most recent of those
// chip edges is the culprit; decisions above it are popped without value
// exclusion. Chronological climbing cannot repair triangle conflicts — the
// violation is typically created ~tens of decisions before it is detected
// (when the second endpoint of a long skip/residual edge finally binds), and
// excluding values at the detection point only pushes assignments further
// up, exploring an exponential dead subtree.
func (s *Solver) recover() (int, error) {
	for {
		// Chronological first: pop the top value decision and negate it.
		// Cheap and correct when the newest value choice is at fault —
		// the common case (the audit fires the moment a bad value binds).
		var d decision
		for {
			if len(s.decisions) == 0 {
				return 0, ErrInfeasible
			}
			d = s.decisions[len(s.decisions)-1]
			s.decisions = s.decisions[:len(s.decisions)-1]
			s.undoTo(d.trailMark)
			s.stats.Backtracks++
			s.backtracks++
			if !d.skip {
				break
			}
		}
		if s.backtracks > s.btLimit {
			return len(s.decisions), ErrBacktrackBudget
		}
		nd := s.doms[d.node] &^ single(d.value)
		if nd.Empty() {
			// The node has no values left under the parent context. If a
			// triangle conflict drained it, chronological unwinding would
			// climb an exponential dead subtree: the real culprit is the
			// decision that inserted one of the path edges (typically a
			// chip boundary placed inside a residual window dozens of
			// decisions ago). Backjump there instead.
			if target := s.triangleCulprit(); target >= 0 {
				for len(s.decisions) > target+1 {
					dd := s.decisions[len(s.decisions)-1]
					s.decisions = s.decisions[:len(s.decisions)-1]
					s.undoTo(dd.trailMark)
					s.stats.Backtracks++
					s.backtracks++
				}
			}
			continue
		}
		s.setDomain(int32(d.node), nd)
		s.enqueue(int32(d.node))
		if !s.propagate() {
			return len(s.decisions), nil
		}
	}
}

// triangleCulprit returns the decision index of the most recent inserter of
// a chip pair involved in the pending triangle conflict, strictly below the
// current decision count, or -1 when there is no triangle context. The jump
// is heuristic (popped in-between decisions also contributed), so the solver
// trades completeness for tractability; every emitted partition is
// re-validated, and restarts plus the backtrack budget bound the search.
func (s *Solver) triangleCulprit() int {
	if len(s.conflictPairs) == 0 {
		return -1
	}
	top := len(s.decisions)
	level := -1
	for _, ev := range s.adjStack {
		if int(ev.level) >= top {
			continue
		}
		for _, cp := range s.conflictPairs {
			if ev.pair == cp && int(ev.level) > level {
				level = int(ev.level)
			}
		}
	}
	s.conflictPairs = s.conflictPairs[:0]
	return level
}

// boundaryCapacity computes, for every topological position p, how many
// chip boundaries can still be placed at gaps >= p when nodes are laid out
// contiguously in topological order. A boundary at gap g (between positions
// g and g+1) cuts every edge whose span contains g; since no edge may cross
// two boundaries, after placing a boundary at g the next one must clear
// every edge span that contains g, i.e. sit at or beyond
// next(g) = max(prefMax(g), g+1), where prefMax(g) is the maximum consumer
// position over edges whose producer position is <= g.
func boundaryCapacity(g *graph.Graph, topoPos []int32) []int32 {
	n := g.NumNodes()
	prefMax := make([]int32, n)
	for i := range prefMax {
		prefMax[i] = int32(i) + 1
	}
	for _, e := range g.Edges() {
		pu, pv := topoPos[e.From], topoPos[e.To]
		if pv > prefMax[pu] {
			prefMax[pu] = pv
		}
	}
	for i := 1; i < n; i++ {
		if prefMax[i-1] > prefMax[i] {
			prefMax[i] = prefMax[i-1]
		}
	}
	caps := make([]int32, n+1)
	for p := n - 1; p >= 0; p-- {
		next := prefMax[p]
		if next >= int32(n) {
			caps[p] = 0 // an edge spans from here past the last node's gap
			continue
		}
		caps[p] = 1 + caps[next]
	}
	return caps
}

// setDomain writes a new domain for v, recording the old value on the trail.
func (s *Solver) setDomain(v int32, nd Domain) {
	s.trail = append(s.trail, trailEntry{kind: trailDomain, a: v, old: s.doms[v]})
	s.doms[v] = nd
}

// undoTo rewinds the trail to the given mark.
func (s *Solver) undoTo(mark int) {
	for len(s.trail) > mark {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		switch e.kind {
		case trailDomain:
			s.doms[e.a] = e.old
		case trailAdj:
			s.adjCount[e.a][e.b]--
			if s.adjCount[e.a][e.b] == 0 {
				s.chipAdj[e.a] &^= single(int(e.b))
				s.adjStack = s.adjStack[:len(s.adjStack)-1]
			}
		case trailBound:
			s.bound[e.a] = false
			if s.capacity != nil {
				s.paramUsed[e.b] -= s.nodeParams[e.a]
			}
		}
	}
	// Propagation queue contents are invalid after an undo.
	for _, v := range s.queue {
		s.inQ[v] = false
	}
	s.queue = s.queue[:0]
}

// Solution returns the chip assignment once every node is bound. It returns
// false if any node is still undecided.
func (s *Solver) Solution() ([]int, bool) {
	out := make([]int, len(s.doms))
	for v, d := range s.doms {
		if !d.Singleton() {
			return nil, false
		}
		out[v] = d.Min()
	}
	return out, true
}
