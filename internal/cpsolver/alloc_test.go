package cpsolver

import (
	"math/rand"
	"testing"
)

// allocSink defeats dead-code elimination in the AllocsPerRun bodies.
var allocSink int

// TestDomainForEachZeroAlloc pins the zero-allocation contract of the hot
// iteration form: Values() builds a slice per call, ForEach must not.
func TestDomainForEachZeroAlloc(t *testing.T) {
	d := Domain(0b1011010110)
	allocs := testing.AllocsPerRun(200, func() {
		sum := 0
		d.ForEach(func(c int) bool {
			sum += c
			return true
		})
		allocSink = sum
	})
	if allocs != 0 {
		t.Fatalf("Domain.ForEach allocated %.1f objects/op, want 0", allocs)
	}
}

func TestDomainForEachOrderAndEarlyStop(t *testing.T) {
	d := Domain(0b101101)
	var got []int
	d.ForEach(func(c int) bool {
		got = append(got, c)
		return true
	})
	want := d.Values()
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, Values %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, Values %v", got, want)
		}
	}
	visits := 0
	d.ForEach(func(c int) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Fatalf("early stop visited %d chips, want 2", visits)
	}
}

// TestSampleValueZeroAlloc pins the solver's value-sampling path (the inner
// loop of every Sample/Fix solve) to zero allocations.
func TestSampleValueZeroAlloc(t *testing.T) {
	g := chain(t, 40)
	s, err := New(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	row := make([]float64, 8)
	for i := range row {
		row[i] = 1.0 / 8
	}
	allocs := testing.AllocsPerRun(200, func() {
		allocSink = s.sampleValue(rng, row, 20)
	})
	if allocs != 0 {
		t.Fatalf("sampleValue allocated %.1f objects/op, want 0", allocs)
	}
}

// TestAssignResetSteadyStateAllocs pins the decide/propagate/undo cycle —
// the loop a solve spends its life in — to zero steady-state allocations:
// the trail, decision stack, and propagation queue must reuse their
// capacity across Reset.
func TestAssignResetSteadyStateAllocs(t *testing.T) {
	g := chain(t, 60)
	s, err := New(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	order := s.TopoOrder()
	cycle := func() {
		s.Reset()
		i := 0
		for i < len(order) {
			u := order[i]
			n, err := s.Assign(u, s.doms[u].Min())
			if err != nil {
				t.Fatal(err)
			}
			i = n
		}
	}
	cycle() // warm-up: grow trail/decisions/queue to steady capacity
	allocs := testing.AllocsPerRun(50, cycle)
	if allocs != 0 {
		t.Fatalf("Assign/Reset cycle allocated %.1f objects/op after warm-up, want 0", allocs)
	}
}

// TestSegmenterSampleSteadyStateAllocs bounds the per-sample allocations of
// the segment sampler after warm-up: the DP tables (logPS, alpha) and the
// Fit hint matrix must be reused, leaving only the emitted partition and
// the per-call boundary sampling.
func TestSegmenterSampleSteadyStateAllocs(t *testing.T) {
	g := chain(t, 400)
	sg, err := NewSegmenter(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if _, err := sg.Sample(nil, rng); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		p, err := sg.Sample(nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		allocSink = int(p[len(p)-1])
	})
	// Allowed per-call allocations: the emitted partition's backing array
	// and the O(chips) scratch of the defense-in-depth Validate audit
	// (used/adjacency/longest-path tables). The DP tables themselves
	// (logPS, alpha, weights — O(chips*N) floats) must be reused: a
	// regression there blows far past this ceiling on a 400-node chain.
	ceiling := 3*8 + 8
	if int(allocs) > ceiling {
		t.Fatalf("Segmenter.Sample allocated %.1f objects/op after warm-up, want <= %d", allocs, ceiling)
	}
}
