package cpsolver

import (
	"fmt"
	"math"
	"math/rand"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

// Segmenter generates valid partitions of chain-dominated graphs by exact
// dynamic programming over the contiguous family: lay the nodes out in
// topological order and choose C-1 boundary gaps such that no edge span
// contains two boundaries. Every such segmentation satisfies all three
// static constraints (monotone chips, prefix usage, and all cut edges
// adjacent, so the chip quotient graph is a path). For graphs whose
// dependence structure is a spine with local side nodes — BERT above all —
// the converse also holds up to side-node jitter, so the family covers
// essentially the whole valid space.
//
// The DP samples a segmentation with probability proportional to
// prod_u P[u][f(u)] in O(N*C) time: forward pass with streaming
// log-sum-exp, backward boundary-by-boundary sampling. With uniform P this
// is an exact uniform sample over the family — the diversity the paper's
// Random-search baseline relies on, which sequential per-node sampling
// (Algorithm 1) cannot deliver at production scale without CP-SAT's clause
// learning (see DESIGN.md for the deviation note).
type Segmenter struct {
	g *graph.Graph
	// chips is the package chip count C (the policy action space);
	// k <= chips is the number of chips actually laid out, bounded by the
	// graph's boundary capacity (the no-skip constraint permits using any
	// prefix of the chips).
	chips int
	k     int
	// order[p] is the node at topological position p.
	order []int
	// next[gap] is the earliest allowed gap for the following boundary: a
	// boundary at gap g cuts every edge span containing g, and no edge
	// may cross two boundaries. It is nondecreasing.
	next []int32
	// Per-call scratch, lazily sized and reused across samples so the hot
	// sampling loop stops allocating (a BERT-scale alpha table alone is
	// ~600 KB per call): logPS holds per-chip prefix sums of log P, alpha
	// the forward-DP table, boundsBuf the sampled boundary gaps, and
	// fitProbs/fitFlat the hint matrix Fit builds. A Segmenter is therefore
	// not safe for concurrent use; parallel callers use replicas.
	logPS     [][]float64
	alpha     [][]float64
	boundsBuf []int
	wScratch  []float64
	fitProbs  [][]float64
	fitFlat   []float64
	// chipCap, when non-nil, is the per-chip static weight bound of
	// Options.ChipCapacityBytes: samples whose per-chip weight totals
	// exceed it are rejected and redrawn (the DP's streaming structure
	// cannot carry a knapsack side constraint exactly). A nil bound (the
	// homogeneous default) draws exactly one sample per call, keeping the
	// pre-heterogeneity RNG stream bit-identical.
	chipCap []int64
}

// segmentCapacityRetries bounds redraws before a capacity-constrained
// sample gives up with ErrInfeasible.
const segmentCapacityRetries = 64

// NewSegmenter prepares a segmenter for the graph on the given chip count.
// When the graph admits fewer boundaries than chips-1, layouts use the
// longest feasible chip prefix instead (Eq. 3 permits any prefix).
func NewSegmenter(g *graph.Graph, chips int) (*Segmenter, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if chips <= 0 || chips > mcm.MaxChips {
		return nil, fmt.Errorf("cpsolver: chip count %d out of range 1..%d", chips, mcm.MaxChips)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	next := make([]int32, n)
	for i := range next {
		next[i] = int32(i) + 1
	}
	for _, e := range g.Edges() {
		pu, pv := pos[e.From], pos[e.To]
		if pv > next[pu] {
			next[pu] = pv
		}
	}
	for i := 1; i < n; i++ {
		if next[i-1] > next[i] {
			next[i] = next[i-1]
		}
	}
	sg := &Segmenter{g: g, chips: chips, order: order, next: next}
	sg.k = chips
	if cap := sg.capacity(); cap < chips-1 {
		sg.k = cap + 1
	}
	return sg, nil
}

// LayoutChips returns the number of chips layouts actually use, which is
// less than Chips when the graph's boundary capacity cannot host them all.
func (sg *Segmenter) LayoutChips() int { return sg.k }

// capacity returns the maximum number of span-respecting boundaries.
func (sg *Segmenter) capacity() int {
	n := len(sg.order)
	count := 0
	for g := 0; g < n-1; {
		count++
		g = int(sg.next[g])
	}
	return count
}

// Chips returns the chip count C.
func (sg *Segmenter) Chips() int { return sg.chips }

// logProb returns clamped log P[u][c]; nil rows mean uniform (0 works since
// only relative weights matter).
func logProb(p []float64, c int) float64 {
	if p == nil {
		return 0
	}
	v := p[c]
	if v < 1e-12 {
		v = 1e-12
	}
	return math.Log(v)
}

// Sample draws a contiguous partition with probability proportional to
// prod_u probs[u][f(u)]. probs may be nil (uniform over the family). Under a
// per-chip capacity bound it redraws until the sample fits (rejection keeps
// the distribution exact, conditioned on feasibility).
func (sg *Segmenter) Sample(probs [][]float64, rng *rand.Rand) (partition.Partition, error) {
	p, err := sg.sampleOnce(probs, rng)
	if err != nil || sg.chipCap == nil {
		return p, err
	}
	for attempt := 0; !sg.fitsCapacity(p); attempt++ {
		if attempt >= segmentCapacityRetries {
			return nil, fmt.Errorf("cpsolver: no capacity-feasible segmentation in %d draws: %w",
				segmentCapacityRetries, ErrInfeasible)
		}
		if p, err = sg.sampleOnce(probs, rng); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// fitsCapacity reports whether each chip's total weight footprint under p
// stays within the per-chip capacity bound.
func (sg *Segmenter) fitsCapacity(p partition.Partition) bool {
	var used [mcm.MaxChips]int64
	for v, c := range p {
		used[c] += sg.g.Node(v).ParamBytes
		if used[c] > sg.chipCap[c] {
			return false
		}
	}
	return true
}

// sampleOnce draws one contiguous partition via the forward-backward DP.
func (sg *Segmenter) sampleOnce(probs [][]float64, rng *rand.Rand) (partition.Partition, error) {
	n := len(sg.order)
	c := sg.k
	if probs != nil && len(probs) != n {
		return nil, fmt.Errorf("cpsolver: probs has %d rows for %d nodes", len(probs), n)
	}
	if c == 1 {
		return sg.emit(nil)
	}
	// Per-chip prefix sums of log-probabilities along the topo layout:
	// ps[k][g] = sum over positions q <= g of log P[order[q]][k].
	if sg.logPS == nil {
		sg.logPS = make([][]float64, c)
		for k := range sg.logPS {
			sg.logPS[k] = make([]float64, n)
		}
	}
	// Per-node log-likelihoods are tempered to a per-segment average:
	// without this, thousands of independent per-node factors accumulate
	// into enormous segment-level log-ratios, so even the mild biases of
	// an untrained policy would pin every boundary and emit wildly
	// imbalanced layouts. Scaling by C/N makes a segment's weight the
	// mean per-node preference: negligible for a near-uniform policy
	// (the counting prior dominates, samples stay balanced and diverse),
	// decisive for a confident one (mean log-ratios survive intact).
	calib := math.Sqrt(float64(c) / float64(n))
	if calib > 1 {
		calib = 1
	}
	ps := sg.logPS
	for k := 0; k < c; k++ {
		acc := 0.0
		for q := 0; q < n; q++ {
			var row []float64
			if probs != nil {
				row = probs[sg.order[q]]
			}
			acc += calib * logProb(row, k)
			ps[k][q] = acc
		}
	}
	// Forward DP: alpha[k][g] = log total weight of layouts of the first
	// k+1 segments with boundary k+1 at gap g (gap g = between positions
	// g and g+1; boundaries live at gaps 0..n-2).
	// alpha[0][g] = ps[0][g]; alpha[k][g] = ps[k][g] + LSE over feasible
	// g' (next[g'] <= g) of (alpha[k-1][g'] - ps[k][g']).
	nb := c - 1 // number of boundaries
	if sg.alpha == nil {
		sg.alpha = make([][]float64, nb)
		for k := range sg.alpha {
			sg.alpha[k] = make([]float64, n-1)
		}
		sg.boundsBuf = make([]int, nb)
		sg.wScratch = make([]float64, n-1)
	}
	alpha := sg.alpha
	for g := 0; g < n-1; g++ {
		alpha[0][g] = ps[0][g]
	}
	for k := 1; k < nb; k++ {
		// Streaming LSE over g' with next[g'] <= g, exploiting that
		// next is nondecreasing.
		lseMax := math.Inf(-1)
		lseSum := 0.0
		gp := 0
		for g := 0; g < n-1; g++ {
			for gp < n-1 && int(sg.next[gp]) <= g {
				w := alpha[k-1][gp] - ps[k][gp]
				if !math.IsInf(w, -1) {
					if w > lseMax {
						lseSum = lseSum*math.Exp(lseMax-w) + 1
						lseMax = w
					} else {
						lseSum += math.Exp(w - lseMax)
					}
				}
				gp++
			}
			if lseSum == 0 {
				alpha[k][g] = math.Inf(-1)
			} else {
				alpha[k][g] = ps[k][g] + lseMax + math.Log(lseSum)
			}
		}
	}
	// Sample the last boundary: weight = alpha[nb-1][g] + tail segment on
	// chip c-1 (positions g+1..n-1). Weights stream through the reused
	// scratch slice; building closures here would allocate per boundary.
	bounds := sg.boundsBuf
	w := sg.wScratch
	for g := 0; g < n-1; g++ {
		w[g] = alpha[nb-1][g] + ps[c-1][n-1] - ps[c-1][g]
	}
	g, err := sampleLogWeights(rng, w)
	if err != nil {
		return nil, fmt.Errorf("cpsolver: segment DP infeasible: %w", err)
	}
	bounds[nb-1] = g
	// Backward: given boundary k at gap g, boundary k-1 at g' with weight
	// alpha[k-1][g'] - ps[k][g'] over feasible g' (next[g'] <= g).
	for k := nb - 1; k >= 1; k-- {
		gk := bounds[k]
		for gp := 0; gp < n-1; gp++ {
			if int(sg.next[gp]) > gk {
				w[gp] = math.Inf(-1)
			} else {
				w[gp] = alpha[k-1][gp] - ps[k][gp]
			}
		}
		g, err := sampleLogWeights(rng, w)
		if err != nil {
			return nil, fmt.Errorf("cpsolver: segment DP backward step failed: %w", err)
		}
		bounds[k-1] = g
	}
	return sg.emit(bounds)
}

// Fit projects a (possibly invalid) hint onto the contiguous family,
// mirroring FIX mode: agreements with the hint get overwhelming weight, so
// the sampler keeps y wherever a valid layout allows and repairs the rest
// with random but span-respecting boundaries.
func (sg *Segmenter) Fit(y []int, rng *rand.Rand) (partition.Partition, error) {
	n := len(sg.order)
	if len(y) != n {
		return nil, fmt.Errorf("cpsolver: hint has %d entries for %d nodes", len(y), n)
	}
	const agree, disagree = 1.0, 1e-9
	if sg.fitProbs == nil {
		sg.fitProbs = make([][]float64, n)
		sg.fitFlat = make([]float64, sg.chips*n)
		for u := 0; u < n; u++ {
			sg.fitProbs[u] = sg.fitFlat[u*sg.chips : (u+1)*sg.chips]
		}
	}
	probs := sg.fitProbs
	for u := 0; u < n; u++ {
		for k := range probs[u] {
			probs[u][k] = disagree
		}
		if y[u] >= 0 && y[u] < sg.chips {
			probs[u][y[u]] = agree
		}
	}
	return sg.Sample(probs, rng)
}

// emit materializes the partition from boundary gaps (sorted ascending).
func (sg *Segmenter) emit(bounds []int) (partition.Partition, error) {
	p := make(partition.Partition, len(sg.order))
	chip := 0
	bi := 0
	for pos, v := range sg.order {
		p[v] = chip
		for bi < len(bounds) && bounds[bi] == pos {
			chip++
			bi++
		}
	}
	if err := p.Validate(sg.g, sg.chips); err != nil {
		return nil, fmt.Errorf("cpsolver: internal error: segmenter emitted invalid partition: %w", err)
	}
	return p, nil
}

// sampleLogWeights draws an index in [0,len(w)) with probability
// proportional to exp(w[i]), streaming in one pass (weighted reservoir via
// the Gumbel trick). It allocates nothing; callers reuse the weight slice.
func sampleLogWeights(rng *rand.Rand, w []float64) (int, error) {
	best := -1
	bestKey := math.Inf(-1)
	for i, wi := range w {
		if math.IsInf(wi, -1) {
			continue
		}
		// Gumbel-max: argmax of w(i) + Gumbel noise is a categorical
		// sample from softmax(w).
		key := wi - math.Log(-math.Log(rng.Float64()))
		if key > bestKey {
			bestKey = key
			best = i
		}
	}
	if best < 0 {
		return 0, ErrInfeasible
	}
	return best, nil
}
