package plancache

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcmpart/internal/faultinject"
)

func open(t *testing.T) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRoundTrip(t *testing.T) {
	st := open(t)
	key := "g=abc|p=def|m=random|s=7"
	payload := []byte(`{"partition": [0, 1, 2]}`)
	if _, ok := st.Get(key); ok {
		t.Fatal("empty store must miss")
	}
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("round trip: ok=%v got=%q", ok, got)
	}
	stats := st.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Writes != 1 || stats.Quarantined != 0 {
		t.Fatalf("stats %+v", stats)
	}

	// A second store over the same directory (the restart) serves the entry.
	st2, err := Open(st.Dir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = st2.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("restart read: ok=%v got=%q", ok, got)
	}
}

// TestCorruptionQuarantined flips, truncates, and version-bumps an entry:
// every mutation must read as a miss, move the file aside, and never
// surface bytes.
func TestCorruptionQuarantined(t *testing.T) {
	key := "the-key"
	payload := []byte("the-payload-bytes-of-a-plan")
	mutations := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bit flip in payload", func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }},
		{"bit flip in key", func(b []byte) []byte { b[53] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"stale version", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:12], Version+1); return b }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"length overflow", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[16:20], 1<<31); return b }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			st := open(t)
			if err := st.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			path := st.path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, m.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := st.Get(key); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if st.Stats().Quarantined != 1 {
				t.Fatalf("stats %+v: corrupt entry not quarantined", st.Stats())
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt entry still live at %s", path)
			}
			if _, err := os.Stat(path + quarantineSuffix); err != nil {
				t.Fatalf("quarantine file missing: %v", err)
			}
			// The quarantined key behaves as a clean miss and can be rewritten.
			if err := st.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := st.Get(key); !ok || string(got) != string(payload) {
				t.Fatalf("rewrite after quarantine: ok=%v got=%q", ok, got)
			}
		})
	}
}

// TestKeyMismatchQuarantined: an entry renamed onto another key's filename
// (or a would-be hash collision) must not be served.
func TestKeyMismatchQuarantined(t *testing.T) {
	st := open(t)
	if err := st.Put("key-a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(st.path("key-a"), st.path("key-b")); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get("key-b"); ok {
		t.Fatalf("mismatched key served: %q", got)
	}
	if st.Stats().Quarantined != 1 {
		t.Fatalf("stats %+v", st.Stats())
	}
}

func TestInjectedDiskFaults(t *testing.T) {
	st := open(t)
	boom := errors.New("disk on fire")
	faultinject.Enable(faultinject.NewSet(1,
		faultinject.Rule{Point: faultinject.PointDiskWrite, Fault: faultinject.Fault{Err: boom}, Every: 1},
	))
	defer faultinject.Disable()
	if err := st.Put("k", []byte("v")); !errors.Is(err, boom) {
		t.Fatalf("injected write fault not surfaced: %v", err)
	}
	if st.Stats().WriteErrors != 1 {
		t.Fatalf("stats %+v", st.Stats())
	}
	faultinject.Disable()
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.NewSet(1,
		faultinject.Rule{Point: faultinject.PointDiskRead, Fault: faultinject.Fault{Err: boom}, Every: 1},
	))
	if _, ok := st.Get("k"); ok {
		t.Fatal("injected read fault must read as a miss")
	}
	faultinject.Disable()
	if got, ok := st.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("entry must survive an injected read fault: ok=%v got=%q", ok, got)
	}
}

func TestFlushSweepsTempFiles(t *testing.T) {
	st := open(t)
	stray := filepath.Join(st.Dir(), ".tmp-999-1")
	if err := os.WriteFile(stray, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Flush must sweep stray temp files")
	}
	if _, ok := st.Get("k"); !ok {
		t.Fatal("Flush must keep live entries")
	}
}

func TestEncodeDecodeIdentity(t *testing.T) {
	cases := []struct {
		key     string
		payload string
	}{
		{"", ""},
		{"k", ""},
		{"", "p"},
		{strings.Repeat("key", 100), strings.Repeat("payload", 1000)},
	}
	for _, c := range cases {
		key, payload, err := Decode(Encode(c.key, []byte(c.payload)))
		if err != nil {
			t.Fatalf("Decode(Encode(%q, %q)): %v", c.key, c.payload, err)
		}
		if key != c.key || string(payload) != c.payload {
			t.Fatalf("round trip (%q, %q) → (%q, %q)", c.key, c.payload, key, payload)
		}
	}
}
