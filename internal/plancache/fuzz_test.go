package plancache

import (
	"bytes"
	"os"
	"testing"
)

// FuzzCacheEntry is the disk-trust-boundary fuzz target: arbitrary bytes
// dropped where an entry file should be must either decode to exactly the
// entry a well-formed encoding declares, or be quarantined as a miss —
// never served as a plan. It drives the real Store read path, not just
// Decode, so quarantine behavior is under fuzz too.
func FuzzCacheEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode("", nil))
	f.Add(Encode("g=abc|p=def|m=random|s=7", []byte(`{"partition": [0, 1, 2], "throughput": 123.5}`)))
	if valid := Encode("key", []byte("payload")); len(valid) > 0 {
		trunc := valid[:len(valid)-1]
		f.Add(trunc)
		flipped := bytes.Clone(valid)
		flipped[len(flipped)/2] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte("MCMPLANC garbage after a real magic"))

	const key = "fuzz-key"
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must be total: no panics, and a success must re-encode to
		// the identical bytes (the format has no redundancy to lose).
		decKey, payload, err := Decode(data)
		if err == nil {
			if !bytes.Equal(Encode(decKey, payload), data) {
				t.Fatalf("decode/encode not an identity for %d accepted bytes", len(data))
			}
		}

		// The store must serve data only when it is the exact well-formed
		// entry for the looked-up key.
		st, oerr := Open(t.TempDir(), nil)
		if oerr != nil {
			t.Fatal(oerr)
		}
		if werr := os.WriteFile(st.path(key), data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		got, ok := st.Get(key)
		switch {
		case ok && (err != nil || decKey != key):
			t.Fatalf("store served unverifiable bytes: %q", got)
		case ok && !bytes.Equal(got, payload):
			t.Fatalf("store served %q, entry holds %q", got, payload)
		case !ok && st.Stats().Quarantined == 0 && err != nil:
			t.Fatal("rejected entry was not quarantined")
		}
	})
}
