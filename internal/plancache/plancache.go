// Package plancache is the crash-safe persistent tier under the Service's
// in-memory plan cache. It stores opaque payload bytes keyed by the
// canonical plan-cache key (DESIGN.md §8 makes plans a pure function of
// that key, so a disk entry written by one process is correct to serve
// from any later one — the property that turns plans into reusable
// artifacts rather than per-run computations).
//
// Durability contract, per entry:
//
//   - writes go to a temp file in the same directory, are fsynced, and
//     reach their final name via one atomic rename — a crash mid-write
//     leaves either the old entry or a stray temp file, never a torn one;
//   - every entry carries a versioned header and a SHA-256 checksum over
//     key and payload; corrupt, truncated, stale-version, or
//     key-mismatched entries are quarantined (renamed aside, logged,
//     counted) and reported as a miss — never served;
//   - lookups are lazy: nothing is scanned at startup, so warm starts are
//     O(1) and pay one file read per first-touch key.
//
//mcmlint:deterministic
//mcmlint:errcontract
package plancache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mcmpart/internal/faultinject"
	"mcmpart/internal/telemetry"
)

// Format constants. Bumping Version invalidates (quarantines) every
// existing entry on first touch — the escape hatch for payload schema
// changes.
const (
	// Version is the on-disk entry format version.
	Version = 1
	// entrySuffix names live entries; quarantineSuffix names entries set
	// aside after failing verification.
	entrySuffix      = ".plan"
	quarantineSuffix = ".quarantined"
)

// magic opens every entry file.
var magic = [8]byte{'M', 'C', 'M', 'P', 'L', 'A', 'N', 'C'}

// header layout: magic[8] | version u32 | keyLen u32 | payloadLen u32 |
// sha256(key || payload)[32], all little-endian, followed by key bytes and
// payload bytes.
const headerLen = 8 + 4 + 4 + 4 + 32

// maxEntryBytes caps how large an entry a reader will accept — corruption
// of the length fields must not turn into a giant allocation.
const maxEntryBytes = 1 << 28 // 256 MiB

// Stats is a point-in-time snapshot of store activity.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	Quarantined uint64 `json:"quarantined"`
}

// Metrics are the instruments a Store records into. Open wires standalone
// instruments so a Store always counts; SetMetrics swaps in
// registry-backed ones so the same numbers appear on /metrics. Stats()
// reads whichever set is installed — there is exactly one source of
// truth.
type Metrics struct {
	Hits         *telemetry.Counter
	Misses       *telemetry.Counter
	Writes       *telemetry.Counter
	WriteErrors  *telemetry.Counter
	Quarantined  *telemetry.Counter
	ReadSeconds  *telemetry.Histogram // latency of Get, hit or miss
	WriteSeconds *telemetry.Histogram // latency of Put, success or failure
}

// Store is a directory of plan entries. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	logf func(format string, args ...any)
	m    Metrics          // immutable after SetMetrics (which must precede first use)
	now  func() time.Time // injectable clock for latency histograms

	mu  sync.Mutex
	seq uint64 // temp-file uniquifier; guarded by mu
}

// Open creates (if needed) and opens a store rooted at dir. logf receives
// one line per quarantined entry and per write failure; nil discards.
func Open(dir string, logf func(format string, args ...any)) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("plancache: %w", err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Store{
		dir:  dir,
		logf: logf,
		m: Metrics{
			Hits:         new(telemetry.Counter),
			Misses:       new(telemetry.Counter),
			Writes:       new(telemetry.Counter),
			WriteErrors:  new(telemetry.Counter),
			Quarantined:  new(telemetry.Counter),
			ReadSeconds:  telemetry.NewHistogram(telemetry.DefBuckets),
			WriteSeconds: telemetry.NewHistogram(telemetry.DefBuckets),
		},
		now: time.Now,
	}, nil
}

// SetMetrics replaces the store's instruments with registry-backed ones.
// Nil fields keep the standalone instrument Open installed. Call before
// the store's first Get/Put — the fields are read without a lock on the
// hot path.
func (s *Store) SetMetrics(m Metrics) {
	if m.Hits != nil {
		s.m.Hits = m.Hits
	}
	if m.Misses != nil {
		s.m.Misses = m.Misses
	}
	if m.Writes != nil {
		s.m.Writes = m.Writes
	}
	if m.WriteErrors != nil {
		s.m.WriteErrors = m.WriteErrors
	}
	if m.Quarantined != nil {
		s.m.Quarantined = m.Quarantined
	}
	if m.ReadSeconds != nil {
		s.m.ReadSeconds = m.ReadSeconds
	}
	if m.WriteSeconds != nil {
		s.m.WriteSeconds = m.WriteSeconds
	}
}

// SetNow replaces the store's clock; for tests. Call before first use.
func (s *Store) SetNow(now func() time.Time) {
	if now != nil {
		s.now = now
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file: keys are arbitrary strings, so the
// filename is the hex SHA-256 of the key (the key itself is stored inside
// the entry and verified on read, so a hash collision or a renamed file
// cannot serve the wrong plan).
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+entrySuffix)
}

// Encode serializes one entry. Exported for the fuzz target, which must be
// able to build valid entries and corrupt them.
func Encode(key string, payload []byte) []byte {
	buf := make([]byte, 0, headerLen+len(key)+len(payload))
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	sum := sha256.New()
	sum.Write([]byte(key))
	sum.Write(payload)
	buf = append(buf, sum.Sum(nil)...)
	buf = append(buf, key...)
	buf = append(buf, payload...)
	return buf
}

// Decode errors (all reported as ErrCorrupt-wrapped, so readers can treat
// every decode failure uniformly as "quarantine and miss").
var ErrCorrupt = errors.New("plancache: corrupt entry")

// Decode parses and verifies one entry, returning its key and payload.
// Exported for the fuzz target.
func Decode(data []byte) (key string, payload []byte, err error) {
	if len(data) < headerLen {
		return "", nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerLen)
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return "", nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != Version {
		return "", nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, version, Version)
	}
	keyLen := binary.LittleEndian.Uint32(data[12:16])
	payloadLen := binary.LittleEndian.Uint32(data[16:20])
	if uint64(keyLen)+uint64(payloadLen) > maxEntryBytes {
		return "", nil, fmt.Errorf("%w: declared size %d+%d exceeds the %d-byte cap", ErrCorrupt, keyLen, payloadLen, maxEntryBytes)
	}
	want := headerLen + int(keyLen) + int(payloadLen)
	if len(data) != want {
		return "", nil, fmt.Errorf("%w: %d bytes, header declares %d", ErrCorrupt, len(data), want)
	}
	var declared [32]byte
	copy(declared[:], data[20:52])
	body := data[headerLen:]
	sum := sha256.Sum256(body)
	if sum != declared {
		return "", nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return string(body[:keyLen]), body[keyLen:], nil
}

// Get returns the payload stored for key, or ok=false on any miss —
// including quarantined corruption and injected read faults. Get never
// returns bytes that failed verification.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	start := s.now()
	defer func() { s.m.ReadSeconds.Observe(s.now().Sub(start).Seconds()) }()
	path := s.path(key)
	if err := faultinject.Check(faultinject.PointDiskRead); err != nil {
		s.logf("plancache: read %s: %v", filepath.Base(path), err)
		s.m.Misses.Inc()
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.logf("plancache: read %s: %v", filepath.Base(path), err)
		}
		s.m.Misses.Inc()
		return nil, false
	}
	storedKey, payload, err := Decode(data)
	if err != nil {
		s.quarantine(path, err)
		s.m.Misses.Inc()
		return nil, false
	}
	if storedKey != key {
		s.quarantine(path, fmt.Errorf("%w: entry holds key %q, looked up as %q", ErrCorrupt, storedKey, key))
		s.m.Misses.Inc()
		return nil, false
	}
	s.m.Hits.Inc()
	return payload, true
}

// Quarantine sets the entry for key aside (e.g. when the caller's own
// payload decode fails even though the envelope verified).
func (s *Store) Quarantine(key string, reason error) {
	s.quarantine(s.path(key), reason)
}

func (s *Store) quarantine(path string, reason error) {
	s.logf("plancache: quarantining %s: %v", filepath.Base(path), reason)
	if err := os.Rename(path, path+quarantineSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		// Renaming failed (e.g. read-only dir): remove instead; if even
		// that fails the entry stays and will re-quarantine on next touch.
		_ = os.Remove(path)
	}
	s.m.Quarantined.Inc()
}

// Put durably stores payload under key: temp file in the same directory,
// fsync, atomic rename. A failure is logged and counted but leaves no
// partial entry behind.
func (s *Store) Put(key string, payload []byte) error {
	start := s.now()
	err := s.put(key, payload)
	s.m.WriteSeconds.Observe(s.now().Sub(start).Seconds())
	if err != nil {
		s.logf("plancache: write %s: %v", filepath.Base(s.path(key)), err)
		s.m.WriteErrors.Inc()
		return err
	}
	s.m.Writes.Inc()
	return nil
}

func (s *Store) put(key string, payload []byte) error {
	if err := faultinject.Check(faultinject.PointDiskWrite); err != nil {
		return err
	}
	s.mu.Lock()
	s.seq++
	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), s.seq))
	s.mu.Unlock()
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	data := Encode(key, payload)
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// Flush fsyncs the directory so completed renames survive a power loss,
// and sweeps any stray temp files a crashed writer left behind. Called on
// drain/close; per-entry writes are already fsynced.
func (s *Store) Flush() error {
	entries, err := os.ReadDir(s.dir)
	if err == nil {
		for _, e := range entries {
			if len(e.Name()) > 4 && e.Name()[:4] == ".tmp" {
				_ = os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Stats returns a snapshot of store activity, read from the same
// instruments the /metrics exposition serves.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.m.Hits.Value(),
		Misses:      s.m.Misses.Value(),
		Writes:      s.m.Writes.Value(),
		WriteErrors: s.m.WriteErrors.Value(),
		Quarantined: s.m.Quarantined.Value(),
	}
}
