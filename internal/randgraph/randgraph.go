// Package randgraph generates deterministic random computation graphs — the
// scenario-fuzzing workloads behind the conformance harness, the fuzz
// targets, and the opt-in corpus augmentation.
//
// The hand-built families in internal/workload mirror the paper's corpus
// (Sec. 5.1); this package instead covers the space the corpus does not: it
// draws structure itself at random, within four families chosen to stress
// distinct partitioner behaviors:
//
//   - FamilyLayered: dense layer-to-layer wiring with random fan-in, the
//     generic feed-forward shape;
//   - FamilyBranchy: inception-style blocks of parallel branches between
//     split and concat points, stressing the triangle-dependency constraint;
//   - FamilyDiamond: chains of diamonds (fork into two unequal-length paths
//     that re-merge), stressing acyclic-dataflow placement across stages;
//   - FamilyMoE: mixture-of-experts layers with heavily skewed expert sizes,
//     stressing per-chip memory and load balance on heterogeneous packages.
//
// Determinism contract: every random draw derives from Config.Seed via the
// splitmix64 derivation in internal/parallel (parallel.Seed/parallel.Rng), so
// a (family, nodes, seed) triple names one graph, bit-for-bit, across
// processes and worker counts. A conformance violation found on a generated
// graph is therefore reproducible from its seed alone.
//
//mcmlint:deterministic
package randgraph

import (
	"fmt"
	"math/rand"

	"mcmpart/internal/graph"
	"mcmpart/internal/parallel"
)

// Family selects a structural family of random graphs.
type Family string

// The generated families.
const (
	FamilyLayered Family = "layered"
	FamilyBranchy Family = "branchy"
	FamilyDiamond Family = "diamond"
	FamilyMoE     Family = "moe"
)

// Families lists every family in generation rotation order.
func Families() []Family {
	return []Family{FamilyLayered, FamilyBranchy, FamilyDiamond, FamilyMoE}
}

// Config parameterizes one generated graph.
type Config struct {
	// Family selects the structural family (default FamilyLayered).
	Family Family
	// Nodes is the target node count. Generators hit it exactly: structure
	// is drawn first and the tail is padded or trimmed with chain nodes.
	// Default 48; values beyond 1000 are supported (generation is O(V+E)).
	Nodes int
	// Seed derives every random draw via the splitmix64 derivation in
	// internal/parallel. Two configs differing only in Seed generate
	// independent graphs; identical configs generate identical graphs.
	Seed int64
	// MaxParamBytes caps the graph's total weight footprint (default
	// 24 MiB), keeping most generated graphs placeable on the small dev
	// packages so conformance sweeps exercise real plans, not just
	// no-fit errors. Beyond 1000 nodes the default scales linearly with
	// the node count (24 MiB per 1000 nodes), so large-scale graphs keep a
	// realistic per-node weight footprint instead of degenerating into
	// all-but-weightless nodes that trivially fit one chip; graphs of at
	// most 1000 nodes are unaffected, preserving existing seed streams.
	MaxParamBytes int64
}

func (c Config) withDefaults() Config {
	if c.Family == "" {
		c.Family = FamilyLayered
	}
	if c.Nodes <= 0 {
		c.Nodes = 48
	}
	if c.Nodes < 8 {
		c.Nodes = 8 // the block structure of every family needs a few nodes
	}
	if c.MaxParamBytes <= 0 {
		c.MaxParamBytes = 24 << 20
		if c.Nodes > 1000 {
			c.MaxParamBytes = int64(c.Nodes) * (24 << 20) / 1000
		}
	}
	return c
}

// Generate builds one random graph from the config. The result always
// passes graph.Validate; an internal inconsistency is a generator bug and
// panics, matching the internal/workload builders.
func Generate(cfg Config) *graph.Graph {
	cfg = cfg.withDefaults()
	var g *graph.Graph
	switch cfg.Family {
	case FamilyLayered:
		g = genLayered(cfg)
	case FamilyBranchy:
		g = genBranchy(cfg)
	case FamilyDiamond:
		g = genDiamond(cfg)
	case FamilyMoE:
		g = genMoE(cfg)
	default:
		panic(fmt.Sprintf("randgraph: unknown family %q", cfg.Family))
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("randgraph: generator produced invalid graph %s: %v", g.Name(), err))
	}
	return g
}

// Sample returns the i-th graph of the deterministic stream named by seed:
// families rotate and per-graph shape parameters are drawn from
// parallel.Seed(seed, i). It is the shared scenario source of the
// conformance sweep, mcmgen -what random, and the corpus augmentation.
func Sample(seed int64, i int) *graph.Graph {
	rng := parallel.Rng(seed, i)
	fams := Families()
	fam := fams[i%len(fams)]
	nodes := 24 + rng.Intn(72) // 24..95: corpus-scale, cheap to evaluate
	return Generate(Config{
		Family: fam,
		Nodes:  nodes,
		Seed:   parallel.Seed(seed, i),
	})
}

// gen carries shared generator state: the graph under construction, the RNG,
// and the running parameter budget.
type gen struct {
	g           *graph.Graph
	rng         *randSource
	paramBudget int64
	// paramScale multiplies the next weight draws; the MoE family uses it
	// to concentrate parameters on the hot expert.
	paramScale int64
}

// randSource wraps the derived RNG with the range helpers the generators
// share.
type randSource struct {
	r *rand.Rand
}

func (s *randSource) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return s.r.Intn(n)
}

func (s *randSource) rangeInt(lo, hi int) int { return lo + s.intn(hi-lo+1) }

func newGen(cfg Config, kind string) *gen {
	name := fmt.Sprintf("rand-%s-%d-%d", kind, cfg.Nodes, uint64(cfg.Seed)%1_000_000)
	return &gen{
		g:           graph.New(name),
		rng:         &randSource{r: parallel.Rng(cfg.Seed, 0)},
		paramBudget: cfg.MaxParamBytes,
		paramScale:  1,
	}
}

// computeOps are the op kinds carrying real compute (weights + scaled
// FLOPs in addOp), with draw weights that mirror the corpus mix (dense
// contractions dominate).
var computeOps = []graph.OpKind{
	graph.OpMatMul, graph.OpMatMul, graph.OpConv, graph.OpConv,
	graph.OpDepthwiseConv, graph.OpEmbedding,
}

// cheapOps are memory-bound glue op kinds (priced by output size alone).
var cheapOps = []graph.OpKind{
	graph.OpActivation, graph.OpElementwise, graph.OpNorm,
	graph.OpPool, graph.OpSoftmax, graph.OpReduce,
}

// addOp appends one op with plausible costs for its kind, drawing output
// size from the given bracket and charging weights against the parameter
// budget. Inputs are wired with the producer's output bytes.
func (n *gen) addOp(op graph.OpKind, outBytes int64, inputs ...int) int {
	var flops float64
	var params int64
	switch op {
	case graph.OpMatMul, graph.OpConv, graph.OpDepthwiseConv:
		params = n.paramScale * int64(n.rng.rangeInt(16, 512)) << 10 // 16 KiB .. 512 KiB
		if params > n.paramBudget {
			params = n.paramBudget
		}
		n.paramBudget -= params
		// FLOPs scale as (weights read) x (activations produced): a dense
		// contraction touches every weight once per output tile.
		flops = float64(params) * float64(outBytes) / 256
	case graph.OpEmbedding:
		params = int64(n.rng.rangeInt(64, 1024)) << 10
		if params > n.paramBudget {
			params = n.paramBudget
		}
		n.paramBudget -= params
		flops = float64(outBytes)
	case graph.OpInput, graph.OpConst, graph.OpReshape, graph.OpConcat,
		graph.OpSplit, graph.OpOutput:
		flops = 0
	default: // activation / elementwise / norm / pool / softmax / reduce
		flops = float64(outBytes)
	}
	id := n.g.AddNode(graph.Node{
		Name:        fmt.Sprintf("%s%d", op, n.g.NumNodes()),
		Op:          op,
		FLOPs:       flops,
		ParamBytes:  params,
		OutputBytes: outBytes,
	})
	for _, in := range inputs {
		n.g.MustAddEdge(in, id, n.g.Node(in).OutputBytes)
	}
	return id
}

// outBytes draws an activation size: 4 KiB .. 256 KiB, log-uniform-ish.
func (n *gen) outBytes() int64 {
	return int64(4<<n.rng.intn(7)) << 10
}

// pad extends the graph with a chain of cheap ops hanging off tail until the
// node count reaches target, returning the new tail. Generators use it to
// hit Config.Nodes exactly regardless of how block structure divided.
func (n *gen) pad(tail, target int) int {
	for n.g.NumNodes() < target {
		op := cheapOps[n.rng.intn(len(cheapOps))]
		if n.g.NumNodes() == target-1 {
			op = graph.OpOutput
		}
		tail = n.addOp(op, n.g.Node(tail).OutputBytes, tail)
	}
	return tail
}

// genLayered builds L layers of W nodes; every node draws 1..3 predecessors
// from the previous layer, so cross-layer wiring density varies per draw.
func genLayered(cfg Config) *graph.Graph {
	n := newGen(cfg, "layered")
	width := n.rng.rangeInt(2, 6)
	in := n.addOp(graph.OpInput, n.outBytes())
	prev := []int{in}
	// Reserve one node for the output and leave room for padding.
	for n.g.NumNodes() < cfg.Nodes-width-1 {
		layer := make([]int, 0, width)
		for w := 0; w < width && n.g.NumNodes() < cfg.Nodes-1; w++ {
			op := computeOps[n.rng.intn(len(computeOps))]
			if n.rng.intn(3) == 0 {
				op = cheapOps[n.rng.intn(len(cheapOps))]
			}
			fanin := n.rng.rangeInt(1, 3)
			if fanin > len(prev) {
				fanin = len(prev)
			}
			// Distinct predecessors: rotate from a random start.
			start := n.rng.intn(len(prev))
			inputs := make([]int, 0, fanin)
			for k := 0; k < fanin; k++ {
				inputs = append(inputs, prev[(start+k)%len(prev)])
			}
			layer = append(layer, n.addOp(op, n.outBytes(), inputs...))
		}
		prev = layer
	}
	tail := n.addOp(graph.OpConcat, n.outBytes(), prev...)
	n.pad(tail, cfg.Nodes)
	return n.g
}

// genBranchy builds inception-style blocks: split -> B parallel branch
// chains -> concat, repeated until the budget is spent.
func genBranchy(cfg Config) *graph.Graph {
	n := newGen(cfg, "branchy")
	tail := n.addOp(graph.OpInput, n.outBytes())
	for n.g.NumNodes() < cfg.Nodes-2 {
		branches := n.rng.rangeInt(2, 4)
		depth := n.rng.rangeInt(1, 3)
		need := branches*depth + 2 // split + branches + concat
		if n.g.NumNodes()+need > cfg.Nodes {
			break
		}
		split := n.addOp(graph.OpSplit, n.g.Node(tail).OutputBytes, tail)
		ends := make([]int, 0, branches)
		for b := 0; b < branches; b++ {
			cur := split
			for d := 0; d < depth; d++ {
				op := computeOps[n.rng.intn(len(computeOps))]
				cur = n.addOp(op, n.outBytes(), cur)
			}
			ends = append(ends, cur)
		}
		tail = n.addOp(graph.OpConcat, n.outBytes(), ends...)
	}
	n.pad(tail, cfg.Nodes)
	return n.g
}

// genDiamond builds a pipeline of diamonds: each stage forks into two paths
// of unequal random length that re-merge, so stage boundaries are natural
// cut points but the arms tempt the partitioner into triangle violations.
func genDiamond(cfg Config) *graph.Graph {
	n := newGen(cfg, "diamond")
	tail := n.addOp(graph.OpInput, n.outBytes())
	for {
		long := n.rng.rangeInt(2, 5)
		short := n.rng.rangeInt(1, long)
		need := long + short + 1 // two arms + merge
		if n.g.NumNodes()+need > cfg.Nodes-1 {
			break
		}
		a := tail
		for d := 0; d < long; d++ {
			a = n.addOp(computeOps[n.rng.intn(len(computeOps))], n.outBytes(), a)
		}
		b := tail
		for d := 0; d < short; d++ {
			b = n.addOp(cheapOps[n.rng.intn(len(cheapOps))], n.outBytes(), b)
		}
		tail = n.addOp(graph.OpElementwise, n.outBytes(), a, b)
	}
	n.pad(tail, cfg.Nodes)
	return n.g
}

// genMoE builds mixture-of-experts layers: a router gates E expert chains
// whose sizes are heavily skewed (one expert draws most of the parameter
// budget), then a combine node merges them — the imbalanced-placement
// scenario homogeneous corpora never produce.
func genMoE(cfg Config) *graph.Graph {
	n := newGen(cfg, "moe")
	tail := n.addOp(graph.OpEmbedding, n.outBytes())
	for {
		experts := n.rng.rangeInt(2, 4)
		need := 1 + experts*2 + 1 // router + experts (2 nodes each) + combine
		if n.g.NumNodes()+need > cfg.Nodes-1 {
			break
		}
		router := n.addOp(graph.OpSoftmax, n.g.Node(tail).OutputBytes, tail)
		hot := n.rng.intn(experts) // the skewed (oversized) expert
		ends := make([]int, 0, experts)
		for e := 0; e < experts; e++ {
			out := n.outBytes()
			// Skew: the hot expert's projections draw 8x the weights,
			// concentrating most of the budget on one placement decision.
			if e == hot {
				n.paramScale = 8
			}
			up := n.addOp(graph.OpMatMul, out, router)
			down := n.addOp(graph.OpMatMul, out, up)
			n.paramScale = 1
			ends = append(ends, down)
		}
		tail = n.addOp(graph.OpElementwise, n.outBytes(), ends...)
	}
	n.pad(tail, cfg.Nodes)
	return n.g
}
