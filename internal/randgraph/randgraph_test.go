package randgraph

import (
	"strings"
	"testing"
)

// TestGenerateIsDeterministic pins the determinism contract: identical
// configs generate byte-identical graphs (same fingerprint, same name),
// and different seeds generate different graphs.
func TestGenerateIsDeterministic(t *testing.T) {
	for _, fam := range Families() {
		cfg := Config{Family: fam, Nodes: 64, Seed: 7}
		a, b := Generate(cfg), Generate(cfg)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: same config generated different graphs", fam)
		}
		if a.Name() != b.Name() {
			t.Errorf("%s: same config generated different names %q vs %q", fam, a.Name(), b.Name())
		}
		cfg.Seed = 8
		if c := Generate(cfg); c.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s: different seeds generated the same graph", fam)
		}
	}
}

// TestGenerateHitsNodeCountExactly checks the generators honor Config.Nodes
// across families and sizes, including the 1k+ scale the conformance sweep
// and corpus augmentation rely on.
func TestGenerateHitsNodeCountExactly(t *testing.T) {
	for _, fam := range Families() {
		for _, nodes := range []int{8, 31, 48, 200, 1024} {
			g := Generate(Config{Family: fam, Nodes: nodes, Seed: 3})
			if g.NumNodes() != nodes {
				t.Errorf("%s nodes=%d: generated %d nodes", fam, nodes, g.NumNodes())
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s nodes=%d: invalid graph: %v", fam, nodes, err)
			}
		}
	}
}

// TestGenerateRespectsParamBudget checks the weight cap that keeps generated
// graphs placeable on the small dev packages.
func TestGenerateRespectsParamBudget(t *testing.T) {
	for _, fam := range Families() {
		cfg := Config{Family: fam, Nodes: 512, Seed: 11, MaxParamBytes: 4 << 20}
		if g := Generate(cfg); g.TotalParamBytes() > cfg.MaxParamBytes {
			t.Errorf("%s: %d param bytes exceed the %d budget", fam, g.TotalParamBytes(), cfg.MaxParamBytes)
		}
	}
}

// TestFamilyStructure spot-checks each family's signature shape.
func TestFamilyStructure(t *testing.T) {
	// Branchy and MoE must contain nodes with fan-out > 1 (splits/routers)
	// and fan-in > 1 (concat/combine); diamond must re-merge; layered must
	// have cross-layer fan-in.
	for _, fam := range []Family{FamilyBranchy, FamilyDiamond, FamilyMoE, FamilyLayered} {
		g := Generate(Config{Family: fam, Nodes: 96, Seed: 5})
		maxOut, maxIn := 0, 0
		for v := 0; v < g.NumNodes(); v++ {
			if d := g.OutDegree(v); d > maxOut {
				maxOut = d
			}
			if d := g.InDegree(v); d > maxIn {
				maxIn = d
			}
		}
		if maxOut < 2 {
			t.Errorf("%s: no node fans out (max out-degree %d)", fam, maxOut)
		}
		if maxIn < 2 {
			t.Errorf("%s: no node merges (max in-degree %d)", fam, maxIn)
		}
		if !strings.Contains(g.Name(), string(fam)) {
			t.Errorf("%s: name %q does not carry the family", fam, g.Name())
		}
	}
}

// TestMoEIsSkewed checks the MoE family's defining property: parameter mass
// concentrates on few nodes (the hot experts), unlike the uniform families.
func TestMoEIsSkewed(t *testing.T) {
	g := Generate(Config{Family: FamilyMoE, Nodes: 128, Seed: 9})
	var max, total int64
	for _, nd := range g.Nodes() {
		total += nd.ParamBytes
		if nd.ParamBytes > max {
			max = nd.ParamBytes
		}
	}
	if total == 0 {
		t.Fatal("MoE graph has no parameters")
	}
	if frac := float64(max) / float64(total); frac < 0.05 {
		t.Errorf("heaviest node holds only %.1f%% of parameters; expected a skewed expert", 100*frac)
	}
}

// TestSampleStreamIsDeterministicAndDiverse pins the Sample stream the
// conformance sweep reproduces violations from: element i is a pure function
// of (seed, i), families rotate, and distinct indices differ.
func TestSampleStreamIsDeterministicAndDiverse(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		a, b := Sample(42, i), Sample(42, i)
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("Sample(42,%d) is not deterministic", i)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Sample(42,%d) invalid: %v", i, err)
		}
		if seen[a.Fingerprint()] {
			t.Fatalf("Sample(42,%d) duplicates an earlier graph", i)
		}
		seen[a.Fingerprint()] = true
		wantFam := Families()[i%len(Families())]
		if !strings.Contains(a.Name(), string(wantFam)) {
			t.Errorf("Sample(42,%d) = %q, want family %s", i, a.Name(), wantFam)
		}
	}
	if g := Sample(43, 0); g.Fingerprint() == Sample(42, 0).Fingerprint() {
		t.Error("different stream seeds produced the same first graph")
	}
}

// TestGenerateUnknownFamilyPanics pins the generator-bug contract.
func TestGenerateUnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with an unknown family must panic")
		}
	}()
	Generate(Config{Family: "nosuch", Nodes: 16, Seed: 1})
}

// TestGeneratedGraphsAreDAGsWithMonotoneEdges sanity-checks that generators
// only add forward edges (node IDs are created in topological order), the
// property the conformance harness relies on to build monotone partitions.
func TestGeneratedGraphsAreDAGsWithMonotoneEdges(t *testing.T) {
	for _, fam := range Families() {
		g := Generate(Config{Family: fam, Nodes: 100, Seed: 13})
		for _, e := range g.Edges() {
			if e.From >= e.To {
				t.Fatalf("%s: edge (%d,%d) is not ID-monotone", fam, e.From, e.To)
			}
			if e.Bytes <= 0 {
				t.Fatalf("%s: edge (%d,%d) carries %d bytes", fam, e.From, e.To, e.Bytes)
			}
		}
	}
}
