package randgraph

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strings"
	"testing"
	"time"

	"mcmpart/internal/graph"
)

// TestGenerateIsDeterministic pins the determinism contract: identical
// configs generate byte-identical graphs (same fingerprint, same name),
// and different seeds generate different graphs.
func TestGenerateIsDeterministic(t *testing.T) {
	for _, fam := range Families() {
		cfg := Config{Family: fam, Nodes: 64, Seed: 7}
		a, b := Generate(cfg), Generate(cfg)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: same config generated different graphs", fam)
		}
		if a.Name() != b.Name() {
			t.Errorf("%s: same config generated different names %q vs %q", fam, a.Name(), b.Name())
		}
		cfg.Seed = 8
		if c := Generate(cfg); c.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s: different seeds generated the same graph", fam)
		}
	}
}

// TestGenerateHitsNodeCountExactly checks the generators honor Config.Nodes
// across families and sizes, including the 1k+ scale the conformance sweep
// and corpus augmentation rely on.
func TestGenerateHitsNodeCountExactly(t *testing.T) {
	for _, fam := range Families() {
		for _, nodes := range []int{8, 31, 48, 200, 1024} {
			g := Generate(Config{Family: fam, Nodes: nodes, Seed: 3})
			if g.NumNodes() != nodes {
				t.Errorf("%s nodes=%d: generated %d nodes", fam, nodes, g.NumNodes())
			}
			if err := g.Validate(); err != nil {
				t.Errorf("%s nodes=%d: invalid graph: %v", fam, nodes, err)
			}
		}
	}
}

// TestGenerateRespectsParamBudget checks the weight cap that keeps generated
// graphs placeable on the small dev packages.
func TestGenerateRespectsParamBudget(t *testing.T) {
	for _, fam := range Families() {
		cfg := Config{Family: fam, Nodes: 512, Seed: 11, MaxParamBytes: 4 << 20}
		if g := Generate(cfg); g.TotalParamBytes() > cfg.MaxParamBytes {
			t.Errorf("%s: %d param bytes exceed the %d budget", fam, g.TotalParamBytes(), cfg.MaxParamBytes)
		}
	}
}

// TestFamilyStructure spot-checks each family's signature shape.
func TestFamilyStructure(t *testing.T) {
	// Branchy and MoE must contain nodes with fan-out > 1 (splits/routers)
	// and fan-in > 1 (concat/combine); diamond must re-merge; layered must
	// have cross-layer fan-in.
	for _, fam := range []Family{FamilyBranchy, FamilyDiamond, FamilyMoE, FamilyLayered} {
		g := Generate(Config{Family: fam, Nodes: 96, Seed: 5})
		maxOut, maxIn := 0, 0
		for v := 0; v < g.NumNodes(); v++ {
			if d := g.OutDegree(v); d > maxOut {
				maxOut = d
			}
			if d := g.InDegree(v); d > maxIn {
				maxIn = d
			}
		}
		if maxOut < 2 {
			t.Errorf("%s: no node fans out (max out-degree %d)", fam, maxOut)
		}
		if maxIn < 2 {
			t.Errorf("%s: no node merges (max in-degree %d)", fam, maxIn)
		}
		if !strings.Contains(g.Name(), string(fam)) {
			t.Errorf("%s: name %q does not carry the family", fam, g.Name())
		}
	}
}

// TestMoEIsSkewed checks the MoE family's defining property: parameter mass
// concentrates on few nodes (the hot experts), unlike the uniform families.
func TestMoEIsSkewed(t *testing.T) {
	g := Generate(Config{Family: FamilyMoE, Nodes: 128, Seed: 9})
	var max, total int64
	for _, nd := range g.Nodes() {
		total += nd.ParamBytes
		if nd.ParamBytes > max {
			max = nd.ParamBytes
		}
	}
	if total == 0 {
		t.Fatal("MoE graph has no parameters")
	}
	if frac := float64(max) / float64(total); frac < 0.05 {
		t.Errorf("heaviest node holds only %.1f%% of parameters; expected a skewed expert", 100*frac)
	}
}

// TestSampleStreamIsDeterministicAndDiverse pins the Sample stream the
// conformance sweep reproduces violations from: element i is a pure function
// of (seed, i), families rotate, and distinct indices differ.
func TestSampleStreamIsDeterministicAndDiverse(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		a, b := Sample(42, i), Sample(42, i)
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("Sample(42,%d) is not deterministic", i)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Sample(42,%d) invalid: %v", i, err)
		}
		if seen[a.Fingerprint()] {
			t.Fatalf("Sample(42,%d) duplicates an earlier graph", i)
		}
		seen[a.Fingerprint()] = true
		wantFam := Families()[i%len(Families())]
		if !strings.Contains(a.Name(), string(wantFam)) {
			t.Errorf("Sample(42,%d) = %q, want family %s", i, a.Name(), wantFam)
		}
	}
	if g := Sample(43, 0); g.Fingerprint() == Sample(42, 0).Fingerprint() {
		t.Error("different stream seeds produced the same first graph")
	}
}

// TestGenerateUnknownFamilyPanics pins the generator-bug contract.
func TestGenerateUnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with an unknown family must panic")
		}
	}()
	Generate(Config{Family: "nosuch", Nodes: 16, Seed: 1})
}

// TestGeneratedGraphsAreDAGsWithMonotoneEdges sanity-checks that generators
// only add forward edges (node IDs are created in topological order), the
// property the conformance harness relies on to build monotone partitions.
func TestGeneratedGraphsAreDAGsWithMonotoneEdges(t *testing.T) {
	for _, fam := range Families() {
		g := Generate(Config{Family: fam, Nodes: 100, Seed: 13})
		for _, e := range g.Edges() {
			if e.From >= e.To {
				t.Fatalf("%s: edge (%d,%d) is not ID-monotone", fam, e.From, e.To)
			}
			if e.Bytes <= 0 {
				t.Fatalf("%s: edge (%d,%d) carries %d bytes", fam, e.From, e.To, e.Bytes)
			}
		}
	}
}

// structHash is a cheap FNV-1a digest over a graph's full structure —
// node counts, op kinds, FLOPs bits, weights, and edges — used instead of
// graph.Fingerprint for the 100k-scale tests (canonicalization cost is the
// fingerprint's own benchmark's problem, not this package's).
func structHash(g *graph.Graph) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	put(uint64(g.NumNodes()))
	for _, nd := range g.Nodes() {
		put(uint64(nd.Op))
		put(math.Float64bits(nd.FLOPs))
		put(uint64(nd.ParamBytes))
	}
	put(uint64(g.NumEdges()))
	for _, e := range g.Edges() {
		put(uint64(e.From))
		put(uint64(e.To))
		put(uint64(e.Bytes))
	}
	return h.Sum64()
}

// TestHundredKScaleExactCountAndBudget is the 100k-node scale contract the
// analytic fast path plans against: every family hits the node count
// exactly, validates, generates within a CI-friendly time budget, and
// carries the linearly scaled weight budget (so large graphs force real
// multi-chip splits instead of trivially fitting one chip).
func TestHundredKScaleExactCountAndBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node generation in -short mode")
	}
	const nodes = 100_000
	wantBudget := int64(nodes) * (24 << 20) / 1000
	for _, fam := range Families() {
		start := time.Now()
		g := Generate(Config{Family: fam, Nodes: nodes, Seed: 42})
		elapsed := time.Since(start)
		if g.NumNodes() != nodes {
			t.Errorf("%s: generated %d nodes, want %d", fam, g.NumNodes(), nodes)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", fam, err)
		}
		if tp := g.TotalParamBytes(); tp > wantBudget {
			t.Errorf("%s: total weights %d exceed the scaled budget %d", fam, tp, wantBudget)
		} else if tp < wantBudget/8 {
			t.Errorf("%s: total weights %d degenerate vs scaled budget %d — scaling regressed", fam, tp, wantBudget)
		}
		// Generation is O(V+E); anything past 10s on a 100k graph is a
		// complexity regression, not noise (observed: well under 1s).
		if elapsed > 10*time.Second {
			t.Errorf("%s: generating 100k nodes took %v", fam, elapsed)
		}
	}
}

// TestHundredKScaleDeterministic pins byte-identical regeneration at the
// 100k scale, where any hidden map-order or global-RNG dependence would
// have 100k chances per graph to surface.
func TestHundredKScaleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node generation in -short mode")
	}
	const nodes = 100_000
	for _, fam := range Families() {
		a := Generate(Config{Family: fam, Nodes: nodes, Seed: 42})
		b := Generate(Config{Family: fam, Nodes: nodes, Seed: 42})
		if a.Name() != b.Name() {
			t.Errorf("%s: names differ: %q vs %q", fam, a.Name(), b.Name())
		}
		if structHash(a) != structHash(b) {
			t.Errorf("%s: same config generated structurally different 100k graphs", fam)
		}
		if c := Generate(Config{Family: fam, Nodes: nodes, Seed: 43}); structHash(c) == structHash(a) {
			t.Errorf("%s: different seeds generated the same 100k graph", fam)
		}
	}
}
