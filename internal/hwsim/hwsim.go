// Package hwsim simulates the paper's evaluation platform: a multi-chip TPU
// package running a partitioned tensor graph as a pipeline. It stands in for
// the real hardware of Sec. 5 (proprietary; see DESIGN.md) and plays two
// roles:
//
//   - it measures T(G,f), the steady-state throughput of a partition,
//     modeling per-operator efficiencies, per-op dispatch overhead, and
//     per-link contention over the interconnect topology's routes that the
//     analytical cost model ignores;
//   - it decides H(G,f), the dynamic constraint: the compiler backend's
//     list schedule must fit each chip's SRAM, or the partition fails with
//     zero throughput, exactly as the paper's platform behaves ("our
//     evaluation platform returns a zero throughput when it evaluates an
//     invalid partition").
//
// A partition that needs a transfer the topology cannot route (a backwards
// edge on the uni-directional ring) is rejected with an explicit FailReason
// rather than silently priced at zero — the analytical cost model reaches
// the same verdict on the same partition, so the two evaluation
// environments agree on which partitions are legal.
//
// Measurements carry deterministic, seed-derived noise so repeated runs
// reproduce the paper's mean-and-standard-deviation methodology without
// real nondeterminism.
//
//mcmlint:deterministic
package hwsim

import (
	"fmt"
	"hash/fnv"
	"math"

	"mcmpart/internal/eval"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/sched"
)

// opEfficiency is the fraction of a chiplet's peak FLOP rate each operator
// kind sustains. Dense contractions run near peak; memory-bound elementwise
// and normalization traffic runs far below it; data-movement ops cost only
// dispatch overhead. The analytical model's flat-rate assumption is one of
// the two gaps (with memory) between prediction and measurement.
var opEfficiency = [graph.NumOpKinds]float64{
	graph.OpInput:         0,
	graph.OpConst:         0,
	graph.OpConv:          0.85,
	graph.OpDepthwiseConv: 0.45,
	graph.OpMatMul:        0.85,
	graph.OpPool:          0.10,
	graph.OpActivation:    0.08,
	graph.OpElementwise:   0.08,
	graph.OpNorm:          0.08,
	graph.OpSoftmax:       0.06,
	graph.OpEmbedding:     0.25,
	graph.OpReshape:       0,
	graph.OpConcat:        0,
	graph.OpSplit:         0,
	graph.OpReduce:        0.08,
	graph.OpOutput:        0,
}

// OpEff returns the fraction of peak FLOP rate the simulator credits to the
// operator kind (0 for pure data-movement ops, which cost only dispatch
// overhead). It is exported so the conformance harness can inject the
// simulator's cost semantics into the analytic lower bound
// (analyze.CostParams) without internal/analyze ever importing hwsim.
func OpEff(op graph.OpKind) float64 {
	if int(op) >= 0 && int(op) < len(opEfficiency) {
		return opEfficiency[op]
	}
	return 0
}

// DefaultOpOverhead is the per-op dispatch time Options.OpOverhead defaults
// to.
const DefaultOpOverhead = 200e-9

// Options tune the simulator.
type Options struct {
	// Seed derives the deterministic measurement noise. Different seeds
	// model different "runs" of the same binary on hardware.
	Seed int64
	// NoiseStd is the relative standard deviation of measurement noise
	// (default 0.02).
	NoiseStd float64
	// PipelineFactor multiplies peak activation memory to model
	// steady-state pipeline buffering (default 1.5).
	PipelineFactor float64
	// OpOverhead is the fixed per-op dispatch time in seconds
	// (default 200ns).
	OpOverhead float64
	// PressureKnee and PressureSlope model allocator pressure: a chip
	// whose SRAM utilization exceeds the knee runs its compute slower by
	// slope * (utilization - knee). This is one of the dynamic effects
	// the analytical cost model cannot see (Sec. 5.4's false positives:
	// partitions that look fast analytically but sit at the memory edge).
	// Defaults: knee 0.75, slope 2.
	PressureKnee, PressureSlope float64
}

func (o Options) withDefaults() Options {
	if o.NoiseStd == 0 {
		o.NoiseStd = 0.02
	}
	if o.PipelineFactor == 0 {
		o.PipelineFactor = 1.5
	}
	if o.OpOverhead == 0 {
		o.OpOverhead = DefaultOpOverhead
	}
	if o.PressureKnee == 0 {
		o.PressureKnee = 0.75
	}
	if o.PressureSlope == 0 {
		o.PressureSlope = 2
	}
	return o
}

// Simulator evaluates partitions on a simulated MCM package.
type Simulator struct {
	pkg  *mcm.Package
	topo mcm.Topology
	opts Options
}

// Simulator is one of the two evaluation environments of the paper's
// pipeline.
var _ eval.Evaluator = (*Simulator)(nil)

// New returns a simulator of the package. It panics on a package whose
// topology cannot be built; validate packages before simulating them.
func New(pkg *mcm.Package, opts Options) *Simulator {
	topo, err := pkg.Topo()
	if err != nil {
		panic("hwsim: " + err.Error())
	}
	return &Simulator{pkg: pkg, topo: topo, opts: opts.withDefaults()}
}

// Package returns the simulated package.
func (s *Simulator) Package() *mcm.Package { return s.pkg }

// Result is the outcome of running one partition.
type Result struct {
	// Valid reports H(G,f): false means the compiler backend rejected the
	// partition (today: a chip's working set exceeds SRAM).
	Valid bool
	// FailReason describes why Valid is false.
	FailReason string
	// Interval is the steady-state pipeline interval in seconds.
	Interval float64
	// Throughput is 1/Interval (0 when invalid).
	Throughput float64
	// ChipBusy and LinkBusy are per-chip compute and per-directed-link
	// transfer times per interval; the bottleneck defines the interval.
	// LinkBusy is indexed by the topology's link enumeration (on the
	// default uni-directional ring, link l joins chips l and l+1).
	ChipBusy []float64
	LinkBusy []float64
	// PeakMem is each chip's SRAM demand in bytes.
	PeakMem []int64
}

// opTime returns the simulated execution time of one node on a chip.
func (s *Simulator) opTime(n graph.Node, chip int) float64 {
	eff := 0.0
	if int(n.Op) < len(opEfficiency) {
		eff = opEfficiency[n.Op]
	}
	t := s.opts.OpOverhead
	if eff > 0 && n.FLOPs > 0 {
		t += n.FLOPs / (s.pkg.ChipFLOPs(chip) * eff)
	}
	return t
}

// Evaluate runs the partition without measurement noise. The partition must
// already satisfy the static constraints; the simulator checks only the
// dynamic ones (it is the stage after the solver in the compilation flow).
func (s *Simulator) Evaluate(g *graph.Graph, p partition.Partition) Result {
	chips := s.pkg.Chips
	res := Result{
		ChipBusy: make([]float64, chips),
		PeakMem:  make([]int64, chips),
	}
	scheds, err := sched.Compute(g, p, chips)
	if err != nil {
		res.FailReason = err.Error()
		return res
	}
	// Static transfer legality: every cut edge must be routable on the
	// interconnect. On the uni-directional ring a backwards (dst < src)
	// edge has no route; rejecting it here keeps the simulator in
	// agreement with the analytical cost model, which prices the same
	// partition as illegal, instead of silently charging it nothing.
	for _, e := range g.Edges() {
		a, b := p[e.From], p[e.To]
		if a != b {
			if _, ok := s.topo.Hops(a, b); !ok {
				res.FailReason = fmt.Sprintf(
					"illegal transfer: no %s route from chip %d to chip %d (edge %d -> %d)",
					s.topo.Kind(), a, b, e.From, e.To)
				return res
			}
		}
	}
	// Dynamic constraint: every chip's schedule must fit its SRAM.
	for c := range scheds {
		res.PeakMem[c] = scheds[c].PeakBytes(s.opts.PipelineFactor)
		if res.PeakMem[c] > s.pkg.ChipSRAM(c) {
			res.FailReason = "out of memory on chip"
			return res
		}
	}
	// Compute time per chip, slowed by allocator pressure near the
	// memory limit.
	for c := range scheds {
		for _, v := range scheds[c].Ops {
			res.ChipBusy[c] += s.opTime(g.Node(v), c)
		}
		util := float64(res.PeakMem[c]) / float64(s.pkg.ChipSRAM(c))
		if util > s.opts.PressureKnee {
			res.ChipBusy[c] *= 1 + s.opts.PressureSlope*(util-s.opts.PressureKnee)
		}
	}
	// Link contention: a transfer from chip a to chip b occupies every
	// directed link on its route for its serialization time.
	if nl := s.topo.NumLinks(); nl > 0 {
		res.LinkBusy = make([]float64, nl)
		var route []int
		for _, e := range g.Edges() {
			a, b := p[e.From], p[e.To]
			if a == b {
				continue
			}
			per := s.pkg.LinkLatency + float64(e.Bytes)/s.pkg.LinkBandwidth
			route, _ = s.topo.AppendRoute(route[:0], a, b)
			for _, l := range route {
				res.LinkBusy[l] += per
			}
		}
	}
	// The pipeline interval is set by the busiest resource.
	interval := 0.0
	for _, t := range res.ChipBusy {
		if t > interval {
			interval = t
		}
	}
	for _, t := range res.LinkBusy {
		if t > interval {
			interval = t
		}
	}
	if interval <= 0 {
		res.FailReason = "empty graph"
		return res
	}
	res.Valid = true
	res.Interval = interval
	res.Throughput = 1 / interval
	return res
}

// Measure runs the partition once with deterministic measurement noise, as
// one "hardware run". run distinguishes repeated measurements of the same
// partition.
func (s *Simulator) Measure(g *graph.Graph, p partition.Partition, run int) Result {
	res := s.Evaluate(g, p)
	if !res.Valid {
		return res
	}
	noise := 1 + s.opts.NoiseStd*gaussian(s.noiseSeed(p, run))
	if noise < 0.5 {
		noise = 0.5
	}
	res.Interval *= noise
	res.Throughput = 1 / res.Interval
	return res
}

// MeasureN runs the partition the given number of times and returns the
// mean and standard deviation of throughput, mirroring the paper's
// five-run methodology. Invalid partitions return (0, 0, false).
func (s *Simulator) MeasureN(g *graph.Graph, p partition.Partition, runs int) (mean, std float64, valid bool) {
	if runs <= 0 {
		runs = 1
	}
	var sum, sumSq float64
	for r := 0; r < runs; r++ {
		res := s.Measure(g, p, r)
		if !res.Valid {
			return 0, 0, false
		}
		sum += res.Throughput
		sumSq += res.Throughput * res.Throughput
	}
	mean = sum / float64(runs)
	variance := sumSq/float64(runs) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance), true
}

// EvaluateThroughput implements the evaluation-environment contract shared
// with the analytical model: measured throughput (run 0) and dynamic
// validity.
func (s *Simulator) EvaluateThroughput(g *graph.Graph, p partition.Partition) (float64, bool) {
	res := s.Measure(g, p, 0)
	return res.Throughput, res.Valid
}

// Assess implements eval.Evaluator: one measured run (run 0, the same
// deterministic noise EvaluateThroughput draws) condensed into the shared
// verdict, with the peak fractional SRAM utilization across chips.
func (s *Simulator) Assess(g *graph.Graph, p partition.Partition) eval.Verdict {
	res := s.Measure(g, p, 0)
	v := eval.Verdict{
		Throughput: res.Throughput,
		Valid:      res.Valid,
		FailReason: res.FailReason,
	}
	for c, mem := range res.PeakMem {
		if u := float64(mem) / float64(s.pkg.ChipSRAM(c)); u > v.Utilization {
			v.Utilization = u
		}
	}
	return v
}

// noiseSeed hashes the partition content, simulator seed and run index into
// a deterministic noise source.
func (s *Simulator) noiseSeed(p partition.Partition, run int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(s.opts.Seed))
	put(uint64(run))
	for _, c := range p {
		put(uint64(c))
	}
	return h.Sum64()
}

// gaussian turns a hash into a standard normal sample via Box-Muller on two
// derived uniforms.
func gaussian(seed uint64) float64 {
	// SplitMix64 steps for two independent uniforms.
	next := func() float64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return (float64(z>>11) + 0.5) / (1 << 53)
	}
	u1, u2 := next(), next()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
