package hwsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

func propGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New("prop")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{
			Op:          graph.OpMatMul,
			FLOPs:       float64(1+rng.Intn(100)) * 1e7,
			ParamBytes:  int64(rng.Intn(1 << 19)),
			OutputBytes: int64(1 + rng.Intn(1<<16)),
		})
		if i > 0 {
			g.MustAddEdge(i-1, i, int64(1+rng.Intn(1<<14)))
		}
	}
	return g
}

// TestSimulatorDeterminism: Evaluate is a pure function of (graph,
// partition); Measure is a pure function of (graph, partition, run, seed).
func TestSimulatorDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := propGraph(rng, 6+rng.Intn(20))
		pkg := mcm.Dev8()
		sim := New(pkg, Options{Seed: seed})
		sg, err := cpsolver.NewSegmenter(g, pkg.Chips)
		if err != nil {
			return false
		}
		p, err := sg.Sample(nil, rng)
		if err != nil {
			return false
		}
		a, b := sim.Evaluate(g, p), sim.Evaluate(g, p)
		if a.Valid != b.Valid || a.Interval != b.Interval {
			return false
		}
		m1, m2 := sim.Measure(g, p, 3), sim.Measure(g, p, 3)
		return m1.Throughput == m2.Throughput
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulatorInvalidIsZeroThroughput: the paper's platform contract —
// invalid partitions always report exactly zero throughput.
func TestSimulatorInvalidIsZeroThroughput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New("fat")
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9,
			ParamBytes: int64(20+rng.Intn(100)) << 20, OutputBytes: 1})
		sim := New(mcm.Dev4(), Options{Seed: seed}) // 8 MiB SRAM
		res := sim.Measure(g, partition.Partition{0}, rng.Intn(5))
		return !res.Valid && res.Throughput == 0 && res.Interval == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulatorIntervalBounds: the pipeline interval is at least the
// busiest chip's compute time and at least the busiest link's transfer
// time (the bottleneck defines the interval).
func TestSimulatorIntervalBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := propGraph(rng, 8+rng.Intn(20))
		pkg := mcm.Dev8()
		sim := New(pkg, Options{Seed: seed})
		sg, err := cpsolver.NewSegmenter(g, pkg.Chips)
		if err != nil {
			return false
		}
		p, err := sg.Sample(nil, rng)
		if err != nil {
			return false
		}
		res := sim.Evaluate(g, p)
		if !res.Valid {
			return true // OOM verdicts are covered elsewhere
		}
		for _, busy := range res.ChipBusy {
			if res.Interval < busy-1e-15 {
				return false
			}
		}
		for _, busy := range res.LinkBusy {
			if res.Interval < busy-1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryPressureSlowsButNeverSpeeds: raising a chip's utilization past
// the knee must never decrease its reported interval.
func TestMemoryPressureSlowsButNeverSpeeds(t *testing.T) {
	pkg := mcm.Dev4()
	mk := func(params int64) Result {
		g := graph.New("p")
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, ParamBytes: params, OutputBytes: 1 << 10})
		sim := New(pkg, Options{})
		return sim.Evaluate(g, partition.Partition{0})
	}
	light := mk(1 << 20) // ~12% utilization
	heavy := mk(7 << 20) // ~88% utilization: past the knee
	if !light.Valid || !heavy.Valid {
		t.Fatal("both configurations should fit")
	}
	if heavy.Interval <= light.Interval {
		t.Fatalf("pressure should slow the chip: light %v vs heavy %v", light.Interval, heavy.Interval)
	}
}
