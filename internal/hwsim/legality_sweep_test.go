package hwsim_test

import (
	"testing"

	"mcmpart/internal/conformance"
	"mcmpart/internal/costmodel"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
	"mcmpart/internal/randgraph"
)

// TestLegalityAgreementRandomGraphSweep extends the PR 2 legality-agreement
// regression (TestCostModelAndSimulatorAgreeOnLegality, which pins four
// hand-picked partitions of one graph) to a generated sweep: 200 seeded
// random graphs per topology preset, each probed with a deterministic mix of
// monotone, random, and reversed partitions through the conformance
// harness's differential oracle. The contract under test is PR 2's fix:
// costmodel invalid ⇔ hwsim invalid for a routability-class FailReason, on
// every topology (uni/bi ring, mesh) and chiplet mix (homogeneous,
// big/little).
//
// Any failure names (preset, seed, graph index); reproduce the graph alone
// with randgraph.Sample(seed, index).
func TestLegalityAgreementRandomGraphSweep(t *testing.T) {
	const (
		seed           = 20260726
		graphsPer      = 200
		partitionsEach = 4
	)
	presets := []string{"dev4", "dev8", "dev8bi", "het4", "mesh16", "edge36"}
	// The graph stream is shared across presets so a divergence on one
	// topology is directly comparable against the others.
	graphs := make([]*graph.Graph, graphsPer)
	for gi := range graphs {
		graphs[gi] = randgraph.Sample(seed, gi)
	}
	for pi, preset := range presets {
		pkg, err := mcm.Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		model := costmodel.New(pkg)
		sim := hwsim.New(pkg, hwsim.Options{Seed: 1})
		violations := 0
		for gi, g := range graphs {
			rng := parallel.Rng(parallel.Seed(seed, pi), gi)
			for _, p := range conformance.SamplePartitions(g, pkg.Chips, rng, partitionsEach) {
				scenario := preset + "/" + g.Name()
				for _, v := range conformance.CheckLegalityAgreement(scenario, g, pkg, p, model, sim) {
					violations++
					if violations <= 5 {
						t.Errorf("seed=%d graph=%d: %s", seed, gi, v)
					}
				}
			}
		}
		if violations > 5 {
			t.Errorf("%s: %d total legality violations (first 5 shown)", preset, violations)
		}
	}
}
