package hwsim

import (
	"math"
	"strings"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/workload"
)

func pipelineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("pipe")
	for i := 0; i < 8; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, ParamBytes: 1 << 20, OutputBytes: 1 << 18})
		if i > 0 {
			g.MustAddEdge(i-1, i, 1<<18)
		}
	}
	return g
}

func TestEvaluateValidPartition(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := pipelineGraph(t)
	p := partition.Partition{0, 0, 1, 1, 2, 2, 3, 3}
	res := sim.Evaluate(g, p)
	if !res.Valid {
		t.Fatalf("partition should be valid: %s", res.FailReason)
	}
	if res.Throughput <= 0 || res.Interval <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if 1/res.Interval != res.Throughput {
		t.Fatalf("throughput != 1/interval")
	}
}

func TestBalancedBeatsSkewed(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := pipelineGraph(t)
	balanced := sim.Evaluate(g, partition.Partition{0, 0, 1, 1, 2, 2, 3, 3})
	skewed := sim.Evaluate(g, partition.Partition{0, 0, 0, 0, 0, 1, 2, 3})
	if !balanced.Valid || !skewed.Valid {
		t.Fatal("both partitions should be valid")
	}
	if balanced.Throughput <= skewed.Throughput {
		t.Fatalf("balanced %v should beat skewed %v", balanced.Throughput, skewed.Throughput)
	}
}

func TestDynamicConstraintOOM(t *testing.T) {
	pkg := mcm.Dev4() // 8 MiB SRAM per chip
	sim := New(pkg, Options{})
	g := graph.New("fat")
	// Two ops, 6 MiB of weights each: together they exceed one chip.
	for i := 0; i < 2; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, ParamBytes: 6 << 20, OutputBytes: 1 << 10})
	}
	g.MustAddEdge(0, 1, 1<<10)
	oneChip := sim.Evaluate(g, partition.Partition{0, 0})
	if oneChip.Valid {
		t.Fatal("12 MiB of weights on an 8 MiB chip should OOM")
	}
	if oneChip.Throughput != 0 {
		t.Fatalf("invalid partition must report zero throughput, got %v", oneChip.Throughput)
	}
	split := sim.Evaluate(g, partition.Partition{0, 1})
	if !split.Valid {
		t.Fatalf("split should fit: %s", split.FailReason)
	}
}

func TestLinkContentionRaisesInterval(t *testing.T) {
	pkg := mcm.Dev4()
	sim := New(pkg, Options{})
	// Two parallel chains, both crossing from chip side 0/1 to 2/3 with
	// big tensors: the middle link sees both transfers.
	g := graph.New("contend")
	a0 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 2 << 20})
	a1 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 1})
	b0 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 2 << 20})
	b1 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 1})
	g.MustAddEdge(a0, a1, 2<<20)
	g.MustAddEdge(b0, b1, 2<<20)
	p := partition.Partition{0, 2, 1, 3}
	res := sim.Evaluate(g, p)
	if !res.Valid {
		t.Fatalf("unexpected failure: %s", res.FailReason)
	}
	// Link 1 carries both 2 MiB transfers.
	perTransfer := pkg.LinkLatency + float64(2<<20)/pkg.LinkBandwidth
	if res.LinkBusy[1] < 2*perTransfer*0.99 {
		t.Fatalf("middle link busy = %v, want ~%v", res.LinkBusy[1], 2*perTransfer)
	}
	if res.Interval < res.LinkBusy[1] {
		t.Fatal("interval should be at least the bottleneck link time")
	}
}

// TestBackwardsTransferRejected is the regression test for the
// cost-model/simulator divergence on illegal transfers: Evaluate used to
// price a backwards (dst < src) cut edge at zero — the ring-link loop just
// never executed — while costmodel.Latency panicked on the same partition.
// The simulator must instead return an invalid Result with an explicit
// FailReason.
func TestBackwardsTransferRejected(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := pipelineGraph(t)
	// Chip assignment flows 1 -> 0 across the first edge: illegal on the
	// uni-directional ring.
	p := partition.Partition{1, 0, 1, 1, 2, 2, 3, 3}
	res := sim.Evaluate(g, p)
	if res.Valid {
		t.Fatal("backwards transfer must invalidate the partition, not be priced at zero")
	}
	if !strings.Contains(res.FailReason, "illegal transfer") {
		t.Fatalf("FailReason = %q, want an illegal-transfer explanation", res.FailReason)
	}
	if res.Throughput != 0 {
		t.Fatalf("invalid partition must report zero throughput, got %v", res.Throughput)
	}
	// The same partition is legal on a bidirectional ring, which can route
	// chip 1 -> chip 0.
	bi := mcm.Dev4()
	bi.Topology = mcm.TopoBiRing
	if res := New(bi, Options{}).Evaluate(g, p); !res.Valid {
		t.Fatalf("biring should route the backwards edge: %s", res.FailReason)
	}
}

// TestCostModelAndSimulatorAgreeOnLegality pins the shared legality
// contract: for any partition, the analytical model and the simulator must
// agree on whether its transfers are routable (the model stays blind to
// memory, so the comparison uses partitions that fit SRAM).
func TestCostModelAndSimulatorAgreeOnLegality(t *testing.T) {
	g := pipelineGraph(t)
	for _, pkg := range []*mcm.Package{mcm.Dev4(), mcm.Dev8Bi(), mcm.Het4()} {
		sim := New(pkg, Options{})
		model := costmodel.New(pkg)
		cases := []partition.Partition{
			{0, 0, 1, 1, 2, 2, 3, 3},                // legal pipeline
			{1, 0, 1, 1, 2, 2, 3, 3},                // backwards first edge
			{3, 2, 1, 0, 0, 0, 0, 0},                // fully reversed
			make(partition.Partition, g.NumNodes()), // all on chip 0
		}
		for _, p := range cases {
			_, modelOK := model.Evaluate(g, p)
			res := sim.Evaluate(g, p)
			simLegal := res.Valid || !strings.Contains(res.FailReason, "illegal transfer")
			if modelOK != simLegal {
				t.Errorf("%s: legality disagreement on %v: model %t, simulator %t (%s)",
					pkg.Name, p, modelOK, simLegal, res.FailReason)
			}
		}
	}
}

// TestHeterogeneousSRAMPerChip checks the per-chip memory constraint: a
// working set that fits a big die must be rejected on a little die.
func TestHeterogeneousSRAMPerChip(t *testing.T) {
	pkg := mcm.Het4() // chips 0,1: 16 MiB; chips 2,3: 8 MiB
	sim := New(pkg, Options{})
	g := graph.New("fat")
	g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, ParamBytes: 10 << 20, OutputBytes: 1 << 10})
	g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, ParamBytes: 1 << 20, OutputBytes: 1 << 10})
	g.MustAddEdge(0, 1, 1<<10)
	onBig := sim.Evaluate(g, partition.Partition{0, 1})
	if !onBig.Valid {
		t.Fatalf("10 MiB of weights should fit the 16 MiB die: %s", onBig.FailReason)
	}
	// The same fat op on a little die (made reachable by keeping dataflow
	// monotone: predecessor stays on chip 2's side) must OOM.
	onLittle := sim.Evaluate(g, partition.Partition{2, 3})
	if onLittle.Valid {
		t.Fatal("10 MiB of weights must not fit the 8 MiB die")
	}
	if onLittle.FailReason != "out of memory on chip" {
		t.Fatalf("FailReason = %q", onLittle.FailReason)
	}
}

// TestHeterogeneousComputePerChip checks that compute time scales with the
// chip's own peak rate: the same op runs 2x slower on a little die.
func TestHeterogeneousComputePerChip(t *testing.T) {
	pkg := mcm.Het4()
	sim := New(pkg, Options{OpOverhead: 1e-12}) // negligible dispatch
	mk := func(chip int) float64 {
		g := graph.New("one")
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, OutputBytes: 1})
		p := partition.Partition{chip}
		// Chips below must still be used: build the prefix with no-op
		// inputs so the partition stays valid.
		for c := 0; c < chip; c++ {
			v := g.AddNode(graph.Node{Op: graph.OpInput, OutputBytes: 1})
			g.MustAddEdge(v, 0, 1)
			p = append(p, c)
		}
		res := sim.Evaluate(g, p)
		if !res.Valid {
			t.Fatalf("chip %d eval failed: %s", chip, res.FailReason)
		}
		return res.ChipBusy[chip]
	}
	big, little := mk(0), mk(3)
	if ratio := little / big; ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("little/big busy ratio = %v, want ~2 (half the peak rate)", ratio)
	}
}

// TestMeshContentionUsesRoutes checks that mesh transfers occupy exactly
// their XY route's directed links.
func TestMeshContentionUsesRoutes(t *testing.T) {
	pkg := mcm.Mesh16()
	sim := New(pkg, Options{})
	g := graph.New("two")
	g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 1 << 20})
	g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 1})
	g.MustAddEdge(0, 1, 1<<20)
	res := sim.Evaluate(g, partition.Partition{0, 1})
	if !res.Valid {
		t.Fatalf("mesh eval failed: %s", res.FailReason)
	}
	topo, err := pkg.Topo()
	if err != nil {
		t.Fatal(err)
	}
	route, ok := topo.AppendRoute(nil, 0, 1)
	if !ok {
		t.Fatal("mesh 0->1 must be routable")
	}
	per := pkg.LinkLatency + float64(1<<20)/pkg.LinkBandwidth
	busyLinks := 0
	for l, busy := range res.LinkBusy {
		if busy == 0 {
			continue
		}
		busyLinks++
		if busy != per {
			t.Fatalf("link %d busy %v, want %v", l, busy, per)
		}
		found := false
		for _, r := range route {
			found = found || r == l
		}
		if !found {
			t.Fatalf("link %d busy but not on the 0->1 route %v", l, route)
		}
	}
	if busyLinks != len(route) {
		t.Fatalf("%d busy links for a %d-hop route", busyLinks, len(route))
	}
}

func TestMeasureNoiseDeterministicAndCentered(t *testing.T) {
	sim := New(mcm.Dev4(), Options{Seed: 7, NoiseStd: 0.05})
	g := pipelineGraph(t)
	p := partition.Partition{0, 0, 1, 1, 2, 2, 3, 3}
	a := sim.Measure(g, p, 0)
	b := sim.Measure(g, p, 0)
	if a.Throughput != b.Throughput {
		t.Fatal("same run index must reproduce exactly")
	}
	c := sim.Measure(g, p, 1)
	if a.Throughput == c.Throughput {
		t.Fatal("different runs should see different noise")
	}
	base := sim.Evaluate(g, p)
	mean, std, valid := sim.MeasureN(g, p, 50)
	if !valid {
		t.Fatal("MeasureN should be valid")
	}
	if std <= 0 {
		t.Fatal("noise should produce nonzero std")
	}
	if math.Abs(mean-base.Throughput)/base.Throughput > 0.05 {
		t.Fatalf("mean %v too far from noise-free %v", mean, base.Throughput)
	}
}

func TestMeasureNInvalid(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := graph.New("fat")
	g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1, ParamBytes: 100 << 20, OutputBytes: 1})
	if _, _, valid := sim.MeasureN(g, partition.Partition{0}, 5); valid {
		t.Fatal("oversized op can never fit")
	}
}

func TestEfficiencyDifferentiatesOps(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	mk := func(kind graph.OpKind) float64 {
		g := graph.New("k")
		g.AddNode(graph.Node{Op: kind, FLOPs: 1e9, OutputBytes: 1})
		res := sim.Evaluate(g, partition.Partition{0})
		return res.Interval
	}
	if mk(graph.OpElementwise) <= mk(graph.OpMatMul) {
		t.Fatal("memory-bound elementwise work should be slower per FLOP than matmul")
	}
}

func TestEvaluateThroughputContract(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := pipelineGraph(t)
	th, valid := sim.EvaluateThroughput(g, partition.Partition{0, 0, 1, 1, 2, 2, 3, 3})
	if !valid || th <= 0 {
		t.Fatalf("EvaluateThroughput = (%v,%v)", th, valid)
	}
}

func TestBERTFitsWhenBalanced(t *testing.T) {
	g := workload.BERT()
	pkg := mcm.Edge36()
	sim := New(pkg, Options{})
	// A parameter-balanced contiguous split should fit in SRAM.
	remaining := g.TotalParamBytes()
	p := make(partition.Partition, g.NumNodes())
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	chip := 0
	var acc int64
	for _, v := range order {
		// Equal share of what is left over the chips that are left.
		target := remaining / int64(36-chip)
		if acc+g.Node(v).ParamBytes > target && chip < 35 {
			chip++
			remaining -= acc
			acc = 0
		}
		p[v] = chip
		acc += g.Node(v).ParamBytes
	}
	res := sim.Evaluate(g, p)
	if !res.Valid {
		t.Fatalf("balanced BERT split should fit: %s (peak %v MiB)", res.FailReason, res.PeakMem)
	}
	// And an everything-on-three-chips split must OOM.
	for i := range p {
		p[i] = min3(p[i], 2)
	}
	if res := sim.Evaluate(g, p); res.Valid {
		t.Fatal("600 MiB of weights on 3 chips must OOM")
	}
}

func min3(a, b int) int {
	if a < b {
		return a
	}
	return b
}
