package hwsim

import (
	"math"
	"testing"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/workload"
)

func pipelineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("pipe")
	for i := 0; i < 8; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, ParamBytes: 1 << 20, OutputBytes: 1 << 18})
		if i > 0 {
			g.MustAddEdge(i-1, i, 1<<18)
		}
	}
	return g
}

func TestEvaluateValidPartition(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := pipelineGraph(t)
	p := partition.Partition{0, 0, 1, 1, 2, 2, 3, 3}
	res := sim.Evaluate(g, p)
	if !res.Valid {
		t.Fatalf("partition should be valid: %s", res.FailReason)
	}
	if res.Throughput <= 0 || res.Interval <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if 1/res.Interval != res.Throughput {
		t.Fatalf("throughput != 1/interval")
	}
}

func TestBalancedBeatsSkewed(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := pipelineGraph(t)
	balanced := sim.Evaluate(g, partition.Partition{0, 0, 1, 1, 2, 2, 3, 3})
	skewed := sim.Evaluate(g, partition.Partition{0, 0, 0, 0, 0, 1, 2, 3})
	if !balanced.Valid || !skewed.Valid {
		t.Fatal("both partitions should be valid")
	}
	if balanced.Throughput <= skewed.Throughput {
		t.Fatalf("balanced %v should beat skewed %v", balanced.Throughput, skewed.Throughput)
	}
}

func TestDynamicConstraintOOM(t *testing.T) {
	pkg := mcm.Dev4() // 8 MiB SRAM per chip
	sim := New(pkg, Options{})
	g := graph.New("fat")
	// Two ops, 6 MiB of weights each: together they exceed one chip.
	for i := 0; i < 2; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, ParamBytes: 6 << 20, OutputBytes: 1 << 10})
	}
	g.MustAddEdge(0, 1, 1<<10)
	oneChip := sim.Evaluate(g, partition.Partition{0, 0})
	if oneChip.Valid {
		t.Fatal("12 MiB of weights on an 8 MiB chip should OOM")
	}
	if oneChip.Throughput != 0 {
		t.Fatalf("invalid partition must report zero throughput, got %v", oneChip.Throughput)
	}
	split := sim.Evaluate(g, partition.Partition{0, 1})
	if !split.Valid {
		t.Fatalf("split should fit: %s", split.FailReason)
	}
}

func TestLinkContentionRaisesInterval(t *testing.T) {
	pkg := mcm.Dev4()
	sim := New(pkg, Options{})
	// Two parallel chains, both crossing from chip side 0/1 to 2/3 with
	// big tensors: the middle link sees both transfers.
	g := graph.New("contend")
	a0 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 2 << 20})
	a1 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 1})
	b0 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 2 << 20})
	b1 := g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 1})
	g.MustAddEdge(a0, a1, 2<<20)
	g.MustAddEdge(b0, b1, 2<<20)
	p := partition.Partition{0, 2, 1, 3}
	res := sim.Evaluate(g, p)
	if !res.Valid {
		t.Fatalf("unexpected failure: %s", res.FailReason)
	}
	// Link 1 carries both 2 MiB transfers.
	perTransfer := pkg.LinkLatency + float64(2<<20)/pkg.LinkBandwidth
	if res.LinkBusy[1] < 2*perTransfer*0.99 {
		t.Fatalf("middle link busy = %v, want ~%v", res.LinkBusy[1], 2*perTransfer)
	}
	if res.Interval < res.LinkBusy[1] {
		t.Fatal("interval should be at least the bottleneck link time")
	}
}

func TestMeasureNoiseDeterministicAndCentered(t *testing.T) {
	sim := New(mcm.Dev4(), Options{Seed: 7, NoiseStd: 0.05})
	g := pipelineGraph(t)
	p := partition.Partition{0, 0, 1, 1, 2, 2, 3, 3}
	a := sim.Measure(g, p, 0)
	b := sim.Measure(g, p, 0)
	if a.Throughput != b.Throughput {
		t.Fatal("same run index must reproduce exactly")
	}
	c := sim.Measure(g, p, 1)
	if a.Throughput == c.Throughput {
		t.Fatal("different runs should see different noise")
	}
	base := sim.Evaluate(g, p)
	mean, std, valid := sim.MeasureN(g, p, 50)
	if !valid {
		t.Fatal("MeasureN should be valid")
	}
	if std <= 0 {
		t.Fatal("noise should produce nonzero std")
	}
	if math.Abs(mean-base.Throughput)/base.Throughput > 0.05 {
		t.Fatalf("mean %v too far from noise-free %v", mean, base.Throughput)
	}
}

func TestMeasureNInvalid(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := graph.New("fat")
	g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1, ParamBytes: 100 << 20, OutputBytes: 1})
	if _, _, valid := sim.MeasureN(g, partition.Partition{0}, 5); valid {
		t.Fatal("oversized op can never fit")
	}
}

func TestEfficiencyDifferentiatesOps(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	mk := func(kind graph.OpKind) float64 {
		g := graph.New("k")
		g.AddNode(graph.Node{Op: kind, FLOPs: 1e9, OutputBytes: 1})
		res := sim.Evaluate(g, partition.Partition{0})
		return res.Interval
	}
	if mk(graph.OpElementwise) <= mk(graph.OpMatMul) {
		t.Fatal("memory-bound elementwise work should be slower per FLOP than matmul")
	}
}

func TestEvaluateThroughputContract(t *testing.T) {
	sim := New(mcm.Dev4(), Options{})
	g := pipelineGraph(t)
	th, valid := sim.EvaluateThroughput(g, partition.Partition{0, 0, 1, 1, 2, 2, 3, 3})
	if !valid || th <= 0 {
		t.Fatalf("EvaluateThroughput = (%v,%v)", th, valid)
	}
}

func TestBERTFitsWhenBalanced(t *testing.T) {
	g := workload.BERT()
	pkg := mcm.Edge36()
	sim := New(pkg, Options{})
	// A parameter-balanced contiguous split should fit in SRAM.
	remaining := g.TotalParamBytes()
	p := make(partition.Partition, g.NumNodes())
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	chip := 0
	var acc int64
	for _, v := range order {
		// Equal share of what is left over the chips that are left.
		target := remaining / int64(36-chip)
		if acc+g.Node(v).ParamBytes > target && chip < 35 {
			chip++
			remaining -= acc
			acc = 0
		}
		p[v] = chip
		acc += g.Node(v).ParamBytes
	}
	res := sim.Evaluate(g, p)
	if !res.Valid {
		t.Fatalf("balanced BERT split should fit: %s (peak %v MiB)", res.FailReason, res.PeakMem)
	}
	// And an everything-on-three-chips split must OOM.
	for i := range p {
		p[i] = min3(p[i], 2)
	}
	if res := sim.Evaluate(g, p); res.Valid {
		t.Fatal("600 MiB of weights on 3 chips must OOM")
	}
}

func min3(a, b int) int {
	if a < b {
		return a
	}
	return b
}
