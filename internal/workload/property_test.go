package workload

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"mcmpart/internal/graph"
)

// TestGeneratorsAlwaysProduceValidGraphs: every family, over a spread of
// shapes, yields a validating DAG whose nodes all have sane costs and whose
// JSON round-trips.
func TestGeneratorsAlwaysProduceValidGraphs(t *testing.T) {
	f := func(a, b, c uint8) bool {
		stages := 1 + int(a%4)
		blocks := 1 + int(b%4)
		steps := 2 + int(c%12)
		gs := []*graph.Graph{
			ChainCNN(CNNConfig{Name: "p", InputSize: 32, Channels: 32, Stages: stages, BlocksPerStage: blocks, Classes: 10}),
			ResidualCNN(CNNConfig{Name: "p", InputSize: 32, Channels: 32, Stages: stages, BlocksPerStage: blocks, Classes: 10}),
			InceptionCNN(CNNConfig{Name: "p", InputSize: 32, Channels: 32, Stages: stages, BlocksPerStage: blocks, Classes: 10}),
			UnrolledRNN(RNNConfig{Name: "p", Steps: steps, Input: 32, Hidden: 64, Vocab: 100, Batch: 4}),
			UnrolledLSTM(RNNConfig{Name: "p", Steps: steps, Input: 32, Hidden: 64, Batch: 4}),
			MLP(MLPConfig{Name: "p", Layers: stages + blocks, Input: 32, Hidden: 64, Output: 8, Batch: 4}),
		}
		for _, g := range gs {
			if g.Validate() != nil {
				return false
			}
			for _, n := range g.Nodes() {
				if n.FLOPs < 0 || n.ParamBytes < 0 || n.OutputBytes < 0 {
					return false
				}
			}
			data, err := json.Marshal(g)
			if err != nil {
				return false
			}
			var back graph.Graph
			if err := json.Unmarshal(data, &back); err != nil {
				return false
			}
			if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestNoOversizedOps: no generator may emit a single operation whose
// weights alone exceed a chiplet's SRAM — such a graph would admit no valid
// placement at all.
func TestNoOversizedOps(t *testing.T) {
	const sram = 76 << 20
	graphs := CorpusGraphs(7)
	graphs = append(graphs, BERT())
	for _, g := range graphs {
		for _, n := range g.Nodes() {
			if n.ParamBytes > sram/2 {
				t.Fatalf("%s: node %s holds %d MiB of weights", g.Name(), n.Name, n.ParamBytes>>20)
			}
		}
	}
}

// TestCorpusWeightScale: the corpus must stress the memory constraint the
// way the paper's production models do — a substantial fraction of models
// need several chips just to hold their weights (the rest stress compute
// balance and communication instead).
func TestCorpusWeightScale(t *testing.T) {
	multiChip := 0
	for _, g := range CorpusGraphs(1) {
		if g.TotalParamBytes() > 76<<20 {
			multiChip++
		}
	}
	if multiChip < CorpusSize/4 {
		t.Fatalf("only %d/%d corpus models exceed one chip's SRAM", multiChip, CorpusSize)
	}
}
