package workload

import (
	"strings"
	"testing"

	"mcmpart/internal/graph"
)

func TestChainCNNStructure(t *testing.T) {
	g := ChainCNN(CNNConfig{Name: "c", InputSize: 32, Channels: 16, Stages: 3, BlocksPerStage: 2, Classes: 10})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// A chain CNN is a pure pipeline: every node has at most one
	// predecessor and one successor.
	for v := 0; v < g.NumNodes(); v++ {
		if g.InDegree(v) > 1 || g.OutDegree(v) > 1 {
			t.Fatalf("node %d (%s) breaks the chain: in=%d out=%d",
				v, g.Node(v).Name, g.InDegree(v), g.OutDegree(v))
		}
	}
	if n := g.NumNodes(); n < 20 || n > 100 {
		t.Fatalf("chain CNN has %d nodes, want tens", n)
	}
}

func TestResidualCNNHasSkipEdges(t *testing.T) {
	g := ResidualCNN(CNNConfig{Name: "r", InputSize: 32, Channels: 16, Stages: 2, BlocksPerStage: 2, Classes: 10})
	joins := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.InDegree(v) == 2 {
			joins++
		}
	}
	if joins != 4 { // one residual add per block
		t.Fatalf("residual CNN has %d two-input joins, want 4", joins)
	}
}

func TestInceptionCNNHasParallelBranches(t *testing.T) {
	g := InceptionCNN(CNNConfig{Name: "i", InputSize: 32, Channels: 32, Stages: 1, BlocksPerStage: 1, Classes: 10})
	maxFanOut := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.OutDegree(v); d > maxFanOut {
			maxFanOut = d
		}
	}
	if maxFanOut < 4 {
		t.Fatalf("inception module should fan out to 4 branches, max fan-out %d", maxFanOut)
	}
	concats := 0
	for _, n := range g.Nodes() {
		if n.Op == graph.OpConcat {
			concats++
		}
	}
	if concats != 1 {
		t.Fatalf("inception has %d concats, want 1", concats)
	}
}

func TestRNNFamilies(t *testing.T) {
	rnn := UnrolledRNN(RNNConfig{Name: "r", Steps: 10, Input: 64, Hidden: 128, Vocab: 100, Batch: 8})
	lstm := UnrolledLSTM(RNNConfig{Name: "l", Steps: 10, Input: 64, Hidden: 128, Vocab: 100, Batch: 8})
	if rnn.NumNodes() >= lstm.NumNodes() {
		t.Fatalf("LSTM (%d nodes) should be bigger than RNN (%d nodes)", lstm.NumNodes(), rnn.NumNodes())
	}
	for _, g := range []*graph.Graph{rnn, lstm} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
	// Unbatched config defaults to batch 1 and still validates.
	if g := UnrolledRNN(RNNConfig{Name: "r1", Steps: 2, Input: 4, Hidden: 8}); g.NumNodes() == 0 {
		t.Fatal("empty graph")
	}
}

func TestMLPDepthControlsSize(t *testing.T) {
	small := MLP(MLPConfig{Name: "s", Layers: 3, Input: 64, Hidden: 128, Output: 10})
	big := MLP(MLPConfig{Name: "b", Layers: 12, Input: 64, Hidden: 128, Output: 10})
	if big.NumNodes() <= small.NumNodes() {
		t.Fatalf("deeper MLP should have more nodes: %d vs %d", big.NumNodes(), small.NumNodes())
	}
}

func TestBERTMatchesPaperStats(t *testing.T) {
	g := BERT()
	// Sec. 5.1: BERT "has 2138 nodes and around 340 million (600 MB)
	// parameters".
	if g.NumNodes() != 2138 {
		t.Fatalf("BERT has %d nodes, want 2138", g.NumNodes())
	}
	params := g.TotalParamBytes() / BytesPerElement
	if params < 320e6 || params > 360e6 {
		t.Fatalf("BERT has %d params, want ~340M", params)
	}
	if mb := g.TotalParamBytes() >> 20; mb < 550 || mb > 750 {
		t.Fatalf("BERT weights are %d MiB, want ~600-700", mb)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The sharded embedding must keep every single op under a chiplet's
	// SRAM (32 MiB), otherwise no valid placement exists at all.
	for _, n := range g.Nodes() {
		if n.ParamBytes > 16<<20 {
			t.Fatalf("node %s holds %d MiB of weights; too large for a chiplet", n.Name, n.ParamBytes>>20)
		}
	}
}

func TestBERTIsConfigurable(t *testing.T) {
	cfg := DefaultBERTConfig()
	cfg.Layers = 2
	cfg.SeqLen = 64
	g := BuildBERT(cfg)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() >= 2138 || g.NumNodes() < 100 {
		t.Fatalf("2-layer BERT has %d nodes", g.NumNodes())
	}
}

func TestCorpusSplitSizes(t *testing.T) {
	ds := Corpus(1)
	if len(ds.Train) != 66 || len(ds.Validation) != 5 || len(ds.Test) != 16 {
		t.Fatalf("split = %d/%d/%d, want 66/5/16", len(ds.Train), len(ds.Validation), len(ds.Test))
	}
	if len(ds.All()) != CorpusSize {
		t.Fatalf("All() has %d graphs, want %d", len(ds.All()), CorpusSize)
	}
}

func TestCorpusMatchesPaperDescription(t *testing.T) {
	ds := Corpus(1)
	names := make(map[string]bool)
	for _, g := range ds.All() {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		// "The computation graphs of these ML models have tens to
		// hundreds of nodes."
		if n := g.NumNodes(); n < 10 || n > 999 {
			t.Errorf("%s has %d nodes, want tens to hundreds", g.Name(), n)
		}
		// "None of these ML graphs contain a Transformer-like attention
		// mechanism": our families never emit softmax inside the body
		// except as a classifier head, and never use OpEmbedding.
		for _, node := range g.Nodes() {
			if node.Op == graph.OpEmbedding {
				t.Errorf("%s contains embedding/attention ops", g.Name())
			}
		}
		if names[g.Name()] {
			t.Errorf("duplicate model name %s", g.Name())
		}
		names[g.Name()] = true
	}
}

func TestCorpusIsDeterministic(t *testing.T) {
	a, b := Corpus(7), Corpus(7)
	for i := range a.Train {
		if a.Train[i].Name() != b.Train[i].Name() || a.Train[i].NumNodes() != b.Train[i].NumNodes() {
			t.Fatalf("corpus not deterministic at train[%d]", i)
		}
	}
	c := Corpus(8)
	same := true
	for i := range a.Train {
		if a.Train[i].Name() != c.Train[i].Name() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should shuffle the corpus differently")
	}
}

func TestCorpusFamilyMix(t *testing.T) {
	families := map[string]int{}
	for _, g := range CorpusGraphs(3) {
		fam := strings.SplitN(g.Name(), "-", 2)[0]
		families[fam]++
	}
	for _, fam := range []string{"chaincnn", "resnet", "inception", "mlp"} {
		if families[fam] < 10 {
			t.Errorf("family %s underrepresented: %v", fam, families)
		}
	}
	if families["rnn"]+families["lstm"] < 10 {
		t.Errorf("recurrent families underrepresented: %v", families)
	}
}
