package workload

import (
	"fmt"

	"mcmpart/internal/graph"
)

// maxChannels caps channel doubling across stages: a single convolution's
// weights must stay well under a chiplet's SRAM or no placement exists.
const maxChannels = 512

// CNNConfig parameterizes the convolutional generators.
type CNNConfig struct {
	// Name labels the generated graph.
	Name string
	// InputSize is the side length of the (square) input image.
	InputSize int
	// Channels is the base channel count; it doubles at each downsampling
	// stage.
	Channels int
	// Stages is the number of resolution stages.
	Stages int
	// BlocksPerStage is the number of conv blocks within each stage.
	BlocksPerStage int
	// Classes is the classifier output width.
	Classes int
}

// ChainCNN builds a VGG-style straight-line CNN: conv -> norm -> act
// repeated, with pooling between stages and a dense classifier head. The
// resulting graph is a pure pipeline, the easiest family to partition.
func ChainCNN(cfg CNNConfig) *graph.Graph {
	b := newBuilder(cfg.Name)
	h, c := cfg.InputSize, cfg.Channels
	x := b.op("input", graph.OpInput, 0, 0, featureBytes(h, h, 3))
	prevC := 3
	for s := 0; s < cfg.Stages; s++ {
		for k := 0; k < cfg.BlocksPerStage; k++ {
			out := featureBytes(h, h, c)
			x = b.op(fmt.Sprintf("s%d/conv%d", s, k), graph.OpConv,
				convFLOPs(h, h, prevC, c, 3), int64(3*3*prevC*c*BytesPerElement), out, x)
			x = b.op(fmt.Sprintf("s%d/norm%d", s, k), graph.OpNorm,
				float64(out), int64(2*c*BytesPerElement), out, x)
			x = b.op(fmt.Sprintf("s%d/act%d", s, k), graph.OpActivation,
				float64(out)/BytesPerElement, 0, out, x)
			prevC = c
		}
		if s < cfg.Stages-1 {
			h /= 2
			x = b.op(fmt.Sprintf("s%d/pool", s), graph.OpPool,
				float64(featureBytes(h, h, c)), 0, featureBytes(h, h, c), x)
			if c < maxChannels {
				c *= 2
			}
		}
	}
	x = b.op("gap", graph.OpReduce, float64(featureBytes(h, h, prevC)), 0,
		int64(prevC*BytesPerElement), x)
	x = b.op("fc", graph.OpMatMul, matmulFLOPs(1, prevC, cfg.Classes),
		int64(prevC*cfg.Classes*BytesPerElement), int64(cfg.Classes*BytesPerElement), x)
	x = b.op("softmax", graph.OpSoftmax, float64(cfg.Classes)*5, 0,
		int64(cfg.Classes*BytesPerElement), x)
	b.op("output", graph.OpOutput, 0, 0, int64(cfg.Classes*BytesPerElement), x)
	return b.finish()
}

// ResidualCNN builds a ResNet-style CNN: each block is
// conv-norm-act-conv-norm plus an identity skip joined by an elementwise
// add. Skip edges are what make the triangle-dependency constraint bite:
// a residual may not straddle more than one chip boundary.
func ResidualCNN(cfg CNNConfig) *graph.Graph {
	b := newBuilder(cfg.Name)
	h, c := cfg.InputSize, cfg.Channels
	x := b.op("input", graph.OpInput, 0, 0, featureBytes(h, h, 3))
	out := featureBytes(h, h, c)
	x = b.op("stem/conv", graph.OpConv, convFLOPs(h, h, 3, c, 3),
		int64(3*3*3*c*BytesPerElement), out, x)
	x = b.op("stem/act", graph.OpActivation, float64(out)/BytesPerElement, 0, out, x)
	for s := 0; s < cfg.Stages; s++ {
		for k := 0; k < cfg.BlocksPerStage; k++ {
			prefix := fmt.Sprintf("s%d/b%d", s, k)
			out = featureBytes(h, h, c)
			skip := x
			y := b.op(prefix+"/conv1", graph.OpConv, convFLOPs(h, h, c, c, 3),
				int64(3*3*c*c*BytesPerElement), out, x)
			y = b.op(prefix+"/norm1", graph.OpNorm, float64(out), int64(2*c*BytesPerElement), out, y)
			y = b.op(prefix+"/act1", graph.OpActivation, float64(out)/BytesPerElement, 0, out, y)
			y = b.op(prefix+"/conv2", graph.OpConv, convFLOPs(h, h, c, c, 3),
				int64(3*3*c*c*BytesPerElement), out, y)
			y = b.op(prefix+"/norm2", graph.OpNorm, float64(out), int64(2*c*BytesPerElement), out, y)
			y = b.op(prefix+"/add", graph.OpElementwise, float64(out)/BytesPerElement, 0, out, y, skip)
			x = b.op(prefix+"/act2", graph.OpActivation, float64(out)/BytesPerElement, 0, out, y)
		}
		if s < cfg.Stages-1 {
			h /= 2
			prev := c
			if c < maxChannels {
				c *= 2
			}
			out = featureBytes(h, h, c)
			// Downsampling projection ends the skip chain cleanly.
			x = b.op(fmt.Sprintf("s%d/down", s), graph.OpConv, convFLOPs(h, h, prev, c, 1),
				int64(prev*c*BytesPerElement), out, x)
		}
	}
	x = b.op("gap", graph.OpReduce, float64(out), 0, int64(c*BytesPerElement), x)
	x = b.op("fc", graph.OpMatMul, matmulFLOPs(1, c, cfg.Classes),
		int64(c*cfg.Classes*BytesPerElement), int64(cfg.Classes*BytesPerElement), x)
	b.op("output", graph.OpOutput, 0, 0, int64(cfg.Classes*BytesPerElement), x)
	return b.finish()
}

// InceptionCNN builds an inception-style CNN: each module runs several
// parallel convolution branches over the same input and concatenates them.
// The fan-out/fan-in structure stresses the no-skip and triangle constraints
// differently from residual chains: all branches of a module must resolve to
// chip assignments whose quotient graph stays triangle-free.
func InceptionCNN(cfg CNNConfig) *graph.Graph {
	b := newBuilder(cfg.Name)
	h, c := cfg.InputSize, cfg.Channels
	x := b.op("input", graph.OpInput, 0, 0, featureBytes(h, h, 3))
	out := featureBytes(h, h, c)
	x = b.op("stem/conv", graph.OpConv, convFLOPs(h, h, 3, c, 3),
		int64(3*3*3*c*BytesPerElement), out, x)
	for s := 0; s < cfg.Stages; s++ {
		for m := 0; m < cfg.BlocksPerStage; m++ {
			prefix := fmt.Sprintf("s%d/m%d", s, m)
			bc := c / 4 // per-branch channels
			branchOut := featureBytes(h, h, bc)
			var joins []int
			// Branch 1: 1x1 conv.
			b1 := b.op(prefix+"/b1x1", graph.OpConv, convFLOPs(h, h, c, bc, 1),
				int64(c*bc*BytesPerElement), branchOut, x)
			joins = append(joins, b1)
			// Branch 2: 1x1 then 3x3.
			b2 := b.op(prefix+"/b3red", graph.OpConv, convFLOPs(h, h, c, bc, 1),
				int64(c*bc*BytesPerElement), branchOut, x)
			b2 = b.op(prefix+"/b3x3", graph.OpConv, convFLOPs(h, h, bc, bc, 3),
				int64(3*3*bc*bc*BytesPerElement), branchOut, b2)
			joins = append(joins, b2)
			// Branch 3: 1x1 then 5x5.
			b3 := b.op(prefix+"/b5red", graph.OpConv, convFLOPs(h, h, c, bc, 1),
				int64(c*bc*BytesPerElement), branchOut, x)
			b3 = b.op(prefix+"/b5x5", graph.OpConv, convFLOPs(h, h, bc, bc, 5),
				int64(5*5*bc*bc*BytesPerElement), branchOut, b3)
			joins = append(joins, b3)
			// Branch 4: pool then 1x1 projection.
			b4 := b.op(prefix+"/pool", graph.OpPool, float64(out), 0, out, x)
			b4 = b.op(prefix+"/bproj", graph.OpConv, convFLOPs(h, h, c, bc, 1),
				int64(c*bc*BytesPerElement), branchOut, b4)
			joins = append(joins, b4)
			x = b.op(prefix+"/concat", graph.OpConcat, 0, 0, featureBytes(h, h, bc*4), joins...)
		}
		if s < cfg.Stages-1 {
			h /= 2
			x = b.op(fmt.Sprintf("s%d/pool", s), graph.OpPool,
				float64(featureBytes(h, h, c)), 0, featureBytes(h, h, c), x)
		}
	}
	x = b.op("gap", graph.OpReduce, float64(featureBytes(h, h, c)), 0, int64(c*BytesPerElement), x)
	x = b.op("fc", graph.OpMatMul, matmulFLOPs(1, c, cfg.Classes),
		int64(c*cfg.Classes*BytesPerElement), int64(cfg.Classes*BytesPerElement), x)
	b.op("output", graph.OpOutput, 0, 0, int64(cfg.Classes*BytesPerElement), x)
	return b.finish()
}
