package workload

import (
	"strings"
	"testing"
)

// TestAugmentedCorpusIsOptIn pins that random == 0 changes nothing: the
// augmentation must never silently alter the paper-faithful default corpus.
func TestAugmentedCorpusIsOptIn(t *testing.T) {
	base := Corpus(1)
	aug := AugmentedCorpus(1, 0)
	if len(aug.Train) != len(base.Train) || len(aug.Validation) != len(base.Validation) || len(aug.Test) != len(base.Test) {
		t.Fatalf("AugmentedCorpus(seed, 0) changed the split: %d/%d/%d vs %d/%d/%d",
			len(aug.Train), len(aug.Validation), len(aug.Test),
			len(base.Train), len(base.Validation), len(base.Test))
	}
	for i := range base.Train {
		if aug.Train[i].Fingerprint() != base.Train[i].Fingerprint() {
			t.Fatal("AugmentedCorpus(seed, 0) changed a training graph")
		}
	}
	if got := AugmentedCorpusGraphs(1, 0); len(got) != CorpusSize {
		t.Fatalf("AugmentedCorpusGraphs(seed, 0) returned %d graphs", len(got))
	}
}

// TestAugmentedCorpusAppendsRandomFamilies checks the opt-in path: counts
// add up, the extra graphs come from the randgraph families, the whole
// dataset stays deterministic, and most of the augmentation lands in
// training.
func TestAugmentedCorpusAppendsRandomFamilies(t *testing.T) {
	const extra = 32
	a := AugmentedCorpus(7, extra)
	b := AugmentedCorpus(7, extra)
	total := len(a.Train) + len(a.Validation) + len(a.Test)
	if total != CorpusSize+extra {
		t.Fatalf("augmented corpus has %d graphs, want %d", total, CorpusSize+extra)
	}
	if len(a.Train) <= 66 || len(a.Train)-66 < extra/2 {
		t.Fatalf("training split got %d of %d extra graphs; the bulk must train", len(a.Train)-66, extra)
	}
	if len(a.Validation) == 5 && len(a.Test) == 16 {
		t.Fatal("no random graph reached the held-out splits")
	}
	randCount := 0
	for _, g := range a.All() {
		if strings.HasPrefix(g.Name(), "rand-") {
			randCount++
			if err := g.Validate(); err != nil {
				t.Fatalf("augmented graph %s invalid: %v", g.Name(), err)
			}
		}
	}
	if randCount != extra {
		t.Fatalf("found %d rand- graphs, want %d", randCount, extra)
	}
	for i := range a.Train {
		if a.Train[i].Fingerprint() != b.Train[i].Fingerprint() {
			t.Fatal("augmented corpus is not deterministic")
		}
	}
	// Unsplit variant agrees on membership count.
	if got := AugmentedCorpusGraphs(7, extra); len(got) != CorpusSize+extra {
		t.Fatalf("AugmentedCorpusGraphs returned %d graphs", len(got))
	}
}
