// Package workload generates the ML computation graphs the experiments run
// on. The paper evaluates on a private corpus of 87 production models
// (computer-vision CNNs, RNNs and MLPs with tens to hundreds of nodes, none
// containing attention) plus BERT, a production-scale transformer with 2138
// nodes and roughly 340 M parameters. Both are proprietary, so this package
// builds the closest synthetic equivalents:
//
//   - parameterized generators for chain CNNs, residual CNNs,
//     inception-style CNNs, unrolled RNN/LSTMs and MLPs, seeded so the
//     corpus is deterministic;
//   - Corpus(), an 87-model dataset split 66/5/16 into train/validation/test
//     exactly as in Sec. 5.1;
//   - BERT(), a BERT-Large-shaped transformer graph matching the published
//     node count (2138) and parameter footprint (~340 M params).
//
// Costs use a bf16-style 2 bytes per element. FLOPs use the usual
// 2*M*K*N convention for matmuls and convolutions.
package workload

import (
	"fmt"

	"mcmpart/internal/graph"
)

// BytesPerElement is the storage size of one tensor element (bf16).
const BytesPerElement = 2

// builder provides a compact way to assemble op graphs. Each op method adds
// a node and wires edges from its inputs, using the producer's OutputBytes
// as the edge payload.
type builder struct {
	g *graph.Graph
}

func newBuilder(name string) *builder {
	return &builder{g: graph.New(name)}
}

// op appends a node with the given costs and connects every input to it.
func (b *builder) op(name string, kind graph.OpKind, flops float64, paramBytes, outBytes int64, inputs ...int) int {
	id := b.g.AddNode(graph.Node{
		Name:        name,
		Op:          kind,
		FLOPs:       flops,
		ParamBytes:  paramBytes,
		OutputBytes: outBytes,
	})
	for _, in := range inputs {
		b.g.MustAddEdge(in, id, b.g.Node(in).OutputBytes)
	}
	return id
}

// elemwise adds a cheap elementwise op whose cost scales with its output.
func (b *builder) elemwise(name string, outBytes int64, inputs ...int) int {
	return b.op(name, graph.OpElementwise, float64(outBytes)/BytesPerElement, 0, outBytes, inputs...)
}

// finish validates and returns the built graph.
func (b *builder) finish() *graph.Graph {
	if err := b.g.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generator produced invalid graph %s: %v", b.g.Name(), err))
	}
	return b.g
}

// matmulFLOPs returns 2*M*K*N.
func matmulFLOPs(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// convFLOPs returns the FLOPs of a kxk convolution producing an h x w x cout
// feature map from cin channels.
func convFLOPs(h, w, cin, cout, k int) float64 {
	return 2 * float64(h) * float64(w) * float64(cin) * float64(cout) * float64(k) * float64(k)
}

// featureBytes returns the bf16 size of an h x w x c feature map.
func featureBytes(h, w, c int) int64 {
	return int64(h) * int64(w) * int64(c) * BytesPerElement
}
