package workload

import (
	"fmt"
	"math/rand"

	"mcmpart/internal/graph"
	"mcmpart/internal/randgraph"
)

// Dataset is the pre-training corpus split exactly as in Sec. 5.1: 87 ML
// models partitioned at random into 66 training graphs, 5 validation graphs
// and 16 test graphs.
type Dataset struct {
	Train      []*graph.Graph
	Validation []*graph.Graph
	Test       []*graph.Graph
}

// All returns every graph in the dataset (train, then validation, then test).
func (d *Dataset) All() []*graph.Graph {
	all := make([]*graph.Graph, 0, len(d.Train)+len(d.Validation)+len(d.Test))
	all = append(all, d.Train...)
	all = append(all, d.Validation...)
	return append(all, d.Test...)
}

// CorpusSize is the number of models in the pre-training corpus.
const CorpusSize = 87

// Corpus generates the 87-model corpus and splits it 66/5/16. The split (and
// every model) is fully determined by the seed, so workers across the
// pre-training pipeline see the same dataset. The corpus mirrors the paper's
// description: computer-vision CNNs and language RNN/MLP models with tens to
// hundreds of nodes and no Transformer-style attention.
func Corpus(seed int64) *Dataset {
	graphs := CorpusGraphs(seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eedf00d))
	rng.Shuffle(len(graphs), func(i, j int) { graphs[i], graphs[j] = graphs[j], graphs[i] })
	return &Dataset{
		Train:      graphs[:66],
		Validation: graphs[66:71],
		Test:       graphs[71:],
	}
}

// AugmentedCorpus is Corpus plus an opt-in stream of generated random
// graphs (internal/randgraph): random == 0 returns exactly Corpus(seed),
// keeping the paper-faithful 87-model dataset the default. With random > 0,
// the generated graphs randgraph.Sample(seed, 0..random-1) — layered,
// branchy, diamond, and skewed-MoE families — are appended to the split:
// every 16th to validation, every 8th of the rest to test, the bulk to
// training, so pre-training consumes scenarios the hand-built families
// never produce while the held-out sets stay representative.
func AugmentedCorpus(seed int64, random int) *Dataset {
	ds := Corpus(seed)
	// The three splits alias one backing array; re-slice before appending
	// so growing one split cannot overwrite its neighbor.
	ds.Train = append([]*graph.Graph(nil), ds.Train...)
	ds.Validation = append([]*graph.Graph(nil), ds.Validation...)
	ds.Test = append([]*graph.Graph(nil), ds.Test...)
	for i := 0; i < random; i++ {
		g := randgraph.Sample(seed, i)
		switch {
		case i%16 == 15:
			ds.Validation = append(ds.Validation, g)
		case i%8 == 7:
			ds.Test = append(ds.Test, g)
		default:
			ds.Train = append(ds.Train, g)
		}
	}
	return ds
}

// AugmentedCorpusGraphs is CorpusGraphs plus random generated graphs from
// the same opt-in stream AugmentedCorpus draws (unsplit; random == 0 is
// exactly CorpusGraphs).
func AugmentedCorpusGraphs(seed int64, random int) []*graph.Graph {
	graphs := CorpusGraphs(seed)
	for i := 0; i < random; i++ {
		graphs = append(graphs, randgraph.Sample(seed, i))
	}
	return graphs
}

// CorpusGraphs generates the 87 corpus models (without splitting). Models
// rotate through five families — chain CNNs, residual CNNs, inception CNNs,
// unrolled RNN/LSTMs and MLPs — with per-model shapes drawn from the seed.
func CorpusGraphs(seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, 0, CorpusSize)
	for i := 0; i < CorpusSize; i++ {
		var g *graph.Graph
		switch i % 5 {
		case 0:
			g = ChainCNN(CNNConfig{
				Name:           fmt.Sprintf("chaincnn-%02d", i),
				InputSize:      32 << rng.Intn(2),  // 32 or 64
				Channels:       128 << rng.Intn(3), // 128/256/512
				Stages:         2 + rng.Intn(3),
				BlocksPerStage: 2 + rng.Intn(4),
				Classes:        10 + rng.Intn(990),
			})
		case 1:
			g = ResidualCNN(CNNConfig{
				Name:           fmt.Sprintf("resnet-%02d", i),
				InputSize:      32 << rng.Intn(2),
				Channels:       128 << rng.Intn(3),
				Stages:         2 + rng.Intn(3),
				BlocksPerStage: 2 + rng.Intn(4),
				Classes:        10 + rng.Intn(990),
			})
		case 2:
			g = InceptionCNN(CNNConfig{
				Name:           fmt.Sprintf("inception-%02d", i),
				InputSize:      32 << rng.Intn(2),
				Channels:       128 << rng.Intn(2), // 128/256, divisible by 4
				Stages:         1 + rng.Intn(3),
				BlocksPerStage: 2 + rng.Intn(3),
				Classes:        10 + rng.Intn(990),
			})
		case 3:
			cfg := RNNConfig{
				Name:   fmt.Sprintf("rnn-%02d", i),
				Steps:  8 + rng.Intn(17), // 8..24
				Input:  128 << rng.Intn(3),
				Hidden: 512 << rng.Intn(3), // 512..2048
				Vocab:  1000 + rng.Intn(9000),
				Batch:  16 << rng.Intn(3), // 16/32/64
			}
			if rng.Intn(2) == 0 {
				cfg.Name = fmt.Sprintf("lstm-%02d", i)
				g = UnrolledLSTM(cfg)
			} else {
				g = UnrolledRNN(cfg)
			}
		default:
			g = MLP(MLPConfig{
				Name:   fmt.Sprintf("mlp-%02d", i),
				Layers: 6 + rng.Intn(19), // 6..24
				Input:  256 << rng.Intn(3),
				Hidden: 1024 << rng.Intn(3), // 1024..4096
				Output: 10 + rng.Intn(990),
				Batch:  16 << rng.Intn(3),
			})
		}
		graphs = append(graphs, g)
	}
	return graphs
}
