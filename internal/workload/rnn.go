package workload

import (
	"fmt"

	"mcmpart/internal/graph"
)

// RNNConfig parameterizes the recurrent generators. The recurrence is
// unrolled across time, as an ML compiler would see it, so the graph is a
// long chain of cells with the hidden state threaded through.
type RNNConfig struct {
	Name string
	// Steps is the number of unrolled timesteps.
	Steps int
	// Input is the input feature width per step.
	Input int
	// Hidden is the hidden-state width.
	Hidden int
	// Vocab is the output projection width (0 to omit the head).
	Vocab int
	// Batch is the inference batch size (defaults to 1 when zero); it
	// scales compute and activation sizes but not weights.
	Batch int
}

// batch returns the effective batch size.
func (c RNNConfig) batch() int {
	if c.Batch <= 0 {
		return 1
	}
	return c.Batch
}

// UnrolledRNN builds a vanilla tanh RNN: h_t = tanh(W_ih x_t + W_hh h_{t-1}).
func UnrolledRNN(cfg RNNConfig) *graph.Graph {
	b := newBuilder(cfg.Name)
	n := cfg.batch()
	hb := int64(n * cfg.Hidden * BytesPerElement)
	h := b.op("h0", graph.OpConst, 0, 0, hb)
	var last int
	for t := 0; t < cfg.Steps; t++ {
		p := fmt.Sprintf("t%d", t)
		x := b.op(p+"/x", graph.OpInput, 0, 0, int64(n*cfg.Input*BytesPerElement))
		ih := b.op(p+"/ih", graph.OpMatMul, matmulFLOPs(n, cfg.Input, cfg.Hidden),
			int64(cfg.Input*cfg.Hidden*BytesPerElement), hb, x)
		hh := b.op(p+"/hh", graph.OpMatMul, matmulFLOPs(n, cfg.Hidden, cfg.Hidden),
			int64(cfg.Hidden*cfg.Hidden*BytesPerElement), hb, h)
		sum := b.elemwise(p+"/add", hb, ih, hh)
		h = b.op(p+"/tanh", graph.OpActivation, float64(hb)/BytesPerElement, 0, hb, sum)
		last = h
	}
	if cfg.Vocab > 0 {
		vb := int64(n * cfg.Vocab * BytesPerElement)
		logits := b.op("proj", graph.OpMatMul, matmulFLOPs(n, cfg.Hidden, cfg.Vocab),
			int64(cfg.Hidden*cfg.Vocab*BytesPerElement), vb, last)
		sm := b.op("softmax", graph.OpSoftmax, float64(n*cfg.Vocab)*5, 0, vb, logits)
		b.op("output", graph.OpOutput, 0, 0, vb, sm)
	} else {
		b.op("output", graph.OpOutput, 0, 0, hb, last)
	}
	return b.finish()
}

// UnrolledLSTM builds an unrolled LSTM. Each cell computes the four gates
// with two fused matmuls, applies the gate nonlinearities and updates the
// cell and hidden state; the two recurrent states thread through every
// timestep, giving each cell a pair of skip-like edges.
func UnrolledLSTM(cfg RNNConfig) *graph.Graph {
	b := newBuilder(cfg.Name)
	n := cfg.batch()
	hb := int64(n * cfg.Hidden * BytesPerElement)
	gb := 4 * hb // fused gate activations
	h := b.op("h0", graph.OpConst, 0, 0, hb)
	c := b.op("c0", graph.OpConst, 0, 0, hb)
	var last int
	for t := 0; t < cfg.Steps; t++ {
		p := fmt.Sprintf("t%d", t)
		x := b.op(p+"/x", graph.OpInput, 0, 0, int64(n*cfg.Input*BytesPerElement))
		ih := b.op(p+"/ih", graph.OpMatMul, matmulFLOPs(n, cfg.Input, 4*cfg.Hidden),
			int64(cfg.Input*4*cfg.Hidden*BytesPerElement), gb, x)
		hh := b.op(p+"/hh", graph.OpMatMul, matmulFLOPs(n, cfg.Hidden, 4*cfg.Hidden),
			int64(cfg.Hidden*4*cfg.Hidden*BytesPerElement), gb, h)
		gates := b.elemwise(p+"/gates", gb, ih, hh)
		split := b.op(p+"/split", graph.OpSplit, 0, 0, gb, gates)
		i := b.op(p+"/i", graph.OpActivation, float64(hb)/BytesPerElement, 0, hb, split)
		f := b.op(p+"/f", graph.OpActivation, float64(hb)/BytesPerElement, 0, hb, split)
		g := b.op(p+"/g", graph.OpActivation, float64(hb)/BytesPerElement, 0, hb, split)
		o := b.op(p+"/o", graph.OpActivation, float64(hb)/BytesPerElement, 0, hb, split)
		fc := b.elemwise(p+"/f*c", hb, f, c)
		ig := b.elemwise(p+"/i*g", hb, i, g)
		c = b.elemwise(p+"/c", hb, fc, ig)
		tc := b.op(p+"/tanh_c", graph.OpActivation, float64(hb)/BytesPerElement, 0, hb, c)
		h = b.elemwise(p+"/h", hb, o, tc)
		last = h
	}
	if cfg.Vocab > 0 {
		vb := int64(n * cfg.Vocab * BytesPerElement)
		logits := b.op("proj", graph.OpMatMul, matmulFLOPs(n, cfg.Hidden, cfg.Vocab),
			int64(cfg.Hidden*cfg.Vocab*BytesPerElement), vb, last)
		b.op("output", graph.OpOutput, 0, 0, vb, logits)
	} else {
		b.op("output", graph.OpOutput, 0, 0, hb, last)
	}
	return b.finish()
}

// MLPConfig parameterizes the multilayer-perceptron generator.
type MLPConfig struct {
	Name string
	// Layers is the number of hidden layers.
	Layers int
	// Input, Hidden and Output are the layer widths.
	Input, Hidden, Output int
	// Batch is the inference batch size (defaults to 1 when zero).
	Batch int
}

// MLP builds a straight-line multilayer perceptron with norm and activation
// between layers, the smallest family in the corpus.
func MLP(cfg MLPConfig) *graph.Graph {
	b := newBuilder(cfg.Name)
	n := cfg.Batch
	if n <= 0 {
		n = 1
	}
	x := b.op("input", graph.OpInput, 0, 0, int64(n*cfg.Input*BytesPerElement))
	in := cfg.Input
	for l := 0; l < cfg.Layers; l++ {
		p := fmt.Sprintf("l%d", l)
		ob := int64(n * cfg.Hidden * BytesPerElement)
		x = b.op(p+"/fc", graph.OpMatMul, matmulFLOPs(n, in, cfg.Hidden),
			int64(in*cfg.Hidden*BytesPerElement), ob, x)
		x = b.op(p+"/norm", graph.OpNorm, float64(ob), int64(2*cfg.Hidden*BytesPerElement), ob, x)
		x = b.op(p+"/act", graph.OpActivation, float64(ob)/BytesPerElement, 0, ob, x)
		in = cfg.Hidden
	}
	ob := int64(n * cfg.Output * BytesPerElement)
	x = b.op("head", graph.OpMatMul, matmulFLOPs(n, in, cfg.Output),
		int64(in*cfg.Output*BytesPerElement), ob, x)
	b.op("output", graph.OpOutput, 0, 0, ob, x)
	return b.finish()
}
