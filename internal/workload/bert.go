package workload

import (
	"fmt"

	"mcmpart/internal/graph"
)

// BERTConfig parameterizes the transformer generator. The default
// (DefaultBERTConfig) reproduces the workload of Sec. 5.3: a BERT-Large
// encoder whose op-level graph has 2138 nodes and ~340 M parameters
// (~650 MiB at bf16).
type BERTConfig struct {
	Name string
	// Layers is the number of transformer encoder layers.
	Layers int
	// Hidden is the model width.
	Hidden int
	// Heads is the number of attention heads.
	Heads int
	// HeadGroups is the number of groups the attention core is decomposed
	// into; the compiler emits one QK/softmax/AV chain per group.
	HeadGroups int
	// FF is the feed-forward inner width.
	FF int
	// Vocab is the token vocabulary size.
	Vocab int
	// EmbedShards is the number of shards the token-embedding table is
	// split into so that no single op exceeds a chiplet's SRAM.
	EmbedShards int
	// SeqLen is the sequence length of the compiled graph.
	SeqLen int
	// MaxPos is the positional-embedding table length.
	MaxPos int
	// Classes is the classification-head width.
	Classes int
}

// DefaultBERTConfig returns the BERT-Large configuration used by the
// experiments.
func DefaultBERTConfig() BERTConfig {
	return BERTConfig{
		Name:        "bert",
		Layers:      24,
		Hidden:      1024,
		Heads:       16,
		HeadGroups:  4,
		FF:          4096,
		Vocab:       30522,
		EmbedShards: 4,
		SeqLen:      256,
		MaxPos:      512,
		Classes:     2,
	}
}

// BERT builds the production-scale transformer workload with the default
// configuration.
func BERT() *graph.Graph { return BuildBERT(DefaultBERTConfig()) }

// bertBuilder wraps builder with transformer-specific sub-graphs.
type bertBuilder struct {
	*builder
	cfg BERTConfig
	act int64 // bytes of one S x H activation
}

// layerNorm emits the compiler's 9-op layer-norm decomposition:
// mean, sub, square, variance, add-eps, rsqrt, normalize, scale, shift.
// The learned scale/shift parameters are attached to the last two ops.
func (b *bertBuilder) layerNorm(prefix string, x int) int {
	h := int64(b.cfg.Hidden * BytesPerElement)
	rowB := int64(b.cfg.SeqLen * BytesPerElement)
	mean := b.op(prefix+"/mean", graph.OpReduce, float64(b.act)/BytesPerElement, 0, rowB, x)
	sub := b.elemwise(prefix+"/sub", b.act, x, mean)
	sqr := b.elemwise(prefix+"/sqr", b.act, sub)
	vr := b.op(prefix+"/var", graph.OpReduce, float64(b.act)/BytesPerElement, 0, rowB, sqr)
	eps := b.elemwise(prefix+"/eps", rowB, vr)
	rsq := b.elemwise(prefix+"/rsqrt", rowB, eps)
	norm := b.elemwise(prefix+"/norm", b.act, sub, rsq)
	scale := b.op(prefix+"/scale", graph.OpElementwise, float64(b.act)/BytesPerElement, h, b.act, norm)
	return b.op(prefix+"/shift", graph.OpElementwise, float64(b.act)/BytesPerElement, h, b.act, scale)
}

// softmax emits the 5-op numerically-stable softmax decomposition over
// attention scores of the given size.
func (b *bertBuilder) softmax(prefix string, x int, bytes int64) int {
	rowB := bytes / int64(b.cfg.SeqLen)
	max := b.op(prefix+"/max", graph.OpReduce, float64(bytes)/BytesPerElement, 0, rowB, x)
	sub := b.elemwise(prefix+"/sub", bytes, x, max)
	exp := b.elemwise(prefix+"/exp", bytes, sub)
	sum := b.op(prefix+"/sum", graph.OpReduce, float64(bytes)/BytesPerElement, 0, rowB, exp)
	return b.elemwise(prefix+"/div", bytes, exp, sum)
}

// gelu emits the 7-op tanh-approximation GELU decomposition:
// 0.5 * x * (1 + tanh(sqrt(2/pi) * (x + 0.044715 * x^3))).
func (b *bertBuilder) gelu(prefix string, x int, bytes int64) int {
	cube := b.elemwise(prefix+"/cube", bytes, x)
	coef := b.elemwise(prefix+"/coef", bytes, cube)
	inner := b.elemwise(prefix+"/inner", bytes, x, coef)
	tanh := b.op(prefix+"/tanh", graph.OpActivation, float64(bytes)/BytesPerElement, 0, bytes, inner)
	one := b.elemwise(prefix+"/one", bytes, tanh)
	half := b.elemwise(prefix+"/half", bytes, x)
	return b.elemwise(prefix+"/mul", bytes, one, half)
}

// projection emits matmul + bias-add with the given weight shape.
func (b *bertBuilder) projection(prefix string, x, in, out int, outBytes int64) int {
	mm := b.op(prefix+"/matmul", graph.OpMatMul,
		matmulFLOPs(b.cfg.SeqLen, in, out), int64(in*out*BytesPerElement), outBytes, x)
	return b.op(prefix+"/bias", graph.OpElementwise,
		float64(outBytes)/BytesPerElement, int64(out*BytesPerElement), outBytes, mm)
}

// BuildBERT builds a transformer encoder graph from cfg. The op-level
// decomposition follows what an ML compiler's HLO looks like after fusion:
// layer norms expand to 9 ops, softmax to 5, GELU to 7, and the attention
// core is emitted once per head group.
func BuildBERT(cfg BERTConfig) *graph.Graph {
	bb := &bertBuilder{
		builder: newBuilder(cfg.Name),
		cfg:     cfg,
		act:     int64(cfg.SeqLen * cfg.Hidden * BytesPerElement),
	}
	b, act := bb, bb.act
	idsB := int64(cfg.SeqLen * 4) // int32 token IDs

	// Embedding stack. The token table is sharded so no single op holds
	// more than ~1/EmbedShards of the table (a whole-table lookup would
	// exceed a chiplet's SRAM and admit no placement at all). The
	// positional table needs no index operand: the compiler folds the
	// iota into the lookup.
	ids := b.op("input_ids", graph.OpInput, 0, 0, idsB)
	shardRows := (cfg.Vocab + cfg.EmbedShards - 1) / cfg.EmbedShards
	shardParams := int64(shardRows * cfg.Hidden * BytesPerElement)
	var emb int
	for s := 0; s < cfg.EmbedShards; s++ {
		g := b.op(fmt.Sprintf("embed/tok%d", s), graph.OpEmbedding,
			float64(act)/BytesPerElement, shardParams, act, ids)
		if s == 0 {
			emb = g
		} else {
			emb = b.elemwise(fmt.Sprintf("embed/tokadd%d", s), act, emb, g)
		}
	}
	pos := b.op("embed/pos", graph.OpEmbedding, float64(act)/BytesPerElement,
		int64(cfg.MaxPos*cfg.Hidden*BytesPerElement), act)
	emb = b.elemwise("embed/posadd", act, emb, pos)
	x := b.layerNorm("embed/ln", emb)

	groupHeads := cfg.Heads / cfg.HeadGroups
	scoreB := int64(groupHeads * cfg.SeqLen * cfg.SeqLen * BytesPerElement)
	headDim := cfg.Hidden / cfg.Heads
	for l := 0; l < cfg.Layers; l++ {
		lp := fmt.Sprintf("layer%d", l)
		residual := x

		// Attention-mask preprocessing. The compiler rematerializes the
		// mask per layer: a single shared mask subgraph would fan out to
		// every layer, and under the triangle constraint (Eq. 4) such a
		// global producer admits no valid partition beyond two chips.
		maskIn := b.op(lp+"/mask", graph.OpInput, 0, 0, idsB)
		maskS := b.elemwise(lp+"/mask/sub", idsB, maskIn)
		mask := b.elemwise(lp+"/mask/scale", idsB, maskS)
		y := b.layerNorm(lp+"/ln1", x)
		var qkv [3]int
		for i, name := range [3]string{"q", "k", "v"} {
			p := b.projection(lp+"/"+name, y, cfg.Hidden, cfg.Hidden, act)
			p = b.op(lp+"/"+name+"/reshape", graph.OpReshape, 0, 0, act, p)
			qkv[i] = b.op(lp+"/"+name+"/transpose", graph.OpReshape, 0, 0, act, p)
		}
		// One attention chain per head group.
		groupOut := make([]int, cfg.HeadGroups)
		groupFLOPs := matmulFLOPs(cfg.SeqLen, headDim, cfg.SeqLen) * float64(groupHeads)
		for gi := 0; gi < cfg.HeadGroups; gi++ {
			gp := fmt.Sprintf("%s/attn/g%d", lp, gi)
			qk := b.op(gp+"/qk", graph.OpMatMul, groupFLOPs, 0, scoreB, qkv[0], qkv[1])
			sc := b.elemwise(gp+"/scale", scoreB, qk)
			ms := b.elemwise(gp+"/mask", scoreB, sc, mask)
			sm := b.softmax(gp+"/softmax", ms, scoreB)
			groupOut[gi] = b.op(gp+"/av", graph.OpMatMul, groupFLOPs, 0,
				act/int64(cfg.HeadGroups), sm, qkv[2])
		}
		cat := b.op(lp+"/attn/concat", graph.OpConcat, 0, 0, act, groupOut...)
		rs := b.op(lp+"/attn/reshape", graph.OpReshape, 0, 0, act, cat)
		proj := b.projection(lp+"/attn/out", rs, cfg.Hidden, cfg.Hidden, act)
		drop := b.elemwise(lp+"/attn/dropout", act, proj)
		x = b.elemwise(lp+"/attn/residual", act, drop, residual)

		// Feed-forward block.
		residual = x
		y = b.layerNorm(lp+"/ln2", x)
		ffB := int64(cfg.SeqLen * cfg.FF * BytesPerElement)
		fc1 := b.projection(lp+"/ffn/fc1", y, cfg.Hidden, cfg.FF, ffB)
		g := b.gelu(lp+"/ffn/gelu", fc1, ffB)
		fc2 := b.projection(lp+"/ffn/fc2", g, cfg.FF, cfg.Hidden, act)
		drop = b.elemwise(lp+"/ffn/dropout", act, fc2)
		x = b.elemwise(lp+"/ffn/residual", act, drop, residual)
	}

	// Pooler and classification head.
	hB := int64(cfg.Hidden * BytesPerElement)
	cls := b.op("pooler/cls", graph.OpSplit, 0, 0, hB, x)
	pool := b.op("pooler/dense", graph.OpMatMul, matmulFLOPs(1, cfg.Hidden, cfg.Hidden),
		int64(cfg.Hidden*cfg.Hidden*BytesPerElement), hB, cls)
	pb := b.op("pooler/bias", graph.OpElementwise, float64(hB)/BytesPerElement,
		int64(cfg.Hidden*BytesPerElement), hB, pool)
	pt := b.op("pooler/tanh", graph.OpActivation, float64(hB)/BytesPerElement, 0, hB, pb)
	clsB := int64(cfg.Classes * BytesPerElement)
	logits := b.projection("head", pt, cfg.Hidden, cfg.Classes, clsB)
	b.op("output", graph.OpOutput, 0, 0, clsB, logits)
	return b.finish()
}
