package rl

import (
	"context"
	"math"
	"math/rand"

	"mcmpart/internal/mat"
	"mcmpart/internal/nn"
)

// PPOConfig holds the training hyper-parameters. The paper's selected
// values (Sec. 5.1) are 20 rollouts, 4 minibatches and 10 epochs.
type PPOConfig struct {
	Rollouts    int     // episodes collected per iteration
	MiniBatches int     // minibatches per epoch
	Epochs      int     // passes over the collected batch per iteration
	LR          float64 // Adam learning rate
	ClipEps     float64 // PPO clipping epsilon
	ValueCoef   float64 // value-loss weight
	EntropyCoef float64 // entropy-bonus weight
	MaxGradNorm float64 // global gradient clip (0 disables)
	// Workers bounds the rollout-collection fan-out (0 means the process
	// default, typically NumCPU). Collection is deterministic in the seed
	// regardless of the value: episode randomness derives from the episode
	// index, and results merge in episode order. See internal/parallel.
	Workers int
}

// DefaultPPOConfig returns the paper's training hyper-parameters.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Rollouts:    20,
		MiniBatches: 4,
		Epochs:      10,
		LR:          3e-4,
		ClipEps:     0.2,
		ValueCoef:   0.5,
		EntropyCoef: 0.01,
		MaxGradNorm: 0.5,
	}
}

// QuickPPOConfig returns a reduced setting for tests and default benches.
func QuickPPOConfig() PPOConfig {
	cfg := DefaultPPOConfig()
	cfg.Rollouts = 8
	cfg.Epochs = 4
	cfg.MiniBatches = 2
	return cfg
}

// transition is one PPO sample: the state (graph + previous assignment),
// the joint action, and its credit.
type transition struct {
	env    *Env
	prev   []int
	action []int
	logp   float64
	value  float64
	ret    float64 // reward-to-go (gamma = 1 over the T refinement steps)
	adv    float64
}

// Trainer runs PPO over one policy and any number of environments.
type Trainer struct {
	Policy *Policy
	Cfg    PPOConfig

	opt *nn.Adam
	rng *rand.Rand
}

// NewTrainer builds a PPO trainer.
func NewTrainer(policy *Policy, cfg PPOConfig, rng *rand.Rand) *Trainer {
	opt := nn.NewAdam(policy.Params(), cfg.LR)
	opt.MaxGradNorm = cfg.MaxGradNorm
	return &Trainer{Policy: policy, Cfg: cfg, opt: opt, rng: rng}
}

// IterationStats summarizes one PPO iteration.
type IterationStats struct {
	MeanReward  float64
	MeanEntropy float64
	PolicyLoss  float64
	ValueLoss   float64
	Samples     int
}

// Iterate performs one PPO iteration: collect Rollouts episodes round-robin
// over the environments (fanned across the worker pool — see rollout.go for
// the determinism contract), compute normalized advantages, and run
// Epochs x MiniBatches clipped-surrogate updates.
func (t *Trainer) Iterate(envs []*Env) IterationStats {
	var stats IterationStats
	var buf []transition
	results := t.collect(envs)
	for r := range results {
		env := envs[r%len(envs)]
		for _, s := range results[r].steps {
			env.absorb(s.p, s.v)
		}
		buf = append(buf, results[r].transitions...)
	}
	stats.Samples = len(buf)
	// Advantages, normalized over the batch.
	var mean, sq float64
	for i := range buf {
		buf[i].adv = buf[i].ret - buf[i].value
		mean += buf[i].adv
		stats.MeanReward += buf[i].ret
	}
	mean /= float64(len(buf))
	stats.MeanReward /= float64(len(buf))
	for i := range buf {
		d := buf[i].adv - mean
		sq += d * d
	}
	std := math.Sqrt(sq/float64(len(buf))) + 1e-8
	for i := range buf {
		buf[i].adv = (buf[i].adv - mean) / std
	}

	order := make([]int, len(buf))
	for i := range order {
		order[i] = i
	}
	nb := t.Cfg.MiniBatches
	if nb < 1 {
		nb = 1
	}
	for epoch := 0; epoch < t.Cfg.Epochs; epoch++ {
		t.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for b := 0; b < nb; b++ {
			lo, hi := b*len(order)/nb, (b+1)*len(order)/nb
			if lo == hi {
				continue
			}
			nn.ZeroGrads(t.Policy.Params())
			var pl, vl, ent float64
			for _, idx := range order[lo:hi] {
				p, v, e := t.update(&buf[idx], float64(hi-lo))
				pl += p
				vl += v
				ent += e
			}
			t.opt.Step()
			stats.PolicyLoss += pl
			stats.ValueLoss += vl
			stats.MeanEntropy += ent / float64(hi-lo)
		}
	}
	total := float64(t.Cfg.Epochs * nb)
	stats.PolicyLoss /= total
	stats.ValueLoss /= total
	stats.MeanEntropy /= total
	return stats
}

// update accumulates the gradients of one transition's PPO loss, scaled by
// 1/batch, and returns its loss components.
func (t *Trainer) update(tr *transition, batch float64) (policyLoss, valueLoss, entropy float64) {
	f := t.Policy.Forward(tr.env.Ctx, tr.prev)
	logpNew := JointLogProb(f.LogProbs, tr.action)
	ratio := math.Exp(logpNew - tr.logp)
	adv := tr.adv
	clipped := ratio < 1-t.Cfg.ClipEps || ratio > 1+t.Cfg.ClipEps
	surr1 := ratio * adv
	surr2 := math.Max(math.Min(ratio, 1+t.Cfg.ClipEps), 1-t.Cfg.ClipEps) * adv
	policyLoss = -math.Min(surr1, surr2)
	// dL/dlogpNew: zero when the clipped branch is active and smaller.
	var dLogp float64
	if !(clipped && surr2 < surr1) {
		dLogp = -adv * ratio
	}
	entropy = MeanEntropy(f.Probs, f.LogProbs)

	// Gradient wrt logits: policy term + entropy bonus.
	n, c := f.Probs.Rows, f.Probs.Cols
	dLogits := mat.New(n, c)
	scale := 1 / batch
	beta := t.Cfg.EntropyCoef / float64(n)
	for i := 0; i < n; i++ {
		pi := f.Probs.Row(i)
		li := f.LogProbs.Row(i)
		di := dLogits.Row(i)
		// Per-row entropy for the entropy-gradient identity.
		var hRow float64
		for j := range pi {
			hRow -= pi[j] * li[j]
		}
		a := tr.action[i]
		for j := range di {
			g := dLogp * (indicator(j == a) - pi[j])
			// d(-H)/dlogit_j = p_j*(log p_j + H).
			g += beta * pi[j] * (li[j] + hRow)
			di[j] = g * scale
		}
	}
	vErr := f.Value - tr.ret
	valueLoss = 0.5 * vErr * vErr
	dValue := t.Cfg.ValueCoef * vErr * scale
	t.Policy.Backward(f, dLogits, dValue)
	return policyLoss, valueLoss, entropy
}

func indicator(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TrainUntil runs PPO iterations on the environments until the first
// environment has consumed at least sampleBudget evaluations, returning the
// per-iteration stats. This is the "RL" configuration of the experiments:
// training from scratch against an evaluation budget.
//
// Cancelling or timing out ctx stops the loop at the next iteration
// boundary and returns the stats so far together with ctx.Err(); the
// environments keep their best-so-far trajectory. The check sits between
// iterations, not inside one, so cancellation never tears a PPO batch —
// uncancelled runs are bit-identical to the pre-context behavior.
func (t *Trainer) TrainUntil(ctx context.Context, envs []*Env, sampleBudget int) ([]IterationStats, error) {
	var all []IterationStats
	for envs[0].Samples < sampleBudget {
		if err := ctx.Err(); err != nil {
			return all, err
		}
		all = append(all, t.Iterate(envs))
	}
	return all, nil
}
