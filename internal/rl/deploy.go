package rl

import (
	"context"
	"math/rand"
)

// ZeroShot deploys a (pre-trained) policy on an environment without any
// weight updates — the paper's "RL Zeroshot" configuration: run T-step
// refinement episodes, handing each sampled assignment to the solver, until
// the evaluation budget is consumed. The environment's History records the
// best-so-far curve.
//
// Cancelling ctx stops the loop before the next sample and returns
// ctx.Err(); the environment keeps its best-so-far trajectory.
func ZeroShot(ctx context.Context, policy *Policy, env *Env, budget int, rng *rand.Rand) error {
	for env.Samples < budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		prev := unassigned(env.Ctx.G.NumNodes())
		for step := 0; step < policy.Cfg.Iterations && env.Samples < budget; step++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			f := policy.Forward(env.Ctx, prev)
			if env.UseSampleMode {
				env.StepProbs(MixedProbRows(f.Probs, env.ExploreEps()), rng)
				prev = SampleActions(f.Probs, rng)
			} else {
				y := SampleActions(f.Probs, rng)
				env.StepActions(y, rng)
				prev = y
			}
		}
	}
	return nil
}

// FineTune continues PPO training of a (pre-trained) policy on a single
// environment until the evaluation budget is consumed — the paper's
// "RL Finetuning" configuration. Cancellation follows TrainUntil's
// contract: stats so far plus ctx.Err(), best-so-far kept on the
// environment.
func FineTune(ctx context.Context, policy *Policy, env *Env, cfg PPOConfig, budget int, rng *rand.Rand) ([]IterationStats, error) {
	trainer := NewTrainer(policy, cfg, rng)
	return trainer.TrainUntil(ctx, []*Env{env}, budget)
}
