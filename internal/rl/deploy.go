package rl

import "math/rand"

// ZeroShot deploys a (pre-trained) policy on an environment without any
// weight updates — the paper's "RL Zeroshot" configuration: run T-step
// refinement episodes, handing each sampled assignment to the solver, until
// the evaluation budget is consumed. The environment's History records the
// best-so-far curve.
func ZeroShot(policy *Policy, env *Env, budget int, rng *rand.Rand) {
	for env.Samples < budget {
		prev := unassigned(env.Ctx.G.NumNodes())
		for step := 0; step < policy.Cfg.Iterations && env.Samples < budget; step++ {
			f := policy.Forward(env.Ctx, prev)
			if env.UseSampleMode {
				env.StepProbs(MixedProbRows(f.Probs, env.ExploreEps()), rng)
				prev = SampleActions(f.Probs, rng)
			} else {
				y := SampleActions(f.Probs, rng)
				env.StepActions(y, rng)
				prev = y
			}
		}
	}
}

// FineTune continues PPO training of a (pre-trained) policy on a single
// environment until the evaluation budget is consumed — the paper's
// "RL Finetuning" configuration.
func FineTune(policy *Policy, env *Env, cfg PPOConfig, budget int, rng *rand.Rand) []IterationStats {
	trainer := NewTrainer(policy, cfg, rng)
	return trainer.TrainUntil([]*Env{env}, budget)
}
