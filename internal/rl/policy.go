// Package rl implements the paper's constrained reinforcement-learning
// partitioner (Sec. 4): a GraphSAGE encoder feeding a feed-forward policy
// head that emits, for every node, a probability distribution over chips
// (Figure 3), trained with PPO against rewards evaluated on
// solver-corrected partitions. Decoding is iterative but non-autoregressive
// (Eq. 7): the policy conditions on the whole previous assignment and
// refines it for a small number of iterations T.
//
//mcmlint:deterministic
package rl

import (
	"fmt"
	"math/rand"

	"mcmpart/internal/gnn"
	"mcmpart/internal/graph"
	"mcmpart/internal/mat"
	"mcmpart/internal/mcm"
	"mcmpart/internal/nn"
)

// Config shapes the policy network. The zero value is invalid; use
// DefaultConfig (paper-scale) or QuickConfig (bench-scale) and override.
type Config struct {
	// Chips is the action-space size C.
	Chips int
	// Hidden is the GraphSAGE and policy-head width (paper: 128).
	Hidden int
	// SAGELayers is the GraphSAGE depth (paper: 8).
	SAGELayers int
	// Iterations is T, the number of non-autoregressive refinement steps
	// per episode (Eq. 7).
	Iterations int
	// ChipFeatures widens the policy-head input with 2C per-chip capacity
	// features (normalized SRAM and peak-compute per chip, from
	// GraphContext.ChipFeat), so the policy can see which dies are big and
	// which are little on heterogeneous packages. Off by default: the
	// paper's homogeneous packages carry no information there, and the
	// network shape stays bit-identical to the pre-heterogeneity policy.
	ChipFeatures bool
}

// headExtra returns the extra policy-head input width of optional features.
func (c Config) headExtra() int {
	if c.ChipFeatures {
		return 2 * c.Chips
	}
	return 0
}

// DefaultConfig returns the paper's network shape for a package with the
// given chip count: 8 GraphSAGE layers of width 128, a 2-layer policy head
// of the same width.
func DefaultConfig(chips int) Config {
	return Config{Chips: chips, Hidden: 128, SAGELayers: 8, Iterations: 2}
}

// QuickConfig returns a scaled-down shape for tests and default benchmark
// runs on one CPU core (see DESIGN.md for the scale knobs).
func QuickConfig(chips int) Config {
	return Config{Chips: chips, Hidden: 32, SAGELayers: 2, Iterations: 2}
}

// Policy is the trainable network: GraphSAGE encoder, a two-layer policy
// head over [node embedding ; previous assignment one-hot], and a two-layer
// value head over the pooled state.
type Policy struct {
	Cfg Config

	sage     *gnn.SAGE
	fc1, fc2 *nn.Linear
	vf1, vf2 *nn.Linear
	params   []*nn.Param
}

// NewPolicy builds a policy for the given configuration.
func NewPolicy(cfg Config, rng *rand.Rand) *Policy {
	if cfg.Chips <= 0 || cfg.Hidden <= 0 || cfg.SAGELayers <= 0 || cfg.Iterations <= 0 {
		panic(fmt.Sprintf("rl: invalid config %+v", cfg))
	}
	p := &Policy{Cfg: cfg}
	p.sage = gnn.NewSAGE(gnn.FeatureDim, cfg.Hidden, cfg.SAGELayers, rng)
	in := cfg.Hidden + cfg.Chips
	// The policy head additionally sees the per-chip capacity features on
	// heterogeneous packages; the value head pools over embeddings and the
	// chip histogram only (capacities are constant per package, so they
	// carry no per-state information for the baseline).
	p.fc1 = nn.NewLinear("policy.fc1", in+cfg.headExtra(), cfg.Hidden, rng)
	p.fc2 = nn.NewLinear("policy.fc2", cfg.Hidden, cfg.Chips, rng)
	p.vf1 = nn.NewLinear("value.fc1", in, cfg.Hidden, rng)
	p.vf2 = nn.NewLinear("value.fc2", cfg.Hidden, 1, rng)
	p.params = append(p.params, p.sage.Params()...)
	p.params = append(p.params, p.fc1.Params()...)
	p.params = append(p.params, p.fc2.Params()...)
	p.params = append(p.params, p.vf1.Params()...)
	p.params = append(p.params, p.vf2.Params()...)
	return p
}

// Params returns all trainable parameters.
func (p *Policy) Params() []*nn.Param { return p.params }

// Clone returns an independent policy with identical weights. Forward keeps
// per-call caches inside the encoder, so a policy is not safe for concurrent
// Forwards; rollout workers each run on a clone instead.
func (p *Policy) Clone() *Policy {
	c := NewPolicy(p.Cfg, rand.New(rand.NewSource(0)))
	if err := c.Restore(p.Snapshot()); err != nil {
		panic("rl: Clone restore failed: " + err.Error())
	}
	return c
}

// Snapshot captures the policy weights (a pre-training checkpoint).
func (p *Policy) Snapshot() nn.Snapshot { return nn.TakeSnapshot(p.params) }

// Restore loads a checkpoint taken from a policy with the same Config.
func (p *Policy) Restore(s nn.Snapshot) error { return s.Restore(p.params) }

// GraphContext caches the per-graph tensors the policy needs: adjacency and
// static features, plus the optional per-chip capacity features of the
// target package. Build one per graph and reuse it across episodes.
type GraphContext struct {
	G   *graph.Graph
	Adj *gnn.Adjacency
	X   *mat.Dense
	// ChipFeat is the 2C-vector of per-chip capacity features consumed by
	// policies with Config.ChipFeatures: [SRAM_0..SRAM_{C-1},
	// FLOPs_0..FLOPs_{C-1}], each normalized by the package maximum so the
	// biggest die reads 1. Nil for package-agnostic contexts.
	ChipFeat []float64
}

// NewGraphContext precomputes the encoder inputs for a graph.
func NewGraphContext(g *graph.Graph) *GraphContext {
	return &GraphContext{G: g, Adj: gnn.BuildAdjacency(g), X: gnn.Features(g)}
}

// NewGraphContextForPackage precomputes the encoder inputs for a graph
// targeted at a concrete package, including the per-chip capacity features
// heterogeneity-aware policies (Config.ChipFeatures) consume.
func NewGraphContextForPackage(g *graph.Graph, pkg *mcm.Package) *GraphContext {
	ctx := NewGraphContext(g)
	c := pkg.Chips
	feat := make([]float64, 2*c)
	maxSRAM := float64(pkg.ChipSRAM(0))
	maxFLOPs := pkg.ChipFLOPs(0)
	for i := 1; i < c; i++ {
		if s := float64(pkg.ChipSRAM(i)); s > maxSRAM {
			maxSRAM = s
		}
		if f := pkg.ChipFLOPs(i); f > maxFLOPs {
			maxFLOPs = f
		}
	}
	for i := 0; i < c; i++ {
		feat[i] = float64(pkg.ChipSRAM(i)) / maxSRAM
		feat[c+i] = pkg.ChipFLOPs(i) / maxFLOPs
	}
	ctx.ChipFeat = feat
	return ctx
}

// Forward is one policy evaluation on the state (graph, previous
// assignment). prev has one entry per node; -1 means unassigned (the state
// at t=0). The result holds everything Backward needs and stays valid until
// the next Forward on this policy.
type Forward struct {
	Probs    *mat.Dense // N x C action distribution P (Figure 3's output)
	LogProbs *mat.Dense // N x C log-probabilities
	Value    float64

	ctx    *GraphContext
	z      *mat.Dense // policy-head input [h ; onehot(prev)]
	a1     *mat.Dense // post-ReLU hidden of the policy head
	logits *mat.Dense
	pooled *mat.Dense // value-head input
	v1     *mat.Dense
	n      int
}

// Forward runs the network. The returned buffers are owned by the caller
// (fresh allocations) so multiple Forwards can coexist in a PPO batch.
func (p *Policy) Forward(ctx *GraphContext, prev []int) *Forward {
	n := ctx.G.NumNodes()
	if len(prev) != n {
		panic(fmt.Sprintf("rl: prev has %d entries for %d nodes", len(prev), n))
	}
	c := p.Cfg.Chips
	extra := p.Cfg.headExtra()
	if extra != 0 && len(ctx.ChipFeat) != extra {
		panic(fmt.Sprintf("rl: policy wants %d chip features, context has %d (build it with NewGraphContextForPackage)",
			extra, len(ctx.ChipFeat)))
	}
	h := p.sage.Forward(ctx.Adj, ctx.X)

	f := &Forward{ctx: ctx, n: n}
	f.z = mat.New(n, p.Cfg.Hidden+c+extra)
	for i := 0; i < n; i++ {
		row := f.z.Row(i)
		copy(row, h.Row(i))
		if a := prev[i]; a >= 0 && a < c {
			row[p.Cfg.Hidden+a] = 1
		}
		if extra != 0 {
			copy(row[p.Cfg.Hidden+c:], ctx.ChipFeat)
		}
	}
	f.a1 = mat.New(n, p.Cfg.Hidden)
	p.fc1.Forward(f.a1, f.z)
	nn.ReLU(f.a1, f.a1)
	f.logits = mat.New(n, c)
	p.fc2.Forward(f.logits, f.a1)
	f.Probs = mat.New(n, c)
	nn.SoftmaxRows(f.Probs, f.logits)
	f.LogProbs = mat.New(n, c)
	nn.LogSoftmaxRows(f.LogProbs, f.logits)

	// Value head over the pooled state: mean embedding plus the
	// normalized chip histogram of the previous assignment.
	f.pooled = mat.New(1, p.Cfg.Hidden+c)
	pr := f.pooled.Row(0)
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		hr := h.Row(i)
		for j, v := range hr {
			pr[j] += v * inv
		}
		if a := prev[i]; a >= 0 && a < c {
			pr[p.Cfg.Hidden+a] += inv
		}
	}
	f.v1 = mat.New(1, p.Cfg.Hidden)
	p.vf1.Forward(f.v1, f.pooled)
	nn.ReLU(f.v1, f.v1)
	vout := mat.New(1, 1)
	p.vf2.Forward(vout, f.v1)
	f.Value = vout.At(0, 0)
	return f
}

// Backward accumulates parameter gradients for a forward pass given the
// loss gradient with respect to the logits (N x C) and the value output.
// The policy's layer caches must still correspond to f — in PPO's update
// loop each transition is re-Forwarded immediately before its Backward.
func (p *Policy) Backward(f *Forward, dLogits *mat.Dense, dValue float64) {
	c := p.Cfg.Chips
	// Policy head.
	dA1 := mat.New(f.n, p.Cfg.Hidden)
	p.fc2.Backward(dA1, dLogits)
	nn.ReLUBackward(dA1, dA1, f.a1)
	dZ := mat.New(f.n, p.Cfg.Hidden+c+p.Cfg.headExtra())
	p.fc1.Backward(dZ, dA1)
	// Value head.
	dVout := mat.FromSlice(1, 1, []float64{dValue})
	dV1 := mat.New(1, p.Cfg.Hidden)
	p.vf2.Backward(dV1, dVout)
	nn.ReLUBackward(dV1, dV1, f.v1)
	dPooled := mat.New(1, p.Cfg.Hidden+c)
	p.vf1.Backward(dPooled, dV1)
	// Gradient into the embeddings: policy rows plus the pooled mean.
	dH := mat.New(f.n, p.Cfg.Hidden)
	inv := 1 / float64(f.n)
	pr := dPooled.Row(0)
	for i := 0; i < f.n; i++ {
		dr := dH.Row(i)
		zr := dZ.Row(i)
		for j := 0; j < p.Cfg.Hidden; j++ {
			dr[j] = zr[j] + pr[j]*inv
		}
	}
	p.sage.Backward(dH)
}

// SampleActions draws one chip per node from the distribution.
func SampleActions(probs *mat.Dense, rng *rand.Rand) []int {
	actions := make([]int, probs.Rows)
	for i := range actions {
		row := probs.Row(i)
		x := rng.Float64()
		a := len(row) - 1
		for c, pc := range row {
			x -= pc
			if x <= 0 {
				a = c
				break
			}
		}
		actions[i] = a
	}
	return actions
}

// JointLogProb returns the log-probability of the joint assignment under
// the per-node distributions: sum_i log P[i][y_i].
func JointLogProb(logProbs *mat.Dense, actions []int) float64 {
	var sum float64
	for i, a := range actions {
		sum += logProbs.At(i, a)
	}
	return sum
}

// MeanEntropy returns the average per-node entropy of the distribution.
func MeanEntropy(probs, logProbs *mat.Dense) float64 {
	var h float64
	for i, p := range probs.Data {
		if p > 0 {
			h -= p * logProbs.Data[i]
		}
	}
	return h / float64(probs.Rows)
}

// ProbRows exposes the distribution as the [][]float64 the constraint
// solver's SAMPLE mode consumes (row views, no copying).
func ProbRows(probs *mat.Dense) [][]float64 {
	rows := make([][]float64, probs.Rows)
	for i := range rows {
		rows[i] = probs.Row(i)
	}
	return rows
}

// MixedProbRows returns the policy distribution blended with uniform:
// (1-eps) * P + eps/C per entry. It allocates fresh rows.
func MixedProbRows(probs *mat.Dense, eps float64) [][]float64 {
	n, c := probs.Rows, probs.Cols
	rows := make([][]float64, n)
	flat := make([]float64, n*c)
	u := eps / float64(c)
	for i := 0; i < n; i++ {
		rows[i] = flat[i*c : (i+1)*c]
		src := probs.Row(i)
		for j := range rows[i] {
			rows[i][j] = (1-eps)*src[j] + u
		}
	}
	return rows
}

// unassigned returns the t=0 state: every node unassigned.
func unassigned(n int) []int {
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	return prev
}
