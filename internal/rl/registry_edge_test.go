package rl

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcmpart/internal/mcm"
)

// TestRegistryEmptyDirectorySelection pins the empty-registry behavior: a
// fresh directory scans clean, selection finds nothing (without error), and
// the directory is created if missing.
func TestRegistryEmptyDirectorySelection(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist", "yet")
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Entries(); len(got) != 0 {
		t.Fatalf("empty registry lists %d entries", len(got))
	}
	dev4 := mcm.Dev4()
	if got := r.ForPackage(dev4); len(got) != 0 {
		t.Fatalf("empty registry matches %d policies", len(got))
	}
	policy, entry, found, err := r.LoadLatest(dev4)
	if err != nil {
		t.Fatalf("LoadLatest on an empty registry errored: %v", err)
	}
	if found || policy != nil || entry.Path != "" {
		t.Fatalf("LoadLatest on an empty registry = (%v, %+v, %t)", policy, entry, found)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("OpenRegistry did not create the directory: %v", err)
	}
}

// TestRegistryCorruptArtifacts covers the two corruption shapes: a file
// whose JSON is garbage is skipped at scan time (harmless foreign file),
// while a file with a readable header but an unrestorable snapshot is
// listed — and LoadLatest surfaces a descriptive error instead of
// installing a broken policy.
func TestRegistryCorruptArtifacts(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	dev4 := mcm.Dev4()

	// Garbage bytes: skipped, selection stays empty.
	if err := os.WriteFile(filepath.Join(dir, "garbage.policy.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Rescan(); err != nil {
		t.Fatal(err)
	}
	if len(r.Entries()) != 0 {
		t.Fatalf("garbage artifact was scanned as %d entries", len(r.Entries()))
	}
	if _, _, found, err := r.LoadLatest(dev4); found || err != nil {
		t.Fatalf("LoadLatest over garbage = (found=%t, err=%v)", found, err)
	}

	// Readable header, corrupt payload: save a real artifact, then strip
	// its snapshot weights.
	policy := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(1)))
	entry, err := r.Save(policy, dev4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entry.Path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["snapshot"] = json.RawMessage(`{}`)
	corrupted, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entry.Path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Rescan(); err != nil {
		t.Fatal(err)
	}
	if len(r.ForPackage(dev4)) != 1 {
		t.Fatalf("corrupt-payload artifact should still be listed (header is readable); got %d entries", len(r.ForPackage(dev4)))
	}
	_, e, found, err := r.LoadLatest(dev4)
	if !found {
		t.Fatal("LoadLatest did not find the corrupt artifact")
	}
	if err == nil {
		t.Fatal("LoadLatest restored a policy from a corrupt snapshot")
	}
	if e.Path != entry.Path {
		t.Fatalf("error names %s, want %s", e.Path, entry.Path)
	}
}

// TestRegistryDuplicateVersionNumbers pins selection when two artifacts
// carry the same sequence number for the same package (e.g. two machines
// saved version 001 into a shared directory): both are listed, selection
// breaks the tie by path deterministically, and the next Save allocates the
// following sequence number rather than clobbering either file.
func TestRegistryDuplicateVersionNumbers(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	dev4 := mcm.Dev4()
	pA := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(1)))
	eA, err := r.Save(pA, dev4)
	if err != nil {
		t.Fatal(err)
	}
	if eA.Seq != 1 {
		t.Fatalf("first save got seq %d", eA.Seq)
	}
	// A second writer's version 001 for the same package: same fp12 and
	// sequence, different name prefix, different weights.
	pB := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(2)))
	fp12 := PackageFingerprint(dev4)[:12]
	dupPath := filepath.Join(dir, "othermachine-"+fp12+"-001.policy.json")
	if err := SaveArtifact(dupPath, pB, dev4); err != nil {
		t.Fatal(err)
	}
	if err := r.Rescan(); err != nil {
		t.Fatal(err)
	}
	matches := r.ForPackage(dev4)
	if len(matches) != 2 || matches[0].Seq != 1 || matches[1].Seq != 1 {
		t.Fatalf("duplicate versions listed as %+v", matches)
	}
	if !strings.HasPrefix(filepath.Base(matches[0].Path), "dev4-") ||
		!strings.HasPrefix(filepath.Base(matches[1].Path), "othermachine-") {
		t.Fatalf("tie not broken by path: %s, %s", matches[0].Path, matches[1].Path)
	}
	latest, e, found, err := r.LoadLatest(dev4)
	if err != nil || !found {
		t.Fatalf("LoadLatest = (found=%t, err=%v)", found, err)
	}
	if e.Path != dupPath {
		t.Fatalf("LoadLatest picked %s, want the path-later duplicate %s", e.Path, dupPath)
	}
	if PolicyFingerprint(latest) != PolicyFingerprint(pB) {
		t.Fatal("LoadLatest materialized the wrong duplicate")
	}
	// The next save must step past the duplicated sequence, leaving both
	// 001 files intact.
	eC, err := r.Save(NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(3))), dev4)
	if err != nil {
		t.Fatal(err)
	}
	if eC.Seq != 2 {
		t.Fatalf("save after duplicates got seq %d, want 2", eC.Seq)
	}
	for _, p := range []string{eA.Path, dupPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("duplicate-era artifact %s was clobbered: %v", p, err)
		}
	}
}
