package rl

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"mcmpart/internal/mcm"
	"mcmpart/internal/nn"
)

// ArtifactVersion is the current policy-artifact schema version. Loaders
// reject files written by incompatible future schemas instead of
// misinterpreting them.
const ArtifactVersion = 1

// Artifact is the versioned on-disk form of a pre-trained policy: the
// network weights, the configuration needed to rebuild the network around
// them, and a fingerprint of the package the policy was trained for. The
// fingerprint is validated on load, so a policy pre-trained for one package
// (say mesh16) cannot silently drive planning on another (say edge36) —
// the action space, chip features, and learned placement priors are all
// package-specific.
type Artifact struct {
	Version int `json:"version"`
	// PackageFingerprint is PackageFingerprint() of the training package.
	PackageFingerprint string `json:"package_fingerprint"`
	// PackageName names the training package for error messages.
	PackageName string `json:"package_name"`
	// Config is the network shape the snapshot requires.
	Config Config `json:"config"`
	// Snapshot holds the policy weights.
	Snapshot nn.Snapshot `json:"snapshot"`
}

// PackageFingerprint returns a stable content hash of a package descriptor.
// Any field of the descriptor participates: chip count, per-chip SRAM and
// compute arrays, link parameters, and topology all change the fingerprint.
func PackageFingerprint(pkg *mcm.Package) string {
	data, err := json.Marshal(pkg)
	if err != nil {
		// Package is a plain data struct; Marshal cannot fail on it.
		panic("rl: fingerprinting package: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// SaveArtifact writes the policy as a versioned artifact bound to pkg.
func SaveArtifact(path string, policy *Policy, pkg *mcm.Package) error {
	a := Artifact{
		Version:            ArtifactVersion,
		PackageFingerprint: PackageFingerprint(pkg),
		PackageName:        pkg.Name,
		Config:             policy.Cfg,
		Snapshot:           policy.Snapshot(),
	}
	data, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		return fmt.Errorf("rl: encoding policy artifact: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("rl: writing policy artifact: %w", err)
	}
	return nil
}

// LoadArtifact reads a policy artifact and rebuilds the policy, validating
// that the artifact was trained for exactly the given package. It returns
// clear errors for version mismatches, package mismatches, and corrupt or
// wrong-shape snapshots (see nn.Snapshot.Restore).
func LoadArtifact(path string, pkg *mcm.Package) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rl: reading policy artifact: %w", err)
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("rl: corrupt policy artifact %s: %w", path, err)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("rl: policy artifact %s has version %d, this build reads version %d",
			path, a.Version, ArtifactVersion)
	}
	if got, want := a.PackageFingerprint, PackageFingerprint(pkg); got != want {
		return nil, fmt.Errorf(
			"rl: policy artifact %s was pre-trained for package %q (fingerprint %.12s…), not %q (fingerprint %.12s…); re-run pre-training or load the matching artifact",
			path, a.PackageName, got, pkg.Name, want)
	}
	if a.Config.Chips != pkg.Chips {
		return nil, fmt.Errorf("rl: policy artifact %s has a %d-chip action space for a %d-chip package",
			path, a.Config.Chips, pkg.Chips)
	}
	if a.Config.Hidden <= 0 || a.Config.SAGELayers <= 0 || a.Config.Iterations <= 0 {
		return nil, fmt.Errorf("rl: policy artifact %s has an invalid network shape %+v", path, a.Config)
	}
	if err := a.Snapshot.Validate(); err != nil {
		return nil, fmt.Errorf("rl: policy artifact %s: %w", path, err)
	}
	// The RNG only seeds weights that Restore immediately overwrites.
	policy := NewPolicy(a.Config, rand.New(rand.NewSource(0)))
	if err := policy.Restore(a.Snapshot); err != nil {
		return nil, fmt.Errorf("rl: policy artifact %s: %w", path, err)
	}
	return policy, nil
}
