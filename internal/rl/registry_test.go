package rl

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mcmpart/internal/mcm"
)

func TestRegistrySaveScanLoadLatest(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	dev4, dev8 := mcm.Dev4(), mcm.Dev8()
	p4a := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(1)))
	p4b := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(2)))
	p8 := NewPolicy(QuickConfig(dev8.Chips), rand.New(rand.NewSource(3)))

	e1, err := r.Save(p4a, dev4)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := r.Save(p4b, dev4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Save(p8, dev8); err != nil {
		t.Fatal(err)
	}
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("sequence numbers = %d, %d; want 1, 2", e1.Seq, e2.Seq)
	}
	if got := len(r.Entries()); got != 3 {
		t.Fatalf("registry holds %d entries, want 3", got)
	}
	if got := len(r.ForPackage(dev4)); got != 2 {
		t.Fatalf("dev4 has %d policies, want 2", got)
	}

	// A fresh Registry over the same directory sees the same state.
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	latest, e, ok, err := r2.LoadLatest(dev4)
	if err != nil || !ok {
		t.Fatalf("LoadLatest(dev4) = ok=%v err=%v", ok, err)
	}
	if e.Seq != 2 {
		t.Fatalf("latest dev4 policy has seq %d, want 2", e.Seq)
	}
	if PolicyFingerprint(latest) != PolicyFingerprint(p4b) {
		t.Fatal("LoadLatest returned a different policy than the last Save")
	}
}

func TestRegistryIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.json"), []byte(`{"hello":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.policy.json"), []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Entries()); got != 0 {
		t.Fatalf("foreign files produced %d entries", got)
	}
	_, _, ok, err := r.LoadLatest(mcm.Dev4())
	if err != nil || ok {
		t.Fatalf("empty registry LoadLatest = ok=%v err=%v, want miss", ok, err)
	}
}

func TestRegistryPicksUpPlainSaveArtifact(t *testing.T) {
	// Artifacts written by SaveArtifact outside Registry.Save (e.g. by
	// Planner.SavePolicy) are still served, at sequence 0.
	dir := t.TempDir()
	dev4 := mcm.Dev4()
	p := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(9)))
	if err := SaveArtifact(filepath.Join(dir, "dev4.policy.json"), p, dev4); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, e, ok, err := r.LoadLatest(dev4)
	if err != nil || !ok {
		t.Fatalf("LoadLatest = ok=%v err=%v", ok, err)
	}
	if e.Seq != 0 {
		t.Fatalf("plain artifact has seq %d, want 0", e.Seq)
	}
	if PolicyFingerprint(got) != PolicyFingerprint(p) {
		t.Fatal("loaded policy differs from the saved one")
	}
}

func TestRegistrySaveDoesNotClobberExternalWriters(t *testing.T) {
	// An artifact dropped into the directory after the last scan (e.g. by
	// another process) must not be overwritten by Save.
	dir := t.TempDir()
	dev4 := mcm.Dev4()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	external := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(4)))
	extEntry, err := func() (RegistryEntry, error) {
		other, err := OpenRegistry(dir) // a second process's view
		if err != nil {
			return RegistryEntry{}, err
		}
		return other.Save(external, dev4)
	}()
	if err != nil {
		t.Fatal(err)
	}
	mine := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(5)))
	e, err := r.Save(mine, dev4) // r has not rescanned since the external write
	if err != nil {
		t.Fatal(err)
	}
	if e.Path == extEntry.Path {
		t.Fatalf("Save reused the external writer's path %s", e.Path)
	}
	got, err := LoadArtifact(extEntry.Path, dev4)
	if err != nil {
		t.Fatal(err)
	}
	if PolicyFingerprint(got) != PolicyFingerprint(external) {
		t.Fatal("external artifact was overwritten")
	}
}

func TestRegistryHandNamedArtifactCannotShadowVersions(t *testing.T) {
	// A date-stamped hand-named artifact must parse as sequence 0, not as
	// sequence 20260701, or it would shadow every Registry.Save version.
	dir := t.TempDir()
	dev4 := mcm.Dev4()
	dated := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(6)))
	if err := SaveArtifact(filepath.Join(dir, "dev4-20260701.policy.json"), dated, dev4); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.ForPackage(dev4) {
		if e.Seq != 0 {
			t.Fatalf("hand-named artifact %s parsed as seq %d, want 0", e.Path, e.Seq)
		}
	}
	saved := NewPolicy(QuickConfig(dev4.Chips), rand.New(rand.NewSource(7)))
	if _, err := r.Save(saved, dev4); err != nil {
		t.Fatal(err)
	}
	latest, e, ok, err := r.LoadLatest(dev4)
	if err != nil || !ok {
		t.Fatalf("LoadLatest = ok=%v err=%v", ok, err)
	}
	if e.Seq != 1 {
		t.Fatalf("latest is seq %d (%s), want the Save at seq 1", e.Seq, e.Path)
	}
	if PolicyFingerprint(latest) != PolicyFingerprint(saved) {
		t.Fatal("dated artifact shadowed the registry version")
	}
}

func TestPolicyFingerprintDistinguishesWeights(t *testing.T) {
	cfg := QuickConfig(4)
	a := NewPolicy(cfg, rand.New(rand.NewSource(1)))
	b := NewPolicy(cfg, rand.New(rand.NewSource(2)))
	if PolicyFingerprint(a) == PolicyFingerprint(b) {
		t.Fatal("different weights must fingerprint differently")
	}
	if PolicyFingerprint(a) != PolicyFingerprint(a.Clone()) {
		t.Fatal("a clone must fingerprint identically")
	}
}
