package rl

import (
	"math/rand"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/eval"
	"mcmpart/internal/parallel"
	"mcmpart/internal/partition"
)

// stepOutcome is one evaluated environment sample produced on a rollout
// worker: the corrected partition (nil when the solve failed or the raw
// sample was invalid) and its evaluation verdict. Outcomes are absorbed
// into the environment in deterministic episode order after collection.
type stepOutcome struct {
	p partition.Partition
	v eval.Verdict
}

// episodeResult is everything one T-step episode contributes to the PPO
// batch: its transitions (with rewards-to-go already filled in) and the
// per-step evaluation outcomes for the environment trajectory.
type episodeResult struct {
	transitions []transition
	steps       []stepOutcome
}

// collect gathers Cfg.Rollouts episodes, fanning them across the worker
// pool. Determinism contract: episode r derives its RNG from
// (iterSeed, r) and starts from the environments' state at collection
// start, so the batch is bit-for-bit identical at workers=1 and workers=N;
// only wall-clock changes. Each worker runs on its own policy clone and,
// when more than one worker is active, on partitioner replicas built by
// Env.PartFactory. Environments without a factory force serial collection
// (same code path, same results).
func (t *Trainer) collect(envs []*Env) []episodeResult {
	rollouts := t.Cfg.Rollouts
	iterSeed := t.rng.Int63()
	workers := parallel.Resolve(t.Cfg.Workers, rollouts)
	if workers > 1 && !forkable(envs) {
		workers = 1
	}
	// Exploration weights at collection start: every episode in this batch
	// samples under the same weight snapshot regardless of worker count.
	eps0 := make([]float64, len(envs))
	for i, e := range envs {
		eps0[i] = e.ExploreEps()
	}
	results := make([]episodeResult, rollouts)
	parallel.ForEachBlock(workers, rollouts, func(w, lo, hi int) {
		pol := t.Policy
		var replicas map[int]cpsolver.Partitioner
		if workers > 1 {
			// Workers beyond the first need private forward caches; every
			// worker needs private solver scratch, covered by replicas.
			if w > 0 {
				pol = t.Policy.Clone()
			}
			replicas = make(map[int]cpsolver.Partitioner)
		}
		for r := lo; r < hi; r++ {
			ei := r % len(envs)
			env := envs[ei]
			part := env.Part
			if replicas != nil && usesSolver(env) {
				rep, ok := replicas[ei]
				if !ok {
					var err error
					rep, err = env.PartFactory()
					if err != nil {
						// Replica construction re-runs a constructor that
						// already succeeded for env.Part; a failure here is
						// a programming error, not an input condition.
						panic("rl: PartFactory failed: " + err.Error())
					}
					replicas[ei] = rep
				}
				part = rep
			}
			results[r] = runEpisode(pol, env, part, eps0[ei], parallel.Rng(iterSeed, r))
		}
	})
	return results
}

// usesSolver reports whether episodes on this environment drive the
// partitioner. NoSolver only bypasses the solver on the FIX path; SAMPLE
// mode always solves (matching the serial semantics of Env.StepProbs).
func usesSolver(e *Env) bool { return !e.NoSolver || e.UseSampleMode }

// forkable reports whether every environment supports concurrent episode
// collection: a partitioner factory for replicas, or no solver involvement.
func forkable(envs []*Env) bool {
	for _, e := range envs {
		if e.PartFactory == nil && usesSolver(e) {
			return false
		}
	}
	return true
}

// runEpisode runs one T-step refinement episode (Eq. 7) against an
// environment snapshot without mutating it: sample y(t) from
// P(t) = pi(. | G, y(t-1)), hand it to the solver, evaluate the corrected
// partition. The exploration weight evolves locally from eps by the same
// law the environment applies, and all randomness comes from rng.
func runEpisode(pol *Policy, env *Env, part cpsolver.Partitioner, eps float64, rng *rand.Rand) episodeResult {
	T := pol.Cfg.Iterations
	prev := unassigned(env.Ctx.G.NumNodes())
	res := episodeResult{
		transitions: make([]transition, 0, T),
		steps:       make([]stepOutcome, 0, T),
	}
	rewards := make([]float64, 0, T)
	for step := 0; step < T; step++ {
		f := pol.Forward(env.Ctx, prev)
		var y []int
		var logp float64
		out := stepOutcome{v: solverRejected}
		if env.UseSampleMode {
			// Algorithm 1: the solver samples from P; credit the emitted
			// partition as the action.
			p, err := part.SampleMode(MixedProbRows(f.Probs, eps), rng)
			if err != nil {
				y = SampleActions(f.Probs, rng)
			} else {
				y = p
				out = evaluate(env, p)
			}
			logp = JointLogProb(f.LogProbs, y)
		} else {
			// Algorithm 2 (FIX, the paper's default for RL): the raw
			// sample is the action, the solver repairs it.
			y = SampleActions(f.Probs, rng)
			logp = JointLogProb(f.LogProbs, y)
			if env.NoSolver {
				p := partition.Partition(y).Clone()
				if p.Validate(env.Ctx.G, env.Part.Chips()) == nil {
					out = evaluate(env, p)
				}
			} else if p, err := part.FixMode(y, rng); err == nil {
				out = evaluate(env, p)
			}
		}
		res.transitions = append(res.transitions, transition{
			env:    env,
			prev:   prev,
			action: y,
			logp:   logp,
			value:  f.Value,
		})
		res.steps = append(res.steps, out)
		th := out.v.Throughput
		if !out.v.Valid {
			th = 0
		}
		rewards = append(rewards, th/env.Baseline)
		eps = nextExploreEps(eps, th)
		prev = y
	}
	// Reward-to-go with gamma = 1 across the T refinement steps.
	acc := 0.0
	for i := len(rewards) - 1; i >= 0; i-- {
		acc += rewards[i]
		res.transitions[i].ret = acc
	}
	return res
}

// evaluate measures a partition with the environment's evaluator (safe for
// concurrent use) and packages the outcome.
func evaluate(env *Env, p partition.Partition) stepOutcome {
	return stepOutcome{p: p, v: env.Eval.Assess(env.Ctx.G, p)}
}
