package rl

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcmpart/internal/mcm"
)

// TestArtifactRoundTripReproducesForward pins that a saved and re-loaded
// policy computes bit-identical outputs.
func TestArtifactRoundTripReproducesForward(t *testing.T) {
	pkg := mcm.Dev4()
	rng := rand.New(rand.NewSource(3))
	policy := NewPolicy(QuickConfig(pkg.Chips), rng)
	env := testEnv(t, pkg.Chips)
	prev := unassigned(env.Ctx.G.NumNodes())
	want := policy.Forward(env.Ctx, prev).Probs.Clone()

	path := filepath.Join(t.TempDir(), "p.json")
	if err := SaveArtifact(path, policy, pkg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != policy.Cfg {
		t.Fatalf("loaded config %+v != saved %+v", loaded.Cfg, policy.Cfg)
	}
	got := loaded.Forward(env.Ctx, prev).Probs
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("loaded policy's forward pass differs from the saved policy's")
		}
	}
}

// TestArtifactFingerprintCoversEveryField checks that changing any hardware
// parameter of the package changes the fingerprint.
func TestArtifactFingerprintCoversEveryField(t *testing.T) {
	base := PackageFingerprint(mcm.Dev8())
	mutations := map[string]func(p *mcm.Package){
		"chips":     func(p *mcm.Package) { p.Chips = 7 },
		"sram":      func(p *mcm.Package) { p.SRAMBytes++ },
		"flops":     func(p *mcm.Package) { p.PeakFLOPs++ },
		"bandwidth": func(p *mcm.Package) { p.LinkBandwidth++ },
		"latency":   func(p *mcm.Package) { p.LinkLatency += 1e-9 },
		"topology":  func(p *mcm.Package) { p.Topology = mcm.TopoBiRing },
		"per-chip":  func(p *mcm.Package) { p.ChipSRAMBytes = []int64{1, 1, 1, 1, 1, 1, 1, 1} },
	}
	for name, mutate := range mutations {
		p := mcm.Dev8()
		mutate(p)
		if PackageFingerprint(p) == base {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
	if PackageFingerprint(mcm.Dev8()) != base {
		t.Error("fingerprint is not deterministic")
	}
}

// TestLoadArtifactRejections walks the load-time gates: version, package
// fingerprint, chip count, shape, and weight corruption.
func TestLoadArtifactRejections(t *testing.T) {
	pkg := mcm.Dev4()
	rng := rand.New(rand.NewSource(4))
	policy := NewPolicy(QuickConfig(pkg.Chips), rng)
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := SaveArtifact(path, policy, pkg); err != nil {
		t.Fatal(err)
	}
	read := func() Artifact {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var a Artifact
		if err := json.Unmarshal(data, &a); err != nil {
			t.Fatal(err)
		}
		return a
	}
	write := func(name string, a Artifact) string {
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	wrongVersion := read()
	wrongVersion.Version = 99
	if _, err := LoadArtifact(write("v.json", wrongVersion), pkg); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version gate: %v", err)
	}

	if _, err := LoadArtifact(path, mcm.Dev8()); err == nil || !strings.Contains(err.Error(), "dev8") {
		t.Fatalf("fingerprint gate should name the planner's package: %v", err)
	}

	// Chip-count gate fires even if someone forges a matching fingerprint.
	forged := read()
	forged.Config.Chips = 9
	if _, err := LoadArtifact(write("c.json", forged), pkg); err == nil || !strings.Contains(err.Error(), "9-chip") {
		t.Fatalf("chip gate: %v", err)
	}

	badShape := read()
	badShape.Config.Hidden = 0
	if _, err := LoadArtifact(write("s.json", badShape), pkg); err == nil || !strings.Contains(err.Error(), "network shape") {
		t.Fatalf("shape gate: %v", err)
	}

	truncated := read()
	for name, vals := range truncated.Snapshot {
		if len(vals) > 1 {
			truncated.Snapshot[name] = vals[:1]
			break
		}
	}
	if _, err := LoadArtifact(write("t.json", truncated), pkg); err == nil {
		t.Fatal("truncated snapshot should fail to load")
	}
}
