package rl_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/mcm"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// detEnv builds an environment with a partitioner factory, so rollout
// collection can fan out.
func detEnv(t testing.TB, useSample bool) *rl.Env {
	t.Helper()
	pkg := mcm.Dev8()
	g := workload.MLP(workload.MLPConfig{Name: "det", Layers: 8, Input: 256, Hidden: 512, Output: 128, Batch: 16})
	pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := costmodel.New(pkg)
	baseTh, _ := model.Evaluate(g, search.Greedy(g, pkg.Chips, pkg.SRAMBytes))
	env := rl.NewEnv(rl.NewGraphContext(g), pr, model, baseTh)
	env.UseSampleMode = useSample
	env.PartFactory = func() (cpsolver.Partitioner, error) {
		return cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	}
	return env
}

// trainAt runs a short PPO training at the given rollout worker count and
// returns the environment trajectory and final policy weights.
func trainAt(t testing.TB, workers int, useSample bool) ([]float64, map[string][]float64) {
	rng := rand.New(rand.NewSource(3))
	env := detEnv(t, useSample)
	cfg := rl.QuickPPOConfig()
	cfg.Workers = workers
	policy := rl.NewPolicy(rl.QuickConfig(env.Part.Chips()), rng)
	trainer := rl.NewTrainer(policy, cfg, rng)
	if _, err := trainer.TrainUntil(context.Background(), []*rl.Env{env}, 64); err != nil {
		t.Fatal(err)
	}
	return env.History, policy.Snapshot()
}

// TestPPOWorkerCountDeterminism pins the rollout engine's contract: the
// same seed produces a bit-identical trajectory and bit-identical trained
// weights at workers=1 and workers=8, in both solver modes.
func TestPPOWorkerCountDeterminism(t *testing.T) {
	for _, mode := range []struct {
		name      string
		useSample bool
	}{{"FIX", false}, {"SAMPLE", true}} {
		t.Run(mode.name, func(t *testing.T) {
			h1, w1 := trainAt(t, 1, mode.useSample)
			h8, w8 := trainAt(t, 8, mode.useSample)
			if !reflect.DeepEqual(h1, h8) {
				t.Fatalf("history differs between workers=1 (%d samples) and workers=8 (%d samples)",
					len(h1), len(h8))
			}
			if !reflect.DeepEqual(map[string][]float64(w1), map[string][]float64(w8)) {
				t.Fatal("trained weights differ between workers=1 and workers=8")
			}
		})
	}
}

// TestPPOSerialFallbackWithoutFactory checks that environments without a
// partitioner factory still train correctly (collection silently falls back
// to one worker) and produce the same results as a factory-equipped run —
// the factory is a scheduling enabler, never a semantic input.
func TestPPOSerialFallbackWithoutFactory(t *testing.T) {
	run := func(strip bool) []float64 {
		rng := rand.New(rand.NewSource(4))
		env := detEnv(t, false)
		if strip {
			env.PartFactory = nil
		}
		cfg := rl.QuickPPOConfig()
		cfg.Workers = 8
		policy := rl.NewPolicy(rl.QuickConfig(env.Part.Chips()), rng)
		if _, err := rl.NewTrainer(policy, cfg, rng).TrainUntil(context.Background(), []*rl.Env{env}, 32); err != nil {
			t.Fatal(err)
		}
		return env.History
	}
	with, without := run(false), run(true)
	if !reflect.DeepEqual(with, without) {
		t.Fatal("serial fallback trajectory differs from worker-pool trajectory")
	}
}

// TestNoSolverSampleModeParallel pins the replica-provisioning rule for the
// one configuration that bypasses the solver only on the FIX path: with
// NoSolver and UseSampleMode both set, SAMPLE mode still solves, so workers
// must get replicas (the race detector guards the sharing bug) and results
// must stay worker-count independent.
func TestNoSolverSampleModeParallel(t *testing.T) {
	run := func(workers int) []float64 {
		rng := rand.New(rand.NewSource(9))
		env := detEnv(t, true)
		env.NoSolver = true
		cfg := rl.QuickPPOConfig()
		cfg.Workers = workers
		policy := rl.NewPolicy(rl.QuickConfig(env.Part.Chips()), rng)
		if _, err := rl.NewTrainer(policy, cfg, rng).TrainUntil(context.Background(), []*rl.Env{env}, 32); err != nil {
			t.Fatal(err)
		}
		return env.History
	}
	if h1, h8 := run(1), run(8); !reflect.DeepEqual(h1, h8) {
		t.Fatal("NoSolver+SAMPLE trajectory differs between workers=1 and workers=8")
	}
}

// TestMultiEnvRoundRobinDeterminism checks the multi-environment pretraining
// shape: episodes round-robin over several environments, and every
// environment's trajectory is worker-count independent.
func TestMultiEnvRoundRobinDeterminism(t *testing.T) {
	run := func(workers int) [][]float64 {
		rng := rand.New(rand.NewSource(6))
		envs := []*rl.Env{detEnv(t, true), detEnv(t, false)}
		cfg := rl.QuickPPOConfig()
		cfg.Workers = workers
		policy := rl.NewPolicy(rl.QuickConfig(envs[0].Part.Chips()), rng)
		trainer := rl.NewTrainer(policy, cfg, rng)
		trainer.Iterate(envs)
		trainer.Iterate(envs)
		return [][]float64{envs[0].History, envs[1].History}
	}
	h1, h8 := run(1), run(8)
	if !reflect.DeepEqual(h1, h8) {
		t.Fatal("multi-env trajectories differ between workers=1 and workers=8")
	}
}
