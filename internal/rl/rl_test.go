package rl

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/eval"
	"mcmpart/internal/graph"
	"mcmpart/internal/mat"
	"mcmpart/internal/mcm"
	"mcmpart/internal/nn"
	"mcmpart/internal/partition"
	"mcmpart/internal/workload"
)

func testEnv(t *testing.T, chips int) *Env {
	t.Helper()
	g := workload.MLP(workload.MLPConfig{Name: "m", Layers: 6, Input: 256, Hidden: 512, Output: 64, Batch: 16})
	pr, err := cpsolver.NewAuto(g, chips, cpsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pkg := mcm.Dev4()
	pkg.Chips = chips
	ev := eval.Func(func(_ *graph.Graph, p partition.Partition) eval.Verdict {
		// Reward balance directly: throughput proxy = 1/imbalance.
		return eval.Verdict{Throughput: 1 / p.Imbalance(g), Valid: true}
	})
	base := ev.Assess(g, make(partition.Partition, g.NumNodes())).Throughput
	ctx := NewGraphContext(g)
	return NewEnv(ctx, pr, ev, base/2) // baseline below single-chip
}

func TestPolicyForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := QuickConfig(4)
	p := NewPolicy(cfg, rng)
	env := testEnv(t, 4)
	f := p.Forward(env.Ctx, unassigned(env.Ctx.G.NumNodes()))
	n := env.Ctx.G.NumNodes()
	if f.Probs.Rows != n || f.Probs.Cols != 4 {
		t.Fatalf("probs %dx%d, want %dx4", f.Probs.Rows, f.Probs.Cols, n)
	}
	for i := 0; i < n; i++ {
		var sum float64
		for _, v := range f.Probs.Row(i) {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad prob %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if math.IsNaN(f.Value) {
		t.Fatal("NaN value")
	}
}

func TestPolicyConditionsOnPrev(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPolicy(QuickConfig(4), rng)
	env := testEnv(t, 4)
	n := env.Ctx.G.NumNodes()
	f0 := p.Forward(env.Ctx, unassigned(n))
	prev := make([]int, n)
	for i := range prev {
		prev[i] = i % 4
	}
	f1 := p.Forward(env.Ctx, prev)
	diff := 0.0
	for i := range f0.Probs.Data {
		diff += math.Abs(f0.Probs.Data[i] - f1.Probs.Data[i])
	}
	if diff < 1e-9 {
		t.Fatal("policy output should depend on the previous assignment")
	}
}

// TestPolicyGradientCheck validates Backward end-to-end (SAGE + heads)
// against finite differences on a surrogate loss sum(logits^2)/2 + value^2/2.
func TestPolicyGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.New("tiny")
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, OutputBytes: 8})
		if i > 0 {
			g.MustAddEdge(i-1, i, 8)
		}
	}
	ctx := NewGraphContext(g)
	p := NewPolicy(Config{Chips: 3, Hidden: 5, SAGELayers: 2, Iterations: 1}, rng)
	prev := []int{0, 1, -1, 2}

	loss := func() float64 {
		f := p.Forward(ctx, prev)
		var s float64
		for _, v := range f.logits.Data {
			s += v * v
		}
		return 0.5*s + 0.5*f.Value*f.Value
	}
	f := p.Forward(ctx, prev)
	dLogits := f.logits.Clone()
	nn.ZeroGrads(p.Params())
	p.Backward(f, dLogits, f.Value)

	const eps = 1e-6
	for _, param := range p.Params() {
		for i := 0; i < len(param.Value.Data); i += 1 + len(param.Value.Data)/7 {
			orig := param.Value.Data[i]
			param.Value.Data[i] = orig + eps
			up := loss()
			param.Value.Data[i] = orig - eps
			down := loss()
			param.Value.Data[i] = orig
			fd := (up - down) / (2 * eps)
			got := param.Grad.Data[i]
			if math.Abs(fd-got) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: finite diff %v vs analytic %v", param.Name, i, fd, got)
			}
		}
	}
}

func TestSampleActionsAndJointLogProb(t *testing.T) {
	probs := mat.FromSlice(2, 2, []float64{1, 0, 0, 1})
	rng := rand.New(rand.NewSource(4))
	y := SampleActions(probs, rng)
	if y[0] != 0 || y[1] != 1 {
		t.Fatalf("deterministic rows sampled wrong: %v", y)
	}
	lp := mat.FromSlice(2, 2, []float64{math.Log(0.5), math.Log(0.5), math.Log(0.25), math.Log(0.75)})
	got := JointLogProb(lp, []int{0, 1})
	want := math.Log(0.5) + math.Log(0.75)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("JointLogProb = %v, want %v", got, want)
	}
}

func TestEnvTracksBest(t *testing.T) {
	env := testEnv(t, 4)
	rng := rand.New(rand.NewSource(5))
	n := env.Ctx.G.NumNodes()
	for i := 0; i < 5; i++ {
		y := make([]int, n)
		for j := range y {
			y[j] = rng.Intn(4)
		}
		env.StepActions(y, rng)
	}
	if env.Samples != 5 || len(env.History) != 5 {
		t.Fatalf("samples=%d history=%d", env.Samples, len(env.History))
	}
	if env.Best == nil || env.BestThroughput <= 0 {
		t.Fatal("env should have found a valid best partition")
	}
	// History is monotone nondecreasing (best-so-far).
	for i := 1; i < len(env.History); i++ {
		if env.History[i] < env.History[i-1] {
			t.Fatalf("history not monotone: %v", env.History)
		}
	}
	env.Reset()
	if env.Samples != 0 || env.Best != nil || env.History != nil {
		t.Fatal("Reset incomplete")
	}
}

func TestEnvNoSolverRejectsInvalid(t *testing.T) {
	env := testEnv(t, 4)
	env.NoSolver = true
	rng := rand.New(rand.NewSource(6))
	n := env.Ctx.G.NumNodes()
	// A deliberately invalid assignment (backwards dataflow).
	y := make([]int, n)
	y[0] = 3
	r := env.StepActions(y, rng)
	if r != 0 {
		t.Fatalf("invalid raw action should earn 0 reward, got %v", r)
	}
	if env.ValidSamples != 0 {
		t.Fatal("invalid sample counted as valid")
	}
}

// TestPPOImprovesOverRandom is the core learning test: after a few PPO
// iterations on a small balance-rewarded environment, the policy's average
// reward should exceed the untrained policy's.
func TestPPOImprovesOverRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	env := testEnv(t, 4)
	policy := NewPolicy(Config{Chips: 4, Hidden: 16, SAGELayers: 2, Iterations: 2}, rng)
	cfg := QuickPPOConfig()
	cfg.Rollouts = 6
	cfg.Epochs = 3
	trainer := NewTrainer(policy, cfg, rng)
	first := trainer.Iterate([]*Env{env})
	var last IterationStats
	for i := 0; i < 12; i++ {
		last = trainer.Iterate([]*Env{env})
	}
	if !(last.MeanReward > first.MeanReward) {
		t.Fatalf("PPO did not improve: first %.4f, last %.4f", first.MeanReward, last.MeanReward)
	}
	if env.ValidSamples == 0 {
		t.Fatal("no valid samples seen during training")
	}
}

func TestSnapshotRestoreChangesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewPolicy(QuickConfig(4), rng)
	env := testEnv(t, 4)
	prev := unassigned(env.Ctx.G.NumNodes())
	before := p.Forward(env.Ctx, prev).Probs.Clone()
	snap := p.Snapshot()
	// Perturb and restore.
	for _, param := range p.Params() {
		param.Value.Scale(1.5)
	}
	if err := p.Restore(snap); err != nil {
		t.Fatal(err)
	}
	after := p.Forward(env.Ctx, prev).Probs
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("restore did not reproduce the forward pass")
		}
	}
}

func TestTrainUntilRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	env := testEnv(t, 4)
	policy := NewPolicy(Config{Chips: 4, Hidden: 8, SAGELayers: 1, Iterations: 1}, rng)
	cfg := QuickPPOConfig()
	cfg.Rollouts = 4
	cfg.Epochs = 1
	trainer := NewTrainer(policy, cfg, rng)
	if _, err := trainer.TrainUntil(context.Background(), []*Env{env}, 10); err != nil {
		t.Fatal(err)
	}
	if env.Samples < 10 {
		t.Fatalf("budget not reached: %d", env.Samples)
	}
	if env.Samples > 10+cfg.Rollouts*policy.Cfg.Iterations {
		t.Fatalf("overshot budget excessively: %d", env.Samples)
	}
}
