package rl

import (
	"math"
	"math/rand"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/eval"
	"mcmpart/internal/partition"
)

// solverRejected is the verdict recorded for samples the constraint solver
// (or the raw-action validity check of the no-solver baseline) rejected
// before they ever reached an evaluation environment.
var solverRejected = eval.Verdict{FailReason: "no valid partition produced"}

// Env is the partitioning environment of Figure 1: it turns policy outputs
// into valid partitions through the constraint solver, evaluates them in an
// evaluation environment (the analytical cost model in pre-training, the
// hardware simulator in deployment), and tracks the search trajectory (best
// partition and the best-so-far curve per evaluated sample that the
// experiment figures plot).
type Env struct {
	Ctx  *GraphContext
	Part cpsolver.Partitioner
	// Eval is the evaluation environment. It must be safe for concurrent
	// use (the cost model and hardware simulator are): rollout collection
	// evaluates samples on worker goroutines.
	Eval eval.Evaluator
	// Baseline is the throughput of the compiler heuristic the experiments
	// normalize against; rewards are improvement ratios over it.
	Baseline float64
	// UseSampleMode switches the solver from FIX mode (Algorithm 2, the
	// paper's choice for RL) to SAMPLE mode (Algorithm 1).
	UseSampleMode bool
	// NoSolver bypasses the constraint solver entirely (the paper's
	// "RL without constraint solver" baseline): raw actions are evaluated
	// directly and invalid ones earn zero reward.
	NoSolver bool
	// PartFactory builds an independent Partitioner replica over the same
	// instance. Concurrent rollout collection needs one replica per worker
	// (Solver and Segmenter keep per-solve scratch, so a single instance is
	// not safe for concurrent use); when nil, the trainer falls back to
	// serial collection on this environment — results are identical either
	// way, only wall-clock differs. Eval must be safe for concurrent use
	// whenever a factory is set (the cost model and hardware simulator are).
	PartFactory func() (cpsolver.Partitioner, error)

	// OnSample, when set, is invoked after every absorbed sample with the
	// cumulative sample count and the best-so-far improvement ratio — the
	// progress stream the public Planner API exposes. It always runs on
	// the goroutine driving the search (parallel rollout collection
	// absorbs its outcomes serially, in episode order), so implementations
	// need no locking of their own.
	OnSample func(samples int, bestImprovement float64)

	// Samples counts evaluations consumed (the x-axis of Figures 5 and 6).
	Samples int
	// Best tracks the best valid partition found and its throughput.
	Best           partition.Partition
	BestThroughput float64
	// History records the best-so-far improvement ratio after every
	// sample.
	History []float64
	// ValidSamples counts samples that passed all constraints.
	ValidSamples int
	// FailCounts tallies the FailReasons of rejected samples — the
	// observability the rich evaluation verdict buys (nil until the first
	// failure).
	FailCounts map[string]int

	// exploreEps is the adaptive uniform-mixing weight for policy
	// distributions: it escalates while samples earn zero reward (a
	// confidently wrong policy would otherwise starve of gradient) and
	// decays back to the floor once rewards flow.
	exploreEps float64
}

// NewEnv builds an environment; baseline must be the heuristic throughput
// used for reward normalization (> 0).
func NewEnv(ctx *GraphContext, part cpsolver.Partitioner, ev eval.Evaluator, baseline float64) *Env {
	if baseline <= 0 {
		panic("rl: non-positive baseline throughput")
	}
	return &Env{Ctx: ctx, Part: part, Eval: ev, Baseline: baseline, exploreEps: exploreFloor}
}

// Exploration mixing bounds.
const (
	exploreFloor = 0.1
	exploreCeil  = 1.0
)

// ExploreEps returns the current adaptive exploration weight.
func (e *Env) ExploreEps() float64 {
	if e.exploreEps == 0 {
		return exploreFloor
	}
	return e.exploreEps
}

// step evaluates a corrected partition, updating the search trajectory, and
// returns the reward (improvement ratio over the baseline, 0 when invalid).
func (e *Env) step(p partition.Partition, solved bool) float64 {
	v := solverRejected
	if solved {
		v = e.Eval.Assess(e.Ctx.G, p)
	}
	return e.absorb(p, v)
}

// Prime evaluates and absorbs an externally constructed candidate — e.g. the
// analytic fast path's plan — as the search's first sample(s), so every
// subsequent method starts from that incumbent instead of from nothing. It
// consumes one unit of the sample budget trajectory and returns the reward.
func (e *Env) Prime(p partition.Partition) float64 {
	return e.step(p, true)
}

// absorb records one already-evaluated sample into the trajectory and
// returns its reward. Parallel rollout collection evaluates samples on
// worker goroutines and then absorbs them here in deterministic episode
// order, so the trajectory (Samples, Best, History, exploration weight) is
// identical to a serial run.
func (e *Env) absorb(p partition.Partition, v eval.Verdict) float64 {
	th := v.Throughput
	if !v.Valid {
		th = 0
		if v.FailReason != "" {
			if e.FailCounts == nil {
				e.FailCounts = make(map[string]int)
			}
			e.FailCounts[v.FailReason]++
		}
	}
	e.Samples++
	if th > 0 {
		e.ValidSamples++
	}
	if th > e.BestThroughput {
		e.BestThroughput = th
		e.Best = p.Clone()
	}
	e.History = append(e.History, e.BestThroughput/e.Baseline)
	e.exploreEps = nextExploreEps(e.ExploreEps(), th)
	if e.OnSample != nil {
		e.OnSample(e.Samples, e.BestThroughput/e.Baseline)
	}
	return th / e.Baseline
}

// nextExploreEps advances the adaptive exploration weight after a sample
// with throughput th. Rollout workers apply the same law to their local
// copies so sampling inside an episode matches the serial trajectory.
func nextExploreEps(eps, th float64) float64 {
	if th == 0 {
		return math.Min(exploreCeil, eps*1.5)
	}
	return math.Max(exploreFloor, eps*0.8)
}

// StepActions runs one environment step from a concrete action vector y:
// FIX-mode correction by default (or no correction with NoSolver), then
// evaluation. It returns the reward.
func (e *Env) StepActions(y []int, rng *rand.Rand) float64 {
	if e.NoSolver {
		p := partition.Partition(y).Clone()
		valid := p.Validate(e.Ctx.G, e.Part.Chips()) == nil
		return e.step(p, valid)
	}
	p, err := e.Part.FixMode(y, rng)
	if err != nil {
		return e.step(nil, false)
	}
	return e.step(p, true)
}

// StepProbs runs one environment step from a probability matrix through the
// solver's SAMPLE mode. It returns the reward.
func (e *Env) StepProbs(probs [][]float64, rng *rand.Rand) float64 {
	p, err := e.Part.SampleMode(probs, rng)
	if err != nil {
		return e.step(nil, false)
	}
	return e.step(p, true)
}

// BestImprovement returns the best-so-far improvement over the baseline.
func (e *Env) BestImprovement() float64 { return e.BestThroughput / e.Baseline }

// Reset clears the search trajectory but keeps the graph, solver and
// baseline.
func (e *Env) Reset() {
	e.Samples = 0
	e.ValidSamples = 0
	e.Best = nil
	e.BestThroughput = 0
	e.History = nil
	e.FailCounts = nil
	e.exploreEps = exploreFloor
}
