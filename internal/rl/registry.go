package rl

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mcmpart/internal/mcm"
)

// PolicyFingerprint returns a stable content hash of a policy: its network
// configuration and every weight, independent of where (or whether) the
// policy is stored on disk. Two policies fingerprint identically iff
// deploying them zero-shot produces identical decisions, which is why the
// fingerprint participates in the plan-cache key for the deployed-policy
// methods.
func PolicyFingerprint(p *Policy) string {
	payload := struct {
		Config   Config      `json:"config"`
		Snapshot interface{} `json:"snapshot"`
	}{Config: p.Cfg, Snapshot: p.Snapshot()}
	data, err := json.Marshal(payload) // map keys marshal sorted: deterministic
	if err != nil {
		panic("rl: fingerprinting policy: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// RegistryEntry describes one policy artifact found in a registry
// directory. It is header metadata only; LoadEntry materializes the policy.
type RegistryEntry struct {
	// Path is the artifact file, inside the registry directory.
	Path string `json:"path"`
	// PackageName and PackageFingerprint identify the package the policy
	// was pre-trained for (see Artifact).
	PackageName        string `json:"package_name"`
	PackageFingerprint string `json:"package_fingerprint"`
	// Version is the artifact schema version.
	Version int `json:"version"`
	// Seq is the registry sequence number parsed from the filename
	// (…-NNN.policy.json); 0 for artifacts saved outside Registry.Save.
	// Among the policies for one package fingerprint, higher Seq is newer.
	Seq int `json:"seq"`
}

// Registry is a directory of versioned policy artifacts, keyed by the
// package fingerprint each policy was pre-trained for. It is the shared
// store a planning service selects policies from at plan time: any number
// of pre-training runs (possibly on other machines) drop artifacts into the
// directory, and LoadLatest picks the newest one matching the serving
// package. All methods are safe for concurrent use.
type Registry struct {
	dir string

	mu      sync.RWMutex
	entries []RegistryEntry
}

// OpenRegistry opens (creating if needed) a registry directory and scans it.
func OpenRegistry(dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("rl: registry directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rl: creating registry directory: %w", err)
	}
	r := &Registry{dir: dir}
	if err := r.Rescan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the registry directory.
func (r *Registry) Dir() string { return r.dir }

// Rescan re-reads the directory. Files that are not readable policy
// artifacts are skipped, so foreign files in the directory are harmless.
func (r *Registry) Rescan() error {
	entries, err := scanDir(r.dir)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.entries = entries
	r.mu.Unlock()
	return nil
}

// scanDir reads the artifact headers of every *.json in dir.
func scanDir(dir string) ([]RegistryEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("rl: scanning registry: %w", err)
	}
	sort.Strings(names)
	entries := make([]RegistryEntry, 0, len(names))
	for _, path := range names {
		e, err := readEntry(path)
		if err != nil {
			continue
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// readEntry parses the artifact header of one file.
func readEntry(path string) (RegistryEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RegistryEntry{}, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return RegistryEntry{}, err
	}
	if a.Version != ArtifactVersion || a.PackageFingerprint == "" {
		return RegistryEntry{}, fmt.Errorf("rl: %s is not a readable policy artifact", path)
	}
	return RegistryEntry{
		Path:               path,
		PackageName:        a.PackageName,
		PackageFingerprint: a.PackageFingerprint,
		Version:            a.Version,
		Seq:                parseSeq(path, a.PackageFingerprint),
	}, nil
}

// parseSeq extracts the NNN of a registry-named artifact,
// "<name>-<fp12>-NNN.policy.json", where fp12 must be the first 12
// characters of the artifact's own package fingerprint. Anything else —
// including hand-named artifacts that happen to end in digits, like
// "dev8-20260701.policy.json" — is sequence 0, so it can never shadow
// versions allocated by Registry.Save.
func parseSeq(path, pkgFP string) int {
	base := filepath.Base(path)
	base, ok := strings.CutSuffix(base, ".policy.json")
	if !ok {
		return 0
	}
	i := strings.LastIndex(base, "-")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(base[i+1:])
	if err != nil || n <= 0 {
		return 0
	}
	rest := base[:i]
	if len(pkgFP) < 12 || !strings.HasSuffix(rest, "-"+pkgFP[:12]) {
		return 0
	}
	return n
}

// Entries returns every readable artifact found by the last scan, sorted by
// path.
func (r *Registry) Entries() []RegistryEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]RegistryEntry(nil), r.entries...)
}

// ForPackage returns the entries pre-trained for exactly pkg, oldest first
// (by sequence number, then path).
func (r *Registry) ForPackage(pkg *mcm.Package) []RegistryEntry {
	want := PackageFingerprint(pkg)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []RegistryEntry
	for _, e := range r.entries {
		if e.PackageFingerprint == want {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Seq != out[b].Seq {
			return out[a].Seq < out[b].Seq
		}
		return out[a].Path < out[b].Path
	})
	return out
}

// LoadEntry materializes the policy of one entry, validating it against pkg
// exactly like LoadArtifact.
func (r *Registry) LoadEntry(e RegistryEntry, pkg *mcm.Package) (*Policy, error) {
	return LoadArtifact(e.Path, pkg)
}

// LoadLatest loads the newest policy pre-trained for pkg. The boolean is
// false when the registry holds no policy for the package; an error means a
// matching artifact exists but could not be loaded.
func (r *Registry) LoadLatest(pkg *mcm.Package) (*Policy, RegistryEntry, bool, error) {
	matches := r.ForPackage(pkg)
	if len(matches) == 0 {
		return nil, RegistryEntry{}, false, nil
	}
	e := matches[len(matches)-1]
	p, err := LoadArtifact(e.Path, pkg)
	if err != nil {
		return nil, e, true, err
	}
	return p, e, true, nil
}

// Save writes the policy as the next version for its package: a new
// artifact named "<package>-<fp12>-NNN.policy.json" with NNN one above the
// highest existing sequence number for that package fingerprint. The
// directory is rescanned under the lock first, so artifacts dropped by
// other processes since the last scan are never overwritten (names that
// somehow exist anyway are skipped, not clobbered).
func (r *Registry) Save(policy *Policy, pkg *mcm.Package) (RegistryEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if entries, err := scanDir(r.dir); err == nil {
		r.entries = entries
	}
	want := PackageFingerprint(pkg)
	seq := 0
	for _, e := range r.entries {
		if e.PackageFingerprint == want && e.Seq > seq {
			seq = e.Seq
		}
	}
	var path string
	for {
		seq++
		name := fmt.Sprintf("%s-%.12s-%03d.policy.json", sanitizeName(pkg.Name), want, seq)
		path = filepath.Join(r.dir, name)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
	}
	if err := SaveArtifact(path, policy, pkg); err != nil {
		return RegistryEntry{}, err
	}
	e := RegistryEntry{
		Path:               path,
		PackageName:        pkg.Name,
		PackageFingerprint: want,
		Version:            ArtifactVersion,
		Seq:                seq,
	}
	r.entries = append(r.entries, e)
	sort.Slice(r.entries, func(a, b int) bool { return r.entries[a].Path < r.entries[b].Path })
	return e, nil
}

// sanitizeName makes a package name safe as a filename component.
func sanitizeName(name string) string {
	if name == "" {
		return "package"
	}
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
