// Package eval defines the single evaluation-environment contract shared by
// the analytical cost model (internal/costmodel) and the hardware simulator
// (internal/hwsim). The paper's pipeline evaluates candidate partitions in
// two environments — the fast analytical model during pre-training and the
// hardware platform during deployment (Sec. 4.3, Sec. 5.1) — and every
// search loop in this repository is generic over which one it talks to.
//
// Before this package the boundary was an ad-hoc closure
// (func(Partition) (float64, bool)) rebuilt at every call site, which lost
// the failure reason and the resource picture the simulator computes anyway.
// Evaluator returns a rich Verdict instead, so environments can count why
// samples fail and planners can report utilization, while the two
// implementations still agree on which partitions are legal at all.
package eval

import (
	"mcmpart/internal/graph"
	"mcmpart/internal/partition"
)

// Verdict is the outcome of evaluating one partition in one environment.
type Verdict struct {
	// Throughput is the evaluated steady-state throughput in inferences
	// per second; 0 when the partition is invalid.
	Throughput float64
	// Valid reports whether the partition passed the environment's
	// constraints (static routability everywhere; additionally the dynamic
	// memory constraint on the simulator).
	Valid bool
	// FailReason describes why Valid is false ("" when valid).
	FailReason string
	// Utilization is the peak fractional SRAM utilization across chips
	// (0 when the environment does not model memory, as the analytical
	// cost model does not).
	Utilization float64
}

// Evaluator is the evaluation-environment contract: assess one partition of
// one graph. Implementations must be safe for concurrent use — rollout
// collection fans evaluations across worker goroutines.
type Evaluator interface {
	Assess(g *graph.Graph, p partition.Partition) Verdict
}

// Func adapts a plain function to the Evaluator interface (tests and
// special-purpose environments).
type Func func(g *graph.Graph, p partition.Partition) Verdict

// Assess implements Evaluator.
func (f Func) Assess(g *graph.Graph, p partition.Partition) Verdict { return f(g, p) }
