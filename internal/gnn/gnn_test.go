package gnn

import (
	"math"
	"math/rand"
	"testing"

	"mcmpart/internal/graph"
	"mcmpart/internal/mat"
	"mcmpart/internal/nn"
	"mcmpart/internal/workload"
)

func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("small")
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: float64(i) * 1e6, OutputBytes: 64})
	}
	g.MustAddEdge(0, 1, 64)
	g.MustAddEdge(0, 2, 64)
	g.MustAddEdge(1, 3, 64)
	g.MustAddEdge(2, 3, 64)
	g.MustAddEdge(3, 4, 64)
	return g
}

func TestFeaturesShapeAndRange(t *testing.T) {
	g := smallGraph(t)
	x := Features(g)
	if x.Rows != 5 || x.Cols != FeatureDim {
		t.Fatalf("features are %dx%d, want 5x%d", x.Rows, x.Cols, FeatureDim)
	}
	for i, v := range x.Data {
		if math.IsNaN(v) || v < 0 || v > 1.0001 {
			t.Fatalf("feature %d out of range: %v", i, v)
		}
	}
	// One-hot op present exactly once per row.
	for v := 0; v < 5; v++ {
		var ones int
		for k := 0; k < graph.NumOpKinds; k++ {
			if x.At(v, k) == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("node %d has %d op one-hots", v, ones)
		}
	}
	// Position fraction increases along the chain 0 -> 4.
	posCol := graph.NumOpKinds + 6
	if x.At(0, posCol) != 0 || x.At(4, posCol) != 1 {
		t.Fatalf("position features wrong: %v vs %v", x.At(0, posCol), x.At(4, posCol))
	}
}

func TestAdjacencyAggregate(t *testing.T) {
	g := smallGraph(t)
	adj := BuildAdjacency(g)
	in := mat.New(5, 1)
	for i := 0; i < 5; i++ {
		in.Set(i, 0, float64(i+1))
	}
	out := mat.New(5, 1)
	adj.aggregate(out, in)
	// Node 0 neighbors: 1, 2 -> mean (2+3)/2 = 2.5.
	if out.At(0, 0) != 2.5 {
		t.Fatalf("aggregate(0) = %v, want 2.5", out.At(0, 0))
	}
	// Node 3 neighbors: 1, 2, 4 -> mean (2+3+5)/3.
	if math.Abs(out.At(3, 0)-10.0/3) > 1e-12 {
		t.Fatalf("aggregate(3) = %v, want 10/3", out.At(3, 0))
	}
}

func TestAggregateScatterAreTransposes(t *testing.T) {
	// <A x, y> must equal <x, Aᵀ y> for random vectors.
	g := workload.MLP(workload.MLPConfig{Name: "m", Layers: 3, Input: 8, Hidden: 8, Output: 4})
	adj := BuildAdjacency(g)
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(1))
	x := mat.New(n, 2)
	y := mat.New(n, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	ax := mat.New(n, 2)
	adj.aggregate(ax, x)
	aty := mat.New(n, 2)
	adj.scatterAdd(aty, y)
	var lhs, rhs float64
	for i := range ax.Data {
		lhs += ax.Data[i] * y.Data[i]
		rhs += x.Data[i] * aty.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-10 {
		t.Fatalf("<Ax,y>=%v but <x,Aᵀy>=%v", lhs, rhs)
	}
}

// TestSAGEGradientCheck validates the full backward pass against finite
// differences of a scalar loss (sum of embeddings).
func TestSAGEGradientCheck(t *testing.T) {
	g := smallGraph(t)
	adj := BuildAdjacency(g)
	x := Features(g)
	rng := rand.New(rand.NewSource(2))
	s := NewSAGE(FeatureDim, 6, 2, rng)

	loss := func() float64 {
		h := s.Forward(adj, x)
		var sum float64
		for _, v := range h.Data {
			sum += v * v
		}
		return 0.5 * sum
	}
	h := s.Forward(adj, x)
	dOut := h.Clone()
	nn.ZeroGrads(s.Params())
	s.Backward(dOut)

	const eps = 1e-6
	for _, p := range s.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := loss()
			p.Value.Data[i] = orig - eps
			down := loss()
			p.Value.Data[i] = orig
			fd := (up - down) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(fd-got) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: finite diff %v vs analytic %v", p.Name, i, fd, got)
			}
		}
	}
}

func TestSAGEHandlesVaryingGraphSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSAGE(FeatureDim, 8, 2, rng)
	for _, gg := range []*graph.Graph{
		smallGraph(t),
		workload.MLP(workload.MLPConfig{Name: "m", Layers: 4, Input: 8, Hidden: 8, Output: 4}),
		smallGraph(t),
	} {
		h := s.Forward(BuildAdjacency(gg), Features(gg))
		if h.Rows != gg.NumNodes() || h.Cols != 8 {
			t.Fatalf("embedding shape %dx%d for %d nodes", h.Rows, h.Cols, gg.NumNodes())
		}
	}
}

func TestSAGEDeterministic(t *testing.T) {
	g := smallGraph(t)
	adj := BuildAdjacency(g)
	x := Features(g)
	s := NewSAGE(FeatureDim, 8, 3, rand.New(rand.NewSource(4)))
	a := s.Forward(adj, x).Clone()
	b := s.Forward(adj, x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Forward should be deterministic")
		}
	}
}
