package gnn

import (
	"fmt"
	"math/rand"

	"mcmpart/internal/mat"
	"mcmpart/internal/nn"
)

// SAGE is a stack of GraphSAGE layers with mean aggregation:
//
//	h^{l+1} = ReLU(h^l W_self + mean_{u in N(v)} h^l_u W_neigh + b)
//
// Forward caches all intermediates so Backward can accumulate exact
// gradients for end-to-end training with the policy head.
type SAGE struct {
	InDim, Hidden, Depth int

	wSelf, wNeigh, bias []*nn.Param

	// Per-forward caches, reallocated when the node count changes.
	n    int
	ins  []*mat.Dense // input to each layer (ins[0] = x)
	aggs []*mat.Dense // aggregated neighbor features per layer
	outs []*mat.Dense // post-activation output per layer
	// Scratch buffers for backprop.
	dz, dAgg, dIn *mat.Dense
	adj           *Adjacency
}

// NewSAGE builds a GraphSAGE encoder with the given input width, hidden
// width and depth. The paper's default is depth 8, hidden 128.
func NewSAGE(inDim, hidden, depth int, rng *rand.Rand) *SAGE {
	if depth < 1 {
		panic(fmt.Sprintf("gnn: depth %d < 1", depth))
	}
	s := &SAGE{InDim: inDim, Hidden: hidden, Depth: depth}
	for l := 0; l < depth; l++ {
		in := hidden
		if l == 0 {
			in = inDim
		}
		ws := &nn.Param{Name: fmt.Sprintf("sage%d.self", l), Value: mat.New(in, hidden), Grad: mat.New(in, hidden)}
		wn := &nn.Param{Name: fmt.Sprintf("sage%d.neigh", l), Value: mat.New(in, hidden), Grad: mat.New(in, hidden)}
		b := &nn.Param{Name: fmt.Sprintf("sage%d.bias", l), Value: mat.New(1, hidden), Grad: mat.New(1, hidden)}
		ws.Value.XavierInit(rng)
		wn.Value.XavierInit(rng)
		s.wSelf = append(s.wSelf, ws)
		s.wNeigh = append(s.wNeigh, wn)
		s.bias = append(s.bias, b)
	}
	return s
}

// Params returns all trainable parameters.
func (s *SAGE) Params() []*nn.Param {
	out := make([]*nn.Param, 0, 3*s.Depth)
	for l := 0; l < s.Depth; l++ {
		out = append(out, s.wSelf[l], s.wNeigh[l], s.bias[l])
	}
	return out
}

// ensure sizes the cache buffers for n nodes.
func (s *SAGE) ensure(n int) {
	if s.n == n {
		return
	}
	s.n = n
	s.ins = make([]*mat.Dense, s.Depth+1)
	s.aggs = make([]*mat.Dense, s.Depth)
	s.outs = make([]*mat.Dense, s.Depth)
	for l := 0; l < s.Depth; l++ {
		in := s.Hidden
		if l == 0 {
			in = s.InDim
		}
		s.aggs[l] = mat.New(n, in)
		s.outs[l] = mat.New(n, s.Hidden)
	}
	s.dz = mat.New(n, s.Hidden)
	s.dAgg = mat.New(n, s.Hidden) // resized per layer in Backward when needed
	s.dIn = mat.New(n, s.Hidden)
}

// Forward encodes the node features x (N x InDim) over the adjacency and
// returns the N x Hidden embedding matrix. The returned matrix is owned by
// the encoder and valid until the next Forward.
func (s *SAGE) Forward(adj *Adjacency, x *mat.Dense) *mat.Dense {
	n := x.Rows
	s.ensure(n)
	s.adj = adj
	s.ins[0] = x
	h := x
	for l := 0; l < s.Depth; l++ {
		agg := s.aggs[l]
		adj.aggregate(agg, h)
		out := s.outs[l]
		mat.Mul(out, h, s.wSelf[l].Value)
		mat.MulAdd(out, agg, s.wNeigh[l].Value)
		out.AddRowVector(s.bias[l].Value.Data)
		nn.ReLU(out, out)
		s.ins[l+1] = out
		h = out
	}
	return h
}

// Backward accumulates parameter gradients given the gradient of the loss
// with respect to the final embeddings. It must follow a Forward on the
// same inputs. dOut is consumed (overwritten).
func (s *SAGE) Backward(dOut *mat.Dense) {
	n := s.n
	d := dOut
	scratch := mat.New(n, s.Hidden)
	for l := s.Depth - 1; l >= 0; l-- {
		inDim := s.Hidden
		if l == 0 {
			inDim = s.InDim
		}
		// Through the ReLU.
		nn.ReLUBackward(s.dz, d, s.outs[l])
		// Parameter gradients, accumulated in place (fused aᵀ@b += form).
		mat.MulATBAcc(s.wSelf[l].Grad, s.ins[l], s.dz)
		mat.MulATBAcc(s.wNeigh[l].Grad, s.aggs[l], s.dz)
		s.dz.ColSums(s.bias[l].Grad.Data)
		if l == 0 {
			return // input features are static; no gradient needed
		}
		// Input gradient: dIn = dz @ Wselfᵀ + Aᵀ(dz @ Wneighᵀ).
		dIn := mat.New(n, inDim)
		mat.MulABT(dIn, s.dz, s.wSelf[l].Value)
		mat.MulABT(scratch, s.dz, s.wNeigh[l].Value)
		s.adj.scatterAdd(dIn, scratch)
		d = dIn
	}
}
