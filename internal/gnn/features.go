// Package gnn implements the GraphSAGE feature network of the paper's
// policy (Sec. 4.1): node features are encoded with mean-aggregator
// GraphSAGE layers (Hamilton et al., 2017), trained end-to-end with the
// policy head by backpropagation. The default configuration matches the
// paper: 8 layers of width 128.
package gnn

import (
	"math"

	"mcmpart/internal/graph"
	"mcmpart/internal/mat"
	"mcmpart/internal/parallel"
)

// FeatureDim is the width of the static node-feature vector: a one-hot
// operator kind plus seven scale-free scalar features. Scale-free features
// (log-compressed costs, fractions of graph totals) are what let a policy
// pre-trained on small CNNs transfer to a 2138-node transformer.
const FeatureDim = graph.NumOpKinds + 7

// Features builds the N x FeatureDim static feature matrix of a graph:
// operator one-hot, log-compressed compute/weight/activation costs,
// normalized fan-in/fan-out, depth fraction along the longest path, and
// topological position fraction.
func Features(g *graph.Graph) *mat.Dense {
	n := g.NumNodes()
	x := mat.New(n, FeatureDim)
	depths, err := g.Depths()
	if err != nil {
		panic("gnn: graph must be a DAG: " + err.Error())
	}
	maxDepth := 1
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	order, _ := g.TopoOrder()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	maxDeg := 1
	for v := 0; v < n; v++ {
		if d := g.InDegree(v) + g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	for v := 0; v < n; v++ {
		node := g.Node(v)
		row := x.Row(v)
		row[int(node.Op)] = 1
		base := graph.NumOpKinds
		row[base+0] = math.Log1p(node.FLOPs) / 30 // ~[0,1] up to 1e13 FLOPs
		row[base+1] = math.Log1p(float64(node.ParamBytes)) / 30
		row[base+2] = math.Log1p(float64(node.OutputBytes)) / 30
		row[base+3] = float64(g.InDegree(v)) / float64(maxDeg)
		row[base+4] = float64(g.OutDegree(v)) / float64(maxDeg)
		row[base+5] = float64(depths[v]) / float64(maxDepth)
		row[base+6] = float64(pos[v]) / float64(max(1, n-1))
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Adjacency is the CSR neighbor structure used by the mean aggregator:
// undirected neighborhoods with precomputed inverse degrees.
type Adjacency struct {
	offsets []int32
	neigh   []int32
	invDeg  []float64
}

// BuildAdjacency extracts the aggregation structure from a graph.
func BuildAdjacency(g *graph.Graph) *Adjacency {
	n := g.NumNodes()
	deg := make([]int32, n)
	for _, e := range g.Edges() {
		deg[e.From]++
		deg[e.To]++
	}
	a := &Adjacency{
		offsets: make([]int32, n+1),
		neigh:   make([]int32, 2*g.NumEdges()),
		invDeg:  make([]float64, n),
	}
	for v := 0; v < n; v++ {
		a.offsets[v+1] = a.offsets[v] + deg[v]
		if deg[v] > 0 {
			a.invDeg[v] = 1 / float64(deg[v])
		}
	}
	fill := make([]int32, n)
	for _, e := range g.Edges() {
		a.neigh[a.offsets[e.From]+fill[e.From]] = int32(e.To)
		fill[e.From]++
		a.neigh[a.offsets[e.To]+fill[e.To]] = int32(e.From)
		fill[e.To]++
	}
	return a
}

// NumNodes returns the number of nodes in the adjacency.
func (a *Adjacency) NumNodes() int { return len(a.invDeg) }

// aggregate computes out[v] = mean over neighbors u of in[u] (zero for
// isolated nodes). out and in must be N x D and distinct. Output rows are
// independent, so large graphs split rows across the worker pool with
// results identical at any worker count.
func (a *Adjacency) aggregate(out, in *mat.Dense) {
	out.Zero()
	d := in.Cols
	n := a.NumNodes()
	extra := 0
	if flops := len(a.neigh) * d; flops >= mat.ParallelFlopThreshold {
		extra = parallel.AcquireLanes(parallel.Resolve(0, n) - 1)
		defer parallel.ReleaseLanes(extra)
	}
	parallel.ForEachBlock(extra+1, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			ov := out.Data[v*d : (v+1)*d]
			w := a.invDeg[v]
			if w == 0 {
				continue
			}
			for _, u := range a.neigh[a.offsets[v]:a.offsets[v+1]] {
				iu := in.Data[int(u)*d : (int(u)+1)*d]
				for j, x := range iu {
					ov[j] += x
				}
			}
			for j := range ov {
				ov[j] *= w
			}
		}
	})
}

// scatterAdd computes out[u] += sum over v with u in N(v) of in[v]*invDeg(v)
// — the transpose of aggregate, used in backprop. Writes scatter across out
// rows, so this stays serial (an AXPY per neighbor row).
func (a *Adjacency) scatterAdd(out, in *mat.Dense) {
	d := in.Cols
	for v := 0; v < a.NumNodes(); v++ {
		w := a.invDeg[v]
		if w == 0 {
			continue
		}
		iv := in.Data[v*d : (v+1)*d]
		for _, u := range a.neigh[a.offsets[v]:a.offsets[v+1]] {
			mat.Axpy(w, iv, out.Data[int(u)*d:(int(u)+1)*d])
		}
	}
}
