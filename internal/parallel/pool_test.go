package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverythingAdmitted(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	const n = 64
	for i := 0; i < n; i++ {
		for {
			err := p.TrySubmit(func() { ran.Add(1) })
			if err == nil {
				break
			}
			if !errors.Is(err, ErrPoolFull) {
				t.Fatalf("unexpected submit error: %v", err)
			}
		}
	}
	p.Close()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d admitted tasks", got, n)
	}
}

func TestPoolBoundedQueue(t *testing.T) {
	p := NewPool(1, 2)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := p.TrySubmit(func() { defer wg.Done(); close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // the blocking task now occupies the worker, not the queue
	// Fill the queue behind the blocked worker, then expect ErrPoolFull.
	admitted := 0
	for i := 0; i < 10; i++ {
		if err := p.TrySubmit(func() {}); err == nil {
			admitted++
		} else if errors.Is(err, ErrPoolFull) {
			break
		} else {
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if admitted != 2 {
		t.Fatalf("queue admitted %d tasks, capacity is 2", admitted)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("want ErrPoolFull, got %v", err)
	}
	close(release)
	wg.Wait()
	p.Close()
}

func TestPoolClosedRejectsAndIsIdempotent(t *testing.T) {
	p := NewPool(2, 2)
	p.Close()
	p.Close()
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(4, 256)
	var ran atomic.Int64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.TrySubmit(func() { ran.Add(1) }) == nil {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if ran.Load() != admitted.Load() {
		t.Fatalf("admitted %d but ran %d", admitted.Load(), ran.Load())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing was admitted")
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, 0)
	defer p.Close()
	if p.Workers() != Default() {
		t.Fatalf("workers = %d, want process default %d", p.Workers(), Default())
	}
	if p.QueueCap() != 4*Default() {
		t.Fatalf("queue cap = %d, want %d", p.QueueCap(), 4*Default())
	}
}
