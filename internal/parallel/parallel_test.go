package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(4, 100); got != 4 {
		t.Fatalf("Resolve(4,100) = %d", got)
	}
	if got := Resolve(8, 3); got != 3 {
		t.Fatalf("Resolve(8,3) = %d, want clamp to n", got)
	}
	if got := Resolve(0, 1000); got != Default() {
		t.Fatalf("Resolve(0,1000) = %d, want default %d", got, Default())
	}
	if got := Resolve(5, 0); got != 1 {
		t.Fatalf("Resolve(5,0) = %d, want 1", got)
	}
}

func TestSetDefault(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	if got := SetDefault(3); got != 3 || Default() != 3 {
		t.Fatalf("SetDefault(3) = %d, Default() = %d", got, Default())
	}
	if got := SetDefault(0); got < 1 {
		t.Fatalf("SetDefault(0) = %d, want NumCPU fallback", got)
	}
}

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100} {
			hits := make([]atomic.Int64, n)
			ForEach(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(8, 50, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapErrLowestIndexWins(t *testing.T) {
	errAt := func(bad ...int) error {
		_, err := MapErr(8, 40, func(i int) (int, error) {
			for _, b := range bad {
				if i == b {
					return 0, fmt.Errorf("item %d failed", i)
				}
			}
			return i, nil
		})
		return err
	}
	if err := errAt(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	// Regardless of scheduling, the reported error is from the lowest index.
	for trial := 0; trial < 10; trial++ {
		err := errAt(31, 7, 22)
		if err == nil || err.Error() != "item 7 failed" {
			t.Fatalf("MapErr error = %v, want item 7 failed", err)
		}
	}
}

func TestMapErrRunsAllItems(t *testing.T) {
	var ran atomic.Int64
	_, err := MapErr(4, 20, func(i int) (struct{}, error) {
		ran.Add(1)
		if i%3 == 0 {
			return struct{}{}, errors.New("boom")
		}
		return struct{}{}, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d items, want all 20", ran.Load())
	}
}

func TestForEachBlockPartition(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			hits := make([]atomic.Int64, n)
			ForEachBlock(workers, n, func(w, lo, hi int) {
				if lo >= hi {
					t.Errorf("empty block dispatched: [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: item %d covered %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestSeedIndependentOfWorkerCount(t *testing.T) {
	const base, n = 42, 64
	draw := func(workers int) []float64 {
		return Map(workers, n, func(i int) float64 {
			return Rng(base, i).Float64()
		})
	}
	want := draw(1)
	for _, workers := range []int{2, 4, 8} {
		got := draw(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: item %d drew %v, want %v (workers=1)", workers, i, got[i], want[i])
			}
		}
	}
}

func TestSeedDecorrelated(t *testing.T) {
	// Adjacent indices and adjacent bases must yield distinct seeds; a
	// collision here would silently correlate parallel trials.
	seen := map[int64]string{}
	for base := int64(0); base < 50; base++ {
		for i := 0; i < 50; i++ {
			s := Seed(base, i)
			key := fmt.Sprintf("base=%d i=%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestLaneBudget(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(4) // budget: 3 extra lanes
	if got := AcquireLanes(10); got != 3 {
		t.Fatalf("AcquireLanes(10) = %d, want 3", got)
	}
	if got := AcquireLanes(1); got != 0 {
		t.Fatalf("AcquireLanes on drained budget = %d, want 0", got)
	}
	ReleaseLanes(2)
	if got := AcquireLanes(5); got != 2 {
		t.Fatalf("AcquireLanes after partial release = %d, want 2", got)
	}
	ReleaseLanes(3)
	if got := AcquireLanes(0); got != 0 {
		t.Fatalf("AcquireLanes(0) = %d, want 0", got)
	}
}

func TestForEachNested(t *testing.T) {
	// Nested fan-out must not deadlock and must cover the full grid.
	var hits [8][8]atomic.Int64
	ForEach(4, 8, func(i int) {
		ForEach(4, 8, func(j int) { hits[i][j].Add(1) })
	})
	for i := range hits {
		for j := range hits[i] {
			if hits[i][j].Load() != 1 {
				t.Fatalf("cell (%d,%d) ran %d times", i, j, hits[i][j].Load())
			}
		}
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(4, 256, func(int) {})
	}
}

func BenchmarkSeededFanout(b *testing.B) {
	// A coarse-grained seeded fan-out: the shape every experiment loop uses.
	work := func(rng *rand.Rand) float64 {
		var acc float64
		for k := 0; k < 20000; k++ {
			acc += rng.Float64()
		}
		return acc
	}
	for _, workers := range []int{1, 0} {
		name := "workers=1"
		if workers == 0 {
			name = "workers=default"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Map(workers, 64, func(j int) float64 { return work(Rng(1, j)) })
			}
		})
	}
}
