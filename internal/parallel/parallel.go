// Package parallel is the repository's worker-pool execution engine: bounded
// fan-out over index ranges with a determinism contract. Every primitive
// splits work by item index, never by arrival order, and randomness is always
// derived from (baseSeed, itemIndex) via Seed — so a computation produces
// bit-for-bit identical results at workers=1 and workers=N. The hot layers
// (mat kernels, PPO rollout collection, experiment trials, corpus sampling)
// all run through this package; see DESIGN.md ("Parallel execution engine")
// for the contract and its rationale.
//
// The contract callers must uphold:
//
//   - fn(i) may depend only on item index i (plus immutable shared state and
//     per-worker replicas handed out by ForEachBlock);
//   - fn(i) writes only to slot i of its output (Map enforces this shape);
//   - randomness inside fn comes from an RNG seeded by Seed(base, i), never
//     from a shared stream.
//
// Under those rules scheduling is free to be dynamic (an atomic cursor
// balances load), yet outputs are independent of worker count and of thread
// interleaving.
//
//mcmlint:deterministic
//mcmlint:hotpath
//mcmlint:errcontract
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when a caller passes
// workers <= 0. It starts at runtime.NumCPU(); cmd binaries override it from
// their -workers flag.
var defaultWorkers atomic.Int64

// extraLanes is the process-wide budget of additional goroutines the
// fine-grained kernels (matmul row blocks, adjacency aggregation, optimizer
// updates) may hold beyond their calling goroutines. Coarse layers (trials,
// rollout collection) coordinate through explicit Workers configuration;
// kernels instead reserve lanes non-blockingly via AcquireLanes, so nested
// fan-out (a concurrent trial's rollout's matmul) degrades to serial
// execution instead of multiplying goroutines quadratically. By the kernel
// contract, how a call ends up split never changes its result.
var extraLanes atomic.Int64

func init() { SetDefault(runtime.NumCPU()) }

// SetDefault sets the process-wide default worker count (n <= 0 restores
// runtime.NumCPU()) and resets the kernel lane budget to match. It returns
// the value actually installed. Call it at startup or between computations,
// not while a pool is running (outstanding lane reservations would be
// miscounted against the new budget).
func SetDefault(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	defaultWorkers.Store(int64(n))
	extraLanes.Store(int64(n - 1))
	return n
}

// AcquireLanes reserves up to extra kernel lanes from the process-wide
// budget without blocking, returning how many were reserved (possibly 0 —
// the caller then runs serially). Pair every non-zero return with
// ReleaseLanes.
func AcquireLanes(extra int) int {
	if extra <= 0 {
		return 0
	}
	for {
		cur := extraLanes.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(extra)
		if take > cur {
			take = cur
		}
		if extraLanes.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

// ReleaseLanes returns lanes reserved by AcquireLanes to the budget.
func ReleaseLanes(n int) {
	if n > 0 {
		extraLanes.Add(int64(n))
	}
}

// Default returns the process-wide default worker count.
func Default() int { return int(defaultWorkers.Load()) }

// Resolve clamps a requested worker count against the work size: workers <= 0
// means the process default, and no more than n workers are ever used.
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = Default()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Seed derives an independent RNG seed for item i of a computation seeded by
// base. It is a splitmix64 finalizer over the pair, so per-item streams are
// decorrelated even for adjacent indices and small bases — the property the
// determinism contract rests on (item i's randomness must not depend on how
// many items some other worker has already consumed).
func Seed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Rng returns a fresh RNG for item i of a computation seeded by base.
func Rng(base int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(Seed(base, i)))
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 uses the process default). Items are claimed from an atomic
// cursor, so load balances dynamically; callers get determinism by following
// the package contract. ForEach returns when every item has completed.
func ForEach(workers, n int, fn func(i int)) {
	workers = Resolve(workers, n)
	if n == 0 {
		return
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//mcmlint:ignore hotalloc worker spawn runs once per call, not per item; the goroutine itself is the allocation
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible items. All items run regardless of failures
// (each is independent under the contract); the returned error is the one
// from the lowest failing index, so the error a caller sees is also
// deterministic across worker counts.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// ForEachBlock splits [0, n) into one contiguous block per worker and runs
// fn(worker, lo, hi) for each non-empty block concurrently. It is the
// primitive for stages that need per-worker state (a solver replica, a policy
// clone): the worker index selects the replica, while per-item seeding inside
// [lo, hi) keeps outputs independent of the split. Blocks differ in size by
// at most one item.
func ForEachBlock(workers, n int, fn func(worker, lo, hi int)) {
	workers = Resolve(workers, n)
	if n == 0 {
		return
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := blockBounds(w, workers, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//mcmlint:ignore hotalloc worker spawn runs once per call, not per item; the goroutine itself is the allocation
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// blockBounds returns worker w's contiguous slice of [0, n).
func blockBounds(w, workers, n int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}
