package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Pool errors.
var (
	// ErrPoolClosed is returned by TrySubmit after Close.
	ErrPoolClosed = errors.New("parallel: pool is closed")
	// ErrPoolFull is returned by TrySubmit when the task queue is at
	// capacity — the caller decides whether to shed load or retry.
	ErrPoolFull = errors.New("parallel: pool queue is full")
)

// Pool is a long-lived bounded worker pool: a fixed set of goroutines
// draining a bounded task queue. Unlike ForEach/Map — which fan a known
// index range out and join — a Pool serves an open-ended stream of
// independent tasks, which is what a planning service needs: admission is
// explicit (TrySubmit fails fast when the queue is full instead of
// buffering unboundedly), and Close drains what was admitted.
//
// The determinism contract of this package still applies to what runs
// inside a task: tasks must not share mutable state except through their
// own synchronization, and any randomness must be derived from stable task
// identity (Seed), never from arrival order.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool // guarded by mu
	workers int
	// busy counts workers currently executing a task — the live occupancy
	// a telemetry gauge reads (QueueLen is its queue-side counterpart).
	busy atomic.Int64
}

// NewPool starts a pool of the given size. workers <= 0 uses the process
// default (see SetDefault); queue <= 0 defaults to 4x the worker count.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = Default()
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	p := &Pool{tasks: make(chan func(), queue), workers: workers}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		//mcmlint:ignore hotalloc pool startup runs once per NewPool, not per task
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				p.busy.Add(1)
				fn()
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueCap returns the capacity of the task queue.
func (p *Pool) QueueCap() int { return cap(p.tasks) }

// QueueLen returns the number of tasks waiting in the queue right now —
// the live depth a dashboard watches for pressure, as opposed to
// QueueCap, the configured bound.
func (p *Pool) QueueLen() int { return len(p.tasks) }

// Busy returns how many workers are executing a task right now.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// TrySubmit enqueues fn without blocking. It returns ErrPoolFull when the
// queue is at capacity and ErrPoolClosed after Close.
func (p *Pool) TrySubmit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- fn:
		return nil
	default:
		return ErrPoolFull
	}
}

// Close stops accepting tasks, waits for every admitted task (queued or
// running) to finish, and returns. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
