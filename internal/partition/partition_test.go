package partition

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mcmpart/internal/graph"
)

// fig2Graph builds the 5-node computation graph of the paper's Figure 2a:
// node 0 fans out to nodes 1 and 2; node 1 feeds node 3; nodes 2 and 3 feed
// node 4.
func fig2Graph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("fig2a")
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{Name: "op", Op: graph.OpMatMul, FLOPs: 1, OutputBytes: 4})
	}
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(0, 2, 4)
	g.MustAddEdge(1, 3, 4)
	g.MustAddEdge(2, 4, 4)
	g.MustAddEdge(3, 4, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidateAcceptsValidPartitions(t *testing.T) {
	g := fig2Graph(t)
	valid := []Partition{
		{0, 0, 0, 0, 0}, // everything on one chip
		{0, 0, 0, 1, 1}, // two chips, single boundary
		{0, 0, 1, 1, 1}, // two chips, both branch edges cut
		{0, 1, 1, 1, 1}, // cut right after the source
		{0, 0, 0, 0, 1}, // sink alone
	}
	for _, p := range valid {
		if err := p.Validate(g, 4); err != nil {
			t.Errorf("partition %v should be valid: %v", p, err)
		}
	}
}

func TestValidateFigure2Violations(t *testing.T) {
	g := fig2Graph(t)
	tests := []struct {
		name string
		p    Partition
		want error
	}{
		// Figure 2c: data flows from a higher chip back to a lower chip.
		{"acyclic dataflow", Partition{0, 1, 0, 1, 0}, ErrAcyclicDataflow},
		// Figure 2d: chip 1 is skipped while chip 2 is used.
		{"skipping chips", Partition{0, 0, 0, 2, 2}, ErrSkippedChip},
		// Figure 2e: direct dependency 0->2 (edge 2->4) coexists with the
		// indirect chain 0 -> 1 -> 2.
		{"triangle dependency", Partition{0, 1, 0, 1, 2}, ErrTriangleDependency},
		{"chip out of range", Partition{0, 0, 0, 0, 9}, ErrChipRange},
		{"negative chip", Partition{-1, 0, 0, 0, 0}, ErrChipRange},
		{"wrong length", Partition{0, 0}, ErrLength},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate(g, 4)
			if !errors.Is(err, tt.want) {
				t.Fatalf("Validate(%v) = %v, want %v", tt.p, err, tt.want)
			}
		})
	}
}

func TestTriangleAllowsAdjacentChains(t *testing.T) {
	// A pure pipeline 0 -> 1 -> 2 -> 3 where every cut edge connects
	// adjacent chips is the canonical valid layout.
	g := graph.New("chain")
	for i := 0; i < 8; i++ {
		g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
		if i > 0 {
			g.MustAddEdge(i-1, i, 4)
		}
	}
	p := Partition{0, 0, 1, 1, 2, 2, 3, 3}
	if err := p.Validate(g, 4); err != nil {
		t.Fatalf("chain partition should be valid: %v", err)
	}
}

func TestTriangleRejectsSkipEdgeOverChain(t *testing.T) {
	// chain 0->1->2 plus skip edge 0->2; splitting each node to its own
	// chip creates direct 0->2 alongside 0->1->2.
	g := graph.New("skipconn")
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
	}
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 4)
	g.MustAddEdge(0, 2, 4)
	if err := (Partition{0, 1, 2}).Validate(g, 4); !errors.Is(err, ErrTriangleDependency) {
		t.Fatalf("want triangle violation, got %v", err)
	}
	// Keeping the residual within one chip is fine.
	if err := (Partition{0, 0, 0}).Validate(g, 4); err != nil {
		t.Fatalf("single-chip placement should be valid: %v", err)
	}
	// Cutting only after the join is fine too.
	g2 := graph.New("skipconn2")
	for i := 0; i < 4; i++ {
		g2.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
	}
	g2.MustAddEdge(0, 1, 4)
	g2.MustAddEdge(1, 2, 4)
	g2.MustAddEdge(0, 2, 4)
	g2.MustAddEdge(2, 3, 4)
	if err := (Partition{0, 0, 0, 1}).Validate(g2, 4); err != nil {
		t.Fatalf("cut after join should be valid: %v", err)
	}
}

func TestTriangleAllowsDirectSkipWithoutIndirectPath(t *testing.T) {
	// Two independent chains: 0->1 on chips 0,1 and 2->3 on chips 0,2,
	// creating a direct 0->2 dependency with no indirect path. delta(0,2)
	// is 1, so this is legal under Eq. 4 (chip 1 is still used, so no-skip
	// holds).
	g := graph.New("parallel")
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 4})
	}
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(2, 3, 4)
	p := Partition{0, 1, 0, 2}
	if err := p.Validate(g, 4); err != nil {
		t.Fatalf("direct skip without indirect path should be valid: %v", err)
	}
}

func TestCutEdgesAndLoads(t *testing.T) {
	g := fig2Graph(t)
	p := Partition{0, 0, 1, 1, 1}
	cut := p.CutEdges(g)
	if len(cut) != 2 { // edges 0->2 and 1->3
		t.Fatalf("cut edges = %v, want 2 cuts", cut)
	}
	if got := p.CutBytes(g); got != 8 {
		t.Fatalf("CutBytes = %d, want 8", got)
	}
	loads := p.Loads(g, 2)
	if loads[0].Nodes != 2 || loads[1].Nodes != 3 {
		t.Fatalf("node loads = %+v", loads)
	}
	if loads[0].FLOPs != 2 || loads[1].FLOPs != 3 {
		t.Fatalf("flop loads = %+v", loads)
	}
	if loads[0].BytesOut != 8 || loads[1].BytesIn != 8 {
		t.Fatalf("traffic loads = %+v", loads)
	}
}

func TestImbalance(t *testing.T) {
	g := fig2Graph(t)
	balanced := Partition{0, 0, 0, 0, 0}
	if got := balanced.Imbalance(g); got != 1 {
		t.Fatalf("single chip imbalance = %v, want 1", got)
	}
	skewed := Partition{0, 0, 0, 0, 1} // 4 FLOPs vs 1 FLOP
	if got := skewed.Imbalance(g); got <= 1 {
		t.Fatalf("skewed imbalance = %v, want > 1", got)
	}
}

func TestNumChipsUsedAndMaxChip(t *testing.T) {
	p := Partition{0, 2, 2, 1}
	if p.NumChipsUsed() != 3 || p.MaxChip() != 2 {
		t.Fatalf("NumChipsUsed=%d MaxChip=%d", p.NumChipsUsed(), p.MaxChip())
	}
	var empty Partition
	if empty.MaxChip() != -1 {
		t.Fatalf("empty MaxChip = %d, want -1", empty.MaxChip())
	}
}

// bruteTriangleViolation is an independent O(C! )-free checker: for each
// direct chip edge (a,b) it searches for any other a->...->b path by DFS.
func bruteTriangleViolation(g *graph.Graph, p Partition, chips int) bool {
	adj := make([][]bool, chips)
	for i := range adj {
		adj[i] = make([]bool, chips)
	}
	for _, e := range g.Edges() {
		a, b := p[e.From], p[e.To]
		if a != b {
			adj[a][b] = true
		}
	}
	var longer func(from, to, depth int) bool
	longer = func(from, to, depth int) bool {
		if from == to {
			return depth >= 2
		}
		for m := from + 1; m < chips; m++ {
			if adj[from][m] && longer(m, to, depth+1) {
				return true
			}
		}
		return false
	}
	for a := 0; a < chips; a++ {
		for b := a + 1; b < chips; b++ {
			if adj[a][b] && longer(a, b, 0) {
				return true
			}
		}
	}
	return false
}

func TestValidateAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		chips := 2 + rng.Intn(4)
		g := graph.New("rand")
		for i := 0; i < n; i++ {
			g.AddNode(graph.Node{FLOPs: 1, OutputBytes: 1})
		}
		for v := 1; v < n; v++ {
			u := rng.Intn(v)
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 1)
			}
			if rng.Intn(2) == 0 {
				u2 := rng.Intn(v)
				if !g.HasEdge(u2, v) {
					g.MustAddEdge(u2, v, 1)
				}
			}
		}
		// Random monotone-ish partition: sometimes valid, sometimes not.
		p := make(Partition, n)
		for i := range p {
			p[i] = rng.Intn(chips)
		}
		err := p.Validate(g, chips)
		// Reproduce the same first-two checks so we can isolate the
		// triangle logic.
		monotone := true
		for _, e := range g.Edges() {
			if p[e.From] > p[e.To] {
				monotone = false
				break
			}
		}
		if !monotone {
			return errors.Is(err, ErrAcyclicDataflow)
		}
		used := make([]bool, chips)
		max := 0
		for _, c := range p {
			used[c] = true
			if c > max {
				max = c
			}
		}
		for d := 0; d <= max; d++ {
			if !used[d] {
				return errors.Is(err, ErrSkippedChip)
			}
		}
		if bruteTriangleViolation(g, p, chips) {
			return errors.Is(err, ErrTriangleDependency)
		}
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
