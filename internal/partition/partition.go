// Package partition represents assignments of computation-graph nodes to
// MCM chiplets and checks the static hardware constraints of the paper's
// problem formulation (Sec. 3, Eq. 5):
//
//  1. acyclic dataflow   — f(u) <= f(v) for every edge (u,v) (Eq. 2),
//  2. no skipping chips  — used chips form the contiguous prefix {0..K} (Eq. 3),
//  3. triangle dependency — a direct dependency between two chips may not
//     coexist with an indirect dependency between the same chips (Eq. 4).
//
// The dynamic constraint H(G,f) (Eq. 5, last line) is checked by the
// hardware simulator in internal/hwsim, not here, mirroring the paper: the
// static constraints are what the CP solver can enforce, the dynamic one only
// surfaces when a candidate is compiled and run.
package partition

import (
	"errors"
	"fmt"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
)

// Partition maps node IDs to chip IDs: Partition[v] is the chip the node v
// is placed on. It is the mapping function f of the paper.
type Partition []int

// Clone returns a copy of the partition.
func (p Partition) Clone() Partition {
	return append(Partition(nil), p...)
}

// NumChipsUsed returns the number of distinct chips that host at least one
// node. For a valid partition this equals max(p)+1.
func (p Partition) NumChipsUsed() int {
	used := make(map[int]bool, len(p))
	for _, c := range p {
		used[c] = true
	}
	return len(used)
}

// MaxChip returns the highest chip ID used, or -1 for an empty partition.
func (p Partition) MaxChip() int {
	max := -1
	for _, c := range p {
		if c > max {
			max = c
		}
	}
	return max
}

// Violation kinds distinguishable with errors.Is.
var (
	ErrLength             = errors.New("partition: wrong length")
	ErrChipRange          = errors.New("partition: chip ID out of range")
	ErrAcyclicDataflow    = errors.New("partition: acyclic dataflow constraint violated")
	ErrSkippedChip        = errors.New("partition: no-skipping-chips constraint violated")
	ErrTriangleDependency = errors.New("partition: chip triangle dependency constraint violated")
	ErrUnroutableTransfer = errors.New("partition: cut edge has no route on the package topology")
)

// Validate checks the three static constraints against the graph and a
// package with the given chip count. It returns nil for a valid partition, or
// an error wrapping one of ErrLength, ErrChipRange, ErrAcyclicDataflow,
// ErrSkippedChip or ErrTriangleDependency describing the first violation
// found.
func (p Partition) Validate(g *graph.Graph, chips int) error {
	if len(p) != g.NumNodes() {
		return fmt.Errorf("%w: %d entries for %d nodes", ErrLength, len(p), g.NumNodes())
	}
	for v, c := range p {
		if c < 0 || c >= chips {
			return fmt.Errorf("%w: node %d on chip %d (chips=%d)", ErrChipRange, v, c, chips)
		}
	}
	// Constraint 1: f(u) <= f(v) for every edge.
	for _, e := range g.Edges() {
		if p[e.From] > p[e.To] {
			return fmt.Errorf("%w: edge (%d,%d) flows from chip %d back to chip %d",
				ErrAcyclicDataflow, e.From, e.To, p[e.From], p[e.To])
		}
	}
	// Constraint 2: used chips form the prefix {0..max}.
	used := make([]bool, chips)
	maxChip := 0
	for _, c := range p {
		used[c] = true
		if c > maxChip {
			maxChip = c
		}
	}
	for d := 0; d <= maxChip; d++ {
		if !used[d] {
			return fmt.Errorf("%w: chip %d is skipped (chips 0..%d in use)", ErrSkippedChip, d, maxChip)
		}
	}
	// Constraint 3: delta(f(u), f(v)) == 1 for every cut edge, where delta
	// is the longest path in the chip-level dependency graph.
	adj := p.chipAdjacency(g, maxChip+1)
	dist := longestPaths(adj)
	for a := 0; a <= maxChip; a++ {
		for b := a + 1; b <= maxChip; b++ {
			if adj[a][b] && dist[a][b] > 1 {
				return fmt.Errorf("%w: chips %d and %d have both a direct and an indirect dependency (longest path %d)",
					ErrTriangleDependency, a, b, dist[a][b])
			}
		}
	}
	return nil
}

// ValidateOn checks a partition against a concrete package: the three
// static constraints of Validate (with the package's chip count) plus
// transfer routability — every cut edge must have a route on the package's
// interconnect topology. On the default uni-directional ring routability is
// implied by the acyclic dataflow constraint; richer or more restrictive
// topologies make it an independent check, and it is what keeps the
// evaluation environments (costmodel, hwsim) and the validator agreeing on
// which partitions are legal.
func (p Partition) ValidateOn(g *graph.Graph, pkg *mcm.Package) error {
	if err := p.Validate(g, pkg.Chips); err != nil {
		return err
	}
	topo, err := pkg.Topo()
	if err != nil {
		return err
	}
	for _, e := range g.Edges() {
		a, b := p[e.From], p[e.To]
		if a == b {
			continue
		}
		if _, ok := topo.Hops(a, b); !ok {
			return fmt.Errorf("%w: edge (%d,%d) needs chip %d -> %d on %s",
				ErrUnroutableTransfer, e.From, e.To, a, b, topo.Kind())
		}
	}
	return nil
}

// chipAdjacency builds the chip-level dependency graph induced by cut edges:
// adj[a][b] is true when some graph edge flows from a node on chip a to a
// node on chip b, a != b. Only valid after constraint 1 holds, so a < b.
func (p Partition) chipAdjacency(g *graph.Graph, chips int) [][]bool {
	adj := make([][]bool, chips)
	for i := range adj {
		adj[i] = make([]bool, chips)
	}
	for _, e := range g.Edges() {
		a, b := p[e.From], p[e.To]
		if a != b {
			adj[a][b] = true
		}
	}
	return adj
}

// longestPaths returns the all-pairs longest path length (in edges) of a
// chip dependency DAG whose edges all go from lower to higher IDs.
// dist[a][b] == 0 means no path. Chip counts are at most mcm.MaxChips, so
// the O(C^3) dynamic program is cheap.
func longestPaths(adj [][]bool) [][]int {
	c := len(adj)
	dist := make([][]int, c)
	for a := range dist {
		dist[a] = make([]int, c)
	}
	// Process targets in increasing order; all edges go low -> high, so by
	// the time we compute dist[a][b] every dist[a][m] with m < b is final.
	for a := 0; a < c; a++ {
		for b := a + 1; b < c; b++ {
			best := 0
			if adj[a][b] {
				best = 1
			}
			for m := a + 1; m < b; m++ {
				if adj[m][b] && dist[a][m] > 0 {
					if d := dist[a][m] + 1; d > best {
						best = d
					}
				}
			}
			dist[a][b] = best
		}
	}
	return dist
}

// CutEdges returns the indices (into g.Edges) of edges whose endpoints are on
// different chips.
func (p Partition) CutEdges(g *graph.Graph) []int {
	var cut []int
	for i, e := range g.Edges() {
		if p[e.From] != p[e.To] {
			cut = append(cut, i)
		}
	}
	return cut
}

// CutBytes returns the total number of bytes crossing chip boundaries.
func (p Partition) CutBytes(g *graph.Graph) int64 {
	var sum int64
	for _, e := range g.Edges() {
		if p[e.From] != p[e.To] {
			sum += e.Bytes
		}
	}
	return sum
}

// ChipLoad aggregates the per-chip resource usage of a partition.
type ChipLoad struct {
	// FLOPs is the total compute placed on the chip.
	FLOPs float64
	// ParamBytes is the total weight footprint placed on the chip.
	ParamBytes int64
	// Nodes is the number of nodes placed on the chip.
	Nodes int
	// BytesIn and BytesOut are the cut-edge traffic entering and leaving
	// the chip.
	BytesIn, BytesOut int64
}

// Loads returns per-chip resource usage for chips 0..chips-1.
func (p Partition) Loads(g *graph.Graph, chips int) []ChipLoad {
	loads := make([]ChipLoad, chips)
	for v, c := range p {
		n := g.Node(v)
		loads[c].FLOPs += n.FLOPs
		loads[c].ParamBytes += n.ParamBytes
		loads[c].Nodes++
	}
	for _, e := range g.Edges() {
		a, b := p[e.From], p[e.To]
		if a != b {
			loads[a].BytesOut += e.Bytes
			loads[b].BytesIn += e.Bytes
		}
	}
	return loads
}

// Imbalance returns max-chip FLOPs divided by mean-chip FLOPs across the
// chips actually used; 1.0 is perfectly balanced. It is a cheap proxy for
// partition quality used in logs and tests.
func (p Partition) Imbalance(g *graph.Graph) float64 {
	used := p.MaxChip() + 1
	if used <= 0 {
		return 0
	}
	loads := p.Loads(g, used)
	var sum, max float64
	for _, l := range loads {
		sum += l.FLOPs
		if l.FLOPs > max {
			max = l.FLOPs
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(used))
}

// String renders the partition compactly, e.g. "[0 0 1 2 2]".
func (p Partition) String() string {
	return fmt.Sprintf("%v", []int(p))
}
