// Package analyze is the static-analysis fast path of the partitioner: it
// derives per-node placement domains and sound cost lower bounds from the
// graph and package alone — no per-candidate simulation — and constructs a
// high-quality valid partition in near-linear time. It is how the planner
// reaches 100k-node graphs (TOAST-style principled static analysis, see
// DESIGN.md §11), where driving the per-sample solver + evaluator loop is
// hopeless.
//
// The analysis works over the contiguous segmentation family cpsolver's
// Segmenter established: lay nodes out in topological order and split the
// layout into K contiguous chunks, chunk c on chip c, such that no edge
// span contains two split points. Every such segmentation satisfies all
// three static constraints by construction (monotone chips, prefix usage,
// adjacent cuts), so the fast path never needs a per-candidate validity
// check; the open choices are K and the K-1 boundary gaps, and those are
// resolved with prefix sums and monotone two-pointer/binary-search walks.
//
// Placement domains are represented with cpsolver's Domain bitsets on a
// trail-backed DomainStore: the base analysis applies every K-independent
// necessary condition (weight prefixes, boundary capacity, per-node SRAM
// fit, chip monotonicity), and per-K feasibility is probed by speculative
// tightening under a trail mark that is rolled back afterwards — the same
// propagate-and-backtrack machinery the sample-by-sample solver uses,
// without its O(|V|) per-assignment sweeps.
//
//mcmlint:deterministic
//mcmlint:hotpath
package analyze

import (
	"fmt"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
)

// ErrInfeasible reports that no capacity-feasible contiguous layout of the
// graph on the package exists (the total weight footprint exceeds every
// usable chip prefix, or a single node fits no chip). It wraps
// cpsolver.ErrInfeasible so callers can errors.Is against either package.
var ErrInfeasible = fmt.Errorf("analyze: no capacity-feasible layout: %w", cpsolver.ErrInfeasible)

// Analysis is the static analysis of one (graph, package) pair: the
// topological layout, its prefix-sum cost views, the pair-rule boundary
// structure, and the per-position placement domains. Build it once with New
// and reuse it for bounds and plans; an Analysis is read-only after New and
// safe for concurrent use except for Plan and FeasibleK (which speculate on
// the shared domain trail).
type Analysis struct {
	g     *graph.Graph
	pkg   *mcm.Package
	n     int
	chips int

	// order[p] is the node at topological position p; pos is its inverse.
	order []int
	pos   []int32

	// prefF[p] / prefW[p] are the FLOPs / weight bytes of positions < p.
	prefF []float64
	prefW []int64
	// gapBytes[g] / gapEdges[g] total the bytes / count of edges whose span
	// contains gap g (gap g separates positions g and g+1). A boundary at
	// gap g cuts exactly those edges.
	gapBytes []int64
	gapEdges []int32

	// next[g] is the earliest allowed gap for the boundary following one at
	// gap g (nondecreasing) — the pair rule, exactly as in
	// cpsolver.NewSegmenter.
	next []int32
	// capFrom[p] is the maximum number of span-respecting boundaries
	// placeable at gaps >= p (len n+1); bBefore[p] the maximum at gaps < p.
	capFrom []int32
	bBefore []int32

	// capPrefix[c] is the total SRAM of chips < c; peakPrefix[c] the total
	// peak FLOP rate of chips < c.
	capPrefix  []int64
	peakPrefix []float64
	// hopsAdj[c] is the hop count of the c-1 -> c route (-1 when unroutable;
	// hopsAdj[0] unused).
	hopsAdj []int32

	// doms holds the placement domain of each position (not node ID; use
	// Domain(v) for node-indexed access) under every K-independent
	// necessary condition.
	doms *cpsolver.DomainStore

	// kMin..kMax bound the usable chip-prefix sizes; feasibleK lists the K
	// values that survive per-K domain propagation (empty when the
	// instance is infeasible).
	kMin, kMax int
	feasibleK  []int

	totalFLOPs   float64
	totalParams  int64
	maxNodeFLOPs float64
	// minEdgePrice is the cheapest single-hop transfer any edge can cost
	// (+Inf when the graph has no edges); connected reports weak
	// connectivity. Together they decide the forced-transfer bound term.
	minEdgePrice float64
	connected    bool
}

// New runs the static analysis. It errors on cyclic graphs and invalid
// packages; an instance with no feasible layout is NOT an error here (the
// bounds are still meaningful) — Plan reports ErrInfeasible, and
// FeasibleK() comes back empty.
func New(g *graph.Graph, pkg *mcm.Package) (*Analysis, error) {
	if g == nil {
		return nil, fmt.Errorf("analyze: nil graph")
	}
	if pkg == nil {
		return nil, fmt.Errorf("analyze: nil package")
	}
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	a := &Analysis{g: g, pkg: pkg, n: n, chips: pkg.Chips, order: order}
	a.pos = make([]int32, n)
	for p, v := range order {
		a.pos[v] = int32(p)
	}
	a.buildPrefixes()
	a.buildBoundaryStructure()
	a.buildChipPrefixes()
	a.buildDomains()
	a.probeFeasibleK()
	return a, nil
}

// buildPrefixes fills the position-indexed prefix sums and the per-gap cut
// totals (difference arrays over the edge spans, O(V+E)).
func (a *Analysis) buildPrefixes() {
	n := a.n
	a.prefF = make([]float64, n+1)
	a.prefW = make([]int64, n+1)
	for p, v := range a.order {
		nd := a.g.Node(v)
		a.prefF[p+1] = a.prefF[p] + nd.FLOPs
		a.prefW[p+1] = a.prefW[p] + nd.ParamBytes
		if nd.FLOPs > a.maxNodeFLOPs {
			a.maxNodeFLOPs = nd.FLOPs
		}
	}
	a.totalFLOPs = a.prefF[n]
	a.totalParams = a.prefW[n]
	if n > 1 {
		a.gapBytes = make([]int64, n-1)
		a.gapEdges = make([]int32, n-1)
	}
	// Edge (u,v) spans gaps pos[u] .. pos[v]-1; accumulate via difference
	// arrays and one prefix pass. Also fold the connectivity and
	// cheapest-transfer facts the bound needs, so New walks edges once.
	dsu := newDSU(n)
	a.minEdgePrice = inf()
	for _, e := range a.g.Edges() {
		// Zero-byte edges constrain the layout (pair rule) but are priced at
		// zero by HopTransferTime, so they stay out of the cut totals.
		if e.Bytes > 0 {
			pu, pv := a.pos[e.From], a.pos[e.To]
			a.gapBytes[pu] += e.Bytes
			a.gapEdges[pu]++
			if int(pv) < n-1 {
				a.gapBytes[pv] -= e.Bytes
				a.gapEdges[pv]--
			}
		}
		dsu.union(e.From, e.To)
		if price := a.pkg.HopTransferTime(1, e.Bytes); price < a.minEdgePrice {
			a.minEdgePrice = price
		}
	}
	for g := 1; g < n-1; g++ {
		a.gapBytes[g] += a.gapBytes[g-1]
		a.gapEdges[g] += a.gapEdges[g-1]
	}
	a.connected = dsu.components == 1
}

// buildBoundaryStructure fills the pair-rule next array and the boundary
// capacity counts, mirroring cpsolver.NewSegmenter / boundaryCapacity.
func (a *Analysis) buildBoundaryStructure() {
	n := a.n
	a.next = make([]int32, n)
	for i := range a.next {
		a.next[i] = int32(i) + 1
	}
	for _, e := range a.g.Edges() {
		pu, pv := a.pos[e.From], a.pos[e.To]
		if pv > a.next[pu] {
			a.next[pu] = pv
		}
	}
	for i := 1; i < n; i++ {
		if a.next[i-1] > a.next[i] {
			a.next[i] = a.next[i-1]
		}
	}
	// capFrom[p] = boundaries placeable at gaps >= p: 0 past the last gap,
	// else one at p plus whatever fits after its pair-rule shadow.
	a.capFrom = make([]int32, n+1)
	for p := n - 2; p >= 0; p-- {
		a.capFrom[p] = 1 + a.capFrom[a.next[p]]
	}
	// bBefore[p] = boundaries placeable at gaps < p: count the greedy
	// earliest-placement walk (optimal because next is nondecreasing).
	a.bBefore = make([]int32, n)
	count, walk := int32(0), 0
	for p := 0; p < n; p++ {
		for walk < p {
			count++
			walk = int(a.next[walk])
		}
		a.bBefore[p] = count
	}
}

// buildChipPrefixes fills the chip-indexed capacity and peak-rate prefix
// sums.
func (a *Analysis) buildChipPrefixes() {
	a.capPrefix = make([]int64, a.chips+1)
	a.peakPrefix = make([]float64, a.chips+1)
	a.hopsAdj = make([]int32, a.chips)
	for c := 0; c < a.chips; c++ {
		a.capPrefix[c+1] = a.capPrefix[c] + a.pkg.ChipSRAM(c)
		a.peakPrefix[c+1] = a.peakPrefix[c] + a.pkg.ChipFLOPs(c)
		a.hopsAdj[c] = -1
		if c > 0 {
			if h, ok := a.pkg.PathHops(c-1, c); ok {
				a.hopsAdj[c] = int32(h)
			}
		}
	}
}

// buildDomains applies every K-independent necessary condition to the
// per-position domains and computes kMin/kMax. A base wipeout (some node
// fits nowhere) leaves kMax < kMin, i.e. no feasible K.
func (a *Analysis) buildDomains() {
	n, chips := a.n, a.chips
	a.doms = cpsolver.NewDomainStore(n, chips)
	wiped := false
	restrict := func(p int, d cpsolver.Domain) {
		if _, empty := a.doms.Restrict(p, d); empty {
			wiped = true
		}
	}

	// Weight prefixes: positions 0..p live on chips 0..chip(p), so their
	// weights must fit capPrefix[chip(p)+1]; dually for the suffix. Both
	// walks are two-pointer over the monotone prefix sums.
	c := 0
	for p := 0; p < n; p++ {
		for c < chips && a.capPrefix[c+1] < a.prefW[p+1] {
			c++
		}
		if c >= chips {
			// The prefix through p fits no chip prefix at all: wipe p
			// explicitly so the infeasibility is visible in its domain.
			restrict(p, 0)
			continue
		}
		restrict(p, cpsolver.MaskGE(c))
	}
	c = chips - 1
	for p := n - 1; p >= 0; p-- {
		suff := a.prefW[n] - a.prefW[p]
		for c >= 0 && a.capPrefix[chips]-a.capPrefix[c] < suff {
			c--
		}
		if c < 0 {
			restrict(p, 0)
			continue
		}
		restrict(p, cpsolver.MaskLE(c))
	}

	// Boundary capacity: chip(p) equals the number of boundaries at gaps
	// before position p, which bBefore caps.
	for p := 0; p < n; p++ {
		restrict(p, cpsolver.MaskLE(int(a.bBefore[p])))
	}

	// Per-node SRAM fit: a node whose weights exceed a chip's SRAM cannot
	// sit there. Only nodes heavier than the smallest chip need the O(C)
	// mask build.
	minSRAM := a.pkg.MinChipSRAM()
	for p := 0; p < n; p++ {
		params := a.g.Node(a.order[p]).ParamBytes
		if params <= minSRAM {
			continue
		}
		var mask cpsolver.Domain
		for ch := 0; ch < chips; ch++ {
			if a.pkg.ChipSRAM(ch) >= params {
				mask |= cpsolver.Single(ch)
			}
		}
		restrict(p, mask)
	}

	// Greedy chunk fill: for any contiguous layout, chip c's chunk ends no
	// later than the greedy forward fill's (greedy maximizes every chip
	// prefix's reach), so chip(p) >= the greedy fill's chip at p. Unlike
	// the aggregate prefix-weight walk above this respects chunk
	// granularity, closing integrality gaps (e.g. three 8 MiB chips cannot
	// hold eight 3 MiB nodes even though 24 <= 24).
	cG, w := 0, int64(0)
	for p := 0; p < n; p++ {
		nw := a.g.Node(a.order[p]).ParamBytes
		w += nw
		for cG < chips && w > a.pkg.ChipSRAM(cG) {
			cG++
			w = nw
		}
		if cG >= chips {
			restrict(p, 0)
			continue
		}
		restrict(p, cpsolver.MaskGE(cG))
	}

	if wiped {
		a.kMin, a.kMax = 1, 0
		return
	}

	// kMin: every layout uses at least lo(p)+1 chips for any p. kMax: the
	// pair rule admits at most capFrom[0] boundaries.
	a.kMin = 1
	for p := 0; p < n; p++ {
		if lo := a.doms.Domain(p).Min() + 1; lo > a.kMin {
			a.kMin = lo
		}
	}
	a.kMax = chips
	if cap := int(a.capFrom[0]) + 1; cap < a.kMax {
		a.kMax = cap
	}
	if n < a.kMax {
		a.kMax = n
	}
	if a.kMax < a.kMin {
		return
	}

	// Suffix boundary capacity at kMin: the K-1-chip(p) boundaries after
	// position p must fit at gaps >= p; K >= kMin makes this permanent.
	for p := 0; p < n; p++ {
		restrict(p, cpsolver.MaskGE(a.kMin-1-int(a.capFrom[p])))
	}

	// Chip monotonicity of the contiguous family: chip(p) <= chip(p+1) <=
	// chip(p)+1. Interval conditions reach fixpoint in one forward and one
	// backward sweep; per-node SRAM holes may need another round, so sweep
	// until quiescent (bounded: domains only shrink).
	for changed := true; changed && !wiped; {
		changed = false
		for p := 1; p < n; p++ {
			d := a.doms.Domain(p - 1)
			ch, empty := a.doms.Restrict(p, cpsolver.MaskGE(d.Min())&cpsolver.MaskLE(d.Max()+1))
			changed = changed || ch
			wiped = wiped || empty
		}
		for p := n - 2; p >= 0 && !wiped; p-- {
			d := a.doms.Domain(p + 1)
			ch, empty := a.doms.Restrict(p, cpsolver.MaskLE(d.Max())&cpsolver.MaskGE(d.Min()-1))
			changed = changed || ch
			wiped = wiped || empty
		}
	}
	if wiped {
		a.kMin, a.kMax = 1, 0
	}
}

// probeFeasibleK tests each K in [kMin, kMax] by speculative domain
// tightening under a trail mark: restrict every position to chips < K and
// to the K-dependent suffix-capacity floor, re-run the monotone sweeps, and
// roll back. A wipeout proves no exactly-K layout exists; survivors are
// candidates Plan tries to construct (construction can still fail — the
// probe is a necessary condition, not a certificate).
func (a *Analysis) probeFeasibleK() {
	for k := a.kMin; k <= a.kMax; k++ {
		if a.probeK(k) {
			a.feasibleK = append(a.feasibleK, k)
		}
	}
}

func (a *Analysis) probeK(k int) bool {
	n := a.n
	mark := a.doms.Mark()
	defer a.doms.UndoTo(mark)
	if a.prefW[n] > a.capPrefix[k] {
		return false
	}
	wiped := false
	for p := 0; p < n && !wiped; p++ {
		allowed := cpsolver.MaskLE(k-1) & cpsolver.MaskGE(k-1-int(a.capFrom[p]))
		_, wiped = a.doms.Restrict(p, allowed)
	}
	// Backward greedy chunk fill over chips k-1 down to 0: the dual of the
	// base forward fill, anchored at the layout's right end (which only
	// exists per K). chip(p) <= the backward fill's chip at p.
	cB, w := k-1, int64(0)
	for p := n - 1; p >= 0 && !wiped; p-- {
		nw := a.g.Node(a.order[p]).ParamBytes
		w += nw
		for cB >= 0 && w > a.pkg.ChipSRAM(cB) {
			cB--
			w = nw
		}
		if cB < 0 {
			return false
		}
		_, wiped = a.doms.Restrict(p, cpsolver.MaskLE(cB))
	}
	for changed := true; changed && !wiped; {
		changed = false
		for p := 1; p < n && !wiped; p++ {
			d := a.doms.Domain(p - 1)
			ch, empty := a.doms.Restrict(p, cpsolver.MaskGE(d.Min())&cpsolver.MaskLE(d.Max()+1))
			changed, wiped = changed || ch, empty
		}
		for p := n - 2; p >= 0 && !wiped; p-- {
			d := a.doms.Domain(p + 1)
			ch, empty := a.doms.Restrict(p, cpsolver.MaskLE(d.Max())&cpsolver.MaskGE(d.Min()-1))
			changed, wiped = changed || ch, empty
		}
	}
	return !wiped
}

// Chips returns the package chip count C.
func (a *Analysis) Chips() int { return a.chips }

// KRange returns the smallest and largest usable chip-prefix sizes the
// analysis admits; kMax < kMin means the instance is infeasible.
func (a *Analysis) KRange() (kMin, kMax int) { return a.kMin, a.kMax }

// FeasibleK returns the chip-prefix sizes that survive per-K domain
// propagation (nil when the instance is infeasible). Callers must not
// mutate the slice.
func (a *Analysis) FeasibleK() []int { return a.feasibleK }

// Domain returns the placement domain of node v under every K-independent
// necessary condition: the set of chips v can occupy in some
// capacity-feasible contiguous layout.
func (a *Analysis) Domain(v int) cpsolver.Domain { return a.doms.Domain(int(a.pos[v])) }

// FixedPlacements returns how many nodes the analysis pinned to a single
// chip (singleton domains) without evaluating a single candidate.
func (a *Analysis) FixedPlacements() int {
	fixed := 0
	for p := 0; p < a.n; p++ {
		if a.doms.Domain(p).Singleton() {
			fixed++
		}
	}
	return fixed
}

// dsu is a plain union-find over node IDs for the weak-connectivity fact.
type dsu struct {
	parent     []int32
	components int
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int32, n), components: n}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

func (d *dsu) find(x int) int32 {
	for d.parent[x] != int32(x) {
		d.parent[x] = d.parent[d.parent[x]]
		x = int(d.parent[x])
	}
	return int32(x)
}

func (d *dsu) union(x, y int) {
	rx, ry := d.find(x), d.find(y)
	if rx != ry {
		d.parent[rx] = ry
		d.components--
	}
}
