package analyze

import (
	"fmt"
	"sort"

	"mcmpart/internal/partition"
)

// Options tune Plan.
type Options struct {
	// RefinePasses is how many coordinate-descent sweeps polish each
	// candidate layout's boundaries (default 2; 0 uses the default, use a
	// negative value to disable refinement).
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.RefinePasses == 0 {
		o.RefinePasses = 2
	}
	if o.RefinePasses < 0 {
		o.RefinePasses = 0
	}
	return o
}

// PlanInfo reports how a Plan call decided.
type PlanInfo struct {
	// Chips is the chip-prefix size K the plan uses.
	Chips int
	// Latency is the plan's exact analytical-model pipeline interval.
	Latency float64
	// LB is the analytic lower bound (analytical-model semantics), so
	// Latency/LB.Total is a certificate of how far the plan can be from
	// optimal at most.
	LB Bounds
	// TriedK counts the feasible K values a layout was constructed for.
	TriedK int
	// FixedPlacements is how many nodes the domain analysis pinned to a
	// single chip.
	FixedPlacements int
}

// Plan constructs the best contiguous layout the analysis can certify: for
// every feasible chip-prefix size K it places K-1 boundaries by a
// balanced-compute walk under the weight, pair-rule, and
// boundary-capacity constraints, polishes them by coordinate descent on the
// exact per-chunk costs, and keeps the K with the smallest exact interval
// (ties to the smallest K). Everything is prefix-sum arithmetic — no
// evaluator runs — and wholly deterministic.
func (a *Analysis) Plan(opts Options) (partition.Partition, PlanInfo, error) {
	opts = opts.withDefaults()
	info := PlanInfo{LB: a.LowerBound(), FixedPlacements: a.FixedPlacements()}
	if a.kMax < a.kMin || len(a.feasibleK) == 0 {
		return nil, info, fmt.Errorf("graph %s on package %s: %w", a.g.Name(), a.pkg.Name, ErrInfeasible)
	}
	bestLat := inf()
	bestK := -1
	bestBounds := make([]int, 0, a.chips)
	scratch := make([]int, a.chips)
	for _, k := range a.feasibleK {
		bounds := scratch[:k-1]
		if !a.constructK(k, bounds) {
			continue
		}
		for pass := 0; pass < opts.RefinePasses; pass++ {
			if !a.refineK(k, bounds) {
				break // quiescent
			}
		}
		lat, ok := a.latencyOf(k, bounds)
		if !ok {
			continue
		}
		info.TriedK++
		if lat < bestLat {
			bestLat = lat
			bestK = k
			bestBounds = append(bestBounds[:0], bounds...)
		}
	}
	if bestK < 0 {
		return nil, info, fmt.Errorf("graph %s on package %s: no feasible K admitted a layout: %w",
			a.g.Name(), a.pkg.Name, ErrInfeasible)
	}
	info.Chips = bestK
	info.Latency = bestLat
	p := a.emit(bestBounds)
	if err := p.Validate(a.g, a.chips); err != nil {
		return nil, info, fmt.Errorf("analyze: internal error: constructed layout is invalid: %w", err)
	}
	return p, info, nil
}

// constructK places the K-1 boundaries of an exactly-K layout, walking the
// chunks left to right and aiming each boundary at the balanced-compute
// target while honoring the weight prefix/suffix, per-chunk capacity, and
// pair-rule constraints. It reports whether a layout was found.
func (a *Analysis) constructK(k int, bounds []int) bool {
	n := a.n
	if k == 1 {
		return true // probeK already checked the weights fit chip 0
	}
	// Backward greedy fill: minB[c] is the smallest gap boundary c can
	// occupy so every chunk to its right still fits its own chip. This is
	// per-chunk granularity — aggregate remaining capacity is not enough
	// (three trailing 16 MiB chips cannot absorb 17 MiB each).
	minB := make([]int, k-1)
	end := n - 1 // last position of the chunk being filled
	for c := k - 1; c >= 1; c-- {
		need := a.prefW[end+1] - a.pkg.ChipSRAM(c)
		s := 0
		if need > 0 {
			// Smallest s with prefW[s] >= need: chunk c covers s..end.
			s = sort.Search(end+1, func(s int) bool { return a.prefW[s] >= need })
			if s > end {
				return false // one position overflows the chip on its own
			}
		}
		minB[c-1] = s - 1
		end = s - 1
		if end < 0 && c > 1 {
			return false // no positions left for the chunks before c
		}
	}

	prev := -1 // gap of the previous boundary
	for c := 0; c < k-1; c++ {
		start := prev + 1 // first position of chunk c
		lo := 0
		if c > 0 {
			lo = int(a.next[prev])
		}
		if minB[c] > lo {
			lo = minB[c]
		}
		hi := n - 2
		// Chunk weight: positions start..g must fit chip c.
		wLimit := a.prefW[start] + a.pkg.ChipSRAM(c)
		if g := sort.Search(n-1, func(g int) bool { return a.prefW[g+1] > wLimit }) - 1; g < hi {
			hi = g
		}
		// Remaining boundary capacity: k-2-c more boundaries after this one.
		if rem := int32(k - 2 - c); rem > 0 {
			if g := sort.Search(n-1, func(g int) bool { return a.capFrom[a.next[g]] < rem }) - 1; g < hi {
				hi = g
			}
		}
		if lo > hi {
			return false
		}
		// Balanced-compute target: cumulative FLOPs proportional to the
		// cumulative peak rate of chips 0..c.
		target := a.totalFLOPs * a.peakPrefix[c+1] / a.peakPrefix[k]
		g := sort.Search(n-1, func(g int) bool { return a.prefF[g+1] >= target })
		if g > hi {
			g = hi
		}
		if g < lo {
			g = lo
		}
		if g > lo && target-a.prefF[g] < a.prefF[g+1]-target {
			g-- // the gap one left is closer to the target
		}
		bounds[c] = g
		prev = g
	}
	return true
}

// refineK runs one coordinate-descent sweep: each boundary in turn moves to
// the gap minimizing the max of its two adjacent chunks' exact costs, within
// the window its neighbors and the constraints allow. Moving a boundary only
// changes those two chunks' costs, so an accepted move never increases the
// layout's interval. Returns whether any boundary moved.
func (a *Analysis) refineK(k int, bounds []int) bool {
	if k < 2 {
		return false
	}
	n := a.n
	moved := false
	for i := 0; i < k-1; i++ {
		start := 0 // first position of chunk i
		lo := 0
		if i > 0 {
			start = bounds[i-1] + 1
			lo = int(a.next[bounds[i-1]])
		}
		end := n - 1 // last position of chunk i+1
		hi := n - 2
		if i < k-2 {
			end = bounds[i+1]
			// Pair rule against the right neighbor: next[g] <= bounds[i+1].
			hi = sort.Search(n-1, func(g int) bool { return int(a.next[g]) > end }) - 1
		}
		// Chunk i's weight on chip i, chunk i+1's weight on chip i+1.
		wLimit := a.prefW[start] + a.pkg.ChipSRAM(i)
		if g := sort.Search(n-1, func(g int) bool { return a.prefW[g+1] > wLimit }) - 1; g < hi {
			hi = g
		}
		if need := a.prefW[end+1] - a.pkg.ChipSRAM(i + 1); need > 0 {
			if g := sort.Search(n-1, func(g int) bool { return a.prefW[g+1] >= need }); g > lo {
				lo = g
			}
		}
		if lo > hi {
			continue
		}
		// Fixed incoming transfer of chunk i (from the boundary on its
		// left, which this sweep step does not move).
		tIn := 0.0
		if i > 0 {
			tIn = a.gapTransfer(i, bounds[i-1])
		}
		peakI := a.pkg.ChipFLOPs(i)
		peakI1 := a.pkg.ChipFLOPs(i + 1)
		best := bounds[i]
		bestCost := inf()
		for g := lo; g <= hi; g++ {
			busyI := (a.prefF[g+1]-a.prefF[start])/peakI + tIn
			busyI1 := (a.prefF[end+1]-a.prefF[g+1])/peakI1 + a.gapTransfer(i+1, g)
			cost := busyI
			if busyI1 > cost {
				cost = busyI1
			}
			if cost < bestCost {
				bestCost = cost
				best = g
			}
		}
		if best != bounds[i] {
			bounds[i] = best
			moved = true
		}
	}
	return moved
}

// gapTransfer is the total transfer time chip c pays for the cut at gap g
// (every crossing edge priced at the c-1 -> c hop count, matching
// costmodel.Latency edge by edge). Zero-byte edges are excluded from the
// per-edge latency count, as HopTransferTime prices them at zero.
func (a *Analysis) gapTransfer(c, g int) float64 {
	if a.hopsAdj[c] < 0 {
		return inf()
	}
	hops := float64(a.hopsAdj[c])
	return hops * (a.pkg.LinkLatency*float64(a.gapEdges[g]) + float64(a.gapBytes[g])/a.pkg.LinkBandwidth)
}

// latencyOf computes the exact analytical-model interval of the layout.
func (a *Analysis) latencyOf(k int, bounds []int) (float64, bool) {
	n := a.n
	var max float64
	for c := 0; c < k; c++ {
		start, end := 0, n-1
		if c > 0 {
			start = bounds[c-1] + 1
		}
		if c < k-1 {
			end = bounds[c]
		}
		busy := (a.prefF[end+1] - a.prefF[start]) / a.pkg.ChipFLOPs(c)
		if c > 0 {
			if a.hopsAdj[c] < 0 {
				return 0, false
			}
			busy += a.gapTransfer(c, bounds[c-1])
		}
		if busy > max {
			max = busy
		}
	}
	return max, true
}

// emit materializes the partition from ascending boundary gaps, exactly as
// cpsolver's Segmenter does.
func (a *Analysis) emit(bounds []int) partition.Partition {
	p := make(partition.Partition, a.n)
	chip, bi := 0, 0
	for pos, v := range a.order {
		p[v] = chip
		if bi < len(bounds) && bounds[bi] == pos {
			chip++
			bi++
		}
	}
	return p
}
