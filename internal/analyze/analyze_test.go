package analyze

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/randgraph"
)

// chain builds an n-node chain of MatMuls with the given per-node FLOPs and
// weight bytes.
func chain(t *testing.T, n int, flops float64, params int64) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	prev := -1
	for i := 0; i < n; i++ {
		id := g.AddNode(graph.Node{Name: "mm", Op: graph.OpMatMul, FLOPs: flops, ParamBytes: params, OutputBytes: 1024})
		if prev >= 0 {
			if err := g.AddEdge(prev, id, 1024); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChainDomainsAndKRange(t *testing.T) {
	pkg := mcm.Dev4() // 4 chips x 8 MiB
	// 8 nodes x 3 MiB: a chip holds at most 2 nodes, so at least 4 chips.
	g := chain(t, 8, 1e9, 3<<20)
	a, err := New(g, pkg)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate capacity would admit K=3 (24 MiB over 3 chips) but node
	// granularity does not (at most 2 nodes per chip); the greedy
	// chunk-fill propagation closes that integrality gap.
	kMin, kMax := a.KRange()
	if kMin != 4 || kMax != 4 {
		t.Fatalf("KRange = [%d,%d], want [4,4]", kMin, kMax)
	}
	if got := a.FeasibleK(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("FeasibleK = %v, want [4]", got)
	}
	// The forward greedy fill plus the suffix weights pin six of the eight
	// nodes outright; only the two nodes straddling an even boundary keep
	// two choices (K-independent analysis cannot anchor the right end).
	if fixed := a.FixedPlacements(); fixed != 6 {
		t.Fatalf("FixedPlacements = %d, want 6", fixed)
	}
	for v, want := range map[int]int{0: 0, 2: 1, 4: 2, 5: 2, 6: 3, 7: 3} {
		d := a.Domain(v)
		if !d.Singleton() || d.Min() != want {
			t.Fatalf("Domain(%d) = %v, want single chip %d", v, d, want)
		}
	}
}

func TestPlanChainForced(t *testing.T) {
	pkg := mcm.Dev4()
	g := chain(t, 8, 1e9, 3<<20)
	a, err := New(g, pkg)
	if err != nil {
		t.Fatal(err)
	}
	p, info, err := a.Plan(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Chips != 4 {
		t.Fatalf("plan uses %d chips, want 4", info.Chips)
	}
	if err := p.ValidateOn(g, pkg); err != nil {
		t.Fatalf("analytic plan invalid: %v", err)
	}
	for v := 0; v < 8; v++ {
		if p[v] != v/2 {
			t.Fatalf("p[%d] = %d, want %d (forced layout)", v, p[v], v/2)
		}
	}
	// The reported latency is the exact analytical-model interval.
	want := costmodel.New(pkg).Latency(g, p)
	if info.Latency != want {
		t.Fatalf("info.Latency = %g, costmodel.Latency = %g", info.Latency, want)
	}
	if info.LB.Total <= 0 || info.LB.Total > info.Latency {
		t.Fatalf("LB.Total = %g not in (0, %g]", info.LB.Total, info.Latency)
	}
}

func TestPlanMatchesCostmodelOnRandomGraphs(t *testing.T) {
	presets := []*mcm.Package{mcm.Dev4(), mcm.Dev8(), mcm.Het4()}
	model := map[*mcm.Package]*costmodel.Model{}
	for _, pkg := range presets {
		model[pkg] = costmodel.New(pkg)
	}
	planned := 0
	for i := 0; i < 24; i++ {
		g := randgraph.Sample(7, i)
		for _, pkg := range presets {
			a, err := New(g, pkg)
			if err != nil {
				t.Fatal(err)
			}
			p, info, err := a.Plan(Options{})
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			if err != nil {
				t.Fatalf("graph %d on %s: %v", i, pkg.Name, err)
			}
			planned++
			if err := p.ValidateOn(g, pkg); err != nil {
				t.Fatalf("graph %d on %s: invalid plan: %v", i, pkg.Name, err)
			}
			want := model[pkg].Latency(g, p)
			if diff := info.Latency - want; diff > 1e-12*want || diff < -1e-12*want {
				t.Fatalf("graph %d on %s: info.Latency = %g, costmodel = %g", i, pkg.Name, info.Latency, want)
			}
			if info.LB.Total > want*(1+1e-12) {
				t.Fatalf("graph %d on %s: LB %g exceeds own plan latency %g", i, pkg.Name, info.LB.Total, want)
			}
		}
	}
	if planned < 30 {
		t.Fatalf("only %d plans succeeded across the sweep, want >= 30", planned)
	}
}

// TestComputeBoundSoundOnSegmentations checks the ValidateOn-family half of
// the soundness contract directly: the Compute term never exceeds the
// analytical latency of any contiguous segmentation, memory-fitting or not.
func TestComputeBoundSoundOnSegmentations(t *testing.T) {
	pkg := mcm.Dev8()
	model := costmodel.New(pkg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		g := randgraph.Sample(11, i)
		a, err := New(g, pkg)
		if err != nil {
			t.Fatal(err)
		}
		lb := a.LowerBound()
		sg, err := cpsolver.NewSegmenter(g, pkg.Chips)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 40; s++ {
			p, err := sg.Sample(nil, rng)
			if err != nil {
				t.Fatal(err)
			}
			lat := model.Latency(g, p)
			if lb.Compute > lat*(1+1e-12) {
				t.Fatalf("graph %d sample %d: Compute bound %g > latency %g", i, s, lb.Compute, lat)
			}
		}
	}
}

func TestInfeasibleWeights(t *testing.T) {
	pkg := mcm.Dev4() // 32 MiB total
	g := chain(t, 8, 1e9, 8<<20) // 64 MiB of weights
	a, err := New(g, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.LowerBound().Infeasible {
		t.Fatal("LowerBound().Infeasible = false, want true")
	}
	if got := a.FeasibleK(); len(got) != 0 {
		t.Fatalf("FeasibleK = %v, want empty", got)
	}
	_, _, err = a.Plan(Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Plan error = %v, want ErrInfeasible", err)
	}
	if !errors.Is(err, cpsolver.ErrInfeasible) {
		t.Fatalf("Plan error %v should wrap cpsolver.ErrInfeasible", err)
	}
}

func TestSingleNodeTooLarge(t *testing.T) {
	pkg := mcm.Dev4()
	g := chain(t, 4, 1e9, 1<<20)
	// Make one node individually larger than any chip.
	g2 := graph.New("big-node")
	for _, nd := range g.Nodes() {
		n2 := nd
		if nd.ID == 2 {
			n2.ParamBytes = 16 << 20
		}
		g2.AddNode(graph.Node{Name: n2.Name, Op: n2.Op, FLOPs: n2.FLOPs, ParamBytes: n2.ParamBytes, OutputBytes: n2.OutputBytes})
	}
	for _, e := range g.Edges() {
		if err := g2.AddEdge(e.From, e.To, e.Bytes); err != nil {
			t.Fatal(err)
		}
	}
	a, err := New(g2, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Plan(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Plan error = %v, want ErrInfeasible", err)
	}
}

func TestPlanDeterminism(t *testing.T) {
	pkg := mcm.Het4()
	for i := 0; i < 6; i++ {
		g := randgraph.Sample(5, i)
		a1, err := New(g, pkg)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := New(g, pkg)
		if err != nil {
			t.Fatal(err)
		}
		p1, i1, err1 := a1.Plan(Options{})
		p2, i2, err2 := a2.Plan(Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("graph %d: divergent errors %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if i1 != i2 {
			t.Fatalf("graph %d: divergent PlanInfo %+v vs %+v", i, i1, i2)
		}
		for v := range p1 {
			if p1[v] != p2[v] {
				t.Fatalf("graph %d: divergent plans at node %d", i, v)
			}
		}
	}
}

// TestScale100k is the headline fast-path check: a 100k-node generated graph
// is analyzed and planned end to end on the 36-chip package in seconds,
// producing a ValidateOn-clean partition — no per-candidate simulation, no
// search loop.
func TestScale100k(t *testing.T) {
	pkg := mcm.Edge36()
	start := time.Now()
	g := randgraph.Generate(randgraph.Config{Family: randgraph.FamilyLayered, Nodes: 100_000, Seed: 42})
	genDur := time.Since(start)

	start = time.Now()
	a, err := New(g, pkg)
	if err != nil {
		t.Fatal(err)
	}
	p, info, err := a.Plan(Options{})
	if err != nil {
		t.Fatal(err)
	}
	planDur := time.Since(start)

	if err := p.ValidateOn(g, pkg); err != nil {
		t.Fatalf("100k-node analytic plan invalid: %v", err)
	}
	if info.Chips < 2 {
		t.Fatalf("100k-node plan uses %d chips; the scaled weight budget should force a real split", info.Chips)
	}
	if info.LB.Total <= 0 || info.Latency < info.LB.Total {
		t.Fatalf("latency %g vs LB %g inconsistent", info.Latency, info.LB.Total)
	}
	// Generous CI budget: the whole path is near-linear, and even slow
	// runners finish in a small fraction of this.
	if limit := 30 * time.Second; planDur > limit {
		t.Fatalf("analyze+plan took %v, want < %v", planDur, limit)
	}
	t.Logf("100k nodes: generate %v, analyze+plan %v, K=%d, latency %.3gs, LB %.3gs, fixed %d/%d",
		genDur, planDur, info.Chips, info.Latency, info.LB.Total, info.FixedPlacements, g.NumNodes())
}
