package analyze

import (
	"math"

	"mcmpart/internal/graph"
)

// CostParams parameterize the lower bound with an evaluation environment's
// cost semantics. The zero value is the analytical cost model's semantics
// (every FLOP at peak rate, no dispatch overhead); the conformance harness
// injects the hardware simulator's per-op efficiency table and dispatch
// overhead to get a bound that is sound against noise-free simulation —
// without analyze ever importing hwsim (the fast path stays simulation-free
// by construction).
type CostParams struct {
	// EffFor returns the fraction of peak FLOP rate an operator kind
	// sustains, 0 meaning the op costs only dispatch overhead. nil means
	// every op runs at peak (the analytical model). Values above 1 are
	// clamped to 1 — a bound must never assume faster-than-peak compute.
	EffFor func(op graph.OpKind) float64
	// OpOverhead is the fixed per-op dispatch time in seconds (0 for the
	// analytical model).
	OpOverhead float64
}

// Bounds is a sound per-interval (pipeline latency) lower bound, split into
// the terms it is the max of. Soundness contract, proven by the
// conformance bound-soundness oracle over the random-graph sweep:
//
//   - Compute <= the environment's interval for EVERY partition the static
//     constraints admit (ValidateOn-clean), regardless of memory.
//   - Total = max(Compute, Transfer) <= the interval of every partition
//     that additionally respects per-chip weight capacity — which includes
//     every partition the hardware simulator accepts. The Transfer term is
//     the cheapest single cut edge, charged only when total weights
//     provably fit no single chip (so some edge of a weakly connected
//     graph must be cut).
//
// Bounds say nothing about partitions outside those families; in
// particular, the analytical cost model prices memory-overflowing
// partitions too, and only Compute applies to them.
type Bounds struct {
	// Compute is the work-conservation term: total (efficiency-discounted)
	// FLOPs spread over the aggregate peak rate, no slower than the
	// heaviest single node on the fastest chip.
	Compute float64
	// Transfer is the forced-communication term (0 when a single chip
	// could hold every weight, or the graph is not weakly connected).
	Transfer float64
	// Total is max(Compute, Transfer), the headline bound.
	Total float64
	// Infeasible reports that no chip prefix can hold the graph's total
	// weights at all — every plan attempt will return ErrInfeasible.
	Infeasible bool
}

// LowerBound returns the analytic lower bound under the analytical cost
// model's semantics (CostParams zero value).
func (a *Analysis) LowerBound() Bounds { return a.LowerBoundWith(CostParams{}) }

// LowerBoundWith returns the analytic lower bound under the given cost
// semantics. See Bounds for the soundness contract; the derivation:
//
//   - Sum term: sum_c peak_c * busy_c >= sum_v flops_v/eff_v + n*oh*minPeak
//     (each node's time on chip c is >= oh + flops/(peak_c*eff)), so the
//     max busy is >= that sum divided by the aggregate peak rate.
//   - Node term: the chip hosting node v is busy >= oh + flops_v/(eff_v *
//     maxPeak); data-movement ops (eff 0) still pay oh.
//   - Transfer term: when weights force a second chip and the graph is
//     weakly connected, some edge is cut; any cut edge costs at least one
//     hop of latency-plus-serialization on the resource that carries it
//     (the receiving chip in the cost model, a route link in the
//     simulator).
func (a *Analysis) LowerBoundWith(cp CostParams) Bounds {
	var b Bounds
	sumPeak := a.peakPrefix[a.chips]
	maxPeak := a.pkg.MaxChipFLOPs()
	minPeak := maxPeak
	for c := 0; c < a.chips; c++ {
		if f := a.pkg.ChipFLOPs(c); f < minPeak {
			minPeak = f
		}
	}

	effTotal, effMaxNode := 0.0, 0.0
	if cp.EffFor == nil {
		effTotal, effMaxNode = a.totalFLOPs, a.maxNodeFLOPs
	} else {
		for _, nd := range a.g.Nodes() {
			eff := cp.EffFor(nd.Op)
			if eff <= 0 || nd.FLOPs <= 0 {
				continue
			}
			if eff > 1 {
				eff = 1
			}
			scaled := nd.FLOPs / eff
			effTotal += scaled
			if scaled > effMaxNode {
				effMaxNode = scaled
			}
		}
	}
	oh := cp.OpOverhead
	sumTerm := (effTotal + float64(a.n)*oh*minPeak) / sumPeak
	nodeTerm := oh + effMaxNode/maxPeak
	b.Compute = math.Max(sumTerm, nodeTerm)

	maxSRAM := a.pkg.ChipSRAM(0)
	for c := 1; c < a.chips; c++ {
		if s := a.pkg.ChipSRAM(c); s > maxSRAM {
			maxSRAM = s
		}
	}
	if a.totalParams > maxSRAM && a.connected && a.g.NumEdges() > 0 {
		b.Transfer = a.minEdgePrice
	}
	b.Total = math.Max(b.Compute, b.Transfer)
	b.Infeasible = a.totalParams > a.capPrefix[a.chips] || a.kMax < a.kMin
	return b
}

func inf() float64 { return math.Inf(1) }
