package graph

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// Fingerprint returns a SHA-256 content hash of the graph's structure and
// costs over a topologically canonicalized encoding. Two graphs that differ
// only in node-insertion order (and therefore in node IDs) fingerprint
// identically; any change to an operator kind, a cost field (FLOPs,
// ParamBytes, OutputBytes), an edge, or an edge's byte count changes the
// fingerprint. Node names and the graph name are presentation metadata and
// do not participate.
//
// The fingerprint is the graph half of the plan-cache key (see the root
// package's Service): a cache that keyed on raw node IDs would treat the
// same model built in a different traversal order as a different model and
// re-plan it from scratch.
//
// Canonicalization: every node gets a structural signature combining a hash
// of its full ancestor structure (computed forward in topological order) and
// of its full descendant structure (computed backward), each folding in the
// node's operator and cost fields plus the byte sizes of the incident edges.
// Signature ranks are then refined against neighbor ranks to a fixpoint;
// whenever a group of nodes remains tied, the group is individualized and
// refinement re-run, so a tie-break choice propagates consistently to the
// tied nodes' neighborhoods (two parallel identical chains stay aligned as
// chains instead of being interleaved by insertion order). Nodes still tied
// after refinement are indistinguishable by their entire ancestor and
// descendant structure, and the individualization order among them cannot
// change the encoding for any graph whose ties are true automorphisms —
// which covers the replicated-branch patterns real models exhibit.
func (g *Graph) Fingerprint() string {
	if c := g.fp.Load(); c != nil && c.nodes == len(g.nodes) && c.edges == len(g.edges) {
		return c.val
	}
	val := g.fingerprint()
	g.fp.Store(&fpCache{nodes: len(g.nodes), edges: len(g.edges), val: val})
	return val
}

// fpCache memoizes the last fingerprint. AddNode/AddEdge invalidate it
// implicitly through the node/edge counts; mutating node or edge fields in
// place is already forbidden by the Nodes/Edges contract.
type fpCache struct {
	nodes, edges int
	val          string
}

func (g *Graph) fingerprint() string {
	n := len(g.nodes)
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	if n == 0 {
		writeU64(0)
		return hex.EncodeToString(h.Sum(nil))
	}

	order, err := g.TopoOrder()
	if err != nil {
		// Cyclic graphs never reach planning (Validate rejects them), but
		// Fingerprint must still be total and content-determined: hash the
		// raw ID-ordered encoding instead.
		return g.rawFingerprint()
	}

	attr := make([][]byte, n)
	for v := 0; v < n; v++ {
		attr[v] = attrDigest(&g.nodes[v])
	}
	up := neighborDigests(g, order, attr, false)
	down := neighborDigests(g, reversed(order), attr, true)

	sig := make([][]byte, n)
	for v := 0; v < n; v++ {
		d := sha256.Sum256(append(append([]byte(nil), up[v]...), down[v]...))
		sig[v] = d[:]
	}

	pos := canonicalPositions(g, sig)
	perm := make([]int, n)
	for v, p := range pos {
		perm[p] = v
	}

	writeU64(uint64(n))
	for _, v := range perm {
		h.Write(attr[v])
	}
	writeU64(uint64(len(g.edges)))
	edges := make([][3]uint64, len(g.edges))
	for i, e := range g.edges {
		edges[i] = [3]uint64{uint64(pos[e.From]), uint64(pos[e.To]), uint64(e.Bytes)}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		if edges[a][1] != edges[b][1] {
			return edges[a][1] < edges[b][1]
		}
		return edges[a][2] < edges[b][2]
	})
	for _, e := range edges {
		writeU64(e[0])
		writeU64(e[1])
		writeU64(e[2])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalPositions turns structural signatures into a total canonical
// order by refinement with individualization. Ranks start as the dense rank
// of each node's signature; each refinement round re-ranks nodes by
// (rank, hash of the rank-labeled in/out neighborhoods) until no round
// splits further. If ties remain, every node of the lowest tied rank is
// individualized (given its own rank, in descending-ID order) and refinement
// re-runs, so the choice propagates structurally to everything that
// distinguishes itself relative to the peeled class. Each peel strictly
// increases the number of distinct ranks by the class size, so the loop
// terminates in at most n rounds and runs one round per surviving tie class
// rather than one per tied node — keeping replicated-branch graphs (the
// adversarial case for refinement) near-linear instead of quadratic.
func canonicalPositions(g *Graph, sig [][]byte) []int {
	n := len(g.nodes)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		if c := bytes.Compare(sig[perm[a]], sig[perm[b]]); c != 0 {
			return c < 0
		}
		return perm[a] < perm[b] // stable total order; ties resolved below
	})
	rank := make([]int, n)
	r := 0
	for i, v := range perm {
		if i > 0 && !bytes.Equal(sig[v], sig[perm[i-1]]) {
			r++
		}
		rank[v] = r
	}

	distinct := r + 1
	for distinct < n {
		for {
			refined, d := refineRanks(g, rank)
			if d == distinct {
				break
			}
			rank, distinct = refined, d
		}
		if distinct == n {
			break
		}
		// Individualize the whole lowest tied class at once. Members of a
		// tie class at a refinement fixpoint are indistinguishable by full
		// ancestor/descendant structure, so for automorphic ties any
		// individualization order yields the same canonical encoding — which
		// is why the class can be peeled in one step instead of one member
		// per outer round (the former Θ(k) rounds for a k-member class made
		// graphs with many replicated branches quadratic; see
		// BenchmarkFingerprintAdversarial). Members get distinct consecutive
		// ranks in descending node-ID order, exactly the order the
		// one-member-per-round peeling used to converge to, so fingerprints
		// are unchanged.
		lowest := -1
		counts := make([]int, distinct)
		for _, rk := range rank {
			counts[rk]++
		}
		for rk := 0; rk < distinct; rk++ {
			if counts[rk] > 1 {
				lowest = rk
				break
			}
		}
		m := counts[lowest]
		for v := 0; v < n; v++ {
			rank[v] *= m // keep room for the individualized slots
		}
		slot := m - 1 // descending IDs get ascending slots
		for v := 0; v < n; v++ {
			if rank[v] == lowest*m {
				rank[v] += slot
				slot--
			}
		}
		rank, distinct = densify(rank)
	}

	pos := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = rank[v]
	}
	return pos
}

// refineRanks performs one refinement round: nodes are re-ranked by their
// current rank plus a hash of the rank-labeled incident edges on both
// sides. The previous rank leads the sort key, so refinement only ever
// splits classes. Returns the new ranks and the distinct-rank count.
//
// The per-round keys use cheap 64-bit mixing rather than a cryptographic
// hash: a key collision can only merge two distinguishable nodes into one
// tie class, which at worst perturbs the canonical *order* and costs a
// spurious cache miss (~2^-64 per node pair) — never a false cache hit,
// because the final fingerprint hashes the actual relabeled attributes and
// edges with SHA-256.
func refineRanks(g *Graph, rank []int) ([]int, int) {
	n := len(g.nodes)
	keys := make([]uint64, n)
	var scratch []uint64
	for v := 0; v < n; v++ {
		scratch = scratch[:0]
		for _, ei := range g.inEdges[v] {
			e := g.edges[ei]
			scratch = append(scratch, mix3(uint64(rank[e.From]), uint64(e.Bytes), 'i'))
		}
		for _, ei := range g.outEdges[v] {
			e := g.edges[ei]
			scratch = append(scratch, mix3(uint64(rank[e.To]), uint64(e.Bytes), 'o'))
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
		k := mix64(uint64(rank[v]) ^ 0x6d63b0a5f1e2d3c4)
		for _, item := range scratch {
			k = mix64(k ^ item)
		}
		keys[v] = k
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		if rank[perm[a]] != rank[perm[b]] {
			return rank[perm[a]] < rank[perm[b]]
		}
		if keys[perm[a]] != keys[perm[b]] {
			return keys[perm[a]] < keys[perm[b]]
		}
		return perm[a] < perm[b]
	})
	out := make([]int, n)
	r := 0
	for i, v := range perm {
		if i > 0 {
			prev := perm[i-1]
			if rank[v] != rank[prev] || keys[v] != keys[prev] {
				r++
			}
		}
		out[v] = r
	}
	return out, r + 1
}

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// mix3 folds three values into one 64-bit key.
func mix3(a, b, c uint64) uint64 {
	return mix64(mix64(a^0x9e3779b97f4a7c15) ^ mix64(b^0xd1b54a32d192ed03) ^ mix64(c^0x8cb92ba72f3d8dd7))
}

// densify renumbers arbitrary integer ranks to dense 0..k-1 preserving
// order, returning the dense ranks and k.
func densify(rank []int) ([]int, int) {
	seen := make(map[int]struct{}, len(rank))
	for _, r := range rank {
		seen[r] = struct{}{}
	}
	values := make([]int, 0, len(seen))
	for r := range seen {
		values = append(values, r)
	}
	sort.Ints(values)
	remap := make(map[int]int, len(values))
	for i, r := range values {
		remap[r] = i
	}
	out := make([]int, len(rank))
	for i, r := range rank {
		out[i] = remap[r]
	}
	return out, len(values)
}

// attrDigest hashes the ID- and name-independent fields of one node.
func attrDigest(nd *Node) []byte {
	var b [32]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(nd.Op))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(nd.FLOPs))
	binary.LittleEndian.PutUint64(b[16:], uint64(nd.ParamBytes))
	binary.LittleEndian.PutUint64(b[24:], uint64(nd.OutputBytes))
	d := sha256.Sum256(b[:])
	return d[:]
}

// neighborDigests folds, for every node in the given dependency order, the
// node's attribute digest with the sorted multiset of (edge bytes, digest of
// the already-processed neighbor). With the forward topological order and
// predecessor edges it digests the full ancestor structure; with the
// reversed order and successor edges, the full descendant structure.
func neighborDigests(g *Graph, order []int, attr [][]byte, successors bool) [][]byte {
	out := make([][]byte, len(g.nodes))
	var scratch [][]byte
	for _, v := range order {
		var incident []int32
		if successors {
			incident = g.outEdges[v]
		} else {
			incident = g.inEdges[v]
		}
		scratch = scratch[:0]
		for _, ei := range incident {
			e := g.edges[ei]
			nb := e.From
			if successors {
				nb = e.To
			}
			item := make([]byte, 8+sha256.Size)
			binary.LittleEndian.PutUint64(item, uint64(e.Bytes))
			copy(item[8:], out[nb])
			scratch = append(scratch, item)
		}
		sort.Slice(scratch, func(a, b int) bool { return bytes.Compare(scratch[a], scratch[b]) < 0 })
		h := sha256.New()
		h.Write(attr[v])
		for _, item := range scratch {
			h.Write(item)
		}
		out[v] = h.Sum(nil)
	}
	return out
}

func reversed(order []int) []int {
	out := make([]int, len(order))
	for i, v := range order {
		out[len(order)-1-i] = v
	}
	return out
}

// rawFingerprint hashes nodes and edges in ID order, without
// canonicalization. It is the fallback for graphs TopoOrder rejects.
func (g *Graph) rawFingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(len(g.nodes)))
	for i := range g.nodes {
		h.Write(attrDigest(&g.nodes[i]))
	}
	writeU64(uint64(len(g.edges)))
	for _, e := range g.edges {
		writeU64(uint64(e.From))
		writeU64(uint64(e.To))
		writeU64(uint64(e.Bytes))
	}
	return hex.EncodeToString(h.Sum(nil))
}
