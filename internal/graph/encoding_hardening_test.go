package graph

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestUnmarshalRejectsStructuralDefects is the regression suite for the
// UnmarshalJSON trust boundary, pinned after fuzzing the decoder: every
// malformed wire graph must come back as a descriptive error (never a panic,
// never a silently-accepted graph).
func TestUnmarshalRejectsStructuralDefects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the expected error
	}{
		{
			name: "negative edge bytes",
			json: `{"name":"g","nodes":[{"id":0,"op":4},{"id":1,"op":4}],"edges":[{"from":0,"to":1,"bytes":-5}]}`,
			want: "negative size",
		},
		{
			name: "dangling edge endpoint",
			json: `{"name":"g","nodes":[{"id":0,"op":4}],"edges":[{"from":0,"to":7,"bytes":1}]}`,
			want: "unknown node",
		},
		{
			name: "negative edge endpoint",
			json: `{"name":"g","nodes":[{"id":0,"op":4}],"edges":[{"from":-1,"to":0,"bytes":1}]}`,
			want: "unknown node",
		},
		{
			name: "self loop",
			json: `{"name":"g","nodes":[{"id":0,"op":4}],"edges":[{"from":0,"to":0,"bytes":1}]}`,
			want: "self-loop",
		},
		{
			name: "duplicate edge",
			json: `{"name":"g","nodes":[{"id":0,"op":4},{"id":1,"op":4}],"edges":[{"from":0,"to":1,"bytes":1},{"from":0,"to":1,"bytes":2}]}`,
			want: "duplicate edge",
		},
		{
			name: "node ID mismatch",
			json: `{"name":"g","nodes":[{"id":3,"op":4}]}`,
			want: "serialized with ID",
		},
		{
			name: "cycle",
			json: `{"name":"g","nodes":[{"id":0,"op":4},{"id":1,"op":4}],"edges":[{"from":0,"to":1,"bytes":1},{"from":1,"to":0,"bytes":1}]}`,
			want: "cycle",
		},
		{
			name: "unknown op kind",
			json: `{"name":"g","nodes":[{"id":0,"op":99}]}`,
			want: "unknown op kind",
		},
		{
			name: "non-finite FLOPs literal",
			json: `{"name":"g","nodes":[{"id":0,"op":4,"flops":1e999}]}`,
			want: "", // any error: encoding/json rejects the overflow itself
		},
		{
			name: "negative FLOPs",
			json: `{"name":"g","nodes":[{"id":0,"op":4,"flops":-1}]}`,
			want: "invalid FLOPs",
		},
		{
			name: "negative param bytes",
			json: `{"name":"g","nodes":[{"id":0,"op":4,"param_bytes":-1}]}`,
			want: "negative ParamBytes",
		},
		{
			name: "negative output bytes",
			json: `{"name":"g","nodes":[{"id":0,"op":4,"output_bytes":-1}]}`,
			want: "negative OutputBytes",
		},
		{
			name: "no nodes",
			json: `{"name":"g","nodes":[],"edges":[]}`,
			want: "no nodes",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Graph
			err := json.Unmarshal([]byte(tc.json), &g)
			if err == nil {
				t.Fatalf("decoded without error: %s", tc.json)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateRejectsNonFiniteFLOPs covers the non-finite path JSON cannot
// reach (encoding/json has no NaN/Inf literals): programmatically built
// graphs must still be rejected by Validate with a descriptive error.
func TestValidateRejectsNonFiniteFLOPs(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		g := New("bad")
		g.AddNode(Node{Op: OpMatMul, FLOPs: bad})
		err := g.Validate()
		if err == nil {
			t.Fatalf("FLOPs %v validated", bad)
		}
		if !strings.Contains(err.Error(), "invalid FLOPs") {
			t.Fatalf("error %q does not name the invalid FLOPs", err)
		}
	}
}

// TestUnmarshalAcceptsEveryKnownOpKind guards the op-kind boundary check
// against drifting out of sync with the op table.
func TestUnmarshalAcceptsEveryKnownOpKind(t *testing.T) {
	for k := 0; k < NumOpKinds; k++ {
		var g Graph
		payload := []byte(`{"name":"g","nodes":[{"id":0,"op":` + strconv.Itoa(k) + `}]}`)
		if err := json.Unmarshal(payload, &g); err != nil {
			t.Fatalf("op kind %d (%s) rejected: %v", k, OpKind(k), err)
		}
	}
}
