package graph

import (
	"testing"
)

// fpDiamond builds a 4-node diamond (a -> b,c -> d) with distinguishable
// costs, inserting nodes in the order perm lists the roles
// {0:a, 1:b, 2:c, 3:d}. Every insertion order produces an isomorphic graph
// with different node IDs.
func fpDiamond(t *testing.T, perm [4]int) *Graph {
	t.Helper()
	roles := [4]Node{
		{Name: "a", Op: 1, FLOPs: 100, ParamBytes: 10, OutputBytes: 1000},
		{Name: "b", Op: 2, FLOPs: 200, ParamBytes: 20, OutputBytes: 2000},
		{Name: "c", Op: 3, FLOPs: 300, ParamBytes: 30, OutputBytes: 3000},
		{Name: "d", Op: 4, FLOPs: 400, ParamBytes: 40, OutputBytes: 4000},
	}
	g := New("diamond")
	id := map[int]int{} // role -> assigned ID
	for _, role := range perm {
		id[role] = g.AddNode(roles[role])
	}
	edges := [][3]int64{{0, 1, 11}, {0, 2, 22}, {1, 3, 33}, {2, 3, 44}}
	for _, e := range edges {
		if err := g.AddEdge(id[int(e[0])], id[int(e[1])], e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestFingerprintInsertionOrderInvariant(t *testing.T) {
	want := fpDiamond(t, [4]int{0, 1, 2, 3}).Fingerprint()
	if len(want) != 64 {
		t.Fatalf("fingerprint is %d hex chars, want 64", len(want))
	}
	for _, perm := range [][4]int{
		{3, 2, 1, 0}, {1, 0, 3, 2}, {2, 3, 0, 1}, {0, 2, 1, 3},
	} {
		if got := fpDiamond(t, perm).Fingerprint(); got != want {
			t.Errorf("insertion order %v changed fingerprint: %s != %s", perm, got, want)
		}
	}
}

func TestFingerprintInsertionOrderInvariantChain(t *testing.T) {
	// A chain of identical layers: every node has the same attributes, so
	// only ancestor/descendant structure distinguishes positions.
	build := func(forward bool) *Graph {
		g := New("chain")
		const n = 9
		ids := make([]int, n)
		for i := 0; i < n; i++ {
			ids[i] = g.AddNode(Node{Name: "fc", Op: 4, FLOPs: 1e6, ParamBytes: 1 << 12, OutputBytes: 1 << 10})
		}
		if !forward {
			for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
		for i := 0; i+1 < n; i++ {
			g.MustAddEdge(ids[i], ids[i+1], 1<<10)
		}
		return g
	}
	if a, b := build(true).Fingerprint(), build(false).Fingerprint(); a != b {
		t.Fatalf("chain fingerprint depends on insertion direction: %s != %s", a, b)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpDiamond(t, [4]int{0, 1, 2, 3}).Fingerprint()
	mutate := func(name string, f func(*Graph) *Graph) {
		g := f(fpDiamond(t, [4]int{0, 1, 2, 3}))
		if got := g.Fingerprint(); got == base {
			t.Errorf("%s did not change the fingerprint", name)
		}
	}
	mutate("op change", func(g *Graph) *Graph {
		g.nodes[1].Op = 7
		return g
	})
	mutate("flops change", func(g *Graph) *Graph {
		g.nodes[2].FLOPs = 301
		return g
	})
	mutate("param-bytes change", func(g *Graph) *Graph {
		g.nodes[0].ParamBytes = 11
		return g
	})
	mutate("output-bytes change", func(g *Graph) *Graph {
		g.nodes[3].OutputBytes = 4001
		return g
	})
	mutate("edge-bytes change", func(g *Graph) *Graph {
		g.edges[0].Bytes = 12
		return g
	})
	mutate("extra node", func(g *Graph) *Graph {
		id := g.AddNode(Node{Name: "e", Op: 5, FLOPs: 500, OutputBytes: 5000})
		g.MustAddEdge(3, id, 55)
		return g
	})
	mutate("extra edge", func(g *Graph) *Graph {
		g.MustAddEdge(0, 3, 66)
		return g
	})
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := fpDiamond(t, [4]int{0, 1, 2, 3})
	b := fpDiamond(t, [4]int{0, 1, 2, 3})
	b.SetName("renamed")
	for i := range b.nodes {
		b.nodes[i].Name = "x"
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("names must not participate in the fingerprint")
	}
}

func TestFingerprintEmptyAndCyclic(t *testing.T) {
	if New("empty").Fingerprint() == "" {
		t.Fatal("empty graph must still fingerprint")
	}
	g := New("cycle")
	a := g.AddNode(Node{Op: 1})
	b := g.AddNode(Node{Op: 2})
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, a, 1)
	if g.Fingerprint() == "" || g.Fingerprint() != g.Fingerprint() {
		t.Fatal("cyclic graph must fingerprint deterministically")
	}
}

func TestFingerprintParallelIdenticalChains(t *testing.T) {
	// Two identical parallel chains s -> a_i -> m_i -> t: the a-nodes tie
	// on signature and the m-nodes tie on signature, across two levels. A
	// naive per-class ID tie-break can pair a1 with m2, interleaving the
	// chains differently per insertion order; individualized refinement
	// must keep each chain aligned. (Regression for exactly that bug.)
	build := func(order []int) *Graph {
		g := New("chains")
		ids := make(map[int]int)
		nodes := []Node{
			{Op: 1, FLOPs: 1, OutputBytes: 10}, // 0: s
			{Op: 2, FLOPs: 2, OutputBytes: 20}, // 1: a1
			{Op: 2, FLOPs: 2, OutputBytes: 20}, // 2: a2
			{Op: 5, FLOPs: 7, OutputBytes: 70}, // 3: m1
			{Op: 5, FLOPs: 7, OutputBytes: 70}, // 4: m2
			{Op: 3, FLOPs: 3, OutputBytes: 30}, // 5: t
		}
		for _, r := range order {
			ids[r] = g.AddNode(nodes[r])
		}
		g.MustAddEdge(ids[0], ids[1], 5)
		g.MustAddEdge(ids[0], ids[2], 5)
		g.MustAddEdge(ids[1], ids[3], 6)
		g.MustAddEdge(ids[2], ids[4], 6)
		g.MustAddEdge(ids[3], ids[5], 8)
		g.MustAddEdge(ids[4], ids[5], 8)
		return g
	}
	want := build([]int{0, 1, 2, 3, 4, 5}).Fingerprint()
	for _, order := range [][]int{
		{0, 1, 2, 4, 3, 5}, // swap only the m-level: a1 pairs with higher m ID
		{5, 4, 3, 2, 1, 0},
		{0, 2, 1, 3, 4, 5},
		{3, 0, 4, 1, 5, 2},
	} {
		if got := build(order).Fingerprint(); got != want {
			t.Errorf("insertion order %v changed fingerprint: %s != %s", order, got, want)
		}
	}
}

func TestFingerprintSymmetricTwinsStable(t *testing.T) {
	// Two structurally identical parallel branches: the twins tie on
	// signature, and the tie-break must not leak into the encoding.
	build := func(order []int) *Graph {
		g := New("twins")
		ids := make(map[int]int)
		nodes := []Node{
			{Op: 1, FLOPs: 1, OutputBytes: 10},
			{Op: 2, FLOPs: 2, OutputBytes: 20}, // twin 1
			{Op: 2, FLOPs: 2, OutputBytes: 20}, // twin 2
			{Op: 3, FLOPs: 3, OutputBytes: 30},
		}
		for _, r := range order {
			ids[r] = g.AddNode(nodes[r])
		}
		g.MustAddEdge(ids[0], ids[1], 5)
		g.MustAddEdge(ids[0], ids[2], 5)
		g.MustAddEdge(ids[1], ids[3], 6)
		g.MustAddEdge(ids[2], ids[3], 6)
		return g
	}
	a := build([]int{0, 1, 2, 3}).Fingerprint()
	b := build([]int{3, 2, 1, 0}).Fingerprint()
	if a != b {
		t.Fatalf("symmetric twins made the fingerprint order-dependent: %s != %s", a, b)
	}
}
