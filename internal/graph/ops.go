package graph

import "fmt"

// OpKind identifies the kind of tensor operation a node performs.
//
// The partitioner itself is agnostic to operator semantics; the kind is used
// by the workload generators to assign realistic compute/memory costs, by the
// hardware simulator to pick per-kind efficiency factors, and by the feature
// network as a categorical node feature (one-hot encoded).
type OpKind uint8

// Operator kinds found in the synthetic model corpus. The set covers the
// CNN / RNN / MLP families the paper pre-trains on plus the transformer
// operators needed for BERT.
const (
	OpInput OpKind = iota
	OpConst
	OpConv
	OpDepthwiseConv
	OpMatMul
	OpPool
	OpActivation
	OpElementwise
	OpNorm
	OpSoftmax
	OpEmbedding
	OpReshape
	OpConcat
	OpSplit
	OpReduce
	OpOutput

	// NumOpKinds is the number of distinct operator kinds; it sizes the
	// one-hot operator feature used by the GraphSAGE encoder.
	NumOpKinds = int(OpOutput) + 1
)

var opKindNames = [...]string{
	OpInput:         "input",
	OpConst:         "const",
	OpConv:          "conv",
	OpDepthwiseConv: "depthwise_conv",
	OpMatMul:        "matmul",
	OpPool:          "pool",
	OpActivation:    "activation",
	OpElementwise:   "elementwise",
	OpNorm:          "norm",
	OpSoftmax:       "softmax",
	OpEmbedding:     "embedding",
	OpReshape:       "reshape",
	OpConcat:        "concat",
	OpSplit:         "split",
	OpReduce:        "reduce",
	OpOutput:        "output",
}

// String returns the lower-case operator name, e.g. "conv".
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// ParseOpKind converts an operator name produced by OpKind.String back into
// an OpKind. It reports an error for unknown names.
func ParseOpKind(s string) (OpKind, error) {
	for k, name := range opKindNames {
		if name == s {
			return OpKind(k), nil
		}
	}
	return 0, fmt.Errorf("graph: unknown op kind %q", s)
}
