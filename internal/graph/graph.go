// Package graph provides the computation-graph substrate of the partitioner:
// a directed acyclic graph of tensor operations annotated with compute and
// memory costs.
//
// A Graph corresponds to G = (V, E) in the paper's problem formulation
// (Sec. 3): V is the set of operations and E the set of data dependencies.
// Every edge carries the number of bytes transferred from producer to
// consumer, which the cost models turn into inter-chip communication time
// when the edge is cut by a partition.
//
//mcmlint:deterministic
package graph

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Node is a single tensor operation.
type Node struct {
	// ID is the node's index in the graph; Graph.AddNode assigns IDs
	// densely starting from zero.
	ID int `json:"id"`
	// Name is a human-readable label, e.g. "layer3/conv2".
	Name string `json:"name"`
	// Op is the operator kind.
	Op OpKind `json:"op"`
	// FLOPs is the amount of compute the operation performs (floating
	// point operations, or any consistent work unit).
	FLOPs float64 `json:"flops"`
	// ParamBytes is the size of the operation's resident weights. Weights
	// stay pinned in the SRAM of whichever chip the node is placed on.
	ParamBytes int64 `json:"param_bytes"`
	// OutputBytes is the size of the operation's output activation.
	OutputBytes int64 `json:"output_bytes"`
}

// Edge is a data dependency between two operations.
type Edge struct {
	// From and To are node IDs; data flows From -> To.
	From int `json:"from"`
	To   int `json:"to"`
	// Bytes is the size of the tensor transferred along the edge. It is
	// usually the producer's OutputBytes but can be smaller when the
	// consumer reads a slice of the output.
	Bytes int64 `json:"bytes"`
}

// Graph is a directed acyclic computation graph. The zero value is unusable;
// construct graphs with New.
type Graph struct {
	name  string
	nodes []Node
	edges []Edge
	// outEdges[v] and inEdges[v] hold indices into edges.
	outEdges [][]int32
	inEdges  [][]int32
	edgeSet  map[[2]int]int32 // (from,to) -> edge index, rejects duplicates
	// fp memoizes Fingerprint; see fpCache.
	fp atomic.Pointer[fpCache]
	// csr memoizes the packed adjacency view; see Graph.CSR.
	csr atomic.Pointer[csrCache]
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{name: name, edgeSet: make(map[[2]int]int32)}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName renames the graph.
func (g *Graph) SetName(name string) { g.name = name }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node and returns its ID. The caller supplies every field
// except ID, which AddNode assigns.
func (g *Graph) AddNode(n Node) int {
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	g.outEdges = append(g.outEdges, nil)
	g.inEdges = append(g.inEdges, nil)
	return n.ID
}

// Node returns the node with the given ID. It panics if id is out of range.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Nodes returns the node slice. The caller must not mutate it.
func (g *Graph) Nodes() []Node { return g.nodes }

// Edge returns the edge with the given index. It panics if i is out of range.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns the edge slice. The caller must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// ErrDuplicateEdge is returned by AddEdge when an edge between the same pair
// of nodes already exists.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// AddEdge adds a data dependency carrying the given number of bytes.
// It rejects self-loops, unknown endpoints and duplicate edges. AddEdge does
// not check acyclicity; use Validate once construction is complete.
func (g *Graph) AddEdge(from, to int, bytes int64) error {
	if from < 0 || from >= len(g.nodes) || to < 0 || to >= len(g.nodes) {
		return fmt.Errorf("graph: edge (%d,%d) references unknown node (|V|=%d)", from, to, len(g.nodes))
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on node %d", from)
	}
	if bytes < 0 {
		return fmt.Errorf("graph: edge (%d,%d) has negative size %d", from, to, bytes)
	}
	key := [2]int{from, to}
	if _, ok := g.edgeSet[key]; ok {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, from, to)
	}
	idx := int32(len(g.edges))
	g.edges = append(g.edges, Edge{From: from, To: to, Bytes: bytes})
	g.edgeSet[key] = idx
	g.outEdges[from] = append(g.outEdges[from], idx)
	g.inEdges[to] = append(g.inEdges[to], idx)
	return nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for the
// programmatic generators in internal/workload, where an edge error is a bug.
func (g *Graph) MustAddEdge(from, to int, bytes int64) {
	if err := g.AddEdge(from, to, bytes); err != nil {
		panic(err)
	}
}

// HasEdge reports whether an edge from -> to exists.
func (g *Graph) HasEdge(from, to int) bool {
	_, ok := g.edgeSet[[2]int{from, to}]
	return ok
}

// OutEdges returns the indices (into Edges) of edges leaving node v.
func (g *Graph) OutEdges(v int) []int32 { return g.outEdges[v] }

// InEdges returns the indices (into Edges) of edges entering node v.
func (g *Graph) InEdges(v int) []int32 { return g.inEdges[v] }

// Successors returns the IDs of nodes directly depending on v.
func (g *Graph) Successors(v int) []int {
	out := make([]int, len(g.outEdges[v]))
	for i, e := range g.outEdges[v] {
		out[i] = g.edges[e].To
	}
	return out
}

// Predecessors returns the IDs of nodes v directly depends on.
func (g *Graph) Predecessors(v int) []int {
	in := make([]int, len(g.inEdges[v]))
	for i, e := range g.inEdges[v] {
		in[i] = g.edges[e].From
	}
	return in
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v int) int { return len(g.inEdges[v]) }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v int) int { return len(g.outEdges[v]) }

// TotalFLOPs returns the sum of node compute costs.
func (g *Graph) TotalFLOPs() float64 {
	var sum float64
	for i := range g.nodes {
		sum += g.nodes[i].FLOPs
	}
	return sum
}

// TotalParamBytes returns the sum of node weight sizes.
func (g *Graph) TotalParamBytes() int64 {
	var sum int64
	for i := range g.nodes {
		sum += g.nodes[i].ParamBytes
	}
	return sum
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:     g.name,
		nodes:    append([]Node(nil), g.nodes...),
		edges:    append([]Edge(nil), g.edges...),
		outEdges: make([][]int32, len(g.outEdges)),
		inEdges:  make([][]int32, len(g.inEdges)),
		edgeSet:  make(map[[2]int]int32, len(g.edgeSet)),
	}
	for i := range g.outEdges {
		c.outEdges[i] = append([]int32(nil), g.outEdges[i]...)
		c.inEdges[i] = append([]int32(nil), g.inEdges[i]...)
	}
	for k, v := range g.edgeSet {
		c.edgeSet[k] = v
	}
	return c
}

// Validate checks structural invariants: at least one node, consistent IDs,
// non-negative costs and acyclicity. Generators and deserialization call it
// before handing a graph to the partitioner.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("graph: no nodes")
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.ID != i {
			return fmt.Errorf("graph: node %d has inconsistent ID %d", i, n.ID)
		}
		if n.FLOPs < 0 || math.IsNaN(n.FLOPs) || math.IsInf(n.FLOPs, 0) {
			return fmt.Errorf("graph: node %d has invalid FLOPs %v", i, n.FLOPs)
		}
		if n.ParamBytes < 0 {
			return fmt.Errorf("graph: node %d has negative ParamBytes", i)
		}
		if n.OutputBytes < 0 {
			return fmt.Errorf("graph: node %d has negative OutputBytes", i)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// String summarizes the graph for logs: name, node and edge counts.
func (g *Graph) String() string {
	return fmt.Sprintf("%s(|V|=%d |E|=%d)", g.name, len(g.nodes), len(g.edges))
}
