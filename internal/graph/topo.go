package graph

import (
	"container/heap"
	"errors"
)

// ErrCycle is returned when a graph that must be acyclic contains a cycle.
var ErrCycle = errors.New("graph: cycle detected")

// intHeap is a min-heap of node IDs used to make the topological order
// deterministic (smallest ready ID first).
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TopoOrder returns a deterministic topological order of the nodes (Kahn's
// algorithm, smallest-ID-first among ready nodes) or ErrCycle if the graph is
// not a DAG.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.inEdges[v])
	}
	h := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			*h = append(*h, v)
		}
	}
	heap.Init(h)
	order := make([]int, 0, n)
	for h.Len() > 0 {
		v := heap.Pop(h).(int)
		order = append(order, v)
		for _, e := range g.outEdges[v] {
			w := g.edges[e].To
			indeg[w]--
			if indeg[w] == 0 {
				heap.Push(h, w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Graph) IsDAG() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Depths returns, for every node, the length of the longest path from any
// source (in-degree-zero node) to it, in edges. Sources have depth 0.
// It returns an error if the graph has a cycle.
//
// Depth normalized by the maximum depth is the "pipeline position" feature
// used by the policy network: nodes early in the dataflow should gravitate to
// low chip IDs and late nodes to high chip IDs.
func (g *Graph) Depths() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(g.nodes))
	for _, v := range order {
		for _, e := range g.outEdges[v] {
			w := g.edges[e].To
			if d := depth[v] + 1; d > depth[w] {
				depth[w] = d
			}
		}
	}
	return depth, nil
}

// CriticalPathFLOPs returns the maximum total FLOPs along any source-to-sink
// path. It is a lower bound on latency regardless of partitioning and is
// used by the cost models for normalization.
func (g *Graph) CriticalPathFLOPs() (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	best := make([]float64, len(g.nodes))
	var max float64
	for _, v := range order {
		best[v] += g.nodes[v].FLOPs
		if best[v] > max {
			max = best[v]
		}
		for _, e := range g.outEdges[v] {
			w := g.edges[e].To
			if best[v] > best[w] {
				best[w] = best[v]
			}
		}
	}
	return max, nil
}

// Sources returns the IDs of nodes with no predecessors, in ID order.
func (g *Graph) Sources() []int {
	var src []int
	for v := range g.nodes {
		if len(g.inEdges[v]) == 0 {
			src = append(src, v)
		}
	}
	return src
}

// Sinks returns the IDs of nodes with no successors, in ID order.
func (g *Graph) Sinks() []int {
	var snk []int
	for v := range g.nodes {
		if len(g.outEdges[v]) == 0 {
			snk = append(snk, v)
		}
	}
	return snk
}
