// External test package: the benchmark draws its 10k-node input from
// internal/randgraph, which itself imports internal/graph — an in-package
// benchmark would be an import cycle.
package graph_test

import (
	"fmt"
	"testing"

	"mcmpart/internal/graph"
	"mcmpart/internal/randgraph"
)

// BenchmarkFingerprint measures canonical fingerprinting on a 10k-node
// generated graph — the scale at which Service plan-cache keys are computed
// for large models. Each iteration clones the graph first so the fpCache
// memo cannot short-circuit the work being measured.
func BenchmarkFingerprint(b *testing.B) {
	g := randgraph.Generate(randgraph.Config{Family: randgraph.FamilyLayered, Nodes: 10_000, Seed: 42})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := g.Clone()
		b.StartTimer()
		_ = c.Fingerprint()
	}
}

// BenchmarkFingerprintAdversarial measures the refinement-with-
// individualization stress case documented on canonicalPositions: many
// mutually automorphic nodes (identical parallel two-node chains hanging
// off one root). Whole-class peeling keeps this near-linear — one
// individualization round per tie class, not per tied member; before that
// fix, 4x the twins cost ~17x the time (one round per member, each round
// re-refining the whole graph). Kept benchmarked so a regression shows up
// as a number, not an anecdote.
func BenchmarkFingerprintAdversarial(b *testing.B) {
	for _, twins := range []int{100, 400} {
		b.Run(fmt.Sprintf("twins=%d", twins), func(b *testing.B) {
			g := graph.New(fmt.Sprintf("adversarial-%d", twins))
			root := g.AddNode(graph.Node{Name: "root", Op: graph.OpEmbedding, FLOPs: 1, OutputBytes: 64})
			for i := 0; i < twins; i++ {
				a := g.AddNode(graph.Node{Name: fmt.Sprintf("a%d", i), Op: graph.OpMatMul, FLOPs: 2, OutputBytes: 64})
				c := g.AddNode(graph.Node{Name: fmt.Sprintf("b%d", i), Op: graph.OpMatMul, FLOPs: 3, OutputBytes: 64})
				g.MustAddEdge(root, a, 64)
				g.MustAddEdge(a, c, 64)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := g.Clone()
				b.StartTimer()
				_ = c.Fingerprint()
			}
		})
	}
}
