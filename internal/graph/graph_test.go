package graph

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the 5-node example of Figure 2a: one source fanning out to
// two branches that re-join and feed a sink.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	for i := 0; i < 5; i++ {
		g.AddNode(Node{Name: "n", Op: OpMatMul, FLOPs: 10, OutputBytes: 4})
	}
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(0, 2, 4)
	g.MustAddEdge(1, 3, 4)
	g.MustAddEdge(2, 3, 4)
	g.MustAddEdge(3, 4, 4)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond should validate: %v", err)
	}
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New("g")
	for i := 0; i < 4; i++ {
		if id := g.AddNode(Node{Name: "x"}); id != i {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("g")
	a := g.AddNode(Node{})
	b := g.AddNode(Node{})
	tests := []struct {
		name     string
		from, to int
		bytes    int64
		wantErr  bool
	}{
		{"ok", a, b, 8, false},
		{"duplicate", a, b, 8, true},
		{"self loop", a, a, 8, true},
		{"unknown to", a, 99, 8, true},
		{"unknown from", -1, b, 8, true},
		{"negative bytes", b, a, -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.from, tt.to, tt.bytes)
			if (err != nil) != tt.wantErr {
				t.Fatalf("AddEdge(%d,%d,%d) error = %v, wantErr %v", tt.from, tt.to, tt.bytes, err, tt.wantErr)
			}
		})
	}
	if !errors.Is(g.AddEdge(a, b, 8), ErrDuplicateEdge) {
		t.Fatalf("duplicate edge should wrap ErrDuplicateEdge")
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge (%d,%d) violates topo order %v", e.From, e.To, order)
		}
	}
	// Deterministic: smallest ready ID first.
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cyclic")
	a := g.AddNode(Node{})
	b := g.AddNode(Node{})
	c := g.AddNode(Node{})
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 1)
	g.MustAddEdge(c, a, 1)
	if _, err := g.TopoOrder(); !errors.Is(err, ErrCycle) {
		t.Fatalf("TopoOrder error = %v, want ErrCycle", err)
	}
	if g.IsDAG() {
		t.Fatal("IsDAG should be false for a cycle")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should fail on a cyclic graph")
	}
}

func TestDepths(t *testing.T) {
	g := diamond(t)
	depth, err := g.Depths()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2, 3}
	for i := range want {
		if depth[i] != want[i] {
			t.Fatalf("depth = %v, want %v", depth, want)
		}
	}
}

func TestCriticalPathFLOPs(t *testing.T) {
	g := diamond(t)
	cp, err := g.CriticalPathFLOPs()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 40 { // 4 nodes on the longest path x 10 FLOPs
		t.Fatalf("critical path = %v, want 40", cp)
	}
}

func TestSourcesSinksDegrees(t *testing.T) {
	g := diamond(t)
	if src := g.Sources(); len(src) != 1 || src[0] != 0 {
		t.Fatalf("sources = %v, want [0]", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != 4 {
		t.Fatalf("sinks = %v, want [4]", snk)
	}
	if g.InDegree(3) != 2 || g.OutDegree(0) != 2 {
		t.Fatalf("degree mismatch: in(3)=%d out(0)=%d", g.InDegree(3), g.OutDegree(0))
	}
	if got := g.Successors(0); len(got) != 2 {
		t.Fatalf("successors(0) = %v", got)
	}
	if got := g.Predecessors(3); len(got) != 2 {
		t.Fatalf("predecessors(3) = %v", got)
	}
}

func TestTotals(t *testing.T) {
	g := New("g")
	g.AddNode(Node{FLOPs: 5, ParamBytes: 100})
	g.AddNode(Node{FLOPs: 7, ParamBytes: 200})
	if got := g.TotalFLOPs(); got != 12 {
		t.Fatalf("TotalFLOPs = %v, want 12", got)
	}
	if got := g.TotalParamBytes(); got != 300 {
		t.Fatalf("TotalParamBytes = %v, want 300", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.AddNode(Node{Name: "extra"})
	c.MustAddEdge(4, 5, 1)
	if g.NumNodes() == c.NumNodes() || g.NumEdges() == c.NumEdges() {
		t.Fatal("mutating the clone changed the original")
	}
	if g.HasEdge(4, 5) {
		t.Fatal("original gained the clone's edge")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name() != g.Name() || back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", &back, g)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if back.Node(i) != g.Node(i) {
			t.Fatalf("node %d mismatch", i)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if back.Edge(i) != g.Edge(i) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"cycle", `{"name":"x","nodes":[{"id":0},{"id":1}],"edges":[{"from":0,"to":1},{"from":1,"to":0}]}`},
		{"bad ids", `{"name":"x","nodes":[{"id":3}],"edges":[]}`},
		{"dangling edge", `{"name":"x","nodes":[{"id":0}],"edges":[{"from":0,"to":9}]}`},
		{"empty", `{"name":"x","nodes":[],"edges":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var g Graph
			if err := json.Unmarshal([]byte(tt.in), &g); err == nil {
				t.Fatalf("Unmarshal(%s) should fail", tt.in)
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, []int{0, 0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "chip 0", "chip 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	if err := g.WriteDOT(&buf, []int{0}); err == nil {
		t.Fatal("WriteDOT should reject a short partition")
	}
	buf.Reset()
	if err := g.WriteDOT(&buf, nil); err != nil || !strings.Contains(buf.String(), "digraph") {
		t.Fatalf("WriteDOT without partition failed: %v", err)
	}
}

func TestOpKindStringRoundTrip(t *testing.T) {
	for k := 0; k < NumOpKinds; k++ {
		kind := OpKind(k)
		back, err := ParseOpKind(kind.String())
		if err != nil {
			t.Fatalf("ParseOpKind(%q): %v", kind, err)
		}
		if back != kind {
			t.Fatalf("round trip %v -> %v", kind, back)
		}
	}
	if _, err := ParseOpKind("bogus"); err == nil {
		t.Fatal("ParseOpKind should reject unknown names")
	}
	if s := OpKind(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("unknown kind String = %q", s)
	}
}

// randomDAG builds a random layered DAG for property tests: edges only go
// from lower to higher IDs, so the result is always acyclic.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		g.AddNode(Node{Name: "n", Op: OpKind(rng.Intn(NumOpKinds)), FLOPs: float64(rng.Intn(100)), OutputBytes: int64(rng.Intn(64))})
	}
	for v := 1; v < n; v++ {
		// Each node gets 1..3 predecessors among earlier nodes.
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			u := rng.Intn(v)
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, int64(rng.Intn(128)))
			}
		}
	}
	return g
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%40) + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, n)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		// JSON round trip must preserve structure.
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.NumNodes() == g.NumNodes() && back.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
