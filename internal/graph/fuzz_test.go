package graph

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// FuzzParseJSON fuzzes the wire-format trust boundary: arbitrary bytes must
// either fail to decode with an error or produce a graph that validates,
// survives a marshal/unmarshal round trip, and keeps its fingerprint.
func FuzzParseJSON(f *testing.F) {
	f.Add([]byte(`{"name":"g","nodes":[{"id":0,"op":4,"flops":10,"output_bytes":8},{"id":1,"op":7}],"edges":[{"from":0,"to":1,"bytes":8}]}`))
	f.Add([]byte(`{"name":"g","nodes":[{"id":0,"op":99}]}`))
	f.Add([]byte(`{"name":"g","nodes":[{"id":0,"op":4}],"edges":[{"from":0,"to":7,"bytes":1}]}`))
	f.Add([]byte(`{"name":"g","nodes":[{"id":0,"op":4},{"id":1,"op":4}],"edges":[{"from":0,"to":1,"bytes":-5}]}`))
	f.Add([]byte(`{"nodes":null,"edges":null}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected: fine, as long as it never panics
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", err)
		}
		fp := g.Fingerprint()
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-encoding a decoded graph: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to decode: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %s vs %s", back.String(), g.String())
		}
		if back.Fingerprint() != fp {
			t.Fatalf("round trip changed fingerprint")
		}
	})
}

// FuzzFingerprint fuzzes the canonical-fingerprint contract on decoded
// graphs: the fingerprint is deterministic, survives Clone, is invariant
// under node-insertion-order permutation, and changes when a node's
// operator kind changes.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte(`{"name":"g","nodes":[{"id":0,"op":4,"flops":10,"output_bytes":8},{"id":1,"op":7},{"id":2,"op":7}],"edges":[{"from":0,"to":1,"bytes":8},{"from":0,"to":2,"bytes":8}]}`), int64(1))
	f.Add([]byte(`{"name":"twins","nodes":[{"id":0,"op":0,"output_bytes":4},{"id":1,"op":4,"flops":5},{"id":2,"op":4,"flops":5},{"id":3,"op":12}],"edges":[{"from":0,"to":1,"bytes":4},{"from":0,"to":2,"bytes":4},{"from":1,"to":3,"bytes":1},{"from":2,"to":3,"bytes":1}]}`), int64(7))
	f.Fuzz(func(t *testing.T, data []byte, permSeed int64) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		fp := g.Fingerprint()
		if fp == "" || fp != g.Clone().Fingerprint() {
			t.Fatalf("fingerprint not stable under Clone")
		}
		// Rebuild with a random node-insertion order: isomorphic graphs
		// must fingerprint identically.
		n := g.NumNodes()
		perm := rand.New(rand.NewSource(permSeed)).Perm(n)
		rebuilt := New(g.Name())
		for newID := 0; newID < n; newID++ {
			nd := g.Node(perm[newID])
			nd.ID = 0 // AddNode reassigns
			rebuilt.AddNode(nd)
		}
		pos := make([]int, n)
		for newID, oldID := range perm {
			pos[oldID] = newID
		}
		for _, e := range g.Edges() {
			if err := rebuilt.AddEdge(pos[e.From], pos[e.To], e.Bytes); err != nil {
				t.Fatalf("rebuilding permuted graph: %v", err)
			}
		}
		if got := rebuilt.Fingerprint(); got != fp {
			t.Fatalf("insertion-order permutation changed the fingerprint")
		}
		// Sensitivity: flipping one node's operator must change it.
		mutated := New(g.Name())
		for v := 0; v < n; v++ {
			nd := g.Node(v)
			if v == int(uint64(permSeed)%uint64(n)) {
				nd.Op = OpKind((int(nd.Op) + 1) % NumOpKinds)
			}
			mutated.AddNode(nd)
		}
		for _, e := range g.Edges() {
			mutated.MustAddEdge(e.From, e.To, e.Bytes)
		}
		if mutated.Fingerprint() == fp {
			t.Fatalf("operator mutation did not change the fingerprint")
		}
	})
}
