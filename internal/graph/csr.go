package graph

// CSR is a compressed-sparse-row view of the graph's adjacency: one flat
// edge-index array per direction plus offset tables, built once and shared.
// The per-node slice-of-slices adjacency (outEdges/inEdges) is fine for
// construction and for the sub-1k-node corpus, but at 100k nodes it costs
// two pointer-chasing loads per neighbor visit and fragments the heap with
// |V| small slices; the analytic fast path walks every edge many times per
// plan, so it reads this packed form instead.
//
// A CSR is immutable. Out(v) and In(v) return subslices of the shared flat
// arrays; callers must not mutate them.
type CSR struct {
	n                int
	outOff, inOff    []int32
	outEdge, inEdge  []int32
}

// NumNodes returns |V| of the graph the view was built from.
func (c *CSR) NumNodes() int { return c.n }

// Out returns the indices (into the graph's Edges) of edges leaving v,
// in insertion order.
func (c *CSR) Out(v int) []int32 { return c.outEdge[c.outOff[v]:c.outOff[v+1]] }

// In returns the indices (into the graph's Edges) of edges entering v,
// in insertion order.
func (c *CSR) In(v int) []int32 { return c.inEdge[c.inOff[v]:c.inOff[v+1]] }

// csrCache memoizes the last CSR view. AddNode/AddEdge invalidate it
// implicitly through the node/edge counts, the same contract fpCache uses.
type csrCache struct {
	nodes, edges int
	csr          *CSR
}

// CSR returns the packed adjacency view of the graph, building it on first
// use and memoizing it until the graph grows. Like Fingerprint, it is safe
// for concurrent use on a graph that is no longer being mutated.
func (g *Graph) CSR() *CSR {
	if c := g.csr.Load(); c != nil && c.nodes == len(g.nodes) && c.edges == len(g.edges) {
		return c.csr
	}
	csr := g.buildCSR()
	g.csr.Store(&csrCache{nodes: len(g.nodes), edges: len(g.edges), csr: csr})
	return csr
}

func (g *Graph) buildCSR() *CSR {
	n := len(g.nodes)
	m := len(g.edges)
	c := &CSR{
		n:       n,
		outOff:  make([]int32, n+1),
		inOff:   make([]int32, n+1),
		outEdge: make([]int32, m),
		inEdge:  make([]int32, m),
	}
	for v := 0; v < n; v++ {
		c.outOff[v+1] = c.outOff[v] + int32(len(g.outEdges[v]))
		c.inOff[v+1] = c.inOff[v] + int32(len(g.inEdges[v]))
	}
	for v := 0; v < n; v++ {
		copy(c.outEdge[c.outOff[v]:], g.outEdges[v])
		copy(c.inEdge[c.inOff[v]:], g.inEdges[v])
	}
	return c
}
