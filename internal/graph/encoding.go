package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation of a Graph.
type graphJSON struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// MarshalJSON encodes the graph as {"name", "nodes", "edges"}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{Name: g.name, Nodes: g.nodes, Edges: g.edges})
}

// UnmarshalJSON decodes a graph previously encoded with MarshalJSON and
// validates it. It is the trust boundary for graphs arriving over the wire
// (cmd/mcmpart -graph files, the daemon's plan endpoints), so every
// structural defect is rejected with a descriptive error rather than being
// carried into the planner: dangling or negative-sized edges (via AddEdge),
// unknown operator kinds, non-finite or negative costs and cycles (via
// Validate).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return err
	}
	fresh := New(gj.Name)
	for i, n := range gj.Nodes {
		if n.ID != i {
			return fmt.Errorf("graph: node %d serialized with ID %d", i, n.ID)
		}
		if int(n.Op) >= NumOpKinds {
			return fmt.Errorf("graph: node %d has unknown op kind %d (valid: 0..%d)", i, n.Op, NumOpKinds-1)
		}
		fresh.AddNode(n)
	}
	for _, e := range gj.Edges {
		// AddEdge's errors already name the offending endpoints and size.
		if err := fresh.AddEdge(e.From, e.To, e.Bytes); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return err
	}
	// Field-wise assignment: Graph embeds an atomic fingerprint memo that
	// must not be copied, only reset.
	g.name = fresh.name
	g.nodes = fresh.nodes
	g.edges = fresh.edges
	g.outEdges = fresh.outEdges
	g.inEdges = fresh.inEdges
	g.edgeSet = fresh.edgeSet
	g.fp.Store(nil)
	return nil
}

// WriteDOT writes the graph in Graphviz DOT format. If part is non-nil it
// must have one entry per node; nodes are then clustered and colored by chip
// assignment, which makes partitions easy to eyeball.
func (g *Graph) WriteDOT(w io.Writer, part []int) error {
	if part != nil && len(part) != len(g.nodes) {
		return fmt.Errorf("graph: partition has %d entries for %d nodes", len(part), len(g.nodes))
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled];\n", g.name); err != nil {
		return err
	}
	palette := []string{
		"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
		"#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		color := "#dddddd"
		label := fmt.Sprintf("%s\\n%s", n.Name, n.Op)
		if part != nil {
			color = palette[part[i]%len(palette)]
			label = fmt.Sprintf("%s\\n%s\\nchip %d", n.Name, n.Op, part[i])
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, fillcolor=%q];\n", i, label, color); err != nil {
			return err
		}
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", e.From, e.To, byteLabel(e.Bytes)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func byteLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
