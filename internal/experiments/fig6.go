package experiments

import (
	"context"
	"fmt"
	"strings"

	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
	"mcmpart/internal/pretrain"
	"mcmpart/internal/rl"
	"mcmpart/internal/stats"
	"mcmpart/internal/workload"
)

// Fig6Config parameterizes the BERT deployment experiment of Sec. 5.3
// (Figure 6 and Table 3): search on "real hardware" (the simulator).
type Fig6Config struct {
	Scale Scale
	Seed  int64
	Pkg   *mcm.Package
	// SampleBudget is the hardware-evaluation budget (paper: 800).
	SampleBudget int
	// Pretrained supplies the checkpoint from the Figure 5 pipeline; when
	// nil, Figure6 runs that pipeline itself.
	Pretrained *pretrain.Result
	PolicyCfg  rl.Config
	// SecondsPerSample converts sample counts to the paper's wall-clock
	// framing (the paper measured 26.97 s per hardware sample).
	SecondsPerSample float64
	// Workers bounds the per-method trial fan-out (0 = process default);
	// results are identical at any worker count.
	Workers int
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Pkg == nil {
		c.Pkg = mcm.Edge36()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SecondsPerSample == 0 {
		c.SecondsPerSample = 26.97
	}
	if c.SampleBudget == 0 {
		if c.Scale == ScaleFull {
			c.SampleBudget = 800
		} else {
			c.SampleBudget = 240
		}
	}
	return c
}

// Fig6Result holds the BERT improvement curves over the greedy heuristic.
type Fig6Result struct {
	Cfg    Fig6Config
	Curves map[Method][]float64
	Final  map[Method]float64
	// RLvsRandomPct and RLvsSAPct are the headline percentages of
	// Sec. 5.3 (paper: 6.11% and 5.85%).
	RLvsRandomPct, RLvsSAPct float64
}

// Figure6 reproduces the BERT evaluation: all five strategies search for
// partitions of the 2138-node BERT graph with rewards measured on the
// hardware simulator, normalized to the production greedy heuristic.
// Cancelling ctx aborts the run and propagates ctx.Err().
func Figure6(ctx context.Context, cfg Fig6Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	bert := workload.BERT()
	ev := simEvaluator(cfg.Pkg, cfg.Seed)

	pre := cfg.Pretrained
	policyCfg := cfg.PolicyCfg
	if pre == nil {
		f5, err := Figure5(ctx, Fig5Config{Scale: cfg.Scale, Seed: cfg.Seed, Pkg: cfg.Pkg, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("experiments: pre-training for Figure 6: %w", err)
		}
		pre = f5.Pretrained
		policyCfg = f5.PolicyCfg
	}

	res := &Fig6Result{
		Cfg:    cfg,
		Curves: make(map[Method][]float64),
		Final:  make(map[Method]float64),
	}
	// The five strategies are independent trials: each gets its own
	// environment and a seed derived from its method index, so they fan out
	// across workers with results identical to a serial run.
	workers := parallel.Resolve(cfg.Workers, len(Methods))
	trialPPO := ppoConfig(cfg.Scale)
	if workers > 1 {
		trialPPO.Workers = 1
	} else {
		trialPPO.Workers = cfg.Workers
	}
	hists, err := parallel.MapErr(workers, len(Methods), func(mi int) ([]float64, error) {
		m := Methods[mi]
		env, err := newEnv(bert, cfg.Pkg, ev)
		if err != nil {
			return nil, err
		}
		seed := cfg.Seed + int64(mi)*733
		if err := runMethod(ctx, m, env, policyCfg, trialPPO, pre, cfg.SampleBudget, seed); err != nil {
			return nil, fmt.Errorf("experiments: %s on BERT: %w", m, err)
		}
		return env.History, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range Methods {
		// Single graph: the curve is the environment history itself.
		res.Curves[m] = stats.GeomeanCurves([][]float64{hists[mi]}, cfg.SampleBudget)
		res.Final[m] = res.Curves[m][len(res.Curves[m])-1]
	}
	res.RLvsRandomPct = 100 * (res.Final[MethodRL]/res.Final[MethodRandom] - 1)
	res.RLvsSAPct = 100 * (res.Final[MethodRL]/res.Final[MethodSA] - 1)
	return res, nil
}

// Format prints the Figure 6 series plus the Sec. 5.3 headline comparisons.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: BERT throughput improvement over the greedy heuristic\n")
	fmt.Fprintf(&b, "(2138-node BERT, hardware simulator, budget %d samples)\n\n", r.Cfg.SampleBudget)
	points := samplePoints(r.Cfg.SampleBudget)
	fmt.Fprintf(&b, "%-14s", "# samples")
	for _, p := range points {
		fmt.Fprintf(&b, "%10d", p)
	}
	b.WriteByte('\n')
	for _, m := range Methods {
		fmt.Fprintf(&b, "%-14s", m)
		for _, p := range points {
			fmt.Fprintf(&b, "%10.3f", r.Curves[m][p-1])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nRL vs Random at convergence: %+.2f%% (paper: +6.11%%)\n", r.RLvsRandomPct)
	fmt.Fprintf(&b, "RL vs SA at convergence:     %+.2f%% (paper: +5.85%%)\n", r.RLvsSAPct)
	return b.String()
}

// Table3Thresholds are the BERT improvement levels of Table 3.
var Table3Thresholds = []float64{2.55, 2.60, 2.65}

// Table3 derives Table 3 from a Figure 6 run and reports the search-time
// framing of Sec. 5.3 (samples x seconds-per-sample).
func Table3(r *Fig6Result) *ThresholdTable {
	return NewThresholdTable(r.Curves, adaptThresholds(r.Curves, Table3Thresholds))
}

// SearchTimeSummary renders the paper's "3 hours -> 9 minutes" claim from
// the measured sample counts: the time RL-from-scratch and fine-tuning need
// to reach the highest threshold both methods attain.
func SearchTimeSummary(r *Fig6Result, t *ThresholdTable) string {
	rlRow, ftRow := t.Samples[MethodRL], t.Samples[MethodFinetuning]
	for i := len(t.Thresholds) - 1; i >= 0; i-- {
		if rlRow[i] > 0 && ftRow[i] > 0 {
			rlMin := float64(rlRow[i]) * r.Cfg.SecondsPerSample / 60
			ftMin := float64(ftRow[i]) * r.Cfg.SecondsPerSample / 60
			return fmt.Sprintf(
				"reaching %.2fx at %.2f s/sample: RL from scratch %.0f min, fine-tuning %.0f min (paper: >3 h -> ~9 min)",
				t.Thresholds[i], r.Cfg.SecondsPerSample, rlMin, ftMin)
		}
	}
	return "search-time summary: no threshold reached by both RL and fine-tuning"
}
