// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. 5). Each experiment is a pure function from a
// configuration to a result struct with a Format method that prints the
// same rows/series the paper reports; cmd/mcmexp and the repository-root
// benchmarks are thin wrappers around this package.
//
// Experiments run at two scales: ScaleQuick (default; minutes on one CPU
// core, reduced sample budgets and network sizes) and ScaleFull (the
// paper's budgets and the paper's 8x128 network). DESIGN.md records
// measured results for both the shapes and the deltas against the paper.
package experiments

import (
	"fmt"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/eval"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// Scale selects experiment budgets.
type Scale int

const (
	// ScaleQuick runs reduced budgets sized for a single CPU core.
	ScaleQuick Scale = iota
	// ScaleFull runs the paper's budgets (5000/800 samples, 20000
	// pre-training samples, the 8x128 network).
	ScaleFull
)

// ParseScale converts a CLI flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick", "":
		return ScaleQuick, nil
	case "full":
		return ScaleFull, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (quick or full)", s)
}

// Method identifies a search strategy in the figures.
type Method string

// The five strategies of Figures 5 and 6.
const (
	MethodRandom     Method = "Random"
	MethodSA         Method = "SA"
	MethodRL         Method = "RL"
	MethodZeroshot   Method = "RL Zeroshot"
	MethodFinetuning Method = "RL Finetuning"
)

// Methods lists the strategies in the paper's legend order.
var Methods = []Method{MethodRandom, MethodSA, MethodRL, MethodZeroshot, MethodFinetuning}

// newEnv wires a graph to a partitioner, an evaluator and the greedy
// baseline, producing an RL/search environment. The partitioner factory
// enables concurrent rollout collection (one solver replica per worker).
func newEnv(g *graph.Graph, pkg *mcm.Package, ev eval.Evaluator) (*rl.Env, error) {
	pr, err := cpsolver.NewAutoPkg(g, pkg, cpsolver.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: partitioner for %s: %w", g.Name(), err)
	}
	base := search.GreedyPackage(g, pkg)
	bv := ev.Assess(g, base)
	if !bv.Valid || bv.Throughput <= 0 {
		return nil, fmt.Errorf("experiments: greedy baseline invalid on %s", g.Name())
	}
	env := rl.NewEnv(rl.NewGraphContext(g), pr, ev, bv.Throughput)
	env.UseSampleMode = true
	env.PartFactory = func() (cpsolver.Partitioner, error) {
		return cpsolver.NewAutoPkg(g, pkg, cpsolver.Options{})
	}
	return env, nil
}

// modelEvaluator returns the analytical-cost-model evaluator for a package.
func modelEvaluator(pkg *mcm.Package) eval.Evaluator { return costmodel.New(pkg) }

// simEvaluator returns the hardware-simulator evaluator for a package;
// both environments now satisfy the shared eval.Evaluator contract
// directly, so no adapter shim is needed.
func simEvaluator(pkg *mcm.Package, seed int64) eval.Evaluator {
	return hwsim.New(pkg, hwsim.Options{Seed: seed})
}

// policyConfig returns the network shape for a scale.
func policyConfig(scale Scale, chips int) rl.Config {
	if scale == ScaleFull {
		return rl.DefaultConfig(chips)
	}
	return rl.QuickConfig(chips)
}

// ppoConfig returns the PPO hyper-parameters for a scale.
func ppoConfig(scale Scale) rl.PPOConfig {
	if scale == ScaleFull {
		return rl.DefaultPPOConfig()
	}
	return rl.QuickPPOConfig()
}

// corpus returns the 87-model dataset used by the pre-training experiments.
func corpus(seed int64) *workload.Dataset { return workload.Corpus(seed) }
