package experiments

import (
	"context"
	"strings"
	"testing"

	"mcmpart/internal/mcm"
	"mcmpart/internal/rl"
)

// tinyFig5 runs the Figure 5 pipeline with the smallest budgets that still
// exercise every code path.
func tinyFig5(t *testing.T) *Fig5Result {
	t.Helper()
	res, err := Figure5(context.Background(), Fig5Config{
		Scale:           ScaleQuick,
		Seed:            3,
		SampleBudget:    12,
		TestGraphs:      2,
		PretrainSamples: 40,
		TrainGraphs:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFigure5SmokeAndTable2(t *testing.T) {
	res := tinyFig5(t)
	for _, m := range Methods {
		curve := res.Curves[m]
		if len(curve) != res.Cfg.SampleBudget {
			t.Fatalf("%s curve has %d points, want %d", m, len(curve), res.Cfg.SampleBudget)
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1]-1e-9 {
				t.Fatalf("%s geomean curve not monotone at %d", m, i)
			}
		}
		if res.Final[m] <= 0 {
			t.Fatalf("%s final improvement %v", m, res.Final[m])
		}
	}
	out := res.Format()
	for _, want := range []string{"Figure 5", "Random", "RL Finetuning"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	t2 := Table2(res)
	if len(t2.Thresholds) != 3 {
		t.Fatalf("Table 2 has %d thresholds", len(t2.Thresholds))
	}
	if !strings.Contains(t2.Format("Table 2"), "method") {
		t.Fatal("Table 2 format broken")
	}
}

func TestFigure6SmokeAndTable3(t *testing.T) {
	f5 := tinyFig5(t)
	res, err := Figure6(context.Background(), Fig6Config{
		Scale:        ScaleQuick,
		Seed:         3,
		SampleBudget: 10,
		Pretrained:   f5.Pretrained,
		PolicyCfg:    f5.PolicyCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods {
		if len(res.Curves[m]) != 10 {
			t.Fatalf("%s curve has %d points", m, len(res.Curves[m]))
		}
	}
	out := res.Format()
	if !strings.Contains(out, "BERT") || !strings.Contains(out, "RL vs Random") {
		t.Fatalf("Figure 6 format broken:\n%s", out)
	}
	t3 := Table3(res)
	summary := SearchTimeSummary(res, t3)
	if summary == "" {
		t.Fatal("empty search-time summary")
	}
}

func TestFigure7Smoke(t *testing.T) {
	res, err := Figure7(Fig7Config{Scale: ScaleQuick, Seed: 3, Samples: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != len(res.Measured) {
		t.Fatal("scatter axes length mismatch")
	}
	if len(res.Predicted) == 0 {
		t.Fatal("no valid samples in calibration")
	}
	if res.InvalidPct < 0 || res.InvalidPct > 100 {
		t.Fatalf("invalid rate %v", res.InvalidPct)
	}
	// The analytical model should correlate strongly but imperfectly.
	if res.PearsonR < 0.3 || res.PearsonR > 0.999 {
		t.Fatalf("Pearson R = %v, want strong-but-imperfect correlation", res.PearsonR)
	}
	if !strings.Contains(res.Format(), "Pearson") {
		t.Fatal("Figure 7 format broken")
	}
}

func TestTable1Smoke(t *testing.T) {
	res, err := Table1(3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.SolverValidPct != 100 {
		t.Fatalf("solver validity = %v%%, want 100", res.SolverValidPct)
	}
	if res.RawValidPct > 50 {
		t.Fatalf("raw validity = %v%%; the valid space should be sparse", res.RawValidPct)
	}
	if !strings.Contains(res.Format(), "CPS+RL") {
		t.Fatal("Table 1 format broken")
	}
}

func TestHeteroSweepSmoke(t *testing.T) {
	res, err := HeteroSweep(context.Background(), HeteroConfig{Scale: ScaleQuick, Seed: 3, Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("sweep has %d rows, want the 5 default packages", len(res.Rows))
	}
	topos := map[mcm.TopologyKind]bool{}
	hetero := false
	for _, row := range res.Rows {
		topos[row.Topology] = true
		hetero = hetero || row.Hetero
		if !row.GreedyValid {
			t.Errorf("%s: greedy baseline did not fit", row.Package)
			continue
		}
		if row.RandomImprovement <= 0 || row.SAImprovement <= 0 {
			t.Errorf("%s: search found nothing (random %v, sa %v)",
				row.Package, row.RandomImprovement, row.SAImprovement)
		}
	}
	if !hetero {
		t.Error("sweep covers no heterogeneous package")
	}
	for _, k := range []mcm.TopologyKind{mcm.TopoRing, mcm.TopoBiRing, mcm.TopoMesh} {
		if !topos[k] {
			t.Errorf("sweep covers no %s package", k)
		}
	}
	out := res.Format()
	for _, want := range []string{"het4", "mesh16", "dev8bi", "sa"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("quick"); err != nil || s != ScaleQuick {
		t.Fatal("quick")
	}
	if s, err := ParseScale("full"); err != nil || s != ScaleFull {
		t.Fatal("full")
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Fatal("bogus scale should fail")
	}
}

func TestNewEnvUsesGreedyBaseline(t *testing.T) {
	pkg := mcm.Dev8()
	ds := corpus(1)
	env, err := newEnv(ds.Test[0], pkg, modelEvaluator(pkg))
	if err != nil {
		t.Fatal(err)
	}
	if env.Baseline <= 0 {
		t.Fatal("baseline must be positive")
	}
	var _ *rl.Env = env
}
