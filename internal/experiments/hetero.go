package experiments

import (
	"context"
	"fmt"
	"strings"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// HeteroConfig parameterizes the heterogeneity/topology sweep: the same
// workload partitioned across packages that differ in chiplet mix and
// interconnect, the scenario axis the paper's single homogeneous-ring
// platform could not explore (cf. Odema et al.'s heterogeneous chiplets and
// Scope-style richer interconnects).
type HeteroConfig struct {
	Scale Scale
	Seed  int64
	// Budget is the per-package evaluation budget for each search method
	// (quick: 120, full: 800).
	Budget int
	// Packages defaults to the preset ladder dev4, het4, dev8, dev8bi,
	// mesh16: a homogeneous ring, its big/little variant, and the same
	// compute re-wired over richer topologies.
	Packages []*mcm.Package
	// Graph defaults to a 10-layer MLP whose weights fit every preset's
	// SRAM, including the 8 MiB little dies.
	Graph *graph.Graph
	// Workers bounds the per-package fan-out (0 = process default). Each
	// package's searches derive their RNG from (Seed, packageIndex), so
	// the sweep is worker-count independent.
	Workers int
}

func (c HeteroConfig) withDefaults() HeteroConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Budget == 0 {
		if c.Scale == ScaleFull {
			c.Budget = 800
		} else {
			c.Budget = 120
		}
	}
	if len(c.Packages) == 0 {
		c.Packages = []*mcm.Package{mcm.Dev4(), mcm.Het4(), mcm.Dev8(), mcm.Dev8Bi(), mcm.Mesh16()}
	}
	if c.Graph == nil {
		c.Graph = workload.MLP(workload.MLPConfig{
			Name: "sweep-mlp", Layers: 10, Input: 256, Hidden: 512, Output: 128, Batch: 16,
		})
	}
	return c
}

// HeteroRow is one package's outcome in the sweep.
type HeteroRow struct {
	Package  string
	Topology mcm.TopologyKind
	Chips    int
	Hetero   bool
	// GreedyThroughput is the compiler heuristic's simulated throughput
	// (the row's normalization baseline); GreedyValid is false when the
	// workload does not fit the package under the heuristic at all.
	GreedyThroughput float64
	GreedyValid      bool
	// RandomImprovement and SAImprovement are each method's best-found
	// throughput over the greedy baseline after Budget evaluations on the
	// hardware simulator.
	RandomImprovement float64
	SAImprovement     float64
}

// HeteroResult holds the sweep outcomes in package order.
type HeteroResult struct {
	Cfg  HeteroConfig
	Rows []HeteroRow
}

// HeteroSweep runs the heterogeneity/topology sweep: for every package,
// evaluate the greedy heuristic on the hardware simulator, then let Random
// search and simulated annealing spend the evaluation budget, all through
// the package-aware constraint machinery (per-chip capacity bounds on
// heterogeneous packages, route-aware pricing on every topology).
func HeteroSweep(ctx context.Context, cfg HeteroConfig) (*HeteroResult, error) {
	cfg = cfg.withDefaults()
	res := &HeteroResult{Cfg: cfg, Rows: make([]HeteroRow, len(cfg.Packages))}
	errs := make([]error, len(cfg.Packages))
	workers := parallel.Resolve(cfg.Workers, len(cfg.Packages))
	parallel.ForEach(workers, len(cfg.Packages), func(i int) {
		pkg := cfg.Packages[i]
		row := HeteroRow{
			Package:  pkg.Name,
			Topology: pkg.TopologyKind(),
			Chips:    pkg.Chips,
			Hetero:   pkg.Heterogeneous(),
		}
		if err := pkg.Validate(); err != nil {
			errs[i] = err
			return
		}
		ev := simEvaluator(pkg, cfg.Seed)
		base := search.GreedyPackage(cfg.Graph, pkg)
		bv := ev.Assess(cfg.Graph, base)
		row.GreedyThroughput = bv.Throughput
		row.GreedyValid = bv.Valid && bv.Throughput > 0
		if !row.GreedyValid {
			res.Rows[i] = row
			return
		}
		for m, out := range map[string]*float64{
			"random": &row.RandomImprovement,
			"sa":     &row.SAImprovement,
		} {
			env, err := newEnv(cfg.Graph, pkg, ev)
			if err != nil {
				errs[i] = err
				return
			}
			rng := parallel.Rng(cfg.Seed, i)
			if m == "random" {
				errs[i] = search.Random(ctx, env, cfg.Budget, rng)
			} else {
				errs[i] = search.Anneal(ctx, env, cfg.Budget, search.SAConfig{}, rng)
			}
			if errs[i] != nil {
				return
			}
			*out = env.BestImprovement()
		}
		res.Rows[i] = row
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Format renders the sweep as a table.
func (r *HeteroResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Heterogeneity/topology sweep: %s, %d evaluations per method (hardware simulator)\n\n",
		r.Cfg.Graph.Name(), r.Cfg.Budget)
	fmt.Fprintf(&b, "%-8s %-7s %5s %5s %12s %10s %10s\n",
		"package", "topo", "chips", "het", "greedy(io/s)", "random", "sa")
	for _, row := range r.Rows {
		het := "-"
		if row.Hetero {
			het = "yes"
		}
		if !row.GreedyValid {
			fmt.Fprintf(&b, "%-8s %-7s %5d %5s %12s %10s %10s\n",
				row.Package, row.Topology, row.Chips, het, "(no fit)", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-8s %-7s %5d %5s %12.1f %9.2fx %9.2fx\n",
			row.Package, row.Topology, row.Chips, het,
			row.GreedyThroughput, row.RandomImprovement, row.SAImprovement)
	}
	return b.String()
}
