package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
	"mcmpart/internal/pretrain"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/stats"
)

// Fig5Config parameterizes the pre-training experiment of Sec. 5.2
// (Figure 5 and Table 2).
type Fig5Config struct {
	Scale Scale
	Seed  int64
	// Pkg defaults to Edge36.
	Pkg *mcm.Package
	// SampleBudget is the per-graph evaluation budget (paper: 5000).
	SampleBudget int
	// TestGraphs caps how many of the 16 test graphs run (0 = all).
	TestGraphs int
	// PretrainSamples is the training-worker budget (paper: 20000).
	PretrainSamples int
	// TrainGraphs caps how many of the 66 training graphs the quick scale
	// uses (0 = all).
	TrainGraphs int
	// Workers bounds the trial fan-out (0 = process default). Trials are
	// seeded per (graph, method) item, so results are identical at any
	// worker count.
	Workers int
}

// withDefaults fills the scale-dependent budgets.
func (c Fig5Config) withDefaults() Fig5Config {
	if c.Pkg == nil {
		c.Pkg = mcm.Edge36()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == ScaleFull {
		if c.SampleBudget == 0 {
			c.SampleBudget = 5000
		}
		if c.PretrainSamples == 0 {
			c.PretrainSamples = 20000
		}
	} else {
		if c.SampleBudget == 0 {
			c.SampleBudget = 200
		}
		if c.PretrainSamples == 0 {
			c.PretrainSamples = 600
		}
		if c.TestGraphs == 0 {
			c.TestGraphs = 6
		}
		if c.TrainGraphs == 0 {
			c.TrainGraphs = 12
		}
	}
	return c
}

// Fig5Result holds the geomean improvement curves of Figure 5 plus the
// pre-trained checkpoint reused by the BERT experiments.
type Fig5Result struct {
	Cfg Fig5Config
	// Curves maps each method to its geomean best-so-far improvement per
	// sample over the test graphs.
	Curves map[Method][]float64
	// Final is each method's improvement at the end of the budget.
	Final map[Method]float64
	// Pretrained is the validation-selected checkpoint.
	Pretrained *pretrain.Result
	// PolicyCfg is the network shape the checkpoint requires.
	PolicyCfg rl.Config
}

// Figure5 reproduces the pre-training experiment: pre-train on the training
// set against the analytical cost model, then compare Random, SA, RL from
// scratch, zero-shot and fine-tuning on the held-out test graphs.
// Cancelling ctx aborts the run and propagates ctx.Err().
func Figure5(ctx context.Context, cfg Fig5Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	ds := corpus(cfg.Seed)
	ev := modelEvaluator(cfg.Pkg)
	policyCfg := policyConfig(cfg.Scale, cfg.Pkg.Chips)

	// Pre-training pipeline (training + validation workers, Figure 4).
	train := ds.Train
	if cfg.TrainGraphs > 0 && cfg.TrainGraphs < len(train) {
		train = train[:cfg.TrainGraphs]
	}
	factory := func(g *graph.Graph) (*rl.Env, error) { return newEnv(g, cfg.Pkg, ev) }
	ppoCfg := ppoConfig(cfg.Scale)
	ppoCfg.Workers = cfg.Workers
	pre, err := pretrain.Run(ctx, train, ds.Validation, factory, pretrain.Config{
		Policy:            policyCfg,
		PPO:               ppoCfg,
		TotalSamples:      cfg.PretrainSamples,
		Checkpoints:       10,
		ValidationSamples: 8,
		Seed:              cfg.Seed,
		Workers:           cfg.Workers,
	})
	if err != nil {
		return nil, err
	}

	test := ds.Test
	if cfg.TestGraphs > 0 && cfg.TestGraphs < len(test) {
		test = test[:cfg.TestGraphs]
	}
	res := &Fig5Result{
		Cfg:        cfg,
		Curves:     make(map[Method][]float64),
		Final:      make(map[Method]float64),
		Pretrained: pre,
		PolicyCfg:  policyCfg,
	}
	// The (graph, method) trials are independent — each builds its own
	// environment and derives its RNG from the pair's fixed seed — so they
	// fan out across the worker pool with results assembled in index order.
	// Nested rollout fan-out is disabled while trials themselves run
	// concurrently; by the determinism contract that changes wall-clock
	// only, never results.
	items := len(test) * len(Methods)
	workers := parallel.Resolve(cfg.Workers, items)
	trialPPO := ppoConfig(cfg.Scale)
	if workers > 1 {
		trialPPO.Workers = 1
	}
	hists, err := parallel.MapErr(workers, items, func(idx int) ([]float64, error) {
		gi, mi := idx/len(Methods), idx%len(Methods)
		g, m := test[gi], Methods[mi]
		env, err := newEnv(g, cfg.Pkg, ev)
		if err != nil {
			return nil, err
		}
		seed := cfg.Seed + int64(gi)*101
		if err := runMethod(ctx, m, env, policyCfg, trialPPO, pre, cfg.SampleBudget, seed); err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", m, g.Name(), err)
		}
		return env.History, nil
	})
	if err != nil {
		return nil, err
	}
	histories := make(map[Method][][]float64)
	for idx, h := range hists {
		histories[Methods[idx%len(Methods)]] = append(histories[Methods[idx%len(Methods)]], h)
	}
	for _, m := range Methods {
		res.Curves[m] = stats.GeomeanCurves(histories[m], cfg.SampleBudget)
		res.Final[m] = res.Curves[m][len(res.Curves[m])-1]
	}
	return res, nil
}

// runMethod executes one strategy on one environment for the budget.
func runMethod(ctx context.Context, m Method, env *rl.Env, policyCfg rl.Config, ppoCfg rl.PPOConfig, pre *pretrain.Result, budget int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	// The RL methods drive the solver in SAMPLE mode: the policy's full
	// distribution blends with the solver's completion weighting, which
	// is what keeps early (high-entropy) policies at the Random baseline's
	// sample quality instead of below it. The FIX-vs-SAMPLE comparison is
	// covered by BenchmarkAblationSolverMode.
	env.UseSampleMode = true
	switch m {
	case MethodRandom:
		return search.Random(ctx, env, budget, rng)
	case MethodSA:
		return search.Anneal(ctx, env, budget, search.SAConfig{}, rng)
	case MethodRL:
		policy := rl.NewPolicy(policyCfg, rng)
		trainer := rl.NewTrainer(policy, ppoCfg, rng)
		_, err := trainer.TrainUntil(ctx, []*rl.Env{env}, budget)
		return err
	case MethodZeroshot:
		policy := rl.NewPolicy(policyCfg, rng)
		if err := policy.Restore(pre.Best()); err != nil {
			return err
		}
		return rl.ZeroShot(ctx, policy, env, budget, rng)
	case MethodFinetuning:
		policy := rl.NewPolicy(policyCfg, rng)
		if err := policy.Restore(pre.Best()); err != nil {
			return err
		}
		_, err := rl.FineTune(ctx, policy, env, ppoCfg, budget, rng)
		return err
	default:
		return fmt.Errorf("unknown method %q", m)
	}
}

// Format prints the Figure 5 series at a few sample points plus the final
// geomean improvements.
func (r *Fig5Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: geomean throughput improvement over the greedy heuristic\n")
	fmt.Fprintf(&b, "(test graphs, analytical cost model, budget %d samples)\n\n", r.Cfg.SampleBudget)
	points := samplePoints(r.Cfg.SampleBudget)
	fmt.Fprintf(&b, "%-14s", "# samples")
	for _, p := range points {
		fmt.Fprintf(&b, "%10d", p)
	}
	b.WriteByte('\n')
	for _, m := range Methods {
		fmt.Fprintf(&b, "%-14s", m)
		for _, p := range points {
			fmt.Fprintf(&b, "%10.3f", r.Curves[m][p-1])
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	for _, m := range Methods {
		fmt.Fprintf(&b, "final %-14s %.3fx\n", m, r.Final[m])
	}
	return b.String()
}

// samplePoints picks representative x-axis points for text output.
func samplePoints(budget int) []int {
	raw := []int{budget / 20, budget / 8, budget / 4, budget / 2, 3 * budget / 4, budget}
	var pts []int
	for _, p := range raw {
		if p >= 1 && (len(pts) == 0 || p > pts[len(pts)-1]) {
			pts = append(pts, p)
		}
	}
	sort.Ints(pts)
	return pts
}

// Table2Thresholds are the geomean improvement levels of Table 2.
var Table2Thresholds = []float64{1.60, 1.70, 1.80}

// ThresholdTable is the generic form of Tables 2 and 3: the number of
// samples each method needs to reach each threshold, and the reduction
// factor relative to RL trained from scratch (N.A. when never reached).
type ThresholdTable struct {
	Thresholds []float64
	// Samples[m][i] is the 1-based sample count, or -1 for never.
	Samples map[Method][]int
}

// NewThresholdTable derives the table from per-method geomean curves.
func NewThresholdTable(curves map[Method][]float64, thresholds []float64) *ThresholdTable {
	t := &ThresholdTable{Thresholds: thresholds, Samples: make(map[Method][]int)}
	for _, m := range Methods {
		row := make([]int, len(thresholds))
		for i, th := range thresholds {
			row[i] = stats.FirstReached(curves[m], th)
		}
		t.Samples[m] = row
	}
	return t
}

// Format prints the table in the paper's "samples (reduction x)" form.
func (t *ThresholdTable) Format(caption string) string {
	var b strings.Builder
	b.WriteString(caption)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-14s", "method")
	for _, th := range t.Thresholds {
		fmt.Fprintf(&b, "%18s", fmt.Sprintf(">= %.2fx", th))
	}
	b.WriteByte('\n')
	rlRow := t.Samples[MethodRL]
	for _, m := range Methods {
		fmt.Fprintf(&b, "%-14s", m)
		for i, s := range t.Samples[m] {
			if s < 0 {
				fmt.Fprintf(&b, "%18s", "N.A. (N.A.)")
				continue
			}
			if rlRow[i] > 0 {
				fmt.Fprintf(&b, "%18s", fmt.Sprintf("%d (%.2fx)", s, float64(rlRow[i])/float64(s)))
			} else {
				fmt.Fprintf(&b, "%18s", fmt.Sprintf("%d (N.A.)", s))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table2 derives Table 2 from a Figure 5 run, using thresholds adapted to
// the measured improvement range when the paper's absolute levels are out
// of reach for the simulated substrate (the reduction factors, not the
// absolute levels, are the reproduction target).
func Table2(r *Fig5Result) *ThresholdTable {
	return NewThresholdTable(r.Curves, adaptThresholds(r.Curves, Table2Thresholds))
}

// adaptThresholds keeps the paper's thresholds when they discriminate on
// the measured curves (above the first-sample level, reached by at least one
// method); otherwise it rescales them into the measured range (50%, 75% and
// 95% of the way from the first sample's level to the best final level).
// The paper's absolute levels depend on its proprietary platform; the
// reproduction target for Tables 2 and 3 is the sample-reduction factors.
func adaptThresholds(curves map[Method][]float64, paper []float64) []float64 {
	var lo, hi float64
	reached := 0
	for _, m := range Methods {
		c := curves[m]
		if len(c) == 0 {
			continue
		}
		if lo == 0 || c[0] < lo {
			lo = c[0]
		}
		if c[len(c)-1] > hi {
			hi = c[len(c)-1]
		}
		for _, th := range paper {
			if c[len(c)-1] >= th {
				reached++
			}
		}
	}
	discriminating := reached >= len(paper)
	for _, th := range paper {
		if th <= lo {
			discriminating = false // trivially reached at the first sample
		}
	}
	if discriminating {
		return paper
	}
	fracs := []float64{0.5, 0.75, 0.95}
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = lo + f*(hi-lo)
	}
	return out
}
