package experiments

import (
	"context"

	"mcmpart/internal/conformance"
)

// ConformanceConfig parameterizes the conformance sweep experiment: the
// scenario-fuzzing battery of internal/conformance run across every package
// preset. Quick scale covers 6 presets x 28 graphs x 4 methods = 672 plan
// cases; full scale doubles the graph stream and the per-plan budget.
type ConformanceConfig struct {
	Scale Scale
	Seed  int64
	// Presets restricts the sweep (default: all six presets).
	Presets []string
}

// ConformanceSweep runs the battery and returns the deterministic report.
// The run is conforming iff the report carries zero violations; callers
// (cmd/mcmexp, CI) treat violations as failures.
func ConformanceSweep(ctx context.Context, cfg ConformanceConfig) (*conformance.Report, error) {
	sweep := conformance.SweepConfig{
		Seed:    cfg.Seed,
		Presets: cfg.Presets,
	}
	if cfg.Scale == ScaleFull {
		sweep.GraphsPerPreset = 56
		sweep.SampleBudget = 32
	}
	return conformance.Sweep(ctx, sweep)
}
