package experiments

import (
	"context"
	"reflect"
	"testing"
)

// det5Cfg returns a Figure 5 configuration small enough to run twice in a
// unit test while still exercising every stage: pre-training, validation
// checkpoint scoring, and all five methods on the test graphs.
func det5Cfg(workers int) Fig5Config {
	return Fig5Config{
		Scale:           ScaleQuick,
		Seed:            1,
		SampleBudget:    30,
		PretrainSamples: 60,
		TestGraphs:      2,
		TrainGraphs:     2,
		Workers:         workers,
	}
}

// TestFigure5WorkerCountDeterminism pins the experiment engine's contract
// end to end: a full Figure 5 run — PPO pre-training with fanned rollouts,
// parallel checkpoint validation, and concurrent (graph, method) trials —
// produces bit-identical curves at workers=1 and workers=8.
func TestFigure5WorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Figure 5 runs")
	}
	r1, err := Figure5(context.Background(), det5Cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Figure5(context.Background(), det5Cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods {
		if !reflect.DeepEqual(r1.Curves[m], r8.Curves[m]) {
			t.Fatalf("%s curve differs between workers=1 and workers=8", m)
		}
	}
	if !reflect.DeepEqual(r1.Pretrained.Scores, r8.Pretrained.Scores) {
		t.Fatalf("validation scores differ: %v vs %v", r1.Pretrained.Scores, r8.Pretrained.Scores)
	}
	if r1.Pretrained.BestIndex != r8.Pretrained.BestIndex {
		t.Fatalf("selected checkpoint differs: %d vs %d", r1.Pretrained.BestIndex, r8.Pretrained.BestIndex)
	}
}

// TestFigure7WorkerCountDeterminism pins the sampling fan-out: the scatter,
// correlation, and invalid rate are identical at workers=1 and workers=8.
func TestFigure7WorkerCountDeterminism(t *testing.T) {
	cfg := func(w int) Fig7Config {
		return Fig7Config{Scale: ScaleQuick, Seed: 1, Samples: 60, Workers: w}
	}
	r1, err := Figure7(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Figure7(cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Predicted, r8.Predicted) || !reflect.DeepEqual(r1.Measured, r8.Measured) {
		t.Fatal("calibration scatter differs between workers=1 and workers=8")
	}
	if r1.PearsonR != r8.PearsonR || r1.InvalidPct != r8.InvalidPct {
		t.Fatalf("summary stats differ: R %v vs %v, invalid %v vs %v",
			r1.PearsonR, r8.PearsonR, r1.InvalidPct, r8.InvalidPct)
	}
}

// TestFigure6WorkerCountDeterminism pins the per-method trial fan-out on a
// reduced BERT budget, reusing one tiny pre-training run for both.
func TestFigure6WorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two BERT trial sweeps")
	}
	f5, err := Figure5(context.Background(), det5Cfg(8))
	if err != nil {
		t.Fatal(err)
	}
	run := func(w int) *Fig6Result {
		res, err := Figure6(context.Background(), Fig6Config{
			Scale:        ScaleQuick,
			Seed:         1,
			SampleBudget: 24,
			Pretrained:   f5.Pretrained,
			PolicyCfg:    f5.PolicyCfg,
			Workers:      w,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r8 := run(1), run(8)
	for _, m := range Methods {
		if !reflect.DeepEqual(r1.Curves[m], r8.Curves[m]) {
			t.Fatalf("%s BERT curve differs between workers=1 and workers=8", m)
		}
	}
}
