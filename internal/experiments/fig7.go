package experiments

import (
	"fmt"
	"strings"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
	"mcmpart/internal/stats"
	"mcmpart/internal/workload"
)

// Fig7Config parameterizes the cost-model calibration study of Sec. 5.4
// (Figure 7).
type Fig7Config struct {
	Scale Scale
	Seed  int64
	Pkg   *mcm.Package
	// Samples is the number of random solver-valid BERT partitions
	// (paper: 2000).
	Samples int
	// Workers bounds the sampling fan-out (0 = process default). Samples
	// are seeded per index and drawn on per-worker partitioner replicas,
	// so the scatter is identical at any worker count.
	Workers int
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Pkg == nil {
		c.Pkg = mcm.Edge36()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Samples == 0 {
		if c.Scale == ScaleFull {
			c.Samples = 2000
		} else {
			c.Samples = 400
		}
	}
	return c
}

// Fig7Result holds the calibration scatter and its summary statistics.
type Fig7Result struct {
	Cfg Fig7Config
	// Predicted and Measured are normalized runtimes (each divided by its
	// minimum) of the partitions valid on hardware.
	Predicted, Measured []float64
	// PearsonR is the correlation between them (paper: 0.91).
	PearsonR float64
	// InvalidPct is the share of solver-valid partitions the hardware
	// rejected (paper: 13.5%).
	InvalidPct float64
	// FalsePositives counts hardware-invalid partitions whose predicted
	// runtime was below the median prediction — the "red circle" cluster:
	// partitions that look good analytically but fail on hardware.
	FalsePositives int
}

// Figure7 reproduces the calibration study: draw random solver-valid BERT
// partitions, predict their runtime with the analytical model, measure them
// on the simulator, and compare.
func Figure7(cfg Fig7Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	bert := workload.BERT()
	pr, err := cpsolver.NewAuto(bert, cfg.Pkg.Chips, cpsolver.Options{})
	if err != nil {
		return nil, err
	}
	model := costmodel.New(cfg.Pkg)
	sim := hwsim.New(cfg.Pkg, hwsim.Options{Seed: cfg.Seed})

	// Draw, predict, and measure samples across the worker pool: sample i
	// derives its RNG from (Seed, i), and each worker solves on its own
	// partitioner replica, so the scatter is worker-count independent.
	// Results assemble in index order below.
	res := &Fig7Result{Cfg: cfg}
	predAll := make([]float64, cfg.Samples)
	intervals := make([]float64, cfg.Samples)
	validMask := make([]bool, cfg.Samples)
	workers := parallel.Resolve(cfg.Workers, cfg.Samples)
	errs := make([]error, workers)
	parallel.ForEachBlock(workers, cfg.Samples, func(w, lo, hi int) {
		part := pr
		if workers > 1 {
			replica, err := cpsolver.NewAuto(bert, cfg.Pkg.Chips, cpsolver.Options{})
			if err != nil {
				errs[w] = err
				return
			}
			part = replica
		}
		for i := lo; i < hi; i++ {
			p, err := part.SampleMode(nil, parallel.Rng(cfg.Seed, i))
			if err != nil {
				errs[w] = fmt.Errorf("experiments: sample %d: %w", i, err)
				return
			}
			predAll[i] = model.Latency(bert, p)
			m := sim.Measure(bert, p, 0)
			validMask[i] = m.Valid
			intervals[i] = m.Interval
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	invalid := 0
	for i := 0; i < cfg.Samples; i++ {
		if !validMask[i] {
			invalid++
			continue
		}
		res.Predicted = append(res.Predicted, predAll[i])
		res.Measured = append(res.Measured, intervals[i])
	}
	res.InvalidPct = 100 * float64(invalid) / float64(cfg.Samples)
	// Normalize both axes to their minima, as the paper plots them.
	normalize(res.Predicted)
	normalize(res.Measured)
	res.PearsonR = stats.Pearson(res.Predicted, res.Measured)
	// False positives: invalid on hardware yet predicted below median.
	med := median(predAll)
	for i, pred := range predAll {
		if !validMask[i] && pred < med {
			res.FalsePositives++
		}
	}
	return res, nil
}

func normalize(xs []float64) {
	if len(xs) == 0 {
		return
	}
	min := xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	if min <= 0 {
		return
	}
	for i := range xs {
		xs[i] /= min
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	// Insertion-free selection: simple sort is fine at this size.
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

// Format prints the calibration summary and a coarse ASCII scatter.
func (r *Fig7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: analytical cost model vs hardware simulator on BERT\n")
	fmt.Fprintf(&b, "(%d random solver-valid partitions)\n\n", r.Cfg.Samples)
	fmt.Fprintf(&b, "hardware-invalid rate: %.1f%% (paper: 13.5%%)\n", r.InvalidPct)
	fmt.Fprintf(&b, "Pearson R (valid samples): %.3f (paper: 0.91)\n", r.PearsonR)
	fmt.Fprintf(&b, "false positives (predicted fast, failed on hardware): %d\n\n", r.FalsePositives)
	b.WriteString(asciiScatter(r.Predicted, r.Measured, 48, 16))
	return b.String()
}

// asciiScatter renders normalized (x, y) points in a text grid.
func asciiScatter(x, y []float64, w, h int) string {
	if len(x) == 0 {
		return "(no valid samples)\n"
	}
	maxX, maxY := 1.0, 1.0
	for i := range x {
		if x[i] > maxX {
			maxX = x[i]
		}
		if y[i] > maxY {
			maxY = y[i]
		}
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for i := range x {
		cx := int((x[i] - 1) / (maxX - 1 + 1e-12) * float64(w-1))
		cy := int((y[i] - 1) / (maxY - 1 + 1e-12) * float64(h-1))
		grid[h-1-cy][cx] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "measured runtime (normalized, up to %.2fx) vs predicted (right, up to %.2fx)\n", maxY, maxX)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "\n")
	return b.String()
}
