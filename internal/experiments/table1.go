package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/workload"
)

// Table1Result backs the paper's qualitative comparison (Table 1) with
// measured evidence from this repository: the validity rate of raw policy
// samples versus solver-corrected ones, and time-to-solution of the solver
// path.
type Table1Result struct {
	// RawValidPct is the share of uniform random assignments that satisfy
	// all static constraints without the solver — the reason pure RL
	// "fails due to insufficient valid samples".
	RawValidPct float64
	// SolverValidPct is the share of solver-emitted partitions that are
	// valid (always 100 by construction; measured as an invariant).
	SolverValidPct float64
	// SolverMsPerSample is the measured time to produce one valid
	// partition through the solver.
	SolverMsPerSample float64
}

// Table1 measures the evidence on a mid-size corpus graph over the Edge36
// package.
func Table1(seed int64, samples int) (*Table1Result, error) {
	if samples <= 0 {
		samples = 200
	}
	pkg := mcm.Edge36()
	g := workload.CorpusGraphs(seed)[1] // a residual CNN: skip edges galore
	rng := rand.New(rand.NewSource(seed))
	res := &Table1Result{}

	rawValid := 0
	y := make(partition.Partition, g.NumNodes())
	for i := 0; i < samples; i++ {
		for j := range y {
			y[j] = rng.Intn(pkg.Chips)
		}
		if y.Validate(g, pkg.Chips) == nil {
			rawValid++
		}
	}
	res.RawValidPct = 100 * float64(rawValid) / float64(samples)

	pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	if err != nil {
		return nil, err
	}
	solverValid := 0
	start := time.Now()
	for i := 0; i < samples; i++ {
		p, err := pr.SampleMode(nil, rng)
		if err == nil && p.Validate(g, pkg.Chips) == nil {
			solverValid++
		}
	}
	res.SolverMsPerSample = float64(time.Since(start).Milliseconds()) / float64(samples)
	res.SolverValidPct = 100 * float64(solverValid) / float64(samples)
	return res, nil
}

// Format prints Table 1 with the measured evidence appended.
func (r *Table1Result) Format() string {
	var b strings.Builder
	b.WriteString(`Table 1: comparison of partitioning approaches
                       CPS    CH     RL     CPS+S  CPS+RL (this work)
static constraints     yes    yes    no     yes    yes
dynamic constraints    no     yes    no     yes    yes
needs closed-form perf yes    no     no     no     no
solution quality       n.a.   low    n.a.   medium high
time to solution       n.a.   fast   n.a.   slow   fast

`)
	fmt.Fprintf(&b, "measured evidence (residual CNN on edge36):\n")
	fmt.Fprintf(&b, "  raw uniform assignments valid: %.2f%% (why RL alone sees no reward)\n", r.RawValidPct)
	fmt.Fprintf(&b, "  solver-corrected samples valid: %.1f%%\n", r.SolverValidPct)
	fmt.Fprintf(&b, "  solver time per valid sample: %.2f ms\n", r.SolverMsPerSample)
	return b.String()
}
