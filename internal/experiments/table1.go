package experiments

import (
	"fmt"
	"strings"
	"time"

	"mcmpart/internal/cpsolver"
	"mcmpart/internal/mcm"
	"mcmpart/internal/parallel"
	"mcmpart/internal/partition"
	"mcmpart/internal/workload"
)

// Table1Result backs the paper's qualitative comparison (Table 1) with
// measured evidence from this repository: the validity rate of raw policy
// samples versus solver-corrected ones, and time-to-solution of the solver
// path.
type Table1Result struct {
	// RawValidPct is the share of uniform random assignments that satisfy
	// all static constraints without the solver — the reason pure RL
	// "fails due to insufficient valid samples".
	RawValidPct float64
	// SolverValidPct is the share of solver-emitted partitions that are
	// valid (always 100 by construction; measured as an invariant).
	SolverValidPct float64
	// SolverMsPerSample is the measured time to produce one valid
	// partition through the solver.
	SolverMsPerSample float64
}

// Table1 measures the evidence on a mid-size corpus graph over the Edge36
// package. Both measurement loops fan out across the worker pool with
// per-sample seeds, so the rates are identical at any worker count (only
// the measured per-sample latency reflects the parallelism).
func Table1(seed int64, samples int) (*Table1Result, error) {
	if samples <= 0 {
		samples = 200
	}
	pkg := mcm.Edge36()
	g := workload.CorpusGraphs(seed)[1] // a residual CNN: skip edges galore
	res := &Table1Result{}

	workers := parallel.Resolve(0, samples)
	rawOK := make([]bool, samples)
	parallel.ForEachBlock(workers, samples, func(_, lo, hi int) {
		y := make(partition.Partition, g.NumNodes())
		for i := lo; i < hi; i++ {
			rng := parallel.Rng(seed, i)
			for j := range y {
				y[j] = rng.Intn(pkg.Chips)
			}
			rawOK[i] = y.Validate(g, pkg.Chips) == nil
		}
	})
	res.RawValidPct = 100 * float64(count(rawOK)) / float64(samples)

	pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	if err != nil {
		return nil, err
	}
	solverOK := make([]bool, samples)
	// Per-sample solve time is summed across workers (each sample timed
	// individually), so the reported ms/sample is the true cost of one
	// solve, independent of how many cores ran the loop.
	solveNs := make([]int64, workers)
	parallel.ForEachBlock(workers, samples, func(w, lo, hi int) {
		part := pr
		if workers > 1 {
			replica, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
			if err != nil {
				return // leaves the block's samples invalid; rates reveal it
			}
			part = replica
		}
		for i := lo; i < hi; i++ {
			rng := parallel.Rng(seed+1, i)
			start := time.Now()
			p, err := part.SampleMode(nil, rng)
			solveNs[w] += time.Since(start).Nanoseconds()
			solverOK[i] = err == nil && p.Validate(g, pkg.Chips) == nil
		}
	})
	var totalNs int64
	for _, ns := range solveNs {
		totalNs += ns
	}
	res.SolverMsPerSample = float64(totalNs) / 1e6 / float64(samples)
	res.SolverValidPct = 100 * float64(count(solverOK)) / float64(samples)
	return res, nil
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Format prints Table 1 with the measured evidence appended.
func (r *Table1Result) Format() string {
	var b strings.Builder
	b.WriteString(`Table 1: comparison of partitioning approaches
                       CPS    CH     RL     CPS+S  CPS+RL (this work)
static constraints     yes    yes    no     yes    yes
dynamic constraints    no     yes    no     yes    yes
needs closed-form perf yes    no     no     no     no
solution quality       n.a.   low    n.a.   medium high
time to solution       n.a.   fast   n.a.   slow   fast

`)
	fmt.Fprintf(&b, "measured evidence (residual CNN on edge36):\n")
	fmt.Fprintf(&b, "  raw uniform assignments valid: %.2f%% (why RL alone sees no reward)\n", r.RawValidPct)
	fmt.Fprintf(&b, "  solver-corrected samples valid: %.1f%%\n", r.SolverValidPct)
	fmt.Fprintf(&b, "  solver time per valid sample: %.2f ms\n", r.SolverMsPerSample)
	return b.String()
}
