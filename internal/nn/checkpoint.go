package nn

import (
	"encoding/json"
	"fmt"
	"os"
)

// Snapshot captures parameter values by name for checkpointing. Gradients
// and optimizer state are not part of a snapshot: the pre-training pipeline
// evaluates checkpoints with fresh optimizers, as the paper's validation
// worker does.
type Snapshot map[string][]float64

// TakeSnapshot copies the current parameter values.
func TakeSnapshot(params []*Param) Snapshot {
	s := make(Snapshot, len(params))
	for _, p := range params {
		s[p.Name] = append([]float64(nil), p.Value.Data...)
	}
	return s
}

// Restore writes the snapshot back into the parameters. Every parameter
// must be present with a matching length.
func (s Snapshot) Restore(params []*Param) error {
	for _, p := range params {
		data, ok := s[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if len(data) != len(p.Value.Data) {
			return fmt.Errorf("nn: snapshot parameter %q has %d values, want %d",
				p.Name, len(data), len(p.Value.Data))
		}
		copy(p.Value.Data, data)
	}
	return nil
}

// Save writes the snapshot as JSON to path.
func (s Snapshot) Save(path string) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSnapshot reads a snapshot previously written with Save.
func LoadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("nn: corrupt snapshot %s: %w", path, err)
	}
	return s, nil
}
