package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Snapshot captures parameter values by name for checkpointing. Gradients
// and optimizer state are not part of a snapshot: the pre-training pipeline
// evaluates checkpoints with fresh optimizers, as the paper's validation
// worker does.
type Snapshot map[string][]float64

// TakeSnapshot copies the current parameter values.
func TakeSnapshot(params []*Param) Snapshot {
	s := make(Snapshot, len(params))
	for _, p := range params {
		s[p.Name] = append([]float64(nil), p.Value.Data...)
	}
	return s
}

// Restore writes the snapshot back into the parameters. Every parameter
// must be present with a matching length; mismatches report the parameter
// name and the expected length so a checkpoint taken from a different
// network shape fails loudly instead of scrambling weights.
func (s Snapshot) Restore(params []*Param) error {
	for _, p := range params {
		data, ok := s[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q (want %d values)", p.Name, len(p.Value.Data))
		}
		if len(data) != len(p.Value.Data) {
			return fmt.Errorf("nn: snapshot parameter %q has %d values, want %d",
				p.Name, len(data), len(p.Value.Data))
		}
		copy(p.Value.Data, data)
	}
	if len(s) > len(params) {
		// Extra entries mean the snapshot came from a different network;
		// report one concrete name to make the mismatch debuggable.
		known := make(map[string]bool, len(params))
		for _, p := range params {
			known[p.Name] = true
		}
		extras := make([]string, 0, len(s)-len(params))
		for name := range s {
			if !known[name] {
				extras = append(extras, name)
			}
		}
		sort.Strings(extras)
		return fmt.Errorf("nn: snapshot has %d unknown parameter(s), e.g. %q", len(extras), extras[0])
	}
	return nil
}

// Validate rejects snapshots carrying non-finite weights (a corrupt or
// hand-edited checkpoint file), naming the offending parameter and index.
// Parameter names are visited in sorted order so the reported error is
// deterministic.
func (s Snapshot) Validate() error {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for i, v := range s[name] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: snapshot parameter %q has non-finite value %v at index %d", name, v, i)
			}
		}
	}
	return nil
}

// Save writes the snapshot as JSON to path.
func (s Snapshot) Save(path string) error {
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSnapshot reads a snapshot previously written with Save, rejecting
// corrupt files and non-finite weights with errors that name the file and
// the offending parameter.
func LoadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("nn: corrupt snapshot %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("nn: corrupt snapshot %s: %w", path, err)
	}
	return s, nil
}
