package nn

import (
	"math"

	"mcmpart/internal/parallel"
)

// adamParallelElems is the total parameter count above which Step and
// GradNorm fan per-parameter work across the worker pool. Updates are
// independent per parameter and the norm reduces per-parameter partial sums
// in parameter order, so results are identical at any worker count.
const adamParallelElems = 1 << 15

// Adam is the Adam optimizer (Kingma & Ba) over a fixed parameter list.
type Adam struct {
	// LR is the learning rate; Beta1/Beta2/Eps are the usual moment decay
	// rates and stabilizer.
	LR, Beta1, Beta2, Eps float64
	// MaxGradNorm, when positive, clips the global gradient norm before
	// each step (PPO stability).
	MaxGradNorm float64

	params []*Param
	m, v   [][]float64
	elems  int
	step   int
}

// NewAdam returns an optimizer over the parameters with standard defaults
// (beta1 0.9, beta2 0.999, eps 1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Value.Data))
		a.v[i] = make([]float64, len(p.Value.Data))
		a.elems += len(p.Value.Data)
	}
	return a
}

// acquire reserves kernel lanes for a per-parameter loop, returning the
// worker count to run at and the lane count to release after.
func (a *Adam) acquire() (workers, lanes int) {
	if a.elems < adamParallelElems {
		return 1, 0
	}
	lanes = parallel.AcquireLanes(parallel.Resolve(0, len(a.params)) - 1)
	return lanes + 1, lanes
}

// GradNorm returns the global L2 norm of all gradients. Per-parameter
// partial sums reduce in parameter order, so the result is identical at any
// worker count.
func (a *Adam) GradNorm() float64 {
	workers, lanes := a.acquire()
	defer parallel.ReleaseLanes(lanes)
	partial := parallel.Map(workers, len(a.params), func(i int) float64 {
		var sq float64
		for _, g := range a.params[i].Grad.Data {
			sq += g * g
		}
		return sq
	})
	var sq float64
	for _, s := range partial {
		sq += s
	}
	return math.Sqrt(sq)
}

// Step applies one Adam update from the accumulated gradients. It does not
// zero the gradients; callers do that when starting the next accumulation.
// Parameters update concurrently above the size threshold; each parameter's
// arithmetic is untouched, so trajectories are worker-count independent.
func (a *Adam) Step() {
	scale := 1.0
	if a.MaxGradNorm > 0 {
		if norm := a.GradNorm(); norm > a.MaxGradNorm {
			scale = a.MaxGradNorm / norm
		}
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	workers, lanes := a.acquire()
	defer parallel.ReleaseLanes(lanes)
	parallel.ForEach(workers, len(a.params), func(i int) {
		p := a.params[i]
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			g *= scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.Value.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	})
}
