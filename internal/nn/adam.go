package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba) over a fixed parameter list.
type Adam struct {
	// LR is the learning rate; Beta1/Beta2/Eps are the usual moment decay
	// rates and stabilizer.
	LR, Beta1, Beta2, Eps float64
	// MaxGradNorm, when positive, clips the global gradient norm before
	// each step (PPO stability).
	MaxGradNorm float64

	params []*Param
	m, v   [][]float64
	step   int
}

// NewAdam returns an optimizer over the parameters with standard defaults
// (beta1 0.9, beta2 0.999, eps 1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Value.Data))
		a.v[i] = make([]float64, len(p.Value.Data))
	}
	return a
}

// GradNorm returns the global L2 norm of all gradients.
func (a *Adam) GradNorm() float64 {
	var sq float64
	for _, p := range a.params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// Step applies one Adam update from the accumulated gradients. It does not
// zero the gradients; callers do that when starting the next accumulation.
func (a *Adam) Step() {
	scale := 1.0
	if a.MaxGradNorm > 0 {
		if norm := a.GradNorm(); norm > a.MaxGradNorm {
			scale = a.MaxGradNorm / norm
		}
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			g *= scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			p.Value.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
