package nn

import (
	"math"

	"mcmpart/internal/mat"
)

// ReLU applies max(0, x) elementwise: out = relu(x). It caches nothing;
// ReLUBackward takes the forward output.
func ReLU(out, x *mat.Dense) {
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
}

// ReLUBackward overwrites dX with dOut masked by the forward output out.
// dX and dOut may alias.
func ReLUBackward(dX, dOut, out *mat.Dense) {
	for i := range dOut.Data {
		if out.Data[i] > 0 {
			dX.Data[i] = dOut.Data[i]
		} else {
			dX.Data[i] = 0
		}
	}
}

// Tanh applies tanh elementwise: out = tanh(x).
func Tanh(out, x *mat.Dense) {
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
}

// TanhBackward overwrites dX with dOut * (1 - out^2). dX and dOut may alias.
func TanhBackward(dX, dOut, out *mat.Dense) {
	for i := range dOut.Data {
		y := out.Data[i]
		dX.Data[i] = dOut.Data[i] * (1 - y*y)
	}
}

// SoftmaxRows writes the row-wise softmax of logits into out (they may
// alias). Numerically stable (max-subtracted).
func SoftmaxRows(out, logits *mat.Dense) {
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		o := out.Row(r)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			o[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range o {
			o[j] *= inv
		}
	}
}

// LogSoftmaxRows writes the row-wise log-softmax of logits into out (they
// may alias).
func LogSoftmaxRows(out, logits *mat.Dense) {
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		o := out.Row(r)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - max)
		}
		lse := max + math.Log(sum)
		for j, v := range row {
			o[j] = v - lse
		}
	}
}
