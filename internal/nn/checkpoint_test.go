package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testParams(t *testing.T) []*Param {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	l1 := NewLinear("fc1", 4, 3, rng)
	l2 := NewLinear("fc2", 3, 2, rng)
	return append(append([]*Param{}, l1.Params()...), l2.Params()...)
}

// TestSnapshotSaveLoadRestoreRoundTrip is the satellite's round-trip pin:
// weights written to disk come back bit-identical through
// Save -> LoadSnapshot -> Restore.
func TestSnapshotSaveLoadRestoreRoundTrip(t *testing.T) {
	params := testParams(t)
	want := TakeSnapshot(params)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	// Scramble the live parameters, then restore from the loaded file.
	for _, p := range params {
		for i := range p.Value.Data {
			p.Value.Data[i] = -1
		}
	}
	if err := loaded.Restore(params); err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		for i, v := range p.Value.Data {
			if math.Float64bits(v) != math.Float64bits(want[p.Name][i]) {
				t.Fatalf("%s[%d]: %v != %v after round trip", p.Name, i, v, want[p.Name][i])
			}
		}
	}
}

// TestRestoreErrorsNameTheParameter pins the hardening contract: every
// shape mismatch names the offending parameter and the expected length.
func TestRestoreErrorsNameTheParameter(t *testing.T) {
	params := testParams(t)
	snap := TakeSnapshot(params)

	missing := TakeSnapshot(params)
	delete(missing, "fc2.w")
	if err := missing.Restore(params); err == nil || !strings.Contains(err.Error(), `"fc2.w"`) {
		t.Fatalf("missing parameter: want error naming fc2.w, got %v", err)
	}

	short := TakeSnapshot(params)
	short["fc1.w"] = short["fc1.w"][:3]
	err := short.Restore(params)
	if err == nil || !strings.Contains(err.Error(), `"fc1.w"`) || !strings.Contains(err.Error(), "want 12") {
		t.Fatalf("wrong length: want error naming fc1.w and expected length 12, got %v", err)
	}

	extra := TakeSnapshot(params)
	extra["ghost.w"] = []float64{1}
	if err := extra.Restore(params); err == nil || !strings.Contains(err.Error(), `"ghost.w"`) {
		t.Fatalf("unknown parameter: want error naming ghost.w, got %v", err)
	}

	// The baseline snapshot still restores cleanly.
	if err := snap.Restore(params); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejectsNonFinite pins the corrupt-weights gate: NaN and Inf
// weights are rejected with the parameter name and index.
func TestValidateRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := Snapshot{"fc1.w": {0, 1, bad, 3}}
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), `"fc1.w"`) || !strings.Contains(err.Error(), "index 2") {
			t.Fatalf("non-finite %v: want error naming fc1.w index 2, got %v", bad, err)
		}
	}
	if err := (Snapshot{"fc1.w": {0, 1, 2}}).Validate(); err != nil {
		t.Fatalf("finite snapshot must validate: %v", err)
	}
	// Save refuses non-finite weights outright (JSON cannot carry them),
	// so corrupt files cannot even be produced by this API.
	if err := (Snapshot{"w": {math.NaN()}}).Save(filepath.Join(t.TempDir(), "nan.json")); err == nil {
		t.Fatal("saving NaN weights should fail")
	}
}

// TestLoadSnapshotRejectsCorruptFiles covers the file-level failure modes:
// truncated JSON and wrong payload types.
func TestLoadSnapshotRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.json": `{"fc1.w": [1, 2`,
		"wrongtype.json": `{"fc1.w": "not numbers"}`,
		"overflow.json":  `{"fc1.w": [1e999]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshot(path); err == nil {
			t.Fatalf("%s: corrupt snapshot should fail to load", name)
		}
	}
	if _, err := LoadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should fail")
	}
}
