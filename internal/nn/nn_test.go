package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mcmpart/internal/mat"
)

// lossOf runs x through the layer and returns a simple scalar loss (sum of
// squares of the output), used for finite-difference checks.
func lossOf(l *Linear, x *mat.Dense) float64 {
	out := mat.New(x.Rows, l.Out)
	l.Forward(out, x)
	var s float64
	for _, v := range out.Data {
		s += v * v
	}
	return 0.5 * s
}

func TestLinearGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 4, 3, rng)
	x := mat.New(5, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	// Analytic gradients: dLoss/dOut = out for the 0.5*sum(out^2) loss.
	out := mat.New(5, 3)
	l.Forward(out, x)
	dOut := out.Clone()
	dX := mat.New(5, 4)
	ZeroGrads(l.Params())
	l.Backward(dX, dOut)

	const eps = 1e-6
	check := func(name string, data []float64, grad []float64) {
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			up := lossOf(l, x)
			data[i] = orig - eps
			down := lossOf(l, x)
			data[i] = orig
			fd := (up - down) / (2 * eps)
			if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: finite diff %v vs analytic %v", name, i, fd, grad[i])
			}
		}
	}
	check("W", l.W.Value.Data, l.W.Grad.Data)
	check("B", l.B.Value.Data, l.B.Grad.Data)
	check("X", x.Data, dX.Data)
}

func TestBackwardAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("fc", 2, 2, rng)
	x := mat.FromSlice(1, 2, []float64{1, 2})
	out := mat.New(1, 2)
	l.Forward(out, x)
	dOut := mat.FromSlice(1, 2, []float64{1, 1})
	ZeroGrads(l.Params())
	l.Backward(nil, dOut)
	first := append([]float64(nil), l.W.Grad.Data...)
	l.Forward(out, x)
	l.Backward(nil, dOut)
	for i := range first {
		if math.Abs(l.W.Grad.Data[i]-2*first[i]) > 1e-12 {
			t.Fatalf("gradients should accumulate: %v vs %v", l.W.Grad.Data, first)
		}
	}
}

func TestActivationsAndBackward(t *testing.T) {
	x := mat.FromSlice(1, 4, []float64{-2, -0.5, 0.5, 2})
	out := mat.New(1, 4)
	ReLU(out, x)
	if out.At(0, 0) != 0 || out.At(0, 3) != 2 {
		t.Fatalf("ReLU wrong: %v", out.Data)
	}
	dOut := mat.FromSlice(1, 4, []float64{1, 1, 1, 1})
	dX := mat.New(1, 4)
	ReLUBackward(dX, dOut, out)
	if dX.At(0, 0) != 0 || dX.At(0, 2) != 1 {
		t.Fatalf("ReLUBackward wrong: %v", dX.Data)
	}
	Tanh(out, x)
	if math.Abs(out.At(0, 3)-math.Tanh(2)) > 1e-15 {
		t.Fatalf("Tanh wrong: %v", out.Data)
	}
	TanhBackward(dX, dOut, out)
	want := 1 - math.Tanh(2)*math.Tanh(2)
	if math.Abs(dX.At(0, 3)-want) > 1e-15 {
		t.Fatalf("TanhBackward wrong: %v", dX.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	logits := mat.FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	out := mat.New(2, 3)
	SoftmaxRows(out, logits)
	for r := 0; r < 2; r++ {
		var sum float64
		for _, v := range out.Row(r) {
			if v <= 0 || math.IsNaN(v) {
				t.Fatalf("softmax row %d has bad value: %v", r, out.Row(r))
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", r, sum)
		}
	}
	if out.At(0, 2) <= out.At(0, 0) {
		t.Fatal("softmax should be monotone in logits")
	}
	// Log-softmax agrees with log(softmax).
	lout := mat.New(2, 3)
	LogSoftmaxRows(lout, logits)
	for i := range out.Data {
		if math.Abs(math.Exp(lout.Data[i])-out.Data[i]) > 1e-12 {
			t.Fatalf("log-softmax mismatch at %d", i)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w - 3)^2 with Adam: w should approach 3.
	p := newParam("w", 1, 1)
	p.Value.Data[0] = -5
	opt := NewAdam([]*Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		opt.Step()
	}
	if math.Abs(p.Value.Data[0]-3) > 0.05 {
		t.Fatalf("Adam did not converge: w = %v", p.Value.Data[0])
	}
}

func TestAdamGradClipping(t *testing.T) {
	p := newParam("w", 1, 2)
	opt := NewAdam([]*Param{p}, 0.1)
	opt.MaxGradNorm = 1
	p.Grad.Data[0], p.Grad.Data[1] = 300, 400 // norm 500
	if n := opt.GradNorm(); math.Abs(n-500) > 1e-9 {
		t.Fatalf("GradNorm = %v, want 500", n)
	}
	before := append([]float64(nil), p.Value.Data...)
	opt.Step()
	// With clipping to norm 1 and Adam normalization the step magnitude
	// stays around LR.
	for i := range before {
		if d := math.Abs(p.Value.Data[i] - before[i]); d > 0.2 {
			t.Fatalf("clipped step too large: %v", d)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("fc", 3, 2, rng)
	snap := TakeSnapshot(l.Params())
	orig := append([]float64(nil), l.W.Value.Data...)
	l.W.Value.Zero()
	if err := snap.Restore(l.Params()); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if l.W.Value.Data[i] != orig[i] {
			t.Fatal("Restore did not bring values back")
		}
	}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Restore(l.Params()); err != nil {
		t.Fatal(err)
	}
	// Missing parameter detected.
	delete(loaded, "fc.w")
	if err := loaded.Restore(l.Params()); err == nil {
		t.Fatal("Restore should fail on missing params")
	}
	// Corrupt file detected.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("LoadSnapshot should fail on corrupt JSON")
	}
}
