// Package nn provides the feed-forward building blocks of the RL policy:
// linear layers with manual backpropagation, activations, row-wise softmax,
// an Adam optimizer, and parameter (de)serialization for checkpoints.
//
// Gradient convention: Backward methods accumulate into parameter gradients
// (callers zero them once per optimization step via ZeroGrads) and overwrite
// input-gradient buffers.
package nn

import (
	"math/rand"

	"mcmpart/internal/mat"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *mat.Dense
	Grad  *mat.Dense
}

// newParam allocates a named parameter of the given shape.
func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Value: mat.New(rows, cols), Grad: mat.New(rows, cols)}
}

// ZeroGrads clears the gradient accumulators of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// Linear is a fully connected layer: Y = X @ W + b.
type Linear struct {
	In, Out int
	W, B    *Param

	x *mat.Dense // cached input for backprop
}

// NewLinear returns a Xavier-initialized linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out,
		W: newParam(name+".w", in, out),
		B: newParam(name+".b", 1, out),
	}
	l.W.Value.XavierInit(rng)
	return l
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes out = x @ W + b, caching x for Backward. out must be
// x.Rows x Out and distinct from x.
func (l *Linear) Forward(out, x *mat.Dense) {
	mat.Mul(out, x, l.W.Value)
	out.AddRowVector(l.B.Value.Data)
	l.x = x
}

// Backward accumulates parameter gradients from dOut and, when dX is
// non-nil, overwrites it with the input gradient. Forward must have been
// called first.
func (l *Linear) Backward(dX, dOut *mat.Dense) {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	mat.MulATBAcc(l.W.Grad, l.x, dOut)
	dOut.ColSums(l.B.Grad.Data)
	if dX != nil {
		mat.MulABT(dX, dOut, l.W.Value)
	}
}
