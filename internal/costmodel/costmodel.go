// Package costmodel implements the analytical cost model the paper uses as
// the pre-training reward (Sec. 5.1): it "estimates the latency of running
// all nodes assigned to each chip, and returns the maximal latency of all
// chips". The model is deliberately simple — per-chip peak compute rate, no
// per-operator efficiency, no link contention, and crucially no memory
// model — so it evaluates in microseconds and exhibits the same
// false-positive structure as the paper's (partitions that look fast
// analytically can fail on hardware; Sec. 5.4 measures that gap).
//
// Transfers are priced over the package's interconnect topology: a cut edge
// costs its route's hop count times the per-link latency-plus-serialization
// term. A transfer the topology cannot route at all (a backwards edge on
// the uni-directional ring) makes the partition illegal: Latency returns
// +Inf and Evaluate reports it invalid, in agreement with the hardware
// simulator's verdict on the same partition.
//
//mcmlint:deterministic
package costmodel

import (
	"math"

	"mcmpart/internal/eval"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

// Model is the analytical cost model for one package.
type Model struct {
	pkg  *mcm.Package
	topo mcm.Topology
}

// Model is one of the two evaluation environments of the paper's pipeline.
var _ eval.Evaluator = (*Model)(nil)

// New returns an analytical model of the package. It panics on a package
// whose topology cannot be built; validate packages before modeling them.
func New(pkg *mcm.Package) *Model {
	topo, err := pkg.Topo()
	if err != nil {
		panic("costmodel: " + err.Error())
	}
	return &Model{pkg: pkg, topo: topo}
}

// Latency estimates the pipeline interval of the partitioned graph: the
// maximum over chips of compute time plus incoming transfer time. A
// partition requiring a transfer the topology cannot route returns +Inf.
// Invalid chip IDs are the caller's bug and panic via the slice indexing.
func (m *Model) Latency(g *graph.Graph, p partition.Partition) float64 {
	chips := m.pkg.Chips
	busy := make([]float64, chips)
	for v, c := range p {
		busy[c] += m.pkg.ComputeTimeOn(c, g.Node(v).FLOPs)
	}
	for _, e := range g.Edges() {
		a, b := p[e.From], p[e.To]
		if a != b {
			hops, ok := m.topo.Hops(a, b)
			if !ok {
				return math.Inf(1)
			}
			busy[b] += m.pkg.HopTransferTime(hops, e.Bytes)
		}
	}
	var max float64
	for _, t := range busy {
		if t > max {
			max = t
		}
	}
	return max
}

// Throughput returns the estimated steady-state throughput (inferences per
// second) of the pipelined execution: the reciprocal of Latency. It returns
// 0 for an empty graph and for partitions with unroutable transfers.
func (m *Model) Throughput(g *graph.Graph, p partition.Partition) float64 {
	l := m.Latency(g, p)
	if l <= 0 || math.IsInf(l, 1) {
		return 0
	}
	return 1 / l
}

// Evaluate implements the evaluation-environment contract shared with the
// hardware simulator: it returns the predicted throughput and whether the
// partition is considered valid. The analytical model cannot observe
// dynamic constraints, so the only partitions it rejects are those whose
// transfers the topology cannot route — the same static legality the
// simulator enforces, keeping the two environments in agreement on which
// partitions are legal at all. Everything else is "valid" here; the
// memory blind spot is exactly what Sec. 5.4 quantifies.
func (m *Model) Evaluate(g *graph.Graph, p partition.Partition) (float64, bool) {
	l := m.Latency(g, p)
	if math.IsInf(l, 1) {
		return 0, false
	}
	if l <= 0 {
		return 0, true
	}
	return 1 / l, true
}

// Assess implements eval.Evaluator. The analytical model has no memory
// model, so Utilization is always 0 and the only failure it can report is
// an unroutable transfer.
func (m *Model) Assess(g *graph.Graph, p partition.Partition) eval.Verdict {
	th, ok := m.Evaluate(g, p)
	if !ok {
		return eval.Verdict{FailReason: "unroutable transfer on " + string(m.topo.Kind()) + " topology"}
	}
	return eval.Verdict{Throughput: th, Valid: true}
}
