// Package costmodel implements the analytical cost model the paper uses as
// the pre-training reward (Sec. 5.1): it "estimates the latency of running
// all nodes assigned to each chip, and returns the maximal latency of all
// chips". The model is deliberately simple — flat peak compute rate, no
// per-operator efficiency, no link contention, and crucially no memory
// model — so it evaluates in microseconds and exhibits the same
// false-positive structure as the paper's (partitions that look fast
// analytically can fail on hardware; Sec. 5.4 measures that gap).
package costmodel

import (
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

// Model is the analytical cost model for one package.
type Model struct {
	pkg *mcm.Package
}

// New returns an analytical model of the package.
func New(pkg *mcm.Package) *Model { return &Model{pkg: pkg} }

// Latency estimates the pipeline interval of the partitioned graph: the
// maximum over chips of compute time plus incoming transfer time. Invalid
// chip IDs are the caller's bug and panic via the package arithmetic.
func (m *Model) Latency(g *graph.Graph, p partition.Partition) float64 {
	chips := m.pkg.Chips
	busy := make([]float64, chips)
	for v, c := range p {
		busy[c] += m.pkg.ComputeTime(g.Node(v).FLOPs)
	}
	for _, e := range g.Edges() {
		a, b := p[e.From], p[e.To]
		if a != b {
			busy[b] += m.pkg.TransferTime(a, b, e.Bytes)
		}
	}
	var max float64
	for _, t := range busy {
		if t > max {
			max = t
		}
	}
	return max
}

// Throughput returns the estimated steady-state throughput (inferences per
// second) of the pipelined execution: the reciprocal of Latency. It returns
// 0 for an empty graph.
func (m *Model) Throughput(g *graph.Graph, p partition.Partition) float64 {
	l := m.Latency(g, p)
	if l <= 0 {
		return 0
	}
	return 1 / l
}

// Evaluate implements the evaluation-environment contract shared with the
// hardware simulator: it returns the predicted throughput and whether the
// partition is considered valid. The analytical model cannot observe
// dynamic constraints, so every partition is "valid" here — exactly the
// blind spot Sec. 5.4 quantifies.
func (m *Model) Evaluate(g *graph.Graph, p partition.Partition) (float64, bool) {
	return m.Throughput(g, p), true
}
