package costmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("g")
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e9, OutputBytes: 1 << 20})
		if i > 0 {
			g.MustAddEdge(i-1, i, 1<<20)
		}
	}
	return g
}

func TestLatencySingleChip(t *testing.T) {
	pkg := mcm.Dev4()
	m := New(pkg)
	g := testGraph(t)
	p := partition.Partition{0, 0, 0, 0}
	want := pkg.ComputeTime(4e9)
	if got := m.Latency(g, p); got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestLatencyIsMaxOverChips(t *testing.T) {
	pkg := mcm.Dev4()
	m := New(pkg)
	g := testGraph(t)
	balanced := m.Latency(g, partition.Partition{0, 0, 1, 1})
	skewed := m.Latency(g, partition.Partition{0, 1, 1, 1})
	if balanced >= skewed {
		t.Fatalf("balanced %v should beat skewed %v", balanced, skewed)
	}
	// Balanced 2-chip should roughly halve the single-chip latency (plus
	// one transfer).
	single := m.Latency(g, partition.Partition{0, 0, 0, 0})
	if balanced >= single {
		t.Fatalf("2 chips %v should beat 1 chip %v", balanced, single)
	}
}

func TestCommunicationCharged(t *testing.T) {
	pkg := mcm.Dev4()
	m := New(pkg)
	g := graph.New("comm")
	g.AddNode(graph.Node{FLOPs: 1e9, OutputBytes: 1 << 24})
	g.AddNode(graph.Node{FLOPs: 1e9, OutputBytes: 1})
	g.MustAddEdge(0, 1, 1<<24)
	near := m.Latency(g, partition.Partition{0, 1})
	far := m.Latency(g, partition.Partition{0, 3})
	if far <= near {
		t.Fatalf("3-hop transfer %v should cost more than 1-hop %v", far, near)
	}
	expect := pkg.ComputeTime(1e9) + pkg.TransferTime(0, 1, 1<<24)
	if diff := near - expect; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("near latency = %v, want %v", near, expect)
	}
}

func TestThroughputReciprocal(t *testing.T) {
	m := New(mcm.Dev4())
	g := testGraph(t)
	p := partition.Partition{0, 0, 1, 1}
	l := m.Latency(g, p)
	if got := m.Throughput(g, p); got != 1/l {
		t.Fatalf("Throughput = %v, want %v", got, 1/l)
	}
	th, valid := m.Evaluate(g, p)
	if !valid || th != 1/l {
		t.Fatalf("Evaluate = (%v,%v)", th, valid)
	}
}

// TestMonotonicityProperty: adding work to the bottleneck chip never
// decreases latency.
func TestMonotonicityProperty(t *testing.T) {
	pkg := mcm.Dev8()
	m := New(pkg)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := graph.New("rand")
		for i := 0; i < n; i++ {
			g.AddNode(graph.Node{FLOPs: float64(1+rng.Intn(100)) * 1e8, OutputBytes: int64(rng.Intn(1 << 20))})
			if i > 0 {
				g.MustAddEdge(i-1, i, int64(rng.Intn(1<<20)))
			}
		}
		p := make(partition.Partition, n)
		chip := 0
		for i := range p {
			p[i] = chip
			if chip < pkg.Chips-1 && rng.Intn(3) == 0 {
				chip++
			}
		}
		before := m.Latency(g, p)
		// Double every node's FLOPs: latency must not decrease.
		g2 := graph.New("rand2")
		for i := 0; i < n; i++ {
			node := g.Node(i)
			node.FLOPs *= 2
			node.ID = 0
			g2.AddNode(node)
			if i > 0 {
				g2.MustAddEdge(i-1, i, g.Edge(i-1).Bytes)
			}
		}
		return m.Latency(g2, p) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
