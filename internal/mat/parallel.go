package mat

import "mcmpart/internal/parallel"

// ParallelFlopThreshold is the approximate multiply-add count below which the
// matmul kernels stay serial: goroutine fan-out costs ~µs, so small products
// (everything in the quick-scale policy network) must not pay for it. Above
// the threshold the kernels split output rows into one contiguous block per
// worker. Row-parallel splitting preserves the serial kernels' per-element
// accumulation order exactly, so results are bit-for-bit identical at any
// worker count — the property the determinism tests pin down.
const ParallelFlopThreshold = 1 << 17

// rowRange runs fn over [0, rows) split into per-worker blocks when the flop
// estimate warrants it, serially otherwise. Extra workers are reserved from
// the process-wide kernel lane budget (parallel.AcquireLanes), so matmuls
// issued from inside an already-fanned-out layer fall back to serial
// execution instead of oversubscribing; the split never affects results.
func rowRange(rows, flops int, fn func(lo, hi int)) {
	if flops < ParallelFlopThreshold || rows < 2 {
		fn(0, rows)
		return
	}
	extra := parallel.AcquireLanes(parallel.Resolve(0, rows) - 1)
	if extra == 0 {
		fn(0, rows)
		return
	}
	defer parallel.ReleaseLanes(extra)
	parallel.ForEachBlock(extra+1, rows, func(_, lo, hi int) { fn(lo, hi) })
}
