package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	out := New(2, 2)
	Mul(out, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("Mul = %v, want %v", out.Data, want)
		}
	}
}

// naiveMul is the reference implementation for property tests.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randMat(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func approxEqual(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMulVariantsAgreeWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		out := New(m, n)
		Mul(out, a, b)
		if !approxEqual(out, naiveMul(a, b), 1e-10) {
			return false
		}
		// MulATB: aT (k x m) -> use a2 of shape k x m.
		a2 := randMat(rng, k, m)
		outT := New(m, n)
		MulATB(outT, a2, b)
		// Reference: transpose a2 then multiply.
		a2T := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				a2T.Set(j, i, a2.At(i, j))
			}
		}
		if !approxEqual(outT, naiveMul(a2T, b), 1e-10) {
			return false
		}
		// MulABT: b2 is n x k.
		b2 := randMat(rng, n, k)
		outB := New(m, n)
		MulABT(outB, a, b2)
		b2T := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				b2T.Set(j, i, b2.At(i, j))
			}
		}
		return approxEqual(outB, naiveMul(a, b2T), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	o := FromSlice(2, 2, []float64{10, 20, 30, 40})
	m.Add(o)
	if m.At(1, 1) != 44 {
		t.Fatalf("Add wrong: %v", m.Data)
	}
	m.AddScaled(-1, o)
	if m.At(0, 0) != 1 {
		t.Fatalf("AddScaled wrong: %v", m.Data)
	}
	m.Scale(2)
	if m.At(0, 1) != 4 {
		t.Fatalf("Scale wrong: %v", m.Data)
	}
	m.AddRowVector([]float64{100, 200})
	if m.At(0, 0) != 102 || m.At(1, 1) != 208 {
		t.Fatalf("AddRowVector wrong: %v", m.Data)
	}
	sums := make([]float64, 2)
	m.ColSums(sums)
	if sums[0] != 102+106 || sums[1] != 204+208 {
		t.Fatalf("ColSums wrong: %v", sums)
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatalf("Zero/MaxAbs wrong: %v", m.Data)
	}
}

func TestCloneAndCopy(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should be deep")
	}
	m.CopyFrom(c)
	if m.At(0, 0) != 99 {
		t.Fatal("CopyFrom failed")
	}
}

func TestXavierInitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(64, 32)
	m.XavierInit(rng)
	limit := math.Sqrt(6.0 / 96.0)
	var nonzero int
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %v beyond Xavier limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(m.Data)/2 {
		t.Fatal("init left too many zeros")
	}
}

func TestShapePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mul":      func() { Mul(New(1, 1), New(2, 3), New(2, 3)) },
		"fromsize": func() { FromSlice(2, 2, []float64{1}) },
		"add":      func() { New(1, 2).Add(New(2, 1)) },
		"rowvec":   func() { New(1, 2).AddRowVector([]float64{1}) },
		"negative": func() { New(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}
