// Package mat provides the small dense-matrix kernel the learning stack is
// built on: row-major float64 matrices with the handful of operations a
// GraphSAGE encoder, feed-forward heads and Adam need. Everything is
// allocation-explicit — callers own output buffers — so training loops can
// run allocation-free after warm-up.
//
//mcmlint:hotpath
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols, row-major) without copying.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: %d values for %dx%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (r, c).
func (m *Dense) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set writes the element at (r, c).
func (m *Dense) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Dense) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero sets every element to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	m.mustSameShape(src)
	copy(m.Data, src.Data)
}

func (m *Dense) mustSameShape(o *Dense) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Mul computes out = a @ b. out must be preallocated a.Rows x b.Cols and is
// overwritten. The i-k-j loop order keeps the inner loop sequential over
// both b and out for cache friendliness. Large products split output rows
// across the worker pool (see parallel.go); results are identical at any
// worker count.
func Mul(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	mulRows(out, a, b)
}

// MulAdd computes out += a @ b: the fused form of Mul for accumulation
// chains (e.g. h@Wself + agg@Wneigh in the GraphSAGE layer), saving callers
// a temporary and a second pass over out.
func MulAdd(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulAdd shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	mulRows(out, a, b)
}

// mulRows accumulates out += a @ b, row-parallel above the flop threshold.
// Each output row depends only on the matching row of a, so splitting rows
// across workers preserves the serial accumulation order exactly.
func mulRows(out, a, b *Dense) {
	rowRange(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*a.Cols : (i+1)*a.Cols]
			or := out.Data[i*out.Cols : (i+1)*out.Cols]
			for k, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range br {
					or[j] += av * bv
				}
			}
		}
	})
}

// MulATB computes out = aᵀ @ b (a is k x m, b is k x n, out is m x n).
func MulATB(out, a, b *Dense) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulATB shape mismatch (%dx%d)ᵀ@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	out.Zero()
	mulATBRows(out, a, b)
}

// MulATBAcc computes out += aᵀ @ b: the fused form of MulATB used by the
// backward passes to accumulate weight gradients directly into Param.Grad,
// eliminating the per-layer scratch product and its extra pass.
func MulATBAcc(out, a, b *Dense) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulATBAcc shape mismatch (%dx%d)ᵀ@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	mulATBRows(out, a, b)
}

// mulATBRows accumulates out += aᵀ @ b over blocks of output rows. Output
// row i reads column i of a, so rows are independent and every out element
// accumulates over k in ascending order regardless of the split.
func mulATBRows(out, a, b *Dense) {
	rowRange(a.Cols, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Data[i*out.Cols : (i+1)*out.Cols]
			for k := 0; k < a.Rows; k++ {
				av := a.Data[k*a.Cols+i]
				if av == 0 {
					continue
				}
				br := b.Data[k*b.Cols : (k+1)*b.Cols]
				for j, bv := range br {
					or[j] += av * bv
				}
			}
		}
	})
}

// MulABT computes out = a @ bᵀ (a is m x k, b is n x k, out is m x n).
func MulABT(out, a, b *Dense) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulABT shape mismatch (%dx%d)@(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	rowRange(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*a.Cols : (i+1)*a.Cols]
			or := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j := 0; j < b.Rows; j++ {
				br := b.Data[j*b.Cols : (j+1)*b.Cols]
				var sum float64
				for k, av := range ar {
					sum += av * br[k]
				}
				or[j] = sum
			}
		}
	})
}

// Axpy computes y += s * x over raw slices — the scalar-vector kernel the
// aggregation and optimizer loops share. x and y must have equal length.
func Axpy(s float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += s * v
	}
}

// Add computes m += o elementwise.
func (m *Dense) Add(o *Dense) {
	m.mustSameShape(o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// AddScaled computes m += s * o elementwise.
func (m *Dense) AddScaled(s float64, o *Dense) {
	m.mustSameShape(o)
	Axpy(s, o.Data, m.Data)
}

// Scale multiplies every element by s.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowVector adds the vector v (length Cols) to every row.
func (m *Dense) AddRowVector(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector %d values for %d cols", len(v), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, x := range v {
			row[j] += x
		}
	}
}

// ColSums accumulates the column sums of m into out (length Cols).
func (m *Dense) ColSums(out []float64) {
	if len(out) != m.Cols {
		panic(fmt.Sprintf("mat: ColSums %d values for %d cols", len(out), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, x := range row {
			out[j] += x
		}
	}
}

// XavierInit fills m with Glorot-uniform values for a fan-in x fan-out
// weight matrix.
func (m *Dense) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * limit
	}
}

// MaxAbs returns the largest absolute element (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}
