package mat

import (
	"math/rand"
	"testing"

	"mcmpart/internal/parallel"
)

// withWorkers runs fn under a temporary process-default worker count.
func withWorkers(w int, fn func()) {
	old := parallel.Default()
	parallel.SetDefault(w)
	defer parallel.SetDefault(old)
	fn()
}

// TestMulWorkerCountDeterminism pins the kernel contract: above the fan-out
// threshold, Mul/MulAdd/MulATB/MulATBAcc/MulABT produce bit-for-bit
// identical outputs at workers=1 and workers=8, because row-splitting never
// reorders any element's accumulation.
func TestMulWorkerCountDeterminism(t *testing.T) {
	const n = 96 // 96^3 ≈ 885k flops, above ParallelFlopThreshold
	if n*n*n < ParallelFlopThreshold {
		t.Fatalf("test size below parallel threshold; raise n")
	}
	rng := rand.New(rand.NewSource(7))
	a, b := New(n, n), New(n, n)
	a.XavierInit(rng)
	b.XavierInit(rng)
	// Sprinkle exact zeros to exercise the skip branches.
	for i := 0; i < n*n; i += 17 {
		a.Data[i] = 0
	}

	kernels := []struct {
		name string
		run  func(out *Dense)
	}{
		{"Mul", func(out *Dense) { Mul(out, a, b) }},
		{"MulAdd", func(out *Dense) { out.Zero(); MulAdd(out, a, b); MulAdd(out, a, b) }},
		{"MulATB", func(out *Dense) { MulATB(out, a, b) }},
		{"MulATBAcc", func(out *Dense) { out.Zero(); MulATBAcc(out, a, b); MulATBAcc(out, a, b) }},
		{"MulABT", func(out *Dense) { MulABT(out, a, b) }},
	}
	for _, k := range kernels {
		serial, parallel8 := New(n, n), New(n, n)
		withWorkers(1, func() { k.run(serial) })
		withWorkers(8, func() { k.run(parallel8) })
		for i := range serial.Data {
			if serial.Data[i] != parallel8.Data[i] {
				t.Fatalf("%s: element %d differs: workers=1 %v, workers=8 %v",
					k.name, i, serial.Data[i], parallel8.Data[i])
			}
		}
	}
}

// TestMulAddMatchesMulPlusAdd checks the fused kernel against its unfused
// composition.
func TestMulAddMatchesMulPlusAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b := New(13, 7), New(7, 11)
	a.XavierInit(rng)
	b.XavierInit(rng)
	base := New(13, 11)
	base.XavierInit(rng)

	want := base.Clone()
	prod := New(13, 11)
	Mul(prod, a, b)
	want.Add(prod)

	got := base.Clone()
	MulAdd(got, a, b)
	for i := range want.Data {
		// Fused accumulation rounds differently from compute-then-add;
		// only near-equality is promised between the two formulations.
		if d := got.Data[i] - want.Data[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("MulAdd element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestMulATBAccMatchesMulATBPlusAdd checks the fused transpose kernel.
func TestMulATBAccMatchesMulATBPlusAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := New(9, 13), New(9, 5)
	a.XavierInit(rng)
	b.XavierInit(rng)
	base := New(13, 5)
	base.XavierInit(rng)

	want := base.Clone()
	prod := New(13, 5)
	MulATB(prod, a, b)
	want.Add(prod)

	got := base.Clone()
	MulATBAcc(got, a, b)
	for i := range want.Data {
		if d := got.Data[i] - want.Data[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("MulATBAcc element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	for i, want := range []float64{12, 24, 36} {
		if y[i] != want {
			t.Fatalf("Axpy y[%d] = %v, want %v", i, y[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Axpy length mismatch did not panic")
		}
	}()
	Axpy(1, []float64{1}, []float64{1, 2})
}
