package search

import (
	"math/rand"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/rl"
	"mcmpart/internal/workload"
)

func modelEnv(t *testing.T, g *graph.Graph, pkg *mcm.Package) *rl.Env {
	t.Helper()
	pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := costmodel.New(pkg)
	eval := func(p partition.Partition) (float64, bool) { return model.Evaluate(g, p) }
	base := Greedy(g, pkg.Chips, pkg.SRAMBytes)
	baseTh, _ := eval(base)
	if baseTh <= 0 {
		t.Fatal("greedy baseline has zero throughput")
	}
	return rl.NewEnv(rl.NewGraphContext(g), pr, eval, baseTh)
}

func TestGreedyProducesValidPartitions(t *testing.T) {
	pkg := mcm.Edge36()
	for _, g := range workload.CorpusGraphs(2)[:20] {
		p := Greedy(g, pkg.Chips, pkg.SRAMBytes)
		if err := p.Validate(g, pkg.Chips); err != nil {
			t.Errorf("%s: greedy invalid: %v", g.Name(), err)
		}
	}
	// BERT too, including the memory budget behavior.
	bert := workload.BERT()
	p := Greedy(bert, pkg.Chips, pkg.SRAMBytes)
	if err := p.Validate(bert, pkg.Chips); err != nil {
		t.Fatalf("greedy BERT invalid: %v", err)
	}
	// The fill-style heuristic deliberately underuses the package — that
	// imbalance is the headroom the paper's methods exploit.
	if used := p.NumChipsUsed(); used < 5 || used > 25 {
		t.Fatalf("greedy BERT uses %d chips, want the fill heuristic's 5-25", used)
	}
}

func TestGreedyRespectsMemoryBudget(t *testing.T) {
	// Two fat-weight ops then many light ones: greedy must cut after the
	// first fat op rather than stack both.
	g := graph.New("fat")
	for i := 0; i < 10; i++ {
		pb := int64(0)
		if i < 2 {
			pb = 6 << 20
		}
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, ParamBytes: pb, OutputBytes: 16})
		if i > 0 {
			g.MustAddEdge(i-1, i, 16)
		}
	}
	p := Greedy(g, 4, 8<<20) // budget 0.7*8MiB = 5.6MiB
	if p[0] == p[1] {
		t.Fatalf("greedy stacked 12 MiB of weights on one 8 MiB chip: %v", p)
	}
}

func TestRandomSearchImproves(t *testing.T) {
	g := workload.MLP(workload.MLPConfig{Name: "m", Layers: 8, Input: 512, Hidden: 1024, Output: 128, Batch: 32})
	env := modelEnv(t, g, mcm.Dev8())
	rng := rand.New(rand.NewSource(1))
	Random(env, 40, rng)
	if env.Samples != 40 {
		t.Fatalf("samples = %d, want 40", env.Samples)
	}
	if env.BestImprovement() <= 0 {
		t.Fatal("random search found nothing")
	}
	// History must be monotone and end at the best.
	last := env.History[len(env.History)-1]
	if last != env.BestImprovement() {
		t.Fatalf("history end %v != best %v", last, env.BestImprovement())
	}
}

func TestAnnealImprovesAndRespectsBudget(t *testing.T) {
	g := workload.MLP(workload.MLPConfig{Name: "m", Layers: 8, Input: 512, Hidden: 1024, Output: 128, Batch: 32})
	env := modelEnv(t, g, mcm.Dev8())
	rng := rand.New(rand.NewSource(2))
	Anneal(env, 40, SAConfig{}, rng)
	if env.Samples < 40 {
		t.Fatalf("samples = %d, want >= 40", env.Samples)
	}
	if env.BestImprovement() <= 0 {
		t.Fatal("SA found nothing")
	}
}

func TestSearchBeatsGreedyOnImbalancedGraph(t *testing.T) {
	// A graph with wildly varying node costs: node-count-balanced greedy
	// is far from compute-balanced, so even a modest random search should
	// find a better partition.
	g := workload.BuildBERT(func() workload.BERTConfig {
		cfg := workload.DefaultBERTConfig()
		cfg.Layers = 2
		cfg.SeqLen = 64
		return cfg
	}())
	env := modelEnv(t, g, mcm.Dev8())
	rng := rand.New(rand.NewSource(3))
	Random(env, 60, rng)
	if env.BestImprovement() <= 1.0 {
		t.Fatalf("random search (%.3fx) should beat the greedy baseline", env.BestImprovement())
	}
}
