package search

import (
	"context"
	"math/rand"
	"testing"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/rl"
	"mcmpart/internal/workload"
)

func modelEnv(t *testing.T, g *graph.Graph, pkg *mcm.Package) *rl.Env {
	t.Helper()
	pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := costmodel.New(pkg)
	base := Greedy(g, pkg.Chips, pkg.SRAMBytes)
	baseTh, _ := model.Evaluate(g, base)
	if baseTh <= 0 {
		t.Fatal("greedy baseline has zero throughput")
	}
	return rl.NewEnv(rl.NewGraphContext(g), pr, model, baseTh)
}

func TestGreedyProducesValidPartitions(t *testing.T) {
	pkg := mcm.Edge36()
	for _, g := range workload.CorpusGraphs(2)[:20] {
		p := Greedy(g, pkg.Chips, pkg.SRAMBytes)
		if err := p.Validate(g, pkg.Chips); err != nil {
			t.Errorf("%s: greedy invalid: %v", g.Name(), err)
		}
	}
	// BERT too, including the memory budget behavior.
	bert := workload.BERT()
	p := Greedy(bert, pkg.Chips, pkg.SRAMBytes)
	if err := p.Validate(bert, pkg.Chips); err != nil {
		t.Fatalf("greedy BERT invalid: %v", err)
	}
	// The fill-style heuristic deliberately underuses the package — that
	// imbalance is the headroom the paper's methods exploit.
	if used := p.NumChipsUsed(); used < 5 || used > 25 {
		t.Fatalf("greedy BERT uses %d chips, want the fill heuristic's 5-25", used)
	}
}

func TestGreedyRespectsMemoryBudget(t *testing.T) {
	// Two fat-weight ops then many light ones: greedy must cut after the
	// first fat op rather than stack both.
	g := graph.New("fat")
	for i := 0; i < 10; i++ {
		pb := int64(0)
		if i < 2 {
			pb = 6 << 20
		}
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, ParamBytes: pb, OutputBytes: 16})
		if i > 0 {
			g.MustAddEdge(i-1, i, 16)
		}
	}
	p := Greedy(g, 4, 8<<20) // budget 0.7*8MiB = 5.6MiB
	if p[0] == p[1] {
		t.Fatalf("greedy stacked 12 MiB of weights on one 8 MiB chip: %v", p)
	}
}

func TestRandomSearchImproves(t *testing.T) {
	g := workload.MLP(workload.MLPConfig{Name: "m", Layers: 8, Input: 512, Hidden: 1024, Output: 128, Batch: 32})
	env := modelEnv(t, g, mcm.Dev8())
	rng := rand.New(rand.NewSource(1))
	if err := Random(context.Background(), env, 40, rng); err != nil {
		t.Fatal(err)
	}
	if env.Samples != 40 {
		t.Fatalf("samples = %d, want 40", env.Samples)
	}
	if env.BestImprovement() <= 0 {
		t.Fatal("random search found nothing")
	}
	// History must be monotone and end at the best.
	last := env.History[len(env.History)-1]
	if last != env.BestImprovement() {
		t.Fatalf("history end %v != best %v", last, env.BestImprovement())
	}
}

func TestAnnealImprovesAndRespectsBudget(t *testing.T) {
	g := workload.MLP(workload.MLPConfig{Name: "m", Layers: 8, Input: 512, Hidden: 1024, Output: 128, Batch: 32})
	env := modelEnv(t, g, mcm.Dev8())
	rng := rand.New(rand.NewSource(2))
	if err := Anneal(context.Background(), env, 40, SAConfig{}, rng); err != nil {
		t.Fatal(err)
	}
	if env.Samples < 40 {
		t.Fatalf("samples = %d, want >= 40", env.Samples)
	}
	if env.BestImprovement() <= 0 {
		t.Fatal("SA found nothing")
	}
}

// TestBudgetNeverOverrun pins the evaluation-budget contract for every
// search strategy at the edge cases: budget 0 must consume no samples at
// all (Anneal used to burn its seeding evaluation before the first budget
// check) and budget 1 exactly one.
func TestBudgetNeverOverrun(t *testing.T) {
	g := workload.MLP(workload.MLPConfig{Name: "m", Layers: 6, Input: 128, Hidden: 256, Output: 64, Batch: 8})
	ctx := context.Background()
	strategies := map[string]func(env *rl.Env, budget int, rng *rand.Rand){
		"random": func(env *rl.Env, budget int, rng *rand.Rand) { Random(ctx, env, budget, rng) },
		"anneal": func(env *rl.Env, budget int, rng *rand.Rand) { Anneal(ctx, env, budget, SAConfig{}, rng) },
	}
	for name, run := range strategies {
		for _, budget := range []int{0, 1, 2, 7} {
			env := modelEnv(t, g, mcm.Dev4())
			run(env, budget, rand.New(rand.NewSource(int64(budget)+5)))
			if env.Samples > budget {
				t.Errorf("%s with budget %d consumed %d samples", name, budget, env.Samples)
			}
			if budget > 0 && env.Samples == 0 {
				t.Errorf("%s with budget %d consumed no samples", name, budget)
			}
		}
	}
}

func TestGreedyPackageMatchesGreedyOnHomogeneous(t *testing.T) {
	pkg := mcm.Dev8()
	for _, g := range workload.CorpusGraphs(4)[:10] {
		a := Greedy(g, pkg.Chips, pkg.SRAMBytes)
		b := GreedyPackage(g, pkg)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("%s: GreedyPackage diverges from Greedy at node %d: %v vs %v", g.Name(), v, a[v], b[v])
			}
		}
	}
}

func TestGreedyPackageRespectsPerChipBudgets(t *testing.T) {
	// Alternating fat ops on a big/little package: the little dies' 0.7 *
	// 8 MiB watermark must force earlier cuts than the big dies'.
	g := graph.New("fat")
	for i := 0; i < 8; i++ {
		g.AddNode(graph.Node{Op: graph.OpMatMul, FLOPs: 1e6, ParamBytes: 5 << 20, OutputBytes: 16})
		if i > 0 {
			g.MustAddEdge(i-1, i, 16)
		}
	}
	pkg := mcm.Het4()
	p := GreedyPackage(g, pkg)
	if err := p.Validate(g, pkg.Chips); err != nil {
		t.Fatal(err)
	}
	loads := p.Loads(g, pkg.Chips)
	// All chips but the last respect their own watermark plus at most the
	// op that crossed it; the last chip absorbs any overflow by design.
	for c := 0; c < pkg.Chips-1; c++ {
		if budget := pkg.ChipSRAM(c) * 7 / 10; loads[c].ParamBytes > budget+5<<20 {
			t.Errorf("chip %d holds %d bytes of weights against budget %d", c, loads[c].ParamBytes, budget)
		}
	}
	// The little die 2 must cut earlier than the big dies: it cannot hold
	// more weights than a big die did.
	if loads[2].ParamBytes > loads[0].ParamBytes {
		t.Errorf("little chip 2 (%d bytes) loaded beyond big chip 0 (%d bytes)", loads[2].ParamBytes, loads[0].ParamBytes)
	}
}

func TestSearchBeatsGreedyOnImbalancedGraph(t *testing.T) {
	// A graph with wildly varying node costs: node-count-balanced greedy
	// is far from compute-balanced, so even a modest random search should
	// find a better partition.
	g := workload.BuildBERT(func() workload.BERTConfig {
		cfg := workload.DefaultBERTConfig()
		cfg.Layers = 2
		cfg.SeqLen = 64
		return cfg
	}())
	env := modelEnv(t, g, mcm.Dev8())
	rng := rand.New(rand.NewSource(3))
	if err := Random(context.Background(), env, 60, rng); err != nil {
		t.Fatal(err)
	}
	if env.BestImprovement() <= 1.0 {
		t.Fatalf("random search (%.3fx) should beat the greedy baseline", env.BestImprovement())
	}
}
