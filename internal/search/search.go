// Package search implements the paper's non-learned comparison methods
// (Sec. 5.1): the greedy compiler heuristic used as the normalization
// baseline, random search through the constraint solver, and simulated
// annealing over the solver's input distribution.
//
//mcmlint:deterministic
package search

import (
	"context"
	"math"
	"math/rand"

	"mcmpart/internal/graph"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/rl"
)

// Random is the paper's Random search strategy: a fixed uniform probability
// distribution handed to the constraint solver's SAMPLE mode, best-of-budget
// (each iteration consumes one evaluation). Progress is recorded in the
// environment's History. Cancelling ctx stops before the next sample and
// returns ctx.Err(); the environment keeps its best-so-far trajectory.
func Random(ctx context.Context, env *rl.Env, budget int, rng *rand.Rand) error {
	for env.Samples < budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		env.StepProbs(nil, rng)
	}
	return nil
}

// SAConfig tunes simulated annealing. Zero values take defaults (tuned
// empirically, as the paper notes its baselines were).
type SAConfig struct {
	// InitTemp is the initial Metropolis temperature in units of reward
	// (improvement ratio). Default 0.2.
	InitTemp float64
	// Cooling multiplies the temperature each iteration. Default 0.995.
	Cooling float64
	// PerturbFrac is the fraction of nodes whose distribution rows are
	// re-randomized per move. Default 0.05.
	PerturbFrac float64
}

func (c SAConfig) withDefaults() SAConfig {
	if c.InitTemp == 0 {
		c.InitTemp = 0.2
	}
	if c.Cooling == 0 {
		c.Cooling = 0.995
	}
	if c.PerturbFrac == 0 {
		c.PerturbFrac = 0.05
	}
	return c
}

// Anneal is the paper's SA strategy: start from the uniform distribution;
// each iteration re-randomizes the distribution rows of a random subset of
// nodes, generates a valid partition through the solver's SAMPLE mode,
// evaluates it, and accepts or rejects the new distribution by the
// Metropolis rule. Cancelling ctx stops before the next sample and returns
// ctx.Err(); the environment keeps its best-so-far trajectory.
func Anneal(ctx context.Context, env *rl.Env, budget int, cfg SAConfig, rng *rand.Rand) error {
	// The seeding evaluation below consumes one sample; without this guard
	// a zero (or already exhausted) budget would still burn it and overrun
	// the evaluation budget the figures' x-axes are measured in.
	if env.Samples >= budget {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	n := env.Ctx.G.NumNodes()
	c := env.Part.Chips()
	current := make([][]float64, n)
	flat := make([]float64, n*c)
	for i := range current {
		current[i] = flat[i*c : (i+1)*c]
		for j := range current[i] {
			current[i][j] = 1 / float64(c)
		}
	}
	currentReward := env.StepProbs(current, rng)
	temp := cfg.InitTemp
	k := int(cfg.PerturbFrac * float64(n))
	if k < 1 {
		k = 1
	}
	proposal := make([][]float64, n)
	pflat := make([]float64, n*c)
	for i := range proposal {
		proposal[i] = pflat[i*c : (i+1)*c]
	}
	for env.Samples < budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		copy(pflat, flat)
		//mcmlint:ignore ctxloop perturbing k rows takes no samples; the annealing loop above checks ctx every step
		for i := 0; i < k; i++ {
			row := proposal[rng.Intn(n)]
			var sum float64
			for j := range row {
				row[j] = -math.Log(1 - rng.Float64()) // Exp(1) -> Dirichlet(1)
				sum += row[j]
			}
			for j := range row {
				row[j] /= sum
			}
		}
		r := env.StepProbs(proposal, rng)
		if r >= currentReward || rng.Float64() < math.Exp((r-currentReward)/temp) {
			copy(flat, pflat)
			currentReward = r
		}
		temp *= cfg.Cooling
	}
	return nil
}

// Greedy is the production compiler's O(N) heuristic the paper normalizes
// all throughput numbers against: walk the graph in topological order and
// fill each chip with operations until a conservative memory watermark,
// then move to the next chip, placing every cut at the next gap no edge
// span straddles twice. Filling to capacity is what a validity-first
// backend does by default — it uses as few chips as memory allows and is
// oblivious to pipeline balance, which is exactly the headroom the paper's
// search methods exploit (their BERT partitions reach ~2.6x this baseline).
func Greedy(g *graph.Graph, chips int, sramBytes int64) partition.Partition {
	return greedyBudget(g, chips, func(int) int64 { return sramBytes })
}

// GreedyPackage runs the greedy heuristic against a concrete package,
// filling each chip to its own SRAM watermark — the heterogeneity-aware
// form of Greedy. On homogeneous packages it is bit-identical to
// Greedy(g, pkg.Chips, pkg.SRAMBytes).
func GreedyPackage(g *graph.Graph, pkg *mcm.Package) partition.Partition {
	return greedyBudget(g, pkg.Chips, pkg.ChipSRAM)
}

// greedyBudget is the shared implementation: sram(c) is chip c's SRAM size.
func greedyBudget(g *graph.Graph, chips int, sram func(int) int64) partition.Partition {
	order, err := g.TopoOrder()
	if err != nil {
		panic("search: Greedy needs a DAG: " + err.Error())
	}
	n := len(order)
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	// nextGap[g] = earliest legal gap after a boundary at gap g (no edge
	// span may contain two boundaries).
	nextGap := make([]int, n)
	for i := range nextGap {
		nextGap[i] = i + 1
	}
	for _, e := range g.Edges() {
		if pu := pos[e.From]; pos[e.To] > nextGap[pu] {
			nextGap[pu] = pos[e.To]
		}
	}
	for i := 1; i < n; i++ {
		if nextGap[i-1] > nextGap[i] {
			nextGap[i] = nextGap[i-1]
		}
	}
	memBudget := sram(0) * 7 / 10
	p := make(partition.Partition, n)
	chip := 0
	var memOnChip, maxOut int64
	minGap := 0 // boundaries below this gap would double-cut an edge span
	for idx, v := range order {
		node := g.Node(v)
		out := maxOut
		if node.OutputBytes > out {
			out = node.OutputBytes
		}
		// Conservative working-set estimate: pinned weights plus a few
		// live activation buffers of the largest tensor seen (fan-outs,
		// staged I/O and pipeline double-buffering).
		demand := memOnChip + node.ParamBytes + 4*out
		if memOnChip > 0 && demand > memBudget && chip < chips-1 && idx > 0 && idx-1 >= minGap {
			chip++
			memBudget = sram(chip) * 7 / 10
			memOnChip = 0
			maxOut = 0
			minGap = nextGap[idx-1]
		}
		p[v] = chip
		memOnChip += node.ParamBytes
		if node.OutputBytes > maxOut {
			maxOut = node.OutputBytes
		}
	}
	return p
}

// RandomPartition returns one uniform solver sample — the paper's "random
// partition" quick heuristic.
func RandomPartition(env *rl.Env, rng *rand.Rand) partition.Partition {
	env.StepProbs(nil, rng)
	return env.Best
}
