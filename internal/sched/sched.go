// Package sched implements the compiler-backend pass the paper's dynamic
// constraint H(G,f) hinges on: given a partition, it list-schedules the
// operations of each chip and computes the peak SRAM working set. Whether a
// partition fits in memory "requires knowledge of the order of scheduling of
// operations that is only determined at a later compilation pass" (Sec. 1) —
// this package is that later pass.
//
//mcmlint:deterministic
package sched

import (
	"fmt"

	"mcmpart/internal/graph"
	"mcmpart/internal/partition"
)

// ChipSchedule is the execution plan and memory profile of one chip.
type ChipSchedule struct {
	// Ops lists the node IDs scheduled on the chip, in execution order
	// (topological within the chip).
	Ops []int
	// ParamBytes is the weight footprint pinned in SRAM for the whole run.
	ParamBytes int64
	// PeakActivationBytes is the maximum live activation working set over
	// the schedule, including buffers staged for and from remote chips.
	PeakActivationBytes int64
	// BytesIn and BytesOut are the chip's cut-edge traffic.
	BytesIn, BytesOut int64
}

// PeakBytes returns the chip's total SRAM demand assuming the given
// pipeline buffering factor on activations (2 = double buffering, the
// steady-state of a pipelined MCM).
func (cs *ChipSchedule) PeakBytes(pipelineFactor float64) int64 {
	return cs.ParamBytes + int64(pipelineFactor*float64(cs.PeakActivationBytes))
}

// Compute builds per-chip schedules for the partition. It returns an error
// if the partition is malformed; static constraint checking is the caller's
// concern (see partition.Validate).
func Compute(g *graph.Graph, p partition.Partition, chips int) ([]ChipSchedule, error) {
	if len(p) != g.NumNodes() {
		return nil, fmt.Errorf("sched: partition has %d entries for %d nodes", len(p), g.NumNodes())
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	scheds := make([]ChipSchedule, chips)
	for _, v := range order {
		c := p[v]
		if c < 0 || c >= chips {
			return nil, fmt.Errorf("sched: node %d on chip %d out of range", v, c)
		}
		scheds[c].Ops = append(scheds[c].Ops, v)
		scheds[c].ParamBytes += g.Node(v).ParamBytes
	}
	for c := range scheds {
		analyzeLiveness(g, p, &scheds[c], c)
	}
	for _, e := range g.Edges() {
		if p[e.From] != p[e.To] {
			scheds[p[e.From]].BytesOut += e.Bytes
			scheds[p[e.To]].BytesIn += e.Bytes
		}
	}
	return scheds, nil
}

// analyzeLiveness walks the chip's schedule computing the peak live
// activation bytes. An op's output is allocated when the op runs and freed
// after its last local consumer; tensors produced for remote chips stay live
// until the end of the stage (they are drained by the inter-chip links), and
// tensors arriving from remote chips are staged from the start of the stage.
func analyzeLiveness(g *graph.Graph, p partition.Partition, cs *ChipSchedule, chip int) {
	if len(cs.Ops) == 0 {
		return
	}
	pos := make(map[int]int, len(cs.Ops))
	for i, v := range cs.Ops {
		pos[v] = i
	}
	// First pass: freeAt[i] accumulates the bytes whose last local use is
	// schedule slot i. Outputs read by remote chips (or by nobody — stage
	// outputs) stay live until the link drains them at stage end.
	freeAt := make([]int64, len(cs.Ops))
	for i, v := range cs.Ops {
		last := i
		remote := g.OutDegree(v) == 0
		for _, ei := range g.OutEdges(v) {
			e := g.Edge(int(ei))
			if p[e.To] == chip {
				if j := pos[e.To]; j > last {
					last = j
				}
			} else {
				remote = true
			}
		}
		if !remote {
			freeAt[last] += g.Node(v).OutputBytes
		}
	}
	// Second pass: interleave allocation and release, tracking the peak.
	// Remote inputs are staged before the stage begins.
	var live int64
	for _, v := range cs.Ops {
		for _, ei := range g.InEdges(v) {
			e := g.Edge(int(ei))
			if p[e.From] != chip {
				live += e.Bytes
			}
		}
	}
	peak := live
	for i, v := range cs.Ops {
		live += g.Node(v).OutputBytes
		if live > peak {
			peak = live
		}
		live -= freeAt[i]
	}
	cs.PeakActivationBytes = peak
}
