package sched

import (
	"math/rand"
	"testing"

	"mcmpart/internal/graph"
	"mcmpart/internal/partition"
)

func chainGraph(t *testing.T, n int, outBytes int64) *graph.Graph {
	t.Helper()
	g := graph.New("chain")
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{Name: "op", Op: graph.OpMatMul, FLOPs: 100, ParamBytes: 10, OutputBytes: outBytes})
		if i > 0 {
			g.MustAddEdge(i-1, i, outBytes)
		}
	}
	return g
}

func TestComputeBasics(t *testing.T) {
	g := chainGraph(t, 4, 8)
	p := partition.Partition{0, 0, 1, 1}
	scheds, err := Compute(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds[0].Ops) != 2 || len(scheds[1].Ops) != 2 {
		t.Fatalf("ops split wrong: %v / %v", scheds[0].Ops, scheds[1].Ops)
	}
	if scheds[0].ParamBytes != 20 || scheds[1].ParamBytes != 20 {
		t.Fatalf("param split wrong: %d / %d", scheds[0].ParamBytes, scheds[1].ParamBytes)
	}
	if scheds[0].BytesOut != 8 || scheds[1].BytesIn != 8 {
		t.Fatalf("traffic wrong: out=%d in=%d", scheds[0].BytesOut, scheds[1].BytesIn)
	}
	// Chip order is topological.
	if scheds[0].Ops[0] != 0 || scheds[0].Ops[1] != 1 {
		t.Fatalf("schedule not topological: %v", scheds[0].Ops)
	}
}

func TestLivenessChainFreesBuffers(t *testing.T) {
	// A chain on one chip only ever keeps producer+consumer outputs live:
	// peak should be 2 buffers (the final output lives to stage end).
	g := chainGraph(t, 10, 100)
	p := make(partition.Partition, 10)
	scheds, err := Compute(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := scheds[0].PeakActivationBytes; got != 200 {
		t.Fatalf("chain peak = %d, want 200 (two live buffers)", got)
	}
}

func TestLivenessFanOutHoldsBuffer(t *testing.T) {
	// Node 0 feeds nodes 1..4; its output must stay live until node 4.
	g := graph.New("fan")
	g.AddNode(graph.Node{OutputBytes: 100})
	for i := 1; i <= 4; i++ {
		g.AddNode(graph.Node{OutputBytes: 10})
		g.MustAddEdge(0, i, 100)
	}
	sink := g.AddNode(graph.Node{OutputBytes: 1})
	for i := 1; i <= 4; i++ {
		g.MustAddEdge(i, sink, 10)
	}
	p := make(partition.Partition, g.NumNodes())
	scheds, err := Compute(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Peak: 100 (node 0, live until branch 4 consumes it) + 4x10.
	if got := scheds[0].PeakActivationBytes; got != 140 {
		t.Fatalf("fan-out peak = %d, want 140", got)
	}
}

func TestRemoteBuffersCounted(t *testing.T) {
	g := chainGraph(t, 2, 64)
	p := partition.Partition{0, 1}
	scheds, err := Compute(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Chip 0: node 0's output goes remote, stays live: peak 64.
	if scheds[0].PeakActivationBytes != 64 {
		t.Fatalf("chip0 peak = %d, want 64", scheds[0].PeakActivationBytes)
	}
	// Chip 1: staged input 64 + own output 64 (sink holds to stage end).
	if scheds[1].PeakActivationBytes != 128 {
		t.Fatalf("chip1 peak = %d, want 128", scheds[1].PeakActivationBytes)
	}
}

func TestPeakBytesAppliesPipelineFactor(t *testing.T) {
	cs := ChipSchedule{ParamBytes: 1000, PeakActivationBytes: 100}
	if got := cs.PeakBytes(2); got != 1200 {
		t.Fatalf("PeakBytes = %d, want 1200", got)
	}
	if got := cs.PeakBytes(1); got != 1100 {
		t.Fatalf("PeakBytes = %d, want 1100", got)
	}
}

// TestPeakBytesProperties checks, over randomized schedules, that PeakBytes
// is non-negative and monotone in the pipeline factor (more buffering can
// never shrink the SRAM demand).
func TestPeakBytesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		cs := ChipSchedule{
			ParamBytes:          int64(rng.Intn(1 << 30)),
			PeakActivationBytes: int64(rng.Intn(1 << 30)),
		}
		factors := []float64{0, 0.5, 1, 1.5, 2, 3 + rng.Float64()}
		prev := int64(-1)
		for _, f := range factors {
			got := cs.PeakBytes(f)
			if got < 0 {
				t.Fatalf("PeakBytes(%v) = %d < 0 for %+v", f, got, cs)
			}
			if got < cs.ParamBytes {
				t.Fatalf("PeakBytes(%v) = %d below pinned weights %d", f, got, cs.ParamBytes)
			}
			if got < prev {
				t.Fatalf("PeakBytes not monotone in pipeline factor: %d after %d at %v for %+v", got, prev, f, cs)
			}
			prev = got
		}
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	g := chainGraph(t, 3, 8)
	if _, err := Compute(g, partition.Partition{0}, 2); err == nil {
		t.Fatal("short partition should fail")
	}
	if _, err := Compute(g, partition.Partition{0, 0, 9}, 2); err == nil {
		t.Fatal("chip out of range should fail")
	}
}

func TestEmptyChipsAllowed(t *testing.T) {
	g := chainGraph(t, 3, 8)
	scheds, err := Compute(g, partition.Partition{0, 0, 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < 4; c++ {
		if len(scheds[c].Ops) != 0 || scheds[c].PeakActivationBytes != 0 {
			t.Fatalf("chip %d should be empty: %+v", c, scheds[c])
		}
	}
}
