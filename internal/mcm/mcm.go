// Package mcm describes the target hardware: a multi-chip-module (MCM)
// package of accelerator chiplets joined by an inter-chip interconnect. The
// paper's platform is a package of identical dies on a uni-directional ring
// (Dasari et al., US patent 10,936,942) and remains the default; the
// descriptor also models heterogeneous chiplets (per-chip SRAM and compute
// arrays, big/little dies as in Odema et al.'s heterogeneous-chiplet
// scheduling work) and pluggable interconnect topologies (bidirectional
// ring, 2D mesh) behind the Topology abstraction.
//
// The descriptor exposes exactly the quantities the paper's formulation and
// cost models depend on: the number of chips C (the action space of the
// partitioner), per-chip SRAM (the dynamic memory constraint), per-chip
// compute rate, and link bandwidth/latency (inter-chip communication cost).
// The real hardware is proprietary; every experiment in this repository runs
// against this descriptor plus the simulator in internal/hwsim.
//
//mcmlint:deterministic
package mcm

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Package describes an MCM accelerator package.
type Package struct {
	// Name labels the configuration, e.g. "edge36".
	Name string `json:"name"`
	// Chips is the number of chiplets C. Chip IDs are 0..Chips-1; pipeline
	// stages are still numbered in dataflow order regardless of topology.
	Chips int `json:"chips"`
	// SRAMBytes is the on-chip memory of each chiplet when the package is
	// homogeneous. Weights of the ops placed on a chip plus live
	// activations must fit in it. ChipSRAMBytes overrides it per chip.
	SRAMBytes int64 `json:"sram_bytes"`
	// PeakFLOPs is each chiplet's peak compute rate in FLOP/s when the
	// package is homogeneous. ChipPeakFLOPs overrides it per chip.
	PeakFLOPs float64 `json:"peak_flops"`
	// LinkBandwidth is the bandwidth of each inter-chip link in bytes/s.
	LinkBandwidth float64 `json:"link_bandwidth"`
	// LinkLatency is the fixed per-hop transfer latency in seconds.
	LinkLatency float64 `json:"link_latency"`

	// ChipSRAMBytes, when non-empty, gives each chiplet its own SRAM size
	// (length must equal Chips). Heterogeneous packages model big/little
	// dies; chips without an entry do not exist.
	ChipSRAMBytes []int64 `json:"chip_sram_bytes,omitempty"`
	// ChipPeakFLOPs, when non-empty, gives each chiplet its own peak
	// compute rate (length must equal Chips).
	ChipPeakFLOPs []float64 `json:"chip_peak_flops,omitempty"`
	// Topology selects the interconnect; empty means TopoRing, the paper's
	// uni-directional ring, which keeps pre-topology package JSON and all
	// existing presets bit-identical.
	Topology TopologyKind `json:"topology,omitempty"`
	// MeshRows is the row count of a TopoMesh package (columns are
	// Chips/MeshRows). It must be zero for other topologies.
	MeshRows int `json:"mesh_rows,omitempty"`
}

// Validate checks that the package parameters are physically meaningful.
func (p *Package) Validate() error {
	switch {
	case p.Chips <= 0:
		return fmt.Errorf("mcm: package %q has %d chips", p.Name, p.Chips)
	case p.Chips > MaxChips:
		return fmt.Errorf("mcm: package %q has %d chips; the solver supports at most %d", p.Name, p.Chips, MaxChips)
	case len(p.ChipSRAMBytes) == 0 && p.SRAMBytes <= 0:
		return fmt.Errorf("mcm: package %q has non-positive SRAM", p.Name)
	case len(p.ChipPeakFLOPs) == 0 && p.PeakFLOPs <= 0:
		return fmt.Errorf("mcm: package %q has non-positive compute rate", p.Name)
	case p.LinkBandwidth <= 0:
		return fmt.Errorf("mcm: package %q has non-positive link bandwidth", p.Name)
	case p.LinkLatency < 0:
		return fmt.Errorf("mcm: package %q has negative link latency", p.Name)
	}
	if n := len(p.ChipSRAMBytes); n != 0 {
		if n != p.Chips {
			return fmt.Errorf("mcm: package %q has %d per-chip SRAM entries for %d chips", p.Name, n, p.Chips)
		}
		for c, b := range p.ChipSRAMBytes {
			if b <= 0 {
				return fmt.Errorf("mcm: package %q chip %d has non-positive SRAM", p.Name, c)
			}
		}
	}
	if n := len(p.ChipPeakFLOPs); n != 0 {
		if n != p.Chips {
			return fmt.Errorf("mcm: package %q has %d per-chip compute entries for %d chips", p.Name, n, p.Chips)
		}
		for c, f := range p.ChipPeakFLOPs {
			if f <= 0 {
				return fmt.Errorf("mcm: package %q chip %d has non-positive compute rate", p.Name, c)
			}
		}
	}
	if p.Topology != TopoMesh && p.MeshRows != 0 {
		return fmt.Errorf("mcm: package %q sets mesh_rows=%d but topology is %q", p.Name, p.MeshRows, p.TopologyKind())
	}
	if _, err := p.Topo(); err != nil {
		return fmt.Errorf("mcm: package %q: %w", p.Name, err)
	}
	return nil
}

// MaxChips is the largest chip count supported by the constraint solver's
// bitset domains.
const MaxChips = 64

// ErrTooManyChips is returned when a package exceeds MaxChips.
var ErrTooManyChips = errors.New("mcm: too many chips")

// TopologyKind returns the package's topology with the empty value
// normalized to the default uni-directional ring.
func (p *Package) TopologyKind() TopologyKind {
	if p.Topology == "" {
		return TopoRing
	}
	return p.Topology
}

// Topo returns the routing arithmetic for the package's interconnect.
func (p *Package) Topo() (Topology, error) {
	return NewTopology(p.Topology, p.Chips, p.MeshRows)
}

// Heterogeneous reports whether the package models chiplets with unequal
// SRAM or compute.
func (p *Package) Heterogeneous() bool {
	return len(p.ChipSRAMBytes) != 0 || len(p.ChipPeakFLOPs) != 0
}

// ChipSRAM returns chip c's SRAM size in bytes.
func (p *Package) ChipSRAM(c int) int64 {
	if len(p.ChipSRAMBytes) != 0 {
		return p.ChipSRAMBytes[c]
	}
	return p.SRAMBytes
}

// ChipFLOPs returns chip c's peak compute rate in FLOP/s.
func (p *Package) ChipFLOPs(c int) float64 {
	if len(p.ChipPeakFLOPs) != 0 {
		return p.ChipPeakFLOPs[c]
	}
	return p.PeakFLOPs
}

// MinChipSRAM returns the smallest chiplet SRAM in the package.
func (p *Package) MinChipSRAM() int64 {
	min := p.ChipSRAM(0)
	for c := 1; c < p.Chips; c++ {
		if s := p.ChipSRAM(c); s < min {
			min = s
		}
	}
	return min
}

// MaxChipFLOPs returns the fastest chiplet's peak rate in the package.
func (p *Package) MaxChipFLOPs() float64 {
	max := p.ChipFLOPs(0)
	for c := 1; c < p.Chips; c++ {
		if f := p.ChipFLOPs(c); f > max {
			max = f
		}
	}
	return max
}

// Hops returns the number of links a transfer from chip src to chip dst
// traverses on the package's topology. It panics when the topology admits no
// route — on the default uni-directional ring that is any dst < src, a
// transfer that violates the acyclic dataflow constraint and should have
// been rejected earlier. Callers that must not panic on illegal transfers
// use PathHops.
func (p *Package) Hops(src, dst int) int {
	h, ok := p.PathHops(src, dst)
	if !ok {
		panic(fmt.Sprintf("mcm: backwards transfer %d -> %d on uni-directional ring", src, dst))
	}
	return h
}

// PathHops returns the hop count of a src->dst transfer and whether the
// topology admits such a route at all. Unlike Hops it never panics; the
// evaluation environments use it so that illegal transfers surface as
// invalid partitions rather than crashes.
func (p *Package) PathHops(src, dst int) (int, bool) {
	topo, err := p.Topo()
	if err != nil {
		return 0, false
	}
	return topo.Hops(src, dst)
}

// Routable reports whether the topology admits a src->dst transfer.
func (p *Package) Routable(src, dst int) bool {
	_, ok := p.PathHops(src, dst)
	return ok
}

// TransferTime returns the time to move the given number of bytes from chip
// src to chip dst: per-hop latency plus store-and-forward serialization on
// each traversed link. Transfers within a chip are free. Like Hops, it
// panics on a transfer the topology cannot route.
func (p *Package) TransferTime(src, dst int, bytes int64) float64 {
	hops := p.Hops(src, dst)
	if hops == 0 || bytes == 0 {
		return 0
	}
	return p.HopTransferTime(hops, bytes)
}

// HopTransferTime returns the transfer time of the given payload over a
// route of the given hop count (0 hops or 0 bytes are free). The cost model
// and simulator share this formula so their per-link prices agree.
func (p *Package) HopTransferTime(hops int, bytes int64) float64 {
	if hops == 0 || bytes == 0 {
		return 0
	}
	return float64(hops) * (p.LinkLatency + float64(bytes)/p.LinkBandwidth)
}

// ComputeTime returns the ideal time to execute the given amount of work on
// one homogeneous chiplet at peak rate. Heterogeneous-aware callers use
// ComputeTimeOn.
func (p *Package) ComputeTime(flops float64) float64 {
	return flops / p.PeakFLOPs
}

// ComputeTimeOn returns the ideal time to execute the given amount of work
// on chip c at its peak rate.
func (p *Package) ComputeTimeOn(c int, flops float64) float64 {
	return flops / p.ChipFLOPs(c)
}

// String summarizes the package for logs.
func (p *Package) String() string {
	sram := p.SRAMBytes
	flops := p.PeakFLOPs
	het := ""
	if p.Heterogeneous() {
		sram = p.MinChipSRAM()
		flops = p.MaxChipFLOPs()
		het = " het"
	}
	topo := ""
	if k := p.TopologyKind(); k != TopoRing {
		topo = " " + string(k)
	}
	return fmt.Sprintf("%s(chips=%d sram=%dMiB peak=%.0fGFLOP/s link=%.0fGB/s%s%s)",
		p.Name, p.Chips, sram>>20, flops/1e9, p.LinkBandwidth/1e9, het, topo)
}

// ParseJSON deserializes and validates a package descriptor. Descriptors
// written before heterogeneity and topologies existed parse to the same
// behavior as ever: missing per-chip arrays mean homogeneous chips and a
// missing topology means the uni-directional ring.
func ParseJSON(data []byte) (*Package, error) {
	p := new(Package)
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("mcm: parsing package: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Edge36 returns the default 36-chiplet package modeled on the paper's
// evaluation platform: 36 dies on a uni-directional ring, tens of MiB of
// SRAM per die, and tens of GB/s of link bandwidth.
func Edge36() *Package {
	return &Package{
		Name:      "edge36",
		Chips:     36,
		SRAMBytes: 76 << 20, // 76 MiB (tens of MBs; calibrated so the
		// hardware-invalid rate of random valid partitions matches the
		// paper's Sec. 5.4 measurement, see DESIGN.md)
		PeakFLOPs:     4e12, // 4 TFLOP/s per die (edge-TPU class)
		LinkBandwidth: 32e9, // 32 GB/s
		LinkLatency:   1e-6, // 1 us per hop
	}
}

// Dev4 returns a small 4-chip package matching Figure 2's running example.
// It is the default for tests and the quickstart example.
func Dev4() *Package {
	return &Package{
		Name:          "dev4",
		Chips:         4,
		SRAMBytes:     8 << 20,
		PeakFLOPs:     1e12,
		LinkBandwidth: 16e9,
		LinkLatency:   1e-6,
	}
}

// Dev8 returns an 8-chip package for mid-size tests and examples.
func Dev8() *Package {
	return &Package{
		Name:          "dev8",
		Chips:         8,
		SRAMBytes:     16 << 20,
		PeakFLOPs:     2e12,
		LinkBandwidth: 24e9,
		LinkLatency:   1e-6,
	}
}

// Het4 returns a heterogeneous 4-chip big/little package on the default
// ring: two big dies (16 MiB, 2 TFLOP/s) feed two little dies (8 MiB,
// 1 TFLOP/s), the unequal-chiplet scenario of Odema et al.'s scheduling
// space exploration.
func Het4() *Package {
	return &Package{
		Name:          "het4",
		Chips:         4,
		ChipSRAMBytes: []int64{16 << 20, 16 << 20, 8 << 20, 8 << 20},
		ChipPeakFLOPs: []float64{2e12, 2e12, 1e12, 1e12},
		LinkBandwidth: 16e9,
		LinkLatency:   1e-6,
	}
}

// Dev8Bi returns the dev8 package rewired as a bidirectional ring with
// wraparound: same dies, twice the links, transfers take the shorter
// direction.
func Dev8Bi() *Package {
	p := Dev8()
	p.Name = "dev8bi"
	p.Topology = TopoBiRing
	return p
}

// Mesh16 returns a 16-chip 4x4 2D-mesh package with dimension-ordered
// routing, the interconnect class of Simba-style MCM accelerators.
func Mesh16() *Package {
	return &Package{
		Name:          "mesh16",
		Chips:         16,
		SRAMBytes:     16 << 20,
		PeakFLOPs:     2e12,
		LinkBandwidth: 24e9,
		LinkLatency:   1e-6,
		Topology:      TopoMesh,
		MeshRows:      4,
	}
}

// Presets maps preset names accepted by the CLI tools to constructors.
var Presets = map[string]func() *Package{
	"edge36": Edge36,
	"dev4":   Dev4,
	"dev8":   Dev8,
	"het4":   Het4,
	"dev8bi": Dev8Bi,
	"mesh16": Mesh16,
}

// Preset returns the named preset package or an error listing valid names.
func Preset(name string) (*Package, error) {
	ctor, ok := Presets[name]
	if !ok {
		return nil, fmt.Errorf("mcm: unknown preset %q (valid: dev4, dev8, dev8bi, edge36, het4, mesh16)", name)
	}
	return ctor(), nil
}
