// Package mcm describes the target hardware: a multi-chip-module (MCM)
// package of identical accelerator chiplets joined by a uni-directional
// inter-chip ring, as in the multi-chip TPU the paper targets (Dasari et al.,
// US patent 10,936,942).
//
// The descriptor exposes exactly the quantities the paper's formulation and
// cost models depend on: the number of chips C (the action space of the
// partitioner), per-chip SRAM (the dynamic memory constraint), per-chip
// compute rate, and link bandwidth/latency (inter-chip communication cost).
// The real hardware is proprietary; every experiment in this repository runs
// against this descriptor plus the simulator in internal/hwsim.
package mcm

import (
	"errors"
	"fmt"
)

// Package describes an MCM accelerator package.
type Package struct {
	// Name labels the configuration, e.g. "edge36".
	Name string `json:"name"`
	// Chips is the number of chiplets C. Chip IDs are 0..Chips-1 and data
	// may only flow from lower to higher IDs (uni-directional ring).
	Chips int `json:"chips"`
	// SRAMBytes is the on-chip memory of each chiplet. Weights of the ops
	// placed on a chip plus live activations must fit in it.
	SRAMBytes int64 `json:"sram_bytes"`
	// PeakFLOPs is each chiplet's peak compute rate in FLOP/s.
	PeakFLOPs float64 `json:"peak_flops"`
	// LinkBandwidth is the bandwidth of each inter-chip link in bytes/s.
	LinkBandwidth float64 `json:"link_bandwidth"`
	// LinkLatency is the fixed per-hop transfer latency in seconds.
	LinkLatency float64 `json:"link_latency"`
}

// Validate checks that the package parameters are physically meaningful.
func (p *Package) Validate() error {
	switch {
	case p.Chips <= 0:
		return fmt.Errorf("mcm: package %q has %d chips", p.Name, p.Chips)
	case p.Chips > MaxChips:
		return fmt.Errorf("mcm: package %q has %d chips; the solver supports at most %d", p.Name, p.Chips, MaxChips)
	case p.SRAMBytes <= 0:
		return fmt.Errorf("mcm: package %q has non-positive SRAM", p.Name)
	case p.PeakFLOPs <= 0:
		return fmt.Errorf("mcm: package %q has non-positive compute rate", p.Name)
	case p.LinkBandwidth <= 0:
		return fmt.Errorf("mcm: package %q has non-positive link bandwidth", p.Name)
	case p.LinkLatency < 0:
		return fmt.Errorf("mcm: package %q has negative link latency", p.Name)
	}
	return nil
}

// MaxChips is the largest chip count supported by the constraint solver's
// bitset domains.
const MaxChips = 64

// ErrTooManyChips is returned when a package exceeds MaxChips.
var ErrTooManyChips = errors.New("mcm: too many chips")

// Hops returns the number of ring links a transfer from chip src to chip dst
// traverses. Because links are uni-directional and data may only move to
// higher chip IDs, Hops panics if dst < src; a partition that needs such a
// transfer violates the acyclic dataflow constraint and should have been
// rejected earlier.
func (p *Package) Hops(src, dst int) int {
	if dst < src {
		panic(fmt.Sprintf("mcm: backwards transfer %d -> %d on uni-directional ring", src, dst))
	}
	return dst - src
}

// TransferTime returns the time to move the given number of bytes from chip
// src to chip dst: per-hop latency plus store-and-forward serialization on
// each traversed link. Transfers within a chip are free.
func (p *Package) TransferTime(src, dst int, bytes int64) float64 {
	hops := p.Hops(src, dst)
	if hops == 0 || bytes == 0 {
		return 0
	}
	return float64(hops) * (p.LinkLatency + float64(bytes)/p.LinkBandwidth)
}

// ComputeTime returns the ideal time to execute the given amount of work on
// one chiplet at peak rate.
func (p *Package) ComputeTime(flops float64) float64 {
	return flops / p.PeakFLOPs
}

// String summarizes the package for logs.
func (p *Package) String() string {
	return fmt.Sprintf("%s(chips=%d sram=%dMiB peak=%.0fGFLOP/s link=%.0fGB/s)",
		p.Name, p.Chips, p.SRAMBytes>>20, p.PeakFLOPs/1e9, p.LinkBandwidth/1e9)
}

// Edge36 returns the default 36-chiplet package modeled on the paper's
// evaluation platform: 36 dies on a uni-directional ring, tens of MiB of
// SRAM per die, and tens of GB/s of link bandwidth.
func Edge36() *Package {
	return &Package{
		Name:      "edge36",
		Chips:     36,
		SRAMBytes: 76 << 20, // 76 MiB (tens of MBs; calibrated so the
		// hardware-invalid rate of random valid partitions matches the
		// paper's Sec. 5.4 measurement, see EXPERIMENTS.md)
		PeakFLOPs:     4e12, // 4 TFLOP/s per die (edge-TPU class)
		LinkBandwidth: 32e9, // 32 GB/s
		LinkLatency:   1e-6, // 1 us per hop
	}
}

// Dev4 returns a small 4-chip package matching Figure 2's running example.
// It is the default for tests and the quickstart example.
func Dev4() *Package {
	return &Package{
		Name:          "dev4",
		Chips:         4,
		SRAMBytes:     8 << 20,
		PeakFLOPs:     1e12,
		LinkBandwidth: 16e9,
		LinkLatency:   1e-6,
	}
}

// Dev8 returns an 8-chip package for mid-size tests and examples.
func Dev8() *Package {
	return &Package{
		Name:          "dev8",
		Chips:         8,
		SRAMBytes:     16 << 20,
		PeakFLOPs:     2e12,
		LinkBandwidth: 24e9,
		LinkLatency:   1e-6,
	}
}

// Presets maps preset names accepted by the CLI tools to constructors.
var Presets = map[string]func() *Package{
	"edge36": Edge36,
	"dev4":   Dev4,
	"dev8":   Dev8,
}

// Preset returns the named preset package or an error listing valid names.
func Preset(name string) (*Package, error) {
	ctor, ok := Presets[name]
	if !ok {
		return nil, fmt.Errorf("mcm: unknown preset %q (valid: dev4, dev8, edge36)", name)
	}
	return ctor(), nil
}
