package mcm

import "fmt"

// TopologyKind tags the inter-chip interconnect of a package. The zero value
// ("", normalized to TopoRing) is the paper's uni-directional ring, so every
// package serialized before topologies existed deserializes to identical
// behavior.
type TopologyKind string

// Supported interconnect topologies.
const (
	// TopoRing is the paper's uni-directional ring: chips-1 links, data may
	// only move from lower to higher chip IDs (link l joins chips l and l+1).
	TopoRing TopologyKind = "ring"
	// TopoBiRing is a bidirectional ring with wraparound: 2*Chips directed
	// links, transfers take the shorter direction (ties go clockwise).
	TopoBiRing TopologyKind = "biring"
	// TopoMesh is a 2D mesh of MeshRows x (Chips/MeshRows) chips with
	// dimension-ordered (X-then-Y) routing, as in Simba-class MCM packages.
	TopoMesh TopologyKind = "mesh"
)

// Topology is the routing and link-enumeration contract the cost model and
// the hardware simulator share. Implementations are pure arithmetic over
// chip IDs: Hops prices a transfer, AppendRoute enumerates the directed
// links it occupies (for contention accounting), and NumLinks sizes the
// per-link busy accounting.
type Topology interface {
	// Kind identifies the topology.
	Kind() TopologyKind
	// NumLinks is the number of directed links for contention accounting.
	NumLinks() int
	// Hops returns the number of links a src->dst transfer traverses, and
	// false when the topology admits no such route (e.g. a backwards
	// transfer on the uni-directional ring). Hops(c, c) is (0, true).
	Hops(src, dst int) (int, bool)
	// AppendRoute appends the directed link indices of the src->dst route
	// to buf and returns the extended slice, with false when no route
	// exists. The route has exactly Hops(src, dst) links.
	AppendRoute(buf []int, src, dst int) ([]int, bool)
}

// NewTopology builds the topology arithmetic for a kind. rows is only
// consulted by TopoMesh (the mesh has rows x (chips/rows) chips). The empty
// kind normalizes to TopoRing. It returns an error for unknown kinds or
// impossible mesh dimensions; Package.Validate surfaces the same conditions
// with package context.
func NewTopology(kind TopologyKind, chips, rows int) (Topology, error) {
	switch kind {
	case "", TopoRing:
		return uniRing{chips: chips}, nil
	case TopoBiRing:
		return biRing{chips: chips}, nil
	case TopoMesh:
		if rows <= 0 || chips%rows != 0 {
			return nil, fmt.Errorf("mcm: mesh needs mesh_rows dividing chips, got rows=%d chips=%d", rows, chips)
		}
		return mesh2D{rows: rows, cols: chips / rows}, nil
	}
	return nil, fmt.Errorf("mcm: unknown topology %q (valid: ring, biring, mesh)", kind)
}

// uniRing is the paper's uni-directional ring (really a chain of chips-1
// links; there is no wraparound link in the patent's package).
type uniRing struct{ chips int }

func (r uniRing) Kind() TopologyKind { return TopoRing }

func (r uniRing) NumLinks() int { return r.chips - 1 }

func (r uniRing) Hops(src, dst int) (int, bool) {
	if dst < src {
		return 0, false
	}
	return dst - src, true
}

func (r uniRing) AppendRoute(buf []int, src, dst int) ([]int, bool) {
	if dst < src {
		return buf, false
	}
	for l := src; l < dst; l++ {
		buf = append(buf, l)
	}
	return buf, true
}

// biRing is a bidirectional ring with wraparound. Directed links: index l in
// [0, chips) is the clockwise link chip l -> (l+1) mod chips; index chips+l
// is the counter-clockwise link chip l -> (l-1) mod chips.
type biRing struct{ chips int }

func (r biRing) Kind() TopologyKind { return TopoBiRing }

func (r biRing) NumLinks() int { return 2 * r.chips }

func (r biRing) Hops(src, dst int) (int, bool) {
	cw := dst - src
	if cw < 0 {
		cw += r.chips
	}
	if ccw := r.chips - cw; ccw < cw {
		return ccw, true
	}
	return cw, true
}

func (r biRing) AppendRoute(buf []int, src, dst int) ([]int, bool) {
	cw := dst - src
	if cw < 0 {
		cw += r.chips
	}
	if cw == 0 {
		return buf, true
	}
	if ccw := r.chips - cw; ccw < cw {
		// Counter-clockwise: src -> src-1 -> ... -> dst.
		for c := src; c != dst; c = (c - 1 + r.chips) % r.chips {
			buf = append(buf, r.chips+c)
		}
		return buf, true
	}
	// Clockwise (ties go this way, deterministically).
	for c := src; c != dst; c = (c + 1) % r.chips {
		buf = append(buf, c)
	}
	return buf, true
}

// mesh2D is a rows x cols 2D mesh with dimension-ordered X-then-Y routing:
// chip c sits at row c/cols, column c%cols. Directed link layout:
//
//	[0, H)        rightward: row r, col x -> x+1 at r*(cols-1)+x
//	[H, 2H)       leftward:  row r, col x+1 -> x at H + r*(cols-1)+x
//	[2H, 2H+V)    downward:  col x, row r -> r+1 at 2H + x*(rows-1)+r
//	[2H+V, 2H+2V) upward:    col x, row r+1 -> r at 2H + V + x*(rows-1)+r
//
// with H = rows*(cols-1) horizontal and V = cols*(rows-1) vertical link
// pairs.
type mesh2D struct{ rows, cols int }

func (m mesh2D) Kind() TopologyKind { return TopoMesh }

func (m mesh2D) NumLinks() int {
	return 2*m.rows*(m.cols-1) + 2*m.cols*(m.rows-1)
}

func (m mesh2D) Hops(src, dst int) (int, bool) {
	sr, sx := src/m.cols, src%m.cols
	dr, dx := dst/m.cols, dst%m.cols
	return abs(sx-dx) + abs(sr-dr), true
}

func (m mesh2D) AppendRoute(buf []int, src, dst int) ([]int, bool) {
	h := m.rows * (m.cols - 1)
	v := m.cols * (m.rows - 1)
	sr, sx := src/m.cols, src%m.cols
	dr, dx := dst/m.cols, dst%m.cols
	// X leg first, along row sr.
	for x := sx; x < dx; x++ {
		buf = append(buf, sr*(m.cols-1)+x)
	}
	for x := sx; x > dx; x-- {
		buf = append(buf, h+sr*(m.cols-1)+x-1)
	}
	// Then the Y leg, along column dx.
	for r := sr; r < dr; r++ {
		buf = append(buf, 2*h+dx*(m.rows-1)+r)
	}
	for r := sr; r > dr; r-- {
		buf = append(buf, 2*h+v+dx*(m.rows-1)+r-1)
	}
	return buf, true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
