package mcm

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// topologies under test, with the bounds their Hops must respect.
func testTopologies(t *testing.T) map[string]Topology {
	t.Helper()
	mk := func(kind TopologyKind, chips, rows int) Topology {
		topo, err := NewTopology(kind, chips, rows)
		if err != nil {
			t.Fatalf("NewTopology(%q, %d, %d): %v", kind, chips, rows, err)
		}
		return topo
	}
	return map[string]Topology{
		"ring8":   mk(TopoRing, 8, 0),
		"biring8": mk(TopoBiRing, 8, 0),
		"biring7": mk(TopoBiRing, 7, 0),
		"mesh4x4": mk(TopoMesh, 16, 4),
		"mesh2x3": mk(TopoMesh, 6, 2),
	}
}

func topoChips(topo Topology) int {
	switch v := topo.(type) {
	case uniRing:
		return v.chips
	case biRing:
		return v.chips
	case mesh2D:
		return v.rows * v.cols
	}
	panic("unknown topology")
}

// TestHopsProperties checks, for every topology: Hops(c,c) == 0, routes have
// exactly Hops links with valid indices, the triangle inequality holds
// through any routable midpoint, and symmetric topologies (biring, mesh)
// price both directions equally within their diameter bound.
func TestHopsProperties(t *testing.T) {
	for name, topo := range testTopologies(t) {
		t.Run(name, func(t *testing.T) {
			chips := topoChips(topo)
			diameter := 0
			switch topo.Kind() {
			case TopoRing:
				diameter = chips - 1
			case TopoBiRing:
				diameter = chips / 2
			case TopoMesh:
				m := topo.(mesh2D)
				diameter = (m.rows - 1) + (m.cols - 1)
			}
			for s := 0; s < chips; s++ {
				if h, ok := topo.Hops(s, s); !ok || h != 0 {
					t.Fatalf("Hops(%d,%d) = %d,%t, want 0,true", s, s, h, ok)
				}
				for d := 0; d < chips; d++ {
					h, ok := topo.Hops(s, d)
					route, rok := topo.AppendRoute(nil, s, d)
					if ok != rok {
						t.Fatalf("Hops(%d,%d) ok=%t but route ok=%t", s, d, ok, rok)
					}
					if !ok {
						if topo.Kind() != TopoRing || d >= s {
							t.Fatalf("%s: Hops(%d,%d) unreachable", name, s, d)
						}
						continue
					}
					if h < 0 || h > diameter {
						t.Fatalf("Hops(%d,%d) = %d outside [0,%d]", s, d, h, diameter)
					}
					if len(route) != h {
						t.Fatalf("route(%d,%d) has %d links for %d hops", s, d, len(route), h)
					}
					for _, l := range route {
						if l < 0 || l >= topo.NumLinks() {
							t.Fatalf("route(%d,%d) link %d outside [0,%d)", s, d, l, topo.NumLinks())
						}
					}
					// Symmetry for bidirectional topologies.
					if topo.Kind() != TopoRing {
						back, _ := topo.Hops(d, s)
						if back != h {
							t.Fatalf("Hops(%d,%d)=%d != Hops(%d,%d)=%d", s, d, h, d, s, back)
						}
					}
					// Triangle inequality via every routable midpoint.
					for m := 0; m < chips; m++ {
						h1, ok1 := topo.Hops(s, m)
						h2, ok2 := topo.Hops(m, d)
						if ok1 && ok2 && h > h1+h2 {
							t.Fatalf("triangle violated: Hops(%d,%d)=%d > %d+%d via %d", s, d, h, h1, h2, m)
						}
					}
				}
			}
		})
	}
}

// TestRingHopsMatchLegacyArithmetic pins the default topology to the
// paper's literal dst-src arithmetic and link enumeration.
func TestRingHopsMatchLegacyArithmetic(t *testing.T) {
	topo, err := NewTopology("", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Kind() != TopoRing {
		t.Fatalf("empty kind normalized to %q, want ring", topo.Kind())
	}
	if topo.NumLinks() != 7 {
		t.Fatalf("ring8 has %d links, want 7", topo.NumLinks())
	}
	for s := 0; s < 8; s++ {
		for d := s; d < 8; d++ {
			h, ok := topo.Hops(s, d)
			if !ok || h != d-s {
				t.Fatalf("Hops(%d,%d) = %d,%t, want %d,true", s, d, h, ok, d-s)
			}
			route, _ := topo.AppendRoute(nil, s, d)
			for i, l := range route {
				if l != s+i {
					t.Fatalf("route(%d,%d) = %v, want consecutive links from %d", s, d, route, s)
				}
			}
		}
		if _, ok := topo.Hops(s+1, s); ok {
			t.Fatalf("backwards Hops(%d,%d) should be unroutable", s+1, s)
		}
	}
}

// TestTransferTimeMonotone checks TransferTime grows with bytes at fixed
// hops and with hops at fixed bytes, on every preset.
func TestTransferTimeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, ctor := range Presets {
		pkg := ctor()
		for trial := 0; trial < 200; trial++ {
			src := rng.Intn(pkg.Chips)
			dst := rng.Intn(pkg.Chips)
			h, ok := pkg.PathHops(src, dst)
			if !ok || h == 0 {
				continue
			}
			b := int64(1 + rng.Intn(1<<24))
			tt := pkg.HopTransferTime(h, b)
			if tt <= 0 {
				t.Fatalf("%s: HopTransferTime(%d,%d) = %v, want > 0", name, h, b, tt)
			}
			if more := pkg.HopTransferTime(h, 2*b); more <= tt {
				t.Fatalf("%s: transfer time not monotone in bytes: %v !< %v", name, tt, more)
			}
			if more := pkg.HopTransferTime(h+1, b); more <= tt {
				t.Fatalf("%s: transfer time not monotone in hops: %v !< %v", name, tt, more)
			}
		}
	}
}

func TestMeshRouteXY(t *testing.T) {
	// 2x3 mesh: chip ids (row-major): 0 1 2 / 3 4 5. Route 0 -> 5 goes
	// right twice along row 0, then down column 2.
	topo, err := NewTopology(TopoMesh, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := topo.Hops(0, 5)
	if !ok || h != 3 {
		t.Fatalf("Hops(0,5) = %d,%t, want 3,true", h, ok)
	}
	route, ok := topo.AppendRoute(nil, 0, 5)
	if !ok || len(route) != 3 {
		t.Fatalf("route(0,5) = %v, want 3 links", route)
	}
	// Reverse route exists and uses different (opposite-direction) links.
	back, ok := topo.AppendRoute(nil, 5, 0)
	if !ok || len(back) != 3 {
		t.Fatalf("route(5,0) = %v, want 3 links", back)
	}
	for _, l := range route {
		for _, b := range back {
			if l == b {
				t.Fatalf("forward and reverse routes share directed link %d", l)
			}
		}
	}
}

func TestBiRingTakesShorterDirection(t *testing.T) {
	topo, err := NewTopology(TopoBiRing, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := topo.Hops(0, 7); h != 1 {
		t.Fatalf("Hops(0,7) = %d, want 1 (wraparound)", h)
	}
	if h, _ := topo.Hops(7, 0); h != 1 {
		t.Fatalf("Hops(7,0) = %d, want 1 (wraparound)", h)
	}
	if h, _ := topo.Hops(0, 4); h != 4 {
		t.Fatalf("Hops(0,4) = %d, want 4 (tie)", h)
	}
}

func TestNewTopologyRejectsBadConfigs(t *testing.T) {
	if _, err := NewTopology("torus", 8, 0); err == nil {
		t.Fatal("unknown topology should error")
	}
	if _, err := NewTopology(TopoMesh, 8, 3); err == nil {
		t.Fatal("mesh rows not dividing chips should error")
	}
	if _, err := NewTopology(TopoMesh, 8, 0); err == nil {
		t.Fatal("mesh without rows should error")
	}
}

func TestHeterogeneousAccessors(t *testing.T) {
	p := Het4()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Heterogeneous() {
		t.Fatal("Het4 should report Heterogeneous")
	}
	if Dev4().Heterogeneous() {
		t.Fatal("Dev4 should not report Heterogeneous")
	}
	if got := p.ChipSRAM(0); got != 16<<20 {
		t.Fatalf("ChipSRAM(0) = %d, want 16 MiB", got)
	}
	if got := p.ChipSRAM(3); got != 8<<20 {
		t.Fatalf("ChipSRAM(3) = %d, want 8 MiB", got)
	}
	if got := p.MinChipSRAM(); got != 8<<20 {
		t.Fatalf("MinChipSRAM = %d, want 8 MiB", got)
	}
	if got := p.ComputeTimeOn(0, 2e12); got != 1 {
		t.Fatalf("ComputeTimeOn(big, peak) = %v, want 1s", got)
	}
	if got := p.ComputeTimeOn(3, 2e12); got != 2 {
		t.Fatalf("ComputeTimeOn(little, 2x little peak) = %v, want 2s", got)
	}
	// Homogeneous accessors fall back to the base fields.
	d := Dev4()
	if d.ChipSRAM(2) != d.SRAMBytes || d.ChipFLOPs(1) != d.PeakFLOPs {
		t.Fatal("homogeneous accessors should return base fields")
	}
}

func TestValidateRejectsBadHeterogeneousPackages(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Package)
	}{
		{"short sram array", func(p *Package) { p.ChipSRAMBytes = p.ChipSRAMBytes[:2] }},
		{"zero sram entry", func(p *Package) { p.ChipSRAMBytes[1] = 0 }},
		{"short flops array", func(p *Package) { p.ChipPeakFLOPs = p.ChipPeakFLOPs[:1] }},
		{"negative flops entry", func(p *Package) { p.ChipPeakFLOPs[0] = -1 }},
		{"mesh rows on ring", func(p *Package) { p.MeshRows = 2 }},
		{"unknown topology", func(p *Package) { p.Topology = "torus" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Het4()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate should reject %s", tt.name)
			}
		})
	}
}

// TestPackageJSONRoundTrip pins (de)serialization for every preset,
// including heterogeneous arrays and topology tags, and that pre-topology
// JSON (no new fields) still parses to the default ring.
func TestPackageJSONRoundTrip(t *testing.T) {
	for name, ctor := range Presets {
		pkg := ctor()
		data, err := json.Marshal(pkg)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if !reflect.DeepEqual(pkg, back) {
			t.Fatalf("%s: round trip mismatch:\n  %+v\n  %+v", name, pkg, back)
		}
	}
	legacy := []byte(`{"name":"old","chips":4,"sram_bytes":8388608,"peak_flops":1e12,"link_bandwidth":1.6e10,"link_latency":1e-6}`)
	p, err := ParseJSON(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if p.TopologyKind() != TopoRing || p.Heterogeneous() {
		t.Fatalf("legacy JSON should parse to homogeneous ring, got %+v", p)
	}
	if _, err := ParseJSON([]byte(`{"name":"bad","chips":0}`)); err == nil {
		t.Fatal("ParseJSON should validate")
	}
	if _, err := ParseJSON([]byte(`{nope`)); err == nil {
		t.Fatal("ParseJSON should reject malformed JSON")
	}
}
