package mcm

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for name := range Presets {
		p, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("preset %q has Name %q", name, p.Name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
}

func TestEdge36MatchesPaperPlatform(t *testing.T) {
	p := Edge36()
	if p.Chips != 36 {
		t.Fatalf("Edge36 has %d chips, want 36", p.Chips)
	}
	// "Each chip has tens of MBs SRAM, and inter-chip links only offer a
	// bandwidth of tens of GB/s."
	if mb := p.SRAMBytes >> 20; mb < 10 || mb >= 100 {
		t.Fatalf("Edge36 SRAM = %d MiB, want tens of MiB", mb)
	}
	if gbs := p.LinkBandwidth / 1e9; gbs < 10 || gbs >= 100 {
		t.Fatalf("Edge36 link = %v GB/s, want tens of GB/s", gbs)
	}
}

func TestValidateRejectsBadPackages(t *testing.T) {
	base := *Dev4()
	tests := []struct {
		name   string
		mutate func(*Package)
	}{
		{"zero chips", func(p *Package) { p.Chips = 0 }},
		{"too many chips", func(p *Package) { p.Chips = MaxChips + 1 }},
		{"no sram", func(p *Package) { p.SRAMBytes = 0 }},
		{"no compute", func(p *Package) { p.PeakFLOPs = 0 }},
		{"no bandwidth", func(p *Package) { p.LinkBandwidth = 0 }},
		{"negative latency", func(p *Package) { p.LinkLatency = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate should reject %s", tt.name)
			}
		})
	}
}

func TestHopsAndTransferTime(t *testing.T) {
	p := Dev4()
	if h := p.Hops(1, 3); h != 2 {
		t.Fatalf("Hops(1,3) = %d, want 2", h)
	}
	if h := p.Hops(2, 2); h != 0 {
		t.Fatalf("Hops(2,2) = %d, want 0", h)
	}
	if tt := p.TransferTime(2, 2, 1<<20); tt != 0 {
		t.Fatalf("intra-chip transfer should be free, got %v", tt)
	}
	if tt := p.TransferTime(0, 1, 0); tt != 0 {
		t.Fatalf("zero-byte transfer should be free, got %v", tt)
	}
	one := p.TransferTime(0, 1, 1<<20)
	two := p.TransferTime(0, 2, 1<<20)
	if one <= 0 || two <= one {
		t.Fatalf("transfer time should grow with hops: 1 hop %v, 2 hops %v", one, two)
	}
	want := p.LinkLatency + float64(1<<20)/p.LinkBandwidth
	if diff := one - want; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("TransferTime(0,1) = %v, want %v", one, want)
	}
}

func TestHopsPanicsOnBackwardsTransfer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hops(3,1) should panic: links are uni-directional")
		}
	}()
	Dev4().Hops(3, 1)
}

func TestComputeTime(t *testing.T) {
	p := Dev4()
	if got := p.ComputeTime(p.PeakFLOPs); got != 1 {
		t.Fatalf("ComputeTime(peak) = %v, want 1s", got)
	}
}

func TestString(t *testing.T) {
	s := Edge36().String()
	for _, want := range []string{"edge36", "chips=36"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
