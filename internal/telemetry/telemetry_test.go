package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+2; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// le is inclusive: 0.01 lands in the first bucket, 2 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Label{"k", "v"})
	b := r.Counter("x_total", "other help ignored", Label{"k", "v"})
	if a != b {
		t.Fatal("same name and labels must return the same counter")
	}
	c := r.Counter("x_total", "help", Label{"k", "w"})
	if a == c {
		t.Fatal("different label values must be distinct series")
	}
	// Label order must not matter.
	h1 := r.Histogram("lat_seconds", "h", []float64{1}, Label{"a", "1"}, Label{"b", "2"})
	h2 := r.Histogram("lat_seconds", "h", []float64{1}, Label{"b", "2"}, Label{"a", "1"})
	if h1 != h2 {
		t.Fatal("label order must not create a new series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs processed", Label{"state", "done"}).Add(3)
	r.Counter("jobs_total", "jobs processed", Label{"state", "failed"}).Add(1)
	r.GaugeFunc("depth", "queue depth", func() float64 { return 2 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP depth queue depth
# TYPE depth gauge
depth 2
# HELP jobs_total jobs processed
# TYPE jobs_total counter
jobs_total{state="done"} 3
jobs_total{state="failed"} 1
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 3.9
lat_seconds_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Deterministic: a second write of the same state is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Fatal("two writes of the same state differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "multi\nline \\help", Label{"p", `a"b\c` + "\n"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `# HELP weird_total multi\nline \\help`) {
		t.Fatalf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `weird_total{p="a\"b\\c\n"} 1`) {
		t.Fatalf("label value not escaped:\n%s", got)
	}
}

// TestObservationAllocatesNothing pins the hot-path contract: one
// observation on any metric type allocates zero bytes.
func TestObservationAllocatesNothing(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(DefBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		g.Add(-1)
		h.Observe(0.042)
	}); n != 0 {
		t.Fatalf("observation allocated %v times per run, want 0", n)
	}
}

// TestConcurrentScrapeAndObserve exercises observation racing exposition
// and registration — run under -race in CI.
func TestConcurrentScrapeAndObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", DefBuckets)
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%10) / 100)
				r.Counter("dyn_total", "dynamic", Label{"w", string(rune('a' + w))}).Inc()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if c.Value() != 4*perWorker || h.Count() != 4*perWorker {
		t.Fatalf("recorded %d/%d observations, want %d", c.Value(), h.Count(), 4*perWorker)
	}
}
