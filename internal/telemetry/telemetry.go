// Package telemetry is the stdlib-only metrics layer under the serving
// stack: a registry of counters, gauges, and fixed-bucket histograms with
// a Prometheus text-format exposition writer. It exists so the Service's
// operational numbers have exactly one source of truth — ServiceStats and
// GET /metrics read the same atomics, so the JSON and Prometheus views can
// never disagree.
//
// Design constraints, in order:
//
//   - Observation is the hot path: Counter.Inc, Gauge.Set, and
//     Histogram.Observe are single atomic operations (a short CAS loop for
//     the histogram sum) and allocate nothing, so instrumenting a
//     per-request or per-sample path costs nanoseconds and never feeds the
//     GC. The AllocsPerRun tests pin this at zero.
//   - Registration is get-or-create: asking for the same name and label
//     set twice returns the same metric, so independent layers
//     (Service, HTTP handler, disk cache) can instrument themselves
//     without coordinating registration order. Re-registering a name with
//     a different metric kind is a programming error and panics.
//   - Exposition is deterministic: families sort by name, series by label
//     key, so two scrapes of the same state are byte-identical and tests
//     can compare text.
//
// The package deliberately implements the subset of the Prometheus data
// model the daemon needs (no summaries, no exemplars, no sharded
// hot-path striping) — it must build with the standard library only.
//
//mcmlint:hotpath
package telemetry

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is a valid,
// unregistered counter at 0 — packages below the registry (e.g. the disk
// plan cache) count into standalone counters that a service later swaps
// for registered ones.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic; there is deliberately no Sub.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an int64 that can move both ways (queue depths, in-flight
// jobs). The zero value is valid and reads 0.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus cumulative-`le`
// model. Buckets are chosen at construction and never change; observation
// is a binary search plus two atomic updates, allocation-free.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, sorted
	// ascending; an implicit +Inf bucket follows. Immutable after New.
	bounds []float64
	// counts[i] counts observations v with v <= bounds[i] (and greater
	// than every earlier bound); counts[len(bounds)] is the +Inf bucket.
	counts []atomic.Uint64
	// sumBits holds math.Float64bits of the running sum, maintained by CAS.
	sumBits atomic.Uint64
}

// DefBuckets are latency buckets in seconds spanning 100µs to 10s — wide
// enough for a warm cache hit (tens of µs land in the first bucket) and a
// multi-second cold plan alike.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// NewHistogram builds a standalone (unregistered) histogram with the given
// finite bucket upper bounds. Bounds are copied and sorted; an +Inf bucket
// is implicit. Empty bounds give a single +Inf bucket (count and sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is >= v; all greater bounds also hold it in
	// the cumulative exposition, done by the writer.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// metric kinds, for registration-consistency checks and TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one label combination within a family: exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels  []Label // sorted by name; immutable after registration
	key     string  // canonical label key, for get-or-create
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name, help, kind string
	buckets          []float64 // histogram families only
	series           []*series // guarded by Registry.mu
	byKey            map[string]*series
}

// Registry holds metric families and writes them in Prometheus text
// exposition format. All methods are safe for concurrent use; the
// returned Counter/Gauge/Histogram handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter for name and labels, registering it (and its
// family) on first use. Help is recorded on first registration of the
// family; a later, different help string is ignored. Panics if name is
// already registered as a different kind.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindCounter, nil, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// RegisterCounter registers an existing standalone counter under name and
// labels — how a lower layer's counter (e.g. the disk cache's) becomes
// scrapeable without that layer knowing about the registry. Panics if the
// series already exists with a different counter instance.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindCounter, nil, labels)
	if s.counter != nil && s.counter != c {
		panic("telemetry: series " + name + " already registered with a different counter")
	}
	s.counter = c
	return c
}

// Gauge returns the gauge for name and labels, registering on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindGauge, nil, labels)
	if s.gaugeFn != nil {
		panic("telemetry: series " + name + " is registered as a GaugeFunc")
	}
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for values that already live somewhere authoritative (a channel's len, a
// pool's busy count) where a write-through copy could drift. Re-registering
// the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindGauge, nil, labels)
	s.gauge = nil
	s.gaugeFn = fn
}

// Histogram returns the histogram for name and labels, registering on
// first use with the given finite bucket bounds. Buckets are fixed per
// family: the first registration wins, later bounds are ignored.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindHistogram, buckets, labels)
	if s.hist == nil {
		fam := r.families[name]
		s.hist = NewHistogram(fam.buckets)
	}
	return s.hist
}

// RegisterHistogram registers an existing standalone histogram, mirroring
// RegisterCounter.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesLocked(name, help, kindHistogram, h.bounds, labels)
	if s.hist != nil && s.hist != h {
		panic("telemetry: series " + name + " already registered with a different histogram")
	}
	s.hist = h
	return h
}

// seriesLocked is the shared get-or-create: family by name (kind must
// match), series by canonical label key.
func (r *Registry) seriesLocked(name, help, kind string, buckets []float64, labels []Label) *series {
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
		if kind == kindHistogram {
			fam.buckets = make([]float64, len(buckets))
			copy(fam.buckets, buckets)
			sort.Float64s(fam.buckets)
		}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic("telemetry: metric " + name + " registered as " + fam.kind + ", requested as " + kind)
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	key := labelKey(sorted)
	if s, ok := fam.byKey[key]; ok {
		return s
	}
	s := &series{labels: sorted, key: key}
	fam.byKey[key] = s
	fam.series = append(fam.series, s)
	return s
}

// labelKey canonicalizes a sorted label list into one lookup string.
func labelKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// series by label key, so output for a fixed state is byte-identical
// across calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	// Series slices only grow and series themselves are immutable after
	// registration (values are atomics), so rendering can proceed outside
	// the lock against a snapshot of each slice.
	snaps := make([][]*series, len(fams))
	for i, fam := range fams {
		snaps[i] = append(make([]*series, 0, len(fam.series)), fam.series...)
		sort.Slice(snaps[i], func(a, b int) bool { return snaps[i][a].key < snaps[i][b].key })
	}
	r.mu.Unlock()

	buf := make([]byte, 0, 4096)
	for i, fam := range fams {
		buf = buf[:0]
		buf = appendFamilyHeader(buf, fam)
		for _, s := range snaps[i] {
			buf = appendSeries(buf, fam, s)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendFamilyHeader renders the # HELP and # TYPE lines.
func appendFamilyHeader(buf []byte, fam *family) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, fam.name...)
	buf = append(buf, ' ')
	buf = appendEscaped(buf, fam.help, false)
	buf = append(buf, '\n')
	buf = append(buf, "# TYPE "...)
	buf = append(buf, fam.name...)
	buf = append(buf, ' ')
	buf = append(buf, fam.kind...)
	buf = append(buf, '\n')
	return buf
}

// appendSeries renders one series' sample lines.
func appendSeries(buf []byte, fam *family, s *series) []byte {
	switch {
	case s.counter != nil:
		buf = appendName(buf, fam.name, s.labels, "")
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, s.counter.Value(), 10)
		buf = append(buf, '\n')
	case s.gaugeFn != nil:
		buf = appendName(buf, fam.name, s.labels, "")
		buf = append(buf, ' ')
		buf = appendFloat(buf, s.gaugeFn())
		buf = append(buf, '\n')
	case s.gauge != nil:
		buf = appendName(buf, fam.name, s.labels, "")
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, s.gauge.Value(), 10)
		buf = append(buf, '\n')
	case s.hist != nil:
		var cum uint64
		for i := range s.hist.counts {
			cum += s.hist.counts[i].Load()
			le := "+Inf"
			if i < len(s.hist.bounds) {
				le = strconv.FormatFloat(s.hist.bounds[i], 'g', -1, 64)
			}
			buf = appendName(buf, fam.name+"_bucket", s.labels, le)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, cum, 10)
			buf = append(buf, '\n')
		}
		buf = appendName(buf, fam.name+"_sum", s.labels, "")
		buf = append(buf, ' ')
		buf = appendFloat(buf, s.hist.Sum())
		buf = append(buf, '\n')
		buf = appendName(buf, fam.name+"_count", s.labels, "")
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	return buf
}

// appendName renders name{labels} with an optional trailing le label (the
// histogram bucket bound).
func appendName(buf []byte, name string, labels []Label, le string) []byte {
	buf = append(buf, name...)
	if len(labels) == 0 && le == "" {
		return buf
	}
	buf = append(buf, '{')
	first := true
	for _, l := range labels {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, l.Name...)
		buf = append(buf, '=', '"')
		buf = appendEscaped(buf, l.Value, true)
		buf = append(buf, '"')
	}
	if le != "" {
		if !first {
			buf = append(buf, ',')
		}
		buf = append(buf, "le=\""...)
		buf = append(buf, le...)
		buf = append(buf, '"')
	}
	buf = append(buf, '}')
	return buf
}

// appendFloat renders a float the way the exposition format expects.
func appendFloat(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendEscaped escapes backslash and newline (plus double quote inside
// label values) per the exposition format.
func appendEscaped(buf []byte, s string, quoteLabel bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '"':
			if quoteLabel {
				buf = append(buf, '\\', '"')
			} else {
				buf = append(buf, c)
			}
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// Handler serves the registry as a Prometheus scrape target — mount it at
// GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
