package mcmpart_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mcmpart"
)

func newTestService(t *testing.T, opts mcmpart.ServiceOptions) *mcmpart.Service {
	t.Helper()
	svc, err := mcmpart.NewService(mcmpart.Dev4(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// resultsBitIdentical compares every field of two results, float64s by
// bits.
func resultsBitIdentical(a, b *mcmpart.Result) error {
	if !reflect.DeepEqual(a.Partition, b.Partition) {
		return fmt.Errorf("partitions differ: %v vs %v", a.Partition, b.Partition)
	}
	if math.Float64bits(a.Throughput) != math.Float64bits(b.Throughput) {
		return fmt.Errorf("throughput differs: %v vs %v", a.Throughput, b.Throughput)
	}
	if math.Float64bits(a.Improvement) != math.Float64bits(b.Improvement) {
		return fmt.Errorf("improvement differs: %v vs %v", a.Improvement, b.Improvement)
	}
	if a.Samples != b.Samples {
		return fmt.Errorf("samples differ: %d vs %d", a.Samples, b.Samples)
	}
	if len(a.History) != len(b.History) {
		return fmt.Errorf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if math.Float64bits(a.History[i]) != math.Float64bits(b.History[i]) {
			return fmt.Errorf("history[%d] differs: %v vs %v", i, a.History[i], b.History[i])
		}
	}
	if !reflect.DeepEqual(a.FailCounts, b.FailCounts) {
		return fmt.Errorf("fail counts differ: %v vs %v", a.FailCounts, b.FailCounts)
	}
	return nil
}

// TestServiceCacheHitBitIdenticalToColdPlan pins the cache contract: the
// second identical request is a hit, bit-identical to the cold plan, and
// bit-identical to what a fresh service computes cold for the same seed.
func TestServiceCacheHitBitIdenticalToColdPlan(t *testing.T) {
	ctx := context.Background()
	g := smallGraph(t)
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 30, Seed: 7}

	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2})
	cold, err := svc.Plan(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := svc.Plan(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsBitIdentical(cold, warm); err != nil {
		t.Fatalf("cache hit differs from cold plan: %v", err)
	}
	st := svc.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats report %d hits / %d misses, want 1 / 1", st.CacheHits, st.CacheMisses)
	}

	// A different seed must not hit the first entry.
	other := opts
	other.Seed = 8
	if _, err := svc.Plan(ctx, g, other); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.CacheMisses != 2 {
		t.Fatalf("different seed should miss; stats: %+v", st)
	}

	// A second service must compute the same cold result the first cached.
	svc2 := newTestService(t, mcmpart.ServiceOptions{Workers: 2})
	cold2, err := svc2.Plan(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsBitIdentical(cold, cold2); err != nil {
		t.Fatalf("cold plans diverge across services: %v", err)
	}
}

// TestServiceCacheKeyUsesCanonicalFingerprint: the same model built in a
// different node-insertion order hits the cache.
func TestServiceCacheKeyUsesCanonicalFingerprint(t *testing.T) {
	ctx := context.Background()
	const n = 8
	build := func(creationOrder []int) *mcmpart.Graph {
		g := mcmpart.NewGraph("order")
		ids := make([]int, n)
		// Node `role` is position role in the chain, whatever order the
		// nodes are created in — the graphs are isomorphic by construction.
		for _, role := range creationOrder {
			ids[role] = g.AddNode(mcmpart.Node{
				Name: "fc", Op: mcmpart.OpKind(4), FLOPs: 1e9 * float64(1+role%3),
				ParamBytes: 1 << 20, OutputBytes: 1 << 16,
			})
		}
		for i := 0; i+1 < n; i++ {
			g.MustAddEdge(ids[i], ids[i+1], 1<<16)
		}
		return g
	}
	forward, backward := make([]int, n), make([]int, n)
	for i := 0; i < n; i++ {
		forward[i], backward[i] = i, n-1-i
	}
	ga, gb := build(forward), build(backward)
	if ga.Fingerprint() != gb.Fingerprint() {
		t.Fatal("insertion orders fingerprint differently")
	}
	svc := newTestService(t, mcmpart.ServiceOptions{})
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodGreedy}
	if _, err := svc.Plan(ctx, ga, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Plan(ctx, gb, opts); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.CacheHits != 1 {
		t.Fatalf("isomorphic graph should hit the cache; stats: %+v", st)
	}
}

// TestServiceConcurrentSubmit hammers one service from many goroutines over
// a shared pre-trained policy: every job completes, results for identical
// requests are identical, and the goroutine count settles back (no leaks).
// Run under -race in CI.
func TestServiceConcurrentSubmit(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		svc, err := mcmpart.NewService(mcmpart.Dev8(), mcmpart.ServiceOptions{Workers: 4, QueueDepth: 256})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		ctx := context.Background()
		corpus := mcmpart.CorpusGraphs(1)
		if _, err := svc.Planner().Pretrain(ctx, corpus[:6], mcmpart.PretrainOptions{
			TotalSamples: 120, Checkpoints: 3, ValidationGraphs: 1, ValidationSamples: 4,
		}); err != nil {
			t.Fatal(err)
		}
		graphs := corpus[80:83]
		const goroutines = 8
		const perG = 6
		results := make([][]*mcmpart.Result, goroutines)
		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					g := graphs[i%len(graphs)]
					job, err := svc.Submit(ctx, mcmpart.PlanRequest{
						Graph:   g,
						Options: mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot, SampleBudget: 6, Seed: int64(1 + i%2)},
					})
					if err != nil {
						if errors.Is(err, mcmpart.ErrBusy) {
							continue
						}
						t.Error(err)
						return
					}
					res, err := job.Wait(ctx)
					if err != nil {
						t.Error(err)
						return
					}
					results[w] = append(results[w], res)
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// Identical requests (same graph index, same seed parity) must have
		// produced identical results across goroutines.
		for w := 1; w < goroutines; w++ {
			if len(results[w]) != len(results[0]) {
				continue // some submissions may have been shed under ErrBusy
			}
			for i := range results[w] {
				if err := resultsBitIdentical(results[0][i], results[w][i]); err != nil {
					t.Fatalf("goroutine %d request %d diverged: %v", w, i, err)
				}
			}
		}
		st := svc.Stats()
		// A duplicate request is deduplicated one of two ways depending on
		// timing: a cache hit (it arrived after the first finished) or a
		// coalesced flight (it arrived while the first was in flight).
		// Either way the planner must not have run once per request.
		if st.JobsDone == 0 || st.CacheHits+st.PlansCoalesced == 0 {
			t.Fatalf("expected completed jobs and deduplicated requests, stats: %+v", st)
		}
		if distinct := uint64(len(graphs) * 2); st.PlansExecuted > distinct {
			t.Fatalf("%d plans executed for %d distinct keys: %+v", st.PlansExecuted, distinct, st)
		}
		if st.JobsQueued != 0 || st.JobsRunning != 0 {
			t.Fatalf("queued/running not drained: %+v", st)
		}
	}()
	// Leak check: goroutines must settle back after Close.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after service close", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServiceJobCancelKeepsBestSoFar: cancelling a running job keeps the
// best-so-far result, and the job reports the cancelled state.
func TestServiceJobCancelKeepsBestSoFar(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 1})
	var job *mcmpart.Job
	started := make(chan struct{})
	var once sync.Once
	j, err := svc.Submit(context.Background(), mcmpart.PlanRequest{
		Graph: smallGraph(t),
		Options: mcmpart.PlanOptions{
			Method: mcmpart.MethodRandom, SampleBudget: 1_000_000, Seed: 3,
			Progress: func(ev mcmpart.ProgressEvent) {
				if ev.Samples >= 10 {
					once.Do(func() { close(started) })
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	job = j
	<-started
	job.Cancel()
	res, err := job.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Partition == nil {
		t.Fatal("cancelled job must keep its best-so-far result")
	}
	if st := job.Status(); st.State != mcmpart.JobCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if st := svc.Stats(); st.JobsCancelled != 1 {
		t.Fatalf("stats missed the cancellation: %+v", st)
	}
}

func TestServicePlanBatch(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{Workers: 2})
	g := smallGraph(t)
	reqs := []mcmpart.PlanRequest{
		{Graph: g, Options: mcmpart.PlanOptions{Method: mcmpart.MethodGreedy}},
		{Graph: g, Options: mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: 2}},
		{Graph: g, Options: mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 10, Seed: 3}},
	}
	results, err := svc.PlanBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil || r.Partition == nil {
			t.Fatalf("batch result %d is empty", i)
		}
	}
	// A bad request surfaces as the deterministic lowest-index error while
	// the rest still plan.
	reqs[1].Options.SampleBudget = -1
	results, err = svc.PlanBatch(context.Background(), reqs)
	if err == nil {
		t.Fatal("negative budget must fail the batch")
	}
	if results[0] == nil || results[1] != nil || results[2] == nil {
		t.Fatalf("batch must keep independent successes: %v", results)
	}
}

func TestServiceValidationAndAdmission(t *testing.T) {
	svc := newTestService(t, mcmpart.ServiceOptions{})
	ctx := context.Background()
	g := smallGraph(t)
	cases := []struct {
		name string
		req  mcmpart.PlanRequest
		want string
	}{
		{"nil graph", mcmpart.PlanRequest{Graph: nil}, "nil graph"},
		{"negative budget", mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{SampleBudget: -5}}, "negative"},
		{"negative seed", mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{Seed: -1}}, "negative"},
		{"unknown method", mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{Method: "telepathy"}}, "unknown method"},
		{"policy-less zeroshot", mcmpart.PlanRequest{Graph: g, Options: mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot}}, "pre-trained policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := svc.Submit(ctx, tc.req); err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	svc.Close()
	if _, err := svc.Submit(ctx, mcmpart.PlanRequest{Graph: g}); !errors.Is(err, mcmpart.ErrServiceClosed) {
		t.Fatalf("want ErrServiceClosed after Close, got %v", err)
	}
}

func TestServiceOptionValidation(t *testing.T) {
	for _, opts := range []mcmpart.ServiceOptions{
		{Workers: -1}, {QueueDepth: -1}, {MaxRetainedJobs: -1},
	} {
		if _, err := mcmpart.NewService(mcmpart.Dev4(), opts); err == nil {
			t.Fatalf("ServiceOptions %+v must be rejected", opts)
		}
	}
	if _, err := mcmpart.NewService(nil, mcmpart.ServiceOptions{}); err == nil {
		t.Fatal("nil package must be rejected")
	}
}

func TestPlanOptionsValidate(t *testing.T) {
	if err := (mcmpart.PlanOptions{}).Validate(); err != nil {
		t.Fatalf("zero options must be valid (defaults): %v", err)
	}
	bad := []mcmpart.PlanOptions{
		{SampleBudget: -1}, {Seed: -2}, {Method: "nope"},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("PlanOptions %+v must be invalid", o)
		}
	}
	if err := (mcmpart.PretrainOptions{}).Validate(); err != nil {
		t.Fatalf("zero pretrain options must be valid: %v", err)
	}
	// A small explicit budget with default checkpoints caps the default
	// instead of erroring over a value the caller never set.
	if err := (mcmpart.PretrainOptions{TotalSamples: 5}).Validate(); err != nil {
		t.Fatalf("small TotalSamples with default Checkpoints must be valid: %v", err)
	}
	badPre := []mcmpart.PretrainOptions{
		{TotalSamples: -1}, {Checkpoints: -1}, {ValidationSamples: -1},
		{ValidationGraphs: -1}, {Workers: -3}, {Seed: -1},
		{TotalSamples: 10, Checkpoints: 20},
	}
	for _, o := range badPre {
		if err := o.Validate(); err == nil {
			t.Fatalf("PretrainOptions %+v must be invalid", o)
		}
	}
}
