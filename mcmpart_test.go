package mcmpart_test

import (
	"testing"

	"mcmpart"
)

func smallGraph(t *testing.T) *mcmpart.Graph {
	t.Helper()
	g := mcmpart.NewGraph("api-test")
	prev := -1
	for i := 0; i < 12; i++ {
		id := g.AddNode(mcmpart.Node{
			Name:        "fc",
			Op:          mcmpart.OpKind(4), // matmul
			FLOPs:       1e9,
			ParamBytes:  1 << 20,
			OutputBytes: 1 << 16,
		})
		if prev >= 0 {
			g.MustAddEdge(prev, id, 1<<16)
		}
		prev = id
	}
	return g
}

func TestPartitionGraphMethods(t *testing.T) {
	g := smallGraph(t)
	pkg := mcmpart.Dev4()
	for _, m := range []mcmpart.Method{mcmpart.MethodGreedy, mcmpart.MethodRandom, mcmpart.MethodSA} {
		res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{Method: m, SampleBudget: 30, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := mcmpart.Validate(g, pkg, res.Partition); err != nil {
			t.Fatalf("%s produced invalid partition: %v", m, err)
		}
		if res.Throughput <= 0 || res.Improvement <= 0 {
			t.Fatalf("%s: bad result %+v", m, res)
		}
	}
}

func TestPartitionGraphRL(t *testing.T) {
	g := smallGraph(t)
	pkg := mcmpart.Dev4()
	res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{Method: mcmpart.MethodRL, SampleBudget: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcmpart.Validate(g, pkg, res.Partition); err != nil {
		t.Fatal(err)
	}
	// The RL search should at least match the greedy baseline.
	if res.Improvement < 1 {
		t.Fatalf("RL improvement %.3f < 1", res.Improvement)
	}
}

func TestPartitionGraphWithSimulator(t *testing.T) {
	g := smallGraph(t)
	pkg := mcmpart.Dev4()
	res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{
		Method: mcmpart.MethodRandom, SampleBudget: 20, Seed: 3, UseSimulator: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hw := mcmpart.Evaluate(g, pkg, res.Partition)
	if !hw.Valid {
		t.Fatalf("simulator-searched partition invalid on hardware: %s", hw.FailReason)
	}
	if est := mcmpart.EstimateThroughput(g, pkg, res.Partition); est <= 0 {
		t.Fatal("analytical estimate should be positive")
	}
}

func TestPartitionGraphErrors(t *testing.T) {
	g := smallGraph(t)
	pkg := mcmpart.Dev4()
	if _, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{Method: "bogus"}); err == nil {
		t.Fatal("unknown method should fail")
	}
	bad := *pkg
	bad.Chips = 0
	if _, err := mcmpart.PartitionGraph(g, &bad, mcmpart.Options{}); err == nil {
		t.Fatal("invalid package should fail")
	}
	empty := mcmpart.NewGraph("empty")
	if _, err := mcmpart.PartitionGraph(empty, pkg, mcmpart.Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestBERTAndCorpusAccessors(t *testing.T) {
	if g := mcmpart.BERT(); g.NumNodes() != 2138 {
		t.Fatalf("BERT nodes = %d", g.NumNodes())
	}
	if gs := mcmpart.CorpusGraphs(1); len(gs) != 87 {
		t.Fatalf("corpus size = %d", len(gs))
	}
	if _, err := mcmpart.PackagePreset("edge36"); err != nil {
		t.Fatal(err)
	}
	if _, err := mcmpart.PackagePreset("nope"); err == nil {
		t.Fatal("unknown preset should fail")
	}
}
