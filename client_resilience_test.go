package mcmpart_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mcmpart"
)

// retryClientOptions keeps retry-path tests fast.
func retryClientOptions(maxRetries int) mcmpart.ClientOptions {
	return mcmpart.ClientOptions{
		MaxRetries:  maxRetries,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Seed:        7,
	}
}

// TestClientRetriesTransientFailures pins the retry policy: 503s (a
// draining daemon) are retried until the daemon recovers, within the
// configured attempt budget.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: "draining"})
			return
		}
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(map[string]bool{"ok": true})
	}))
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, retryClientOptions(3))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("retrying client must outlast 2 transient failures: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + 1 success)", n)
	}
}

// TestClientRetryBudgetExhausted: when the failures outlast MaxRetries the
// final typed error surfaces, and the attempt count is exactly 1+MaxRetries.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: "queue full"})
	}))
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, retryClientOptions(2))
	err := c.Health(context.Background())
	if !errors.Is(err, mcmpart.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", n)
	}
}

// TestClientDoesNotRetryFatalErrors: 400s are the caller's bug, not a
// transient condition — exactly one attempt.
func TestClientDoesNotRetryFatalErrors(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: "no graph"})
	}))
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, retryClientOptions(5))
	var apiErr *mcmpart.APIError
	if err := c.Health(context.Background()); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 APIError", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (400 must not be retried)", n)
	}
}

// TestClientDefaultHasNoRetries pins backward compatibility: NewClient
// surfaces the first failure immediately.
func TestClientDefaultHasNoRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: "closed"})
	}))
	defer srv.Close()

	c := mcmpart.NewClient(srv.URL, nil)
	if err := c.Health(context.Background()); !errors.Is(err, mcmpart.ErrServiceClosed) {
		t.Fatalf("err = %v, want ErrServiceClosed", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1", n)
	}
}

// TestAPIErrorCarriesRetryAfter pins the parsed header on the typed error.
func TestAPIErrorCarriesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: "busy"})
	}))
	defer srv.Close()

	err := mcmpart.NewClient(srv.URL, nil).Health(context.Background())
	var apiErr *mcmpart.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
}

// TestClientHonorsRetryAfter: a server Retry-After longer than the
// computed backoff stretches the wait — observable as elapsed time.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: "draining"})
			return
		}
		w.WriteHeader(http.StatusOK)
		_ = json.NewEncoder(w).Encode(map[string]bool{"ok": true})
	}))
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, retryClientOptions(1))
	start := time.Now()
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry waited %v; Retry-After: 1 demands ~1s", elapsed)
	}
}

// TestClientRetryRespectsContext: a cancelled context cuts the backoff
// sleep short and is never itself retried.
func TestClientRetryRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: "draining"})
	}))
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, retryClientOptions(3))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context expiry took %v to cut the backoff short", elapsed)
	}
}

// flakyJobServer serves a job-status endpoint from a scripted sequence of
// responses; "err" entries drop the request at the HTTP level.
func flakyJobServer(t *testing.T, script []string) *httptest.Server {
	t.Helper()
	var step atomic.Int32
	var srv *httptest.Server
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(step.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		switch script[i] {
		case "err":
			panic(http.ErrAbortHandler) // client sees a transport error
		case "running":
			_ = json.NewEncoder(w).Encode(mcmpart.JobResponse{JobStatus: mcmpart.JobStatus{ID: "job-1", State: mcmpart.JobRunning}})
		case "done":
			_ = json.NewEncoder(w).Encode(mcmpart.JobResponse{JobStatus: mcmpart.JobStatus{ID: "job-1", State: mcmpart.JobDone}})
		default:
			t.Fatalf("bad script entry %q", script[i])
		}
	}))
	return srv
}

// TestWaitJobToleratesTransientPollFailures pins the WaitJob fix: isolated
// poll failures inside the consecutive-error budget do not abort the wait,
// and the budget resets on success.
func TestWaitJobToleratesTransientPollFailures(t *testing.T) {
	srv := flakyJobServer(t, []string{"err", "err", "running", "err", "err", "running", "err", "done"})
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, mcmpart.ClientOptions{PollErrorBudget: 3})
	resp, err := c.WaitJob(context.Background(), "job-1", time.Millisecond)
	if err != nil {
		t.Fatalf("WaitJob must ride out transient polls within budget: %v", err)
	}
	if resp.State != mcmpart.JobDone {
		t.Fatalf("state = %s, want done", resp.State)
	}
}

// TestWaitJobGivesUpAfterBudget: a dead daemon exhausts the consecutive
// budget and surfaces the underlying error.
func TestWaitJobGivesUpAfterBudget(t *testing.T) {
	srv := flakyJobServer(t, []string{"running", "err", "err", "err", "err"})
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, mcmpart.ClientOptions{PollErrorBudget: 3})
	_, err := c.WaitJob(context.Background(), "job-1", time.Millisecond)
	if err == nil {
		t.Fatal("WaitJob must give up once consecutive failures exhaust the budget")
	}
}

// TestWaitJobFatalErrorAborts: a 404 is not transient — no budget spent.
func TestWaitJobFatalErrorAborts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(mcmpart.ErrorResponse{Error: fmt.Sprintf("unknown job %q", "nope")})
	}))
	defer srv.Close()

	c := mcmpart.NewClientWithOptions(srv.URL, nil, mcmpart.ClientOptions{PollErrorBudget: 50})
	var apiErr *mcmpart.APIError
	if _, err := c.WaitJob(context.Background(), "nope", time.Millisecond); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want an immediate 404 APIError", err)
	}
}
