// Package mcmpart partitions machine-learning computation graphs across the
// chiplets of a multi-chip-module (MCM) accelerator, reproducing
// "A Transferable Approach for Partitioning Machine Learning Models on
// Multi-Chip-Modules" (Xie et al., MLSys 2022).
//
// The package is the public facade over the building blocks in internal/:
// computation graphs, MCM package descriptors, the constraint solver, the
// analytical cost model and hardware simulator, the search baselines, and
// the constrained-RL partitioner with its pre-training pipeline.
//
// The primary entry point is the Planner, a reusable planning session bound
// to one package. It makes the paper's headline result — pre-train once,
// deploy zero-shot or with fine-tuning on unseen graphs — the public
// surface:
//
//	pl, err := mcmpart.NewPlanner(mcmpart.Edge36())
//	pl.Pretrain(ctx, mcmpart.CorpusGraphs(1)[:12], mcmpart.PretrainOptions{})
//	pl.SavePolicy("edge36.policy.json") // reusable, fingerprint-validated
//	res, err := pl.Plan(ctx, mcmpart.BERT(), mcmpart.PlanOptions{
//		Method:       mcmpart.MethodZeroShot,
//		SampleBudget: 200,
//	})
//	fmt.Println(res.Partition, res.Throughput)
//
// For serving many callers from one process — or over the network — wrap
// the planner in a Service: a concurrency-safe front end adding a plan
// cache (keyed by canonical graph fingerprint), a directory-backed policy
// registry, and an async job queue. cmd/mcmpartd serves a Service over the
// HTTP JSON API in NewHTTPHandler, and Client is its thin Go client.
//
// PartitionGraph remains as a deprecated one-shot wrapper over the Planner.
// See DESIGN.md for the system inventory, deviations, and reproduction
// notes; cmd/mcmexp regenerates every table and figure of the paper.
//
//mcmlint:deterministic
//mcmlint:errcontract
package mcmpart

import (
	"context"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/rl"
	"mcmpart/internal/workload"
)

// Re-exported core types. The implementations live in internal packages;
// these aliases are the supported public names.
type (
	// Graph is a computation graph of tensor operations.
	Graph = graph.Graph
	// Node is one tensor operation.
	Node = graph.Node
	// OpKind identifies an operator kind.
	OpKind = graph.OpKind
	// Package describes an MCM accelerator package.
	Package = mcm.Package
	// Partition maps node IDs to chip IDs.
	Partition = partition.Partition
	// HardwareResult is a simulated hardware evaluation.
	HardwareResult = hwsim.Result
)

// NewGraph returns an empty computation graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// Edge36 returns the 36-chiplet package the paper evaluates on.
func Edge36() *Package { return mcm.Edge36() }

// Dev4 returns a small 4-chip package for experimentation.
func Dev4() *Package { return mcm.Dev4() }

// Dev8 returns an 8-chip package for experimentation.
func Dev8() *Package { return mcm.Dev8() }

// Het4 returns a heterogeneous big/little 4-chip package (two 16 MiB /
// 2 TFLOP/s dies, two 8 MiB / 1 TFLOP/s dies) on the default ring.
func Het4() *Package { return mcm.Het4() }

// Dev8Bi returns the dev8 package on a bidirectional wraparound ring.
func Dev8Bi() *Package { return mcm.Dev8Bi() }

// Mesh16 returns a 16-chip 4x4 2D-mesh package with X-then-Y routing.
func Mesh16() *Package { return mcm.Mesh16() }

// PackagePreset returns a package by name ("dev4", "dev8", "dev8bi",
// "edge36", "het4", "mesh16").
func PackagePreset(name string) (*Package, error) { return mcm.Preset(name) }

// PackageFingerprint returns the stable content hash of a package
// descriptor — the key policies are bound to in artifacts and the registry,
// and the package half of the Service plan-cache key. Graphs have the
// matching Graph.Fingerprint method (canonical: isomorphic node-insertion
// orders hash identically).
func PackageFingerprint(pkg *Package) string { return rl.PackageFingerprint(pkg) }

// ParsePackageJSON deserializes and validates a package descriptor,
// including heterogeneous per-chip arrays and the topology tag; JSON from
// before those fields existed parses to the same homogeneous-ring behavior
// as ever.
func ParsePackageJSON(data []byte) (*Package, error) { return mcm.ParseJSON(data) }

// BERT builds the production-scale 2138-node transformer workload.
func BERT() *Graph { return workload.BERT() }

// CorpusGraphs generates the 87-model synthetic corpus.
func CorpusGraphs(seed int64) []*Graph { return workload.CorpusGraphs(seed) }

// AugmentedCorpusGraphs generates the 87-model corpus plus `random`
// deterministic scenario-fuzzing graphs (layered, branchy, diamond, and
// skewed-MoE families from internal/randgraph) — the opt-in that lets
// pre-training consume generated scenarios beyond the paper's hand-built
// families. random == 0 is exactly CorpusGraphs(seed).
func AugmentedCorpusGraphs(seed int64, random int) []*Graph {
	return workload.AugmentedCorpusGraphs(seed, random)
}

// Method selects a partitioning strategy for Planner.Plan (and the
// deprecated PartitionGraph).
type Method string

// Available strategies.
const (
	// MethodGreedy is the production compiler's O(N) heuristic.
	MethodGreedy Method = "greedy"
	// MethodRandom is random search through the constraint solver.
	MethodRandom Method = "random"
	// MethodSA is simulated annealing over solver input distributions.
	MethodSA Method = "sa"
	// MethodRL trains the constrained-RL partitioner from scratch.
	MethodRL Method = "rl"
	// MethodZeroShot deploys the planner's pre-trained policy with no
	// weight updates — the paper's "RL Zeroshot" configuration. Requires
	// Planner.Pretrain or Planner.LoadPolicy first.
	MethodZeroShot Method = "zeroshot"
	// MethodFineTune continues PPO training of the planner's pre-trained
	// policy on the target graph — the paper's "RL Finetuning"
	// configuration. Requires Planner.Pretrain or Planner.LoadPolicy
	// first.
	MethodFineTune Method = "finetune"
	// MethodAnalytic is the static-analysis fast path: a propagation-based
	// analysis (internal/analyze) constructs a valid contiguous layout in
	// near-linear time with no per-candidate evaluation — the only method
	// that scales to 100k-node graphs. Deterministic; ignores SampleBudget.
	MethodAnalytic Method = "analytic"
)

// Options configure the deprecated PartitionGraph. New code uses
// PlanOptions with a Planner.
type Options struct {
	// Method defaults to MethodRL.
	Method Method
	// SampleBudget bounds the number of candidate evaluations for the
	// search-based methods (default 200; ignored by MethodGreedy).
	SampleBudget int
	// Seed makes runs reproducible. Seed 0 is remapped to 1 (the
	// documented default).
	Seed int64
	// UseSimulator evaluates candidates on the hardware simulator
	// (including the dynamic memory constraint) instead of the faster
	// analytical cost model.
	UseSimulator bool
}

// Result is the outcome of a plan.
type Result struct {
	// Partition is the best valid partition found.
	Partition Partition
	// Throughput is its evaluated throughput (inferences/s).
	Throughput float64
	// Improvement is Throughput normalized to the greedy heuristic.
	Improvement float64
	// Samples is the number of evaluations consumed.
	Samples int
	// History is the best-so-far improvement ratio after every sample —
	// the curve the paper's figures plot (History[Samples-1] ==
	// Improvement).
	History []float64
	// FailCounts tallies rejected samples by failure reason (nil when
	// every sample was valid).
	FailCounts map[string]int
}

// SamplesToImprovement returns the number of samples the plan needed to
// first reach the given improvement over the greedy baseline, and whether
// it was reached at all — the "samples to quality" metric of the paper's
// Tables 2 and 3.
func (r *Result) SamplesToImprovement(threshold float64) (int, bool) {
	for i, v := range r.History {
		if v >= threshold {
			return i + 1, true
		}
	}
	return 0, false
}

// PartitionGraph searches for a high-throughput valid partition of g on the
// package using the selected method.
//
// Deprecated: PartitionGraph builds a throwaway planning session per call,
// so nothing — policy, package validation, solver setup — is reusable, and
// the pre-trained methods (MethodZeroShot, MethodFineTune) are unavailable.
// Use NewPlanner and Planner.Plan; this wrapper remains for compatibility
// and produces bit-identical results for the four original methods.
func PartitionGraph(g *Graph, pkg *Package, opts Options) (*Result, error) {
	pl, err := NewPlanner(pkg)
	if err != nil {
		return nil, err
	}
	return pl.Plan(context.Background(), g, PlanOptions{
		Method:       opts.Method,
		SampleBudget: opts.SampleBudget,
		Seed:         opts.Seed,
		UseSimulator: opts.UseSimulator,
	})
}

// Evaluate runs a partition on the hardware simulator, returning throughput,
// per-resource utilization and the dynamic-constraint verdict. It uses
// simulator seed 1 — the same value PlanOptions.Seed defaults to (Seed 0 is
// remapped to 1) — so a plan run with default options and its Evaluate
// check agree on the simulated hardware instance. Seeds only influence
// measurement noise (Simulator.Measure), never the noise-free Evaluate
// verdict, so this choice is about consistency, not numbers. Use
// Planner.Assess to pick the environment and seed explicitly.
func Evaluate(g *Graph, pkg *Package, p Partition) HardwareResult {
	return hwsim.New(pkg, hwsim.Options{Seed: 1}).Evaluate(g, p)
}

// EstimateThroughput runs the analytical cost model (no memory checking).
func EstimateThroughput(g *Graph, pkg *Package, p Partition) float64 {
	return costmodel.New(pkg).Throughput(g, p)
}

// Validate checks a partition against the static hardware constraints,
// including transfer routability on the package's interconnect topology.
func Validate(g *Graph, pkg *Package, p Partition) error {
	return p.ValidateOn(g, pkg)
}
