// Package mcmpart partitions machine-learning computation graphs across the
// chiplets of a multi-chip-module (MCM) accelerator, reproducing
// "A Transferable Approach for Partitioning Machine Learning Models on
// Multi-Chip-Modules" (Xie et al., MLSys 2022).
//
// The package is the public facade over the building blocks in internal/:
// computation graphs, MCM package descriptors, the constraint solver, the
// analytical cost model and hardware simulator, the search baselines, and
// the constrained-RL partitioner with its pre-training pipeline. The one
// call most users need is PartitionGraph:
//
//	g := mcmpart.BERT()
//	pkg := mcmpart.Edge36()
//	res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{
//		Method:       mcmpart.MethodRL,
//		SampleBudget: 200,
//	})
//	fmt.Println(res.Partition, res.Throughput)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction results; cmd/mcmexp regenerates every table and figure of
// the paper.
package mcmpart

import (
	"fmt"
	"math/rand"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// Re-exported core types. The implementations live in internal packages;
// these aliases are the supported public names.
type (
	// Graph is a computation graph of tensor operations.
	Graph = graph.Graph
	// Node is one tensor operation.
	Node = graph.Node
	// OpKind identifies an operator kind.
	OpKind = graph.OpKind
	// Package describes an MCM accelerator package.
	Package = mcm.Package
	// Partition maps node IDs to chip IDs.
	Partition = partition.Partition
	// HardwareResult is a simulated hardware evaluation.
	HardwareResult = hwsim.Result
)

// NewGraph returns an empty computation graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// Edge36 returns the 36-chiplet package the paper evaluates on.
func Edge36() *Package { return mcm.Edge36() }

// Dev4 returns a small 4-chip package for experimentation.
func Dev4() *Package { return mcm.Dev4() }

// Dev8 returns an 8-chip package for experimentation.
func Dev8() *Package { return mcm.Dev8() }

// PackagePreset returns a package by name ("dev4", "dev8", "edge36").
func PackagePreset(name string) (*Package, error) { return mcm.Preset(name) }

// BERT builds the production-scale 2138-node transformer workload.
func BERT() *Graph { return workload.BERT() }

// CorpusGraphs generates the 87-model synthetic corpus.
func CorpusGraphs(seed int64) []*Graph { return workload.CorpusGraphs(seed) }

// Method selects a partitioning strategy for PartitionGraph.
type Method string

// Available strategies.
const (
	// MethodGreedy is the production compiler's O(N) heuristic.
	MethodGreedy Method = "greedy"
	// MethodRandom is random search through the constraint solver.
	MethodRandom Method = "random"
	// MethodSA is simulated annealing over solver input distributions.
	MethodSA Method = "sa"
	// MethodRL trains the constrained-RL partitioner from scratch.
	MethodRL Method = "rl"
)

// Options configure PartitionGraph.
type Options struct {
	// Method defaults to MethodRL.
	Method Method
	// SampleBudget bounds the number of candidate evaluations for the
	// search-based methods (default 200; ignored by MethodGreedy).
	SampleBudget int
	// Seed makes runs reproducible (default 1).
	Seed int64
	// UseSimulator evaluates candidates on the hardware simulator
	// (including the dynamic memory constraint) instead of the faster
	// analytical cost model.
	UseSimulator bool
}

// Result is the outcome of PartitionGraph.
type Result struct {
	// Partition is the best valid partition found.
	Partition Partition
	// Throughput is its evaluated throughput (inferences/s).
	Throughput float64
	// Improvement is Throughput normalized to the greedy heuristic.
	Improvement float64
	// Samples is the number of evaluations consumed.
	Samples int
}

// PartitionGraph searches for a high-throughput valid partition of g on the
// package using the selected method.
func PartitionGraph(g *Graph, pkg *Package, opts Options) (*Result, error) {
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.Method == "" {
		opts.Method = MethodRL
	}
	if opts.SampleBudget <= 0 {
		opts.SampleBudget = 200
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var eval rl.EvalFunc
	if opts.UseSimulator {
		sim := hwsim.New(pkg, hwsim.Options{Seed: opts.Seed})
		eval = func(p partition.Partition) (float64, bool) { return sim.EvaluateThroughput(g, p) }
	} else {
		model := costmodel.New(pkg)
		eval = func(p partition.Partition) (float64, bool) { return model.Evaluate(g, p) }
	}
	greedy := search.Greedy(g, pkg.Chips, pkg.SRAMBytes)
	baseTh, ok := eval(greedy)
	if !ok || baseTh <= 0 {
		return nil, fmt.Errorf("mcmpart: greedy baseline is invalid on %s; the graph may not fit the package", g.Name())
	}
	if opts.Method == MethodGreedy {
		return &Result{Partition: greedy, Throughput: baseTh, Improvement: 1, Samples: 1}, nil
	}

	pr, err := cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	if err != nil {
		return nil, err
	}
	env := rl.NewEnv(rl.NewGraphContext(g), pr, eval, baseTh)
	env.PartFactory = func() (cpsolver.Partitioner, error) {
		return cpsolver.NewAuto(g, pkg.Chips, cpsolver.Options{})
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	switch opts.Method {
	case MethodRandom:
		search.Random(env, opts.SampleBudget, rng)
	case MethodSA:
		search.Anneal(env, opts.SampleBudget, search.SAConfig{}, rng)
	case MethodRL:
		policy := rl.NewPolicy(rl.QuickConfig(pkg.Chips), rng)
		trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
		trainer.TrainUntil([]*rl.Env{env}, opts.SampleBudget)
	default:
		return nil, fmt.Errorf("mcmpart: unknown method %q", opts.Method)
	}
	if env.Best == nil {
		return nil, fmt.Errorf("mcmpart: no valid partition found within %d samples", env.Samples)
	}
	return &Result{
		Partition:   env.Best,
		Throughput:  env.BestThroughput,
		Improvement: env.BestImprovement(),
		Samples:     env.Samples,
	}, nil
}

// Evaluate runs a partition on the hardware simulator, returning throughput,
// per-resource utilization and the dynamic-constraint verdict.
func Evaluate(g *Graph, pkg *Package, p Partition) HardwareResult {
	return hwsim.New(pkg, hwsim.Options{}).Evaluate(g, p)
}

// EstimateThroughput runs the analytical cost model (no memory checking).
func EstimateThroughput(g *Graph, pkg *Package, p Partition) float64 {
	return costmodel.New(pkg).Throughput(g, p)
}

// Validate checks a partition against the static hardware constraints.
func Validate(g *Graph, pkg *Package, p Partition) error {
	return p.Validate(g, pkg.Chips)
}
