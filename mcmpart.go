// Package mcmpart partitions machine-learning computation graphs across the
// chiplets of a multi-chip-module (MCM) accelerator, reproducing
// "A Transferable Approach for Partitioning Machine Learning Models on
// Multi-Chip-Modules" (Xie et al., MLSys 2022).
//
// The package is the public facade over the building blocks in internal/:
// computation graphs, MCM package descriptors, the constraint solver, the
// analytical cost model and hardware simulator, the search baselines, and
// the constrained-RL partitioner with its pre-training pipeline. The one
// call most users need is PartitionGraph:
//
//	g := mcmpart.BERT()
//	pkg := mcmpart.Edge36()
//	res, err := mcmpart.PartitionGraph(g, pkg, mcmpart.Options{
//		Method:       mcmpart.MethodRL,
//		SampleBudget: 200,
//	})
//	fmt.Println(res.Partition, res.Throughput)
//
// See DESIGN.md for the system inventory, deviations, and reproduction
// notes; cmd/mcmexp regenerates every table and figure of the paper.
package mcmpart

import (
	"fmt"
	"math/rand"

	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/mcm"
	"mcmpart/internal/partition"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
	"mcmpart/internal/workload"
)

// Re-exported core types. The implementations live in internal packages;
// these aliases are the supported public names.
type (
	// Graph is a computation graph of tensor operations.
	Graph = graph.Graph
	// Node is one tensor operation.
	Node = graph.Node
	// OpKind identifies an operator kind.
	OpKind = graph.OpKind
	// Package describes an MCM accelerator package.
	Package = mcm.Package
	// Partition maps node IDs to chip IDs.
	Partition = partition.Partition
	// HardwareResult is a simulated hardware evaluation.
	HardwareResult = hwsim.Result
)

// NewGraph returns an empty computation graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// Edge36 returns the 36-chiplet package the paper evaluates on.
func Edge36() *Package { return mcm.Edge36() }

// Dev4 returns a small 4-chip package for experimentation.
func Dev4() *Package { return mcm.Dev4() }

// Dev8 returns an 8-chip package for experimentation.
func Dev8() *Package { return mcm.Dev8() }

// Het4 returns a heterogeneous big/little 4-chip package (two 16 MiB /
// 2 TFLOP/s dies, two 8 MiB / 1 TFLOP/s dies) on the default ring.
func Het4() *Package { return mcm.Het4() }

// Dev8Bi returns the dev8 package on a bidirectional wraparound ring.
func Dev8Bi() *Package { return mcm.Dev8Bi() }

// Mesh16 returns a 16-chip 4x4 2D-mesh package with X-then-Y routing.
func Mesh16() *Package { return mcm.Mesh16() }

// PackagePreset returns a package by name ("dev4", "dev8", "dev8bi",
// "edge36", "het4", "mesh16").
func PackagePreset(name string) (*Package, error) { return mcm.Preset(name) }

// ParsePackageJSON deserializes and validates a package descriptor,
// including heterogeneous per-chip arrays and the topology tag; JSON from
// before those fields existed parses to the same homogeneous-ring behavior
// as ever.
func ParsePackageJSON(data []byte) (*Package, error) { return mcm.ParseJSON(data) }

// BERT builds the production-scale 2138-node transformer workload.
func BERT() *Graph { return workload.BERT() }

// CorpusGraphs generates the 87-model synthetic corpus.
func CorpusGraphs(seed int64) []*Graph { return workload.CorpusGraphs(seed) }

// Method selects a partitioning strategy for PartitionGraph.
type Method string

// Available strategies.
const (
	// MethodGreedy is the production compiler's O(N) heuristic.
	MethodGreedy Method = "greedy"
	// MethodRandom is random search through the constraint solver.
	MethodRandom Method = "random"
	// MethodSA is simulated annealing over solver input distributions.
	MethodSA Method = "sa"
	// MethodRL trains the constrained-RL partitioner from scratch.
	MethodRL Method = "rl"
)

// Options configure PartitionGraph.
type Options struct {
	// Method defaults to MethodRL.
	Method Method
	// SampleBudget bounds the number of candidate evaluations for the
	// search-based methods (default 200; ignored by MethodGreedy).
	SampleBudget int
	// Seed makes runs reproducible (default 1).
	Seed int64
	// UseSimulator evaluates candidates on the hardware simulator
	// (including the dynamic memory constraint) instead of the faster
	// analytical cost model.
	UseSimulator bool
}

// Result is the outcome of PartitionGraph.
type Result struct {
	// Partition is the best valid partition found.
	Partition Partition
	// Throughput is its evaluated throughput (inferences/s).
	Throughput float64
	// Improvement is Throughput normalized to the greedy heuristic.
	Improvement float64
	// Samples is the number of evaluations consumed.
	Samples int
}

// PartitionGraph searches for a high-throughput valid partition of g on the
// package using the selected method.
func PartitionGraph(g *Graph, pkg *Package, opts Options) (*Result, error) {
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.Method == "" {
		opts.Method = MethodRL
	}
	if opts.SampleBudget <= 0 {
		opts.SampleBudget = 200
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	var eval rl.EvalFunc
	if opts.UseSimulator {
		sim := hwsim.New(pkg, hwsim.Options{Seed: opts.Seed})
		eval = func(p partition.Partition) (float64, bool) { return sim.EvaluateThroughput(g, p) }
	} else {
		model := costmodel.New(pkg)
		eval = func(p partition.Partition) (float64, bool) { return model.Evaluate(g, p) }
	}
	greedy := search.GreedyPackage(g, pkg)
	baseTh, ok := eval(greedy)
	if !ok || baseTh <= 0 {
		return nil, fmt.Errorf("mcmpart: greedy baseline is invalid on %s; the graph may not fit the package", g.Name())
	}
	if opts.Method == MethodGreedy {
		return &Result{Partition: greedy, Throughput: baseTh, Improvement: 1, Samples: 1}, nil
	}

	pr, err := cpsolver.NewAutoPkg(g, pkg, cpsolver.Options{})
	if err != nil {
		return nil, err
	}
	// Heterogeneous packages expose per-chip capacities to the policy so
	// it can learn which dies are big and which are little; homogeneous
	// packages keep the paper's exact network shape.
	ctx := rl.NewGraphContext(g)
	policyCfg := rl.QuickConfig(pkg.Chips)
	if pkg.Heterogeneous() {
		ctx = rl.NewGraphContextForPackage(g, pkg)
		policyCfg.ChipFeatures = true
	}
	env := rl.NewEnv(ctx, pr, eval, baseTh)
	env.PartFactory = func() (cpsolver.Partitioner, error) {
		return cpsolver.NewAutoPkg(g, pkg, cpsolver.Options{})
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	switch opts.Method {
	case MethodRandom:
		search.Random(env, opts.SampleBudget, rng)
	case MethodSA:
		search.Anneal(env, opts.SampleBudget, search.SAConfig{}, rng)
	case MethodRL:
		policy := rl.NewPolicy(policyCfg, rng)
		trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
		trainer.TrainUntil([]*rl.Env{env}, opts.SampleBudget)
	default:
		return nil, fmt.Errorf("mcmpart: unknown method %q", opts.Method)
	}
	if env.Best == nil {
		return nil, fmt.Errorf("mcmpart: no valid partition found within %d samples", env.Samples)
	}
	return &Result{
		Partition:   env.Best,
		Throughput:  env.BestThroughput,
		Improvement: env.BestImprovement(),
		Samples:     env.Samples,
	}, nil
}

// Evaluate runs a partition on the hardware simulator, returning throughput,
// per-resource utilization and the dynamic-constraint verdict.
func Evaluate(g *Graph, pkg *Package, p Partition) HardwareResult {
	return hwsim.New(pkg, hwsim.Options{}).Evaluate(g, p)
}

// EstimateThroughput runs the analytical cost model (no memory checking).
func EstimateThroughput(g *Graph, pkg *Package, p Partition) float64 {
	return costmodel.New(pkg).Throughput(g, p)
}

// Validate checks a partition against the static hardware constraints,
// including transfer routability on the package's interconnect topology.
func Validate(g *Graph, pkg *Package, p Partition) error {
	return p.ValidateOn(g, pkg)
}
