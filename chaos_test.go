package mcmpart_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mcmpart"
	"mcmpart/internal/faultinject"
)

// chainGraph builds an n-node linear graph; different n means a different
// fingerprint, so the chaos suite exercises several cache keys at once.
func chainGraph(t *testing.T, n int) *mcmpart.Graph {
	t.Helper()
	g := mcmpart.NewGraph(fmt.Sprintf("chaos-%d", n))
	prev := -1
	for i := 0; i < n; i++ {
		id := g.AddNode(mcmpart.Node{
			Name:        "fc",
			Op:          mcmpart.OpKind(4), // matmul
			FLOPs:       1e9,
			ParamBytes:  1 << 20,
			OutputBytes: 1 << 16,
		})
		if prev >= 0 {
			g.MustAddEdge(prev, id, 1<<16)
		}
		prev = id
	}
	return g
}

// TestChaosDaemonUnderInjectedFaults is the fault-injection harness'
// integration oracle: a retrying client hammers the service through the
// real HTTP stack while evaluator errors, truncated responses, and disk
// faults fire on a seeded schedule. The contract under chaos is absolute:
// every request either returns the bit-identical correct plan for its key
// or a typed error — never a corrupt, invalid, or non-deterministic plan —
// and once the faults stop, every key plans cleanly.
func TestChaosDaemonUnderInjectedFaults(t *testing.T) {
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 25, Seed: 9}
	graphs := []*mcmpart.Graph{chainGraph(t, 8), chainGraph(t, 10), chainGraph(t, 12), chainGraph(t, 14)}

	// Ground truth, computed before any fault is armed.
	control := newTestService(t, mcmpart.ServiceOptions{})
	want := make([]*mcmpart.Result, len(graphs))
	for i, g := range graphs {
		res, err := control.Plan(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := mcmpart.Validate(g, control.Package(), res.Partition); err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	svc := newTestService(t, mcmpart.ServiceOptions{
		Workers:  4,
		CacheDir: filepath.Join(t.TempDir(), "plans"),
	})
	srv := httptest.NewServer(faultinject.Middleware(mcmpart.NewHTTPHandler(svc)))
	defer srv.Close()

	set := faultinject.NewSet(42,
		faultinject.Rule{Point: faultinject.PointPlanEvaluate, Fault: faultinject.Fault{Err: errors.New("chaos: evaluator")}, Prob: 0.2},
		faultinject.Rule{Point: faultinject.PointHTTPResponse, Fault: faultinject.Fault{Truncate: true}, Prob: 0.15},
		faultinject.Rule{Point: faultinject.PointDiskWrite, Fault: faultinject.Fault{Err: errors.New("chaos: disk write")}, Prob: 0.5},
		faultinject.Rule{Point: faultinject.PointDiskRead, Fault: faultinject.Fault{Err: errors.New("chaos: disk read")}, Prob: 0.5},
	)
	faultinject.Enable(set)
	t.Cleanup(faultinject.Disable)

	client := mcmpart.NewClientWithOptions(srv.URL, nil, mcmpart.ClientOptions{
		MaxRetries:  6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Seed:        3,
	})

	const requests = 48
	var wg sync.WaitGroup
	var mu sync.Mutex
	successes, failures := 0, 0
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gi := i % len(graphs)
			resp, err := client.Plan(context.Background(), graphs[gi], opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// Every failure must be a surfaced, typed condition: a daemon
				// error response (APIError) or a transport failure the retry
				// budget could not outlast — never a mangled 2xx.
				var apiErr *mcmpart.APIError
				if errors.As(err, &apiErr) && apiErr.StatusCode/100 == 2 {
					t.Errorf("request %d: 2xx wrapped in an error: %v", i, err)
				}
				failures++
				return
			}
			res := resp.Result.Result()
			if res == nil {
				t.Errorf("request %d: success with no result", i)
				return
			}
			if err := mcmpart.Validate(graphs[gi], svc.Package(), res.Partition); err != nil {
				t.Errorf("request %d: invalid partition under chaos: %v", i, err)
			}
			if err := resultsBitIdentical(want[gi], res); err != nil {
				t.Errorf("request %d: non-deterministic plan under chaos: %v", i, err)
			}
			successes++
		}(i)
	}
	wg.Wait()

	if successes == 0 {
		t.Fatal("chaos schedule drowned every request; the suite proved nothing")
	}
	firedSomething := false
	for _, p := range []faultinject.Point{faultinject.PointPlanEvaluate, faultinject.PointHTTPResponse, faultinject.PointDiskWrite, faultinject.PointDiskRead} {
		if _, fired := set.Counts(p); fired > 0 {
			firedSomething = true
		}
	}
	if !firedSomething {
		t.Fatal("no fault ever fired; the suite proved nothing")
	}
	t.Logf("chaos: %d ok, %d failed (typed), faults fired: eval=%s http=%s dw=%s dr=%s",
		successes, failures,
		firedCount(set, faultinject.PointPlanEvaluate),
		firedCount(set, faultinject.PointHTTPResponse),
		firedCount(set, faultinject.PointDiskWrite),
		firedCount(set, faultinject.PointDiskRead))

	// Calm after the storm: with faults off, every key plans cleanly and
	// lands on the same answer as the pristine control service.
	faultinject.Disable()
	for gi, g := range graphs {
		resp, err := client.Plan(context.Background(), g, opts)
		if err != nil {
			t.Fatalf("graph %d after chaos: %v", gi, err)
		}
		if err := resultsBitIdentical(want[gi], resp.Result.Result()); err != nil {
			t.Fatalf("graph %d after chaos diverged: %v", gi, err)
		}
	}
	if st := svc.Stats(); st.DiskCacheWriteErrors == 0 && st.DiskCacheWrites == 0 {
		t.Error("disk tier never exercised under chaos")
	}
}

func firedCount(s *faultinject.Set, p faultinject.Point) string {
	hits, fired := s.Counts(p)
	return fmt.Sprintf("%d/%d", fired, hits)
}
