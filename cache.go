package mcmpart

import (
	"container/list"
	"fmt"
	"sync"
)

// planCacheKey builds the canonical cache key of one plan: the graph's
// canonical fingerprint, the package fingerprint, the fingerprint of the
// installed policy (empty for the from-scratch methods, which never consult
// it), and the normalized options. Everything a plan's output depends on is
// in the key; everything else (graph names, node insertion order, Progress
// callbacks) is deliberately not. See DESIGN.md, "The cache-key contract".
func planCacheKey(graphFP, pkgFP, policyFP string, opts PlanOptions) string {
	if opts.Method != MethodZeroShot && opts.Method != MethodFineTune {
		// From-scratch methods are policy-independent: hitting the cache
		// across policy installs is correct and desirable.
		policyFP = ""
	}
	return fmt.Sprintf("g=%s|p=%s|w=%s|m=%s|b=%d|s=%d|sim=%t|a=%t",
		graphFP, pkgFP, policyFP, opts.Method, opts.SampleBudget, opts.Seed, opts.UseSimulator, opts.SeedFromAnalytic)
}

// cloneResult deep-copies a Result so cached entries stay immutable no
// matter what callers do with what they were handed.
func cloneResult(r *Result) *Result {
	if r == nil {
		return nil
	}
	c := *r
	c.Partition = append(Partition(nil), r.Partition...)
	c.History = append([]float64(nil), r.History...)
	if r.FailCounts != nil {
		c.FailCounts = make(map[string]int, len(r.FailCounts))
		for k, v := range r.FailCounts {
			c.FailCounts[k] = v
		}
	}
	return &c
}

// planCache is a bounded LRU of completed plans. All methods are safe for
// concurrent use. Results are deep-copied on the way in and on the way out:
// a hit is bit-identical to the plan that populated the entry, and no
// caller can corrupt it.
//
// The cache does not count its own hits and misses: a lookup happens
// before the Service decides whether the request is admitted, and the
// hit/miss counters must account admitted jobs only (see serviceMetrics).
// The Service increments its tier counters at the admission points.
//
//mcmlint:deepcopy cloneResult
type planCache struct {
	mu    sync.Mutex
	cap   int                      // immutable after newPlanCache
	ll    *list.List               // guarded by mu; front = most recently used
	items map[string]*list.Element // guarded by mu
}

type planCacheEntry struct {
	key string
	res *Result
}

// newPlanCache returns a cache bounded to max entries; max <= 0 disables
// caching (every get is a miss, every put a no-op).
func newPlanCache(max int) *planCache {
	c := &planCache{cap: max}
	if max > 0 {
		c.ll = list.New()
		c.items = make(map[string]*list.Element, max)
	}
	return c
}

func (c *planCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return cloneResult(el.Value.(*planCacheEntry).res), true
}

func (c *planCache) put(key string, res *Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*planCacheEntry).res = cloneResult(res)
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planCacheEntry{key: key, res: cloneResult(res)})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*planCacheEntry).key)
	}
}

// snapshot returns (current size, capacity).
func (c *planCache) snapshot() (size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap > 0 {
		size = c.ll.Len()
	}
	return size, c.cap
}
