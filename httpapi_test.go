package mcmpart_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcmpart"
)

func newTestServer(t *testing.T, opts mcmpart.ServiceOptions) (*mcmpart.Service, *mcmpart.Client) {
	t.Helper()
	svc, err := mcmpart.NewService(mcmpart.Dev4(), opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mcmpart.NewHTTPHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, mcmpart.NewClient(srv.URL, srv.Client())
}

func TestHTTPPlanRoundTripAndCache(t *testing.T) {
	svc, cl := newTestServer(t, mcmpart.ServiceOptions{Workers: 2})
	ctx := context.Background()
	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	g := smallGraph(t)
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 25, Seed: 11}
	first, err := cl.Plan(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Result == nil || len(first.Result.Partition) != g.NumNodes() {
		t.Fatalf("unexpected first response: %+v", first)
	}
	if first.GraphFingerprint != g.Fingerprint() {
		t.Fatal("response fingerprint mismatch")
	}
	second, err := cl.Plan(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical plan must be served from the cache")
	}
	if err := resultsBitIdentical(first.Result.Result(), second.Result.Result()); err != nil {
		t.Fatalf("cached response not bit-identical over the wire: %v", err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1 / 1", stats.CacheHits, stats.CacheMisses)
	}
	if stats.Package != svc.Package().Name {
		t.Fatalf("stats package %q", stats.Package)
	}
}

func TestHTTPJobLifecycle(t *testing.T) {
	_, cl := newTestServer(t, mcmpart.ServiceOptions{Workers: 1})
	ctx := context.Background()
	g := smallGraph(t)
	st, err := cl.SubmitJob(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("job has no ID: %+v", st)
	}
	final, err := cl.WaitJob(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != mcmpart.JobDone || final.Result == nil {
		t.Fatalf("job did not complete: %+v", final)
	}
	if final.Samples != final.Result.Samples {
		t.Fatalf("status samples %d != result samples %d", final.Samples, final.Result.Samples)
	}

	// Unknown job IDs are 404s with a useful message.
	if _, err := cl.JobStatus(ctx, "job-999999"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("want unknown-job error, got %v", err)
	}
}

func TestHTTPJobCancel(t *testing.T) {
	_, cl := newTestServer(t, mcmpart.ServiceOptions{Workers: 1})
	ctx := context.Background()
	st, err := cl.SubmitJob(ctx, smallGraph(t), mcmpart.PlanOptions{Method: mcmpart.MethodRandom, SampleBudget: 1_000_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then cancel over the wire.
	deadline := time.Now().Add(5 * time.Second)
	for {
		js, err := cl.JobStatus(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.Samples > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := cl.CancelJob(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitJob(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != mcmpart.JobCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Result == nil || len(final.Result.Partition) == 0 {
		t.Fatal("cancelled job must report its best-so-far result")
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, cl := newTestServer(t, mcmpart.ServiceOptions{})
	ctx := context.Background()
	// Malformed options → 400 with the validation message.
	_, err := cl.Plan(ctx, smallGraph(t), mcmpart.PlanOptions{SampleBudget: -4})
	if err == nil || !strings.Contains(err.Error(), "negative") || !strings.Contains(err.Error(), "400") {
		t.Fatalf("want 400 negative-budget error, got %v", err)
	}
	// Zero-shot without a policy → 409.
	_, err = cl.Plan(ctx, smallGraph(t), mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("want 409 missing-policy error, got %v", err)
	}
	// Raw malformed body → 400.
	resp, err := http.Post(clBase(cl)+"/v1/plan", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body got HTTP %d", resp.StatusCode)
	}
}

// clBase digs the base URL back out of the client for raw-HTTP checks.
func clBase(cl *mcmpart.Client) string { return cl.BaseURL() }
