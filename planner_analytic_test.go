package mcmpart_test

import (
	"context"
	"testing"

	"mcmpart"
)

func TestPlanMethodAnalytic(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	g := mcmpart.CorpusGraphs(1)[0]
	res, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{Method: mcmpart.MethodAnalytic})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcmpart.Validate(g, pl.Package(), res.Partition); err != nil {
		t.Fatalf("analytic plan invalid: %v", err)
	}
	if res.Throughput <= 0 || res.Improvement <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Samples != 1 && res.Samples != 2 {
		t.Fatalf("Samples = %d, want 1 (analytic) or 2 (greedy fallback)", res.Samples)
	}
	// The fast path is deterministic: the seed must not matter.
	res2, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{Method: mcmpart.MethodAnalytic, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Throughput != res.Throughput {
		t.Fatalf("analytic plan depends on seed: %g vs %g", res2.Throughput, res.Throughput)
	}
	for i := range res.Partition {
		if res.Partition[i] != res2.Partition[i] {
			t.Fatalf("analytic plan depends on seed at node %d", i)
		}
	}
}

func TestPlanMethodAnalyticSimulator(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	g := mcmpart.CorpusGraphs(2)[1]
	res, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{Method: mcmpart.MethodAnalytic, UseSimulator: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := mcmpart.Validate(g, pl.Package(), res.Partition); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("bad throughput %g", res.Throughput)
	}
}

func TestPlanSeedFromAnalytic(t *testing.T) {
	pl, err := mcmpart.NewPlanner(mcmpart.Dev8())
	if err != nil {
		t.Fatal(err)
	}
	g := mcmpart.CorpusGraphs(3)[2]
	analytic, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{Method: mcmpart.MethodAnalytic})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := pl.Plan(context.Background(), g, mcmpart.PlanOptions{
		Method: mcmpart.MethodRandom, SampleBudget: 10, SeedFromAnalytic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The seeded search starts from the analytic incumbent (the priming
	// sample counts against the budget) and can never end below the
	// analytic plan's throughput.
	if seeded.Samples != 10 {
		t.Fatalf("Samples = %d, want 10 (priming counts against the budget)", seeded.Samples)
	}
	if seeded.Throughput < analytic.Throughput {
		t.Fatalf("seeded search throughput %g below analytic incumbent %g", seeded.Throughput, analytic.Throughput)
	}
	// Canonicalization: the flag is a no-op for non-search methods.
	opts := mcmpart.PlanOptions{Method: mcmpart.MethodGreedy, SeedFromAnalytic: true}
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
	greedy, err := pl.Plan(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Samples != 1 {
		t.Fatalf("greedy with SeedFromAnalytic consumed %d samples, want 1", greedy.Samples)
	}
}
