// Benchmarks for the parallel execution engine: each hot path runs at
// workers=1 and workers=default so `go test -bench=Parallel` shows the
// pool's effect directly (cmd/mcmbench emits the same comparison as JSON
// for the PR-over-PR trajectory in BENCH_PR*.json). On multi-core hardware
// the default-workers variants should win; outputs are identical either
// way, which TestWorkerCountDeterminism* pins down.
package mcmpart_test

import (
	"context"
	"math/rand"
	"testing"

	"mcmpart/internal/experiments"
	"mcmpart/internal/mat"
	"mcmpart/internal/parallel"
	"mcmpart/internal/rl"
)

// workerVariants runs the benchmark body under workers=1 and the process
// default worker count.
func workerVariants(b *testing.B, body func(b *testing.B)) {
	b.Helper()
	for _, w := range []int{1, 0} {
		name := "workers=1"
		if w == 0 {
			name = "workers=default"
		}
		b.Run(name, func(b *testing.B) {
			old := parallel.Default()
			parallel.SetDefault(w)
			defer parallel.SetDefault(old)
			body(b)
		})
	}
}

// BenchmarkParallelMatMul measures the blocked row-parallel kernel above
// its fan-out threshold.
func BenchmarkParallelMatMul(b *testing.B) {
	const n = 320
	rng := rand.New(rand.NewSource(1))
	x, y, out := mat.New(n, n), mat.New(n, n), mat.New(n, n)
	x.XavierInit(rng)
	y.XavierInit(rng)
	workerVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.Mul(out, x, y)
		}
	})
}

// BenchmarkParallelRollouts measures PPO rollout collection fan-out.
func BenchmarkParallelRollouts(b *testing.B) {
	workerVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(5))
			env := ablationEnv(b, false)
			policy := rl.NewPolicy(rl.QuickConfig(env.Part.Chips()), rng)
			trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
			trainer.TrainUntil(context.Background(), []*rl.Env{env}, 96)
			b.ReportMetric(env.BestImprovement(), "best-x")
		}
	})
}

// BenchmarkParallelFig7Sampling measures the corpus-sampling fan-out of the
// calibration study (per-worker solver replicas, per-sample seeds).
func BenchmarkParallelFig7Sampling(b *testing.B) {
	workerVariants(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.Figure7(experiments.Fig7Config{
				Scale: experiments.ScaleQuick, Seed: 1, Samples: 120,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PearsonR, "pearson-R")
		}
	})
}
