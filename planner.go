package mcmpart

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"mcmpart/internal/analyze"
	"mcmpart/internal/costmodel"
	"mcmpart/internal/cpsolver"
	"mcmpart/internal/eval"
	"mcmpart/internal/graph"
	"mcmpart/internal/hwsim"
	"mcmpart/internal/pretrain"
	"mcmpart/internal/rl"
	"mcmpart/internal/search"
)

// Verdict is the rich outcome of evaluating one partition in one evaluation
// environment (throughput, validity, failure reason, peak SRAM utilization).
// Both the analytical cost model and the hardware simulator report through
// it.
type Verdict = eval.Verdict

// ProgressEvent is one observation of a running plan or pre-training run:
// the cumulative number of candidate evaluations consumed and the
// best-so-far improvement over the greedy baseline.
type ProgressEvent struct {
	// Samples is the number of evaluations consumed so far.
	Samples int
	// BestImprovement is the best-so-far throughput normalized to the
	// greedy heuristic on the graph being reported.
	BestImprovement float64
}

// ProgressFunc streams ProgressEvents. Callbacks run synchronously on the
// goroutine driving the search; keep them fast.
type ProgressFunc func(ProgressEvent)

// PlanOptions configure one Planner.Plan call.
type PlanOptions struct {
	// Method defaults to MethodRL. MethodZeroShot and MethodFineTune
	// require a policy (Pretrain or LoadPolicy first).
	Method Method
	// SampleBudget bounds the number of candidate evaluations for the
	// search-based methods (default 200; ignored by MethodGreedy).
	SampleBudget int
	// Seed makes runs reproducible. Seed 0 is remapped to 1 (the
	// documented default), so the zero value of PlanOptions and an
	// explicit Seed: 1 are the same plan.
	Seed int64
	// UseSimulator evaluates candidates on the hardware simulator
	// (including the dynamic memory constraint) instead of the faster
	// analytical cost model.
	UseSimulator bool
	// SeedFromAnalytic primes the search-based methods with the analytic
	// fast path's plan as their first sample, so the search starts from a
	// strong valid incumbent instead of from nothing. Best-effort: when
	// the analysis finds no layout the search runs unseeded. Ignored by
	// MethodGreedy and MethodAnalytic (canonicalized to false).
	SeedFromAnalytic bool
	// Progress, when set, streams (samples, best-so-far improvement)
	// after every evaluated candidate.
	Progress ProgressFunc
}

// normalized validates the options and applies the documented defaults
// (Method "" → MethodRL, SampleBudget 0 → 200, Seed 0 → 1). A zero value
// asks for the default; explicitly out-of-range values — a negative budget,
// a negative seed, an unknown method — are caller bugs and return
// descriptive errors instead of silently planning something else. The
// normalized form is also the canonical shape of the plan-cache key: every
// PlanOptions that normalizes identically must plan identically.
func (o PlanOptions) normalized() (PlanOptions, error) {
	if o.Method == "" {
		o.Method = MethodRL
	}
	switch o.Method {
	case MethodGreedy, MethodRandom, MethodSA, MethodRL, MethodZeroShot, MethodFineTune, MethodAnalytic:
	default:
		return o, fmt.Errorf("%w: unknown method %q", ErrInvalidRequest, o.Method)
	}
	if o.Method == MethodGreedy || o.Method == MethodAnalytic {
		// Neither method searches, so there is nothing to seed; canonical
		// form keeps the plan-cache key stable across the flag.
		o.SeedFromAnalytic = false
	}
	if o.SampleBudget < 0 {
		return o, fmt.Errorf("%w: SampleBudget %d is negative; use 0 for the default (200)", ErrInvalidRequest, o.SampleBudget)
	}
	if o.SampleBudget == 0 {
		o.SampleBudget = 200
	}
	if o.Seed < 0 {
		return o, fmt.Errorf("%w: Seed %d is negative; seeds are non-negative (0 selects the default seed 1)", ErrInvalidRequest, o.Seed)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// Validate reports whether the options are well-formed without planning
// anything. It applies the same rules Plan does.
func (o PlanOptions) Validate() error {
	_, err := o.normalized()
	return err
}

// PretrainOptions configure Planner.Pretrain, the paper's Sec. 4.3
// pipeline: PPO over a corpus of training graphs against the analytical
// cost model, with a validation worker replaying checkpoints to pick the
// transferable policy.
type PretrainOptions struct {
	// TotalSamples is the training budget summed over all training graphs
	// (default 2000; paper: 20000).
	TotalSamples int
	// Checkpoints is how many evenly spaced checkpoints the training
	// worker emits for the validation worker to score (default 10;
	// paper: 200).
	Checkpoints int
	// ValidationSamples is the per-graph zero-shot budget spent scoring
	// each checkpoint (default 8).
	ValidationSamples int
	// ValidationGraphs is how many graphs from the tail of the corpus
	// slice are held out for validation (default: one fifth, at least 1).
	ValidationGraphs int
	// Seed derives all randomness. Seed 0 is remapped to 1.
	Seed int64
	// Workers bounds the validation fan-out and rollout collection
	// (0 = process default). Results are identical at any worker count.
	Workers int
	// FullScale uses the paper's 8x128 network and PPO hyper-parameters
	// instead of the laptop-scale defaults.
	FullScale bool
	// Progress, when set, streams (cumulative training samples,
	// best-so-far improvement on the absorbing graph).
	Progress ProgressFunc
}

// normalized validates the options and applies the documented defaults.
// Zero values ask for defaults; negative budgets, checkpoint counts,
// validation budgets, worker counts, or seeds are caller bugs and return
// descriptive errors instead of silently training nothing.
func (o PretrainOptions) normalized() (PretrainOptions, error) {
	if o.TotalSamples < 0 {
		return o, fmt.Errorf("%w: TotalSamples %d is negative; use 0 for the default (2000)", ErrInvalidRequest, o.TotalSamples)
	}
	if o.TotalSamples == 0 {
		o.TotalSamples = 2000
	}
	if o.Checkpoints < 0 {
		return o, fmt.Errorf("%w: Checkpoints %d is negative; use 0 for the default (10)", ErrInvalidRequest, o.Checkpoints)
	}
	if o.Checkpoints == 0 {
		// Default 10, capped so a small explicit TotalSamples still works.
		o.Checkpoints = 10
		if o.Checkpoints > o.TotalSamples {
			o.Checkpoints = o.TotalSamples
		}
	} else if o.Checkpoints > o.TotalSamples {
		return o, fmt.Errorf("%w: %d checkpoints cannot be cut from %d total samples", ErrInvalidRequest, o.Checkpoints, o.TotalSamples)
	}
	if o.ValidationSamples < 0 {
		return o, fmt.Errorf("%w: ValidationSamples %d is negative; use 0 for the default (8)", ErrInvalidRequest, o.ValidationSamples)
	}
	if o.ValidationSamples == 0 {
		o.ValidationSamples = 8
	}
	if o.ValidationGraphs < 0 {
		return o, fmt.Errorf("%w: ValidationGraphs %d is negative; use 0 for the default (one fifth of the corpus)", ErrInvalidRequest, o.ValidationGraphs)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("%w: Workers %d is negative; use 0 for the process default", ErrInvalidRequest, o.Workers)
	}
	if o.Seed < 0 {
		return o, fmt.Errorf("%w: Seed %d is negative; seeds are non-negative (0 selects the default seed 1)", ErrInvalidRequest, o.Seed)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// Validate reports whether the options are well-formed without training
// anything. It applies the same rules Pretrain does.
func (o PretrainOptions) Validate() error {
	_, err := o.normalized()
	return err
}

// PretrainReport summarizes a Pretrain run.
type PretrainReport struct {
	// Checkpoints is how many checkpoints the training worker emitted.
	Checkpoints int
	// Scores are the validation rewards per checkpoint (nil when the run
	// was cancelled before validation).
	Scores []float64
	// BestIndex is the checkpoint the validation worker selected — the
	// policy now installed in the Planner.
	BestIndex int
	// TrainSamples is the number of training evaluations consumed.
	TrainSamples int
}

// Planner is a reusable planning session bound to one MCM package — the
// public surface of the paper's transferability result. Pre-train once on a
// corpus (or load a saved policy artifact), then plan any number of graphs:
// zero-shot, with fine-tuning, or with the from-scratch search methods.
//
//	pl, _ := mcmpart.NewPlanner(mcmpart.Dev8())
//	pl.Pretrain(ctx, mcmpart.CorpusGraphs(1)[:10], mcmpart.PretrainOptions{})
//	pl.SavePolicy("dev8.policy.json")
//	res, _ := pl.Plan(ctx, g, mcmpart.PlanOptions{Method: mcmpart.MethodZeroShot})
//
// Every method is safe for concurrent use: Plan and Assess read a snapshot
// of the installed policy (and clone it before mutating weights), while
// Pretrain, LoadPolicy, and SavePolicy swap or read the installed policy
// under the planner's lock. Concurrent Plan calls therefore see either the
// policy from before or after a concurrent install, never a torn state —
// the concurrency contract Service builds on (see DESIGN.md).
type Planner struct {
	pkg *Package

	// mu guards the installed policy and the fine-tune PPO configuration.
	// The policy value itself is immutable once installed: planning methods
	// clone it before any weight update.
	mu       sync.RWMutex
	policy   *rl.Policy // guarded by mu
	policyFP string     // guarded by mu
	// ftPPO is the PPO configuration MethodFineTune continues training
	// with; Pretrain keeps it aligned with the pre-training scale.
	ftPPO rl.PPOConfig // guarded by mu
}

// NewPlanner builds a planning session for the package. The package is
// validated once here; every subsequent call reuses it.
func NewPlanner(pkg *Package) (*Planner, error) {
	if pkg == nil {
		return nil, fmt.Errorf("%w: nil package", ErrInvalidRequest)
	}
	if err := pkg.Validate(); err != nil {
		return nil, err
	}
	return &Planner{pkg: pkg, ftPPO: rl.QuickPPOConfig()}, nil
}

// Package returns the package this planner is bound to.
func (pl *Planner) Package() *Package { return pl.pkg }

// HasPolicy reports whether a pre-trained policy is installed (via Pretrain
// or LoadPolicy), enabling MethodZeroShot and MethodFineTune.
func (pl *Planner) HasPolicy() bool {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.policy != nil
}

// PolicyFingerprint returns a stable content hash of the installed policy
// (configuration plus every weight), or "" when no policy is installed.
// Plans by the deployed-policy methods are a pure function of (graph,
// package, normalized options, policy fingerprint) — the contract the plan
// cache keys on.
func (pl *Planner) PolicyFingerprint() string {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.policyFP
}

// installPolicy swaps the installed policy under the planner's lock. The
// fine-tune PPO configuration is derived from the policy's network shape
// (full-scale network → full-scale PPO), so the pair MethodFineTune runs
// with is a pure function of the installed policy — the property the plan
// cache's policy-fingerprint key relies on.
func (pl *Planner) installPolicy(policy *rl.Policy) {
	fp := rl.PolicyFingerprint(policy)
	ftPPO := ftPPOFor(policy)
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.policy = policy
	pl.policyFP = fp
	pl.ftPPO = ftPPO
}

// ftPPOFor picks the PPO configuration MethodFineTune continues training a
// policy with: the paper-scale configuration for policies with the
// paper-scale network, the quick configuration otherwise.
func ftPPOFor(policy *rl.Policy) rl.PPOConfig {
	full := rl.DefaultConfig(policy.Cfg.Chips)
	if policy.Cfg.Hidden == full.Hidden &&
		policy.Cfg.SAGELayers == full.SAGELayers &&
		policy.Cfg.Iterations == full.Iterations {
		return rl.DefaultPPOConfig()
	}
	return rl.QuickPPOConfig()
}

// snapshotPolicy returns the installed policy and fine-tune configuration
// as one consistent pair.
func (pl *Planner) snapshotPolicy() (*rl.Policy, rl.PPOConfig) {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.policy, pl.ftPPO
}

// freshPolicyConfig returns the network shape for a from-scratch policy on
// this package: the paper's exact shape on homogeneous packages, widened
// with per-chip capacity features on heterogeneous ones.
func (pl *Planner) freshPolicyConfig(fullScale bool) rl.Config {
	cfg := rl.QuickConfig(pl.pkg.Chips)
	if fullScale {
		cfg = rl.DefaultConfig(pl.pkg.Chips)
	}
	if pl.pkg.Heterogeneous() {
		cfg.ChipFeatures = true
	}
	return cfg
}

// graphContext builds the encoder inputs a policy with cfg needs on this
// package.
func (pl *Planner) graphContext(g *Graph, cfg rl.Config) *rl.GraphContext {
	if cfg.ChipFeatures {
		return rl.NewGraphContextForPackage(g, pl.pkg)
	}
	return rl.NewGraphContext(g)
}

// evaluator returns the evaluation environment a plan runs against: the
// hardware simulator (seeded — the same Seed 0 → 1 remap as PlanOptions)
// or the analytical cost model.
func (pl *Planner) evaluator(useSimulator bool, seed int64) eval.Evaluator {
	if useSimulator {
		if seed == 0 {
			seed = 1
		}
		return hwsim.New(pl.pkg, hwsim.Options{Seed: seed})
	}
	return costmodel.New(pl.pkg)
}

// Assess evaluates one partition of g in the environment opts select
// (simulator with opts.Seed when opts.UseSimulator, analytical cost model
// otherwise) and returns the rich verdict.
func (pl *Planner) Assess(g *Graph, p Partition, opts PlanOptions) Verdict {
	return pl.evaluator(opts.UseSimulator, opts.Seed).Assess(g, p)
}

// baseline evaluates the greedy heuristic every search method normalizes
// against, erroring (with the evaluator's reason) when it is invalid.
func (pl *Planner) baseline(g *Graph, ev eval.Evaluator) (Partition, Verdict, error) {
	greedy := search.GreedyPackage(g, pl.pkg)
	base := ev.Assess(g, greedy)
	if !base.Valid || base.Throughput <= 0 {
		reason := ""
		if base.FailReason != "" {
			reason = " (" + base.FailReason + ")"
		}
		return nil, base, fmt.Errorf("%w: greedy baseline is invalid on %s%s; the graph may not fit the package",
			ErrNoPlan, g.Name(), reason)
	}
	return greedy, base, nil
}

// buildEnv wires a graph to a partitioner, an evaluator, and the baseline
// throughput — the environment every search method runs in.
func (pl *Planner) buildEnv(g *Graph, gctx *rl.GraphContext, ev eval.Evaluator, baseTh float64) (*rl.Env, error) {
	pr, err := cpsolver.NewAutoPkg(g, pl.pkg, cpsolver.Options{})
	if err != nil {
		return nil, err
	}
	env := rl.NewEnv(gctx, pr, ev, baseTh)
	env.PartFactory = func() (cpsolver.Partitioner, error) {
		return cpsolver.NewAutoPkg(g, pl.pkg, cpsolver.Options{})
	}
	return env, nil
}

// newEnv is baseline + buildEnv: the factory shape Pretrain consumes.
func (pl *Planner) newEnv(g *Graph, gctx *rl.GraphContext, ev eval.Evaluator) (*rl.Env, error) {
	_, base, err := pl.baseline(g, ev)
	if err != nil {
		return nil, err
	}
	return pl.buildEnv(g, gctx, ev, base.Throughput)
}

// Plan searches for a high-throughput valid partition of g on the
// planner's package.
//
// Cancelling or timing out ctx stops the search promptly; if any valid
// partition was found by then, Plan returns it (best-so-far) together with
// ctx.Err(), so callers can both observe the deadline and keep the work
// already paid for.
func (pl *Planner) Plan(ctx context.Context, g *Graph, opts PlanOptions) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrInvalidRequest)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	ev := pl.evaluator(opts.UseSimulator, opts.Seed)

	// The deployed-policy methods need the network shape the installed
	// policy was trained with; the from-scratch methods always use the
	// package's fresh shape, regardless of any loaded artifact — "scratch"
	// must mean the same configuration on every planner.
	installed, ftPPO := pl.snapshotPolicy()
	policyCfg := pl.freshPolicyConfig(false)
	usesPretrained := opts.Method == MethodZeroShot || opts.Method == MethodFineTune
	if usesPretrained {
		if installed == nil {
			return nil, fmt.Errorf("%w: method %q needs Pretrain or LoadPolicy first", ErrPolicyRequired, opts.Method)
		}
		policyCfg = installed.Cfg
	}

	greedy, base, err := pl.baseline(g, ev)
	if err != nil {
		return nil, err
	}
	if opts.Method == MethodGreedy {
		if opts.Progress != nil {
			opts.Progress(ProgressEvent{Samples: 1, BestImprovement: 1})
		}
		return &Result{Partition: greedy, Throughput: base.Throughput, Improvement: 1, Samples: 1, History: []float64{1}}, nil
	}
	if opts.Method == MethodAnalytic {
		return pl.planAnalytic(g, ev, greedy, base, opts)
	}

	env, err := pl.buildEnv(g, pl.graphContext(g, policyCfg), ev, base.Throughput)
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		progress := opts.Progress
		env.OnSample = func(samples int, best float64) {
			progress(ProgressEvent{Samples: samples, BestImprovement: best})
		}
	}
	if opts.SeedFromAnalytic {
		// Best-effort: prime the search with the fast path's plan as its
		// first sample (counted against the sample budget). An infeasible
		// analysis just leaves the search unseeded.
		if p, _, err := pl.analyticPartition(g); err == nil {
			env.Prime(p)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var runErr error
	switch opts.Method {
	case MethodRandom:
		runErr = search.Random(ctx, env, opts.SampleBudget, rng)
	case MethodSA:
		runErr = search.Anneal(ctx, env, opts.SampleBudget, search.SAConfig{}, rng)
	case MethodRL:
		policy := rl.NewPolicy(policyCfg, rng)
		trainer := rl.NewTrainer(policy, rl.QuickPPOConfig(), rng)
		_, runErr = trainer.TrainUntil(ctx, []*rl.Env{env}, opts.SampleBudget)
	case MethodZeroShot:
		// The deployed-policy methods drive the solver in SAMPLE mode,
		// the configuration the policy was pre-trained under (Sec. 5.1's
		// choice for the transfer experiments).
		env.UseSampleMode = true
		runErr = rl.ZeroShot(ctx, installed.Clone(), env, opts.SampleBudget, rng)
	case MethodFineTune:
		env.UseSampleMode = true
		// Fine-tuning updates weights; clone so the planner's installed
		// policy stays the pristine pre-trained artifact for reuse.
		_, runErr = rl.FineTune(ctx, installed.Clone(), env, ftPPO, opts.SampleBudget, rng)
	default:
		// normalized() already rejected unknown methods.
		return nil, fmt.Errorf("%w: unknown method %q", ErrInvalidRequest, opts.Method)
	}
	if env.Best == nil {
		if runErr != nil {
			return nil, runErr
		}
		return nil, fmt.Errorf("%w within %d samples", ErrNoPlan, env.Samples)
	}
	return &Result{
		Partition:   env.Best,
		Throughput:  env.BestThroughput,
		Improvement: env.BestImprovement(),
		Samples:     env.Samples,
		History:     append([]float64(nil), env.History...),
		FailCounts:  env.FailCounts,
	}, runErr
}

// analyticPartition runs the static-analysis fast path on this planner's
// package: domains, bounds, and a constructed contiguous layout, with no
// candidate evaluation.
func (pl *Planner) analyticPartition(g *Graph) (Partition, analyze.PlanInfo, error) {
	a, err := analyze.New(g, pl.pkg)
	if err != nil {
		return nil, analyze.PlanInfo{}, err
	}
	return a.Plan(analyze.Options{})
}

// planAnalytic is MethodAnalytic: the fast path's plan, assessed once in the
// selected evaluation environment. A plan the environment rejects (only
// possible under the simulator's dynamic memory model — the static
// constraints hold by construction) falls back to the greedy baseline, with
// the rejection recorded in FailCounts.
func (pl *Planner) planAnalytic(g *Graph, ev eval.Evaluator, greedy Partition, base Verdict, opts PlanOptions) (*Result, error) {
	p, _, err := pl.analyticPartition(g)
	if err != nil {
		return nil, err
	}
	v := ev.Assess(g, p)
	if !v.Valid || v.Throughput <= 0 {
		reason := v.FailReason
		if reason == "" {
			reason = "evaluator rejected analytic plan"
		}
		if opts.Progress != nil {
			opts.Progress(ProgressEvent{Samples: 2, BestImprovement: 1})
		}
		return &Result{
			Partition:   greedy,
			Throughput:  base.Throughput,
			Improvement: 1,
			Samples:     2,
			History:     []float64{0, 1},
			FailCounts:  map[string]int{reason: 1},
		}, nil
	}
	imp := v.Throughput / base.Throughput
	if opts.Progress != nil {
		opts.Progress(ProgressEvent{Samples: 1, BestImprovement: imp})
	}
	return &Result{
		Partition:   p,
		Throughput:  v.Throughput,
		Improvement: imp,
		Samples:     1,
		History:     []float64{imp},
	}, nil
}

// Pretrain runs the paper's pre-training pipeline (Sec. 4.3, Figure 4) on a
// corpus of graphs against the analytical cost model and installs the
// validation-selected policy in the planner, enabling MethodZeroShot and
// MethodFineTune. The last opts.ValidationGraphs graphs of the slice are
// held out for the validation worker; the rest train.
//
// Cancelling ctx stops training at the next iteration boundary and installs
// the best-so-far policy (the most recent checkpoint), returning the report
// together with ctx.Err().
func (pl *Planner) Pretrain(ctx context.Context, graphs []*Graph, opts PretrainOptions) (*PretrainReport, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	for i, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("%w: pre-training corpus graph %d is nil", ErrInvalidRequest, i)
		}
	}
	if opts.ValidationGraphs == 0 {
		opts.ValidationGraphs = len(graphs) / 5
		if opts.ValidationGraphs < 1 {
			opts.ValidationGraphs = 1
		}
	}
	if len(graphs) < 2 || opts.ValidationGraphs >= len(graphs) {
		return nil, fmt.Errorf("%w: pre-training needs at least one training and one validation graph (%d graphs, %d held out)",
			ErrInvalidRequest, len(graphs), opts.ValidationGraphs)
	}
	train := graphs[:len(graphs)-opts.ValidationGraphs]
	validation := graphs[len(graphs)-opts.ValidationGraphs:]

	policyCfg := pl.freshPolicyConfig(opts.FullScale)
	ppoCfg := rl.QuickPPOConfig()
	if opts.FullScale {
		ppoCfg = rl.DefaultPPOConfig()
	}
	ppoCfg.Workers = opts.Workers
	model := costmodel.New(pl.pkg)
	factory := func(g *graph.Graph) (*rl.Env, error) {
		env, err := pl.newEnv(g, pl.graphContext(g, policyCfg), model)
		if err != nil {
			return nil, err
		}
		// Pre-training drives the solver in SAMPLE mode (Algorithm 1),
		// the experiments' configuration for the transfer methods.
		env.UseSampleMode = true
		return env, nil
	}
	cfg := pretrain.Config{
		Policy:            policyCfg,
		PPO:               ppoCfg,
		TotalSamples:      opts.TotalSamples,
		Checkpoints:       opts.Checkpoints,
		ValidationSamples: opts.ValidationSamples,
		Seed:              opts.Seed,
		Workers:           opts.Workers,
	}
	if opts.Progress != nil {
		progress := opts.Progress
		cfg.Progress = func(samples int, best float64) {
			progress(ProgressEvent{Samples: samples, BestImprovement: best})
		}
	}
	res, err := pretrain.Run(ctx, train, validation, factory, cfg)
	if res == nil {
		return nil, err
	}
	policy := rl.NewPolicy(policyCfg, rand.New(rand.NewSource(opts.Seed)))
	if rerr := policy.Restore(res.Best()); rerr != nil {
		return nil, fmt.Errorf("mcmpart: restoring selected checkpoint: %w", rerr)
	}
	// installPolicy derives the fine-tune PPO scale from the policy's
	// network shape, which matches opts.FullScale by construction.
	pl.installPolicy(policy)
	report := &PretrainReport{
		Checkpoints: len(res.Checkpoints),
		Scores:      res.Scores,
		BestIndex:   res.BestIndex,
	}
	for _, s := range res.TrainStats {
		report.TrainSamples += s.Samples
	}
	return report, err
}

// SavePolicy persists the installed policy as a versioned artifact bound to
// this planner's package (weights + network shape + package fingerprint).
func (pl *Planner) SavePolicy(path string) error {
	policy, _ := pl.snapshotPolicy()
	if policy == nil {
		return fmt.Errorf("%w: nothing to save; run Pretrain or LoadPolicy first", ErrPolicyRequired)
	}
	return rl.SaveArtifact(path, policy, pl.pkg)
}

// LoadPolicy installs a policy from an artifact written by SavePolicy. The
// artifact's package fingerprint must match this planner's package — a
// policy pre-trained for a different package (different chip count, SRAM,
// topology, …) is rejected with a descriptive error rather than silently
// driving plans it was never trained for.
func (pl *Planner) LoadPolicy(path string) error {
	policy, err := rl.LoadArtifact(path, pl.pkg)
	if err != nil {
		return err
	}
	pl.installPolicy(policy)
	return nil
}
