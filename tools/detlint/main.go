// Command detlint is the repo's determinism lint: a go-vet-compatible
// analyzer that flags the three patterns which have historically broken
// byte-reproducibility of plans, sweeps, and fingerprints:
//
//  1. time.Now — wall-clock reads inside deterministic packages. Timestamps
//     must be threaded in by the caller (cmd/ layers stamp results; the
//     planning core never looks at a clock).
//  2. Global math/rand functions (rand.Intn, rand.Float64, rand.Shuffle, …)
//     — process-global RNG state is seeded outside the scenario seed
//     discipline. Constructor calls (rand.New, rand.NewSource, rand.NewZipf)
//     are fine; everything must flow from an explicit *rand.Rand.
//  3. Ranging over a map while appending into an output slice, without a
//     sort of that slice later in the same block — map iteration order is
//     randomized per run, so the output ordering leaks nondeterminism.
//     The deterministic idiom (collect keys, sort, then index) is accepted.
//
// It is stdlib-only (no golang.org/x/tools dependency) and runs two ways:
//
//	detlint ./internal/analyze ./internal/search ...   # direct, on package dirs
//	go vet -vettool=$(which detlint) ./internal/...    # unitchecker protocol
//
// Under go vet the tool implements the cmd/go vettool contract: -V=full
// prints a stable identity line (bump lintVersion when rules change — cmd/go
// caches results keyed on it), -flags reports no extra flags, and a single
// *.cfg argument runs one package build unit described by the JSON config.
// Findings go to stderr as file:line:col diagnostics; exit status 2 signals
// findings, matching vet convention.
//
// A finding is suppressed by a "//detlint:ignore" comment on the flagged
// line or the line above it. Test files (_test.go) are exempt: tests may
// time themselves and exercise nondeterminism on purpose.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const lintVersion = "v1.0.0"

func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			// cmd/go tool-identity probe; the output is the cache key.
			fmt.Printf("detlint version %s\n", lintVersion)
			return
		case args[0] == "-flags":
			// cmd/go flag discovery: we expose no analyzer flags.
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runVetUnit(args[0]))
		}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: detlint <package-dir>... | detlint <unit>.cfg (go vet -vettool)")
		os.Exit(1)
	}
	os.Exit(runDirs(args))
}

// vetConfig mirrors the fields of cmd/go's vet config JSON that detlint
// needs (the full struct is x/tools' unitchecker.Config; unknown fields are
// ignored by encoding/json).
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runVetUnit handles one go-vet build unit. Dependency units arrive with
// VetxOnly=true and are skipped (detlint exports no facts); target units are
// parsed, type-checked, and linted. The facts file must exist afterwards or
// cmd/go reports the tool as failed, so an empty one is always written.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	findings, err := lintFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	writeVetx()
	return report(findings)
}

// runDirs lints package directories given directly on the command line.
func runDirs(dirs []string) int {
	var all []finding
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 1
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		if len(files) == 0 {
			continue
		}
		fs, err := lintFiles(dir, dir, files)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", dir, err)
			return 1
		}
		all = append(all, fs...)
	}
	return report(all)
}

func report(findings []finding) int {
	if len(findings) == 0 {
		return 0
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos.Filename != findings[j].pos.Filename {
			return findings[i].pos.Filename < findings[j].pos.Filename
		}
		return findings[i].pos.Offset < findings[j].pos.Offset
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.pos, f.msg)
	}
	return 2
}

type finding struct {
	pos token.Position
	msg string
}

// lintFiles parses, type-checks, and lints one package's files. Test files
// are skipped. Type-checking is best effort: the source importer resolves
// dependencies when it can, and any residual errors only cost the map-range
// rule its type information (the other rules are purely syntactic).
func lintFiles(pkgPath, dir string, paths []string) ([]finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		if !filepath.IsAbs(p) && dir != "" {
			if _, err := os.Stat(p); err != nil {
				p = filepath.Join(dir, filepath.Base(p))
			}
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // collect partial info even when imports fail
	}
	conf.Check(pkgPath, fset, files, info) //nolint:errcheck // best effort by design
	var out []finding
	for _, f := range files {
		out = append(out, lintFile(fset, f, info)...)
	}
	return out, nil
}

// lintFile applies the three rules to one file.
func lintFile(fset *token.FileSet, file *ast.File, info *types.Info) []finding {
	timeName := importName(file, "time")
	randName := importName(file, "math/rand")
	ignored := ignoredLines(fset, file)
	var out []finding
	add := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		if ignored[p.Line] || ignored[p.Line-1] {
			return
		}
		out = append(out, finding{pos: p, msg: msg})
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Only calls count: rand.Rand / rand.Source in type positions are
			// exactly the seeded style the lint wants to push toward.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if timeName != "" && id.Name == timeName && sel.Sel.Name == "Now" {
				add(n.Pos(), "time.Now in a deterministic package: thread timestamps in from the caller [detlint]")
			}
			if randName != "" && id.Name == randName && globalRandFunc(sel.Sel.Name) {
				add(n.Pos(), fmt.Sprintf("global math/rand state (%s.%s): derive a *rand.Rand from the scenario seed with rand.New(rand.NewSource(seed)) [detlint]", randName, sel.Sel.Name))
			}
		case *ast.BlockStmt:
			out = append(out, lintMapRanges(fset, n, info, ignored)...)
		}
		return true
	})
	return out
}

// globalRandFunc reports whether name is a math/rand package-level function
// that consumes the process-global RNG. Constructors are exempt.
func globalRandFunc(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return false
	case "Rand", "Source", "Source64", "Zipf":
		// Type names: a rand.Source(x) conversion is not a global draw.
		return false
	}
	// Every other exported rand.X call site draws from the global source
	// (rand.Intn, rand.Perm, rand.Shuffle, rand.Seed, rand.Read, …).
	return true
}

// lintMapRanges flags `for … := range m` statements over maps whose body
// appends into an output slice, unless a later statement in the same block
// sorts that slice (the collect-keys-then-sort idiom).
func lintMapRanges(fset *token.FileSet, block *ast.BlockStmt, info *types.Info, ignored map[int]bool) []finding {
	var out []finding
	for i, stmt := range block.List {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapType(rs.X, info) {
			continue
		}
		targets := appendTargets(rs.Body)
		if len(targets) == 0 {
			continue
		}
		if sortedLater(block.List[i+1:], targets) {
			continue
		}
		p := fset.Position(rs.Pos())
		if ignored[p.Line] || ignored[p.Line-1] {
			continue
		}
		out = append(out, finding{pos: p, msg: fmt.Sprintf(
			"appending to %s while ranging over a map: iteration order is randomized; collect and sort keys first, or sort the result before use [detlint]",
			strings.Join(targets, ", "))})
	}
	return out
}

func isMapType(e ast.Expr, info *types.Info) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// appendTargets returns the names of variables assigned from append(...)
// calls anywhere in the loop body (v = append(v, …) and v := append(…)).
func appendTargets(body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				continue
			}
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					seen[id.Name] = true
				}
			}
		}
		return true
	})
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// sortedLater reports whether any statement in stmts calls a sort/slices
// sorting function mentioning one of the target variables — which launders
// the nondeterministic collection order back into a canonical one.
func sortedLater(stmts []ast.Stmt, targets []string) bool {
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
				return true
			}
			if !strings.HasPrefix(sel.Sel.Name, "Sort") && !strings.HasPrefix(sel.Sel.Name, "Strings") &&
				!strings.HasPrefix(sel.Sel.Name, "Ints") && !strings.HasPrefix(sel.Sel.Name, "Float64s") &&
				!strings.HasPrefix(sel.Sel.Name, "Slice") && !strings.HasPrefix(sel.Sel.Name, "Stable") {
				return true
			}
			ast.Inspect(call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && want[id.Name] {
					found = true
				}
				return !found
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// importName returns the local name under which path is imported in file
// ("" when absent, the last path element when unaliased).
func importName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// ignoredLines collects the lines carrying a detlint:ignore directive.
func ignoredLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "detlint:ignore") {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
