package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// lintSource type-checks and lints one synthetic file (stdlib imports only,
// so the source importer always resolves) and returns the finding messages.
func lintSource(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	conf := types.Config{Importer: testImporter{}, Error: func(error) {}}
	conf.Check("p", fset, []*ast.File{f}, info) //nolint:errcheck
	var msgs []string
	for _, fd := range lintFile(fset, f, info) {
		msgs = append(msgs, fd.msg)
	}
	return msgs
}

// testImporter resolves nothing: the synthetic sources only need local type
// inference (map literals, make), mirroring the degraded mode the real run
// falls back to when an import fails.
type testImporter struct{}

func (testImporter) Import(path string) (*types.Package, error) {
	pkg := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
	pkg.MarkComplete()
	return pkg, nil
}

func TestFlagsTimeNow(t *testing.T) {
	msgs := lintSource(t, `package p
import "time"
func f() time.Time { return time.Now() }
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "time.Now") {
		t.Fatalf("msgs = %v, want one time.Now finding", msgs)
	}
}

func TestFlagsGlobalRand(t *testing.T) {
	msgs := lintSource(t, `package p
import "math/rand"
func f() int { return rand.Intn(4) }
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "rand.Intn") {
		t.Fatalf("msgs = %v, want one global-rand finding", msgs)
	}
}

func TestAllowsSeededRand(t *testing.T) {
	msgs := lintSource(t, `package p
import "math/rand"
func f(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(4)
}
`)
	if len(msgs) != 0 {
		t.Fatalf("msgs = %v, want none for seeded rand.New", msgs)
	}
}

func TestFlagsMapRangeAppend(t *testing.T) {
	msgs := lintSource(t, `package p
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "ranging over a map") {
		t.Fatalf("msgs = %v, want one map-range finding", msgs)
	}
}

func TestAllowsSortedMapRangeAppend(t *testing.T) {
	msgs := lintSource(t, `package p
import "sort"
func f(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`)
	if len(msgs) != 0 {
		t.Fatalf("msgs = %v, want none for the collect-then-sort idiom", msgs)
	}
}

func TestAllowsSliceRangeAppend(t *testing.T) {
	msgs := lintSource(t, `package p
func f(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v*2)
	}
	return out
}
`)
	if len(msgs) != 0 {
		t.Fatalf("msgs = %v, want none for slice ranges", msgs)
	}
}

func TestIgnoreDirective(t *testing.T) {
	msgs := lintSource(t, `package p
import "time"
//detlint:ignore — boot stamp is allowed to be wall-clock
func f() time.Time { return time.Now() }
`)
	if len(msgs) != 0 {
		t.Fatalf("msgs = %v, want suppressed by detlint:ignore", msgs)
	}
}
