package main

// Forward dataflow over a funcCFG, and the lock-state transfer functions
// the concurrency analyzers (guarded v2, lockorder) share.
//
// Facts are strings; a fact set is a map. The engine runs a must-analysis:
// the meet over incoming edges is set intersection, and a block that was
// never reached holds nil — the top element — so unreachable code is
// silently skipped rather than reported against.
//
// Lock state uses three fact shapes:
//
//	"e:" + path           this exact expression's mutex is held (e:s.mu)
//	"c:" + Type.field     some instance of this class of mutex is held
//	                      (c:Service.mu) — named receiver type + field
//	"a:" + class + "|" + path
//	                      the association of the two, kept so lockorder can
//	                      enumerate (class, expr) pairs currently held
//
// A local (non-field) mutex has only its "e:" fact.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

type facts map[string]bool

func cloneFacts(f facts) facts {
	c := make(facts, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

func equalFacts(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// intersectInto removes from dst every fact not in src, reporting whether
// dst changed.
func intersectInto(dst, src facts) bool {
	changed := false
	for k := range dst {
		if !src[k] {
			delete(dst, k)
			changed = true
		}
	}
	return changed
}

func sortedFacts(f facts) []string {
	out := make([]string, 0, len(f))
	for k := range f {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mustFlow runs the forward must-analysis: entry facts at g.entry, step
// applied to every node in block order, intersection at joins. It returns
// the fact set at each block's entry; nil means the block was never
// reached (unreachable, or the visit budget ran out — both are treated as
// unknown, and clients skip checks there). The budget bounds pathological
// CFGs so a lint sweep can never spin: it is ~64 visits per block, far
// beyond what a two-element powerset lattice needs to converge.
func mustFlow(g *funcCFG, entry facts, step func(n ast.Node, f facts)) map[*block]facts {
	in := make(map[*block]facts, len(g.blocks))
	in[g.entry] = cloneFacts(entry)
	work := []*block{g.entry}
	budget := 64*len(g.blocks) + 256
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := cloneFacts(in[b])
		for _, n := range b.nodes {
			step(n, out)
		}
		for _, s := range b.succs {
			cur, seen := in[s]
			if !seen {
				in[s] = cloneFacts(out)
				work = append(work, s)
				continue
			}
			if intersectInto(cur, out) {
				work = append(work, s)
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// Lock events

const recvPlaceholder = "◊" // ◊ — receiver slot in a summary fact

type lockEvent struct {
	acquire bool
	expr    string // rendered mutex expression ("s.mu", "mu"); may be ""
	class   string // "Type.field" for a field of a named type; "" for locals
	pos     token.Pos
}

// exprPath renders a selector chain of identifiers ("s.cache.mu").
// Anything else — calls, index expressions — renders as "", meaning the
// mutex instance is not statically nameable.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprPath(e.X)
	}
	return ""
}

// namedTypeName returns the bare name of the named struct type behind t
// (unwrapping pointers and aliases), or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// asLockEvent decodes call as a Lock/Unlock-family call on a sync mutex.
// TryLock is (unsoundly) treated as an unconditional acquire — the
// analyzers document this; the repo does not use TryLock.
func asLockEvent(pass *Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockEvent{}, false
	}
	if !isMutexType(pass.TypeOf(sel.X)) {
		return lockEvent{}, false
	}
	ev := lockEvent{acquire: acquire, pos: call.Pos()}
	switch mx := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		ev.expr = exprPath(mx)
		if owner := namedTypeName(pass.TypeOf(mx.X)); owner != "" {
			ev.class = owner + "." + mx.Sel.Name
		}
	case *ast.Ident:
		ev.expr = mx.Name
	}
	return ev, true
}

func (ev lockEvent) factNames() []string {
	var out []string
	if ev.expr != "" {
		out = append(out, "e:"+ev.expr)
	}
	if ev.class != "" {
		out = append(out, "c:"+ev.class)
		out = append(out, "a:"+ev.class+"|"+ev.expr)
	}
	return out
}

func (ev lockEvent) apply(f facts) {
	for _, name := range ev.factNames() {
		if ev.acquire {
			f[name] = true
		} else {
			delete(f, name)
		}
	}
	if !ev.acquire && ev.class != "" {
		// Releasing s.mu also drops any association of the class that was
		// recorded with a different (or empty) rendering of the receiver.
		for k := range f {
			if strings.HasPrefix(k, "a:"+ev.class+"|") {
				delete(f, k)
			}
		}
	}
}

// heldAssociations decodes the held "a:" facts into (class, expr) pairs,
// sorted for deterministic reporting.
func heldAssociations(f facts) [][2]string {
	var out [][2]string
	for _, k := range sortedFacts(f) {
		rest, ok := strings.CutPrefix(k, "a:")
		if !ok {
			continue
		}
		class, expr, _ := strings.Cut(rest, "|")
		out = append(out, [2]string{class, expr})
	}
	return out
}

// ---------------------------------------------------------------------------
// One-level call summaries

// acqSite is one lock acquisition inside a summarized function, recorded
// with the receiver slot abstracted to ◊.
type acqSite struct {
	class string
	expr  string
	pos   token.Pos
}

// funcSummary is the one-level effect of calling a function: the lock
// facts it is guaranteed to add (held at every return, starting from
// none), the facts it may remove (any Unlock in the body), and every
// acquisition site (for the lock-order graph). Summaries are computed
// without applying other summaries — strictly one level deep, so the
// fixpoint stays trivial and the approximation direction is documented.
type funcSummary struct {
	netAcquire []string
	mayRelease []string
	acquires   []acqSite
}

// abstractRecv rewrites facts of the receiver r to the ◊ placeholder so a
// call site can substitute its own receiver path.
func abstractRecv(fact, recv string) string {
	if recv == "" {
		return fact
	}
	switch {
	case strings.HasPrefix(fact, "e:"):
		return "e:" + swapRecvPath(fact[2:], recv)
	case strings.HasPrefix(fact, "a:"):
		class, expr, _ := strings.Cut(fact[2:], "|")
		return "a:" + class + "|" + swapRecvPath(expr, recv)
	}
	return fact
}

func swapRecvPath(path, recv string) string {
	if path == recv {
		return recvPlaceholder
	}
	if rest, ok := strings.CutPrefix(path, recv+"."); ok {
		return recvPlaceholder + "." + rest
	}
	return path
}

// concretizeFact substitutes the call-site receiver path for ◊. With no
// nameable receiver the expression facts are dropped (class facts remain).
func concretizeFact(fact, recv string) (string, bool) {
	if !strings.Contains(fact, recvPlaceholder) {
		return fact, true
	}
	if recv == "" {
		return "", strings.HasPrefix(fact, "c:")
	}
	return strings.ReplaceAll(fact, recvPlaceholder, recv), true
}

// receiverName returns the name of fd's receiver ("" for functions and
// anonymous receivers).
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// lockWalk visits the nodes of one CFG block entry that participate in
// lock-state transfer: it descends into expressions but prunes function
// literals (their bodies run later, as separate contexts) and the calls
// deferred or spawned by defer/go statements (a deferred Unlock runs at
// return, so the lock stays held for the rest of the body; arguments to
// the deferred call are still evaluated here and are visited).
func lockWalk(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			walkCallArgs(n.Call, visit)
			return false
		case *ast.GoStmt:
			walkCallArgs(n.Call, visit)
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

func walkCallArgs(call *ast.CallExpr, visit func(*ast.CallExpr)) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if c, ok := n.(*ast.CallExpr); ok {
				visit(c)
			}
			return true
		})
	}
}

// calleeObject resolves the called function's object, or nil.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return pass.Info.Uses[fun.Sel]
	}
	return nil
}

// callRecvPath renders the call's receiver expression ("s" in s.m()),
// or "" when the callee is not a method call on a nameable receiver.
func callRecvPath(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprPath(sel.X)
	}
	return ""
}

// computeSummaries builds the one-level summary of every function
// declaration in the unit, keyed by its types.Object. Only functions
// whose bodies contain a lock event get an entry.
func computeSummaries(pass *Pass) map[types.Object]*funcSummary {
	sums := make(map[types.Object]*funcSummary)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sum := summarizeFunc(pass, fd)
			if sum != nil {
				sums[obj] = sum
			}
		}
	}
	return sums
}

func summarizeFunc(pass *Pass, fd *ast.FuncDecl) *funcSummary {
	// Cheap pre-scan: most functions have no lock events at all.
	touchesLocks := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if touchesLocks {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := asLockEvent(pass, call); ok {
				touchesLocks = true
			}
		}
		return true
	})
	if !touchesLocks {
		return nil
	}

	recv := receiverName(fd)
	sum := &funcSummary{}
	g := buildCFG(fd.Body)
	in := mustFlow(g, facts{}, func(n ast.Node, f facts) {
		lockWalk(n, func(call *ast.CallExpr) {
			if ev, ok := asLockEvent(pass, call); ok {
				ev.apply(f)
			}
		})
	})
	if exitFacts := in[g.exit]; exitFacts != nil {
		exitFacts = cloneFacts(exitFacts)
		// Inside the body a deferred Unlock keeps the lock held (lockWalk
		// prunes defers), but it runs before control returns to the caller:
		// the net effect must not claim locks a deferred release drops, or
		// every Lock/defer-Unlock helper would look like it returns locked.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ds, ok := n.(*ast.DeferStmt)
			if !ok {
				return true
			}
			ast.Inspect(ds, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if ev, ok := asLockEvent(pass, call); ok && !ev.acquire {
						ev.apply(exitFacts)
					}
				}
				return true
			})
			return true
		})
		for _, fact := range sortedFacts(exitFacts) {
			sum.netAcquire = append(sum.netAcquire, abstractRecv(fact, recv))
		}
	}
	net := make(map[string]bool, len(sum.netAcquire))
	for _, f := range sum.netAcquire {
		net[f] = true
	}
	seenRelease := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ev, ok := asLockEvent(pass, call)
		if !ok {
			return true
		}
		if ev.acquire {
			if ev.class != "" {
				sum.acquires = append(sum.acquires, acqSite{
					class: ev.class,
					expr:  swapRecvPath(ev.expr, recv),
					pos:   ev.pos,
				})
			}
			return true
		}
		for _, fact := range ev.factNames() {
			abs := abstractRecv(fact, recv)
			if !net[abs] && !seenRelease[abs] {
				seenRelease[abs] = true
				sum.mayRelease = append(sum.mayRelease, abs)
			}
		}
		return true
	})
	sort.Strings(sum.mayRelease)
	return sum
}

// applyCallSummary transfers a callee's one-level summary into the
// caller's fact set. *Locked-suffix callees are assumed to preserve lock
// state (their contract is "caller already holds the lock"). Returns the
// summary when one was applied, for clients that also want the acquisition
// sites.
func applyCallSummary(pass *Pass, sums map[types.Object]*funcSummary, call *ast.CallExpr, f facts) *funcSummary {
	obj := calleeObject(pass, call)
	if obj == nil {
		return nil
	}
	sum, ok := sums[obj]
	if !ok {
		return nil
	}
	if strings.HasSuffix(obj.Name(), "Locked") {
		return sum
	}
	recv := callRecvPath(call)
	for _, fact := range sum.mayRelease {
		if conc, ok := concretizeFact(fact, recv); ok {
			delete(f, conc)
			if class, isClass := strings.CutPrefix(conc, "c:"); isClass {
				// Dropping a class fact also drops its associations.
				for k := range f {
					if strings.HasPrefix(k, "a:"+class+"|") {
						delete(f, k)
					}
				}
			}
		}
	}
	for _, fact := range sum.netAcquire {
		if conc, ok := concretizeFact(fact, recv); ok && conc != "" {
			f[conc] = true
		}
	}
	return sum
}
