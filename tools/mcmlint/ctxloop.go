package main

import (
	"go/ast"
	"go/token"
)

// ctxloopAnalyzer enforces the PR 3 cancellation contract: every
// sample-budget loop stops at a sample boundary when its context is
// cancelled, returning best-so-far work plus ctx.Err(). Concretely: in a
// function that takes a context.Context, a condition-controlled for loop
// that never consults the context — no ctx.Err()/ctx.Done() in its
// condition or body and no callee receiving ctx — cannot observe
// cancellation and runs to budget exhaustion.
//
// Mentioning the context anywhere in the loop (condition, body, or a
// nested call that receives it and owns the boundary check) satisfies the
// contract. Exempt by construction:
//
//   - range loops: bounded by data, not by a budget;
//   - loops whose trip count is an integer literal (bounded retries);
//   - functions whose context parameter is named _ (they accepted a ctx
//     for interface shape only and declared they will not check it).
var ctxloopAnalyzer = &Analyzer{
	Name: "ctxloop",
	Doc:  "for loops in context-taking functions must consult ctx so cancellation stops them at a sample boundary",
	Run:  runCtxloop,
}

func runCtxloop(pass *Pass) {
	for _, file := range pass.Files {
		ctxName := importName(file, "context")
		if ctxName == "" {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			names := ctxParamNames(fd.Type, ctxName)
			if len(names) == 0 {
				continue
			}
			checkCtxLoops(pass, fd.Body, names)
		}
	}
}

// ctxParamNames returns the names of parameters of type context.Context
// (or *context.Context), skipping blank ones.
func ctxParamNames(ft *ast.FuncType, ctxName string) map[string]bool {
	if ft.Params == nil {
		return nil
	}
	var out map[string]bool
	for _, field := range ft.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		if base, ok := sel.X.(*ast.Ident); !ok || base.Name != ctxName {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if out == nil {
				out = map[string]bool{}
			}
			out[name.Name] = true
		}
	}
	return out
}

func checkCtxLoops(pass *Pass, body *ast.BlockStmt, ctxNames map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if literalTripCount(fs) {
			return true
		}
		if mentionsAny(fs, ctxNames) {
			return true
		}
		pass.Reportf(fs.Pos(), "loop never consults %s: check ctx.Err() (or pass ctx to the callee) each iteration so cancellation stops at a sample boundary",
			anyName(ctxNames))
		return true
	})
}

// literalTripCount reports the classic bounded-retry shape
// `for i := 0; i < <int literal>; i++` (and <=): a fixed, typically small
// number of iterations, not a sample budget.
func literalTripCount(fs *ast.ForStmt) bool {
	if fs.Cond == nil {
		return false
	}
	be, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.LSS && be.Op != token.LEQ && be.Op != token.GTR && be.Op != token.GEQ) {
		return false
	}
	isLit := func(e ast.Expr) bool {
		bl, ok := e.(*ast.BasicLit)
		return ok && bl.Kind == token.INT
	}
	return isLit(be.X) || isLit(be.Y)
}

// mentionsAny reports whether any identifier in the subtree is one of the
// given names — a ctx.Err() check, a <-ctx.Done() select, or a callee
// receiving ctx all count.
func mentionsAny(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

func anyName(names map[string]bool) string {
	best := ""
	for n := range names {
		if best == "" || n < best {
			best = n
		}
	}
	return best
}
