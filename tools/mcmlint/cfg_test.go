package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBody parses src as the body of `func f() { ... }` and returns
// its CFG.
func parseFuncBody(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

// renderCFG prints a CFG as "b<i>[<nodes>]" plus "-> succ succ", one block
// per "; "-joined segment, in creation order. The last block is always the
// synthetic exit.
func renderCFG(g *funcCFG) string {
	parts := make([]string, 0, len(g.blocks))
	for _, b := range g.blocks {
		s := fmt.Sprintf("b%d[%d]", b.index, len(b.nodes))
		if len(b.succs) > 0 {
			tos := make([]string, len(b.succs))
			for i, t := range b.succs {
				tos[i] = fmt.Sprintf("%d", t.index)
			}
			s += "->" + strings.Join(tos, " ")
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "; ")
}

// TestBuildCFGShapes pins the block structure the builder produces for
// each control-flow shape: node counts, edges, and the synthetic exit.
func TestBuildCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straight line",
			body: `a(); b()`,
			want: "b0[2]->1; b1[0]",
		},
		{
			name: "if else",
			body: `a()
if c() { b() } else { d() }
e()`,
			want: "b0[2]->1 2; b1[1]->3; b2[1]->3; b3[1]->4; b4[0]",
		},
		{
			name: "if without else",
			body: `if c() { b() }
e()`,
			want: "b0[1]->1 2; b1[1]->2; b2[1]->3; b3[0]",
		},
		{
			name: "three clause for",
			body: `for i := 0; i < n; i++ { b() }
e()`,
			want: "b0[1]->1; b1[1]->2 4; b2[1]->3; b3[1]->1; b4[1]->5; b5[0]",
		},
		{
			name: "infinite for with break and continue",
			body: `for {
	if c() { break }
	if d() { continue }
	b()
}
e()`,
			want: "b0[0]->1; b1[0]->2; b2[1]->4 5; b3[1]->8; b4[0]->3; b5[1]->6 7; b6[0]->1; b7[1]->1; b8[0]",
		},
		{
			name: "range loop",
			body: `for _, v := range xs { b(v) }
e()`,
			want: "b0[1]->1; b1[0]->2 3; b2[1]->1; b3[1]->4; b4[0]",
		},
		{
			name: "goto backward",
			body: `a()
loop:
	b()
	if c() { goto loop }
	e()`,
			want: "b0[1]->1; b1[2]->2 3; b2[0]->1; b3[1]->4; b4[0]",
		},
		{
			name: "early return with defer",
			body: `defer u()
if c() { return }
b()`,
			want: "b0[2]->1 2; b1[1]->3; b2[1]->3; b3[0]",
		},
		{
			name: "switch with fallthrough and default",
			body: `switch x() {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	d()
}
e()`,
			want: "b0[1]->1 2 3; b1[2]->2; b2[2]->4; b3[1]->4; b4[1]->5; b5[0]",
		},
		{
			name: "switch without default falls through to join",
			body: `switch x() {
case 1:
	a()
}
e()`,
			want: "b0[1]->1 2; b1[2]->2; b2[1]->3; b3[0]",
		},
		{
			name: "select with default",
			body: `select {
case <-ch:
	a()
default:
	b()
}
e()`,
			want: "b0[0]->1 2; b1[2]->3; b2[1]->3; b3[1]->4; b4[0]",
		},
		{
			name: "panic terminates the path",
			body: `if c() { panic("x") }
e()`,
			want: "b0[1]->1 2; b1[1]->3; b2[1]->3; b3[0]",
		},
		{
			name: "labeled break crosses the inner loop",
			body: `outer:
	for {
		for {
			break outer
		}
	}
	e()`,
			want: "b0[0]->1; b1[0]->2; b2[0]->3; b3[0]->5; b4[1]->8; b5[0]->6; b6[0]->4; b7[0]->2; b8[0]",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := parseFuncBody(t, tt.body)
			if got := renderCFG(g); got != tt.want {
				t.Errorf("CFG mismatch\n got: %s\nwant: %s", got, tt.want)
			}
			if g.blocks[len(g.blocks)-1] != g.exit {
				t.Errorf("exit block is not last")
			}
			if g.blocks[0] != g.entry {
				t.Errorf("entry block is not first")
			}
		})
	}
}

// TestMustFlowFixpoint drives the must-analysis with a synthetic gen/kill
// step: acq(x) adds fact x, rel(x) removes it, and probe() snapshots the
// facts flowing into it. The table pins the converged facts at the probe
// and at the synthetic exit — intersection at joins, iteration to fixpoint
// around loops, and the exit meet over early returns.
func TestMustFlowFixpoint(t *testing.T) {
	tests := []struct {
		name      string
		body      string
		wantProbe string // sorted, comma-joined; "-" for no probe
		wantExit  string
	}{
		{
			name:      "straight line hold",
			body:      `acq(a); probe(); rel(a)`,
			wantProbe: "a",
			wantExit:  "",
		},
		{
			name:      "conditional release kills at the join",
			body:      `acq(a); if c() { rel(a) }; probe()`,
			wantProbe: "",
			wantExit:  "",
		},
		{
			name:      "acquired on both branches survives the join",
			body:      `if c() { acq(a) } else { acq(a) }; probe()`,
			wantProbe: "a",
			wantExit:  "a",
		},
		{
			name:      "loop body release reaches the loop head",
			body:      `acq(a); for c() { rel(a) }; probe()`,
			wantProbe: "",
			wantExit:  "",
		},
		{
			name:      "loop preserving the fact keeps it",
			body:      `acq(a); for c() { rel(a); acq(a) }; probe()`,
			wantProbe: "a",
			wantExit:  "a",
		},
		{
			name:      "early return meets at exit",
			body:      `acq(a); if c() { return }; rel(a)`,
			wantProbe: "-",
			wantExit:  "",
		},
		{
			name:      "goto loop converges",
			body:      "acq(a)\nloop:\n\trel(a)\n\tif c() { goto loop }\n\tprobe()",
			wantProbe: "",
			wantExit:  "",
		},
		{
			name:      "two facts one conditional",
			body:      `acq(a); acq(b); if c() { rel(b) }; probe()`,
			wantProbe: "a",
			wantExit:  "a",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := parseFuncBody(t, tt.body)
			probe := "-"
			in := mustFlow(g, facts{}, func(n ast.Node, f facts) {
				ast.Inspect(n, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fun, ok := call.Fun.(*ast.Ident)
					if !ok {
						return true
					}
					switch fun.Name {
					case "acq":
						f[call.Args[0].(*ast.Ident).Name] = true
					case "rel":
						delete(f, call.Args[0].(*ast.Ident).Name)
					case "probe":
						probe = strings.Join(sortedFacts(f), ",")
					}
					return true
				})
			})
			exitFacts := in[g.exit]
			if exitFacts == nil {
				t.Fatalf("exit block never reached")
			}
			if got := strings.Join(sortedFacts(exitFacts), ","); got != tt.wantExit {
				t.Errorf("exit facts = %q, want %q", got, tt.wantExit)
			}
			if probe != tt.wantProbe {
				t.Errorf("probe facts = %q, want %q", probe, tt.wantProbe)
			}
		})
	}
}
