package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func names(as []*Analyzer) string { return strings.Join(analyzerNames(as), ",") }

func TestSelectAnalyzers(t *testing.T) {
	cases := []struct {
		enable, disable string
		want            string
		wantErr         bool
	}{
		{"", "", "det,deepcopy,ctxloop,hotalloc,guarded", false},
		{"det,guarded", "", "det,guarded", false},
		{"", "hotalloc", "det,deepcopy,ctxloop,guarded", false},
		{"det,ctxloop", "ctxloop", "det", false},
		{"nosuch", "", "", true},
		{"", "nosuch", "", true},
		{"det", "det", "", true}, // empty set is an error, not a silent no-op
	}
	for _, c := range cases {
		got, err := selectAnalyzers(c.enable, c.disable)
		if c.wantErr {
			if err == nil {
				t.Errorf("selectAnalyzers(%q, %q): want error, got %s", c.enable, c.disable, names(got))
			}
			continue
		}
		if err != nil {
			t.Errorf("selectAnalyzers(%q, %q): %v", c.enable, c.disable, err)
			continue
		}
		if names(got) != c.want {
			t.Errorf("selectAnalyzers(%q, %q) = %s, want %s", c.enable, c.disable, names(got), c.want)
		}
	}
}

// TestRunDirsOnFixture exercises the direct (non-vet) entry point end to
// end: the seeded det fixture must produce findings (exit 2), and
// disabling det must silence them (exit 0).
func TestRunDirsOnFixture(t *testing.T) {
	dir := filepath.Join("testdata", "det")
	if got := runDirs([]string{dir}, allAnalyzers); got != 2 {
		t.Errorf("runDirs(%s, all) = %d, want 2 (seeded violations)", dir, got)
	}
	only, err := selectAnalyzers("", "det")
	if err != nil {
		t.Fatal(err)
	}
	if got := runDirs([]string{dir}, only); got != 0 {
		t.Errorf("runDirs(%s, -disable=det) = %d, want 0", dir, got)
	}
}

// TestVetUnitProtocol drives the unitchecker path with a hand-written cfg:
// a VetxOnly (dependency) unit must write its facts file and stay silent; a
// target unit over the fixture must report findings and still write facts.
func TestVetUnitProtocol(t *testing.T) {
	tmp := t.TempDir()
	vetx := filepath.Join(tmp, "unit.vetx")
	cfgPath := filepath.Join(tmp, "dep.cfg")
	if err := os.WriteFile(cfgPath, []byte(`{"ImportPath":"p","VetxOnly":true,"VetxOutput":"`+vetx+`"}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if got := runVetUnit(cfgPath, allAnalyzers); got != 0 {
		t.Fatalf("VetxOnly unit: exit %d, want 0", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("VetxOnly unit did not write facts file: %v", err)
	}

	fixture, err := filepath.Abs(filepath.Join("testdata", "det", "violation.go"))
	if err != nil {
		t.Fatal(err)
	}
	vetx2 := filepath.Join(tmp, "target.vetx")
	cfg2 := filepath.Join(tmp, "target.cfg")
	if err := os.WriteFile(cfg2, []byte(`{"ImportPath":"fixture","GoFiles":["`+fixture+`"],"VetxOutput":"`+vetx2+`"}`), 0o666); err != nil {
		t.Fatal(err)
	}
	if got := runVetUnit(cfg2, allAnalyzers); got != 2 {
		t.Fatalf("target unit: exit %d, want 2 (seeded violations)", got)
	}
	if _, err := os.Stat(vetx2); err != nil {
		t.Fatalf("target unit did not write facts file: %v", err)
	}
}

// TestVersionIncludesEnabledSet pins the vet cache-key property: changing
// the enabled analyzer set must change the -V=full identity line.
func TestVersionIncludesEnabledSet(t *testing.T) {
	all, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatal(err)
	}
	some, err := selectAnalyzers("det", "")
	if err != nil {
		t.Fatal(err)
	}
	if names(all) == names(some) {
		t.Fatal("enabled-set strings are identical; the -V cache key would not distinguish configurations")
	}
}
